package repro

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/gen"
	"repro/internal/ha"
	"repro/internal/obs"
	"repro/internal/server"
)

// BenchmarkClusterUpdate measures update-batch routing latency: a
// cluster with a standing watch absorbs small mutation batches, against
// the single-process dynamic.Matcher baseline doing the same
// maintenance in memory. The gap is the coordination tax per batch —
// affected-region planning, per-worker wire round trips, delta merging
// — which the HA work must not regress on the k=1 hot path. Run with
// QGP_BENCH_RECORD=1 to refresh the BENCH_cluster_update.json baseline:
//
//	QGP_BENCH_RECORD=1 go test -run '^$' -bench BenchmarkClusterUpdate .
func BenchmarkClusterUpdate(b *testing.B) {
	const graphSize = 2000
	g := gen.Social(gen.DefaultSocial(graphSize, 42))
	pattern := "qgp\nn xo person *\nn z person\ne xo z follow >=3\n"
	q, err := core.Parse(pattern)
	if err != nil {
		b.Fatal(err)
	}
	// Iteration 2k adds a pseudo-random edge and iteration 2k+1 removes
	// that same edge, so the graph stays bounded across arbitrarily
	// many iterations.
	batchFor := func(i int) []server.UpdateSpec {
		k := i / 2
		from := int64((k*7919 + 13) % graphSize)
		to := int64((k*104729 + 31) % graphSize)
		if from == to {
			to = (to + 1) % graphSize
		}
		op := "addEdge"
		if i%2 == 1 {
			op = "removeEdge"
		}
		return []server.UpdateSpec{{Op: op, From: from, To: to, Label: "follow"}}
	}

	record := map[string]interface{}{
		"benchmark": "BenchmarkClusterUpdate",
		"graph":     fmt.Sprintf("social n=%d seed=42", graphSize),
		"pattern":   pattern,
	}

	b.Run("single", func(b *testing.B) {
		m, err := dynamic.NewMatcher(g, q)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ups, err := server.ToUpdates(batchFor(i))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := m.Apply(ups); err != nil {
				b.Fatal(err)
			}
		}
		record["single_ns_per_op"] = avgNs(b)
	})

	for _, workers := range []int{2, 4} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			ts := cluster.InProcessN(workers, server.Config{})
			c, err := cluster.New(g, ts, cluster.Config{D: 2})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			if _, err := c.Watch("w", q); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Update(batchFor(i)); err != nil {
					b.Fatal(err)
				}
			}
			record[fmt.Sprintf("cluster%d_ns_per_op", workers)] = avgNs(b)
		})
	}

	// Same fan-out with the metrics registry enabled: the delta against
	// workers=2 is the full instrumentation cost per batch (per-worker
	// latency histograms, routed/skipped counters, batch/affected/fanout
	// size observations) and must stay within noise of the bare number.
	b.Run("workers=2,metrics", func(b *testing.B) {
		ts := cluster.InProcessN(2, server.Config{})
		c, err := cluster.New(g, ts, cluster.Config{D: 2, Metrics: obs.NewRegistry()})
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		if _, err := c.Watch("w", q); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Update(batchFor(i)); err != nil {
				b.Fatal(err)
			}
		}
		record["cluster2_metrics_ns_per_op"] = avgNs(b)
	})

	// k=2 replication: the combined batch is mirrored to each fragment's
	// warm replica after the primary acks; mirrors of different fragments
	// (and replicas of one fragment) run concurrently, so the replicated
	// number tracks the k=1 one instead of doubling it.
	b.Run("workers=2,replicas=2", func(b *testing.B) {
		pool := ha.NewSpawnPool(4, server.Config{})
		ts, err := pool.Primaries(2)
		if err != nil {
			b.Fatal(err)
		}
		c, err := cluster.New(g, ts, cluster.Config{D: 2, Replicas: 2, Pool: pool})
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		if _, err := c.Watch("w", q); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Update(batchFor(i)); err != nil {
				b.Fatal(err)
			}
		}
		record["cluster2_replicated_ns_per_op"] = avgNs(b)
	})

	if os.Getenv("QGP_BENCH_RECORD") != "" {
		b.StopTimer()
		f, err := os.Create("BENCH_cluster_update.json")
		if err != nil {
			b.Fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(record); err != nil {
			b.Fatal(err)
		}
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}
		b.Logf("wrote BENCH_cluster_update.json")
	}
}
