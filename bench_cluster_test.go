package repro

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/tenant"
)

// noopRegistrar satisfies tenant.Registrar for a benchmark manager that
// registers no watches.
type noopRegistrar struct{}

func (noopRegistrar) Watch(string, *core.Pattern) ([]graph.NodeID, error) { return nil, nil }
func (noopRegistrar) Unwatch(string) error                                { return nil }

// BenchmarkClusterMatch compares embedded coordinator/worker clusters of
// 1, 2 and 4 workers against single-process match on a generated social
// graph. Run with QGP_BENCH_RECORD=1 to refresh the BENCH_cluster.json
// baseline:
//
//	QGP_BENCH_RECORD=1 go test -run '^$' -bench BenchmarkClusterMatch .
//
// On a single-CPU machine the wall-clock speedup is modest; the point of
// the baseline is tracking the coordination overhead (cluster vs single)
// across PRs, not proving parallel scalability — internal/bench's SimWork
// experiments do that machine-independently.
func BenchmarkClusterMatch(b *testing.B) {
	const graphSize = 2000
	g := gen.Social(gen.DefaultSocial(graphSize, 42))
	pattern := "qgp\nn xo person *\nn z person\nn p product\ne xo z follow >=2\ne z p recom >=1\n"
	q, err := core.Parse(pattern)
	if err != nil {
		b.Fatal(err)
	}

	record := map[string]interface{}{
		"benchmark": "BenchmarkClusterMatch",
		"graph":     fmt.Sprintf("social n=%d seed=42", graphSize),
		"pattern":   pattern,
	}

	b.Run("single", func(b *testing.B) {
		var n int
		for i := 0; i < b.N; i++ {
			res, err := match.QMatch(g, q, nil)
			if err != nil {
				b.Fatal(err)
			}
			n = len(res.Matches)
		}
		record["single_ns_per_op"] = avgNs(b)
		record["answers"] = n
	})

	for _, workers := range []int{1, 2, 4} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			ts := cluster.InProcessN(workers, server.Config{})
			defer cluster.CloseAll(ts)
			c, err := cluster.New(g, ts, cluster.Config{D: 2})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Match(q); err != nil {
					b.Fatal(err)
				}
			}
			record[fmt.Sprintf("cluster%d_ns_per_op", workers)] = avgNs(b)
		})
	}

	// Concurrent-clients axis: 8 tenants issue fenced read-only matches
	// against a workers=2 cluster at replication k=1..3. Every transport
	// carries a simulated 8ms round trip, serialized per copy the way one
	// wire session is, so throughput is bound by overlapping read streams
	// — exactly what replica-read routing buys — rather than by this
	// machine's core count. QPS must scale with k (the recorded
	// read_scaleout_r3_vs_r1 ratio tracks it across PRs).
	const tenants = 8
	const rtt = 8 * time.Millisecond
	cg := gen.Social(gen.DefaultSocial(400, 42))
	cq, err := core.Parse("qgp\nn xo person *\nn z person\ne xo z follow >=2\n")
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{1, 2, 3} {
		k := k
		b.Run(fmt.Sprintf("tenants=%d/replicas=%d", tenants, k), func(b *testing.B) {
			prim := make([]cluster.Transport, 2)
			for i := range prim {
				prim[i] = &latencyTransport{inner: cluster.InProcess(server.Config{}), d: rtt}
			}
			pool := &latencyPool{cfg: server.Config{}, d: rtt, next: len(prim)}
			c, err := cluster.New(cg, prim, cluster.Config{D: 2, Replicas: k, Pool: pool})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			// One write sets the read-your-writes fence every tenant's
			// matches carry, as the front end does after an update.
			res, err := c.Update([]server.UpdateSpec{{Op: "addEdge", From: 1, To: 2, Label: "follow"}})
			if err != nil {
				b.Fatal(err)
			}
			opts := &cluster.MatchOptions{MinVersion: res.Version}
			b.SetParallelism(tenants) // tenants × GOMAXPROCS goroutines
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := c.MatchWith(cq, opts); err != nil {
						b.Error(err)
						return
					}
				}
			})
			record[fmt.Sprintf("concurrent_t%d_r%d_ns_per_op", tenants, k)] = avgNs(b)
		})
	}
	if r1, ok := record[fmt.Sprintf("concurrent_t%d_r1_ns_per_op", tenants)].(int64); ok {
		if r3, ok := record[fmt.Sprintf("concurrent_t%d_r3_ns_per_op", tenants)].(int64); ok && r3 > 0 {
			record["read_scaleout_r3_vs_r1"] = float64(r1) / float64(r3)
		}
	}

	// Admission-control overhead: the k=3 workload again, with every op
	// paying the front end's per-tenant QoS work — Admit (token bucket),
	// fence lookup, latency Observe into the tenant's histogram — against
	// limits high enough that nothing throttles. The recorded
	// limiter_overhead ratio (limited vs unlimited r3) tracks that
	// admission control stays in the noise (the bar is ≤5%) next to an
	// 8ms wire round trip.
	b.Run(fmt.Sprintf("tenants=%d/replicas=3/limited", tenants), func(b *testing.B) {
		prim := make([]cluster.Transport, 2)
		for i := range prim {
			prim[i] = &latencyTransport{inner: cluster.InProcess(server.Config{}), d: rtt}
		}
		pool := &latencyPool{cfg: server.Config{}, d: rtt, next: len(prim)}
		c, err := cluster.New(cg, prim, cluster.Config{D: 2, Replicas: 3, Pool: pool})
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		res, err := c.Update([]server.UpdateSpec{{Op: "addEdge", From: 1, To: 2, Label: "follow"}})
		if err != nil {
			b.Fatal(err)
		}
		tm := tenant.NewManager(tenant.Config{
			RateQPS: 1e9, RateBurst: 1 << 30,
			AffectedPerSec: 1e9, AffectedBurst: 1 << 30,
			Metrics: obs.NewRegistry(),
		}, noopRegistrar{})
		b.SetParallelism(tenants)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			name, err := tm.Attach("")
			if err != nil {
				b.Error(err)
				return
			}
			tm.NoteWrite(name, res.Version)
			for pb.Next() {
				if err := tm.Admit(name, "match"); err != nil {
					b.Error(err)
					return
				}
				opts := &cluster.MatchOptions{MinVersion: tm.NoteRead(name)}
				start := time.Now()
				if _, err := c.MatchWith(cq, opts); err != nil {
					b.Error(err)
					return
				}
				tm.Observe(name, "match", start)
			}
		})
		record[fmt.Sprintf("concurrent_t%d_r3_limited_ns_per_op", tenants)] = avgNs(b)
	})
	if r3, ok := record[fmt.Sprintf("concurrent_t%d_r3_ns_per_op", tenants)].(int64); ok && r3 > 0 {
		if lim, ok := record[fmt.Sprintf("concurrent_t%d_r3_limited_ns_per_op", tenants)].(int64); ok {
			record["limiter_overhead"] = float64(lim) / float64(r3)
		}
	}

	if os.Getenv("QGP_BENCH_RECORD") != "" {
		b.StopTimer()
		f, err := os.Create("BENCH_cluster.json")
		if err != nil {
			b.Fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(record); err != nil {
			b.Fatal(err)
		}
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}
		b.Logf("wrote BENCH_cluster.json")
	}
}

// avgNs reads the per-op time accumulated so far in a sub-benchmark. The
// testing package only exposes elapsed time through b.Elapsed.
func avgNs(b *testing.B) int64 {
	if b.N == 0 {
		return 0
	}
	return b.Elapsed().Nanoseconds() / int64(b.N)
}

// latencyTransport models one wire session to a remote worker: requests
// pay a fixed round trip and are serialized per session (a connection is
// an in-order stream), so k copies of a fragment can overlap k reads.
// It deliberately implements neither Endpointer nor ReadTracker — the
// read router then scores copies by their own in-flight counts, the
// dial-pool-without-accounting deployment shape.
type latencyTransport struct {
	mu    sync.Mutex
	inner cluster.Transport
	d     time.Duration
}

func (t *latencyTransport) Do(req *server.Request) (*server.Response, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	time.Sleep(t.d)
	return t.inner.Do(req)
}

func (t *latencyTransport) Close() error { return t.inner.Close() }

// latencyPool hands replica sessions out as latency transports on
// distinct synthetic endpoints.
type latencyPool struct {
	mu   sync.Mutex
	cfg  server.Config
	d    time.Duration
	next int
}

func (p *latencyPool) Get(weight int, avoid map[int]bool) (cluster.Transport, int, error) {
	p.mu.Lock()
	ep := p.next
	p.next++
	p.mu.Unlock()
	return &latencyTransport{inner: cluster.InProcess(p.cfg), d: p.d}, ep, nil
}
