package repro

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/match"
	"repro/internal/server"
)

// BenchmarkClusterMatch compares embedded coordinator/worker clusters of
// 1, 2 and 4 workers against single-process match on a generated social
// graph. Run with QGP_BENCH_RECORD=1 to refresh the BENCH_cluster.json
// baseline:
//
//	QGP_BENCH_RECORD=1 go test -run '^$' -bench BenchmarkClusterMatch .
//
// On a single-CPU machine the wall-clock speedup is modest; the point of
// the baseline is tracking the coordination overhead (cluster vs single)
// across PRs, not proving parallel scalability — internal/bench's SimWork
// experiments do that machine-independently.
func BenchmarkClusterMatch(b *testing.B) {
	const graphSize = 2000
	g := gen.Social(gen.DefaultSocial(graphSize, 42))
	pattern := "qgp\nn xo person *\nn z person\nn p product\ne xo z follow >=2\ne z p recom >=1\n"
	q, err := core.Parse(pattern)
	if err != nil {
		b.Fatal(err)
	}

	record := map[string]interface{}{
		"benchmark": "BenchmarkClusterMatch",
		"graph":     fmt.Sprintf("social n=%d seed=42", graphSize),
		"pattern":   pattern,
	}

	b.Run("single", func(b *testing.B) {
		var n int
		for i := 0; i < b.N; i++ {
			res, err := match.QMatch(g, q, nil)
			if err != nil {
				b.Fatal(err)
			}
			n = len(res.Matches)
		}
		record["single_ns_per_op"] = avgNs(b)
		record["answers"] = n
	})

	for _, workers := range []int{1, 2, 4} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			ts := cluster.InProcessN(workers, server.Config{})
			defer cluster.CloseAll(ts)
			c, err := cluster.New(g, ts, cluster.Config{D: 2})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Match(q); err != nil {
					b.Fatal(err)
				}
			}
			record[fmt.Sprintf("cluster%d_ns_per_op", workers)] = avgNs(b)
		})
	}

	if os.Getenv("QGP_BENCH_RECORD") != "" {
		b.StopTimer()
		f, err := os.Create("BENCH_cluster.json")
		if err != nil {
			b.Fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(record); err != nil {
			b.Fatal(err)
		}
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}
		b.Logf("wrote BENCH_cluster.json")
	}
}

// avgNs reads the per-op time accumulated so far in a sub-benchmark. The
// testing package only exposes elapsed time through b.Elapsed.
func avgNs(b *testing.B) int64 {
	if b.N == 0 {
		return 0
	}
	return b.Elapsed().Nanoseconds() / int64(b.N)
}
