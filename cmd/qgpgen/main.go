// Command qgpgen generates the synthetic workloads of §7 to disk: social
// (Pokec-like), knowledge (YAGO2-like) and small-world (GTgraph-like)
// graphs in the text format of internal/graph, and QGPs in the DSL of
// internal/core.
//
// Usage:
//
//	qgpgen -kind social -size 10000 -seed 1 -out social.g
//	qgpgen -kind smallworld -size 5000 -edges 10000 -out sw.g
//	qgpgen -pattern -graph social.g -pnodes 5 -pedges 7 -ratio 30 -neg 1
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	var (
		kind    = flag.String("kind", "social", "graph kind: social, knowledge, smallworld")
		size    = flag.Int("size", 10000, "graph size (persons for social/knowledge; nodes for smallworld)")
		edges   = flag.Int("edges", 0, "edge count for smallworld (default 2x nodes)")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("out", "", "output file (default stdout)")
		binMode = flag.Bool("binary", false, "write the compact binary graph format")
		pattern = flag.Bool("pattern", false, "generate a pattern instead of a graph")
		graphIn = flag.String("graph", "", "graph file to mine patterns from (with -pattern)")
		pnodes  = flag.Int("pnodes", 5, "pattern nodes |VQ|")
		pedges  = flag.Int("pedges", 7, "pattern edges |EQ|")
		ratio   = flag.Float64("ratio", 30, "ratio aggregate pa in percent")
		neg     = flag.Int("neg", 1, "negated edges |E-Q|")
	)
	flag.Parse()

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}

	if *pattern {
		if *graphIn == "" {
			fatal(fmt.Errorf("-pattern requires -graph"))
		}
		f, err := os.Open(*graphIn)
		if err != nil {
			fatal(err)
		}
		g, err := graph.ReadAuto(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		p := gen.Pattern(g, gen.PatternConfig{
			Nodes: *pnodes, Edges: *pedges,
			RatioBP: int(*ratio * 100), NegEdges: *neg, Seed: *seed,
		})
		fmt.Fprint(w, p.String())
		return
	}

	var g *graph.Graph
	switch *kind {
	case "social":
		g = gen.Social(gen.DefaultSocial(*size, *seed))
	case "knowledge":
		g = gen.Knowledge(gen.DefaultKnowledge(*size, *seed))
	case "smallworld":
		e := *edges
		if e == 0 {
			e = 2 * *size
		}
		g = gen.SmallWorld(gen.SmallWorldConfig{Nodes: *size, Edges: e, Seed: *seed})
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}
	fmt.Fprintf(os.Stderr, "qgpgen: %s\n", g.ComputeStats())
	if *binMode {
		if err := g.WriteBinary(w); err != nil {
			fatal(err)
		}
		return
	}
	if _, err := g.WriteTo(w); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "qgpgen: %v\n", err)
	os.Exit(1)
}
