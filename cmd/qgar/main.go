// Command qgar evaluates and mines quantified graph association rules
// (§6 of the paper).
//
// Evaluate a rule given as two pattern files (antecedent ⇒ consequent):
//
//	qgar -graph social.g -antecedent q1.qgp -consequent q2.qgp [-eta 0.5]
//
// Mine rules from a graph (Exp-3's seed-and-extend miner):
//
//	qgar -graph social.g -mine [-minsupp 10] [-minconf 0.5] [-minlift 1.05] [-top 10]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rules"
)

func main() {
	var (
		graphFile  = flag.String("graph", "", "graph file (required)")
		antecedent = flag.String("antecedent", "", "antecedent pattern file (Q1)")
		consequent = flag.String("consequent", "", "consequent pattern file (Q2)")
		eta        = flag.Float64("eta", 0.5, "confidence threshold for entity identification")
		mine       = flag.Bool("mine", false, "mine rules instead of evaluating one")
		minSupp    = flag.Int("minsupp", 10, "minimum support (with -mine)")
		minConf    = flag.Float64("minconf", 0.5, "minimum confidence (with -mine)")
		minLift    = flag.Float64("minlift", 1.0, "minimum lift (with -mine)")
		top        = flag.Int("top", 10, "max rules to report (with -mine)")
		startRatio = flag.Float64("ratio", 30, "starting ratio aggregate pa in percent (with -mine)")
	)
	flag.Parse()
	if *graphFile == "" {
		flag.Usage()
		os.Exit(2)
	}
	g := readGraph(*graphFile)
	fmt.Printf("graph: %s\n", g.ComputeStats())

	if *mine {
		mined, err := rules.Mine(g, rules.MineConfig{
			MinSupport:    *minSupp,
			MinConfidence: *minConf,
			MinLift:       *minLift,
			MaxRules:      *top,
			StartRatioBP:  int(*startRatio * 100),
		})
		if err != nil {
			fatal(err)
		}
		if len(mined) == 0 {
			fmt.Println("no rules meet the thresholds")
			return
		}
		fmt.Printf("%-50s %-8s %-6s %s\n", "rule", "support", "conf", "lift")
		for _, mr := range mined {
			fmt.Printf("%-50s %-8d %-6.2f %.2f\n",
				mr.Rule.Name, mr.Eval.Support, mr.Eval.Confidence, mr.Eval.Lift)
		}
		return
	}

	if *antecedent == "" || *consequent == "" {
		fatal(fmt.Errorf("evaluation needs -antecedent and -consequent (or use -mine)"))
	}
	r, err := rules.New("cli-rule", readPattern(*antecedent), readPattern(*consequent))
	if err != nil {
		fatal(err)
	}
	ev, err := r.Evaluate(g)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("support=%d  confidence=%.3f  lift=%.3f  (|Q1∩Xo|=%d)\n",
		ev.Support, ev.Confidence, ev.Lift, ev.XoSize)
	identified, err := r.Identify(g, *eta)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%d entities identified at η=%.2f\n", len(identified), *eta)
	for i, v := range identified {
		if i >= 20 {
			fmt.Printf("  ... %d more\n", len(identified)-20)
			break
		}
		fmt.Printf("  node %d (%s)\n", v, g.NodeLabelName(v))
	}
}

func readGraph(path string) *graph.Graph {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	g, err := graph.ReadAuto(f)
	if err != nil {
		fatal(err)
	}
	return g
}

func readPattern(path string) *core.Pattern {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	p, err := core.Parse(string(data))
	if err != nil {
		fatal(err)
	}
	return p
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "qgar: %v\n", err)
	os.Exit(1)
}
