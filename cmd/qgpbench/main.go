// Command qgpbench reproduces the paper's evaluation (§7): one experiment
// per figure, printing the series each figure plots.
//
// Usage:
//
//	qgpbench -list
//	qgpbench -exp 1 [-scale small|full] [-seed N]
//	qgpbench -exp 0            # run everything
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		expID = flag.Int("exp", 0, "experiment id (1-13); 0 runs all")
		scale = flag.String("scale", "full", "workload scale: small or full")
		seed  = flag.Int64("seed", 1, "workload seed")
		list  = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("exp %-2d %-9s %s\n", e.ID, e.Figure, e.Title)
		}
		return
	}

	var sc bench.Scale
	switch *scale {
	case "small":
		sc = bench.Small()
	case "full":
		sc = bench.Full()
	default:
		fmt.Fprintf(os.Stderr, "qgpbench: unknown scale %q (want small or full)\n", *scale)
		os.Exit(2)
	}
	sc.Seed = *seed

	run := func(e bench.Experiment) {
		fmt.Printf("# exp %d — %s: %s\n", e.ID, e.Figure, e.Title)
		start := time.Now()
		if err := e.Run(sc, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "qgpbench: exp %d: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("# exp %d done in %v\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if *expID == 0 {
		for _, e := range bench.All() {
			run(e)
		}
		return
	}
	e, ok := bench.ByID(*expID)
	if !ok {
		fmt.Fprintf(os.Stderr, "qgpbench: no experiment %d (use -list)\n", *expID)
		os.Exit(2)
	}
	run(e)
}
