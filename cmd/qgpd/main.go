// Command qgpd serves quantified graph pattern matching over TCP with a
// newline-delimited JSON protocol (see internal/server for the command
// set). Sessions are per-connection; each session loads or generates its
// own graph and queries it.
//
// Usage:
//
//	qgpd [-addr :7687] [-max-concurrent 4] [-budget 50000000]
//
// Observability: -debug-addr starts an HTTP listener with the server's
// metrics registry (per-command counts and latency histograms), a health
// report and the runtime profiles:
//
//	qgpd -addr :7687 -debug-addr :7698
//	curl -s localhost:7698/metrics
//	curl -s localhost:7698/healthz
//
// The same snapshot is served in-protocol by the metrics command.
//
// Try it with netcat:
//
//	printf '{"id":1,"cmd":"gen","kind":"social","size":1000}\n{"id":2,"cmd":"match","pattern":"qgp\nn xo person *\nn z person\ne xo z follow >=3\n"}\n' | nc localhost 7687
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":7687", "listen address")
	maxConcurrent := flag.Int("max-concurrent", 4, "maximum concurrently executing queries")
	budget := flag.Int64("budget", 50_000_000, "default extension budget per query (-1 disables)")
	maxGraph := flag.Int("max-graph", 50_000_000, "maximum session graph size (|V|+|E|)")
	idle := flag.Duration("idle-timeout", 5*time.Minute, "close idle connections after this long")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /healthz and /debug/pprof on this HTTP address (empty: disabled)")
	flag.Parse()

	reg := obs.NewRegistry()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("qgpd: %v", err)
	}
	srv := server.New(server.Config{
		MaxConcurrent: *maxConcurrent,
		DefaultBudget: *budget,
		MaxGraphSize:  *maxGraph,
		IdleTimeout:   *idle,
		Metrics:       reg,
	})
	log.Printf("qgpd: listening on %s", ln.Addr())

	var debug *obs.DebugServer
	if *debugAddr != "" {
		debug, err = obs.Serve(*debugAddr, reg, srv.Health)
		if err != nil {
			log.Fatalf("qgpd: debug listener: %v", err)
		}
		log.Printf("qgpd: debug endpoint on http://%s (/metrics /healthz /debug/pprof)", debug.Addr())
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case sig := <-sigc:
		log.Printf("qgpd: %v, shutting down", sig)
	case err := <-errc:
		log.Printf("qgpd: serve: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if debug != nil {
		debug.Close()
	}
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "qgpd: shutdown: %v\n", err)
		os.Exit(1)
	}
}
