// Command qgpd serves quantified graph pattern matching over TCP with a
// newline-delimited JSON protocol (see internal/server for the command
// set). Sessions are per-connection; each session loads or generates its
// own graph and queries it.
//
// Usage:
//
//	qgpd [-addr :7687] [-max-concurrent 4] [-budget 50000000]
//
// Each session holds at most -max-watches standing patterns (default
// 16). Workers serving a shared multi-tenant qgpcluster front end must
// run with -max-watches -1: the front end aggregates every tenant's
// watches in one worker session and enforces quotas per tenant itself.
// A session holding a fragment answers the stats command restricted to
// its owned nodes (structured triple rows), so a cluster front end can
// sum per-worker summaries into the exact global answer and route the
// command to replicas like any other read.
//
// Observability: -debug-addr starts an HTTP listener with the server's
// metrics registry (per-command counts and latency histograms), a health
// report, retained request traces, windowed percentiles and the runtime
// profiles:
//
//	qgpd -addr :7687 -debug-addr :7698
//	curl -s localhost:7698/metrics                 # cumulative, JSON
//	curl -s 'localhost:7698/metrics?format=prom'   # Prometheus text format
//	curl -s 'localhost:7698/metrics?window=1'      # last-window p50/p95/p99
//	curl -s 'localhost:7698/debug/traces?slow=1'   # recent slow requests
//	curl -s localhost:7698/healthz
//
// The cumulative snapshot is also served in-protocol by the metrics
// command. -trace additionally logs one structured line per finished
// request; the trace ring buffer (-trace-buf, -trace-slow) is always on.
//
// EXPLAIN/PROFILE: the explain command returns the planner's matching
// order and cardinality estimates without executing; profile executes a
// match or update and returns a per-stage document (candidate sizes,
// order, timings; apply/affected/verify split and the affected-vs-|V|
// work ratio for updates) in the response's profile field.
//
// Try it with netcat:
//
//	printf '{"id":1,"cmd":"gen","kind":"social","size":1000}\n{"id":2,"cmd":"match","pattern":"qgp\nn xo person *\nn z person\ne xo z follow >=3\n"}\n' | nc localhost 7687
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":7687", "listen address")
	maxConcurrent := flag.Int("max-concurrent", 4, "maximum concurrently executing queries")
	budget := flag.Int64("budget", 50_000_000, "default extension budget per query (-1 disables)")
	maxGraph := flag.Int("max-graph", 50_000_000, "maximum session graph size (|V|+|E|)")
	maxWatches := flag.Int("max-watches", 0, "maximum standing patterns per session (0 = default 16, negative = unlimited; qgpcluster workers in shared multi-tenant mode need -1)")
	idle := flag.Duration("idle-timeout", 5*time.Minute, "close idle connections after this long")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /healthz, /debug/traces and /debug/pprof on this HTTP address (empty: disabled)")
	trace := flag.Bool("trace", false, "log one structured line per finished request")
	traceBuf := flag.Int("trace-buf", 128, "retain this many finished request traces for /debug/traces")
	traceSlow := flag.Float64("trace-slow", 50, "flag traces at or above this many milliseconds as slow (0 disables)")
	window := flag.Duration("window", 10*time.Second, "latency percentile window length for /metrics?window=1")
	flag.Parse()

	reg := obs.NewRegistry()
	traces := obs.NewTraceBuffer(*traceBuf, *traceSlow)
	var logf func(format string, args ...interface{})
	if *trace {
		logf = log.Printf
	}
	tracer := obs.NewTracerWith(logf, traces)
	windows := obs.NewWindows(reg, *window)
	windows.Start()
	defer windows.Stop()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("qgpd: %v", err)
	}
	srv := server.New(server.Config{
		MaxConcurrent: *maxConcurrent,
		DefaultBudget: *budget,
		MaxGraphSize:  *maxGraph,
		MaxWatches:    *maxWatches,
		IdleTimeout:   *idle,
		Metrics:       reg,
		Tracer:        tracer,
	})
	log.Printf("qgpd: listening on %s", ln.Addr())

	var debug *obs.DebugServer
	if *debugAddr != "" {
		debug, err = obs.ServeWith(*debugAddr, obs.HandlerConfig{
			Registry: reg,
			Health:   srv.Health,
			Traces:   traces,
			Windows:  windows,
		})
		if err != nil {
			log.Fatalf("qgpd: debug listener: %v", err)
		}
		log.Printf("qgpd: debug endpoint on http://%s (/metrics /healthz /debug/traces /debug/pprof)", debug.Addr())
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case sig := <-sigc:
		log.Printf("qgpd: %v, shutting down", sig)
	case err := <-errc:
		log.Printf("qgpd: serve: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if debug != nil {
		debug.Close()
	}
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "qgpd: shutdown: %v\n", err)
		os.Exit(1)
	}
}
