// Command qgpd serves quantified graph pattern matching over TCP with a
// newline-delimited JSON protocol (see internal/server for the command
// set). Sessions are per-connection; each session loads or generates its
// own graph and queries it.
//
// Usage:
//
//	qgpd [-addr :7687] [-max-concurrent 4] [-budget 50000000]
//
// Try it with netcat:
//
//	printf '{"id":1,"cmd":"gen","kind":"social","size":1000}\n{"id":2,"cmd":"match","pattern":"qgp\nn xo person *\nn z person\ne xo z follow >=3\n"}\n' | nc localhost 7687
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":7687", "listen address")
	maxConcurrent := flag.Int("max-concurrent", 4, "maximum concurrently executing queries")
	budget := flag.Int64("budget", 50_000_000, "default extension budget per query (-1 disables)")
	maxGraph := flag.Int("max-graph", 50_000_000, "maximum session graph size (|V|+|E|)")
	idle := flag.Duration("idle-timeout", 5*time.Minute, "close idle connections after this long")
	flag.Parse()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("qgpd: %v", err)
	}
	srv := server.New(server.Config{
		MaxConcurrent: *maxConcurrent,
		DefaultBudget: *budget,
		MaxGraphSize:  *maxGraph,
		IdleTimeout:   *idle,
	})
	log.Printf("qgpd: listening on %s", ln.Addr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case sig := <-sigc:
		log.Printf("qgpd: %v, shutting down", sig)
	case err := <-errc:
		log.Printf("qgpd: serve: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "qgpd: shutdown: %v\n", err)
		os.Exit(1)
	}
}
