// Command qgpcluster runs the coordinator of a quantified-matching
// cluster and exposes it as a front-end server speaking the same
// newline-delimited JSON protocol as qgpd, so existing clients work
// unchanged. Workers are either stock qgpd processes reached over TCP
// (-workers) or embedded in-process servers (-spawn).
//
// All connections share ONE cluster session — one fragmentation, one
// write path — multiplexed by the tenant layer: each connection (or
// named session, via the session wire command) gets a private watch
// namespace with quotas (-max-tenants, -tenant-idle), and with
// -replicas k > 1 reads are routed to the least-loaded live copy of
// each fragment, fenced so a session always sees its own writes.
// -isolate restores the legacy cluster-per-connection model.
//
// Distributed (workers need -max-watches -1: the shared session
// aggregates every tenant's watches in one worker session, so the
// worker-side per-session cap must be lifted to match the front end's):
//
//	qgpd -addr :7700 -max-watches -1 &
//	qgpd -addr :7701 -max-watches -1 &
//	qgpcluster -addr :7688 -workers localhost:7700,localhost:7701
//
// Single machine (embedded workers):
//
//	qgpcluster -addr :7688 -spawn 4
//
// High availability: keep k copies of every fragment on warm replica
// sessions, probe the workers every 2 seconds and fail dead ones over,
// and journal the graph and every accepted update batch so a restart
// recovers the cluster (graph, fragments and standing watches):
//
//	qgpcluster -addr :7688 -spawn 4 -replicas 2 -supervise 2s -journal /var/lib/qgp
//
// Observability: -debug-addr starts an HTTP listener with the metrics
// registry, a health report and the runtime profiles; -trace logs one
// structured line per fan-out request with per-worker spans:
//
//	qgpcluster -addr :7688 -spawn 2 -debug-addr :7699 -trace
//	curl -s localhost:7699/metrics   # counters, gauges, latency histograms
//	curl -s 'localhost:7699/metrics?format=prom'   # Prometheus text format
//	curl -s 'localhost:7699/metrics?window=1'      # last-window p50/p95/p99
//	curl -s 'localhost:7699/debug/traces?slow=1'   # recent slow fan-outs
//	curl -s localhost:7699/healthz   # topology + per-fragment liveness
//	curl -s localhost:7699/debug/pprof/   # standard runtime profiles
//
// The trace ring buffer behind /debug/traces (-trace-buf, -trace-slow)
// is always on; -trace additionally logs each finished fan-out. The
// explain and profile wire commands return merged cluster-level plan and
// per-stage profile documents with each worker's own document embedded.
//
// The same registry snapshot is served over the wire protocol as the
// metrics command, so a newline-JSON client needs no second port:
//
//	printf '{"id":1,"cmd":"metrics"}\n' | nc localhost 7688
//
// Try it with netcat:
//
//	printf '{"id":1,"cmd":"gen","kind":"social","size":1000}\n{"id":2,"cmd":"match","pattern":"qgp\nn xo person *\nn z person\ne xo z follow >=3\n"}\n' | nc localhost 7688
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/ha"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/tenant"
)

func main() {
	addr := flag.String("addr", ":7688", "front-end listen address")
	workers := flag.String("workers", "", "comma-separated qgpd worker addresses (empty: use -spawn)")
	spawn := flag.Int("spawn", 2, "number of embedded in-process workers when -workers is empty")
	d := flag.Int("d", 2, "hop radius preserved by the fragmentation (patterns needing more are rejected)")
	engine := flag.String("engine", "qmatch", "per-worker matching engine: qmatch | qmatchn | enum")
	budget := flag.Int64("budget", 0, "extension budget forwarded to workers (0 = worker default)")
	replicas := flag.Int("replicas", 1, "copies of each fragment (k); k-1 warm replicas back every primary and serve routed reads")
	maxTenants := flag.Int("max-tenants", 1024, "maximum live tenant sessions (negative = unlimited)")
	tenantIdle := flag.Duration("tenant-idle", 15*time.Minute, "evict named tenant sessions with no connection after this long idle (negative = never)")
	tenantQPS := flag.Float64("tenant-qps", 0, "per-tenant admitted commands per second — match, update, watch (0 = unlimited)")
	tenantBurst := flag.Int("tenant-burst", 0, "per-tenant command bucket size (0 = 2x -tenant-qps, at least 1)")
	tenantAffected := flag.Float64("tenant-affected", 0, "per-tenant update budget in affected-set units per second, post-paid against each batch's real re-verification size (0 = unlimited)")
	tenantAffectedBurst := flag.Int("tenant-affected-burst", 0, "per-tenant affected-set budget bucket size (0 = 4x -tenant-affected, at least 1)")
	tenantInbox := flag.Int("tenant-inbox", 0, "per-watch cap on a tenant's undrained coalesced delta ids; overflow drops the state and marks the watch resync (0 = 4096, negative = unlimited)")
	isolate := flag.Bool("isolate", false, "legacy mode: a private cluster per connection instead of the shared multi-tenant session (incompatible with -journal)")
	journalDir := flag.String("journal", "", "directory for the snapshot+journal; existing state is recovered at startup and the front end serves one durable session shared by all connections")
	fsync := flag.Bool("fsync", false, "fsync every journaled update batch before fanning it out")
	compactBytes := flag.Int64("compact-bytes", 16<<20, "fold the mutation journal into a fresh snapshot once it exceeds this many bytes (0 = compact only at startup)")
	supervise := flag.Duration("supervise", 0, "probe workers this often and fail dead ones over (0 = failover only when an operation trips)")
	maxGraph := flag.Int("max-graph", 50_000_000, "maximum session graph size (|V|+|E|)")
	idle := flag.Duration("idle-timeout", 5*time.Minute, "close idle front-end connections after this long")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /healthz and /debug/pprof on this HTTP address (empty: disabled)")
	trace := flag.Bool("trace", false, "log one structured line per fan-out request with per-worker spans")
	traceBuf := flag.Int("trace-buf", 128, "retain this many finished fan-out traces for /debug/traces")
	traceSlow := flag.Float64("trace-slow", 50, "flag traces at or above this many milliseconds as slow (0 disables)")
	window := flag.Duration("window", 10*time.Second, "latency percentile window length for /metrics?window=1")
	flag.Parse()

	// One registry is shared by every layer — front end, coordinators,
	// embedded workers, supervision monitors and the journal — so the
	// debug listener and the metrics wire command see the whole process.
	reg := obs.NewRegistry()
	traces := obs.NewTraceBuffer(*traceBuf, *traceSlow)
	var logf func(format string, args ...interface{})
	if *trace {
		logf = log.Printf
	}
	tracer := obs.NewTracerWith(logf, traces)
	windows := obs.NewWindows(reg, *window)
	windows.Start()
	defer windows.Stop()

	clusterCfg := cluster.Config{D: *d, Engine: *engine, Budget: *budget, Replicas: *replicas,
		Metrics: reg, Tracer: tracer}

	// The pool both places replicas (and failover re-ships) and supplies
	// each session's primary workers, so all worker sessions share one
	// load-tracked endpoint set.
	var pool *ha.Pool
	var workerCount int
	if *workers != "" {
		addrs := strings.Split(*workers, ",")
		for i := range addrs {
			addrs[i] = strings.TrimSpace(addrs[i])
		}
		pool = ha.NewDialPool(addrs)
		workerCount = len(addrs)
		log.Printf("qgpcluster: using %d TCP worker endpoints: %s", len(addrs), *workers)
		if !*isolate {
			// The coordinator cannot configure remote workers; a stock
			// qgpd keeps its default 16-watch session cap, so tenants
			// collectively hit it early (each rejection is returned to
			// that one caller; the shared cluster stays up).
			log.Printf("qgpcluster: shared multi-tenant session over remote workers: run each qgpd with -max-watches -1, or watch registrations are capped by the workers' per-session default")
		}
	} else {
		if *spawn < 1 {
			log.Fatalf("qgpcluster: -spawn must be at least 1")
		}
		// Embedded workers idle as long as the front-end session lives;
		// don't let the worker-side idle timeout cut them off. The shared
		// session aggregates every tenant's watches in one worker session,
		// so the per-session watch cap is lifted — quotas are per tenant
		// at the front end.
		wcfg := server.Config{IdleTimeout: 24 * time.Hour, Metrics: reg}
		if !*isolate {
			wcfg.MaxWatches = -1
		}
		pool = ha.NewSpawnPool(*spawn, wcfg)
		workerCount = *spawn
		log.Printf("qgpcluster: spawning %d embedded workers per session", *spawn)
	}
	clusterCfg.Pool = pool
	newWorkers := func() ([]cluster.Transport, error) { return pool.Primaries(workerCount) }

	if *isolate && *journalDir != "" {
		log.Fatalf("qgpcluster: -isolate is incompatible with -journal (durability requires the shared session)")
	}
	feCfg := cluster.FrontendConfig{
		Cluster:    clusterCfg,
		NewWorkers: newWorkers,
		Isolate:    *isolate,
		Tenancy: tenant.Config{
			MaxTenants:     *maxTenants,
			IdleTimeout:    *tenantIdle,
			RateQPS:        *tenantQPS,
			RateBurst:      *tenantBurst,
			AffectedPerSec: *tenantAffected,
			AffectedBurst:  *tenantAffectedBurst,
			MaxPendingIDs:  *tenantInbox,
			Logf:           log.Printf,
			Metrics:        reg,
		},
		MaxGraphSize: *maxGraph,
		IdleTimeout:  *idle,
	}

	// Live monitors are tracked so /healthz can report supervision
	// activity (passes, failovers, uptime) next to the topology.
	var mmu sync.Mutex
	monitors := make(map[*ha.Monitor]bool)
	if *supervise > 0 {
		interval := *supervise
		feCfg.OnSession = func(c *cluster.Coordinator) func() {
			m := ha.NewMonitor(c, ha.MonitorConfig{Interval: interval, Logf: log.Printf, Metrics: reg})
			m.Start()
			mmu.Lock()
			monitors[m] = true
			mmu.Unlock()
			return func() {
				mmu.Lock()
				delete(monitors, m)
				mmu.Unlock()
				m.Stop()
			}
		}
	}

	var journal *ha.Journal
	if *journalDir != "" {
		var err error
		journal, err = ha.OpenJournal(*journalDir, ha.JournalOptions{Fsync: *fsync, CompactBytes: *compactBytes, Metrics: reg})
		if err != nil {
			log.Fatalf("qgpcluster: %v", err)
		}
		durable := &cluster.DurableState{Journal: journal}
		if journal.HasState() {
			durable.Graph = journal.Graph()
			durable.Watches = journal.Watches()
			info := journal.Recovery()
			log.Printf("qgpcluster: recovered %d nodes / %d watches from %s (journal records applied: %d, torn tail: %v)",
				durable.Graph.NumNodes(), len(durable.Watches), *journalDir, info.Applied, info.TornTail)
		} else {
			log.Printf("qgpcluster: journaling to fresh directory %s", *journalDir)
		}
		feCfg.Durable = durable
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("qgpcluster: %v", err)
	}
	fe := cluster.NewFrontend(feCfg)
	log.Printf("qgpcluster: listening on %s (d=%d, replicas=%d)", ln.Addr(), *d, *replicas)

	// Startup gauges, so /metrics is non-empty before the first request.
	reg.Gauge("cluster.config.workers").Set(int64(workerCount))
	reg.Gauge("cluster.config.replicas").Set(int64(*replicas))
	reg.Gauge("cluster.config.d").Set(int64(*d))

	var debug *obs.DebugServer
	if *debugAddr != "" {
		health := func() (interface{}, error) {
			doc, err := fe.Health()
			out := map[string]interface{}{"cluster": doc}
			// Per-tenant rows (watches, pending inbox sizes, throttle and
			// overflow counts) next to the topology, so one curl answers
			// "who is being limited and who is not draining".
			if tm := fe.Tenants(); tm != nil {
				if rows := tm.List(); len(rows) > 0 {
					out["tenants"] = rows
				}
			}
			mmu.Lock()
			stats := make([]ha.MonitorStats, 0, len(monitors))
			for m := range monitors {
				stats = append(stats, m.Stats())
			}
			mmu.Unlock()
			if len(stats) > 0 {
				out["monitors"] = stats
			}
			return out, err
		}
		debug, err = obs.ServeWith(*debugAddr, obs.HandlerConfig{
			Registry: reg,
			Health:   health,
			Traces:   traces,
			Windows:  windows,
		})
		if err != nil {
			log.Fatalf("qgpcluster: debug listener: %v", err)
		}
		log.Printf("qgpcluster: debug endpoint on http://%s (/metrics /healthz /debug/traces /debug/pprof)", debug.Addr())
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- fe.Serve(ln) }()

	select {
	case sig := <-sigc:
		log.Printf("qgpcluster: %v, shutting down", sig)
	case err := <-errc:
		log.Printf("qgpcluster: serve: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	exitCode := 0
	if debug != nil {
		debug.Close()
	}
	if err := fe.Shutdown(ctx); err != nil {
		log.Printf("qgpcluster: shutdown: %v", err)
		exitCode = 1
	}
	if journal != nil {
		if err := journal.Close(); err != nil {
			log.Printf("qgpcluster: journal close: %v", err)
			exitCode = 1
		}
	}
	os.Exit(exitCode)
}
