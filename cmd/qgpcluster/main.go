// Command qgpcluster runs the coordinator of a quantified-matching
// cluster and exposes it as a front-end server speaking the same
// newline-delimited JSON protocol as qgpd, so existing clients work
// unchanged. Workers are either stock qgpd processes reached over TCP
// (-workers) or embedded in-process servers (-spawn); each front-end
// connection is an independent cluster session.
//
// Distributed:
//
//	qgpd -addr :7700 &
//	qgpd -addr :7701 &
//	qgpcluster -addr :7688 -workers localhost:7700,localhost:7701
//
// Single machine (embedded workers):
//
//	qgpcluster -addr :7688 -spawn 4
//
// Try it with netcat:
//
//	printf '{"id":1,"cmd":"gen","kind":"social","size":1000}\n{"id":2,"cmd":"match","pattern":"qgp\nn xo person *\nn z person\ne xo z follow >=3\n"}\n' | nc localhost 7688
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":7688", "front-end listen address")
	workers := flag.String("workers", "", "comma-separated qgpd worker addresses (empty: use -spawn)")
	spawn := flag.Int("spawn", 2, "number of embedded in-process workers when -workers is empty")
	d := flag.Int("d", 2, "hop radius preserved by the fragmentation (patterns needing more are rejected)")
	engine := flag.String("engine", "qmatch", "per-worker matching engine: qmatch | qmatchn | enum")
	budget := flag.Int64("budget", 0, "extension budget forwarded to workers (0 = worker default)")
	maxGraph := flag.Int("max-graph", 50_000_000, "maximum session graph size (|V|+|E|)")
	idle := flag.Duration("idle-timeout", 5*time.Minute, "close idle front-end connections after this long")
	flag.Parse()

	clusterCfg := cluster.Config{D: *d, Engine: *engine, Budget: *budget}
	var newWorkers func() ([]cluster.Transport, error)
	if *workers != "" {
		addrs := strings.Split(*workers, ",")
		newWorkers = func() ([]cluster.Transport, error) {
			ts := make([]cluster.Transport, 0, len(addrs))
			for _, a := range addrs {
				t, err := cluster.Dial(strings.TrimSpace(a))
				if err != nil {
					cluster.CloseAll(ts)
					return nil, fmt.Errorf("worker %s: %w", a, err)
				}
				ts = append(ts, t)
			}
			return ts, nil
		}
		log.Printf("qgpcluster: using %d TCP workers: %s", len(addrs), *workers)
	} else {
		if *spawn < 1 {
			log.Fatalf("qgpcluster: -spawn must be at least 1")
		}
		n := *spawn
		newWorkers = func() ([]cluster.Transport, error) {
			// Embedded workers idle as long as the front-end session
			// lives; don't let the worker-side idle timeout cut them off.
			return cluster.InProcessN(n, server.Config{IdleTimeout: 24 * time.Hour}), nil
		}
		log.Printf("qgpcluster: spawning %d embedded workers per session", n)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("qgpcluster: %v", err)
	}
	fe := cluster.NewFrontend(cluster.FrontendConfig{
		Cluster:      clusterCfg,
		NewWorkers:   newWorkers,
		MaxGraphSize: *maxGraph,
		IdleTimeout:  *idle,
	})
	log.Printf("qgpcluster: listening on %s (d=%d)", ln.Addr(), *d)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- fe.Serve(ln) }()

	select {
	case sig := <-sigc:
		log.Printf("qgpcluster: %v, shutting down", sig)
	case err := <-errc:
		log.Printf("qgpcluster: serve: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := fe.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "qgpcluster: shutdown: %v\n", err)
		os.Exit(1)
	}
}
