// Command qgpmatch evaluates a quantified graph pattern against a graph.
//
// Usage:
//
//	qgpmatch -graph social.g -pattern q.qgp [-algo qmatch|qmatchn|enum]
//	qgpmatch -graph social.g -pattern q.qgp -workers 4 -threads 2
//
// With -workers > 1 the graph is partitioned with DPar and evaluated by
// PQMatch; otherwise the sequential algorithms run. -stats prints work
// metrics alongside the matches. -planner chooses the matching order from
// collected graph statistics. -format selects the graph input format:
// auto (native text/binary, default), csv (edge list: from,to,label), or
// json (property-graph document). -rpq applies a quantified path
// constraint ("expr within N quant") to the matches as a post-filter.
// -profile prints the planner's explanation (matching order, per-step
// cardinality estimates) and the per-pattern stage profile (candidate
// sizes, order, timings) as one JSON document after the matches.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/match"
	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/plan"
	"repro/internal/rpq"
	"repro/internal/stats"
)

func main() {
	var (
		graphFile   = flag.String("graph", "", "graph file (required)")
		patternFile = flag.String("pattern", "", "pattern file in the QGP DSL (required)")
		algo        = flag.String("algo", "qmatch", "sequential algorithm: qmatch, qmatchn, enum")
		workers     = flag.Int("workers", 1, "parallel workers (n > 1 switches to PQMatch)")
		threads     = flag.Int("threads", 2, "intra-fragment threads b (with -workers)")
		showStats   = flag.Bool("stats", false, "print work metrics")
		limit       = flag.Int("limit", 20, "print at most this many matches (0 = all)")
		format      = flag.String("format", "auto", "graph input format: auto, csv, json")
		planner     = flag.Bool("planner", false, "choose the matching order from graph statistics")
		constraint  = flag.String("rpq", "", "quantified path constraint post-filter, e.g. \"follow.follow within 2 >=5\"")
		profile     = flag.Bool("profile", false, "print the plan explanation and per-stage profile as JSON (sequential engines)")
	)
	flag.Parse()
	if *graphFile == "" || *patternFile == "" {
		flag.Usage()
		os.Exit(2)
	}

	g := readGraph(*graphFile, *format)
	q := readPattern(*patternFile)
	fmt.Printf("graph: %s\npattern:\n%s", g.ComputeStats(), q)

	start := time.Now()
	var matches []graph.NodeID
	var metrics match.Metrics
	var prof *match.Profile

	if *workers > 1 {
		if *profile {
			fatal(fmt.Errorf("-profile applies to the sequential engines; drop -workers"))
		}
		d := parallel.RequiredHops(q)
		part, err := partition.DPar(g, partition.Config{Workers: *workers, D: d})
		if err != nil {
			fatal(err)
		}
		res, err := parallel.PQMatch(parallel.NewCluster(part), q, *threads)
		if err != nil {
			fatal(err)
		}
		matches, metrics = res.Matches, res.Metrics
		fmt.Printf("PQMatch n=%d b=%d d=%d: sim_work=%d total_work=%d\n",
			*workers, *threads, d, res.SimWork, res.TotalWork)
	} else {
		run := match.QMatch
		switch *algo {
		case "qmatch":
		case "qmatchn":
			run = match.QMatchN
		case "enum":
			run = match.Enum
		default:
			fatal(fmt.Errorf("unknown algorithm %q", *algo))
		}
		var opts *match.Options
		if *planner {
			opts = &match.Options{OrderBy: plan.OrderFunc(g, stats.Collect(g))}
		}
		if *profile {
			if opts == nil {
				opts = &match.Options{}
			}
			opts.CollectProfile = true
		}
		res, err := run(g, q, opts)
		if err != nil {
			fatal(err)
		}
		matches, metrics, prof = res.Matches, res.Metrics, res.Profile
	}
	if *constraint != "" {
		c, err := rpq.ParseConstraint(*constraint)
		if err != nil {
			fatal(err)
		}
		before := len(matches)
		matches = rpq.Filter(g, matches, c)
		fmt.Printf("path constraint %q kept %d of %d matches\n", *constraint, len(matches), before)
	}
	elapsed := time.Since(start)

	fmt.Printf("%d matches in %v\n", len(matches), elapsed.Round(time.Microsecond))
	shown := matches
	if *limit > 0 && len(shown) > *limit {
		shown = shown[:*limit]
	}
	for _, v := range shown {
		fmt.Printf("  node %d (%s)\n", v, g.NodeLabelName(v))
	}
	if len(shown) < len(matches) {
		fmt.Printf("  ... %d more\n", len(matches)-len(shown))
	}
	if *showStats {
		fmt.Printf("metrics: focus_candidates=%d verifications=%d extensions=%d early_accepts=%d inc_runs=%d\n",
			metrics.FocusCandidates, metrics.Verifications, metrics.Extensions,
			metrics.EarlyAccepts, metrics.IncRuns)
	}
	if *profile && prof != nil {
		doc := struct {
			Plan    *plan.Explanation `json:"plan,omitempty"`
			Profile *match.Profile    `json:"profile"`
		}{Profile: prof}
		if ex, err := plan.Explain(g, stats.Collect(g), q); err == nil {
			doc.Plan = ex
		}
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Printf("profile:\n%s\n", b)
	}
}

func readGraph(path, format string) *graph.Graph {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	var g *graph.Graph
	switch format {
	case "auto":
		g, err = graph.ReadAuto(f)
	case "csv":
		var res *load.Result
		res, err = load.CSV(f, load.CSVOptions{LabelCol: 2})
		if res != nil {
			g = res.Graph
		}
	case "json":
		var res *load.Result
		res, err = load.JSON(f)
		if res != nil {
			g = res.Graph
		}
	default:
		err = fmt.Errorf("unknown format %q", format)
	}
	if err != nil {
		fatal(err)
	}
	return g
}

func readPattern(path string) *core.Pattern {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	q, err := core.Parse(string(data))
	if err != nil {
		fatal(err)
	}
	return q
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "qgpmatch: %v\n", err)
	os.Exit(1)
}
