package repro

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/obs"
	"repro/internal/server"
)

// freePort reserves a loopback port and releases it for the child
// process to bind. The tiny reuse race is acceptable in a test.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestClusterDebugEndpointE2E boots the real qgpcluster binary with the
// debug listener and verifies the whole observability surface: /healthz
// and /metrics answer over HTTP with a non-empty registry carrying the
// update fan-out counters and per-worker latency histograms, the
// metrics wire command reports the same numbers, and the pprof index
// serves.
func TestClusterDebugEndpointE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("binary end-to-end test skipped in -short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "qgpcluster")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/qgpcluster").CombinedOutput(); err != nil {
		t.Fatalf("build qgpcluster: %v\n%s", err, out)
	}

	addr, debugAddr := freePort(t), freePort(t)
	cmd := exec.Command(bin, "-addr", addr, "-spawn", "2", "-debug-addr", debugAddr, "-trace")
	var logBuf strings.Builder
	cmd.Stdout, cmd.Stderr = &logBuf, &logBuf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get("http://" + debugAddr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}

	// Wait for the debug listener to come up.
	up := false
	for i := 0; i < 100 && !up; i++ {
		resp, err := http.Get("http://" + debugAddr + "/healthz")
		if err == nil {
			resp.Body.Close()
			up = resp.StatusCode == http.StatusOK
		}
		if !up {
			time.Sleep(50 * time.Millisecond)
		}
	}
	if !up {
		t.Fatalf("debug endpoint never became healthy; process log:\n%s", logBuf.String())
	}

	// /metrics is non-empty before any request (startup gauges).
	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	var boot obs.Snapshot
	if err := json.Unmarshal(body, &boot); err != nil {
		t.Fatalf("/metrics does not parse: %v\n%s", err, body)
	}
	if boot.Gauges["cluster.config.workers"] != 2 {
		t.Fatalf("startup gauge cluster.config.workers = %d, want 2\n%s", boot.Gauges["cluster.config.workers"], body)
	}

	// Drive a session over the wire protocol so the fan-out instruments
	// record traffic.
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.Gen("social", 500, 7); err != nil {
		t.Fatalf("gen: %v", err)
	}
	if _, _, err := c.Update(server.UpdateSpec{Op: "addEdge", From: 0, To: 1, Label: "follow"}); err != nil {
		t.Fatalf("update: %v", err)
	}

	code, body = get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metrics does not parse: %v\n%s", err, body)
	}
	if snap.Counters["cluster.update.count"] != 1 {
		t.Errorf("cluster.update.count over HTTP = %d, want 1", snap.Counters["cluster.update.count"])
	}
	perWorker := 0
	for i := 0; i < 2; i++ {
		perWorker += int(snap.Histograms[fmt.Sprintf("cluster.worker.%d.update.ms", i)].Count)
	}
	if perWorker == 0 {
		t.Error("no per-worker update latency histogram recorded the round trip")
	}
	if snap.Counters["server.cmd.update.count"] == 0 {
		t.Error("embedded workers' server.cmd.update.count missing (registry not shared with the spawn pool)")
	}

	// The metrics wire command reports the same registry.
	resp, err := c.Do(&server.Request{Cmd: "metrics"})
	if err != nil {
		t.Fatalf("metrics command: %v", err)
	}
	var wire obs.Snapshot
	if err := json.Unmarshal(resp.Obs, &wire); err != nil {
		t.Fatalf("wire metrics document does not parse: %v\n%s", err, resp.Obs)
	}
	if wire.Counters["cluster.update.count"] != snap.Counters["cluster.update.count"] {
		t.Errorf("wire cluster.update.count %d != HTTP %d",
			wire.Counters["cluster.update.count"], snap.Counters["cluster.update.count"])
	}

	// /healthz reports the live session's fragments while the client
	// connection (and with it the per-connection cluster) is open.
	code, body = get("/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status %d: %s", code, body)
	}
	if !strings.Contains(string(body), `"fragments"`) || !strings.Contains(string(body), `"primaryAlive":true`) {
		t.Errorf("/healthz missing fragment liveness:\n%s", body)
	}

	if code, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", code)
	}

	// A profile command through the front end returns the merged
	// cluster-level document with per-fragment stages.
	presp, err := c.ProfileMatch("qgp\nn xo person *\nn z person\ne xo z follow >=3\n", nil)
	if err != nil {
		t.Fatalf("profile match: %v", err)
	}
	var prof struct {
		Workers   int               `json:"workers"`
		Fragments []json.RawMessage `json:"fragments"`
	}
	if err := json.Unmarshal(presp.Profile, &prof); err != nil || prof.Workers != 2 || len(prof.Fragments) != 2 {
		t.Errorf("merged profile document wrong: %v\n%s", err, presp.Profile)
	}

	// Prometheus exposition of the same registry.
	code, body = get("/metrics?format=prom")
	if code != http.StatusOK {
		t.Fatalf("/metrics?format=prom status %d", code)
	}
	prom := string(body)
	if !strings.Contains(prom, "qgp_cluster_update_count 1") || !strings.Contains(prom, `_bucket{le=`) {
		t.Errorf("prom exposition missing counters or buckets:\n%.2000s", prom)
	}

	// The trace ring buffer retained the fan-outs as structured records.
	code, body = get("/debug/traces")
	if code != http.StatusOK {
		t.Fatalf("/debug/traces status %d", code)
	}
	var traces []obs.TraceRecord
	if err := json.Unmarshal(body, &traces); err != nil || len(traces) == 0 {
		t.Fatalf("/debug/traces = %v\n%s", err, body)
	}
	seen := map[string]bool{}
	for _, tr := range traces {
		seen[tr.Op] = true
	}
	if !seen["update"] || !seen["match"] {
		t.Errorf("trace buffer missing update/match ops: %v", seen)
	}

	// -trace wrote structured fan-out lines to the process log.
	if !strings.Contains(logBuf.String(), "op=update") {
		t.Errorf("no trace line for the update in the process log:\n%s", logBuf.String())
	}
}
