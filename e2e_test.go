package repro

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIEndToEnd builds the three command-line tools and drives them
// through the generate → mine-pattern → match → bench workflow.
func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI end-to-end test skipped in -short mode")
	}
	dir := t.TempDir()
	bins := map[string]string{}
	for _, name := range []string{"qgpgen", "qgpmatch", "qgpbench", "qgar"} {
		bin := filepath.Join(dir, name)
		out, err := exec.Command("go", "build", "-o", bin, "./cmd/"+name).CombinedOutput()
		if err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, out)
		}
		bins[name] = bin
	}
	run := func(name string, args ...string) string {
		t.Helper()
		out, err := exec.Command(bins[name], args...).CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		}
		return string(out)
	}

	graphFile := filepath.Join(dir, "social.g")
	patternFile := filepath.Join(dir, "q.qgp")

	run("qgpgen", "-kind", "social", "-size", "400", "-seed", "1", "-out", graphFile)
	if fi, err := os.Stat(graphFile); err != nil || fi.Size() == 0 {
		t.Fatalf("qgpgen produced no graph: %v", err)
	}
	run("qgpgen", "-pattern", "-graph", graphFile,
		"-pnodes", "4", "-pedges", "4", "-ratio", "40", "-neg", "1", "-out", patternFile)
	pat, err := os.ReadFile(patternFile)
	if err != nil || !strings.HasPrefix(string(pat), "qgp\n") {
		t.Fatalf("qgpgen produced no pattern: %v\n%s", err, pat)
	}

	seq := run("qgpmatch", "-graph", graphFile, "-pattern", patternFile, "-stats")
	if !strings.Contains(seq, "matches in") || !strings.Contains(seq, "metrics:") {
		t.Fatalf("qgpmatch output unexpected:\n%s", seq)
	}
	par := run("qgpmatch", "-graph", graphFile, "-pattern", patternFile, "-workers", "2")
	if !strings.Contains(par, "PQMatch n=2") {
		t.Fatalf("parallel qgpmatch output unexpected:\n%s", par)
	}
	// Sequential and parallel must report the same match count.
	seqCount := extractMatchCount(t, seq)
	parCount := extractMatchCount(t, par)
	if seqCount != parCount {
		t.Fatalf("sequential found %q matches, parallel %q", seqCount, parCount)
	}

	// QGAR mining and evaluation.
	mineOut := run("qgar", "-graph", graphFile, "-mine", "-minsupp", "2", "-minconf", "0.1", "-top", "3")
	if !strings.Contains(mineOut, "graph:") {
		t.Fatalf("qgar -mine output unexpected:\n%s", mineOut)
	}
	q1 := filepath.Join(dir, "q1.qgp")
	q2 := filepath.Join(dir, "q2.qgp")
	os.WriteFile(q1, []byte("qgp\nn xo person *\nn z person\nn p product\ne xo z follow >=50%\ne z p recom\n"), 0o644)
	os.WriteFile(q2, []byte("qgp\nn xo person *\nn p product\ne xo p buy\n"), 0o644)
	evalOut := run("qgar", "-graph", graphFile, "-antecedent", q1, "-consequent", q2, "-eta", "0.1")
	if !strings.Contains(evalOut, "support=") || !strings.Contains(evalOut, "confidence=") {
		t.Fatalf("qgar evaluation output unexpected:\n%s", evalOut)
	}

	list := run("qgpbench", "-list")
	if got := strings.Count(list, "exp "); got != 15 {
		t.Fatalf("qgpbench -list shows %d experiments, want 15:\n%s", got, list)
	}

	// Invalid usage exits non-zero.
	if err := exec.Command(bins["qgpbench"], "-exp", "99").Run(); err == nil {
		t.Fatal("qgpbench accepted an unknown experiment id")
	}
	if err := exec.Command(bins["qgpmatch"], "-graph", graphFile).Run(); err == nil {
		t.Fatal("qgpmatch accepted missing -pattern")
	}
}

func extractMatchCount(t *testing.T, out string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "matches in") {
			return strings.Fields(line)[0]
		}
	}
	t.Fatalf("no match count in output:\n%s", out)
	return ""
}

// TestCLIFormatsAndPlanner drives qgpmatch through the interchange
// formats, the planner, and the path-constraint filter.
func TestCLIFormatsAndPlanner(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI test skipped in -short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "qgpmatch")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/qgpmatch").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	csvFile := filepath.Join(dir, "g.csv")
	csvData := "alice,bob,follow\nalice,carol,follow\nalice,dave,follow\nbob,carol,follow\n"
	if err := os.WriteFile(csvFile, []byte(csvData), 0o644); err != nil {
		t.Fatal(err)
	}
	jsonFile := filepath.Join(dir, "g.json")
	jsonData := `{"nodes":[{"id":"a","label":"node"},{"id":"b","label":"node"}],
	              "edges":[{"from":"a","to":"b","label":"follow"},{"from":"a","to":"a","label":"follow"}]}`
	if err := os.WriteFile(jsonFile, []byte(jsonData), 0o644); err != nil {
		t.Fatal(err)
	}
	patFile := filepath.Join(dir, "q.qgp")
	pat := "qgp\nn xo node *\nn z node\ne xo z follow >=2\n"
	if err := os.WriteFile(patFile, []byte(pat), 0o644); err != nil {
		t.Fatal(err)
	}

	run := func(args ...string) string {
		t.Helper()
		out, err := exec.Command(bin, args...).CombinedOutput()
		if err != nil {
			t.Fatalf("qgpmatch %v: %v\n%s", args, err, out)
		}
		return string(out)
	}

	// CSV: alice follows 3, bob follows 1 — only alice matches ≥2.
	out := run("-graph", csvFile, "-format", "csv", "-pattern", patFile, "-planner")
	if !strings.Contains(out, "1 matches") {
		t.Fatalf("csv run:\n%s", out)
	}
	// JSON: a has follow edges to b and itself = 2 distinct children,
	// but one is a self-loop; pattern needs 2 distinct non-xo children?
	// No — z just must be a different node than xo under isomorphism, so
	// the self-loop child (a itself) cannot serve; a has 1 usable child.
	out = run("-graph", jsonFile, "-format", "json", "-pattern", patFile)
	if !strings.Contains(out, "0 matches") {
		t.Fatalf("json run:\n%s", out)
	}
	// Path constraint filters everything at an impossible threshold.
	out = run("-graph", csvFile, "-format", "csv", "-pattern", patFile, "-rpq", "follow within 1 >=99")
	if !strings.Contains(out, "kept 0 of 1") {
		t.Fatalf("rpq run:\n%s", out)
	}
	// Bad format is a clean error.
	if out, err := exec.Command(bin, "-graph", csvFile, "-format", "yaml", "-pattern", patFile).CombinedOutput(); err == nil {
		t.Fatalf("yaml format accepted:\n%s", out)
	}
}
