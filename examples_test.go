package repro

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example program; each asserts its own
// expected answers internally (log.Fatal on mismatch), so a zero exit is
// a real end-to-end check, not a smoke test.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples skipped in -short mode")
	}
	examples := []struct {
		dir  string
		want string // substring the output must contain
	}{
		{"quickstart", "Redmi 2A"},
		{"socialmarketing", ""},
		{"knowledge", ""},
		{"parallelmatch", ""},
		{"cybersecurity", "ok"},
		{"dynamicgraph", "consistent"},
		{"serverdemo", "ok"},
		{"profiling", "work proportional to the change"},
		{"multitenant", "two tenants, one fragmentation"},
	}
	for _, ex := range examples {
		ex := ex
		t.Run(ex.dir, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", "./examples/"+ex.dir).CombinedOutput()
			if err != nil {
				t.Fatalf("example failed: %v\n%s", err, out)
			}
			if ex.want != "" && !strings.Contains(string(out), ex.want) {
				t.Fatalf("output missing %q:\n%s", ex.want, out)
			}
		})
	}
}
