// Ablation and subsystem benchmarks for the extensions beyond the paper's
// evaluation section: the statistics-driven planner (vs the default
// breadth-first order), incremental maintenance under updates (vs full
// recomputation), the persistent store's write/compact/recover path,
// bounded regular path queries, and statistics collection. These back the
// design-choice discussions in DESIGN.md §6.
package repro

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dynamic"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/plan"
	"repro/internal/rpq"
	"repro/internal/stats"
	"repro/internal/store"
)

func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	return gen.Social(gen.DefaultSocial(2000, 17))
}

// BenchmarkPlannerAblation compares QMatch with the default breadth-first
// order against QMatch with the statistics-driven plan, over the same
// generated pattern workload.
func BenchmarkPlannerAblation(b *testing.B) {
	g := benchGraph(b)
	st := stats.Collect(g)
	pats := gen.Patterns(g, gen.PatternConfig{Nodes: 5, Edges: 6, RatioBP: 3000, Seed: 5}, 8)

	b.Run("default-order", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range pats {
				if _, err := match.QMatch(g, q, nil); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("planned-order", func(b *testing.B) {
		orderBy := plan.OrderFunc(g, st)
		for i := 0; i < b.N; i++ {
			for _, q := range pats {
				if _, err := match.QMatch(g, q, &match.Options{OrderBy: orderBy}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("plan-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range pats {
				pi, _ := q.Pi()
				plan.Choose(g, st, pi)
			}
		}
	})
}

// BenchmarkStatsCollect measures the one-pass statistics scan.
func BenchmarkStatsCollect(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.Collect(g)
	}
}

// BenchmarkIncrementalVsRecompute compares maintaining answers under a
// stream of single-edge updates incrementally against recomputing from
// scratch after every update — the dynamic-maintenance ablation.
func BenchmarkIncrementalVsRecompute(b *testing.B) {
	g := gen.Social(gen.DefaultSocial(800, 29))
	q := gen.Pattern(g, gen.PatternConfig{Nodes: 3, Edges: 3, RatioBP: 3000, Seed: 11})
	updates := make([][]dynamic.Update, 20)
	for i := range updates {
		f := int32((i * 37) % g.NumNodes())
		to := int32((i*91 + 13) % g.NumNodes())
		updates[i] = []dynamic.Update{store.AddEdge(f, to, "follow")}
	}

	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := dynamic.NewMatcher(g, q)
			if err != nil {
				b.Fatal(err)
			}
			for _, ups := range updates {
				if _, err := m.Apply(ups); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("recompute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cur := g
			for _, ups := range updates {
				ng, _, err := dynamic.Apply(cur, ups)
				if err != nil {
					b.Fatal(err)
				}
				cur = ng
				if _, err := match.QMatch(cur, q, nil); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkStore measures journaled writes, compaction, and recovery.
func BenchmarkStore(b *testing.B) {
	seed := gen.Social(gen.DefaultSocial(500, 3))

	b.Run("apply-100-edges", func(b *testing.B) {
		dir := b.TempDir()
		s, err := store.Open(dir, store.Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		if err := s.ImportGraph(seed); err != nil {
			b.Fatal(err)
		}
		n := int32(seed.NumNodes())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			muts := make([]store.Mutation, 100)
			for j := range muts {
				muts[j] = store.AddEdge(int32((i*100+j))%n, int32(i*31+j*7)%n, "follow")
			}
			if _, err := s.Apply(muts...); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compact", func(b *testing.B) {
		dir := b.TempDir()
		s, err := store.Open(dir, store.Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		if err := s.ImportGraph(seed); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Apply(store.AddEdge(int32(i%seed.NumNodes()), 0, "follow")); err != nil {
				b.Fatal(err)
			}
			if err := s.Compact(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reopen", func(b *testing.B) {
		dir := b.TempDir()
		s, err := store.Open(dir, store.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if err := s.ImportGraph(seed); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 500; i++ {
			if _, err := s.Apply(store.AddEdge(int32(i%seed.NumNodes()), int32((i*13)%seed.NumNodes()), "follow")); err != nil {
				b.Fatal(err)
			}
		}
		s.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s2, err := store.Open(dir, store.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if s2.Recovery().Applied != 500 {
				b.Fatalf("recovered %d records", s2.Recovery().Applied)
			}
			s2.Close()
		}
	})
	// Keep the temp roots out of the repo tree even if TempDir cleanup is
	// skipped under -benchtime stress.
	_ = os.RemoveAll(filepath.Join(os.TempDir(), "qgp-bench-none"))
}

// BenchmarkRPQReach measures bounded regular path evaluation on the
// social graph, for a chain, an alternation, and a starred expression.
func BenchmarkRPQReach(b *testing.B) {
	g := benchGraph(b)
	exprs := map[string]*rpq.Expr{
		"chain": rpq.MustParse("follow.follow"),
		"alt":   rpq.MustParse("follow|like|recom"),
		"star":  rpq.MustParse("follow*.buy"),
	}
	for name, e := range exprs {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				v := graph.NodeID(i % g.NumNodes())
				rpq.Reach(g, v, e, 3)
			}
		})
	}
}
