package rules

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/parallel"
	"repro/internal/partition"
)

// r1Graph builds a graph for an R1-style rule (Q1 of the paper's Fig. 7:
// club membership plus ≥80% followee album taste ⇒ buy):
//   - buyer: in club, 4/5 followees like the album, buys it;
//   - holdout: same antecedent but no buy edge (a true negative: it has
//     another buy edge, so LCWA keeps it in Xo);
//   - unknown: same antecedent, no buy information at all (excluded from
//     Xo under LCWA).
func r1Graph() (*graph.Graph, graph.NodeID, graph.NodeID, graph.NodeID) {
	g := graph.New(32)
	club := g.AddNode("club")
	album := g.AddNode("album")
	other := g.AddNode("product")
	mk := func(buys, hasOtherBuy bool) graph.NodeID {
		p := g.AddNode("person")
		g.AddEdge(p, club, "in")
		for i := 0; i < 5; i++ {
			z := g.AddNode("person")
			g.AddEdge(p, z, "follow")
			if i < 4 {
				g.AddEdge(z, album, "like")
			}
		}
		if buys {
			g.AddEdge(p, album, "buy")
		}
		if hasOtherBuy {
			g.AddEdge(p, other, "buy")
		}
		return p
	}
	buyer := mk(true, false)
	holdout := mk(false, true)
	unknown := mk(false, false)
	g.Finalize()
	return g, buyer, holdout, unknown
}

func r1Rule(t *testing.T) *QGAR {
	t.Helper()
	q1 := core.NewPattern()
	q1.AddNode("xo", "person")
	q1.AddNode("club", "club")
	q1.AddNode("z", "person")
	q1.AddNode("y", "album")
	q1.AddEdge("xo", "club", "in", core.Exists())
	q1.AddEdge("xo", "z", "follow", core.RatioPercent(core.GE, 80))
	q1.AddEdge("z", "y", "like", core.Exists())

	q2 := core.NewPattern()
	q2.AddNode("xo", "person")
	q2.AddNode("y", "album")
	q2.AddEdge("xo", "y", "buy", core.Exists())

	r, err := New("R1", q1, q2)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestR1SupportAndConfidence(t *testing.T) {
	g, buyer, holdout, unknown := r1Graph()
	r := r1Rule(t)
	ev, err := r.Evaluate(g)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ev.Matches, []graph.NodeID{buyer}) {
		t.Fatalf("matches = %v, want [%d]", ev.Matches, buyer)
	}
	if ev.Support != 1 {
		t.Fatalf("support = %d, want 1", ev.Support)
	}
	// Antecedent holds for all three; Xo keeps buyer and holdout (both
	// have buy edges recorded) and drops unknown (LCWA).
	if ev.XoSize != 2 {
		t.Fatalf("XoSize = %d, want 2 (buyer + holdout, not %d)", ev.XoSize, unknown)
	}
	if ev.Confidence != 0.5 {
		t.Fatalf("confidence = %f, want 0.5", ev.Confidence)
	}
	_ = holdout
}

func TestIdentifyThreshold(t *testing.T) {
	g, buyer, _, _ := r1Graph()
	r := r1Rule(t)
	got, err := r.Identify(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []graph.NodeID{buyer}) {
		t.Fatalf("Identify(0.5) = %v", got)
	}
	got, err = r.Identify(g, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatalf("Identify(0.9) = %v, want nil (confidence below threshold)", got)
	}
}

func TestNewValidation(t *testing.T) {
	single := func(label string) *core.Pattern {
		p := core.NewPattern()
		p.AddNode("xo", label)
		p.AddNode("y", "album")
		p.AddEdge("xo", "y", "buy", core.Exists())
		return p
	}
	// Focus label mismatch.
	if _, err := New("bad", single("person"), single("robot")); err == nil {
		t.Error("focus mismatch accepted")
	}
	// Shared edge.
	if _, err := New("bad", single("person"), single("person")); err == nil {
		t.Error("shared edge accepted")
	}
	// Empty consequent.
	empty := core.NewPattern()
	empty.AddNode("xo", "person")
	if _, err := New("bad", single("person"), empty); err == nil {
		t.Error("empty consequent accepted")
	}
}

func TestNegativeConsequent(t *testing.T) {
	// R2-style: antecedent ⇒ xo does NOT buy the album.
	g, buyer, holdout, _ := r1Graph()
	q1 := r1Rule(t).Antecedent

	q2 := core.NewPattern()
	q2.AddNode("xo", "person")
	q2.AddNode("y", "album")
	q2.AddEdge("xo", "y", "buy", core.Negated())
	r, err := New("R2", q1, q2)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := r.Evaluate(g)
	if err != nil {
		t.Fatal(err)
	}
	// holdout does not buy the album (only the other product): a match.
	// buyer does buy it: excluded.
	for _, v := range ev.Matches {
		if v == buyer {
			t.Fatal("negative-consequent rule matched the buyer")
		}
	}
	found := false
	for _, v := range ev.Matches {
		if v == holdout {
			found = true
		}
	}
	if !found {
		t.Fatal("negative-consequent rule missed the holdout")
	}
	if ev.Confidence <= 0 || ev.Confidence > 1 {
		t.Fatalf("confidence = %f out of range", ev.Confidence)
	}
}

// Lemma 10 (anti-monotonicity): increasing p in a positive quantifier
// never increases support; adding an edge to Q1 never increases support.
func TestSupportAntiMonotone(t *testing.T) {
	g := gen.Social(gen.DefaultSocial(700, 13))
	mkRule := func(bp int, extraEdge bool) *QGAR {
		q1 := core.NewPattern()
		q1.AddNode("xo", "person")
		q1.AddNode("z", "person")
		q1.AddNode("y", "album")
		q1.AddEdge("xo", "z", "follow", core.Ratio(core.GE, bp))
		q1.AddEdge("z", "y", "like", core.Exists())
		if extraEdge {
			q1.AddNode("c", "city")
			q1.AddEdge("xo", "c", "in", core.Exists())
		}
		q2 := core.NewPattern()
		q2.AddNode("xo", "person")
		q2.AddNode("p", "product")
		q2.AddEdge("xo", "p", "buy", core.Exists())
		r, err := New("anti", q1, q2)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	supports := make([]int, 0, 4)
	for _, bp := range []int{2000, 5000, 8000} {
		ev, err := mkRule(bp, false).Evaluate(g)
		if err != nil {
			t.Fatal(err)
		}
		supports = append(supports, ev.Support)
	}
	for i := 1; i < len(supports); i++ {
		if supports[i] > supports[i-1] {
			t.Fatalf("support grew with stricter ratio: %v", supports)
		}
	}
	evBase, err := mkRule(2000, false).Evaluate(g)
	if err != nil {
		t.Fatal(err)
	}
	evExt, err := mkRule(2000, true).Evaluate(g)
	if err != nil {
		t.Fatal(err)
	}
	if evExt.Support > evBase.Support {
		t.Fatalf("support grew after adding an edge: %d > %d", evExt.Support, evBase.Support)
	}
}

func TestEvaluateParallelAgreesWithSequential(t *testing.T) {
	g, _, _, _ := r1Graph()
	r := r1Rule(t)
	seq, err := r.Evaluate(g)
	if err != nil {
		t.Fatal(err)
	}
	need := parallel.RequiredHops(r.Antecedent)
	if c := parallel.RequiredHops(r.Consequent); c > need {
		need = c
	}
	part, err := partition.DPar(g, partition.Config{Workers: 3, D: need})
	if err != nil {
		t.Fatal(err)
	}
	cl := parallel.NewCluster(part)
	par, err := r.EvaluateParallel(cl, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Matches, par.Matches) ||
		seq.Support != par.Support || seq.XoSize != par.XoSize {
		t.Fatalf("parallel evaluation differs: seq=%+v par=%+v", seq, par)
	}
}

func TestMineFindsCommunityRules(t *testing.T) {
	g := gen.Social(gen.DefaultSocial(900, 21))
	mined, err := Mine(g, MineConfig{MinSupport: 5, MinConfidence: 0.3, MaxRules: 5, StartRatioBP: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if len(mined) == 0 {
		t.Fatal("miner found no rules on a community-structured social graph")
	}
	for _, mr := range mined {
		if mr.Eval.Support < 5 || mr.Eval.Confidence < 0.3 {
			t.Errorf("rule %s below thresholds: supp=%d conf=%f",
				mr.Rule.Name, mr.Eval.Support, mr.Eval.Confidence)
		}
	}
	// Sorted by lift (tautology-resistant ranking).
	for i := 1; i < len(mined); i++ {
		if mined[i].Eval.Lift > mined[i-1].Eval.Lift {
			t.Fatal("mined rules not sorted by lift")
		}
	}
}

func TestCombined(t *testing.T) {
	g, buyer, _, _ := r1Graph()
	r := r1Rule(t)
	combined, err := r.Combined()
	if err != nil {
		t.Fatal(err)
	}
	// Q1 has 4 nodes; Q2 shares xo and y, adding nothing.
	if len(combined.Nodes) != 4 {
		t.Fatalf("combined has %d nodes, want 4\n%s", len(combined.Nodes), combined)
	}
	if len(combined.Edges) != 4 {
		t.Fatalf("combined has %d edges, want 4", len(combined.Edges))
	}
	// The combined pattern is at least as strict as the intersection
	// semantics: its answers are a subset of Evaluate's matches.
	res, err := match.QMatch(g, combined, nil)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := r.Evaluate(g)
	if err != nil {
		t.Fatal(err)
	}
	inEval := map[graph.NodeID]bool{}
	for _, v := range ev.Matches {
		inEval[v] = true
	}
	for _, v := range res.Matches {
		if !inEval[v] {
			t.Fatalf("combined matched %d which intersection semantics excludes", v)
		}
	}
	if len(res.Matches) != 1 || res.Matches[0] != buyer {
		t.Fatalf("combined matches = %v, want [%d]", res.Matches, buyer)
	}
}

func TestCombinedLabelConflict(t *testing.T) {
	q1 := core.NewPattern()
	q1.AddNode("xo", "person")
	q1.AddNode("y", "album")
	q1.AddEdge("xo", "y", "like", core.Exists())
	q2 := core.NewPattern()
	q2.AddNode("xo", "person")
	q2.AddNode("y", "product") // same name, different label
	q2.AddEdge("xo", "y", "buy", core.Exists())
	r, err := New("conflict", q1, q2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Combined(); err == nil {
		t.Fatal("label conflict not detected")
	}
}
