package rules

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// MineConfig controls the seed-and-extend QGAR miner of Exp-3.
type MineConfig struct {
	// MinSupport and MinConfidence are the interestingness thresholds
	// (the paper uses η = 0.5 for confidence).
	MinSupport    int
	MinConfidence float64
	// MinLift, when > 0, drops rules whose lift is below it (tautology
	// filter; 1.05–1.2 is a reasonable bar).
	MinLift float64
	// MaxRules bounds the output.
	MaxRules int
	// StartRatioBP is the initial pa for the quantified antecedent edge
	// (the paper starts at 30%); the miner then raises it in 10% steps
	// while confidence stays above the threshold (Exp-3's extension).
	StartRatioBP int
}

// MinedRule pairs a rule with its evaluation on the mining graph.
type MinedRule struct {
	Rule *QGAR
	Eval *Evaluation
}

// Mine discovers QGARs on g following the recipe of Exp-3:
//
//  1. seed GPAR-style rules from the graph's frequent features — an
//     antecedent "xo −l1(≥ pa%)→ u" and a single-edge consequent
//     "xo −l2→ w" with l1 ≠ l2;
//  2. keep seeds meeting the support and confidence thresholds;
//  3. extend each kept rule by raising the ratio aggregate in 10% (1000
//     bp) increments while confidence stays above the threshold,
//     reporting the strongest variant.
//
// Results are sorted by confidence then support, capped at MaxRules.
func Mine(g *graph.Graph, cfg MineConfig) ([]MinedRule, error) {
	if cfg.MaxRules <= 0 {
		cfg.MaxRules = 10
	}
	if cfg.StartRatioBP <= 0 {
		cfg.StartRatioBP = 3000
	}
	feats := gen.MineFeatures(g)
	if len(feats) > 12 {
		feats = feats[:12]
	}
	// Consequent extensions: the most frequent feature leaving each label,
	// so consequents are two-hop chains (like the paper's R7) whose base
	// rate is genuinely below 1 — single-edge consequents are trivially
	// satisfied by every LCWA-trustworthy candidate.
	extend := make(map[string]gen.Feature)
	for _, f := range feats {
		if _, ok := extend[f.Src]; !ok {
			extend[f.Src] = f
		}
	}

	var mined []MinedRule
	for _, f1 := range feats {
		for _, f2 := range feats {
			// Chain: the ratio must count children that are themselves
			// constrained (f1.dst = f2.src), or the aggregate is trivially
			// 100% of same-labeled children.
			if f1.Dst != f2.Src {
				continue
			}
			for _, f3 := range feats {
				if f3.Src != f1.Src {
					continue
				}
				if f3.Edge == f1.Edge && f3.Dst == f1.Dst {
					continue // consequent would share the antecedent edge
				}
				mined = appendRule(mined, g, cfg, f1, f2, f3, extend)
			}
		}
	}
	sort.Slice(mined, func(i, j int) bool {
		if mined[i].Eval.Lift != mined[j].Eval.Lift {
			return mined[i].Eval.Lift > mined[j].Eval.Lift
		}
		if mined[i].Eval.Confidence != mined[j].Eval.Confidence {
			return mined[i].Eval.Confidence > mined[j].Eval.Confidence
		}
		if mined[i].Eval.Support != mined[j].Eval.Support {
			return mined[i].Eval.Support > mined[j].Eval.Support
		}
		return mined[i].Rule.Name < mined[j].Rule.Name
	})
	if len(mined) > cfg.MaxRules {
		mined = mined[:cfg.MaxRules]
	}
	return mined, nil
}

// appendRule evaluates the seed rule built from (f1, f2, f3), extends its
// ratio while it stays confident, and appends the strongest variant.
func appendRule(mined []MinedRule, g *graph.Graph, cfg MineConfig, f1, f2, f3 gen.Feature, extend map[string]gen.Feature) []MinedRule {
	rule, err := seedRule(f1, f2, f3, extend, cfg.StartRatioBP)
	if err != nil {
		return mined
	}
	ev, err := rule.Evaluate(g)
	if err != nil || ev.Support < cfg.MinSupport || ev.Confidence < cfg.MinConfidence {
		return mined
	}
	if cfg.MinLift > 0 && ev.Lift < cfg.MinLift {
		return mined
	}
	best := MinedRule{Rule: rule, Eval: ev}
	for bp := cfg.StartRatioBP + 1000; bp <= 10000; bp += 1000 {
		stronger, err := seedRule(f1, f2, f3, extend, bp)
		if err != nil {
			break
		}
		ev2, err := stronger.Evaluate(g)
		if err != nil || ev2.Support < cfg.MinSupport || ev2.Confidence < cfg.MinConfidence ||
			(cfg.MinLift > 0 && ev2.Lift < cfg.MinLift) {
			break
		}
		best = MinedRule{Rule: stronger, Eval: ev2}
	}
	return append(mined, best)
}

// seedRule builds the rule "if ≥ pa% of xo's l1-children have an l2-edge
// to some w, then xo has an l3-edge to a y that itself has an l4-edge"
// (the consequent is extended by one hop when the feature table allows).
func seedRule(f1, f2, f3 gen.Feature, extend map[string]gen.Feature, ratioBP int) (*QGAR, error) {
	q1 := core.NewPattern()
	q1.AddNode("xo", f1.Src)
	q1.AddNode("u", f1.Dst)
	q1.AddNode("w", f2.Dst)
	q1.AddEdge("xo", "u", f1.Edge, core.Ratio(core.GE, ratioBP))
	q1.AddEdge("u", "w", f2.Edge, core.Exists())

	q2 := core.NewPattern()
	q2.AddNode("xo", f3.Src)
	q2.AddNode("y", f3.Dst)
	q2.AddEdge("xo", "y", f3.Edge, core.Exists())
	consLabel := f3.Edge
	if f4, ok := extend[f3.Dst]; ok {
		q2.AddNode("y2", f4.Dst)
		q2.AddEdge("y", "y2", f4.Edge, core.Exists())
		consLabel = f3.Edge + "." + f4.Edge
	}

	name := fmt.Sprintf("%s:(%s.%s)≥%d%%⇒%s", f1.Src, f1.Edge, f2.Edge, ratioBP/100, consLabel)
	return New(name, q1, q2)
}
