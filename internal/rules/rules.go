// Package rules implements quantified graph association rules (QGARs, §6):
// rules Q1(xo) ⇒ Q2(xo) over QGPs, their topological support, the
// LCWA-based confidence of Appendix C, quantified entity identification
// (QEI), and a seed-and-extend miner in the style of Exp-3.
package rules

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/parallel"
)

// QGAR is a quantified graph association rule R(xo): Q1(xo) ⇒ Q2(xo).
type QGAR struct {
	Name       string
	Antecedent *core.Pattern // Q1
	Consequent *core.Pattern // Q2
}

// New validates and builds a rule. Per §6, both patterns must be
// connected, nonempty (at least one edge), anchored at the same focus
// (same name and label), and must not share an edge.
func New(name string, q1, q2 *core.Pattern) (*QGAR, error) {
	if err := q1.Validate(); err != nil {
		return nil, fmt.Errorf("rules: antecedent: %w", err)
	}
	if err := q2.Validate(); err != nil {
		return nil, fmt.Errorf("rules: consequent: %w", err)
	}
	if len(q1.Edges) == 0 || len(q2.Edges) == 0 {
		return nil, fmt.Errorf("rules: antecedent and consequent must each have at least one edge")
	}
	f1, f2 := q1.Nodes[q1.Focus], q2.Nodes[q2.Focus]
	if f1.Name != f2.Name || f1.Label != f2.Label {
		return nil, fmt.Errorf("rules: focus mismatch: %s:%s vs %s:%s", f1.Name, f1.Label, f2.Name, f2.Label)
	}
	seen := make(map[string]bool)
	for _, e := range q1.Edges {
		seen[edgeKey(q1, e)] = true
	}
	for _, e := range q2.Edges {
		if seen[edgeKey(q2, e)] {
			return nil, fmt.Errorf("rules: antecedent and consequent share edge %s", edgeKey(q2, e))
		}
	}
	return &QGAR{Name: name, Antecedent: q1, Consequent: q2}, nil
}

func edgeKey(p *core.Pattern, e core.PEdge) string {
	return p.Nodes[e.From].Name + "\x00" + e.Label + "\x00" + p.Nodes[e.To].Name
}

// Evaluation is the outcome of applying a rule to a graph.
type Evaluation struct {
	Matches    []graph.NodeID // R(xo, G) = Q1(xo, G) ∩ Q2(xo, G)
	Support    int            // supp(R, G) = |R(xo, G)| (Lemma 10)
	XoSize     int            // |Q1(xo, G) ∩ Xo| under LCWA
	Confidence float64        // |R| / XoSize; 0 when XoSize is 0
	// Lift compares the rule's confidence to the base rate of the
	// consequent over all LCWA-trustworthy focus candidates: lift ≈ 1
	// marks a rule that merely restates a global property of the graph,
	// lift > 1 a genuine correlation. (An addition over the paper, used
	// by the miner to rank away tautologies.)
	Lift    float64
	Metrics match.Metrics
}

// Evaluate applies the rule with sequential QMatch.
func (r *QGAR) Evaluate(g *graph.Graph) (*Evaluation, error) {
	a, err := match.QMatch(g, r.Antecedent, nil)
	if err != nil {
		return nil, err
	}
	c, err := match.QMatch(g, r.Consequent, nil)
	if err != nil {
		return nil, err
	}
	ev := r.assemble(g, a.Matches, c.Matches)
	ev.Metrics.Add(a.Metrics)
	ev.Metrics.Add(c.Metrics)
	return ev, nil
}

// EvaluateParallel applies the rule over a partitioned cluster (the
// dgarMatch algorithm of Corollary 11): each worker evaluates both
// patterns on its fragment; the coordinator assembles support and
// confidence. The cluster must preserve enough hops for both patterns.
func (r *QGAR) EvaluateParallel(c *parallel.Cluster, threads int) (*Evaluation, error) {
	a, err := parallel.PQMatch(c, r.Antecedent, threads)
	if err != nil {
		return nil, err
	}
	co, err := parallel.PQMatch(c, r.Consequent, threads)
	if err != nil {
		return nil, err
	}
	ev := r.assemble(c.Part.G, a.Matches, co.Matches)
	ev.Metrics.Add(a.Metrics)
	ev.Metrics.Add(co.Metrics)
	return ev, nil
}

// assemble computes matches, support and LCWA confidence from the two
// answer sets.
func (r *QGAR) assemble(g *graph.Graph, ant, cons []graph.NodeID) *Evaluation {
	inCons := make(map[graph.NodeID]bool, len(cons))
	for _, v := range cons {
		inCons[v] = true
	}
	ev := &Evaluation{}
	for _, v := range ant {
		if inCons[v] {
			ev.Matches = append(ev.Matches, v)
		}
	}
	ev.Support = len(ev.Matches)

	// Xo (Appendix C): candidates with at least one edge of the required
	// type for every consequent edge leaving the focus — under the local
	// closed-world assumption these are the trustworthy negative examples.
	// Negated consequent edges contribute their type too: a node with no
	// recorded edges of that type carries no evidence either way.
	var focusLabels []graph.LabelID
	for _, e := range r.Consequent.Edges {
		if e.From == r.Consequent.Focus {
			focusLabels = append(focusLabels, g.LookupLabel(e.Label))
		}
	}
	for _, v := range ant {
		inXo := true
		for _, l := range focusLabels {
			if l == graph.NoLabel || g.CountOut(v, l) == 0 {
				inXo = false
				break
			}
		}
		if inXo || inCons[v] {
			// Positive examples always count toward the denominator.
			ev.XoSize++
		}
	}
	if ev.XoSize > 0 {
		ev.Confidence = float64(ev.Support) / float64(ev.XoSize)
	}

	// Base rate: among ALL focus-labeled nodes that pass the LCWA edge-type
	// test, how many match the consequent?
	inAnyCons := 0
	candidates := 0
	for _, v := range g.NodesByLabelName(r.Consequent.Nodes[r.Consequent.Focus].Label) {
		trustworthy := true
		for _, l := range focusLabels {
			if l == graph.NoLabel || g.CountOut(v, l) == 0 {
				trustworthy = false
				break
			}
		}
		if !trustworthy && !inCons[v] {
			continue
		}
		candidates++
		if inCons[v] {
			inAnyCons++
		}
	}
	if candidates > 0 && inAnyCons > 0 && ev.Confidence > 0 {
		base := float64(inAnyCons) / float64(candidates)
		ev.Lift = ev.Confidence / base
	}
	return ev
}

// Identify solves the QEI problem: the entities identified by R with
// confidence at least eta, i.e. R(xo, G) when conf(R, G) ≥ eta and the
// empty set otherwise.
func (r *QGAR) Identify(g *graph.Graph, eta float64) ([]graph.NodeID, error) {
	ev, err := r.Evaluate(g)
	if err != nil {
		return nil, err
	}
	if ev.Confidence < eta {
		return nil, nil
	}
	return ev.Matches, nil
}

// Combined merges the antecedent and consequent into the single QGP the
// paper says R can be treated as (§6): nodes are unified by name (the
// focus and any shared landmarks like album y in R1), edges concatenated.
// Note the paper *evaluates* R as the intersection of the two answer sets
// — which this library follows in Evaluate — so Combined is a stricter
// view: its matches bind shared non-focus nodes to the same graph nodes.
// Combined returns an error when the merged pattern is not a valid QGP
// (e.g. the merge exceeds the quantifier-per-path budget).
func (r *QGAR) Combined() (*core.Pattern, error) {
	out := core.NewPattern()
	for _, n := range r.Antecedent.Nodes {
		out.AddNode(n.Name, n.Label)
	}
	out.Focus = r.Antecedent.Focus
	out.Edges = append(out.Edges, r.Antecedent.Edges...)

	for _, n := range r.Consequent.Nodes {
		if idx, ok := out.NodeIndex(n.Name); ok {
			if out.Nodes[idx].Label != n.Label {
				return nil, fmt.Errorf("rules: node %q has label %q in Q1 but %q in Q2",
					n.Name, out.Nodes[idx].Label, n.Label)
			}
			continue
		}
		out.AddNode(n.Name, n.Label)
	}
	for _, e := range r.Consequent.Edges {
		from, _ := out.NodeIndex(r.Consequent.Nodes[e.From].Name)
		to, _ := out.NodeIndex(r.Consequent.Nodes[e.To].Name)
		out.Edges = append(out.Edges, core.PEdge{From: from, To: to, Label: e.Label, Q: e.Q})
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}
