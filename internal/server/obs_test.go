package server_test

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/server"
)

// TestMetricsCommand: the metrics command returns the live registry
// snapshot, and the per-command instruments count requests, errors and
// latency.
func TestMetricsCommand(t *testing.T) {
	reg := obs.NewRegistry()
	c, _ := startServer(t, server.Config{Metrics: reg})

	// A failing match (no graph yet) must count as a match error.
	if _, err := c.Match(followPattern, nil); err == nil {
		t.Fatal("match before load succeeded")
	}
	if _, _, err := c.LoadText(tinyGraphText); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Match(followPattern, nil); err != nil {
		t.Fatal(err)
	}

	resp, err := c.Do(&server.Request{Cmd: "metrics"})
	if err != nil {
		t.Fatalf("metrics command: %v", err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(resp.Obs, &snap); err != nil {
		t.Fatalf("metrics document does not parse: %v\n%s", err, resp.Obs)
	}
	if got := snap.Counters["server.cmd.match.count"]; got != 2 {
		t.Errorf("server.cmd.match.count = %d, want 2 (one failed, one ok)", got)
	}
	if got := snap.Counters["server.cmd.match.errors"]; got != 1 {
		t.Errorf("server.cmd.match.errors = %d, want 1", got)
	}
	if got := snap.Counters["server.cmd.load.count"]; got != 1 {
		t.Errorf("server.cmd.load.count = %d, want 1", got)
	}
	if h := snap.Histograms["server.cmd.match.ms"]; h.Count != 2 {
		t.Errorf("server.cmd.match.ms observed %d times, want 2", h.Count)
	}
}

// TestMetricsCommandWithoutRegistry: a server built without a registry
// still answers the command, with an empty document.
func TestMetricsCommandWithoutRegistry(t *testing.T) {
	c, _ := startServer(t, server.Config{})
	resp, err := c.Do(&server.Request{Cmd: "metrics"})
	if err != nil {
		t.Fatalf("metrics command: %v", err)
	}
	if got := strings.TrimSpace(string(resp.Obs)); got != "{}" {
		t.Fatalf("metrics without a registry = %q, want {}", got)
	}
}
