package server

import (
	"encoding/json"
	"fmt"

	"repro/internal/dynamic"
	"repro/internal/match"
	"repro/internal/store"
)

// The wire protocol is newline-delimited JSON over TCP: one Request per
// line from the client, one Response per line from the server, matched by
// Id. Requests on one connection are processed in order; concurrency
// comes from multiple connections, bounded by Config.MaxConcurrent.
//
// Commands:
//
//	ping      — liveness check; also reports fragment state (node/owned
//	            counts) so cluster supervision can verify worker health
//	gen       — generate a synthetic graph into the session
//	load      — load a graph from inline text (graph DSL or JSON document)
//	update    — apply a mutation batch to the session graph; a cluster
//	            coordinator sends one combined batch per worker that can
//	            also carry newly owned nodes (Owned) and the
//	            coordinator-computed affected set (Scoped + Affected),
//	            collapsing what used to be separate update and assign
//	            round trips and sparing the worker a local re-expansion
//	watch     — register a standing pattern; every later update reports
//	            its answer-set delta (incremental maintenance, §5.2 remark)
//	unwatch   — remove a standing pattern
//	stats     — summary + top triple classes of the session graph
//	match     — evaluate a QGP (sequential engines)
//	pmatch    — evaluate a QGP over a d-hop partition in parallel
//	rule      — evaluate a QGAR (support, confidence, matches)
//	rpqfilter — evaluate a QGP, then filter by a quantified path constraint
//	partition — build a partition and report balance
//	fragment  — load a d-hop-preserving fragment (subgraph + owned nodes):
//	            the session becomes a cluster worker; match and watch then
//	            answer only for the owned focus candidates
//	assign    — extend a fragment session's owned set (the coordinator
//	            assigns newly created nodes to this worker)
//	metrics   — snapshot of the server's metrics registry (counters,
//	            gauges, histograms) as a JSON document in Obs, so a
//	            newline-JSON client can scrape a session without the
//	            debug HTTP listener; empty ({}) when the server was
//	            built without a registry
//	explain   — plan a QGP without executing it: the statistics-driven
//	            matching order and per-step cardinality estimates for
//	            every positive pattern, as a JSON document in Profile
//	profile   — execute and report: a match request (Pattern) returns the
//	            match result plus a per-stage profile (prefilter sizes,
//	            order, timings, plan estimates); an update request
//	            (Updates) applies the batch and returns per-stage update
//	            timings (apply, per-watch affected/verify) and the
//	            affected-vs-|G| work ratio — both as a JSON document in
//	            Profile alongside the normal response fields
//
// The multi-tenant cluster front end (internal/cluster.Frontend over
// internal/tenant) additionally serves the session vocabulary — a
// single qgpd worker does not:
//
//	session    — attach the connection to a named tenant session
//	             (Session names it; empty creates a fresh
//	             connection-scoped one). Each tenant holds a private
//	             watch namespace over the one shared graph.
//	sessions   — list the live tenant sessions (Response.Tenants)
//	endsession — evict a tenant session (Session names it; empty evicts
//	             the connection's current one), unregistering its watches
//	deltas     — drain the tenant's pending watch deltas: changes other
//	             tenants' updates caused in this tenant's namespace,
//	             coalesced since the last drain. A delta with Resync set
//	             means the coalesced state was dropped (inbox overflow,
//	             or an update raced the watch's registration): re-read
//	             the answer set instead of applying deltas.
//
// The front end may refuse a command under per-tenant admission control
// (rate limits, update budgets): the error response then carries
// Response.RetryAfterMS, the backoff after which capacity returns.
//
// The session graph persists across requests on the same connection.

// Request is one client command.
type Request struct {
	ID  int64  `json:"id"`
	Cmd string `json:"cmd"`

	// gen
	Kind string `json:"kind,omitempty"` // social | knowledge | smallworld
	Size int    `json:"size,omitempty"`
	Seed int64  `json:"seed,omitempty"`

	// load
	Format string `json:"format,omitempty"` // text | json
	Data   string `json:"data,omitempty"`

	// match / pmatch / rpqfilter / rule
	Pattern string `json:"pattern,omitempty"` // QGP DSL
	Engine  string `json:"engine,omitempty"`  // qmatch (default) | qmatchn | enum
	Planner bool   `json:"planner,omitempty"` // use the statistics-driven order
	Budget  int64  `json:"budget,omitempty"`  // extension budget (0 = server default)
	Limit   int    `json:"limit,omitempty"`   // cap returned matches (0 = all)

	// pmatch / partition
	Workers int `json:"workers,omitempty"`
	Threads int `json:"threads,omitempty"`
	D       int `json:"d,omitempty"`

	// rule
	Consequent string  `json:"consequent,omitempty"` // Q2 DSL; Pattern is Q1
	Eta        float64 `json:"eta,omitempty"`        // confidence threshold

	// rpqfilter
	Constraint string `json:"constraint,omitempty"` // "expr within N quant"

	// stats
	TopK int `json:"topK,omitempty"`

	// update
	Updates []UpdateSpec `json:"updates,omitempty"`

	// watch / unwatch: the watch's name (Pattern carries the QGP for
	// watch).
	Watch string `json:"watch,omitempty"`

	// session / endsession (multi-tenant front end): the tenant session
	// name. Empty on session means "create a fresh connection-scoped
	// session"; empty on endsession means "the connection's current one".
	Session string `json:"session,omitempty"`

	// fragment / assign / update: the owned focus candidates, as node ids
	// local to the fragment subgraph carried in Data. For fragment this is
	// the full owned set; for assign (or an update on a fragment session)
	// it is the nodes to add to it — an update batch from a cluster
	// coordinator carries the nodes it assigns to this worker inline, so
	// routing one global batch costs one round trip, not two.
	Owned []int64 `json:"owned,omitempty"`

	// update, fragment sessions only: Scoped marks Affected as the
	// coordinator-computed global affected set translated to this
	// fragment's local ids (owned candidates within the fragmentation
	// radius of a touched node, in the old or new graph). The worker's
	// standing watches then re-verify exactly these candidates instead of
	// re-expanding the local batch, which is inflated by materialization
	// traffic (neighborhood nodes and edges shipped for other candidates'
	// benefit). Scoped distinguishes an intentionally empty set — nothing
	// owned here is affected, e.g. a batch that only materializes
	// neighborhood — from an ordinary unscoped update.
	Scoped   bool    `json:"scoped,omitempty"`
	Affected []int64 `json:"affected,omitempty"`
}

// UpdateSpec is one graph mutation in the wire format of the update
// command. Op is "addNode" (Label), "addEdge"/"removeEdge" (From, To,
// Label) or "removeNode" (From; isolates the node, ids stay stable).
type UpdateSpec struct {
	Op    string `json:"op"`
	From  int64  `json:"from,omitempty"`
	To    int64  `json:"to,omitempty"`
	Label string `json:"label,omitempty"`
}

// ToUpdates converts wire-format update specs to the store's mutation
// vocabulary; handleUpdate and the cluster coordinator share this mapping.
func ToUpdates(specs []UpdateSpec) ([]dynamic.Update, error) {
	ups := make([]dynamic.Update, len(specs))
	for i, u := range specs {
		switch u.Op {
		case "addNode":
			ups[i] = store.AddNode(u.Label)
		case "addEdge":
			ups[i] = store.AddEdge(int32(u.From), int32(u.To), u.Label)
		case "removeEdge":
			ups[i] = store.RemoveEdge(int32(u.From), int32(u.To), u.Label)
		case "removeNode":
			ups[i] = store.RemoveNode(int32(u.From))
		default:
			return nil, fmt.Errorf("update %d: unknown op %q", i, u.Op)
		}
	}
	return ups, nil
}

// Response is one server reply.
type Response struct {
	ID    int64  `json:"id"`
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// RetryAfterMS accompanies an admission-control error from the
	// multi-tenant front end: how long (milliseconds) until the tenant's
	// exhausted rate or update budget refills. Zero on every other error.
	RetryAfterMS float64 `json:"retryAfterMs,omitempty"`

	// ping: Pong is always set; a session holding a cluster fragment
	// additionally reports Fragment with its owned-candidate count (and
	// Nodes/Edges above), so supervision probes can verify a worker
	// still holds the state the coordinator expects.
	Pong     bool `json:"pong,omitempty"`
	Fragment bool `json:"fragment,omitempty"`
	Owned    int  `json:"ownedCount,omitempty"`

	// gen / load
	Nodes int `json:"nodes,omitempty"`
	Edges int `json:"edges,omitempty"`

	// match family
	Matches   []int64        `json:"matches,omitempty"`
	Total     int            `json:"total,omitempty"` // before Limit
	Metrics   *match.Metrics `json:"metrics,omitempty"`
	ElapsedMS float64        `json:"elapsedMs,omitempty"`

	// rule
	Support    int     `json:"support,omitempty"`
	Confidence float64 `json:"confidence,omitempty"`
	Lift       float64 `json:"lift,omitempty"`
	Identified []int64 `json:"identified,omitempty"`

	// partition
	Skew      float64 `json:"skew,omitempty"`
	Fragments []int   `json:"fragments,omitempty"` // per-fragment sizes

	// stats
	Labels  int      `json:"labels,omitempty"`
	Triples []string `json:"triples,omitempty"`
	// TripleRows carries every triple class in structured, name-based
	// form (not capped by TopK the way the rendered Triples are). A
	// cluster coordinator sums per-fragment rows by class — worker
	// sessions report owned-restricted stats, and ownership partitions
	// the nodes, so the sums are exact — and LabelNames (distinct node
	// labels present, sorted) unions the same way.
	TripleRows []TripleRow `json:"tripleRows,omitempty"`
	LabelNames []string    `json:"labelNames,omitempty"`

	// update: per-watch answer deltas; watch: the initial answer set is
	// returned in Matches. On the multi-tenant front end an update's
	// Deltas carry only the writing tenant's own watches; other tenants
	// pick up theirs with the deltas command.
	Deltas []WatchDelta `json:"deltas,omitempty"`

	// session (multi-tenant front end): the session name the connection
	// is now attached to — echoes Request.Session or reports the
	// generated name of a fresh connection-scoped session.
	Session string `json:"session,omitempty"`

	// sessions (multi-tenant front end): the live tenant sessions.
	Tenants []TenantInfo `json:"tenants,omitempty"`

	// metrics: the registry snapshot (obs.Snapshot shape). RawMessage,
	// not a typed struct, so the wire client needs no dependency on the
	// registry's internal layout and the document round-trips verbatim.
	Obs json.RawMessage `json:"obs,omitempty"`

	// explain / profile: the structured plan or per-stage profile
	// document (MatchProfileDoc, UpdateProfileDoc, or an explain
	// document). RawMessage for the same reason as Obs — and so the
	// cluster coordinator can embed each worker's document verbatim in
	// its merged cluster-level profile.
	Profile json.RawMessage `json:"profile,omitempty"`
}

// WatchDelta reports how one update batch changed a standing pattern's
// answers.
type WatchDelta struct {
	Watch    string  `json:"watch"`
	Added    []int64 `json:"added,omitempty"`
	Removed  []int64 `json:"removed,omitempty"`
	Affected int     `json:"affected"` // focus candidates re-verified
	// Resync (multi-tenant front end, deltas command) means the delta
	// stream for this watch is incomplete — its bounded pending inbox
	// overflowed, or an update raced the watch's registration — and
	// Added/Removed must be ignored: re-read the full answer set
	// (re-register, or re-run the pattern as a match) instead.
	Resync bool `json:"resync,omitempty"`
}

// TripleRow is one edge class of the stats command in structured form:
// label names plus the class aggregates. Unlike the human-rendered
// Triples strings it is complete (every class, no TopK cap) and
// machine-mergeable, which is what lets the cluster front end fan stats
// out to fragment workers and sum exactly.
type TripleRow struct {
	Src   string `json:"src"`
	Edge  string `json:"edge"`
	Dst   string `json:"dst"`
	Count int    `json:"count"`
	Srcs  int    `json:"srcs"`
	Dsts  int    `json:"dsts"`
}

// TenantInfo describes one live tenant session of the multi-tenant front
// end (the sessions command). It lives in this package — not
// internal/tenant — so wire clients need no dependency on the session
// manager's internals.
type TenantInfo struct {
	Name       string `json:"name"`
	Watches    int    `json:"watches"`              // registered standing patterns
	Writes     int64  `json:"writes"`               // update batches this tenant applied
	Reads      int64  `json:"reads"`                // match/explain reads this tenant issued
	Pending    int    `json:"pending,omitempty"`    // watches with undrained deltas
	PendingIDs int    `json:"pendingIds,omitempty"` // undrained coalesced ids across those watches
	Throttled  int64  `json:"throttled,omitempty"`  // commands refused by admission control
	Overflows  int64  `json:"overflows,omitempty"`  // pending inboxes dropped at the cap (watch marked Resync)
	IdleMS     int64  `json:"idleMs"`               // since last command
	Conns      int    `json:"conns"`                // attached connections
}
