package server

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/match"
	"repro/internal/plan"
)

// This file implements the explain and profile wire commands: EXPLAIN is
// the planner's view of a query (what order, at what estimated cost),
// PROFILE executes and pairs the result with the per-stage record of
// where the work and the time actually went. Documents travel in
// Response.Profile as raw JSON, so the cluster coordinator can embed a
// worker's document verbatim inside its merged cluster-level profile.

// ExplainDoc is the explain command's document.
type ExplainDoc struct {
	Op   string            `json:"op"` // "explain"
	Plan *plan.Explanation `json:"plan"`
}

// MatchProfileDoc is the profile command's document for a match request:
// the planner's estimates side by side with the observed per-pattern
// stage profile.
type MatchProfileDoc struct {
	Op      string            `json:"op"` // "match"
	Engine  string            `json:"engine"`
	Planner bool              `json:"planner,omitempty"`
	Plan    *plan.Explanation `json:"plan,omitempty"`
	Profile *match.Profile    `json:"profile"`
	Matches int               `json:"matches"`
	TotalMS float64           `json:"total_ms"`
}

// UpdateProfileDoc is the profile command's document for an update
// request: per-stage timings of the incremental maintenance pipeline and
// the affected-region size against |V| — the work∝change ratio the
// versioned core is supposed to deliver.
type UpdateProfileDoc struct {
	Op        string  `json:"op"` // "update"
	BatchSize int     `json:"batch_size"`
	Touched   int     `json:"touched"`
	Nodes     int     `json:"nodes"`
	Scoped    bool    `json:"scoped,omitempty"`
	ApplyMS   float64 `json:"apply_ms"`
	// AffectedSize is the number of focus candidates re-verified: the
	// coordinator-computed scope when Scoped, otherwise the widest
	// per-watch affected region. WorkRatio = AffectedSize / Nodes; the
	// incremental claim is that it stays ≪ 1 for small batches.
	AffectedSize int                 `json:"affected_size"`
	WorkRatio    float64             `json:"work_ratio"`
	Watches      []WatchStageProfile `json:"watches,omitempty"`
	TotalMS      float64             `json:"total_ms"`
}

// WatchStageProfile is one standing watch's share of an update: the
// two-radius pipeline split into affected-region computation and
// candidate re-verification.
type WatchStageProfile struct {
	Watch      string  `json:"watch"`
	Affected   int     `json:"affected"`
	AffectedMS float64 `json:"affected_ms"`
	VerifyMS   float64 `json:"verify_ms"`
	Added      int     `json:"added"`
	Removed    int     `json:"removed"`
}

// msSince returns the elapsed time since t0 in fractional milliseconds.
func msSince(t0 time.Time) float64 {
	return float64(time.Since(t0).Microseconds()) / 1000
}

func (s *Server) handleExplain(sess *session, req *Request, resp *Response) error {
	if sess.g == nil {
		return errNoGraph
	}
	if req.Pattern == "" {
		return fmt.Errorf("explain: empty pattern")
	}
	q, err := core.Parse(req.Pattern)
	if err != nil {
		return err
	}
	ex, err := plan.Explain(sess.g, sess.stats(), q)
	if err != nil {
		return err
	}
	return marshalProfile(resp, ExplainDoc{Op: "explain", Plan: ex})
}

// handleProfile dispatches on the request's payload: an update batch
// profiles the maintenance pipeline, a pattern profiles a match.
func (s *Server) handleProfile(sess *session, req *Request, resp *Response) error {
	switch {
	case len(req.Updates) > 0 || len(req.Owned) > 0:
		prof := &UpdateProfileDoc{Op: "update"}
		t0 := time.Now()
		if err := s.handleUpdate(sess, req, resp, prof); err != nil {
			return err
		}
		prof.TotalMS = msSince(t0)
		return marshalProfile(resp, prof)
	case req.Pattern != "":
		return s.handleProfileMatch(sess, req, resp)
	default:
		return fmt.Errorf("profile: request carries neither a pattern nor an update batch")
	}
}

func (s *Server) handleProfileMatch(sess *session, req *Request, resp *Response) error {
	if sess.g == nil {
		return errNoGraph
	}
	q, err := core.Parse(req.Pattern)
	if err != nil {
		return err
	}
	engine := req.Engine
	if engine == "" {
		engine = "qmatch"
	}
	doc := &MatchProfileDoc{Op: "match", Engine: engine, Planner: req.Planner}
	if ex, exErr := plan.Explain(sess.g, sess.stats(), q); exErr == nil {
		doc.Plan = ex
	}
	t0 := time.Now()
	if sess.owned != nil && len(sess.owned) == 0 {
		// A fragment owning no nodes answers for nothing (see handleMatch).
		FillMatches(resp, nil, req.Limit)
		resp.Metrics = &match.Metrics{}
		doc.Profile = &match.Profile{}
		doc.TotalMS = msSince(t0)
		return marshalProfile(resp, doc)
	}
	opts := s.matchOptions(sess, req)
	opts.CollectProfile = true
	var res *match.Result
	switch req.Engine {
	case "qmatch", "":
		res, err = match.QMatch(sess.g, q, opts)
	case "qmatchn":
		res, err = match.QMatchN(sess.g, q, opts)
	case "enum":
		res, err = match.Enum(sess.g, q, opts)
	default:
		return fmt.Errorf("unknown engine %q", req.Engine)
	}
	if err != nil {
		return err
	}
	FillMatches(resp, res.Matches, req.Limit)
	resp.Metrics = &res.Metrics
	doc.Profile = res.Profile
	doc.Matches = resp.Total
	doc.TotalMS = msSince(t0)
	return marshalProfile(resp, doc)
}

// marshalProfile serializes a profile document into the response.
func marshalProfile(resp *Response, doc interface{}) error {
	b, err := json.Marshal(doc)
	if err != nil {
		return fmt.Errorf("profile: %w", err)
	}
	resp.Profile = b
	return nil
}
