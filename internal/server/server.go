// Package server exposes quantified graph pattern matching over TCP with
// a newline-delimited JSON protocol. Each connection is a session holding
// one graph; queries on a session run sequentially while sessions run
// concurrently, bounded by a server-wide semaphore so a burst of
// expensive pattern queries cannot exhaust the machine. Every query runs
// under an extension budget (Config.DefaultBudget) so a pathological
// pattern returns an error instead of hanging the session.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/match"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/plan"
	"repro/internal/rpq"
	"repro/internal/rules"
	"repro/internal/stats"
)

// Config tunes a server.
type Config struct {
	// MaxConcurrent bounds simultaneously executing queries across all
	// connections (default 4).
	MaxConcurrent int
	// DefaultBudget is the extension budget applied to queries that do
	// not set one (default 50M attempts). 0 keeps the default; -1
	// disables budgeting.
	DefaultBudget int64
	// MaxLineBytes bounds one request line (default 64 MiB).
	MaxLineBytes int
	// MaxGraphSize bounds |V|+|E| of gen/load graphs (default 50M).
	MaxGraphSize int
	// IdleTimeout closes connections with no request for this long
	// (default 5 minutes).
	IdleTimeout time.Duration
	// MaxWatches caps the standing patterns one session holds. 0 keeps
	// the historical default of 16; a negative value lifts the cap —
	// the multi-tenant cluster front end multiplexes many tenant
	// namespaces over one worker session and enforces per-tenant quotas
	// itself.
	MaxWatches int
	// Logf receives server diagnostics; nil means log.Printf.
	Logf func(format string, args ...interface{})
	// Metrics, when set, receives per-command counts, error counts and
	// latency histograms (server.cmd.<cmd>.count / .errors / .ms), and
	// is what the metrics wire command and a -debug-addr /metrics
	// endpoint export. Nil disables instrumentation at zero cost.
	Metrics *obs.Registry
	// Tracer, when set, opens one trace per handled request (op = the
	// command name), so a standalone qgpd gets the same per-request
	// trace log lines and /debug/traces retention the cluster
	// coordinator has. Nil disables tracing at zero cost.
	Tracer *obs.Tracer
}

func (c *Config) fill() {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.DefaultBudget == 0 {
		c.DefaultBudget = 50_000_000
	}
	if c.MaxLineBytes <= 0 {
		c.MaxLineBytes = 64 << 20
	}
	if c.MaxGraphSize <= 0 {
		c.MaxGraphSize = 50_000_000
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 5 * time.Minute
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
}

// Server serves the QGP query protocol.
type Server struct {
	cfg     Config
	sem     chan struct{}
	om      *serverMetrics
	started time.Time

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]bool
	shutdown bool
	wg       sync.WaitGroup
}

// New returns a server with the given configuration.
func New(cfg Config) *Server {
	cfg.fill()
	return &Server{
		cfg:     cfg,
		sem:     make(chan struct{}, cfg.MaxConcurrent),
		om:      newServerMetrics(cfg.Metrics),
		started: time.Now(),
		conns:   make(map[net.Conn]bool),
	}
}

// commands is the full wire vocabulary; serverMetrics pre-resolves one
// instrument set per command so the request path never touches the
// registry's maps.
var commands = []string{
	"ping", "gen", "load", "update", "watch", "unwatch", "stats", "match",
	"pmatch", "rule", "rpqfilter", "partition", "fragment", "assign", "metrics",
	"explain", "profile",
}

// cmdMetrics is one command's instruments.
type cmdMetrics struct {
	count  *obs.Counter
	errors *obs.Counter
	ms     *obs.Histogram
}

type serverMetrics struct {
	byCmd   map[string]cmdMetrics
	unknown cmdMetrics
}

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	if reg == nil {
		return nil
	}
	sm := &serverMetrics{byCmd: make(map[string]cmdMetrics, len(commands))}
	for _, cmd := range commands {
		sm.byCmd[cmd] = cmdMetrics{
			count:  reg.Counter("server.cmd." + cmd + ".count"),
			errors: reg.Counter("server.cmd." + cmd + ".errors"),
			ms:     reg.Histogram("server.cmd."+cmd+".ms", obs.LatencyBucketsMS),
		}
	}
	sm.unknown = cmdMetrics{
		count:  reg.Counter("server.cmd.unknown.count"),
		errors: reg.Counter("server.cmd.unknown.errors"),
		ms:     reg.Histogram("server.cmd.unknown.ms", obs.LatencyBucketsMS),
	}
	return sm
}

// record books one handled request; a no-op on a nil receiver
// (Config.Metrics unset).
func (sm *serverMetrics) record(cmd string, start time.Time, failed bool) {
	if sm == nil {
		return
	}
	m, ok := sm.byCmd[cmd]
	if !ok {
		m = sm.unknown
	}
	m.count.Inc()
	if failed {
		m.errors.Inc()
	}
	m.ms.ObserveSince(start)
}

// Serve accepts connections on ln until Shutdown. It always returns a
// non-nil error; after Shutdown the error is net.ErrClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.shutdown {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = true
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Shutdown stops accepting, closes the listener and all connections, and
// waits for in-flight handlers (or the context).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.shutdown = true
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// session is the per-connection state.
type session struct {
	g *graph.Graph
	// vg is the versioned core maintaining g in place: handleUpdate
	// applies batches as deltas instead of rebuilding the graph, so g's
	// pointer stays stable across updates (only setGraph replaces it).
	vg      *graph.Versioned
	st      *stats.Stats // lazily computed, reset on graph change
	watches map[string]*dynamic.Matcher
	// owned, when non-nil, marks the session as a cluster worker holding a
	// d-hop-preserving fragment: these are the focus candidates (local
	// ids) the worker owns and answers for. match restricts evaluation to
	// them and watch maintains only their membership; non-owned fragment
	// nodes may lack part of their neighborhood, so their local answers
	// would be wrong.
	owned []graph.NodeID
}

// setGraph replaces the session graph wholesale (gen/load/fragment);
// standing watches are dropped because their cached answers refer to the
// old graph's node ids, and fragment ownership is dropped because it names
// the old graph's nodes. Incremental changes go through handleUpdate,
// which maintains the watches instead.
func (sess *session) setGraph(g *graph.Graph) {
	sess.vg = graph.NewVersioned(g)
	sess.g = sess.vg.Graph()
	sess.st = nil
	sess.watches = nil
	sess.owned = nil
}

func (sess *session) stats() *stats.Stats {
	if sess.st == nil && sess.g != nil {
		sess.st = stats.Collect(sess.g)
	}
	return sess.st
}

// ServeConn serves the protocol on one established connection and blocks
// until it closes. It lets a server be embedded without a listener — the
// cluster's in-process transport pairs it with net.Pipe. Connections
// served this way are not tracked by Shutdown; close them directly.
func (s *Server) ServeConn(conn net.Conn) { s.serveConn(conn) }

func (s *Server) serveConn(conn net.Conn) {
	sess := &session{}
	ServeProtocol(conn, ProtocolConfig{
		MaxLineBytes: s.cfg.MaxLineBytes,
		IdleTimeout:  s.cfg.IdleTimeout,
		Logf:         s.cfg.Logf,
		Name:         "server",
	}, func(req *Request) Response { return s.handle(sess, req) })
}

// ProtocolConfig tunes ServeProtocol.
type ProtocolConfig struct {
	MaxLineBytes int
	IdleTimeout  time.Duration
	Logf         func(format string, args ...interface{})
	// Name prefixes log lines ("server", "cluster frontend", ...).
	Name string
}

// ServeProtocol runs the newline-delimited JSON request loop on one
// connection, dispatching each decoded request to handle and writing its
// response with the ID/OK/Error envelope filled in. It closes conn and
// returns when the peer disconnects, a line exceeds MaxLineBytes, or the
// connection idles out. The server and the cluster front end share this
// loop, so protocol framing cannot diverge between them.
func ServeProtocol(conn net.Conn, cfg ProtocolConfig, handle func(*Request) Response) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64<<10), cfg.MaxLineBytes)
	out := bufio.NewWriter(conn)
	enc := json.NewEncoder(out)

	for {
		conn.SetReadDeadline(time.Now().Add(cfg.IdleTimeout))
		if !sc.Scan() {
			if err := sc.Err(); err != nil && !errors.Is(err, net.ErrClosed) {
				cfg.Logf("%s: %v: read: %v", cfg.Name, conn.RemoteAddr(), err)
			}
			return
		}
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var req Request
		resp := Response{}
		if err := json.Unmarshal(line, &req); err != nil {
			resp.Error = fmt.Sprintf("bad request: %v", err)
		} else {
			resp = handle(&req)
		}
		resp.ID = req.ID
		resp.OK = resp.Error == ""
		if err := enc.Encode(&resp); err != nil {
			cfg.Logf("%s: %v: write: %v", cfg.Name, conn.RemoteAddr(), err)
			return
		}
		if err := out.Flush(); err != nil {
			return
		}
	}
}

// handle runs one request under the concurrency semaphore.
func (s *Server) handle(sess *session, req *Request) Response {
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	start := time.Now()
	tr := s.cfg.Tracer.Start(req.Cmd)

	var resp Response
	var err error
	switch req.Cmd {
	case "ping":
		resp.Pong = true
		// A ping also reports the session's fragment state, so a
		// cluster supervisor probing over this path can tell a healthy
		// worker from one that restarted blank or lost its fragment.
		if sess.g != nil {
			resp.Nodes, resp.Edges = sess.g.NumNodes(), sess.g.NumEdges()
		}
		if sess.owned != nil {
			resp.Fragment = true
			resp.Owned = len(sess.owned)
		}
	case "gen", "load":
		err = s.handleGraph(sess, req, &resp)
	case "update":
		err = s.handleUpdate(sess, req, &resp, nil)
	case "watch":
		err = s.handleWatch(sess, req, &resp)
	case "unwatch":
		err = s.handleUnwatch(sess, req, &resp)
	case "stats":
		err = s.handleStats(sess, req, &resp)
	case "match":
		err = s.handleMatch(sess, req, &resp)
	case "pmatch":
		err = s.handlePMatch(sess, req, &resp)
	case "rule":
		err = s.handleRule(sess, req, &resp)
	case "rpqfilter":
		err = s.handleRPQFilter(sess, req, &resp)
	case "partition":
		err = s.handlePartition(sess, req, &resp)
	case "fragment":
		err = s.handleFragment(sess, req, &resp)
	case "assign":
		err = s.handleAssign(sess, req, &resp)
	case "metrics":
		// The registry snapshot over the wire: a newline-JSON client can
		// scrape a session's server without a debug HTTP listener.
		resp.Obs = s.cfg.Metrics.JSON()
	case "explain":
		err = s.handleExplain(sess, req, &resp)
	case "profile":
		err = s.handleProfile(sess, req, &resp)
	default:
		err = fmt.Errorf("unknown command %q", req.Cmd)
	}
	if err != nil {
		resp.Error = err.Error()
	}
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	s.om.record(req.Cmd, start, err != nil)
	tr.Finish(err)
	return resp
}

// Health reports the server's liveness state — what a -debug-addr
// /healthz endpoint serves for qgpd: process uptime and the number of
// open connections (sessions).
func (s *Server) Health() (interface{}, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	status := "ok"
	if s.shutdown {
		status = "shutting-down"
	}
	return map[string]interface{}{
		"status":        status,
		"connections":   len(s.conns),
		"uptimeSeconds": time.Since(s.started).Seconds(),
	}, nil
}

// BuildGraph constructs the graph a gen or load request describes
// (dispatching on req.Cmd); the server and the cluster front end share
// this so their gen/load vocabularies cannot diverge.
func BuildGraph(req *Request) (*graph.Graph, error) {
	switch req.Cmd {
	case "gen":
		size := req.Size
		if size <= 0 {
			size = 1000
		}
		switch req.Kind {
		case "social", "":
			return gen.Social(gen.DefaultSocial(size, req.Seed)), nil
		case "knowledge":
			return gen.Knowledge(gen.DefaultKnowledge(size, req.Seed)), nil
		case "smallworld":
			return gen.SmallWorld(gen.SmallWorldConfig{Nodes: size, Edges: 2 * size, Labels: 30, Seed: req.Seed}), nil
		default:
			return nil, fmt.Errorf("unknown graph kind %q", req.Kind)
		}
	case "load":
		switch req.Format {
		case "text", "":
			return graph.Read(strings.NewReader(req.Data))
		case "json":
			res, err := load.JSON(strings.NewReader(req.Data))
			if err != nil {
				return nil, err
			}
			return res.Graph, nil
		default:
			return nil, fmt.Errorf("unknown load format %q", req.Format)
		}
	default:
		return nil, fmt.Errorf("BuildGraph: not a gen or load request: %q", req.Cmd)
	}
}

func (s *Server) handleGraph(sess *session, req *Request, resp *Response) error {
	g, err := BuildGraph(req)
	if err != nil {
		return err
	}
	if g.Size() > s.cfg.MaxGraphSize {
		return fmt.Errorf("graph size %d exceeds server cap %d", g.Size(), s.cfg.MaxGraphSize)
	}
	sess.setGraph(g)
	resp.Nodes, resp.Edges = g.NumNodes(), g.NumEdges()
	return nil
}

// handleUpdate applies a mutation batch to the session graph in place
// through the versioned core and incrementally maintains every standing
// watch; an error anywhere in the batch leaves the session graph
// unchanged (ApplyVersioned validates up front, and post-apply
// validation failures roll the batch back) and the watches untouched.
// The batch is applied once and shared across the watches
// (Matcher.ApplyShared with the pre-batch old view), not per watch.
//
// On a fragment session the request may additionally carry the cluster
// coordinator's routing: Scoped + Affected narrow re-verification to the
// coordinator-computed affected set (local ids), and Owned lists nodes
// the coordinator assigns to this worker, folded into the owned set after
// the batch applies — one combined round trip where the coordinator used
// to send update and assign separately.
func (s *Server) handleUpdate(sess *session, req *Request, resp *Response, prof *UpdateProfileDoc) error {
	if sess.g == nil {
		return errNoGraph
	}
	if len(req.Updates) == 0 && len(req.Owned) == 0 {
		return fmt.Errorf("update: empty batch")
	}
	if (req.Scoped || len(req.Owned) > 0) && sess.owned == nil {
		return fmt.Errorf("update: scoped or owning update on a session holding no fragment: run fragment first")
	}
	ng := sess.g
	var touched []graph.NodeID
	var old *graph.OldView
	if len(req.Updates) > 0 {
		ups, err := ToUpdates(req.Updates)
		if err != nil {
			return err
		}
		tApply := time.Now()
		old, touched, err = dynamic.ApplyVersioned(sess.vg, ups)
		if err != nil {
			return err
		}
		if prof != nil {
			prof.ApplyMS = msSince(tApply)
		}
		ng = sess.vg.Graph() // same pointer as sess.g: the batch applied in place
	}
	// The batch is already applied, so revert undoes it when a later
	// validation step rejects the request — keeping the contract that an
	// error leaves graph, watches and ownership untouched (a client may
	// retry an errored batch, and addNode is not idempotent).
	revert := func(cause error) error {
		if old == nil {
			return cause
		}
		if rerr := sess.vg.Rollback(old); rerr != nil {
			return fmt.Errorf("%w (rollback failed: %v)", cause, rerr)
		}
		return cause
	}
	if old != nil && ng.Size() > s.cfg.MaxGraphSize {
		return revert(fmt.Errorf("updated graph size %d exceeds server cap %d", ng.Size(), s.cfg.MaxGraphSize))
	}
	// Validate everything the request names — affected candidates and
	// assigned nodes, both in the post-batch id space — before the
	// watches see the batch.
	var scoped []graph.NodeID
	if req.Scoped {
		var err error
		if scoped, err = localNodes(ng, req.Affected); err != nil {
			return revert(fmt.Errorf("update: %w", err))
		}
	}
	assign, err := localNodes(ng, req.Owned)
	if err != nil {
		return revert(fmt.Errorf("update: %w", err))
	}
	// The batch is validated; commit. The graph already mutated in
	// place, so only the cached statistics reset.
	sess.st = nil
	if len(req.Updates) > 0 {
		// An assign-only batch skips this: nothing changed in the graph,
		// AddFocus below reports the new candidates.
		for _, name := range watchNames(sess) {
			m := sess.watches[name]
			var delta dynamic.Delta
			var stages dynamic.Stages
			var err error
			switch {
			case req.Scoped && prof != nil:
				delta, stages, err = m.ApplyScopedStaged(ng, scoped)
			case req.Scoped:
				delta, err = m.ApplyScoped(ng, scoped)
			case prof != nil:
				delta, stages, err = m.ApplySharedStaged(old, ng, touched)
			default:
				delta, err = m.ApplyShared(old, ng, touched)
			}
			if err != nil {
				return fmt.Errorf("watch %q: %w", name, err)
			}
			if prof != nil {
				prof.Watches = append(prof.Watches, WatchStageProfile{
					Watch:      name,
					Affected:   delta.Affected,
					AffectedMS: stages.AffectedMS,
					VerifyMS:   stages.VerifyMS,
					Added:      len(delta.Added),
					Removed:    len(delta.Removed),
				})
			}
			appendDelta(resp, name, delta)
		}
	}
	if len(assign) > 0 {
		if err := assignOwned(sess, assign, resp); err != nil {
			return fmt.Errorf("update: %w", err)
		}
	}
	resp.Nodes, resp.Edges = ng.NumNodes(), ng.NumEdges()
	if prof != nil {
		prof.BatchSize = len(req.Updates)
		prof.Touched = len(touched)
		prof.Scoped = req.Scoped
		prof.Nodes = ng.NumNodes()
		if req.Scoped {
			prof.AffectedSize = len(scoped)
		} else {
			// Unscoped: the affected region differs per watch (radii
			// differ); report the widest.
			for _, w := range prof.Watches {
				if w.Affected > prof.AffectedSize {
					prof.AffectedSize = w.Affected
				}
			}
		}
		if prof.Nodes > 0 {
			prof.WorkRatio = float64(prof.AffectedSize) / float64(prof.Nodes)
		}
	}
	return nil
}

// watchNames returns the session's standing-watch names in deterministic
// order.
func watchNames(sess *session) []string {
	names := make([]string, 0, len(sess.watches))
	for name := range sess.watches {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// appendDelta converts one watch's answer delta to the wire format.
func appendDelta(resp *Response, name string, delta dynamic.Delta) {
	wd := WatchDelta{Watch: name, Affected: delta.Affected}
	for _, v := range delta.Added {
		wd.Added = append(wd.Added, int64(v))
	}
	for _, v := range delta.Removed {
		wd.Removed = append(wd.Removed, int64(v))
	}
	resp.Deltas = append(resp.Deltas, wd)
}

// handleWatch registers a standing pattern under a name; the response
// carries the initial answer set. Later update commands report this
// watch's delta.
func (s *Server) handleWatch(sess *session, req *Request, resp *Response) error {
	if sess.g == nil {
		return errNoGraph
	}
	if req.Watch == "" {
		return fmt.Errorf("watch: empty name")
	}
	if _, dup := sess.watches[req.Watch]; dup {
		return fmt.Errorf("watch %q already registered", req.Watch)
	}
	if max := s.watchCap(); max > 0 && len(sess.watches) >= max {
		return fmt.Errorf("watch: session limit of %d standing patterns reached", max)
	}
	q, err := core.Parse(req.Pattern)
	if err != nil {
		return err
	}
	var m *dynamic.Matcher
	if sess.owned != nil {
		m, err = dynamic.NewMatcherRestricted(sess.g, q, sess.owned)
	} else {
		m, err = dynamic.NewMatcher(sess.g, q)
	}
	if err != nil {
		return err
	}
	if sess.watches == nil {
		sess.watches = make(map[string]*dynamic.Matcher)
	}
	sess.watches[req.Watch] = m
	FillMatches(resp, m.Answers(), req.Limit)
	return nil
}

// handleUnwatch removes a standing pattern.
func (s *Server) handleUnwatch(sess *session, req *Request, resp *Response) error {
	if _, ok := sess.watches[req.Watch]; !ok {
		return fmt.Errorf("no watch named %q", req.Watch)
	}
	delete(sess.watches, req.Watch)
	return nil
}

func (s *Server) handleStats(sess *session, req *Request, resp *Response) error {
	if sess.g == nil {
		return errNoGraph
	}
	if sess.owned != nil {
		// A fragment worker reports its owned share only: the fragment
		// also materializes other workers' nodes (neighborhood shipped
		// for the owned candidates' benefit), which whole-fragment stats
		// would double count across the cluster. Owned-restricted rows
		// sum exactly — see stats.CollectOwned — which is what lets the
		// coordinator serve stats from fragment copies instead of
		// pinning a frontend-side graph clone. Not cached: the owned
		// pass is O(|fragment|) and stats calls are rare.
		FillStats(resp, sess.g, stats.CollectOwned(sess.g, sess.owned), req.TopK)
		return nil
	}
	FillStats(resp, sess.g, sess.stats(), req.TopK)
	return nil
}

var errNoGraph = errors.New("no graph loaded: run gen or load first")

// watchCap resolves Config.MaxWatches: 0 means the historical default
// of 16, negative lifts the cap.
func (s *Server) watchCap() int {
	if s.cfg.MaxWatches == 0 {
		return 16
	}
	return s.cfg.MaxWatches
}

func (s *Server) budget(req *Request) int64 {
	switch {
	case req.Budget > 0:
		return req.Budget
	case s.cfg.DefaultBudget < 0:
		return 0
	default:
		return s.cfg.DefaultBudget
	}
}

func (s *Server) matchOptions(sess *session, req *Request) *match.Options {
	opts := &match.Options{ExtensionBudget: s.budget(req)}
	if req.Planner {
		opts.OrderBy = plan.OrderFunc(sess.g, sess.stats())
	}
	if sess.owned != nil {
		opts.FocusRestrict = sess.owned
	}
	return opts
}

func (s *Server) handleMatch(sess *session, req *Request, resp *Response) error {
	if sess.g == nil {
		return errNoGraph
	}
	q, err := core.Parse(req.Pattern)
	if err != nil {
		return err
	}
	// A fragment owning no nodes answers for nothing; Options.FocusRestrict
	// cannot express an empty restriction (empty means unrestricted).
	if sess.owned != nil && len(sess.owned) == 0 {
		FillMatches(resp, nil, req.Limit)
		resp.Metrics = &match.Metrics{}
		return nil
	}
	var res *match.Result
	switch req.Engine {
	case "qmatch", "":
		res, err = match.QMatch(sess.g, q, s.matchOptions(sess, req))
	case "qmatchn":
		res, err = match.QMatchN(sess.g, q, s.matchOptions(sess, req))
	case "enum":
		res, err = match.Enum(sess.g, q, s.matchOptions(sess, req))
	default:
		return fmt.Errorf("unknown engine %q", req.Engine)
	}
	if err != nil {
		return err
	}
	FillMatches(resp, res.Matches, req.Limit)
	resp.Metrics = &res.Metrics
	return nil
}

func (s *Server) handlePMatch(sess *session, req *Request, resp *Response) error {
	if sess.g == nil {
		return errNoGraph
	}
	q, err := core.Parse(req.Pattern)
	if err != nil {
		return err
	}
	engine, err := parallel.ParseEngine(req.Engine)
	if err != nil {
		return err
	}
	workers := req.Workers
	if workers <= 0 {
		workers = 4
	}
	threads := req.Threads
	if threads <= 0 {
		threads = 2
	}
	d := req.D
	if need := parallel.RequiredHops(q); d < need {
		d = need
	}
	p, err := partition.DPar(sess.g, partition.Config{Workers: workers, D: d})
	if err != nil {
		return err
	}
	res, err := parallel.Run(parallel.NewCluster(p), q, engine, threads)
	if err != nil {
		return err
	}
	FillMatches(resp, res.Matches, req.Limit)
	resp.Metrics = &res.Metrics
	return nil
}

func (s *Server) handleRule(sess *session, req *Request, resp *Response) error {
	if sess.g == nil {
		return errNoGraph
	}
	q1, err := core.Parse(req.Pattern)
	if err != nil {
		return fmt.Errorf("antecedent: %w", err)
	}
	q2, err := core.Parse(req.Consequent)
	if err != nil {
		return fmt.Errorf("consequent: %w", err)
	}
	r, err := rules.New("request", q1, q2)
	if err != nil {
		return err
	}
	ev, err := r.Evaluate(sess.g)
	if err != nil {
		return err
	}
	FillMatches(resp, ev.Matches, req.Limit)
	resp.Support = ev.Support
	resp.Confidence = ev.Confidence
	resp.Lift = ev.Lift
	if req.Eta > 0 && ev.Confidence >= req.Eta {
		for _, v := range ev.Matches {
			resp.Identified = append(resp.Identified, int64(v))
		}
	}
	return nil
}

func (s *Server) handleRPQFilter(sess *session, req *Request, resp *Response) error {
	if sess.g == nil {
		return errNoGraph
	}
	q, err := core.Parse(req.Pattern)
	if err != nil {
		return err
	}
	c, err := rpq.ParseConstraint(req.Constraint)
	if err != nil {
		return err
	}
	res, err := match.QMatch(sess.g, q, s.matchOptions(sess, req))
	if err != nil {
		return err
	}
	filtered := rpq.Filter(sess.g, res.Matches, c)
	FillMatches(resp, filtered, req.Limit)
	resp.Total = len(filtered)
	resp.Metrics = &res.Metrics
	return nil
}

func (s *Server) handlePartition(sess *session, req *Request, resp *Response) error {
	if sess.g == nil {
		return errNoGraph
	}
	workers := req.Workers
	if workers <= 0 {
		workers = 4
	}
	d := req.D
	if d <= 0 {
		d = 2
	}
	p, err := partition.DPar(sess.g, partition.Config{Workers: workers, D: d})
	if err != nil {
		return err
	}
	resp.Skew = p.Skew()
	for _, f := range p.Fragments {
		resp.Fragments = append(resp.Fragments, f.Size)
	}
	return nil
}

// handleFragment turns the session into a cluster worker: Data carries a
// d-hop-preserving fragment subgraph in the text format (local node ids)
// and Owned lists the local ids of the focus candidates this worker owns.
// Subsequent match and watch commands answer only for the owned set;
// update commands mutate the fragment and maintain the watches.
func (s *Server) handleFragment(sess *session, req *Request, resp *Response) error {
	g, err := graph.Read(strings.NewReader(req.Data))
	if err != nil {
		return err
	}
	if g.Size() > s.cfg.MaxGraphSize {
		return fmt.Errorf("fragment size %d exceeds server cap %d", g.Size(), s.cfg.MaxGraphSize)
	}
	owned, err := localNodes(g, req.Owned)
	if err != nil {
		return fmt.Errorf("fragment: %w", err)
	}
	sess.setGraph(g)
	sess.owned = owned
	resp.Nodes, resp.Edges = g.NumNodes(), g.NumEdges()
	return nil
}

// handleAssign adds nodes to a fragment session's owned set. Standing
// watches evaluate the new candidates immediately; any answers they
// contribute are reported as per-watch deltas, mirroring update. (A
// cluster coordinator normally folds assignment into the update batch
// itself; the standalone command remains for direct protocol use.)
func (s *Server) handleAssign(sess *session, req *Request, resp *Response) error {
	if sess.owned == nil {
		return fmt.Errorf("assign: session holds no fragment: run fragment first")
	}
	add, err := localNodes(sess.g, req.Owned)
	if err != nil {
		return fmt.Errorf("assign: %w", err)
	}
	if err := assignOwned(sess, add, resp); err != nil {
		return fmt.Errorf("assign: %w", err)
	}
	resp.Nodes, resp.Edges = sess.g.NumNodes(), sess.g.NumEdges()
	return nil
}

// assignOwned extends a fragment session's owned set with the validated
// local ids and appends the per-watch deltas the new candidates
// contribute; shared by the assign command and the combined cluster
// update batch.
func assignOwned(sess *session, add []graph.NodeID, resp *Response) error {
	have := make(map[graph.NodeID]bool, len(sess.owned))
	for _, v := range sess.owned {
		have[v] = true
	}
	for _, v := range add {
		if !have[v] {
			have[v] = true
			sess.owned = append(sess.owned, v)
		}
	}
	sort.Slice(sess.owned, func(i, j int) bool { return sess.owned[i] < sess.owned[j] })
	for _, name := range watchNames(sess) {
		delta, err := sess.watches[name].AddFocus(add)
		if err != nil {
			return fmt.Errorf("watch %q: %w", name, err)
		}
		appendDelta(resp, name, delta)
	}
	return nil
}

// localNodes validates wire node ids against g and converts them.
func localNodes(g *graph.Graph, ids []int64) ([]graph.NodeID, error) {
	out := make([]graph.NodeID, len(ids))
	for i, v := range ids {
		if v < 0 || v >= int64(g.NumNodes()) {
			return nil, fmt.Errorf("owned node %d outside [0, %d)", v, g.NumNodes())
		}
		out[i] = graph.NodeID(v)
	}
	return out, nil
}

// FillMatches writes an answer set into a response, applying the
// request's limit; shared with the cluster front end.
func FillMatches(resp *Response, matches []graph.NodeID, limit int) {
	resp.Total = len(matches)
	if limit > 0 && len(matches) > limit {
		matches = matches[:limit]
	}
	resp.Matches = make([]int64, len(matches))
	for i, v := range matches {
		resp.Matches[i] = int64(v)
	}
}
