package server

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/stats"
)

// This file is the ONE code path that turns graph statistics into a
// stats response. The single server, the cluster front end's isolate
// mode and the shared front end's fan-out merge all land in
// FillStatsRows, so the TopK cap, the row ordering and the rendered
// string format cannot drift between deployment shapes.

// StatsTopK resolves a stats request's TopK: non-positive takes the
// historical default of 10 rendered triple classes.
func StatsTopK(k int) int {
	if k <= 0 {
		return 10
	}
	return k
}

// StatsRows converts a collected summary to structured, name-based
// rows (every class, unordered — FillStatsRows sorts) plus the sorted
// names of the labels present.
func StatsRows(g *graph.Graph, st *stats.Stats) (rows []TripleRow, labels []string) {
	rows = make([]TripleRow, 0, len(st.Triples))
	for t, ts := range st.Triples {
		rows = append(rows, TripleRow{
			Src: g.LabelName(t.Src), Edge: g.LabelName(t.Edge), Dst: g.LabelName(t.Dst),
			Count: ts.Count, Srcs: ts.SrcNodes, Dsts: ts.DstNodes,
		})
	}
	labels = make([]string, 0, len(st.LabelCount))
	for l, n := range st.LabelCount {
		if n > 0 {
			labels = append(labels, g.LabelName(l))
		}
	}
	sort.Strings(labels)
	return rows, labels
}

// FillStats renders one graph's summary into a response — the
// single-process path. topK caps only the rendered Triples strings;
// the structured rows stay complete.
func FillStats(resp *Response, g *graph.Graph, st *stats.Stats, topK int) {
	rows, labels := StatsRows(g, st)
	FillStatsRows(resp, st.Nodes, st.Edges, labels, rows, topK)
}

// FillStatsRows fills a stats response from structured rows, sorting
// them by descending count with name ties ascending (deterministic
// regardless of which worker contributed what), applying the TopK cap
// to the rendered strings.
func FillStatsRows(resp *Response, nodes, edges int, labels []string, rows []TripleRow, topK int) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Edge != b.Edge {
			return a.Edge < b.Edge
		}
		return a.Dst < b.Dst
	})
	resp.Nodes, resp.Edges = nodes, edges
	resp.Labels = len(labels)
	resp.LabelNames = labels
	resp.TripleRows = rows
	k := StatsTopK(topK)
	if k > len(rows) {
		k = len(rows)
	}
	for _, r := range rows[:k] {
		resp.Triples = append(resp.Triples, DescribeRow(r))
	}
}

// DescribeRow renders one triple row in the exact format of
// stats.Describe, so wire output is stable across the refactor.
func DescribeRow(r TripleRow) string {
	fan := 0.0
	if r.Srcs > 0 {
		fan = float64(r.Count) / float64(r.Srcs)
	}
	return fmt.Sprintf("%s -%s-> %s: count=%d srcs=%d dsts=%d fanOut=%.2f",
		r.Src, r.Edge, r.Dst, r.Count, r.Srcs, r.Dsts, fan)
}
