package server

import (
	"encoding/json"
	"reflect"
	"testing"
)

// protocolSeeds are request lines captured off the e2e and cluster test
// traffic: every command the coordinator sends a worker — fragment,
// assign, and the combined update batch with inline assignment and the
// scoped affected set — plus the plain client commands, so the fuzzer
// starts from the shapes the wire actually carries.
var protocolSeeds = []string{
	`{"id":1,"cmd":"ping"}`,
	`{"id":2,"cmd":"gen","kind":"social","size":200,"seed":42}`,
	`{"id":3,"cmd":"load","format":"text","data":"graph\nn person\nn person\ne 0 1 follow\n"}`,
	`{"id":4,"cmd":"fragment","data":"graph\nn person\nn person\nn product\ne 0 1 follow\ne 1 2 bad_rating\n","owned":[0,1]}`,
	`{"id":5,"cmd":"assign","owned":[2]}`,
	`{"id":6,"cmd":"update","updates":[{"op":"addEdge","from":0,"to":2,"label":"follow"},{"op":"removeEdge","from":1,"to":2,"label":"bad_rating"}]}`,
	`{"id":7,"cmd":"update","updates":[{"op":"addNode","label":"person"},{"op":"addEdge","from":3,"to":0,"label":"follow"}],"owned":[3],"scoped":true,"affected":[0,1]}`,
	`{"id":8,"cmd":"update","updates":[{"op":"removeNode","from":1}],"scoped":true}`,
	`{"id":9,"cmd":"watch","watch":"w","pattern":"qgp\nn xo person *\nn z person\ne xo z follow >=3\n"}`,
	`{"id":10,"cmd":"unwatch","watch":"w"}`,
	`{"id":11,"cmd":"match","pattern":"qgp\nn xo person *\nn z person\ne xo z follow >=1\n","engine":"qmatchn","budget":100000,"limit":10,"planner":true}`,
	`{"id":12,"cmd":"partition","workers":4,"d":2}`,
	`{"id":13,"cmd":"metrics"}`,
}

// FuzzRequestRoundTrip asserts the wire format is lossless for every
// decodable request line: re-encoding a decoded request must reach a
// fixpoint after one canonicalization step (encode(decode(line)) ==
// encode(decode(encode(decode(line))))). One step is allowed because the
// encoding canonicalizes — omitempty collapses empty collections into
// absent ones, which the protocol semantics never distinguish (handlers
// only ever test len). A field that decodes but does not survive
// re-encoding (a forgotten json tag, an omitempty eating a meaningful
// non-zero value, a new protocol field missing from the struct) breaks
// replica mirroring and journal replay silently — the mirror would apply
// a different request than the primary acked. This found the
// empty-vs-absent collection wart the fixpoint formulation encodes.
func FuzzRequestRoundTrip(f *testing.F) {
	for _, s := range protocolSeeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		var req Request
		if err := json.Unmarshal(line, &req); err != nil {
			t.Skip() // not a decodable request line
		}
		b, err := json.Marshal(&req)
		if err != nil {
			t.Fatalf("marshal decoded request: %v", err)
		}
		var again Request
		if err := json.Unmarshal(b, &again); err != nil {
			t.Fatalf("re-decode %s: %v", b, err)
		}
		b2, err := json.Marshal(&again)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if string(b) != string(b2) {
			t.Fatalf("canonical encoding is not a fixpoint:\n first: %s\nsecond: %s", b, b2)
		}
		// The mutation vocabulary must agree with itself too: a spec list
		// that converts must convert identically after the round trip.
		ups1, err1 := ToUpdates(req.Updates)
		ups2, err2 := ToUpdates(again.Updates)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("ToUpdates verdict diverged: %v vs %v", err1, err2)
		}
		if err1 == nil && !reflect.DeepEqual(ups1, ups2) {
			t.Fatalf("ToUpdates diverged:\n first: %+v\nsecond: %+v", ups1, ups2)
		}
	})
}

// FuzzResponseRoundTrip is the same fixpoint property for the server →
// client direction, seeded with the response shapes the handlers emit
// (fragment ping state, watch deltas, match metrics omitted).
func FuzzResponseRoundTrip(f *testing.F) {
	seeds := []string{
		`{"id":1,"ok":true,"pong":true,"fragment":true,"ownedCount":2,"nodes":3,"edges":2}`,
		`{"id":6,"ok":true,"deltas":[{"watch":"w","added":[1,4],"removed":[2],"affected":7}],"nodes":4,"edges":3}`,
		`{"id":7,"ok":true,"deltas":[{"watch":"w","affected":0}]}`,
		`{"id":9,"ok":false,"error":"watch \"w\" already registered"}`,
		`{"id":11,"ok":true,"matches":[0,2,5],"total":3,"elapsedMs":1.25}`,
		`{"id":13,"ok":true,"obs":{"counters":{"server.cmd.match.count":2},"gauges":{},"histograms":{"server.cmd.match.ms":{"count":2,"sum":1.5,"bounds":[1,10],"counts":[1,1,0]}}}}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		var resp Response
		if err := json.Unmarshal(line, &resp); err != nil {
			t.Skip()
		}
		b, err := json.Marshal(&resp)
		if err != nil {
			t.Fatalf("marshal decoded response: %v", err)
		}
		var again Response
		if err := json.Unmarshal(b, &again); err != nil {
			t.Fatalf("re-decode %s: %v", b, err)
		}
		b2, err := json.Marshal(&again)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if string(b) != string(b2) {
			t.Fatalf("canonical encoding is not a fixpoint:\n first: %s\nsecond: %s", b, b2)
		}
	})
}
