package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"

	"repro/internal/obs"
	"repro/internal/server"
)

func TestExplainCommand(t *testing.T) {
	c, _ := startServer(t, server.Config{})
	if _, err := c.Explain(followPattern); err == nil {
		t.Fatal("explain before load succeeded")
	}
	if _, _, err := c.LoadText(tinyGraphText); err != nil {
		t.Fatal(err)
	}
	raw, err := c.Explain(followPattern)
	if err != nil {
		t.Fatal(err)
	}
	var doc server.ExplainDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("explain document does not parse: %v\n%s", err, raw)
	}
	if doc.Op != "explain" || doc.Plan == nil || len(doc.Plan.Patterns) == 0 {
		t.Fatalf("explain document incomplete: %s", raw)
	}
	pp := doc.Plan.Patterns[0]
	if pp.Pattern != "pi" {
		t.Errorf("first pattern = %q, want pi", pp.Pattern)
	}
	if len(pp.Order) != 3 || pp.Order[0] != "xo" {
		t.Errorf("order = %v, want 3 nodes with the focus first", pp.Order)
	}
	if len(pp.StepCost) != len(pp.Order) || pp.Cost <= 0 {
		t.Errorf("step costs malformed: %+v", pp)
	}
}

func TestProfileMatchCommand(t *testing.T) {
	c, _ := startServer(t, server.Config{})
	if _, _, err := c.LoadText(tinyGraphText); err != nil {
		t.Fatal(err)
	}
	plain, err := c.Match(followPattern, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.ProfileMatch(followPattern, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The profiled response carries the same answers as a plain match.
	if fmt.Sprint(resp.Matches) != fmt.Sprint(plain.Matches) {
		t.Fatalf("profiled matches %v != plain matches %v", resp.Matches, plain.Matches)
	}
	var doc server.MatchProfileDoc
	if err := json.Unmarshal(resp.Profile, &doc); err != nil {
		t.Fatalf("profile document does not parse: %v\n%s", err, resp.Profile)
	}
	if doc.Op != "match" || doc.Engine != "qmatch" {
		t.Fatalf("document header wrong: %s", resp.Profile)
	}
	if doc.Matches != resp.Total {
		t.Errorf("doc.Matches = %d, response total = %d", doc.Matches, resp.Total)
	}
	if doc.Plan == nil || len(doc.Plan.Patterns) == 0 {
		t.Errorf("document missing plan estimates: %s", resp.Profile)
	}
	if doc.Profile == nil || len(doc.Profile.Patterns) == 0 {
		t.Fatalf("document missing stage profile: %s", resp.Profile)
	}
	pi := doc.Profile.Patterns[0]
	if pi.Pattern != "pi" {
		t.Errorf("first stage = %q, want pi", pi.Pattern)
	}
	if len(pi.Nodes) == 0 {
		t.Fatalf("pi stage has no per-node candidate counts: %s", resp.Profile)
	}
	for _, n := range pi.Nodes {
		if n.Candidates <= 0 {
			t.Errorf("node %s candidates = %d, want > 0 on the tiny graph", n.Name, n.Candidates)
		}
		if n.Accepted > n.Candidates {
			t.Errorf("node %s accepted %d > candidates %d", n.Name, n.Accepted, n.Candidates)
		}
	}
	if len(pi.Order) == 0 || pi.Order[0] != "xo" {
		t.Errorf("pi order = %v, want focus first", pi.Order)
	}
	if pi.Answers != doc.Matches {
		t.Errorf("pi answers = %d, want %d (no negated edges)", pi.Answers, doc.Matches)
	}
	// Stage metrics sum to the response's aggregate metrics.
	if doc.Profile.Metrics != *resp.Metrics {
		t.Errorf("profile metrics %+v != response metrics %+v", doc.Profile.Metrics, *resp.Metrics)
	}
}

func TestProfileUpdateCommand(t *testing.T) {
	c, _ := startServer(t, server.Config{})
	if _, _, err := c.LoadText(tinyGraphText); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Watch("w", followPattern); err != nil {
		t.Fatal(err)
	}
	// p3 follows p2 as well and p3 starts buying: p3 becomes an answer.
	resp, err := c.ProfileUpdate(
		server.UpdateSpec{Op: "addEdge", From: 3, To: 2, Label: "follow"},
		server.UpdateSpec{Op: "addEdge", From: 2, To: 4, Label: "buy"},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Deltas) != 1 {
		t.Fatalf("deltas = %+v, want the watch's delta", resp.Deltas)
	}
	var doc server.UpdateProfileDoc
	if err := json.Unmarshal(resp.Profile, &doc); err != nil {
		t.Fatalf("profile document does not parse: %v\n%s", err, resp.Profile)
	}
	if doc.Op != "update" || doc.BatchSize != 2 || doc.Nodes != 5 {
		t.Fatalf("document header wrong: %s", resp.Profile)
	}
	if doc.ApplyMS < 0 || doc.TotalMS <= 0 {
		t.Errorf("timings missing: %s", resp.Profile)
	}
	if len(doc.Watches) != 1 {
		t.Fatalf("watch stages = %+v, want 1", doc.Watches)
	}
	ws := doc.Watches[0]
	if ws.Watch != "w" || ws.Affected <= 0 {
		t.Errorf("watch stage wrong: %+v", ws)
	}
	if doc.AffectedSize != ws.Affected {
		t.Errorf("AffectedSize = %d, want widest watch region %d", doc.AffectedSize, ws.Affected)
	}
	if doc.WorkRatio <= 0 || doc.WorkRatio > 1 {
		t.Errorf("WorkRatio = %v, want within (0, 1]", doc.WorkRatio)
	}
}

func TestProfileWithoutPayload(t *testing.T) {
	c, _ := startServer(t, server.Config{})
	if _, _, err := c.LoadText(tinyGraphText); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Do(&server.Request{Cmd: "profile"}); err == nil {
		t.Fatal("profile with neither pattern nor updates succeeded")
	}
}

// TestMetricsWireMatchesHTTP is the regression test for the two scrape
// paths: the metrics wire command and the debug listener's /metrics must
// return identical snapshots. The HTTP document is fetched first — the
// wire command records its own latency only after building its snapshot,
// and the HTTP handler does not instrument itself, so at this point the
// two views are the same document byte for byte.
func TestMetricsWireMatchesHTTP(t *testing.T) {
	reg := obs.NewRegistry()
	c, _ := startServer(t, server.Config{Metrics: reg})
	d, err := obs.Serve("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	if _, _, err := c.LoadText(tinyGraphText); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Match(followPattern, nil); err != nil {
		t.Fatal(err)
	}

	httpResp, err := http.Get(fmt.Sprintf("http://%s/metrics", d.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	httpDoc, err := io.ReadAll(httpResp.Body)
	httpResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	wireDoc, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bytes.TrimSpace(httpDoc), bytes.TrimSpace(wireDoc)) {
		t.Fatalf("wire and HTTP snapshots differ:\nHTTP: %s\nwire: %s", httpDoc, wireDoc)
	}
}
