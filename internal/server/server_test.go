package server_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/server"
)

// startServer runs a server on a loopback listener and returns a
// connected client plus the address for extra connections.
func startServer(t *testing.T, cfg server.Config) (*client.Client, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(cfg)
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ln)
	}()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		<-done
	})
	c, err := client.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c.Timeout = 30 * time.Second
	t.Cleanup(func() { c.Close() })
	return c, ln.Addr().String()
}

const followPattern = `qgp
n xo Person *
n z Person
n y Product
e xo z follow >=2
e z y buy
`

// genPattern matches the lowercase labels of the synthetic generators.
const genPattern = `qgp
n xo person *
n z person
n y product
e xo z follow
e z y buy
`

// tinyGraph: p0 follows p1,p2 who both buy the product; p3 follows only p1.
const tinyGraphText = `graph 5
n 0 Person
n 1 Person
n 2 Person
n 3 Person
n 4 Product
e 0 1 follow
e 0 2 follow
e 1 4 buy
e 2 4 buy
e 3 1 follow
`

func TestPingAndErrors(t *testing.T) {
	c, _ := startServer(t, server.Config{})
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	// Querying before loading a graph is a command error, not a
	// connection error.
	_, err := c.Match(followPattern, nil)
	if err == nil || !strings.Contains(err.Error(), "no graph") {
		t.Fatalf("err = %v, want no-graph error", err)
	}
	// Unknown command.
	_, err = c.Do(&server.Request{Cmd: "fhqwhgads"})
	if err == nil || !strings.Contains(err.Error(), "unknown command") {
		t.Fatalf("err = %v", err)
	}
	// The connection survives errors.
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadAndMatch(t *testing.T) {
	c, _ := startServer(t, server.Config{})
	nodes, edges, err := c.LoadText(tinyGraphText)
	if err != nil {
		t.Fatal(err)
	}
	if nodes != 5 || edges != 5 {
		t.Fatalf("loaded %d/%d", nodes, edges)
	}
	resp, err := c.Match(followPattern, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Matches) != 1 || resp.Matches[0] != 0 {
		t.Fatalf("matches = %v, want [0]", resp.Matches)
	}
	if resp.Metrics == nil {
		t.Error("metrics missing")
	}

	// All three engines agree.
	for _, engine := range []string{"qmatch", "qmatchn", "enum"} {
		r, err := c.Match(followPattern, &client.MatchOptions{Engine: engine})
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		if len(r.Matches) != 1 || r.Matches[0] != 0 {
			t.Fatalf("%s matches = %v", engine, r.Matches)
		}
	}

	// The planner path returns the same answers.
	r, err := c.Match(followPattern, &client.MatchOptions{Planner: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Matches) != 1 || r.Matches[0] != 0 {
		t.Fatalf("planner matches = %v", r.Matches)
	}
}

func TestLoadJSONAndBadInputs(t *testing.T) {
	c, _ := startServer(t, server.Config{})
	doc := `{"nodes":[{"id":"a","label":"Person"},{"id":"b","label":"Person"}],
	         "edges":[{"from":"a","to":"b","label":"follow"}]}`
	nodes, edges, err := c.LoadJSON(doc)
	if err != nil {
		t.Fatal(err)
	}
	if nodes != 2 || edges != 1 {
		t.Fatalf("loaded %d/%d", nodes, edges)
	}
	if _, _, err := c.LoadJSON(`{"nodes": [}`); err == nil {
		t.Error("bad JSON accepted")
	}
	if _, _, err := c.LoadText("not a graph"); err == nil {
		t.Error("bad text accepted")
	}
	if _, err := c.Match("qgp\nnot a pattern", nil); err == nil {
		t.Error("bad pattern accepted")
	}
	if _, err := c.Do(&server.Request{Cmd: "load", Format: "xml", Data: "<g/>"}); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestGenStatsPartitionPMatch(t *testing.T) {
	c, _ := startServer(t, server.Config{})
	nodes, edges, err := c.Gen("social", 300, 7)
	if err != nil {
		t.Fatal(err)
	}
	if nodes == 0 || edges == 0 {
		t.Fatalf("gen produced %d/%d", nodes, edges)
	}

	st, err := c.Stats(5)
	if err != nil {
		t.Fatal(err)
	}
	if st.Nodes != nodes || st.Labels == 0 || len(st.Triples) == 0 {
		t.Fatalf("stats = %+v", st)
	}

	part, err := c.Partition(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(part.Fragments) != 4 || part.Skew <= 0 {
		t.Fatalf("partition = %+v", part)
	}

	// Sequential and parallel answers agree.
	seq, err := c.Match(genPattern, nil)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Total == 0 {
		t.Fatal("generated workload produced no matches; the test is vacuous")
	}
	par, err := c.PMatch(genPattern, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(seq.Matches) != fmt.Sprint(par.Matches) {
		t.Fatalf("parallel %v != sequential %v", par.Matches, seq.Matches)
	}
}

func TestRuleCommand(t *testing.T) {
	c, _ := startServer(t, server.Config{})
	if _, _, err := c.LoadText(tinyGraphText); err != nil {
		t.Fatal(err)
	}
	q1 := "qgp\nn xo Person *\nn z Person\ne xo z follow\n"
	q2 := "qgp\nn xo Person *\nn y Product\ne xo y buy\n"
	resp, err := c.Rule(q1, q2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// p1 and p2 follow someone... no: antecedent is xo follows z. p0 and
	// p3 follow someone; of those, who buys? Neither p0 nor p3 buys.
	if resp.Support != 0 {
		t.Fatalf("support = %d, want 0", resp.Support)
	}

	// Reverse rule: followers of buyers... use buy as antecedent.
	resp, err = c.Rule(q2, q1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// p1, p2 buy; p1 is followed... consequent: xo follows z. Neither p1
	// nor p2 follows anyone, so support stays 0 — but the command works.
	if !resp.OK {
		t.Fatal("rule command failed")
	}
}

func TestRPQFilterCommand(t *testing.T) {
	c, _ := startServer(t, server.Config{})
	if _, _, err := c.LoadText(tinyGraphText); err != nil {
		t.Fatal(err)
	}
	// People who follow ≥1 person (p0, p3), filtered to those who can
	// reach ≥2 nodes through follow.buy? within 2 hops.
	pattern := "qgp\nn xo Person *\nn z Person\ne xo z follow\n"
	resp, err := c.RPQFilter(pattern, "follow.buy? within 2 >=3")
	if err != nil {
		t.Fatal(err)
	}
	// p0 reaches p1, p2, product = 3; p3 reaches p1, product = 2.
	if len(resp.Matches) != 1 || resp.Matches[0] != 0 {
		t.Fatalf("rpqfilter matches = %v, want [0]", resp.Matches)
	}
	if _, err := c.RPQFilter(pattern, "gibberish constraint"); err == nil {
		t.Error("bad constraint accepted")
	}
}

func TestBudgetEnforced(t *testing.T) {
	c, _ := startServer(t, server.Config{DefaultBudget: 1})
	if _, _, err := c.Gen("social", 500, 1); err != nil {
		t.Fatal(err)
	}
	_, err := c.Match(genPattern, nil)
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("err = %v, want budget exceeded", err)
	}
	// Per-request budget override can raise it.
	if _, err := c.Match(genPattern, &client.MatchOptions{Budget: 100_000_000}); err != nil {
		t.Fatalf("budget override failed: %v", err)
	}
}

func TestMatchLimit(t *testing.T) {
	c, _ := startServer(t, server.Config{})
	if _, _, err := c.Gen("social", 400, 3); err != nil {
		t.Fatal(err)
	}
	pattern := "qgp\nn xo person *\nn z person\ne xo z follow\n"
	full, err := c.Match(pattern, nil)
	if err != nil {
		t.Fatal(err)
	}
	if full.Total < 3 {
		t.Skipf("graph too sparse: %d matches", full.Total)
	}
	limited, err := c.Match(pattern, &client.MatchOptions{Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(limited.Matches) != 2 || limited.Total != full.Total {
		t.Fatalf("limited = %d of %d (want 2 of %d)", len(limited.Matches), limited.Total, full.Total)
	}
}

func TestConcurrentSessions(t *testing.T) {
	_, addr := startServer(t, server.Config{MaxConcurrent: 2})
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			c.Timeout = 30 * time.Second
			if _, _, err := c.Gen("social", 150, seed); err != nil {
				errs <- err
				return
			}
			resp, err := c.Match(genPattern, nil)
			if err != nil {
				errs <- err
				return
			}
			if !resp.OK {
				errs <- fmt.Errorf("session %d: %s", seed, resp.Error)
			}
		}(int64(i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestSessionIsolation(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	c1, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	if _, _, err := c1.LoadText(tinyGraphText); err != nil {
		t.Fatal(err)
	}
	// c2 has no graph: its session must not see c1's.
	if _, err := c2.Stats(3); err == nil || !strings.Contains(err.Error(), "no graph") {
		t.Fatalf("session leak: err = %v", err)
	}
}

func TestMalformedLineKeepsConnection(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(conn)
	var resp server.Response
	if err := dec.Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.OK || !strings.Contains(resp.Error, "bad request") {
		t.Fatalf("resp = %+v", resp)
	}
	// Connection still works.
	if _, err := conn.Write([]byte(`{"id": 2, "cmd": "ping"}` + "\n")); err != nil {
		t.Fatal(err)
	}
	if err := dec.Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if !resp.OK || !resp.Pong {
		t.Fatalf("ping after garbage = %+v", resp)
	}
}

func TestShutdownClosesConnections(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{})
	go srv.Serve(ln)

	c, err := client.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); err == nil {
		t.Error("ping succeeded after shutdown")
	}
	// Serving again after shutdown refuses.
	ln2, _ := net.Listen("tcp", "127.0.0.1:0")
	defer ln2.Close()
	if err := srv.Serve(ln2); err == nil {
		t.Error("Serve after Shutdown accepted")
	}
}

func TestGraphSizeCap(t *testing.T) {
	c, _ := startServer(t, server.Config{MaxGraphSize: 100})
	if _, _, err := c.Gen("social", 500, 1); err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("err = %v, want size cap", err)
	}
}

func TestUpdateCommand(t *testing.T) {
	c, _ := startServer(t, server.Config{})
	if _, _, err := c.LoadText(tinyGraphText); err != nil {
		t.Fatal(err)
	}
	// p3 follows only p1; give p3 a second followee who buys, then p3
	// matches the follow>=2+buy pattern too.
	nodes, edges, err := c.Update(
		server.UpdateSpec{Op: "addEdge", From: 3, To: 2, Label: "follow"},
	)
	if err != nil {
		t.Fatal(err)
	}
	if nodes != 5 || edges != 6 {
		t.Fatalf("after update: %d/%d", nodes, edges)
	}
	resp, err := c.Match(followPattern, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Matches) != 2 || resp.Matches[0] != 0 || resp.Matches[1] != 3 {
		t.Fatalf("matches after update = %v, want [0 3]", resp.Matches)
	}

	// removeNode isolates the product: nobody matches.
	if _, _, err := c.Update(server.UpdateSpec{Op: "removeNode", From: 4}); err != nil {
		t.Fatal(err)
	}
	resp, err = c.Match(followPattern, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Matches) != 0 {
		t.Fatalf("matches after product removal = %v", resp.Matches)
	}

	// Errors: unknown op, out-of-range node, empty batch — session graph
	// survives each.
	for _, bad := range [][]server.UpdateSpec{
		{{Op: "teleport"}},
		{{Op: "addEdge", From: 0, To: 99, Label: "x"}},
		nil,
	} {
		if _, _, err := c.Update(bad...); err == nil {
			t.Errorf("Update(%v) accepted", bad)
		}
	}
	if _, err := c.Stats(1); err != nil {
		t.Fatalf("session graph lost after failed updates: %v", err)
	}
}

func TestUpdateBeforeLoad(t *testing.T) {
	c, _ := startServer(t, server.Config{})
	if _, _, err := c.Update(server.UpdateSpec{Op: "addNode", Label: "x"}); err == nil {
		t.Fatal("update without a graph accepted")
	}
}

func TestWatchStandingPattern(t *testing.T) {
	c, _ := startServer(t, server.Config{})
	if _, _, err := c.LoadText(tinyGraphText); err != nil {
		t.Fatal(err)
	}
	// Standing pattern: people following ≥2 buyers of the product.
	resp, err := c.Watch("buyers", followPattern)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Matches) != 1 || resp.Matches[0] != 0 {
		t.Fatalf("initial watch answers = %v, want [0]", resp.Matches)
	}

	// p3 follows p2 as well: p3 enters the answer set.
	up, err := c.UpdateWithDeltas(server.UpdateSpec{Op: "addEdge", From: 3, To: 2, Label: "follow"})
	if err != nil {
		t.Fatal(err)
	}
	if len(up.Deltas) != 1 || up.Deltas[0].Watch != "buyers" {
		t.Fatalf("deltas = %+v", up.Deltas)
	}
	d := up.Deltas[0]
	if len(d.Added) != 1 || d.Added[0] != 3 || len(d.Removed) != 0 {
		t.Fatalf("delta = %+v, want +[3]", d)
	}
	if d.Affected == 0 {
		t.Error("delta reports no verification work")
	}

	// Removing a buy edge drops both answers.
	up, err = c.UpdateWithDeltas(server.UpdateSpec{Op: "removeEdge", From: 1, To: 4, Label: "buy"})
	if err != nil {
		t.Fatal(err)
	}
	if len(up.Deltas[0].Removed) != 2 {
		t.Fatalf("delta after removal = %+v, want -[0 3]", up.Deltas[0])
	}

	// Unwatch: later updates carry no deltas.
	if err := c.Unwatch("buyers"); err != nil {
		t.Fatal(err)
	}
	up, err = c.UpdateWithDeltas(server.UpdateSpec{Op: "addEdge", From: 1, To: 4, Label: "buy"})
	if err != nil {
		t.Fatal(err)
	}
	if len(up.Deltas) != 0 {
		t.Fatalf("deltas after unwatch = %+v", up.Deltas)
	}
}

func TestWatchErrorsAndLifecycle(t *testing.T) {
	c, _ := startServer(t, server.Config{})
	if _, err := c.Watch("w", followPattern); err == nil {
		t.Error("watch before load accepted")
	}
	if _, _, err := c.LoadText(tinyGraphText); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Watch("", followPattern); err == nil {
		t.Error("empty watch name accepted")
	}
	if _, err := c.Watch("w", "not a pattern"); err == nil {
		t.Error("bad watch pattern accepted")
	}
	if _, err := c.Watch("w", followPattern); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Watch("w", followPattern); err == nil {
		t.Error("duplicate watch accepted")
	}
	if err := c.Unwatch("nope"); err == nil {
		t.Error("unwatch of unknown name accepted")
	}
	// Loading a new graph drops the watches.
	if _, _, err := c.LoadText(tinyGraphText); err != nil {
		t.Fatal(err)
	}
	if err := c.Unwatch("w"); err == nil {
		t.Error("watch survived a graph replacement")
	}
}
