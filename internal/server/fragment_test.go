package server_test

import (
	"reflect"
	"testing"

	"repro/internal/server"
)

// fragGraph is a small fragment in the text format: persons 0..3 where 0
// and 1 follow enough people to match, but only 0 and 2 are owned by this
// worker.
const fragGraph = `graph 5
n 0 person
n 1 person
n 2 person
n 3 person
n 4 person
e 0 1 follow
e 0 2 follow
e 1 0 follow
e 1 3 follow
e 3 4 follow
`

const fragPattern = "qgp\nn xo person *\nn z person\ne xo z follow >=2\n"

// TestFragmentRestrictsAnswers: after fragment, match and watch answer
// only for the owned focus candidates.
func TestFragmentRestrictsAnswers(t *testing.T) {
	c, _ := startServer(t, server.Config{})
	nodes, edges, err := c.Fragment(fragGraph, []int64{0, 2})
	if err != nil {
		t.Fatalf("fragment: %v", err)
	}
	if nodes != 5 || edges != 5 {
		t.Fatalf("fragment loaded %d/%d, want 5/5", nodes, edges)
	}
	// Unrestricted, both 0 and 1 match; this session owns only 0 and 2.
	resp, err := c.Match(fragPattern, nil)
	if err != nil {
		t.Fatalf("match: %v", err)
	}
	if !reflect.DeepEqual(resp.Matches, []int64{0}) {
		t.Fatalf("fragment match = %v, want [0]", resp.Matches)
	}
	wresp, err := c.Watch("w", fragPattern)
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	if !reflect.DeepEqual(wresp.Matches, []int64{0}) {
		t.Fatalf("fragment watch answers = %v, want [0]", wresp.Matches)
	}

	// Assigning node 1 surfaces its answer as a watch delta.
	aresp, err := c.Assign([]int64{1})
	if err != nil {
		t.Fatalf("assign: %v", err)
	}
	if len(aresp.Deltas) != 1 || !reflect.DeepEqual(aresp.Deltas[0].Added, []int64{1}) {
		t.Fatalf("assign deltas = %+v, want watch w +[1]", aresp.Deltas)
	}
	resp, err = c.Match(fragPattern, nil)
	if err != nil {
		t.Fatalf("match after assign: %v", err)
	}
	if !reflect.DeepEqual(resp.Matches, []int64{0, 1}) {
		t.Fatalf("match after assign = %v, want [0 1]", resp.Matches)
	}

	// Updates maintain the restricted watch: removing 0's second follow
	// edge drops its answer, and non-owned candidates stay silent.
	uresp, err := c.UpdateWithDeltas(server.UpdateSpec{Op: "removeEdge", From: 0, To: 2, Label: "follow"})
	if err != nil {
		t.Fatalf("update: %v", err)
	}
	if len(uresp.Deltas) != 1 || !reflect.DeepEqual(uresp.Deltas[0].Removed, []int64{0}) {
		t.Fatalf("update deltas = %+v, want watch w -[0]", uresp.Deltas)
	}
}

// TestFragmentValidation: bad owned ids and assign-without-fragment fail.
func TestFragmentValidation(t *testing.T) {
	c, _ := startServer(t, server.Config{})
	if _, err := c.Assign([]int64{0}); err == nil {
		t.Fatal("assign without fragment succeeded")
	}
	if _, _, err := c.Fragment(fragGraph, []int64{99}); err == nil {
		t.Fatal("fragment accepted an out-of-range owned id")
	}
	// A fresh gen clears fragment mode: match is unrestricted again.
	if _, _, err := c.Fragment(fragGraph, []int64{0}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Gen("social", 50, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Assign([]int64{0}); err == nil {
		t.Fatal("assign after gen should fail: session is no longer a fragment")
	}
}
