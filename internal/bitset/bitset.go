// Package bitset provides the dense bit sets used for candidate sets in
// graph simulation and subgraph matching.
package bitset

import "math/bits"

// Set is a fixed-capacity bit set over [0, Len).
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set with capacity n.
func New(n int) *Set {
	return &Set{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the capacity of the set.
func (s *Set) Len() int { return s.n }

// Add inserts i.
func (s *Set) Add(i int) { s.words[i>>6] |= 1 << (uint(i) & 63) }

// Remove deletes i.
func (s *Set) Remove(i int) { s.words[i>>6] &^= 1 << (uint(i) & 63) }

// Contains reports whether i is in the set.
func (s *Set) Contains(i int) bool { return s.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// Count returns the number of elements.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns a copy of s.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// IntersectWith removes elements not in t.
func (s *Set) IntersectWith(t *Set) {
	for i := range s.words {
		s.words[i] &= t.words[i]
	}
}

// UnionWith adds all elements of t.
func (s *Set) UnionWith(t *Set) {
	for i := range s.words {
		s.words[i] |= t.words[i]
	}
}

// Clear removes all elements.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// ForEach calls f for each element in ascending order; it stops early if f
// returns false.
func (s *Set) ForEach(f func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !f(wi<<6 + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Slice returns the elements in ascending order.
func (s *Set) Slice() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}
