package bitset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBasics(t *testing.T) {
	s := New(130)
	if !s.Empty() || s.Count() != 0 || s.Len() != 130 {
		t.Fatal("new set not empty")
	}
	s.Add(0)
	s.Add(64)
	s.Add(129)
	if s.Count() != 3 {
		t.Fatalf("Count = %d, want 3", s.Count())
	}
	for _, i := range []int{0, 64, 129} {
		if !s.Contains(i) {
			t.Errorf("missing %d", i)
		}
	}
	if s.Contains(1) || s.Contains(128) {
		t.Error("spurious membership")
	}
	s.Remove(64)
	if s.Contains(64) || s.Count() != 2 {
		t.Error("Remove failed")
	}
	if got := s.Slice(); !reflect.DeepEqual(got, []int{0, 129}) {
		t.Errorf("Slice = %v", got)
	}
	s.Clear()
	if !s.Empty() {
		t.Error("Clear failed")
	}
}

func TestSetOps(t *testing.T) {
	a, b := New(100), New(100)
	a.Add(1)
	a.Add(2)
	a.Add(3)
	b.Add(2)
	b.Add(3)
	b.Add(4)

	c := a.Clone()
	c.IntersectWith(b)
	if got := c.Slice(); !reflect.DeepEqual(got, []int{2, 3}) {
		t.Errorf("intersect = %v", got)
	}
	d := a.Clone()
	d.UnionWith(b)
	if got := d.Slice(); !reflect.DeepEqual(got, []int{1, 2, 3, 4}) {
		t.Errorf("union = %v", got)
	}
	// Originals untouched.
	if a.Count() != 3 || b.Count() != 3 {
		t.Error("Clone aliased the underlying words")
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := New(10)
	for i := 0; i < 10; i++ {
		s.Add(i)
	}
	seen := 0
	s.ForEach(func(i int) bool {
		seen++
		return seen < 3
	})
	if seen != 3 {
		t.Fatalf("early stop visited %d, want 3", seen)
	}
}

// Property: set semantics agree with a reference map implementation under a
// random operation sequence.
func TestQuickAgainstMap(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		s := New(n)
		ref := map[int]bool{}
		for op := 0; op < 300; op++ {
			i := r.Intn(n)
			switch r.Intn(3) {
			case 0:
				s.Add(i)
				ref[i] = true
			case 1:
				s.Remove(i)
				delete(ref, i)
			default:
				if s.Contains(i) != ref[i] {
					return false
				}
			}
		}
		if s.Count() != len(ref) {
			return false
		}
		for _, i := range s.Slice() {
			if !ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
