package rpq

// Thompson construction: each AST node compiles to an NFA fragment with
// one entry and one exit state; fragments are glued with ε-transitions.

// nfa is a compiled path expression.
type nfa struct {
	// eps[s] lists the ε-successors of state s.
	eps [][]int
	// trans[s] maps an edge label to label-successors of state s.
	trans  []map[string][]int
	start  int
	accept int
}

func (m *nfa) newState() int {
	m.eps = append(m.eps, nil)
	m.trans = append(m.trans, nil)
	return len(m.eps) - 1
}

func (m *nfa) addEps(from, to int) { m.eps[from] = append(m.eps[from], to) }

func (m *nfa) addTrans(from int, label string, to int) {
	if m.trans[from] == nil {
		m.trans[from] = make(map[string][]int)
	}
	m.trans[from][label] = append(m.trans[from][label], to)
}

// compile builds the NFA for an expression.
func compile(e *Expr) *nfa {
	m := &nfa{}
	start, accept := m.build(e.root)
	m.start, m.accept = start, accept
	return m
}

// build returns the (entry, exit) states of the fragment for n.
func (m *nfa) build(n node) (int, int) {
	switch n := n.(type) {
	case labelNode:
		s, t := m.newState(), m.newState()
		m.addTrans(s, n.label, t)
		return s, t
	case concatNode:
		s, t := m.build(n.parts[0])
		for _, part := range n.parts[1:] {
			ps, pt := m.build(part)
			m.addEps(t, ps)
			t = pt
		}
		return s, t
	case altNode:
		s, t := m.newState(), m.newState()
		for _, part := range n.parts {
			ps, pt := m.build(part)
			m.addEps(s, ps)
			m.addEps(pt, t)
		}
		return s, t
	case starNode:
		s, t := m.newState(), m.newState()
		is, it := m.build(n.inner)
		m.addEps(s, is)
		m.addEps(s, t)
		m.addEps(it, is)
		m.addEps(it, t)
		return s, t
	case plusNode:
		s, t := m.newState(), m.newState()
		is, it := m.build(n.inner)
		m.addEps(s, is)
		m.addEps(it, is)
		m.addEps(it, t)
		return s, t
	case optNode:
		s, t := m.newState(), m.newState()
		is, it := m.build(n.inner)
		m.addEps(s, is)
		m.addEps(s, t)
		m.addEps(it, t)
		return s, t
	}
	panic("rpq: unknown AST node")
}

// closure expands a state set with its ε-closure, in place, returning the
// updated set (a sorted, deduplicated slice of states).
func (m *nfa) closure(states map[int]bool) {
	stack := make([]int, 0, len(states))
	for s := range states {
		stack = append(stack, s)
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range m.eps[s] {
			if !states[t] {
				states[t] = true
				stack = append(stack, t)
			}
		}
	}
}

// matchWord reports whether a label word is in the NFA's language — the
// reference matcher used by tests and by the naive evaluator.
func (m *nfa) matchWord(word []string) bool {
	cur := map[int]bool{m.start: true}
	m.closure(cur)
	for _, label := range word {
		next := make(map[int]bool)
		for s := range cur {
			for _, t := range m.trans[s][label] {
				next[t] = true
			}
		}
		if len(next) == 0 {
			return false
		}
		m.closure(next)
		cur = next
	}
	return cur[m.accept]
}
