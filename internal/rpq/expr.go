// Package rpq implements bounded regular path queries over edge labels —
// the "regular path constraints" extension the paper's conclusion (§8)
// names as future work. A path expression denotes a regular language over
// edge labels; Reach computes the nodes reachable from a source by a
// directed walk of bounded length whose label word is in the language,
// via breadth-first search of the product of the graph with a Thompson
// NFA. Constraint combines a path expression with one of the paper's
// counting quantifiers, so quantified reachability predicates ("follows
// at least 5 accounts through ≤ 3 retweet hops") compose with quantified
// graph patterns as focus post-filters.
//
// Expression syntax:
//
//	expr   := alt
//	alt    := concat ('|' concat)*
//	concat := unary ('.' unary)*
//	unary  := atom ('*' | '+' | '?')?
//	atom   := label | '(' expr ')'
//
// A label is any run of letters, digits, '_' or '-'. '*' and '+' are
// bounded at evaluation time by the walk-length limit, so the language is
// effectively finite.
package rpq

import (
	"fmt"
	"strings"
)

// Expr is a parsed path expression.
type Expr struct {
	root node
	src  string
}

// node is the expression AST.
type node interface {
	fmt.Stringer
}

type labelNode struct{ label string }
type concatNode struct{ parts []node }
type altNode struct{ parts []node }
type starNode struct{ inner node } // zero or more
type plusNode struct{ inner node } // one or more
type optNode struct{ inner node }  // zero or one

func (n labelNode) String() string { return n.label }
func (n concatNode) String() string {
	parts := make([]string, len(n.parts))
	for i, p := range n.parts {
		parts[i] = p.String()
	}
	return "(" + strings.Join(parts, ".") + ")"
}
func (n altNode) String() string {
	parts := make([]string, len(n.parts))
	for i, p := range n.parts {
		parts[i] = p.String()
	}
	return "(" + strings.Join(parts, "|") + ")"
}
func (n starNode) String() string { return n.inner.String() + "*" }
func (n plusNode) String() string { return n.inner.String() + "+" }
func (n optNode) String() string  { return n.inner.String() + "?" }

// String returns the original expression source.
func (e *Expr) String() string { return e.src }

// Parse parses a path expression.
func Parse(src string) (*Expr, error) {
	p := &parser{src: src}
	root, err := p.alt()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("rpq: unexpected %q at offset %d", p.src[p.pos], p.pos)
	}
	return &Expr{root: root, src: src}, nil
}

// MustParse is Parse for static expressions; it panics on error.
func MustParse(src string) *Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	src string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *parser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) alt() (node, error) {
	first, err := p.concat()
	if err != nil {
		return nil, err
	}
	parts := []node{first}
	for p.peek() == '|' {
		p.pos++
		n, err := p.concat()
		if err != nil {
			return nil, err
		}
		parts = append(parts, n)
	}
	if len(parts) == 1 {
		return first, nil
	}
	return altNode{parts: parts}, nil
}

func (p *parser) concat() (node, error) {
	first, err := p.unary()
	if err != nil {
		return nil, err
	}
	parts := []node{first}
	for p.peek() == '.' {
		p.pos++
		n, err := p.unary()
		if err != nil {
			return nil, err
		}
		parts = append(parts, n)
	}
	if len(parts) == 1 {
		return first, nil
	}
	return concatNode{parts: parts}, nil
}

func (p *parser) unary() (node, error) {
	n, err := p.atom()
	if err != nil {
		return nil, err
	}
	switch p.peek() {
	case '*':
		p.pos++
		return starNode{inner: n}, nil
	case '+':
		p.pos++
		return plusNode{inner: n}, nil
	case '?':
		p.pos++
		return optNode{inner: n}, nil
	}
	return n, nil
}

func (p *parser) atom() (node, error) {
	switch c := p.peek(); {
	case c == '(':
		p.pos++
		n, err := p.alt()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, fmt.Errorf("rpq: missing ')' at offset %d", p.pos)
		}
		p.pos++
		return n, nil
	case isLabelByte(c):
		start := p.pos
		for p.pos < len(p.src) && isLabelByte(p.src[p.pos]) {
			p.pos++
		}
		return labelNode{label: p.src[start:p.pos]}, nil
	case c == 0:
		return nil, fmt.Errorf("rpq: unexpected end of expression")
	default:
		return nil, fmt.Errorf("rpq: unexpected %q at offset %d", c, p.pos)
	}
}

func isLabelByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '-'
}
