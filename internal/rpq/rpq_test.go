package rpq

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"follow",
		"follow.follow",
		"follow|like",
		"follow*",
		"follow+",
		"follow?",
		"(follow|like).recom",
		"a.(b|c)*.d",
		"advisor.is_a",
	}
	for _, src := range cases {
		e, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		if e.String() != src {
			t.Errorf("String() = %q, want %q", e.String(), src)
		}
		// Reparsing the AST rendering must succeed too.
		if _, err := Parse(e.root.String()); err != nil {
			t.Errorf("reparse of %q AST %q: %v", src, e.root.String(), err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"", "(", "a|", "a.", "a)", "(a", "a..b", "*", "|a", "a$b",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted", src)
		}
	}
}

func TestMatchWord(t *testing.T) {
	cases := []struct {
		expr string
		word []string
		want bool
	}{
		{"a", []string{"a"}, true},
		{"a", []string{"b"}, false},
		{"a", nil, false},
		{"a*", nil, true},
		{"a*", []string{"a", "a", "a"}, true},
		{"a+", nil, false},
		{"a+", []string{"a"}, true},
		{"a?", nil, true},
		{"a?", []string{"a", "a"}, false},
		{"a.b", []string{"a", "b"}, true},
		{"a.b", []string{"b", "a"}, false},
		{"a|b", []string{"b"}, true},
		{"(a|b).c", []string{"a", "c"}, true},
		{"(a|b).c", []string{"c"}, false},
		{"a.(b|c)*.d", []string{"a", "b", "c", "b", "d"}, true},
		{"a.(b|c)*.d", []string{"a", "d"}, true},
		{"a.(b|c)*.d", []string{"a", "x", "d"}, false},
	}
	for _, c := range cases {
		m := compile(MustParse(c.expr))
		if got := m.matchWord(c.word); got != c.want {
			t.Errorf("match(%q, %v) = %v, want %v", c.expr, c.word, got, c.want)
		}
	}
}

// chain builds a -f-> b -f-> c -g-> d.
func chain(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New(4)
	a := g.AddNode("N")
	b := g.AddNode("N")
	c := g.AddNode("N")
	d := g.AddNode("N")
	g.AddEdge(a, b, "f")
	g.AddEdge(b, c, "f")
	g.AddEdge(c, d, "g")
	g.Finalize()
	return g
}

func TestReachChain(t *testing.T) {
	g := chain(t)
	cases := []struct {
		expr   string
		maxLen int
		want   []graph.NodeID
	}{
		{"f", 3, []graph.NodeID{1}},
		{"f.f", 3, []graph.NodeID{2}},
		{"f.f.g", 3, []graph.NodeID{3}},
		{"f.f.g", 2, nil}, // length bound cuts the walk
		{"f*", 3, []graph.NodeID{0, 1, 2}},
		{"f+", 3, []graph.NodeID{1, 2}},
		{"f*.g", 3, []graph.NodeID{3}},
		{"g", 3, nil},
	}
	for _, c := range cases {
		got := Reach(g, 0, MustParse(c.expr), c.maxLen)
		if !reflect.DeepEqual(got, c.want) && !(len(got) == 0 && len(c.want) == 0) {
			t.Errorf("Reach(%q, %d) = %v, want %v", c.expr, c.maxLen, got, c.want)
		}
	}
}

func TestReachCycleTerminates(t *testing.T) {
	g := graph.New(2)
	a := g.AddNode("N")
	b := g.AddNode("N")
	g.AddEdge(a, b, "f")
	g.AddEdge(b, a, "f")
	g.Finalize()
	got := Reach(g, a, MustParse("f*"), 10)
	if !reflect.DeepEqual(got, []graph.NodeID{0, 1}) {
		t.Errorf("Reach on cycle = %v", got)
	}
	// Odd-length-only language on a 2-cycle: f.(f.f)* reaches only b.
	got = Reach(g, a, MustParse("f.(f.f)*"), 9)
	if !reflect.DeepEqual(got, []graph.NodeID{1}) {
		t.Errorf("odd-walk Reach = %v, want [1]", got)
	}
}

func TestReachAny(t *testing.T) {
	g := chain(t)
	if got := ReachAny(g, 0, 2); !reflect.DeepEqual(got, []graph.NodeID{1, 2}) {
		t.Errorf("ReachAny(0, 2) = %v", got)
	}
	if got := ReachAny(g, 0, 0); len(got) != 0 {
		t.Errorf("ReachAny(0, 0) = %v, want empty", got)
	}
	if got := ReachAny(g, 3, 5); len(got) != 0 {
		t.Errorf("ReachAny(sink) = %v, want empty", got)
	}
}

// naiveReach enumerates all directed walks up to maxLen and matches their
// words against the NFA — the executable specification for Reach.
func naiveReach(g *graph.Graph, src graph.NodeID, e *Expr, maxLen int) []graph.NodeID {
	m := compile(e)
	result := make(map[graph.NodeID]bool)
	var walk func(v graph.NodeID, word []string)
	walk = func(v graph.NodeID, word []string) {
		if m.matchWord(word) {
			result[v] = true
		}
		if len(word) == maxLen {
			return
		}
		for _, ge := range g.Out(v) {
			walk(ge.To, append(word, g.LabelName(ge.Label)))
		}
	}
	walk(src, nil)
	out := make([]graph.NodeID, 0, len(result))
	for v := range result {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestReachDifferentialSmallWorld(t *testing.T) {
	g := gen.SmallWorld(gen.SmallWorldConfig{Nodes: 60, Edges: 150, Labels: 4, Seed: 3})
	// Edge labels in small-world graphs are l0..l3-style; discover two.
	var labels []string
	for vi := 0; vi < g.NumNodes() && len(labels) < 3; vi++ {
		for _, e := range g.Out(graph.NodeID(vi)) {
			name := g.LabelName(e.Label)
			dup := false
			for _, l := range labels {
				if l == name {
					dup = true
				}
			}
			if !dup {
				labels = append(labels, name)
			}
			if len(labels) == 3 {
				break
			}
		}
	}
	if len(labels) < 2 {
		t.Skip("not enough edge labels")
	}
	exprs := []string{
		labels[0],
		labels[0] + "." + labels[1],
		labels[0] + "|" + labels[1],
		"(" + labels[0] + "|" + labels[1] + ")*",
		labels[0] + "+",
		labels[0] + "." + labels[1] + "?",
	}
	for _, src := range exprs {
		e := MustParse(src)
		for _, maxLen := range []int{0, 1, 2, 3} {
			for vi := 0; vi < 20; vi++ {
				v := graph.NodeID(vi * 3 % g.NumNodes())
				got := Reach(g, v, e, maxLen)
				want := naiveReach(g, v, e, maxLen)
				if !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
					t.Fatalf("Reach(%q, v=%d, len=%d) = %v, want %v", src, v, maxLen, got, want)
				}
			}
		}
	}
}

func TestConstraintHoldsAndFilter(t *testing.T) {
	// Person 0 follows 3 accounts, person 4 follows 1.
	g := graph.New(8)
	p0 := g.AddNode("Person")
	for i := 0; i < 3; i++ {
		a := g.AddNode("Person")
		g.AddEdge(p0, a, "follow")
	}
	p4 := g.AddNode("Person")
	b := g.AddNode("Person")
	g.AddEdge(p4, b, "follow")
	g.Finalize()

	c := Constraint{Expr: MustParse("follow"), MaxLen: 1, Q: core.Count(core.GE, 2)}
	if !Holds(g, p0, c) {
		t.Error("p0 should satisfy ≥2 follows")
	}
	if Holds(g, p4, c) {
		t.Error("p4 should fail ≥2 follows")
	}
	got := Filter(g, []graph.NodeID{p0, p4}, c)
	if !reflect.DeepEqual(got, []graph.NodeID{p0}) {
		t.Errorf("Filter = %v, want [p0]", got)
	}
}

func TestConstraintRatio(t *testing.T) {
	// v reaches 4 nodes within 2 hops, 3 of them via follow-only walks.
	g := graph.New(6)
	v := g.AddNode("Person")
	a := g.AddNode("Person")
	bnode := g.AddNode("Person")
	c := g.AddNode("Person")
	d := g.AddNode("Person")
	g.AddEdge(v, a, "follow")
	g.AddEdge(a, bnode, "follow")
	g.AddEdge(v, c, "follow")
	g.AddEdge(v, d, "block") // reachable, but not via follow
	g.Finalize()

	con := Constraint{Expr: MustParse("follow.follow?"), MaxLen: 2, Q: core.RatioPercent(core.GE, 75)}
	if !Holds(g, v, con) {
		t.Error("3 of 4 = 75% should satisfy ≥75%")
	}
	con.Q = core.RatioPercent(core.GE, 80)
	if Holds(g, v, con) {
		t.Error("75% should fail ≥80%")
	}
}

func TestParseConstraint(t *testing.T) {
	c, err := ParseConstraint("follow.follow within 2 >=5")
	if err != nil {
		t.Fatal(err)
	}
	if c.MaxLen != 2 || c.Q.IsRatio() || c.Q.N() != 5 {
		t.Errorf("constraint = %+v", c)
	}
	c, err = ParseConstraint("like|recom within 3 >=80%")
	if err != nil {
		t.Fatal(err)
	}
	if !c.Q.IsRatio() || c.MaxLen != 3 {
		t.Errorf("constraint = %+v", c)
	}
	for _, bad := range []string{"", "follow", "follow within x >=5", "follow within -1 >=5", "$ within 2 >=5", "follow within 2 banana"} {
		if _, err := ParseConstraint(bad); err == nil {
			t.Errorf("ParseConstraint(%q) accepted", bad)
		}
	}
}

// Property: Reach is monotone in maxLen, and Reach ⊆ {src} ∪ ReachAny.
func TestReachMonotoneProperty(t *testing.T) {
	g := gen.Social(gen.DefaultSocial(80, 21))
	e := MustParse("follow*.like?")
	f := func(vi uint16, l uint8) bool {
		v := graph.NodeID(int(vi) % g.NumNodes())
		maxLen := int(l) % 4
		small := Reach(g, v, e, maxLen)
		large := Reach(g, v, e, maxLen+1)
		inLarge := make(map[graph.NodeID]bool, len(large))
		for _, u := range large {
			inLarge[u] = true
		}
		for _, u := range small {
			if !inLarge[u] {
				return false
			}
		}
		anySet := make(map[graph.NodeID]bool)
		anySet[v] = true
		for _, u := range ReachAny(g, v, maxLen) {
			anySet[u] = true
		}
		for _, u := range small {
			if !anySet[u] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Parser robustness: arbitrary input never panics; it either parses (and
// the rendered AST reparses) or errors.
func TestParseNeverPanicsProperty(t *testing.T) {
	f := func(s string) bool {
		e, err := Parse(s)
		if err != nil {
			return true
		}
		_, err2 := Parse(e.root.String())
		return err2 == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Compile/match robustness on parseable random-ish expressions built from
// a small grammar sampler.
func TestCompiledMatcherTotality(t *testing.T) {
	exprs := []string{
		"a", "a.b.c", "(a|b)*", "a+.b?", "((a.b)|c)+", "a?.a?.a?",
	}
	words := [][]string{nil, {"a"}, {"b"}, {"a", "b"}, {"c", "a", "b"}, {"a", "a", "a", "a"}}
	for _, src := range exprs {
		m := compile(MustParse(src))
		for _, w := range words {
			_ = m.matchWord(w) // must not panic
		}
	}
}
