package rpq

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
)

// Reach returns the sorted set of nodes reachable from src by a directed
// walk of at most maxLen edges whose label word belongs to the
// expression's language. Walks may revisit nodes (regular path queries
// are walk-based); termination is guaranteed by the length bound and the
// finite product space: BFS explores (node, NFA-state) pairs level by
// level, revisiting a pair only if it reappears at a shorter level —
// which cannot happen in BFS — so each level touches each pair at most
// once.
func Reach(g *graph.Graph, src graph.NodeID, e *Expr, maxLen int) []graph.NodeID {
	if maxLen < 0 {
		return nil
	}
	m := compile(e)

	type pair struct {
		v graph.NodeID
		s int
	}
	cur := make(map[pair]bool)
	seen := make(map[pair]bool) // pairs ever enqueued: shorter walks dominate
	result := make(map[graph.NodeID]bool)

	startStates := map[int]bool{m.start: true}
	m.closure(startStates)
	for s := range startStates {
		p := pair{src, s}
		cur[p] = true
		seen[p] = true
		if s == m.accept {
			result[src] = true
		}
	}

	for depth := 0; depth < maxLen && len(cur) > 0; depth++ {
		next := make(map[pair]bool)
		for p := range cur {
			for _, ge := range g.Out(p.v) {
				label := g.LabelName(ge.Label)
				targets := m.trans[p.s][label]
				if len(targets) == 0 {
					continue
				}
				states := make(map[int]bool, len(targets))
				for _, t := range targets {
					states[t] = true
				}
				m.closure(states)
				for s := range states {
					np := pair{ge.To, s}
					if seen[np] {
						continue
					}
					seen[np] = true
					next[np] = true
					if s == m.accept {
						result[ge.To] = true
					}
				}
			}
		}
		cur = next
	}

	out := make([]graph.NodeID, 0, len(result))
	for v := range result {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ReachAny returns the sorted set of nodes reachable from src by any
// directed walk of at most maxLen edges — the denominator of ratio
// quantifiers over path constraints, generalizing |Me(v)| (the 1-hop
// out-neighborhood) to bounded walks.
func ReachAny(g *graph.Graph, src graph.NodeID, maxLen int) []graph.NodeID {
	seen := map[graph.NodeID]bool{src: true}
	frontier := []graph.NodeID{src}
	for depth := 0; depth < maxLen && len(frontier) > 0; depth++ {
		var next []graph.NodeID
		for _, v := range frontier {
			for _, e := range g.Out(v) {
				if !seen[e.To] {
					seen[e.To] = true
					next = append(next, e.To)
				}
			}
		}
		frontier = next
	}
	delete(seen, src)
	out := make([]graph.NodeID, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Constraint is a quantified path predicate: the number of distinct nodes
// reachable from a candidate via Expr-walks of length ≤ MaxLen must
// satisfy Q. For ratio quantifiers the denominator is |ReachAny| — the
// count of nodes reachable by any walk of the same bound — so "≥ 80%"
// reads "at least 80% of everything within MaxLen hops is reachable
// through Expr-paths", the walk-based generalization of the paper's
// per-edge ratio semantics.
type Constraint struct {
	Expr   *Expr
	MaxLen int
	Q      core.Quantifier
}

// ParseConstraint parses "expr within N quant", e.g.
// "follow.follow within 2 >=5" or "like|recom within 3 >=80%".
func ParseConstraint(src string) (Constraint, error) {
	var c Constraint
	var exprPart, lenPart, qPart string
	if _, err := fmt.Sscanf(src, "%s within %s %s", &exprPart, &lenPart, &qPart); err != nil {
		return c, fmt.Errorf("rpq: constraint %q: want \"expr within N quantifier\"", src)
	}
	e, err := Parse(exprPart)
	if err != nil {
		return c, err
	}
	var maxLen int
	if _, err := fmt.Sscanf(lenPart, "%d", &maxLen); err != nil || maxLen < 0 {
		return c, fmt.Errorf("rpq: bad length bound %q", lenPart)
	}
	q, err := core.ParseQuantifier(qPart)
	if err != nil {
		return c, err
	}
	c.Expr, c.MaxLen, c.Q = e, maxLen, q
	return c, nil
}

// Holds reports whether the constraint is satisfied at node v. The source
// itself is not counted as reachable (a walk of length 0 satisfies only
// the empty word, and counting v among its own "children" would skew
// ratios), matching the paper's child-set semantics.
func Holds(g *graph.Graph, v graph.NodeID, c Constraint) bool {
	reach := Reach(g, v, c.Expr, c.MaxLen)
	count := 0
	for _, u := range reach {
		if u != v {
			count++
		}
	}
	total := count
	if c.Q.IsRatio() {
		total = len(ReachAny(g, v, c.MaxLen))
	}
	return c.Q.Satisfied(count, total)
}

// Filter returns the candidates satisfying the constraint — the
// composition point with quantified matching: apply a QGP first, then
// restrict its focus answers by path constraints.
func Filter(g *graph.Graph, candidates []graph.NodeID, c Constraint) []graph.NodeID {
	var out []graph.NodeID
	for _, v := range candidates {
		if Holds(g, v, c) {
			out = append(out, v)
		}
	}
	return out
}
