package parallel_test

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/fixture"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/parallel"
	"repro/internal/partition"
)

func cluster(t *testing.T, g *graph.Graph, workers, d int) *parallel.Cluster {
	t.Helper()
	p, err := partition.DPar(g, partition.Config{Workers: workers, D: d})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return parallel.NewCluster(p)
}

func TestRequiredHops(t *testing.T) {
	if got := parallel.RequiredHops(fixture.Q2()); got != 2 {
		// Q2: radius 2; the ratio edge (=100%) leaves the focus, 0+1=1 < 2.
		t.Errorf("RequiredHops(Q2) = %d, want 2", got)
	}
	if got := parallel.RequiredHops(fixture.Q3(2)); got != 2 {
		t.Errorf("RequiredHops(Q3) = %d, want 2", got)
	}
	// A ratio edge two hops out forces an extra hop.
	p := core.NewPattern()
	p.AddNode("xo", "a")
	p.AddNode("b", "b")
	p.AddNode("c", "c")
	p.AddEdge("xo", "b", "r", core.Exists())
	p.AddEdge("b", "c", "s", core.RatioPercent(core.GE, 50))
	if got := parallel.RequiredHops(p); got != 2 {
		t.Errorf("RequiredHops = %d, want 2 (dist(b)+1)", got)
	}
}

func TestPQMatchEqualsSequentialPaperExamples(t *testing.T) {
	f1 := fixture.NewG1()
	f2 := fixture.NewG2()
	cases := []struct {
		name string
		g    *graph.Graph
		q    *core.Pattern
	}{
		{"Q2/G1", f1.G, fixture.Q2()},
		{"Q3/G1", f1.G, fixture.Q3(2)},
		{"Q4/G2", f2.G, fixture.Q4(2)},
		{"Q5/G2", f2.G, fixture.Q5()},
	}
	for _, c := range cases {
		seq, err := match.QMatch(c.g, c.q, nil)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		for _, workers := range []int{1, 2, 3} {
			cl := cluster(t, c.g, workers, parallel.RequiredHops(c.q))
			for _, threads := range []int{1, 2} {
				res, err := parallel.PQMatch(cl, c.q, threads)
				if err != nil {
					t.Fatalf("%s n=%d b=%d: %v", c.name, workers, threads, err)
				}
				if !sameIDs(res.Matches, seq.Matches) {
					t.Errorf("%s n=%d b=%d: parallel=%v sequential=%v",
						c.name, workers, threads, res.Matches, seq.Matches)
				}
			}
		}
	}
}

func sameIDs(a, b []graph.NodeID) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}

func TestPQMatchEqualsSequentialGenerated(t *testing.T) {
	g := gen.Social(gen.DefaultSocial(600, 17))
	patterns := gen.Patterns(g, gen.PatternConfig{Nodes: 4, Edges: 4, RatioBP: 3000, NegEdges: 1, Seed: 23}, 4)
	for pi, q := range patterns {
		need := parallel.RequiredHops(q)
		seq, err := match.QMatch(g, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		cl := cluster(t, g, 4, need)
		for _, engine := range []parallel.Engine{parallel.EngineQMatch, parallel.EngineQMatchN, parallel.EngineEnum} {
			res, err := parallel.Run(cl, q, engine, 2)
			if err != nil {
				t.Fatalf("pattern %d engine %v: %v", pi, engine, err)
			}
			if !sameIDs(res.Matches, seq.Matches) {
				t.Errorf("pattern %d engine %v: parallel=%d matches, sequential=%d\n%s",
					pi, engine, len(res.Matches), len(seq.Matches), q)
			}
		}
	}
}

func TestInsufficientHopsRejected(t *testing.T) {
	f := fixture.NewG1()
	cl := cluster(t, f.G, 2, 1) // Q2 needs d=2
	if _, err := parallel.PQMatch(cl, fixture.Q2(), 1); err == nil {
		t.Fatal("pattern beyond partition radius accepted")
	}
}

func TestWorkAccounting(t *testing.T) {
	g := gen.Social(gen.DefaultSocial(800, 5))
	q := gen.Pattern(g, gen.PatternConfig{Nodes: 4, Edges: 4, RatioBP: 3000, NegEdges: 0, Seed: 2})
	cl1 := cluster(t, g, 1, parallel.RequiredHops(q))
	cl4 := cluster(t, g, 4, parallel.RequiredHops(q))

	r1, err := parallel.PQMatchS(cl1, q)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := parallel.PQMatchS(cl4, q)
	if err != nil {
		t.Fatal(err)
	}
	if r1.TotalWork <= 0 || r1.SimWork <= 0 {
		t.Fatalf("work accounting empty: %+v", r1)
	}
	if r1.SimWork != r1.TotalWork {
		t.Errorf("single worker: SimWork %d != TotalWork %d", r1.SimWork, r1.TotalWork)
	}
	// Parallel scalability: with 4 workers the critical path must shrink.
	if r4.SimWork >= r1.SimWork {
		t.Errorf("SimWork did not shrink: n=1 %d, n=4 %d", r1.SimWork, r4.SimWork)
	}
	if !sameIDs(r1.Matches, r4.Matches) {
		t.Error("worker count changed the answer")
	}
}

func TestEngineString(t *testing.T) {
	if parallel.EngineQMatch.String() != "PQMatch" ||
		parallel.EngineQMatchN.String() != "PQMatchn" ||
		parallel.EngineEnum.String() != "PEnum" {
		t.Error("Engine.String broken")
	}
}
