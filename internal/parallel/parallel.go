// Package parallel implements PQMatch (§5): quantified matching over a
// d-hop preserving partition with inter-fragment parallelism (one worker
// goroutine per fragment) and intra-fragment parallelism (mQMatch splits a
// fragment's owned focus candidates across b threads).
//
// Because the session machine may have a single CPU, results carry both
// wall-clock time and machine-independent work accounting: TotalWork is
// the sequential cost and SimWork the idealized parallel cost (the maximum
// work of any thread across workers). The paper's parallel-scalability
// claim — T ≈ t/n + bookkeeping — is validated on SimWork.
package parallel

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/partition"
)

// Engine selects the per-fragment matching algorithm.
type Engine int

const (
	// EngineQMatch is the optimized algorithm with IncQMatch (PQMatch).
	EngineQMatch Engine = iota
	// EngineQMatchN recomputes positified patterns from scratch (PQMatchn).
	EngineQMatchN
	// EngineEnum is parallel enumerate-then-verify (PEnum).
	EngineEnum
)

func (e Engine) String() string {
	switch e {
	case EngineQMatch:
		return "PQMatch"
	case EngineQMatchN:
		return "PQMatchn"
	default:
		return "PEnum"
	}
}

// ParseEngine maps the wire-protocol engine names ("qmatch", "qmatchn",
// "enum"; empty means qmatch) to an Engine.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "qmatch", "":
		return EngineQMatch, nil
	case "qmatchn":
		return EngineQMatchN, nil
	case "enum":
		return EngineEnum, nil
	default:
		return 0, fmt.Errorf("parallel: unknown engine %q", s)
	}
}

// Cluster is a partitioned graph with per-fragment subgraphs materialized,
// ready to evaluate any pattern whose RequiredHops is within the
// partition's d. Build it once with NewCluster; it is safe for concurrent
// PQMatch runs.
type Cluster struct {
	Part  *partition.Partition
	frags []*localFragment
}

type localFragment struct {
	sub      *graph.Graph
	toGlobal []graph.NodeID
	owned    []graph.NodeID // local ids of owned nodes
}

// NewCluster materializes each fragment's induced subgraph.
func NewCluster(p *partition.Partition) *Cluster {
	c := &Cluster{Part: p, frags: make([]*localFragment, len(p.Fragments))}
	for i, f := range p.Fragments {
		sub, toGlobal := p.G.Induced(f.Nodes)
		toLocal := make(map[graph.NodeID]graph.NodeID, len(toGlobal))
		for local, global := range toGlobal {
			toLocal[global] = graph.NodeID(local)
		}
		owned := make([]graph.NodeID, len(f.Owned))
		for j, v := range f.Owned {
			owned[j] = toLocal[v]
		}
		c.frags[i] = &localFragment{sub: sub, toGlobal: toGlobal, owned: owned}
	}
	return c
}

// RequiredHops returns the partition radius a pattern needs for
// fragment-local evaluation to be exact: the largest radius over Π(Q) and
// every Π(Q+e), where each sub-pattern needs its own radius, plus one
// extra hop beyond any ratio-quantified edge's source (ratio denominators
// |Me(v)| count all children of v in G, so those children must be
// materialized even when they match nothing).
func RequiredHops(q *core.Pattern) int {
	need := 0
	consider := func(p *core.Pattern) {
		if r := patternHops(p); r > need {
			need = r
		}
	}
	pi, _ := q.Pi()
	consider(pi)
	for _, ei := range q.NegatedEdges() {
		pp, _ := q.PiPlus(ei)
		consider(pp)
	}
	return need
}

// patternHops computes max(radius, 1 + dist(source of each ratio edge)).
func patternHops(p *core.Pattern) int {
	adj := make([][]int, len(p.Nodes))
	for _, e := range p.Edges {
		adj[e.From] = append(adj[e.From], e.To)
		adj[e.To] = append(adj[e.To], e.From)
	}
	dist := make([]int, len(p.Nodes))
	for i := range dist {
		dist[i] = -1
	}
	dist[p.Focus] = 0
	queue := []int{p.Focus}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	need := 0
	for _, d := range dist {
		if d > need {
			need = d
		}
	}
	for _, e := range p.Edges {
		if e.Q.IsRatio() && dist[e.From] >= 0 && dist[e.From]+1 > need {
			need = dist[e.From] + 1
		}
	}
	return need
}

// Result is the outcome of a parallel run.
type Result struct {
	Matches []graph.NodeID
	Metrics match.Metrics
	Wall    time.Duration
	// TotalWork is the summed work units (extension attempts +
	// verifications) over all threads: the sequential cost.
	TotalWork int64
	// SimWork is the idealized parallel cost: the maximum work of any
	// thread, with threads of one worker running concurrently and workers
	// running concurrently.
	SimWork int64
}

// Run evaluates a QGP over the cluster with the chosen engine and b
// intra-fragment threads. It errors when the pattern needs more hops than
// the partition preserves (matching would silently lose answers).
func Run(c *Cluster, q *core.Pattern, engine Engine, threads int) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("parallel: %w", err)
	}
	if need := RequiredHops(q); need > c.Part.D {
		return nil, fmt.Errorf("parallel: pattern needs %d-hop preservation but partition has d=%d", need, c.Part.D)
	}
	if threads < 1 {
		threads = 1
	}

	algo := match.QMatch
	switch engine {
	case EngineQMatchN:
		algo = match.QMatchN
	case EngineEnum:
		algo = match.Enum
	}

	start := time.Now()
	type taskResult struct {
		matches []graph.NodeID
		metrics match.Metrics
		work    int64
		err     error
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		results []taskResult
		simWork int64
	)
	for wi := range c.frags {
		f := c.frags[wi]
		// mQMatch: split the owned focus candidates across b threads.
		chunks := splitChunks(f.owned, threads)
		workerMax := make([]int64, len(chunks))
		workerResults := make([]taskResult, len(chunks))
		var wwg sync.WaitGroup
		for ti, chunk := range chunks {
			wwg.Add(1)
			go func(ti int, chunk []graph.NodeID) {
				defer wwg.Done()
				res, err := algo(f.sub, q, &match.Options{FocusRestrict: chunk})
				if err != nil {
					workerResults[ti] = taskResult{err: err}
					return
				}
				global := make([]graph.NodeID, len(res.Matches))
				for i, v := range res.Matches {
					global[i] = f.toGlobal[v]
				}
				w := res.Metrics.Extensions + int64(res.Metrics.Verifications)
				workerMax[ti] = w
				workerResults[ti] = taskResult{matches: global, metrics: res.Metrics, work: w}
			}(ti, chunk)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			wwg.Wait()
			mu.Lock()
			defer mu.Unlock()
			for ti := range workerResults {
				results = append(results, workerResults[ti])
				if workerMax[ti] > simWork {
					simWork = workerMax[ti]
				}
			}
		}()
	}
	wg.Wait()

	out := &Result{Wall: time.Since(start), SimWork: simWork}
	seen := make(map[graph.NodeID]bool)
	for _, tr := range results {
		if tr.err != nil {
			return nil, tr.err
		}
		out.Metrics.Add(tr.metrics)
		out.TotalWork += tr.work
		for _, v := range tr.matches {
			if !seen[v] {
				seen[v] = true
				out.Matches = append(out.Matches, v)
			}
		}
	}
	sort.Slice(out.Matches, func(i, j int) bool { return out.Matches[i] < out.Matches[j] })
	return out, nil
}

// PQMatch runs the optimized engine with b threads per worker.
func PQMatch(c *Cluster, q *core.Pattern, threads int) (*Result, error) {
	return Run(c, q, EngineQMatch, threads)
}

// PQMatchS is PQMatch without intra-fragment parallelism.
func PQMatchS(c *Cluster, q *core.Pattern) (*Result, error) {
	return Run(c, q, EngineQMatch, 1)
}

// PQMatchN is the parallel version of QMatchN (no incremental evaluation).
func PQMatchN(c *Cluster, q *core.Pattern, threads int) (*Result, error) {
	return Run(c, q, EngineQMatchN, threads)
}

// PEnum is the parallel enumerate-then-verify baseline.
func PEnum(c *Cluster, q *core.Pattern) (*Result, error) {
	return Run(c, q, EngineEnum, 1)
}

// splitChunks partitions vs into at most n non-empty chunks of near-equal
// size; it returns at least one (possibly empty) chunk so every worker
// reports metrics.
func splitChunks(vs []graph.NodeID, n int) [][]graph.NodeID {
	if n > len(vs) && len(vs) > 0 {
		n = len(vs)
	}
	if len(vs) == 0 || n <= 1 {
		return [][]graph.NodeID{vs}
	}
	out := make([][]graph.NodeID, 0, n)
	size := (len(vs) + n - 1) / n
	for i := 0; i < len(vs); i += size {
		end := i + size
		if end > len(vs) {
			end = len(vs)
		}
		out = append(out, vs[i:end])
	}
	return out
}
