package parallel

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

func TestSplitChunks(t *testing.T) {
	mk := func(n int) []graph.NodeID {
		out := make([]graph.NodeID, n)
		for i := range out {
			out[i] = graph.NodeID(i)
		}
		return out
	}
	cases := []struct {
		n, threads, wantChunks int
	}{
		{0, 4, 1}, // empty input still yields one (empty) chunk
		{1, 4, 1}, // never more chunks than items
		{10, 1, 1},
		{10, 3, 3},
		{10, 4, 4},
		{9, 4, 3}, // ceil(9/4)=3 per chunk → 3 chunks
	}
	for _, c := range cases {
		chunks := splitChunks(mk(c.n), c.threads)
		if len(chunks) != c.wantChunks {
			t.Errorf("splitChunks(%d items, %d threads) = %d chunks, want %d",
				c.n, c.threads, len(chunks), c.wantChunks)
		}
		total := 0
		seen := map[graph.NodeID]bool{}
		for _, ch := range chunks {
			total += len(ch)
			for _, v := range ch {
				if seen[v] {
					t.Fatalf("node %d appears in two chunks", v)
				}
				seen[v] = true
			}
		}
		if total != c.n {
			t.Errorf("chunks cover %d of %d items", total, c.n)
		}
	}
}

func TestPatternHopsUnreachable(t *testing.T) {
	// patternHops must not panic on nodes unreachable from the focus
	// (possible only for malformed inputs; the public API validates first).
	p := core.NewPattern()
	p.AddNode("xo", "a")
	p.AddNode("b", "b")
	p.AddNode("orphan", "c")
	p.AddEdge("xo", "b", "r", core.Exists())
	if hops := patternHops(p); hops != 1 {
		t.Fatalf("patternHops = %d, want 1", hops)
	}
}
