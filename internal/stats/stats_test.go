package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// tiny builds the graph used by the hand-checked tests:
//
//	a0 -f-> b0, a0 -f-> b1, a1 -f-> b1, a1 -g-> c0
func tiny(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New(5)
	a0 := g.AddNode("A")
	a1 := g.AddNode("A")
	b0 := g.AddNode("B")
	b1 := g.AddNode("B")
	c0 := g.AddNode("C")
	g.AddEdge(a0, b0, "f")
	g.AddEdge(a0, b1, "f")
	g.AddEdge(a1, b1, "f")
	g.AddEdge(a1, c0, "g")
	g.Finalize()
	return g
}

func triple(g *graph.Graph, src, edge, dst string) Triple {
	return Triple{Src: g.LookupLabel(src), Edge: g.LookupLabel(edge), Dst: g.LookupLabel(dst)}
}

func TestCollectCounts(t *testing.T) {
	g := tiny(t)
	s := Collect(g)
	if s.Nodes != 5 || s.Edges != 4 {
		t.Fatalf("Nodes=%d Edges=%d, want 5/4", s.Nodes, s.Edges)
	}
	if got := s.NodesWithLabel(g.LookupLabel("A")); got != 2 {
		t.Errorf("A count = %d, want 2", got)
	}
	if got := s.NodesWithLabel(g.LookupLabel("B")); got != 2 {
		t.Errorf("B count = %d, want 2", got)
	}
	if got := s.NodesWithLabel(g.LookupLabel("C")); got != 1 {
		t.Errorf("C count = %d, want 1", got)
	}
}

func TestCollectTriples(t *testing.T) {
	g := tiny(t)
	s := Collect(g)

	ts, ok := s.TripleFor(triple(g, "A", "f", "B"))
	if !ok {
		t.Fatal("A-f->B class missing")
	}
	if ts.Count != 3 || ts.SrcNodes != 2 || ts.DstNodes != 2 {
		t.Errorf("A-f->B = %+v, want Count=3 SrcNodes=2 DstNodes=2", ts)
	}
	if got := ts.AvgFanOut(); got != 1.5 {
		t.Errorf("AvgFanOut = %v, want 1.5", got)
	}
	if got := ts.AvgFanIn(); got != 1.5 {
		t.Errorf("AvgFanIn = %v, want 1.5", got)
	}

	ts, ok = s.TripleFor(triple(g, "A", "g", "C"))
	if !ok {
		t.Fatal("A-g->C class missing")
	}
	if ts.Count != 1 || ts.SrcNodes != 1 || ts.DstNodes != 1 {
		t.Errorf("A-g->C = %+v, want 1/1/1", ts)
	}

	if _, ok := s.TripleFor(triple(g, "B", "f", "A")); ok {
		t.Error("B-f->A class should be absent")
	}
}

func TestCollectDegrees(t *testing.T) {
	g := tiny(t)
	s := Collect(g)
	if s.MaxOutDegree != 2 {
		t.Errorf("MaxOutDegree = %d, want 2", s.MaxOutDegree)
	}
	if s.MaxInDegree != 2 {
		t.Errorf("MaxInDegree = %d, want 2", s.MaxInDegree)
	}
}

func TestSelectivityAbsentClass(t *testing.T) {
	g := tiny(t)
	s := Collect(g)
	if got := s.Selectivity(g.LookupLabel("C"), g.LookupLabel("f"), g.LookupLabel("A")); got != 0 {
		t.Errorf("absent class selectivity = %v, want 0", got)
	}
}

func TestEstimateEdgeAndNode(t *testing.T) {
	g := tiny(t)
	s := Collect(g)
	p := core.NewPattern()
	p.AddNode("x", "A")
	p.AddNode("y", "B")
	p.AddEdge("x", "y", "f", core.Exists())
	if got := EstimateEdge(g, s, p, 0); got != 3 {
		t.Errorf("EstimateEdge = %v, want 3", got)
	}
	if got := EstimateNode(g, s, p, 0); got != 2 {
		t.Errorf("EstimateNode(x) = %v, want 2", got)
	}

	// Unresolvable labels estimate to zero.
	q := core.NewPattern()
	q.AddNode("x", "A")
	q.AddNode("y", "Zed")
	q.AddEdge("x", "y", "f", core.Exists())
	if got := EstimateEdge(g, s, q, 0); got != 0 {
		t.Errorf("EstimateEdge unresolvable = %v, want 0", got)
	}
	if got := EstimateNode(g, s, q, 1); got != 0 {
		t.Errorf("EstimateNode unresolvable = %v, want 0", got)
	}
}

func TestTopTriples(t *testing.T) {
	g := tiny(t)
	s := Collect(g)
	top := s.TopTriples(1)
	if len(top) != 1 {
		t.Fatalf("TopTriples(1) len = %d", len(top))
	}
	if top[0] != triple(g, "A", "f", "B") {
		t.Errorf("top triple = %+v, want A-f->B", top[0])
	}
	all := s.TopTriples(0)
	if len(all) != 2 {
		t.Errorf("TopTriples(0) len = %d, want 2", len(all))
	}
	for i := 1; i < len(all); i++ {
		if s.Triples[all[i-1]].Count < s.Triples[all[i]].Count {
			t.Errorf("TopTriples not sorted at %d", i)
		}
	}
}

func TestDescribeMentionsLabels(t *testing.T) {
	g := tiny(t)
	s := Collect(g)
	d := s.Describe(g, triple(g, "A", "f", "B"))
	if d == "" {
		t.Fatal("empty description")
	}
	for _, want := range []string{"A", "f", "B", "count=3"} {
		if !contains(d, want) {
			t.Errorf("Describe = %q, missing %q", d, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// Property: triple counts sum to the edge count, label counts sum to the
// node count, and SrcNodes/DstNodes never exceed Count, on generated
// social graphs of varying size.
func TestCollectInvariantsProperty(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		persons := 40 + int(sz)%160
		g := gen.Social(gen.DefaultSocial(persons, seed))
		s := Collect(g)
		if s.Nodes != g.NumNodes() || s.Edges != g.NumEdges() {
			return false
		}
		edgeSum, labelSum := 0, 0
		for _, ts := range s.Triples {
			edgeSum += ts.Count
			if ts.SrcNodes > ts.Count || ts.DstNodes > ts.Count {
				return false
			}
			if ts.SrcNodes < 1 || ts.DstNodes < 1 {
				return false
			}
			if ts.AvgFanOut() < 1 || ts.AvgFanIn() < 1 {
				return false
			}
		}
		for _, c := range s.LabelCount {
			labelSum += c
		}
		return edgeSum == s.Edges && labelSum == s.Nodes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: per-class exact recount agrees with Collect on small-world
// graphs (full recomputation with naive per-node sets).
func TestCollectMatchesNaiveRecount(t *testing.T) {
	g := gen.SmallWorld(gen.SmallWorldConfig{Nodes: 300, Edges: 1500, Labels: 8, Seed: 7})
	s := Collect(g)

	counts := make(map[Triple]int)
	srcs := make(map[Triple]map[graph.NodeID]bool)
	dsts := make(map[Triple]map[graph.NodeID]bool)
	for vi := 0; vi < g.NumNodes(); vi++ {
		v := graph.NodeID(vi)
		for _, e := range g.Out(v) {
			tr := Triple{Src: g.NodeLabel(v), Edge: e.Label, Dst: g.NodeLabel(e.To)}
			counts[tr]++
			if srcs[tr] == nil {
				srcs[tr] = map[graph.NodeID]bool{}
			}
			if dsts[tr] == nil {
				dsts[tr] = map[graph.NodeID]bool{}
			}
			srcs[tr][v] = true
			dsts[tr][e.To] = true
		}
	}
	if len(counts) != len(s.Triples) {
		t.Fatalf("class count %d != %d", len(s.Triples), len(counts))
	}
	for tr, c := range counts {
		ts := s.Triples[tr]
		if ts.Count != c || ts.SrcNodes != len(srcs[tr]) || ts.DstNodes != len(dsts[tr]) {
			t.Fatalf("class %+v: got %+v, want count=%d srcs=%d dsts=%d",
				tr, ts, c, len(srcs[tr]), len(dsts[tr]))
		}
	}
}

func TestFanOutZeroValue(t *testing.T) {
	var ts TripleStats
	if !(ts.AvgFanOut() == 0 && ts.AvgFanIn() == 0) {
		t.Error("zero-value TripleStats must have zero fan averages")
	}
	if math.IsNaN(ts.AvgFanOut()) {
		t.Error("AvgFanOut NaN")
	}
}
