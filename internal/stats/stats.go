// Package stats computes graph summary statistics used for cardinality
// estimation and query planning: node-label histograms, edge-triple
// (source label, edge label, target label) frequencies, and per-triple
// fan-out/fan-in averages.
//
// The statistics are a single O(|G|) pass over the graph and are
// deterministic. They power the selectivity estimates that internal/plan
// uses to choose a matching order for a pattern, and they are served by
// the STATS command of the query server.
package stats

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
)

// Triple identifies an edge class: the label of the source node, the edge
// label, and the label of the target node.
type Triple struct {
	Src, Edge, Dst graph.LabelID
}

// TripleStats aggregates the edges of one triple class.
type TripleStats struct {
	// Count is the number of edges in the class.
	Count int
	// SrcNodes is the number of distinct source nodes with at least one
	// edge in the class; DstNodes likewise for targets.
	SrcNodes int
	DstNodes int
}

// AvgFanOut returns the average number of class edges per participating
// source node (≥ 1 when Count > 0).
func (t TripleStats) AvgFanOut() float64 {
	if t.SrcNodes == 0 {
		return 0
	}
	return float64(t.Count) / float64(t.SrcNodes)
}

// AvgFanIn returns the average number of class edges per participating
// target node.
func (t TripleStats) AvgFanIn() float64 {
	if t.DstNodes == 0 {
		return 0
	}
	return float64(t.Count) / float64(t.DstNodes)
}

// Stats is the statistics summary of one graph. Build it with Collect.
type Stats struct {
	Nodes int
	Edges int

	// LabelCount[l] is the number of nodes with label l.
	LabelCount map[graph.LabelID]int

	// Triples maps each edge class to its aggregate.
	Triples map[Triple]TripleStats

	// MaxOutDegree and MaxInDegree are over all nodes and labels.
	MaxOutDegree int
	MaxInDegree  int
}

// Collect computes statistics for a finalized graph in one pass.
func Collect(g *graph.Graph) *Stats {
	s := &Stats{
		Nodes:      g.NumNodes(),
		Edges:      g.NumEdges(),
		LabelCount: make(map[graph.LabelID]int),
		Triples:    make(map[Triple]TripleStats),
	}
	n := g.NumNodes()
	// lastSrc/lastDst record, per triple class, the most recent node counted
	// as a distinct participant. Nodes are visited in ascending order, so a
	// "last == v" check deduplicates without a per-node set.
	lastSrc := make(map[Triple]graph.NodeID)
	lastDst := make(map[Triple]graph.NodeID)
	for vi := 0; vi < n; vi++ {
		v := graph.NodeID(vi)
		s.LabelCount[g.NodeLabel(v)]++
		if d := g.OutDegree(v); d > s.MaxOutDegree {
			s.MaxOutDegree = d
		}
		if d := g.InDegree(v); d > s.MaxInDegree {
			s.MaxInDegree = d
		}
		srcLabel := g.NodeLabel(v)
		for _, e := range g.Out(v) {
			t := Triple{Src: srcLabel, Edge: e.Label, Dst: g.NodeLabel(e.To)}
			ts := s.Triples[t]
			ts.Count++
			if last, ok := lastSrc[t]; !ok || last != v {
				ts.SrcNodes++
				lastSrc[t] = v
			}
			s.Triples[t] = ts
		}
		dstLabel := srcLabel
		for _, e := range g.In(v) {
			t := Triple{Src: g.NodeLabel(e.To), Edge: e.Label, Dst: dstLabel}
			if last, ok := lastDst[t]; !ok || last != v {
				ts := s.Triples[t]
				ts.DstNodes++
				s.Triples[t] = ts
				lastDst[t] = v
			}
		}
	}
	return s
}

// CollectOwned computes statistics restricted to an owned node set — a
// cluster worker's share of the global statistics. Nodes, labels and
// degrees count owned nodes only; an edge belongs to a class Count when
// its SOURCE is owned; SrcNodes (DstNodes) counts owned nodes with an
// out-edge (in-edge) of the class.
//
// Exactness: ownership partitions the global node set, and a
// d-hop-preserving fragment (d ≥ 1) materializes every in- and out-edge
// of each owned node, so each global node is counted by exactly one
// worker and each global edge's class membership by exactly its source's
// owner. Summing per-worker CollectOwned results over a fragmentation
// therefore reproduces Collect of the global graph exactly — Count,
// SrcNodes, DstNodes, label counts and totals alike. (MaxOut/InDegree
// merge by max, not sum.)
//
// The owned slice need not be sorted; it is visited in ascending order
// internally so the last-node dedup trick from Collect still applies.
func CollectOwned(g *graph.Graph, owned []graph.NodeID) *Stats {
	sorted := make([]graph.NodeID, len(owned))
	copy(sorted, owned)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	s := &Stats{
		Nodes:      len(sorted),
		LabelCount: make(map[graph.LabelID]int),
		Triples:    make(map[Triple]TripleStats),
	}
	lastSrc := make(map[Triple]graph.NodeID)
	lastDst := make(map[Triple]graph.NodeID)
	for _, v := range sorted {
		s.LabelCount[g.NodeLabel(v)]++
		if d := g.OutDegree(v); d > s.MaxOutDegree {
			s.MaxOutDegree = d
		}
		if d := g.InDegree(v); d > s.MaxInDegree {
			s.MaxInDegree = d
		}
		srcLabel := g.NodeLabel(v)
		for _, e := range g.Out(v) {
			s.Edges++
			t := Triple{Src: srcLabel, Edge: e.Label, Dst: g.NodeLabel(e.To)}
			ts := s.Triples[t]
			ts.Count++
			if last, ok := lastSrc[t]; !ok || last != v {
				ts.SrcNodes++
				lastSrc[t] = v
			}
			s.Triples[t] = ts
		}
		for _, e := range g.In(v) {
			t := Triple{Src: g.NodeLabel(e.To), Edge: e.Label, Dst: srcLabel}
			if last, ok := lastDst[t]; !ok || last != v {
				ts := s.Triples[t]
				ts.DstNodes++
				s.Triples[t] = ts
				lastDst[t] = v
			}
		}
	}
	return s
}

// NodesWithLabel returns the number of nodes carrying label l.
func (s *Stats) NodesWithLabel(l graph.LabelID) int { return s.LabelCount[l] }

// TripleFor returns the aggregate for a triple class and whether the class
// occurs at all.
func (s *Stats) TripleFor(t Triple) (TripleStats, bool) {
	ts, ok := s.Triples[t]
	return ts, ok
}

// Selectivity estimates, for a pattern edge (u -label-> u′) between nodes
// with the given labels, the expected number of graph edges realizing it.
// It returns 0 when the class is absent.
func (s *Stats) Selectivity(src, edge, dst graph.LabelID) float64 {
	ts, ok := s.Triples[Triple{Src: src, Edge: edge, Dst: dst}]
	if !ok {
		return 0
	}
	return float64(ts.Count)
}

// EstimateEdge resolves a pattern edge's labels against the graph and
// returns the estimated number of realizing edges. Unresolvable labels
// estimate to 0.
func EstimateEdge(g *graph.Graph, s *Stats, p *core.Pattern, ei int) float64 {
	e := p.Edges[ei]
	src := g.LookupLabel(p.Nodes[e.From].Label)
	el := g.LookupLabel(e.Label)
	dst := g.LookupLabel(p.Nodes[e.To].Label)
	if src == graph.NoLabel || el == graph.NoLabel || dst == graph.NoLabel {
		return 0
	}
	return s.Selectivity(src, el, dst)
}

// EstimateNode returns the estimated candidate count of a pattern node:
// the frequency of its label. Unresolvable labels estimate to 0.
func EstimateNode(g *graph.Graph, s *Stats, p *core.Pattern, u int) float64 {
	l := g.LookupLabel(p.Nodes[u].Label)
	if l == graph.NoLabel {
		return 0
	}
	return float64(s.LabelCount[l])
}

// TopTriples returns the k most frequent triple classes, most frequent
// first (all classes when k ≤ 0 or k exceeds the class count). Ties break
// by ascending (Src, Edge, Dst) for determinism.
func (s *Stats) TopTriples(k int) []Triple {
	out := make([]Triple, 0, len(s.Triples))
	for t := range s.Triples {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		ci, cj := s.Triples[out[i]].Count, s.Triples[out[j]].Count
		if ci != cj {
			return ci > cj
		}
		a, b := out[i], out[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Edge != b.Edge {
			return a.Edge < b.Edge
		}
		return a.Dst < b.Dst
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// Describe renders a triple class with label names for human consumption.
func (s *Stats) Describe(g *graph.Graph, t Triple) string {
	ts := s.Triples[t]
	return fmt.Sprintf("%s -%s-> %s: count=%d srcs=%d dsts=%d fanOut=%.2f",
		g.LabelName(t.Src), g.LabelName(t.Edge), g.LabelName(t.Dst),
		ts.Count, ts.SrcNodes, ts.DstNodes, ts.AvgFanOut())
}
