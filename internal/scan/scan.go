// Package scan provides the field tokenizer shared by the graph and
// pattern text formats: whitespace-separated fields with optional
// double-quoted fields (Go string-literal escaping) for values containing
// spaces, such as the label "Redmi 2A".
package scan

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Fields splits a line into fields. Double-quoted fields may contain
// spaces and use Go string-literal escapes. The line is scanned rune by
// rune: a continuation byte of a multibyte character must never be
// mistaken for a space (0x85 and 0xA0 are Unicode spaces as code points
// but ordinary bytes inside UTF-8 sequences).
func Fields(line string) ([]string, error) {
	var out []string
	i := 0
	for i < len(line) {
		r, size := utf8.DecodeRuneInString(line[i:])
		switch {
		case unicode.IsSpace(r):
			i += size
		case r == '"':
			j := i + 1
			for j < len(line) {
				if line[j] == '\\' {
					j += 2
					continue
				}
				if line[j] == '"' {
					break
				}
				j++
			}
			if j >= len(line) {
				return nil, fmt.Errorf("unterminated quote at column %d", i+1)
			}
			s, err := strconv.Unquote(line[i : j+1])
			if err != nil {
				return nil, fmt.Errorf("bad quoted field at column %d: %v", i+1, err)
			}
			out = append(out, s)
			i = j + 1
		default:
			j := i
			for j < len(line) {
				r2, sz := utf8.DecodeRuneInString(line[j:])
				if unicode.IsSpace(r2) {
					break
				}
				j += sz
			}
			out = append(out, line[i:j])
			i = j
		}
	}
	return out, nil
}

// Quote renders a field for output: quoted if it is empty or contains
// whitespace, quotes, backslashes or non-printable runes; verbatim
// otherwise.
func Quote(s string) string {
	needs := s == "" || strings.ContainsFunc(s, func(r rune) bool {
		return unicode.IsSpace(r) || r == '"' || r == '\\' || !unicode.IsPrint(r)
	})
	if needs {
		return strconv.Quote(s)
	}
	return s
}
