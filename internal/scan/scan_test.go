package scan

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestFields(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"a b c", []string{"a", "b", "c"}},
		{"  a\t b ", []string{"a", "b"}},
		{`n 0 "Redmi 2A"`, []string{"n", "0", "Redmi 2A"}},
		{`"a \"b\"" c`, []string{`a "b"`, "c"}},
		{`""`, []string{""}},
		{"", nil},
	}
	for _, c := range cases {
		got, err := Fields(c.in)
		if err != nil {
			t.Errorf("Fields(%q): %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Fields(%q) = %#v, want %#v", c.in, got, c.want)
		}
	}
}

func TestFieldsErrors(t *testing.T) {
	for _, in := range []string{`"unterminated`, `a "b`} {
		if _, err := Fields(in); err == nil {
			t.Errorf("Fields(%q) succeeded, want error", in)
		}
	}
}

func TestQuote(t *testing.T) {
	cases := map[string]string{
		"plain":    "plain",
		"has sp":   `"has sp"`,
		"":         `""`,
		`q"uote`:   `"q\"uote"`,
		"tab\ttab": `"tab\ttab"`,
	}
	for in, want := range cases {
		if got := Quote(in); got != want {
			t.Errorf("Quote(%q) = %q, want %q", in, got, want)
		}
	}
}

// Property: Fields(Quote(a) + " " + Quote(b)) round-trips arbitrary
// printable strings.
func TestQuickRoundTrip(t *testing.T) {
	f := func(a, b string) bool {
		got, err := Fields(Quote(a) + " " + Quote(b))
		if err != nil {
			return false
		}
		return len(got) == 2 && got[0] == a && got[1] == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Regression: multibyte runes whose UTF-8 encoding contains bytes 0x85 or
// 0xA0 (Unicode spaces as code points, ordinary continuation bytes in a
// sequence) must not split an unquoted field. "ą" is 0xC4 0x85; U+2028 is
// 0xE2 0x80 0xA8 with a 0xA0-adjacent variant in U+00A0.
func TestFieldsMultibyteNotSplit(t *testing.T) {
	for _, s := range []string{"ą", "zając", "aąb", "x y"} {
		got, err := Fields(Quote(s))
		if err != nil {
			t.Fatalf("Fields(Quote(%q)): %v", s, err)
		}
		if len(got) != 1 || got[0] != s {
			t.Errorf("Fields(Quote(%q)) = %q, want one field", s, got)
		}
	}
	// U+1680 (ogham space mark) IS a printable space: it must be quoted
	// by Quote and survive; raw it must split.
	got, err := Fields("a b")
	if err != nil || len(got) != 2 {
		t.Errorf("raw ogham space: got %q, %v; want split into 2", got, err)
	}
}
