// Package dynamic maintains quantified-matching state under graph updates,
// implementing the remark of §5.2: "When G is updated, coordinator Sc
// assigns the changes to each fragment. Each worker then applies
// incremental distance querying to maintain Nd(v) of all affected v."
//
// The locality argument is the one behind Lemma 9(1): whether a node vx
// answers a pattern Q depends only on the subgraph induced by Nd(vx),
// where d = parallel.RequiredHops(Q). An update therefore can only change
// the membership of focus nodes within d undirected hops of a touched
// node — measured in the old graph for deletions and in the new graph for
// insertions. Matcher re-verifies exactly that affected set and reuses
// every other cached answer; Repartition reloads exactly the affected
// owners' neighborhoods.
//
// Updates reuse the mutation vocabulary of internal/store, so a store's
// journaled history is directly replayable into a Matcher.
package dynamic

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/store"
)

// Update is one graph change; it is the store's mutation type.
type Update = store.Mutation

type edgeKey struct {
	from, to graph.NodeID
	label    string
}

// Apply applies a batch of updates to g, in order, and returns the new
// finalized graph plus the sorted set of touched nodes: endpoints of
// inserted or removed edges, newly added nodes, and isolated nodes. Node
// ids are stable: OpRemoveNode isolates the node but keeps its slot (the
// store's tombstone semantics), so answer sets over old and new graphs
// are directly comparable.
//
// Apply is the rebuild-the-world path: it re-materializes the full
// edge-set model and finalizes a whole new graph, costing O(|G|) per
// batch. The production layers run on ApplyVersioned instead; Apply is
// retained as the differential oracle the versioned core is verified
// against (and for one-shot callers that want a fresh graph value).
func Apply(g *graph.Graph, ups []Update) (*graph.Graph, []graph.NodeID, error) {
	// Build the edge-set model of g, then replay the batch in order.
	labels := make([]string, g.NumNodes())
	edges := make(map[edgeKey]bool, g.NumEdges())
	for vi := 0; vi < g.NumNodes(); vi++ {
		v := graph.NodeID(vi)
		labels[vi] = g.NodeLabelName(v)
		for _, e := range g.Out(v) {
			edges[edgeKey{v, e.To, g.LabelName(e.Label)}] = true
		}
	}

	touched := make(map[graph.NodeID]bool)
	for _, u := range ups {
		switch u.Op {
		case store.OpAddNode:
			labels = append(labels, u.Label)
			touched[graph.NodeID(len(labels)-1)] = true
		case store.OpAddEdge, store.OpRemoveEdge:
			if u.From < 0 || int(u.From) >= len(labels) || u.To < 0 || int(u.To) >= len(labels) {
				return nil, nil, fmt.Errorf("dynamic: %v references a node outside [0, %d)", u, len(labels))
			}
			k := edgeKey{graph.NodeID(u.From), graph.NodeID(u.To), u.Label}
			if u.Op == store.OpAddEdge {
				edges[k] = true
			} else {
				delete(edges, k)
			}
			touched[k.from] = true
			touched[k.to] = true
		case store.OpRemoveNode:
			if u.From < 0 || int(u.From) >= len(labels) {
				return nil, nil, fmt.Errorf("dynamic: %v references a node outside [0, %d)", u, len(labels))
			}
			v := graph.NodeID(u.From)
			for k := range edges {
				if k.from == v || k.to == v {
					delete(edges, k)
					// Former neighbors are touched too: their adjacency
					// changed even though no update names them.
					touched[k.from] = true
					touched[k.to] = true
				}
			}
			touched[v] = true
		default:
			return nil, nil, fmt.Errorf("dynamic: unknown update op %d", u.Op)
		}
	}

	ng := graph.New(len(labels))
	for _, l := range labels {
		ng.AddNode(l)
	}
	keys := make([]edgeKey, 0, len(edges))
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.from != b.from {
			return a.from < b.from
		}
		if a.to != b.to {
			return a.to < b.to
		}
		return a.label < b.label
	})
	for _, k := range keys {
		ng.AddEdge(k.from, k.to, k.label)
	}
	ng.Finalize()

	out := make([]graph.NodeID, 0, len(touched))
	for v := range touched {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return ng, out, nil
}

// ApplyVersioned applies a batch to the versioned graph core in place:
// the same update semantics (and touched-set contract) as Apply, at
// cost proportional to |batch| + degree of the touched nodes instead of
// |G|. It returns the pre-batch old view — the "deletions are measured
// in the old graph" half of AffectedWithin — plus the sorted touched
// set. Validation happens up front, so an error leaves the graph at its
// prior version, untouched.
func ApplyVersioned(vg *graph.Versioned, ups []Update) (*graph.OldView, []graph.NodeID, error) {
	muts := make([]graph.Mutation, len(ups))
	for i, u := range ups {
		var op graph.MutationOp
		switch u.Op {
		case store.OpAddNode:
			op = graph.MutAddNode
		case store.OpAddEdge:
			op = graph.MutAddEdge
		case store.OpRemoveEdge:
			op = graph.MutRemoveEdge
		case store.OpRemoveNode:
			op = graph.MutRemoveNode
		default:
			return nil, nil, fmt.Errorf("dynamic: unknown update op %d", u.Op)
		}
		muts[i] = graph.Mutation{Op: op, From: graph.NodeID(u.From), To: graph.NodeID(u.To), Label: u.Label}
	}
	old, touched, err := vg.Apply(muts)
	if err != nil {
		return nil, nil, fmt.Errorf("dynamic: %w", err)
	}
	return old, touched, nil
}

// AffectedWithin returns the sorted set of nodes within hops undirected
// hops of any touched node, unioned over the old and the new graph: a
// deletion affects nodes that could reach the endpoints before the change,
// an insertion affects nodes that can reach them after. The old side is
// a graph.View so a versioned core's cheap pre-batch OldView serves it
// without materializing a second graph.
func AffectedWithin(oldG, newG graph.View, touched []graph.NodeID, hops int) []graph.NodeID {
	n := oldG.NumNodes()
	if m := newG.NumNodes(); m > n {
		n = m
	}
	// One multi-source BFS per graph version over flat visited arrays:
	// per-touched-node Neighborhood calls would re-walk (and re-sort) the
	// shared ball once per source, which dominated the coordinator's
	// update cost. Scanning the shared array ascending at the end yields
	// the sorted union without a sort.
	seen := make([]bool, n)
	markBall(oldG, touched, hops, seen)
	markBall(newG, touched, hops, seen)
	out := make([]graph.NodeID, 0, len(touched))
	for v, ok := range seen {
		if ok {
			out = append(out, graph.NodeID(v))
		}
	}
	return out
}

// Ball returns the sorted set of nodes within hops undirected steps of
// any source node over g; sources outside the graph are ignored. The
// cluster coordinator uses it to bound fragment materialization upkeep
// to the region around inserted edges.
func Ball(g graph.View, sources []graph.NodeID, hops int) []graph.NodeID {
	seen := make([]bool, g.NumNodes())
	markBall(g, sources, hops, seen)
	out := make([]graph.NodeID, 0, len(sources))
	for v, ok := range seen {
		if ok {
			out = append(out, graph.NodeID(v))
		}
	}
	return out
}

// markBall sets seen[v] for every node within hops undirected steps of a
// source, via a multi-source BFS over g. Sources outside g are skipped.
func markBall(g graph.View, sources []graph.NodeID, hops int, seen []bool) {
	visited := make([]bool, g.NumNodes())
	var frontier, next []graph.NodeID
	for _, v := range sources {
		if int(v) >= g.NumNodes() || visited[v] {
			continue // node added after this graph's version
		}
		visited[v] = true
		seen[v] = true
		frontier = append(frontier, v)
	}
	for hop := 0; hop < hops && len(frontier) > 0; hop++ {
		next = next[:0]
		for _, v := range frontier {
			for _, e := range g.Out(v) {
				if !visited[e.To] {
					visited[e.To] = true
					seen[e.To] = true
					next = append(next, e.To)
				}
			}
			for _, e := range g.In(v) {
				if !visited[e.To] {
					visited[e.To] = true
					seen[e.To] = true
					next = append(next, e.To)
				}
			}
		}
		frontier, next = next, frontier
	}
}
