// Package dynamic maintains quantified-matching state under graph updates,
// implementing the remark of §5.2: "When G is updated, coordinator Sc
// assigns the changes to each fragment. Each worker then applies
// incremental distance querying to maintain Nd(v) of all affected v."
//
// The locality argument is the one behind Lemma 9(1): whether a node vx
// answers a pattern Q depends only on the subgraph induced by Nd(vx),
// where d = parallel.RequiredHops(Q). An update therefore can only change
// the membership of focus nodes within d undirected hops of a touched
// node — measured in the old graph for deletions and in the new graph for
// insertions. Matcher re-verifies exactly that affected set and reuses
// every other cached answer; Repartition reloads exactly the affected
// owners' neighborhoods.
//
// Updates reuse the mutation vocabulary of internal/store, so a store's
// journaled history is directly replayable into a Matcher.
package dynamic

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/store"
)

// Update is one graph change; it is the store's mutation type.
type Update = store.Mutation

type edgeKey struct {
	from, to graph.NodeID
	label    string
}

// Apply applies a batch of updates to g, in order, and returns the new
// finalized graph plus the sorted set of touched nodes: endpoints of
// inserted or removed edges, newly added nodes, and isolated nodes. Node
// ids are stable: OpRemoveNode isolates the node but keeps its slot (the
// store's tombstone semantics), so answer sets over old and new graphs
// are directly comparable.
func Apply(g *graph.Graph, ups []Update) (*graph.Graph, []graph.NodeID, error) {
	// Build the edge-set model of g, then replay the batch in order.
	labels := make([]string, g.NumNodes())
	edges := make(map[edgeKey]bool, g.NumEdges())
	for vi := 0; vi < g.NumNodes(); vi++ {
		v := graph.NodeID(vi)
		labels[vi] = g.NodeLabelName(v)
		for _, e := range g.Out(v) {
			edges[edgeKey{v, e.To, g.LabelName(e.Label)}] = true
		}
	}

	touched := make(map[graph.NodeID]bool)
	for _, u := range ups {
		switch u.Op {
		case store.OpAddNode:
			labels = append(labels, u.Label)
			touched[graph.NodeID(len(labels)-1)] = true
		case store.OpAddEdge, store.OpRemoveEdge:
			if u.From < 0 || int(u.From) >= len(labels) || u.To < 0 || int(u.To) >= len(labels) {
				return nil, nil, fmt.Errorf("dynamic: %v references a node outside [0, %d)", u, len(labels))
			}
			k := edgeKey{graph.NodeID(u.From), graph.NodeID(u.To), u.Label}
			if u.Op == store.OpAddEdge {
				edges[k] = true
			} else {
				delete(edges, k)
			}
			touched[k.from] = true
			touched[k.to] = true
		case store.OpRemoveNode:
			if u.From < 0 || int(u.From) >= len(labels) {
				return nil, nil, fmt.Errorf("dynamic: %v references a node outside [0, %d)", u, len(labels))
			}
			v := graph.NodeID(u.From)
			for k := range edges {
				if k.from == v || k.to == v {
					delete(edges, k)
					// Former neighbors are touched too: their adjacency
					// changed even though no update names them.
					touched[k.from] = true
					touched[k.to] = true
				}
			}
			touched[v] = true
		default:
			return nil, nil, fmt.Errorf("dynamic: unknown update op %d", u.Op)
		}
	}

	ng := graph.New(len(labels))
	for _, l := range labels {
		ng.AddNode(l)
	}
	keys := make([]edgeKey, 0, len(edges))
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.from != b.from {
			return a.from < b.from
		}
		if a.to != b.to {
			return a.to < b.to
		}
		return a.label < b.label
	})
	for _, k := range keys {
		ng.AddEdge(k.from, k.to, k.label)
	}
	ng.Finalize()

	out := make([]graph.NodeID, 0, len(touched))
	for v := range touched {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return ng, out, nil
}

// AffectedWithin returns the sorted set of nodes within hops undirected
// hops of any touched node, unioned over the old and the new graph: a
// deletion affects nodes that could reach the endpoints before the change,
// an insertion affects nodes that can reach them after.
func AffectedWithin(oldG, newG *graph.Graph, touched []graph.NodeID, hops int) []graph.NodeID {
	seen := make(map[graph.NodeID]bool)
	collect := func(g *graph.Graph) {
		for _, v := range touched {
			if int(v) >= g.NumNodes() {
				continue // node added after this graph's version
			}
			for _, u := range g.Neighborhood(v, hops) {
				seen[u] = true
			}
		}
	}
	collect(oldG)
	collect(newG)
	out := make([]graph.NodeID, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
