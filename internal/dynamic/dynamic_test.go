package dynamic

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/store"
)

func line(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New(4)
	a := g.AddNode("A")
	b := g.AddNode("B")
	c := g.AddNode("C")
	g.AddEdge(a, b, "x")
	g.AddEdge(b, c, "y")
	g.Finalize()
	return g
}

func TestApplyAddEdge(t *testing.T) {
	g := line(t)
	ng, touched, err := Apply(g, []Update{store.AddEdge(2, 0, "z")})
	if err != nil {
		t.Fatal(err)
	}
	if ng.NumEdges() != 3 {
		t.Fatalf("edges = %d, want 3", ng.NumEdges())
	}
	if !ng.HasEdge(2, 0, ng.LookupLabel("z")) {
		t.Error("new edge missing")
	}
	if !reflect.DeepEqual(touched, []graph.NodeID{0, 2}) {
		t.Errorf("touched = %v, want [0 2]", touched)
	}
	// The original graph is untouched.
	if g.NumEdges() != 2 {
		t.Error("Apply mutated its input")
	}
}

func TestApplyRemoveEdgeAndNode(t *testing.T) {
	g := line(t)
	ng, touched, err := Apply(g, []Update{store.RemoveEdge(0, 1, "x")})
	if err != nil {
		t.Fatal(err)
	}
	if ng.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1", ng.NumEdges())
	}
	if !reflect.DeepEqual(touched, []graph.NodeID{0, 1}) {
		t.Errorf("touched = %v", touched)
	}

	ng2, touched2, err := Apply(g, []Update{store.RemoveNode(1)})
	if err != nil {
		t.Fatal(err)
	}
	if ng2.NumEdges() != 0 {
		t.Fatalf("edges after isolation = %d, want 0", ng2.NumEdges())
	}
	if ng2.NumNodes() != 3 {
		t.Fatalf("node slots = %d, want 3", ng2.NumNodes())
	}
	// Former neighbors are touched.
	if !reflect.DeepEqual(touched2, []graph.NodeID{0, 1, 2}) {
		t.Errorf("touched = %v, want [0 1 2]", touched2)
	}
}

func TestApplyAddNodeAndConnect(t *testing.T) {
	g := line(t)
	ng, touched, err := Apply(g, []Update{
		store.AddNode("D"),
		store.AddEdge(3, 0, "x"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if ng.NumNodes() != 4 || ng.NumEdges() != 3 {
		t.Fatalf("state = %d/%d, want 4/3", ng.NumNodes(), ng.NumEdges())
	}
	if ng.NodeLabelName(3) != "D" {
		t.Errorf("new node label = %q", ng.NodeLabelName(3))
	}
	if !reflect.DeepEqual(touched, []graph.NodeID{0, 3}) {
		t.Errorf("touched = %v", touched)
	}
}

func TestApplyInOrderSemantics(t *testing.T) {
	g := line(t)
	// Add then remove in the same batch: the edge must not exist.
	ng, _, err := Apply(g, []Update{store.AddEdge(2, 0, "z"), store.RemoveEdge(2, 0, "z")})
	if err != nil {
		t.Fatal(err)
	}
	if ng.HasEdge(2, 0, ng.LookupLabel("z")) {
		t.Error("add-then-remove left the edge present")
	}
	// Remove then add: the edge must exist.
	ng2, _, err := Apply(g, []Update{store.RemoveEdge(0, 1, "x"), store.AddEdge(0, 1, "x")})
	if err != nil {
		t.Fatal(err)
	}
	if !ng2.HasEdge(0, 1, ng2.LookupLabel("x")) {
		t.Error("remove-then-add dropped the edge")
	}
}

func TestApplyRejectsBadUpdates(t *testing.T) {
	g := line(t)
	for _, ups := range [][]Update{
		{store.AddEdge(0, 9, "x")},
		{store.RemoveNode(-1)},
		{{Op: 99}},
	} {
		if _, _, err := Apply(g, ups); err == nil {
			t.Errorf("Apply(%v) accepted", ups)
		}
	}
}

func TestAffectedWithin(t *testing.T) {
	g := line(t) // A-x->B-y->C
	// Touch node 2 (C): within 1 hop the affected set is {1, 2}.
	got := AffectedWithin(g, g, []graph.NodeID{2}, 1)
	if !reflect.DeepEqual(got, []graph.NodeID{1, 2}) {
		t.Errorf("1-hop affected = %v, want [1 2]", got)
	}
	// Within 2 hops everything is affected.
	got = AffectedWithin(g, g, []graph.NodeID{2}, 2)
	if !reflect.DeepEqual(got, []graph.NodeID{0, 1, 2}) {
		t.Errorf("2-hop affected = %v", got)
	}
	// Deleted reachability counts via the old graph: remove B's out-edge,
	// then nodes near C in the OLD graph must still be affected.
	ng, touched, err := Apply(g, []Update{store.RemoveEdge(1, 2, "y")})
	if err != nil {
		t.Fatal(err)
	}
	got = AffectedWithin(g, ng, touched, 1)
	if !reflect.DeepEqual(got, []graph.NodeID{0, 1, 2}) {
		t.Errorf("deletion affected = %v, want all", got)
	}
}

// buyPattern: people who buy at least 2 products.
func buyPattern() *core.Pattern {
	p := core.NewPattern()
	p.AddNode("x", "Person")
	p.AddNode("y", "Product")
	p.AddEdge("x", "y", "buy", core.Count(core.GE, 2))
	p.SetFocus("x")
	return p
}

func TestMatcherTracksQuantifierFlips(t *testing.T) {
	g := graph.New(4)
	pers := g.AddNode("Person")
	p1 := g.AddNode("Product")
	p2 := g.AddNode("Product")
	g.AddEdge(pers, p1, "buy")
	g.Finalize()

	m, err := NewMatcher(g, buyPattern())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Answers()) != 0 {
		t.Fatalf("initial answers = %v, want none (only 1 buy)", m.Answers())
	}

	// Second buy edge flips the person in.
	d, err := m.Apply([]Update{store.AddEdge(int32(pers), int32(p2), "buy")})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d.Added, []graph.NodeID{pers}) || len(d.Removed) != 0 {
		t.Fatalf("delta = %+v, want person added", d)
	}
	if !reflect.DeepEqual(m.Answers(), []graph.NodeID{pers}) {
		t.Fatalf("answers = %v", m.Answers())
	}

	// Removing a buy edge flips them back out.
	d, err = m.Apply([]Update{store.RemoveEdge(int32(pers), int32(p1), "buy")})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d.Removed, []graph.NodeID{pers}) {
		t.Fatalf("delta = %+v, want person removed", d)
	}
	if len(m.Answers()) != 0 {
		t.Fatalf("answers = %v, want none", m.Answers())
	}
}

func TestMatcherSkipsUnaffectedRegions(t *testing.T) {
	// Two far-apart communities; an update in one must not re-verify the
	// other.
	g := graph.New(40)
	var persons []graph.NodeID
	for c := 0; c < 2; c++ {
		p := g.AddNode("Person")
		persons = append(persons, p)
		for i := 0; i < 3; i++ {
			prod := g.AddNode("Product")
			g.AddEdge(p, prod, "buy")
		}
	}
	g.Finalize()

	m, err := NewMatcher(g, buyPattern())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Answers()) != 2 {
		t.Fatalf("answers = %v, want both persons", m.Answers())
	}

	// Add a product bought by person 0 only.
	id := int32(g.NumNodes())
	d, err := m.Apply([]Update{store.AddNode("Product"), store.AddEdge(int32(persons[0]), id, "buy")})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Added)+len(d.Removed) != 0 {
		t.Fatalf("answers changed: %+v", d)
	}
	// The affected set must not include the second community's person.
	for _, v := range []graph.NodeID{persons[1]} {
		affected := AffectedWithin(g, m.Graph(), []graph.NodeID{persons[0], graph.NodeID(id)}, m.Hops())
		for _, a := range affected {
			if a == v {
				t.Fatalf("unaffected person %d re-verified (affected=%v)", v, affected)
			}
		}
	}
	if d.Affected >= g.NumNodes() {
		t.Fatalf("affected = %d, want a local set", d.Affected)
	}
}

// Differential soak: random update streams on a social graph; the matcher
// must always agree with full recomputation.
func TestMatcherDifferentialSoak(t *testing.T) {
	g := gen.Social(gen.DefaultSocial(150, 9))
	pats := gen.Patterns(g, gen.PatternConfig{Nodes: 3, Edges: 3, RatioBP: 3000, NegEdges: 1, Seed: 31}, 3)
	r := rand.New(rand.NewSource(77))

	for pi, q := range pats {
		m, err := NewMatcher(g, q)
		if err != nil {
			t.Fatal(err)
		}
		cur := g
		for step := 0; step < 25; step++ {
			var ups []Update
			for k := 0; k < 1+r.Intn(3); k++ {
				switch r.Intn(4) {
				case 0:
					ups = append(ups, store.AddNode("person"))
				case 1:
					f := int32(r.Intn(cur.NumNodes()))
					to := int32(r.Intn(cur.NumNodes()))
					labels := []string{"follow", "like", "buy", "recom"}
					ups = append(ups, store.AddEdge(f, to, labels[r.Intn(len(labels))]))
				case 2:
					// Remove a random existing edge when possible.
					v := graph.NodeID(r.Intn(cur.NumNodes()))
					if es := cur.Out(v); len(es) > 0 {
						e := es[r.Intn(len(es))]
						ups = append(ups, store.RemoveEdge(int32(v), int32(e.To), cur.LabelName(e.Label)))
					}
				case 3:
					ups = append(ups, store.RemoveNode(int32(r.Intn(cur.NumNodes()))))
				}
			}
			if len(ups) == 0 {
				continue
			}
			if _, err := m.Apply(ups); err != nil {
				t.Fatalf("pattern %d step %d: %v", pi, step, err)
			}
			cur = m.Graph()

			want, err := match.QMatch(cur, q, nil)
			if err != nil {
				t.Fatalf("recompute: %v", err)
			}
			got := m.Answers()
			if len(got) == 0 && len(want.Matches) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want.Matches) {
				t.Fatalf("pattern %d step %d: incremental %v != recompute %v", pi, step, got, want.Matches)
			}
		}
		if m.Verified == 0 {
			t.Errorf("pattern %d: matcher never verified anything", pi)
		}
	}
}
