package dynamic

// Differential verification of the versioned in-place graph core against
// the rebuild-the-world oracle. Apply (the legacy path) re-materializes a
// fresh finalized graph per batch and is easy to trust; ApplyVersioned
// edits the same graph in place under copy-on-write. The two must stay
// bit-exact on everything observable: the finalized graph, the touched
// set, error behaviour (including leaving the versioned state untouched
// on rejected batches), and the answer deltas of standing matchers.
//
// Comparisons are canonical — node label names by id and "from to label"
// edge strings — never LabelID values or byLabel order: the in-place
// graph keeps its original interner order while each rebuilt oracle gets
// a fresh interner, so internal ids legitimately diverge.

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/store"
)

// canon renders a graph as interner-independent node and edge lists.
func canon(g graph.View) (nodes, edges []string) {
	nodes = make([]string, g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		nodes[v] = g.NodeLabelName(graph.NodeID(v))
		for _, e := range g.Out(graph.NodeID(v)) {
			edges = append(edges, fmt.Sprintf("%d %d %s", v, e.To, g.LabelName(e.Label)))
		}
	}
	sort.Strings(edges)
	return nodes, edges
}

func requireCanonEqual(t *testing.T, want, got graph.View, ctx string) {
	t.Helper()
	wn, we := canon(want)
	gn, ge := canon(got)
	if !reflect.DeepEqual(wn, gn) {
		t.Fatalf("%s: node labels diverge (%d vs %d nodes)", ctx, len(wn), len(gn))
	}
	if !reflect.DeepEqual(we, ge) {
		for i := 0; i < len(we) || i < len(ge); i++ {
			var a, b string
			if i < len(we) {
				a = we[i]
			}
			if i < len(ge) {
				b = ge[i]
			}
			if a != b {
				t.Fatalf("%s: edge sets diverge at #%d: oracle %q vs versioned %q", ctx, i, a, b)
			}
		}
		t.Fatalf("%s: edge sets diverge", ctx)
	}
	if want.NumEdges() != got.NumEdges() {
		t.Fatalf("%s: NumEdges %d vs %d", ctx, want.NumEdges(), got.NumEdges())
	}
}

// isolated reports whether v currently has no incident edges.
func isolated(g graph.View, v graph.NodeID) bool {
	return len(g.Out(v)) == 0 && len(g.In(v)) == 0
}

var batchLabels = []string{"follow", "like", "recom", "in", "buy", "newkind"}

// randomBatch draws 1..6 updates against a graph with n nodes. Every op
// kind appears: node adds, edge adds/removes (sometimes of edges that do
// not exist — a no-op remove both paths must agree on), node removals
// including tombstone re-isolation of already-isolated nodes, and —
// when invalid is true — one out-of-range op both paths must reject.
func randomBatch(r *rand.Rand, g graph.View, invalid bool) []Update {
	n := int32(g.NumNodes())
	size := 1 + r.Intn(6)
	ups := make([]Update, 0, size+1)
	added := int32(0) // AddNode ops earlier in this batch extend the range
	for i := 0; i < size; i++ {
		lim := n + added
		switch r.Intn(10) {
		case 0:
			ups = append(ups, store.AddNode(batchLabels[r.Intn(len(batchLabels))]))
			added++
		case 1, 2:
			// Remove an existing edge when we can find one, else a
			// (probably absent) random one.
			v := graph.NodeID(r.Int31n(n))
			if out := g.Out(v); len(out) > 0 {
				e := out[r.Intn(len(out))]
				ups = append(ups, store.RemoveEdge(int32(v), int32(e.To), g.LabelName(e.Label)))
			} else {
				ups = append(ups, store.RemoveEdge(r.Int31n(lim), r.Int31n(lim), batchLabels[r.Intn(len(batchLabels))]))
			}
		case 3:
			// Tombstone: sometimes re-isolate a node that is already
			// isolated (or was removed earlier in this run).
			v := r.Int31n(lim)
			if r.Intn(2) == 0 {
				for probe := int32(0); probe < n; probe++ {
					if isolated(g, graph.NodeID(probe)) {
						v = probe
						break
					}
				}
			}
			ups = append(ups, store.RemoveNode(v))
		default:
			ups = append(ups, store.AddEdge(r.Int31n(lim), r.Int31n(lim), batchLabels[r.Intn(len(batchLabels))]))
		}
	}
	if invalid {
		at := r.Intn(len(ups) + 1)
		bad := store.AddEdge(n+added+5, 0, "follow")
		if r.Intn(2) == 0 {
			bad = store.RemoveNode(-1)
		}
		ups = append(ups[:at:at], append([]Update{bad}, ups[at:]...)...)
	}
	return ups
}

// TestDifferentialVersionedVsOracle drives the versioned core and the
// rebuild oracle through the same randomized batch sequences and demands
// identical graphs, touched sets, error behaviour, and matcher answers.
func TestDifferentialVersionedVsOracle(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			base := gen.Social(gen.DefaultSocial(120, seed))
			q := gen.Pattern(base, gen.PatternConfig{Nodes: 3, Edges: 3, RatioBP: 3000, NegEdges: 1, Seed: 31})

			oracle := base.Clone()
			vg := graph.NewVersioned(base.Clone())

			// One standing matcher maintained incrementally over the
			// versioned core; the oracle side recomputes from scratch.
			mv, err := NewMatcher(vg.Graph(), q)
			if err != nil {
				t.Fatal(err)
			}

			for round := 0; round < 30; round++ {
				ctx := fmt.Sprintf("round %d", round)
				wantErr := round%7 == 6
				ups := randomBatch(r, vg.Graph(), wantErr)

				preNodes, preEdges := canon(vg.Graph())
				ng, touchedO, errO := Apply(oracle, ups)
				old, touchedV, errV := ApplyVersioned(vg, ups)

				if (errO == nil) != (errV == nil) {
					t.Fatalf("%s: error divergence: oracle=%v versioned=%v (batch %+v)", ctx, errO, errV, ups)
				}
				if errO != nil {
					// A rejected batch must leave the versioned graph at
					// its prior state (the oracle never mutates its input).
					pn, pe := canon(vg.Graph())
					if !reflect.DeepEqual(pn, preNodes) || !reflect.DeepEqual(pe, preEdges) {
						t.Fatalf("%s: rejected batch mutated the versioned graph", ctx)
					}
					continue
				}
				oracle = ng
				if !reflect.DeepEqual(touchedO, touchedV) {
					t.Fatalf("%s: touched sets diverge: oracle %v vs versioned %v (batch %+v)", ctx, touchedO, touchedV, ups)
				}
				requireCanonEqual(t, oracle, vg.Graph(), ctx)
				if oracle.NumNodes() != vg.Graph().NumNodes() {
					t.Fatalf("%s: NumNodes %d vs %d", ctx, oracle.NumNodes(), vg.Graph().NumNodes())
				}

				// Matcher deltas: the incrementally maintained answers must
				// equal a from-scratch evaluation over the oracle graph, and
				// the delta must be consistent with the answer set.
				d, err := mv.ApplyShared(old, vg.Graph(), touchedV)
				if err != nil {
					t.Fatalf("%s: ApplyShared: %v", ctx, err)
				}
				om, err := NewMatcher(oracle, q)
				if err != nil {
					t.Fatalf("%s: oracle matcher: %v", ctx, err)
				}
				if got, want := mv.Answers(), om.Answers(); !reflect.DeepEqual(got, want) {
					t.Fatalf("%s: answers diverge: incremental %v vs oracle %v (delta %+v)", ctx, got, want, d)
				}
				now := make(map[graph.NodeID]bool)
				for _, v := range mv.Answers() {
					now[v] = true
				}
				for _, v := range d.Added {
					if !now[v] {
						t.Fatalf("%s: delta added %d not in answer set", ctx, v)
					}
				}
				for _, v := range d.Removed {
					if now[v] {
						t.Fatalf("%s: delta removed %d still in answer set", ctx, v)
					}
				}
			}
		})
	}
}

// TestVersionedRollbackRestoresCanonical applies random batches and rolls
// each one back, asserting the graph always returns to its pre-batch
// canonical form (the interner may retain labels a rolled-back batch
// introduced; that is invisible canonically).
func TestVersionedRollbackRestoresCanonical(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	g := gen.Social(gen.DefaultSocial(80, 99))
	vg := graph.NewVersioned(g.Clone())
	wantNodes, wantEdges := canon(g)

	for round := 0; round < 25; round++ {
		ups := randomBatch(r, vg.Graph(), false)
		old, _, err := ApplyVersioned(vg, ups)
		if err != nil {
			continue
		}
		if err := vg.Rollback(old); err != nil {
			t.Fatalf("round %d: rollback: %v", round, err)
		}
		gn, ge := canon(vg.Graph())
		if !reflect.DeepEqual(gn, wantNodes) || !reflect.DeepEqual(ge, wantEdges) {
			t.Fatalf("round %d: rollback did not restore the pre-batch graph (batch %+v)", round, ups)
		}
		if vg.Graph().NumEdges() != g.NumEdges() || vg.Graph().NumNodes() != g.NumNodes() {
			t.Fatalf("round %d: counts diverge after rollback", round)
		}
	}
}
