package dynamic

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/store"
)

func TestRepartitionPreservesInvariants(t *testing.T) {
	g := gen.Social(gen.DefaultSocial(200, 13))
	p, err := partition.DPar(g, partition.Config{Workers: 4, D: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}

	r := rand.New(rand.NewSource(5))
	cur := g
	for step := 0; step < 10; step++ {
		var ups []Update
		for k := 0; k < 3; k++ {
			switch r.Intn(3) {
			case 0:
				ups = append(ups, store.AddNode("person"))
			case 1:
				ups = append(ups, store.AddEdge(int32(r.Intn(cur.NumNodes())), int32(r.Intn(cur.NumNodes())), "follow"))
			case 2:
				v := graph.NodeID(r.Intn(cur.NumNodes()))
				if es := cur.Out(v); len(es) > 0 {
					e := es[r.Intn(len(es))]
					ups = append(ups, store.RemoveEdge(int32(v), int32(e.To), cur.LabelName(e.Label)))
				}
			}
		}
		ng, touched, err := Apply(cur, ups)
		if err != nil {
			t.Fatal(err)
		}
		np, st := Repartition(p, cur, ng, touched)
		if err := np.Validate(); err != nil {
			t.Fatalf("step %d: %v (stats %+v)", step, err, st)
		}
		cur, p = ng, np
	}
}

func TestRepartitionIsLocal(t *testing.T) {
	// A ring lattice has bounded 2-hop balls, so maintenance locality is
	// observable (a small-world social graph would not do: two hops from a
	// hub can cover the whole graph, and then "everything affected" is the
	// correct answer).
	const n = 300
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode("person")
	}
	for i := 0; i < n; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%n), "follow")
	}
	g.Finalize()
	p, err := partition.DPar(g, partition.Config{Workers: 4, D: 2})
	if err != nil {
		t.Fatal(err)
	}
	// One edge insertion between existing nodes: affected owners must be a
	// small fraction of the graph.
	ng, touched, err := Apply(g, []Update{store.AddEdge(0, 1, "follow")})
	if err != nil {
		t.Fatal(err)
	}
	np, st := Repartition(p, g, ng, touched)
	if err := np.Validate(); err != nil {
		t.Fatal(err)
	}
	if st.AffectedOwners >= g.NumNodes()/2 {
		t.Errorf("affected owners = %d of %d nodes; maintenance is not local", st.AffectedOwners, g.NumNodes())
	}
	if st.NewOwners != 0 {
		t.Errorf("NewOwners = %d, want 0", st.NewOwners)
	}
}

func TestRepartitionAssignsNewNodes(t *testing.T) {
	g := gen.Social(gen.DefaultSocial(100, 19))
	p, err := partition.DPar(g, partition.Config{Workers: 3, D: 2})
	if err != nil {
		t.Fatal(err)
	}
	id := int32(g.NumNodes())
	ng, touched, err := Apply(g, []Update{
		store.AddNode("person"),
		store.AddEdge(id, 0, "follow"),
	})
	if err != nil {
		t.Fatal(err)
	}
	np, st := Repartition(p, g, ng, touched)
	if err := np.Validate(); err != nil {
		t.Fatal(err)
	}
	if st.NewOwners != 1 {
		t.Errorf("NewOwners = %d, want 1", st.NewOwners)
	}
}

// End-to-end: parallel evaluation over the incrementally maintained
// partition agrees with sequential evaluation over the updated graph.
func TestRepartitionParallelAgreement(t *testing.T) {
	g := gen.Social(gen.DefaultSocial(200, 23))
	q := gen.Pattern(g, gen.PatternConfig{Nodes: 3, Edges: 3, RatioBP: 3000, Seed: 7})
	d := parallel.RequiredHops(q)
	p, err := partition.DPar(g, partition.Config{Workers: 4, D: d})
	if err != nil {
		t.Fatal(err)
	}

	r := rand.New(rand.NewSource(41))
	cur := g
	for step := 0; step < 5; step++ {
		var ups []Update
		for k := 0; k < 4; k++ {
			ups = append(ups, store.AddEdge(int32(r.Intn(cur.NumNodes())), int32(r.Intn(cur.NumNodes())), "follow"))
		}
		ng, touched, err := Apply(cur, ups)
		if err != nil {
			t.Fatal(err)
		}
		np, _ := Repartition(p, cur, ng, touched)
		if err := np.Validate(); err != nil {
			t.Fatal(err)
		}
		cur, p = ng, np

		seq, err := match.QMatch(cur, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		par, err := parallel.PQMatch(parallel.NewCluster(p), q, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq.Matches, par.Matches) && !(len(seq.Matches) == 0 && len(par.Matches) == 0) {
			t.Fatalf("step %d: parallel %v != sequential %v", step, par.Matches, seq.Matches)
		}
	}
}
