package dynamic

// FuzzVersionedApply decodes arbitrary bytes into an update batch, applies
// it through the versioned in-place core and through the rebuild oracle,
// and demands the two paths agree: same accept/reject decision, and on
// acceptance a canonically identical finalized graph plus the same
// touched set. A rejected batch must leave the versioned graph untouched.
//
// The byte decoder is deliberately total — every input decodes to SOME
// batch (possibly invalid, exercising the rejection path), so the fuzzer
// spends its budget on semantics rather than parse errors.

import (
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/store"
)

// fuzzBase builds a small fixed host graph: a few label classes, a ring
// plus chords, and one pre-isolated node so tombstone re-isolation is
// reachable from the first mutation.
func fuzzBase() *graph.Graph {
	const n = 12
	g := graph.New(n)
	for i := 0; i < n; i++ {
		if i%3 == 0 {
			g.AddNode("person")
		} else if i%3 == 1 {
			g.AddNode("product")
		} else {
			g.AddNode("album")
		}
	}
	for i := 0; i < n-1; i++ { // node n-1 stays isolated
		g.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%(n-1)), "follow")
		if i%2 == 0 {
			g.AddEdge(graph.NodeID(i), graph.NodeID((i+5)%(n-1)), "like")
		}
	}
	g.Finalize()
	return g
}

var fuzzLabels = []string{"follow", "like", "recom", "person", ""}

// decodeBatch turns raw bytes into an update batch, 3 bytes per op:
// opcode selector, from, to. Endpoint bytes land mostly in range (mod a
// window slightly past the node count) so both valid and out-of-range
// references are generated.
func decodeBatch(data []byte) []Update {
	var ups []Update
	for i := 0; i+2 < len(data) && len(ups) < 12; i += 3 {
		op, a, b := data[i], data[i+1], data[i+2]
		from := int32(a%20) - 2 // [-2, 17]: in range, out of range, negative
		to := int32(b % 20)
		label := fuzzLabels[int(b)%len(fuzzLabels)]
		switch op % 4 {
		case 0:
			ups = append(ups, store.AddNode(label))
		case 1:
			ups = append(ups, store.AddEdge(from, to, label))
		case 2:
			ups = append(ups, store.RemoveEdge(from, to, label))
		case 3:
			ups = append(ups, store.RemoveNode(from))
		}
	}
	return ups
}

func FuzzVersionedApply(f *testing.F) {
	// Pinned seeds: one op of each kind, a mixed valid batch, a batch with
	// an out-of-range edge, a negative node id, and tombstone re-isolation.
	f.Add([]byte{0, 0, 0})                            // AddNode
	f.Add([]byte{1, 2, 5})                            // AddEdge 0->5
	f.Add([]byte{2, 2, 3})                            // RemoveEdge 0->3
	f.Add([]byte{3, 13, 0})                           // RemoveNode 11 (isolated)
	f.Add([]byte{3, 13, 0, 3, 13, 0})                 // re-isolate the tombstone
	f.Add([]byte{1, 3, 4, 0, 0, 1, 2, 4, 2, 3, 6, 0}) // mixed valid batch
	f.Add([]byte{1, 19, 0})                           // AddEdge from node 17: out of range
	f.Add([]byte{3, 0, 0})                            // RemoveNode -2: negative
	f.Add([]byte{0, 0, 2, 1, 16, 14})                 // AddNode then edge onto the new node

	f.Fuzz(func(t *testing.T, data []byte) {
		ups := decodeBatch(data)
		if len(ups) == 0 {
			t.Skip()
		}
		base := fuzzBase()
		vg := graph.NewVersioned(base.Clone())
		preNodes, preEdges := canon(vg.Graph())

		ng, touchedO, errO := Apply(base, ups)
		old, touchedV, errV := ApplyVersioned(vg, ups)

		if (errO == nil) != (errV == nil) {
			t.Fatalf("error divergence: oracle=%v versioned=%v (batch %+v)", errO, errV, ups)
		}
		if errO != nil {
			gn, ge := canon(vg.Graph())
			if !reflect.DeepEqual(gn, preNodes) || !reflect.DeepEqual(ge, preEdges) {
				t.Fatalf("rejected batch mutated the versioned graph (batch %+v)", ups)
			}
			return
		}
		if !reflect.DeepEqual(touchedO, touchedV) {
			t.Fatalf("touched sets diverge: oracle %v vs versioned %v (batch %+v)", touchedO, touchedV, ups)
		}
		requireCanonEqual(t, ng, vg.Graph(), "fuzz")

		// The old view must still render the pre-batch graph, and rolling
		// back must restore it exactly.
		on, oe := canon(old)
		if !reflect.DeepEqual(on, preNodes) || !reflect.DeepEqual(oe, preEdges) {
			t.Fatalf("old view diverges from the pre-batch graph (batch %+v)", ups)
		}
		if err := vg.Rollback(old); err != nil {
			t.Fatalf("rollback: %v", err)
		}
		gn, ge := canon(vg.Graph())
		if !reflect.DeepEqual(gn, preNodes) || !reflect.DeepEqual(ge, preEdges) {
			t.Fatalf("rollback did not restore the pre-batch graph (batch %+v)", ups)
		}
	})
}
