package dynamic

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/partition"
)

// RepartitionStats reports the incremental maintenance work.
type RepartitionStats struct {
	// AffectedOwners is the number of owned nodes whose d-hop
	// neighborhood had to be re-expanded.
	AffectedOwners int
	// LoadedNodes is the number of node slots newly materialized into
	// fragments.
	LoadedNodes int
	// NewOwners is the number of added nodes that received an owner.
	NewOwners int
}

// Repartition incrementally maintains a d-hop preserving partition after
// an update batch, per the §5.2 remark: instead of re-running DPar, each
// fragment reloads Nd(v) only for its affected owners, and newly added
// nodes are assigned (with their neighborhoods) to the smallest fragment.
//
// oldG must be the graph p was built over, newG/touched the output of
// Apply. The returned partition references newG; p is not modified.
// Deletions never break the covering property (neighborhoods only
// shrink), so only insertions force loading.
func Repartition(p *partition.Partition, oldG, newG *graph.Graph, touched []graph.NodeID) (*partition.Partition, RepartitionStats) {
	var st RepartitionStats
	np := &partition.Partition{G: newG, D: p.D, Fragments: make([]*partition.Fragment, len(p.Fragments))}

	// Affected owners: within D of a touched node in either version.
	affected := make(map[graph.NodeID]bool)
	for _, v := range AffectedWithin(oldG, newG, touched, p.D) {
		affected[v] = true
	}

	present := make([]map[graph.NodeID]bool, len(p.Fragments))
	for i, f := range p.Fragments {
		present[i] = make(map[graph.NodeID]bool, len(f.Nodes))
		for _, v := range f.Nodes {
			present[i][v] = true
		}
		np.Fragments[i] = &partition.Fragment{
			Worker: f.Worker,
			Owned:  append([]graph.NodeID(nil), f.Owned...),
		}
	}

	// Reload neighborhoods of affected existing owners.
	for i, f := range p.Fragments {
		for _, v := range f.Owned {
			if !affected[v] {
				continue
			}
			st.AffectedOwners++
			for _, u := range newG.Neighborhood(v, p.D) {
				if !present[i][u] {
					present[i][u] = true
					st.LoadedNodes++
				}
			}
			np.Fragments[i].Work += len(newG.Neighborhood(v, p.D))
		}
	}

	// Assign new nodes (ids ≥ old node count) to the smallest fragment,
	// loading their neighborhoods.
	sizes := make([]int, len(p.Fragments))
	for i := range present {
		sizes[i] = len(present[i])
	}
	var newNodes []graph.NodeID
	for _, v := range touched {
		if int(v) >= oldG.NumNodes() {
			newNodes = append(newNodes, v)
		}
	}
	sort.Slice(newNodes, func(i, j int) bool { return newNodes[i] < newNodes[j] })
	for _, v := range newNodes {
		smallest := 0
		for j := 1; j < len(sizes); j++ {
			if sizes[j] < sizes[smallest] {
				smallest = j
			}
		}
		nd := newG.Neighborhood(v, p.D)
		for _, u := range nd {
			if !present[smallest][u] {
				present[smallest][u] = true
				st.LoadedNodes++
				sizes[smallest]++
			}
		}
		np.Fragments[smallest].Owned = append(np.Fragments[smallest].Owned, v)
		np.Fragments[smallest].Work += len(nd)
		st.NewOwners++
	}

	for i, f := range np.Fragments {
		nodes := make([]graph.NodeID, 0, len(present[i]))
		for v := range present[i] {
			nodes = append(nodes, v)
		}
		sort.Slice(nodes, func(a, b int) bool { return nodes[a] < nodes[b] })
		f.Nodes = nodes
		sort.Slice(f.Owned, func(a, b int) bool { return f.Owned[a] < f.Owned[b] })
		f.Size = inducedSize(newG, present[i])
	}
	return np, st
}

func inducedSize(g *graph.Graph, present map[graph.NodeID]bool) int {
	edges := 0
	for v := range present {
		for _, e := range g.Out(v) {
			if present[e.To] {
				edges++
			}
		}
	}
	return len(present) + edges
}
