package dynamic

import (
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/parallel"
)

// Matcher maintains the answer set Q(xo, G) of one pattern under graph
// updates. After each batch it re-verifies only the focus candidates whose
// d-hop neighborhood the batch could have changed (d = the pattern's
// required hops) and reuses every other cached answer.
type Matcher struct {
	q    *core.Pattern
	hops int
	g    *graph.Graph
	ans  map[graph.NodeID]bool

	// Verified counts the focus candidates re-verified by Apply calls —
	// the measurable saving over full recomputation.
	Verified int
}

// Delta reports how an update batch changed the answer set.
type Delta struct {
	Added   []graph.NodeID
	Removed []graph.NodeID
	// Affected is the number of focus candidates that had to be
	// re-verified for this batch.
	Affected int
}

// NewMatcher evaluates q over g once and caches the answers.
func NewMatcher(g *graph.Graph, q *core.Pattern) (*Matcher, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	res, err := match.QMatch(g, q, nil)
	if err != nil {
		return nil, err
	}
	m := &Matcher{q: q, hops: parallel.RequiredHops(q), g: g, ans: make(map[graph.NodeID]bool, len(res.Matches))}
	for _, v := range res.Matches {
		m.ans[v] = true
	}
	return m, nil
}

// Graph returns the matcher's current graph version.
func (m *Matcher) Graph() *graph.Graph { return m.g }

// Hops returns the maintenance radius d used for affected-set computation.
func (m *Matcher) Hops() int { return m.hops }

// Answers returns the current answer set, sorted.
func (m *Matcher) Answers() []graph.NodeID {
	out := make([]graph.NodeID, 0, len(m.ans))
	for v := range m.ans {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Apply applies an update batch and incrementally maintains the answers:
// it evaluates the pattern restricted to the affected focus candidates and
// splices the result into the cached set. The returned delta lists the
// membership changes.
func (m *Matcher) Apply(ups []Update) (Delta, error) {
	newG, touched, err := Apply(m.g, ups)
	if err != nil {
		return Delta{}, err
	}
	affected := AffectedWithin(m.g, newG, touched, m.hops)

	var d Delta
	d.Affected = len(affected)
	m.Verified += len(affected)
	if len(affected) > 0 {
		res, err := match.QMatch(newG, m.q, &match.Options{FocusRestrict: affected})
		if err != nil {
			return Delta{}, err
		}
		now := make(map[graph.NodeID]bool, len(res.Matches))
		for _, v := range res.Matches {
			now[v] = true
		}
		for _, v := range affected {
			was := m.ans[v]
			switch {
			case now[v] && !was:
				m.ans[v] = true
				d.Added = append(d.Added, v)
			case !now[v] && was:
				delete(m.ans, v)
				d.Removed = append(d.Removed, v)
			}
		}
	}
	m.g = newG
	return d, nil
}
