package dynamic

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/parallel"
)

// Matcher maintains the answer set Q(xo, G) of one pattern under graph
// updates. After each batch it re-verifies only the focus candidates whose
// d-hop neighborhood the batch could have changed (d = the pattern's
// required hops) and reuses every other cached answer.
type Matcher struct {
	q    *core.Pattern
	hops int
	g    *graph.Graph
	// vg is the matcher's private versioned core, adopted lazily on the
	// first self-applied batch (Apply clones the caller's graph so the
	// original is never mutated). Nil while the matcher only follows
	// externally applied batches via ApplyShared/ApplyScoped.
	vg  *graph.Versioned
	ans map[graph.NodeID]bool
	// restrict, when non-nil, limits the maintained answer set to these
	// focus candidates (a cluster worker answers only for the nodes it
	// owns); nil means every node is a candidate.
	restrict map[graph.NodeID]bool

	// Verified counts the focus candidates re-verified by Apply calls —
	// the measurable saving over full recomputation.
	Verified int
}

// Delta reports how an update batch changed the answer set.
type Delta struct {
	Added   []graph.NodeID
	Removed []graph.NodeID
	// Affected is the number of focus candidates that had to be
	// re-verified for this batch.
	Affected int
}

// NewMatcher evaluates q over g once and caches the answers.
func NewMatcher(g *graph.Graph, q *core.Pattern) (*Matcher, error) {
	return newMatcher(g, q, nil)
}

// NewMatcherRestricted is NewMatcher limited to the given focus
// candidates: only their membership is evaluated and maintained. A cluster
// worker uses this to answer exactly for the fragment nodes it owns —
// non-owned nodes of a d-hop-preserving fragment may lack part of their
// neighborhood, so their local answers would be wrong anyway.
func NewMatcherRestricted(g *graph.Graph, q *core.Pattern, focus []graph.NodeID) (*Matcher, error) {
	restrict := make(map[graph.NodeID]bool, len(focus))
	for _, v := range focus {
		restrict[v] = true
	}
	return newMatcher(g, q, restrict)
}

func newMatcher(g *graph.Graph, q *core.Pattern, restrict map[graph.NodeID]bool) (*Matcher, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	m := &Matcher{q: q, hops: parallel.RequiredHops(q), g: g, restrict: restrict, ans: make(map[graph.NodeID]bool)}
	if restrict != nil && len(restrict) == 0 {
		// No candidates yet (a fragment owning nothing); AddFocus extends.
		// Options.FocusRestrict cannot express this: an empty list there
		// means unrestricted.
		return m, nil
	}
	var opts *match.Options
	if restrict != nil {
		opts = &match.Options{FocusRestrict: sortedNodeSet(restrict)}
	}
	res, err := match.QMatch(g, q, opts)
	if err != nil {
		return nil, err
	}
	for _, v := range res.Matches {
		m.ans[v] = true
	}
	return m, nil
}

// AddFocus extends a restricted matcher's candidate set (the coordinator
// assigns a newly created node to this worker) and returns the answer
// delta contributed by the new candidates. Calling it on an unrestricted
// matcher is an error: every node is already a candidate.
func (m *Matcher) AddFocus(vs []graph.NodeID) (Delta, error) {
	if m.restrict == nil {
		return Delta{}, fmt.Errorf("dynamic: AddFocus on an unrestricted matcher")
	}
	fresh := make([]graph.NodeID, 0, len(vs))
	for _, v := range vs {
		if v < 0 || int(v) >= m.g.NumNodes() {
			return Delta{}, fmt.Errorf("dynamic: AddFocus node %d outside [0, %d)", v, m.g.NumNodes())
		}
		if !m.restrict[v] {
			m.restrict[v] = true
			fresh = append(fresh, v)
		}
	}
	var d Delta
	if len(fresh) == 0 {
		return d, nil
	}
	d.Affected = len(fresh)
	m.Verified += len(fresh)
	res, err := match.QMatch(m.g, m.q, &match.Options{FocusRestrict: fresh})
	if err != nil {
		return Delta{}, err
	}
	for _, v := range res.Matches {
		if !m.ans[v] {
			m.ans[v] = true
			d.Added = append(d.Added, v)
		}
	}
	sortNodeIDs(d.Added)
	return d, nil
}

// Graph returns the matcher's current graph version.
func (m *Matcher) Graph() *graph.Graph { return m.g }

// Hops returns the maintenance radius d used for affected-set computation.
func (m *Matcher) Hops() int { return m.hops }

// Answers returns the current answer set, sorted.
func (m *Matcher) Answers() []graph.NodeID {
	out := make([]graph.NodeID, 0, len(m.ans))
	for v := range m.ans {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Apply applies an update batch and incrementally maintains the answers:
// it evaluates the pattern restricted to the affected focus candidates and
// splices the result into the cached set. The returned delta lists the
// membership changes.
//
// The batch runs through a private versioned core: the first Apply
// clones the construction-time graph (so the caller's graph is never
// mutated) and every later batch edits that clone in place, costing
// |batch| + |affected d-hop region| instead of |G|.
func (m *Matcher) Apply(ups []Update) (Delta, error) {
	if m.vg == nil || m.vg.Graph() != m.g {
		// Adopt (or re-adopt, after an interleaved ApplyShared moved the
		// matcher onto an external graph) a private versioned copy.
		m.vg = graph.NewVersioned(m.g.Clone())
		m.g = m.vg.Graph()
	}
	old, touched, err := ApplyVersioned(m.vg, ups)
	if err != nil {
		return Delta{}, err
	}
	return m.reverify(m.g, AffectedWithin(old, m.g, touched, m.hops))
}

// ApplyShared maintains the answers for a batch the caller already
// applied: old is the pre-batch view, and newG and touched are the
// batch's results over the matcher's current graph (ApplyVersioned's
// OldView/touched, or dynamic.Apply's output with the pre-batch graph
// as old). A holder of several matchers over one graph (a server
// session with many standing watches) applies the batch once and
// shares the result, instead of applying it per watch.
func (m *Matcher) ApplyShared(old graph.View, newG *graph.Graph, touched []graph.NodeID) (Delta, error) {
	return m.reverify(newG, AffectedWithin(old, newG, touched, m.hops))
}

// ApplyScoped maintains the answers for a batch the caller already
// applied, re-verifying exactly the given candidates (intersected with
// the matcher's focus restriction). The caller must guarantee affected
// is a superset of the focus candidates whose m.Hops()-neighborhood the
// batch changed — a cluster worker gets this set from the coordinator,
// which computes it once on the global graph within the fragmentation
// radius d >= Hops(), so the worker does not re-expand the batch
// locally (where fragment materialization traffic would inflate it).
func (m *Matcher) ApplyScoped(newG *graph.Graph, affected []graph.NodeID) (Delta, error) {
	return m.reverify(newG, affected)
}

// Stages splits one incremental maintenance step into its two phases:
// computing the affected region (the two-radius BFS of AffectedWithin)
// and re-verifying the candidates it yielded. It is the update profile's
// per-watch timing record.
type Stages struct {
	AffectedMS float64 `json:"affected_ms"`
	VerifyMS   float64 `json:"verify_ms"`
}

// ApplySharedStaged is ApplyShared with per-stage timings.
func (m *Matcher) ApplySharedStaged(old graph.View, newG *graph.Graph, touched []graph.NodeID) (Delta, Stages, error) {
	var st Stages
	t0 := time.Now()
	affected := AffectedWithin(old, newG, touched, m.hops)
	st.AffectedMS = msSince(t0)
	t1 := time.Now()
	d, err := m.reverify(newG, affected)
	st.VerifyMS = msSince(t1)
	return d, st, err
}

// ApplyScopedStaged is ApplyScoped with per-stage timings; the affected
// region arrived precomputed, so only the verify phase is timed.
func (m *Matcher) ApplyScopedStaged(newG *graph.Graph, affected []graph.NodeID) (Delta, Stages, error) {
	var st Stages
	t0 := time.Now()
	d, err := m.reverify(newG, affected)
	st.VerifyMS = msSince(t0)
	return d, st, err
}

// msSince returns the elapsed time since t0 in fractional milliseconds.
func msSince(t0 time.Time) float64 {
	return float64(time.Since(t0).Microseconds()) / 1000
}

// reverify re-evaluates the given candidates over newG and splices the
// result into the cached answer set, committing newG as the matcher's
// graph.
func (m *Matcher) reverify(newG *graph.Graph, affected []graph.NodeID) (Delta, error) {
	if m.restrict != nil {
		kept := make([]graph.NodeID, 0, len(affected))
		for _, v := range affected {
			if m.restrict[v] {
				kept = append(kept, v)
			}
		}
		affected = kept
	}

	var d Delta
	d.Affected = len(affected)
	m.Verified += len(affected)
	if len(affected) > 0 {
		res, err := match.QMatch(newG, m.q, &match.Options{FocusRestrict: affected})
		if err != nil {
			return Delta{}, err
		}
		now := make(map[graph.NodeID]bool, len(res.Matches))
		for _, v := range res.Matches {
			now[v] = true
		}
		for _, v := range affected {
			was := m.ans[v]
			switch {
			case now[v] && !was:
				m.ans[v] = true
				d.Added = append(d.Added, v)
			case !now[v] && was:
				delete(m.ans, v)
				d.Removed = append(d.Removed, v)
			}
		}
	}
	m.g = newG
	sortNodeIDs(d.Added)
	sortNodeIDs(d.Removed)
	return d, nil
}

func sortNodeIDs(vs []graph.NodeID) {
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
}

func sortedNodeSet(m map[graph.NodeID]bool) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sortNodeIDs(out)
	return out
}
