// Package store persists a labeled directed graph on disk as a binary
// snapshot plus an append-only mutation journal, in the style of a
// write-ahead-logged storage engine:
//
//   - snapshot-<seq>.qg  — the graph state with all mutations ≤ seq folded in
//   - journal.log        — CRC-protected mutation records appended after it
//   - CURRENT            — a tiny JSON manifest naming the live snapshot,
//     replaced atomically by rename
//
// Open loads the snapshot named by CURRENT and replays the journal suffix
// (records with seq greater than the snapshot's). Recovery tolerates a
// torn journal tail — an interrupted append rolls back — and an
// interrupted compaction: the manifest flip is atomic, and replay skips
// records already folded into the snapshot by sequence number.
//
// The store keeps the graph materialized in memory, maintained in
// place by the versioned graph core (one delta apply per batch, cost
// proportional to the batch); Graph() returns a finalized immutable
// snapshot that is replaced (not mutated) on Apply, so concurrent
// readers can keep using a previously returned graph.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/graph"
)

const (
	manifestName = "CURRENT"
	journalName  = "journal.log"
)

// Options configures a store.
type Options struct {
	// Fsync makes every Apply batch durable before returning. Off by
	// default: tests and bulk loads prefer speed, servers turn it on.
	Fsync bool
}

// Store is a disk-backed mutable graph. All methods are safe for
// concurrent use.
type Store struct {
	dir  string
	opts Options

	mu       sync.Mutex
	vg       *graph.Versioned // live state, maintained in place per batch
	nextSeq  uint64           // seq of the next mutation to journal
	snapSeq  uint64           // seq folded into the live snapshot
	jw       *journalWriter   // open journal appender
	view     *graph.Graph     // cached immutable snapshot; nil when dirty
	recovery RecoveryInfo     // what Open found
	closed   bool
}

type manifest struct {
	Snapshot string `json:"snapshot"`
	Seq      uint64 `json:"seq"`
}

// Open opens (or initializes) the store in dir. The directory is created
// when missing.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, opts: opts, vg: graph.NewVersioned(graph.New(0))}

	man, err := readManifest(filepath.Join(dir, manifestName))
	switch {
	case errors.Is(err, os.ErrNotExist):
		// Fresh store: empty state, new journal.
		if err := s.writeSnapshotLocked(0); err != nil {
			return nil, err
		}
		jw, err := createJournal(filepath.Join(dir, journalName), opts.Fsync)
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		s.jw = jw
		s.nextSeq = 1
		return s, nil
	case err != nil:
		return nil, err
	}

	if err := s.loadSnapshot(filepath.Join(dir, man.Snapshot)); err != nil {
		return nil, err
	}
	s.snapSeq = man.Seq
	s.nextSeq = man.Seq + 1

	jpath := filepath.Join(dir, journalName)
	jf, err := os.Open(jpath)
	switch {
	case errors.Is(err, os.ErrNotExist):
		jw, err := createJournal(jpath, opts.Fsync)
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		s.jw = jw
		return s, nil
	case err != nil:
		return nil, fmt.Errorf("store: %w", err)
	}
	info, rerr := replayJournal(jf, man.Seq, func(seq uint64, m Mutation) error {
		if seq != s.nextSeq {
			return fmt.Errorf("%w: sequence gap: got %d, want %d", ErrCorruptJournal, seq, s.nextSeq)
		}
		if err := s.applyLocked(m); err != nil {
			return err
		}
		s.nextSeq = seq + 1
		return nil
	})
	jf.Close()
	if rerr != nil {
		return nil, rerr
	}
	s.recovery = info
	if info.TornTail {
		// The valid prefix was applied in memory only; fold it into a
		// fresh snapshot and truncate the journal, so the repair is
		// durable and future appends don't land after garbage.
		if err := s.compactLocked(); err != nil {
			return nil, err
		}
	} else {
		jw, err := openJournalForAppend(jpath, opts.Fsync)
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		s.jw = jw
	}
	return s, nil
}

// Recovery reports what Open found when replaying the journal.
func (s *Store) Recovery() RecoveryInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovery
}

// NumNodes returns the current node count.
func (s *Store) NumNodes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.vg.Graph().NumNodes()
}

// NumEdges returns the current edge count.
func (s *Store) NumEdges() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.vg.Graph().NumEdges()
}

// JournalBytes reports the on-disk size of the mutation journal: the
// bytes Compact would fold into the next snapshot. Compaction policies
// (internal/ha) poll it to keep a long-lived store's journal bounded.
func (s *Store) JournalBytes() (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, fmt.Errorf("store: closed")
	}
	fi, err := s.jw.f.Stat()
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	return fi.Size(), nil
}

// Apply journals and applies a batch of mutations atomically with respect
// to Graph(): readers see either none or all of the batch. It returns the
// id of the first node added by the batch (or -1 if none); AddNode ids
// are assigned densely in batch order.
func (s *Store) Apply(muts ...Mutation) (firstNode int32, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return -1, fmt.Errorf("store: closed")
	}
	// Validate against the projected node count so a batch can add a node
	// and immediately connect it. (The versioned core re-validates with
	// the same rules; checking here keeps invalid batches out of the
	// journal before any bytes are written.)
	n := s.vg.Graph().NumNodes()
	firstNode = -1
	for _, m := range muts {
		if err := m.validate(n); err != nil {
			return -1, err
		}
		if m.Op == OpAddNode {
			if firstNode < 0 {
				firstNode = int32(n)
			}
			n++
		}
	}
	if err := s.jw.append(s.nextSeq, muts); err != nil {
		return -1, fmt.Errorf("store: journal append: %w", err)
	}
	if _, _, err := s.vg.Apply(toGraphMutations(muts)); err != nil {
		// Unreachable: the batch passed the identical validation above.
		return -1, fmt.Errorf("store: %w", err)
	}
	s.nextSeq += uint64(len(muts))
	s.view = nil
	return firstNode, nil
}

// applyLocked applies one validated mutation to the in-memory state
// (the journal-replay path: records re-apply one at a time through the
// versioned core, with per-record sequence checking in the caller).
func (s *Store) applyLocked(m Mutation) error {
	if err := m.validate(s.vg.Graph().NumNodes()); err != nil {
		return err
	}
	if _, _, err := s.vg.Apply(toGraphMutations([]Mutation{m})); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.view = nil
	return nil
}

// toGraphMutations converts the store's journal vocabulary to the graph
// core's delta vocabulary (a one-to-one mapping).
func toGraphMutations(muts []Mutation) []graph.Mutation {
	out := make([]graph.Mutation, len(muts))
	for i, m := range muts {
		var op graph.MutationOp
		switch m.Op {
		case OpAddNode:
			op = graph.MutAddNode
		case OpAddEdge:
			op = graph.MutAddEdge
		case OpRemoveEdge:
			op = graph.MutRemoveEdge
		case OpRemoveNode:
			op = graph.MutRemoveNode
		}
		out[i] = graph.Mutation{Op: op, From: graph.NodeID(m.From), To: graph.NodeID(m.To), Label: m.Label}
	}
	return out
}

// Graph returns the current state as a finalized graph. The returned
// graph is immutable: it is a snapshot copy of the live in-place state,
// cached until the next mutation, so later Apply calls never touch it.
func (s *Store) Graph() *graph.Graph {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.graphLocked()
}

func (s *Store) graphLocked() *graph.Graph {
	if s.view == nil {
		s.view = s.vg.Graph().Clone()
	}
	return s.view
}

// ImportGraph replaces the store contents with g and compacts. It is the
// bulk-load path: one snapshot write, no journaling of individual edges.
func (s *Store) ImportGraph(g *graph.Graph) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	// Clone: callers (the HA journal's SetGraph receives the cluster
	// coordinator's live graph) keep mutating g afterwards; the store's
	// state must not alias it.
	s.vg = graph.NewVersioned(g.Clone())
	s.view = nil
	return s.compactLocked()
}

// Compact folds the journal into a fresh snapshot and truncates the
// journal. Crash-safe: the manifest rename is the commit point.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	seq := s.nextSeq - 1
	if err := s.writeSnapshotLocked(seq); err != nil {
		return err
	}
	return s.rewriteJournalLocked(nil)
}

// writeSnapshotLocked writes snapshot-<seq>.qg, flips the manifest to it,
// and removes superseded snapshots.
func (s *Store) writeSnapshotLocked(seq uint64) error {
	name := fmt.Sprintf("snapshot-%d.qg", seq)
	tmp := filepath.Join(s.dir, name+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	// Serialize the live graph directly: no snapshot clone needed while
	// the lock is held.
	if err := s.vg.Graph().WriteBinary(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: snapshot write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, name)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := writeManifest(filepath.Join(s.dir, manifestName), manifest{Snapshot: name, Seq: seq}); err != nil {
		return err
	}
	s.snapSeq = seq
	// Best-effort cleanup of superseded snapshots.
	entries, err := os.ReadDir(s.dir)
	if err == nil {
		for _, e := range entries {
			if strings.HasPrefix(e.Name(), "snapshot-") && e.Name() != name && !strings.HasSuffix(e.Name(), ".tmp") {
				os.Remove(filepath.Join(s.dir, e.Name()))
			}
		}
	}
	return nil
}

// rewriteJournalLocked replaces the journal with one containing only the
// given records (usually none, after compaction), atomically by rename.
func (s *Store) rewriteJournalLocked(records []Mutation) error {
	if s.jw != nil {
		s.jw.Close()
		s.jw = nil
	}
	tmp := filepath.Join(s.dir, journalName+".tmp")
	jw, err := createJournal(tmp, s.opts.Fsync)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if len(records) > 0 {
		if err := jw.append(s.snapSeq+1, records); err != nil {
			jw.Close()
			return fmt.Errorf("store: %w", err)
		}
	}
	if err := jw.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, journalName)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	jw2, err := openJournalForAppend(filepath.Join(s.dir, journalName), s.opts.Fsync)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.jw = jw2
	return nil
}

// Close flushes and closes the journal. The store must not be used after.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.jw != nil {
		if s.opts.Fsync {
			s.jw.f.Sync()
		}
		return s.jw.Close()
	}
	return nil
}

func (s *Store) loadSnapshot(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("store: manifest names missing snapshot: %w", err)
	}
	defer f.Close()
	g, err := graph.ReadBinary(f)
	if err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	// The decoded graph is owned by the store; the journal suffix (if
	// any) replays into it in place.
	s.vg = graph.NewVersioned(g)
	s.view = nil
	return nil
}

func readManifest(path string) (manifest, error) {
	var m manifest
	b, err := os.ReadFile(path)
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(b, &m); err != nil {
		return m, fmt.Errorf("store: manifest: %w", err)
	}
	if m.Snapshot == "" || strings.Contains(m.Snapshot, "/") {
		return m, fmt.Errorf("store: manifest names invalid snapshot %q", m.Snapshot)
	}
	return m, nil
}

func writeManifest(path string, m manifest) error {
	b, err := json.Marshal(m)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return os.Rename(tmp, path)
}
