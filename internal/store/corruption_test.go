package store

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// Random corruption soak: flip/truncate bytes anywhere in the journal.
// Open must never panic and must always produce either a usable store
// (whose state is a prefix of the original history) or a clean error —
// never silently wrong data past the corruption point.
func TestJournalCorruptionSoak(t *testing.T) {
	// Build a reference history once.
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	history := []Mutation{
		AddNode("A"), AddNode("B"), AddNode("C"),
		AddEdge(0, 1, "x"), AddEdge(1, 2, "y"), AddEdge(2, 0, "z"),
		RemoveEdge(0, 1, "x"), AddNode("D"), AddEdge(3, 0, "w"),
	}
	for _, m := range history {
		if _, err := s.Apply(m); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	pristine, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	snapshotFiles, err := filepath.Glob(filepath.Join(dir, "snapshot-*.qg"))
	if err != nil || len(snapshotFiles) == 0 {
		t.Fatalf("no snapshot: %v", err)
	}
	snapBytes, _ := os.ReadFile(snapshotFiles[0])
	manBytes, _ := os.ReadFile(filepath.Join(dir, manifestName))

	// prefixStates[k] = (nodes, edges) after the first k mutations.
	type state struct{ nodes, edges int }
	prefixStates := make(map[state]bool)
	{
		nodes, edges := 0, 0
		eset := map[edgeKey]bool{}
		prefixStates[state{0, 0}] = true
		for _, m := range history {
			switch m.Op {
			case OpAddNode:
				nodes++
			case OpAddEdge:
				eset[edgeKey{m.From, m.To, m.Label}] = true
			case OpRemoveEdge:
				delete(eset, edgeKey{m.From, m.To, m.Label})
			}
			edges = len(eset)
			prefixStates[state{nodes, edges}] = true
		}
	}

	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 120; trial++ {
		td := t.TempDir()
		writeFile := func(name string, b []byte) {
			if err := os.WriteFile(filepath.Join(td, name), b, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		writeFile(filepath.Base(snapshotFiles[0]), snapBytes)
		writeFile(manifestName, manBytes)

		corrupted := append([]byte(nil), pristine...)
		switch r.Intn(3) {
		case 0: // flip a random byte
			if len(corrupted) > 0 {
				corrupted[r.Intn(len(corrupted))] ^= byte(1 + r.Intn(255))
			}
		case 1: // truncate at a random offset
			corrupted = corrupted[:r.Intn(len(corrupted)+1)]
		case 2: // duplicate a random chunk in the middle
			if len(corrupted) > 16 {
				at := 8 + r.Intn(len(corrupted)-16)
				chunk := corrupted[at : at+4]
				corrupted = append(corrupted[:at:at], append(append([]byte(nil), chunk...), corrupted[at:]...)...)
			}
		}
		writeFile(journalName, corrupted)

		s2, err := Open(td, Options{})
		if err != nil {
			continue // clean refusal is acceptable
		}
		got := state{s2.NumNodes(), s2.NumEdges()}
		if !prefixStates[got] {
			t.Fatalf("trial %d: recovered state %+v is not a history prefix", trial, got)
		}
		// The recovered store must remain writable.
		if got.nodes > 0 {
			if _, err := s2.Apply(AddEdge(0, 0, "self")); err != nil {
				t.Fatalf("trial %d: recovered store not writable: %v", trial, err)
			}
		}
		s2.Close()
	}
}

// A corrupt manifest (not JSON, bad snapshot name, path escape) must be a
// clean error, never a panic or empty-store fallback that would shadow
// real data.
func TestManifestCorruption(t *testing.T) {
	build := func() string {
		dir := t.TempDir()
		s, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		s.Apply(AddNode("A"))
		s.Close()
		return dir
	}
	for _, bad := range []string{
		"not json",
		`{"snapshot": "", "seq": 0}`,
		`{"snapshot": "../../etc/passwd", "seq": 0}`,
		`{"snapshot": "missing.qg", "seq": 0}`,
	} {
		dir := build()
		if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(bad), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir, Options{}); err == nil {
			t.Errorf("manifest %q accepted", bad)
		}
	}
}
