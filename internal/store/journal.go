package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Journal record layout (little-endian):
//
//	[4B payload length][4B CRC32C of payload][payload]
//
// payload:
//
//	uvarint seq
//	byte    op
//	uvarint from+1 (0 when unused)
//	uvarint to+1   (0 when unused)
//	uvarint len(label) + label bytes
//
// The file begins with the 8-byte magic "QGJRNL\x00\x01". Recovery reads
// records until EOF, a torn tail (short read), or a CRC mismatch; the
// valid prefix is kept and the tail discarded — the standard write-ahead
// log contract: an fsynced record is durable, an interrupted append is
// rolled back.

var journalMagic = []byte("QGJRNL\x00\x01")

const maxRecordSize = 1 << 20 // 1 MiB; a single mutation is tiny

// ErrCorruptJournal is wrapped by recovery errors that are *not* a clean
// torn tail (e.g. a bad magic header).
var ErrCorruptJournal = errors.New("store: corrupt journal")

func encodeRecord(buf []byte, seq uint64, m Mutation) []byte {
	var payload []byte
	payload = binary.AppendUvarint(payload, seq)
	payload = append(payload, byte(m.Op))
	payload = binary.AppendUvarint(payload, uint64(m.From+1))
	payload = binary.AppendUvarint(payload, uint64(m.To+1))
	payload = binary.AppendUvarint(payload, uint64(len(m.Label)))
	payload = append(payload, m.Label...)

	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, crcTable))
	return append(buf, payload...)
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func decodePayload(payload []byte) (seq uint64, m Mutation, err error) {
	rd := payload
	take := func() (uint64, bool) {
		v, n := binary.Uvarint(rd)
		if n <= 0 {
			return 0, false
		}
		rd = rd[n:]
		return v, true
	}
	seq, ok := take()
	if !ok || len(rd) == 0 {
		return 0, m, fmt.Errorf("%w: truncated payload", ErrCorruptJournal)
	}
	m.Op = MutationOp(rd[0])
	rd = rd[1:]
	from, ok := take()
	if !ok {
		return 0, m, fmt.Errorf("%w: truncated from", ErrCorruptJournal)
	}
	to, ok := take()
	if !ok {
		return 0, m, fmt.Errorf("%w: truncated to", ErrCorruptJournal)
	}
	n, ok := take()
	if !ok || uint64(len(rd)) != n {
		return 0, m, fmt.Errorf("%w: bad label length", ErrCorruptJournal)
	}
	m.From = int32(from) - 1
	m.To = int32(to) - 1
	m.Label = string(rd)
	return seq, m, nil
}

// journalWriter appends records to an open journal file.
type journalWriter struct {
	f     *os.File
	buf   []byte
	fsync bool
}

func createJournal(path string, fsync bool) (*journalWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(journalMagic); err != nil {
		f.Close()
		return nil, err
	}
	if fsync {
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return &journalWriter{f: f, fsync: fsync}, nil
}

func openJournalForAppend(path string, fsync bool) (*journalWriter, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &journalWriter{f: f, fsync: fsync}, nil
}

// append writes one batch of records and optionally fsyncs once for the
// whole batch.
func (w *journalWriter) append(seqStart uint64, muts []Mutation) error {
	w.buf = w.buf[:0]
	for i, m := range muts {
		w.buf = encodeRecord(w.buf, seqStart+uint64(i), m)
	}
	if _, err := w.f.Write(w.buf); err != nil {
		return err
	}
	if w.fsync {
		return w.f.Sync()
	}
	return nil
}

func (w *journalWriter) Close() error { return w.f.Close() }

// RecoveryInfo reports what journal replay found.
type RecoveryInfo struct {
	// Applied is the number of journal records applied on top of the
	// snapshot.
	Applied int
	// SkippedOld is the number of records with seq ≤ the snapshot's seq
	// (already folded into the snapshot by an interrupted compaction).
	SkippedOld int
	// TornTail is true when recovery stopped at a truncated or
	// CRC-corrupt tail; the valid prefix was kept.
	TornTail bool
}

// replayJournal streams records from r, calling apply for each record
// with seq > afterSeq. It stops cleanly at EOF or at the first torn/corrupt
// record (reported via RecoveryInfo.TornTail). A missing or wrong magic
// header is a hard error: that file was never a journal.
func replayJournal(r io.Reader, afterSeq uint64, apply func(seq uint64, m Mutation) error) (RecoveryInfo, error) {
	var info RecoveryInfo
	br := bufio.NewReader(r)
	magic := make([]byte, len(journalMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		if err == io.EOF {
			return info, fmt.Errorf("%w: empty journal file", ErrCorruptJournal)
		}
		return info, fmt.Errorf("%w: short magic", ErrCorruptJournal)
	}
	if string(magic) != string(journalMagic) {
		return info, fmt.Errorf("%w: bad magic", ErrCorruptJournal)
	}
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return info, nil // clean end
			}
			info.TornTail = true // partial header
			return info, nil
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length == 0 || length > maxRecordSize {
			info.TornTail = true
			return info, nil
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(br, payload); err != nil {
			info.TornTail = true
			return info, nil
		}
		if crc32.Checksum(payload, crcTable) != sum {
			info.TornTail = true
			return info, nil
		}
		seq, m, err := decodePayload(payload)
		if err != nil {
			// CRC passed but the payload is malformed: this is real
			// corruption, not a torn append.
			return info, err
		}
		if seq <= afterSeq {
			info.SkippedOld++
			continue
		}
		if err := apply(seq, m); err != nil {
			return info, err
		}
		info.Applied++
	}
}
