package store

import "fmt"

// MutationOp enumerates the graph mutations the store journals.
type MutationOp uint8

const (
	// OpAddNode appends a node; node ids are assigned densely in
	// application order, so replaying a journal reproduces the same ids.
	OpAddNode MutationOp = iota + 1
	// OpAddEdge inserts a labeled directed edge. Inserting an edge that
	// already exists is a no-op (the graph is a simple multigraph per
	// label: at most one (from, to, label) edge).
	OpAddEdge
	// OpRemoveEdge deletes a labeled directed edge; removing an absent
	// edge is a no-op.
	OpRemoveEdge
	// OpRemoveNode isolates a node: all incident edges are dropped. The
	// node slot itself remains (with its label) so that node ids stay
	// dense and stable — the store's analogue of a tombstoned row. The
	// dynamic layer and queries see an unreachable, degree-0 node.
	OpRemoveNode
)

// Mutation is one journaled graph change. Which fields are meaningful
// depends on Op: AddNode uses Label; AddEdge/RemoveEdge use From, To,
// Label; RemoveNode uses From.
type Mutation struct {
	Op   MutationOp
	From int32
	To   int32
	// Label is the node label for AddNode and the edge label for
	// AddEdge/RemoveEdge.
	Label string
}

// AddNode returns a mutation appending a node with the given label.
func AddNode(label string) Mutation { return Mutation{Op: OpAddNode, Label: label} }

// AddEdge returns a mutation inserting the edge from -> to with a label.
func AddEdge(from, to int32, label string) Mutation {
	return Mutation{Op: OpAddEdge, From: from, To: to, Label: label}
}

// RemoveEdge returns a mutation deleting the edge from -> to with a label.
func RemoveEdge(from, to int32, label string) Mutation {
	return Mutation{Op: OpRemoveEdge, From: from, To: to, Label: label}
}

// RemoveNode returns a mutation isolating node v (dropping its edges).
func RemoveNode(v int32) Mutation { return Mutation{Op: OpRemoveNode, From: v} }

func (m Mutation) String() string {
	switch m.Op {
	case OpAddNode:
		return fmt.Sprintf("addNode(%s)", m.Label)
	case OpAddEdge:
		return fmt.Sprintf("addEdge(%d -%s-> %d)", m.From, m.Label, m.To)
	case OpRemoveEdge:
		return fmt.Sprintf("removeEdge(%d -%s-> %d)", m.From, m.Label, m.To)
	case OpRemoveNode:
		return fmt.Sprintf("removeNode(%d)", m.From)
	}
	return fmt.Sprintf("mutation(op=%d)", m.Op)
}

// validate rejects malformed mutations before they reach the journal, so
// the on-disk log only ever contains applicable records.
func (m Mutation) validate(numNodes int) error {
	switch m.Op {
	case OpAddNode:
		return nil
	case OpAddEdge, OpRemoveEdge:
		if m.From < 0 || int(m.From) >= numNodes || m.To < 0 || int(m.To) >= numNodes {
			return fmt.Errorf("store: %v references a node outside [0, %d)", m, numNodes)
		}
		return nil
	case OpRemoveNode:
		if m.From < 0 || int(m.From) >= numNodes {
			return fmt.Errorf("store: %v references a node outside [0, %d)", m, numNodes)
		}
		return nil
	}
	return fmt.Errorf("store: unknown mutation op %d", m.Op)
}
