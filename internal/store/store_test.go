package store

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// edgeKey is the tests' reference edge-set model — what the store's
// in-memory state was before the versioned graph core replaced it.
type edgeKey struct {
	from, to int32
	label    string
}

func openT(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestFreshStoreEmpty(t *testing.T) {
	s := openT(t, t.TempDir())
	if s.NumNodes() != 0 || s.NumEdges() != 0 {
		t.Fatalf("fresh store has %d nodes, %d edges", s.NumNodes(), s.NumEdges())
	}
	g := s.Graph()
	if g.NumNodes() != 0 {
		t.Fatal("fresh graph not empty")
	}
}

func TestApplyAndReopen(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	first, err := s.Apply(
		AddNode("Person"), AddNode("Person"), AddNode("Product"),
		AddEdge(0, 1, "follow"), AddEdge(1, 2, "buy"),
	)
	if err != nil {
		t.Fatal(err)
	}
	if first != 0 {
		t.Errorf("first node id = %d, want 0", first)
	}
	if s.NumNodes() != 3 || s.NumEdges() != 2 {
		t.Fatalf("state = %d/%d, want 3/2", s.NumNodes(), s.NumEdges())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir)
	if s2.NumNodes() != 3 || s2.NumEdges() != 2 {
		t.Fatalf("reopened = %d/%d, want 3/2", s2.NumNodes(), s2.NumEdges())
	}
	g := s2.Graph()
	if !g.HasEdge(0, 1, g.LookupLabel("follow")) {
		t.Error("follow edge lost across reopen")
	}
	rec := s2.Recovery()
	if rec.Applied != 5 || rec.TornTail {
		t.Errorf("recovery = %+v, want Applied=5 clean", rec)
	}
}

func TestRemoveEdgeAndNode(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	if _, err := s.Apply(
		AddNode("A"), AddNode("B"), AddNode("C"),
		AddEdge(0, 1, "x"), AddEdge(1, 2, "x"), AddEdge(2, 0, "y"),
	); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply(RemoveEdge(0, 1, "x")); err != nil {
		t.Fatal(err)
	}
	if s.NumEdges() != 2 {
		t.Fatalf("edges after remove = %d, want 2", s.NumEdges())
	}
	// Removing an absent edge is a no-op.
	if _, err := s.Apply(RemoveEdge(0, 1, "x")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply(RemoveNode(2)); err != nil {
		t.Fatal(err)
	}
	if s.NumEdges() != 0 {
		t.Fatalf("edges after node isolation = %d, want 0", s.NumEdges())
	}
	if s.NumNodes() != 3 {
		t.Fatalf("node slots must remain: %d, want 3", s.NumNodes())
	}
	s.Close()

	s2 := openT(t, dir)
	if s2.NumEdges() != 0 || s2.NumNodes() != 3 {
		t.Fatalf("reopen after removals = %d/%d, want 3/0", s2.NumNodes(), s2.NumEdges())
	}
}

func TestApplyValidation(t *testing.T) {
	s := openT(t, t.TempDir())
	if _, err := s.Apply(AddEdge(0, 1, "x")); err == nil {
		t.Error("edge between missing nodes accepted")
	}
	// A batch may reference nodes it adds.
	if _, err := s.Apply(AddNode("A"), AddNode("B"), AddEdge(0, 1, "x")); err != nil {
		t.Errorf("intra-batch reference rejected: %v", err)
	}
	if _, err := s.Apply(Mutation{Op: 99}); err == nil {
		t.Error("unknown op accepted")
	}
	if _, err := s.Apply(RemoveNode(7)); err == nil {
		t.Error("RemoveNode out of range accepted")
	}
	// Failed batches must not change state.
	if s.NumNodes() != 2 || s.NumEdges() != 1 {
		t.Fatalf("state after rejected batches = %d/%d, want 2/1", s.NumNodes(), s.NumEdges())
	}
}

func TestCompactAndReopen(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	if _, err := s.Apply(AddNode("A"), AddNode("B"), AddEdge(0, 1, "x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	// Journal must be empty now; further mutations append after it.
	if _, err := s.Apply(AddEdge(1, 0, "x")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := openT(t, dir)
	if s2.NumNodes() != 2 || s2.NumEdges() != 2 {
		t.Fatalf("after compact+append reopen = %d/%d, want 2/2", s2.NumNodes(), s2.NumEdges())
	}
	rec := s2.Recovery()
	if rec.Applied != 1 {
		t.Errorf("recovery applied = %d, want 1 (only the post-compaction record)", rec.Applied)
	}
}

func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	if _, err := s.Apply(AddNode("A"), AddNode("B")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply(AddEdge(0, 1, "x")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Truncate the journal mid-record: drop 3 bytes from the end.
	jpath := filepath.Join(dir, journalName)
	b, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(jpath, b[:len(b)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir)
	rec := s2.Recovery()
	if !rec.TornTail {
		t.Error("torn tail not detected")
	}
	if s2.NumNodes() != 2 || s2.NumEdges() != 0 {
		t.Fatalf("recovered = %d/%d, want 2 nodes, torn edge dropped", s2.NumNodes(), s2.NumEdges())
	}
	// The store remains writable after tail repair, and the repaired
	// journal replays cleanly next time.
	if _, err := s2.Apply(AddEdge(1, 0, "y")); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3 := openT(t, dir)
	if s3.Recovery().TornTail {
		t.Error("tail not repaired")
	}
	if s3.NumEdges() != 1 {
		t.Errorf("edges = %d, want 1", s3.NumEdges())
	}
}

func TestCorruptCRCTruncatesSuffix(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	if _, err := s.Apply(AddNode("A")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply(AddNode("B")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	jpath := filepath.Join(dir, journalName)
	b, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff // corrupt the last record's payload
	if err := os.WriteFile(jpath, b, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir)
	if !s2.Recovery().TornTail {
		t.Error("CRC corruption not detected")
	}
	if s2.NumNodes() != 1 {
		t.Errorf("nodes = %d, want 1 (valid prefix only)", s2.NumNodes())
	}
}

func TestBadMagicIsHardError(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	s.Apply(AddNode("A"))
	s.Close()

	jpath := filepath.Join(dir, journalName)
	if err := os.WriteFile(jpath, []byte("not a journal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestMissingSnapshotIsHardError(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	s.Apply(AddNode("A"))
	s.Close()
	// Remove the snapshot the manifest names.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".qg" {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("missing snapshot accepted")
	}
}

func TestImportGraph(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	g := gen.Social(gen.DefaultSocial(80, 3))
	if err := s.ImportGraph(g); err != nil {
		t.Fatal(err)
	}
	if s.NumNodes() != g.NumNodes() || s.NumEdges() != g.NumEdges() {
		t.Fatalf("imported = %d/%d, want %d/%d", s.NumNodes(), s.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	s.Close()
	s2 := openT(t, dir)
	if !graphsEqual(s2.Graph(), g) {
		t.Fatal("imported graph differs after reopen")
	}
	if s2.Recovery().Applied != 0 {
		t.Error("import should leave an empty journal")
	}
}

func TestGraphViewImmutable(t *testing.T) {
	s := openT(t, t.TempDir())
	s.Apply(AddNode("A"), AddNode("B"), AddEdge(0, 1, "x"))
	g1 := s.Graph()
	s.Apply(AddEdge(1, 0, "x"))
	g2 := s.Graph()
	if g1.NumEdges() != 1 {
		t.Errorf("old view mutated: %d edges", g1.NumEdges())
	}
	if g2.NumEdges() != 2 {
		t.Errorf("new view = %d edges, want 2", g2.NumEdges())
	}
	if g1 == g2 {
		t.Error("Apply must replace the view")
	}
}

func TestClosedStoreRejectsWrites(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	s.Close()
	if _, err := s.Apply(AddNode("A")); err == nil {
		t.Error("Apply after Close accepted")
	}
	if err := s.Compact(); err == nil {
		t.Error("Compact after Close accepted")
	}
	if err := s.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
}

// Randomized crash-consistency: apply a random mutation stream with
// interspersed compactions and reopens; the store must always equal an
// in-memory reference model.
func TestRandomizedModelEquivalence(t *testing.T) {
	dir := t.TempDir()
	r := rand.New(rand.NewSource(42))

	type ref struct {
		labels []string
		edges  map[edgeKey]bool
	}
	model := ref{edges: map[edgeKey]bool{}}
	s := openT(t, dir)

	labels := []string{"A", "B", "C"}
	elabels := []string{"x", "y"}
	for step := 0; step < 400; step++ {
		switch op := r.Intn(10); {
		case op < 4 || len(model.labels) < 2: // add node
			l := labels[r.Intn(len(labels))]
			if _, err := s.Apply(AddNode(l)); err != nil {
				t.Fatal(err)
			}
			model.labels = append(model.labels, l)
		case op < 7: // add edge
			f := int32(r.Intn(len(model.labels)))
			to := int32(r.Intn(len(model.labels)))
			l := elabels[r.Intn(len(elabels))]
			if _, err := s.Apply(AddEdge(f, to, l)); err != nil {
				t.Fatal(err)
			}
			model.edges[edgeKey{f, to, l}] = true
		case op < 8: // remove edge
			f := int32(r.Intn(len(model.labels)))
			to := int32(r.Intn(len(model.labels)))
			l := elabels[r.Intn(len(elabels))]
			if _, err := s.Apply(RemoveEdge(f, to, l)); err != nil {
				t.Fatal(err)
			}
			delete(model.edges, edgeKey{f, to, l})
		case op < 9: // remove node (isolate)
			v := int32(r.Intn(len(model.labels)))
			if _, err := s.Apply(RemoveNode(v)); err != nil {
				t.Fatal(err)
			}
			for k := range model.edges {
				if k.from == v || k.to == v {
					delete(model.edges, k)
				}
			}
		default: // compact or reopen
			if r.Intn(2) == 0 {
				if err := s.Compact(); err != nil {
					t.Fatal(err)
				}
			} else {
				s.Close()
				s = openT(t, dir)
			}
		}

		if step%50 == 0 {
			if s.NumNodes() != len(model.labels) || s.NumEdges() != len(model.edges) {
				t.Fatalf("step %d: store %d/%d, model %d/%d",
					step, s.NumNodes(), s.NumEdges(), len(model.labels), len(model.edges))
			}
		}
	}
	// Final deep check through the graph view.
	g := s.Graph()
	if g.NumNodes() != len(model.labels) || g.NumEdges() != len(model.edges) {
		t.Fatalf("final: store %d/%d, model %d/%d", g.NumNodes(), g.NumEdges(), len(model.labels), len(model.edges))
	}
	for k := range model.edges {
		if !g.HasEdge(graph.NodeID(k.from), graph.NodeID(k.to), g.LookupLabel(k.label)) {
			t.Fatalf("edge %v missing from store", k)
		}
	}
}

func TestFsyncOptionWorks(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply(AddNode("A"), AddNode("B"), AddEdge(0, 1, "x")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := openT(t, dir)
	if s2.NumNodes() != 2 || s2.NumEdges() != 1 {
		t.Fatalf("fsync store reopened = %d/%d", s2.NumNodes(), s2.NumEdges())
	}
}

func graphsEqual(a, b *graph.Graph) bool {
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for vi := 0; vi < a.NumNodes(); vi++ {
		v := graph.NodeID(vi)
		if a.NodeLabelName(v) != b.NodeLabelName(v) {
			return false
		}
		ae, be := a.Out(v), b.Out(v)
		if len(ae) != len(be) {
			return false
		}
		// Adjacency order depends on interner id assignment, which is not
		// preserved across serialization; compare as sets of (to, label).
		names := func(g *graph.Graph, es []graph.Edge) map[[2]interface{}]bool {
			out := make(map[[2]interface{}]bool, len(es))
			for _, e := range es {
				out[[2]interface{}{e.To, g.LabelName(e.Label)}] = true
			}
			return out
		}
		if !reflect.DeepEqual(names(a, ae), names(b, be)) {
			return false
		}
	}
	return true
}
