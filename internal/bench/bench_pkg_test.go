package bench

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
)

func TestAllExperimentsDefined(t *testing.T) {
	exps := All()
	if len(exps) != 15 {
		t.Fatalf("experiments = %d, want 15 (12 figures + Exp-3 + 2 extension ablations)", len(exps))
	}
	for i, e := range exps {
		if e.ID != i+1 {
			t.Errorf("experiment %d has id %d", i, e.ID)
		}
		if e.Run == nil || e.Figure == "" || e.Title == "" {
			t.Errorf("experiment %d incomplete: %+v", e.ID, e)
		}
	}
	if _, ok := ByID(5); !ok {
		t.Error("ByID(5) not found")
	}
	if _, ok := ByID(99); ok {
		t.Error("ByID(99) found a ghost")
	}
}

// tiny is a scale small enough that every experiment finishes in well
// under a second, used to smoke-test the harness end to end.
func tiny() Scale {
	return Scale{
		SocialPersons:    300,
		KnowledgePersons: 400,
		SmallWorldNodes:  300,
		SmallWorldEdges:  600,
		Workers:          []int{1, 2},
		Threads:          2,
		PatternsPerPoint: 1,
		Seed:             1,
	}
}

func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test skipped in -short mode")
	}
	sc := tiny()
	for _, e := range All() {
		var buf bytes.Buffer
		if err := e.Run(sc, &buf); err != nil {
			t.Fatalf("exp %d (%s): %v", e.ID, e.Figure, err)
		}
		lines := 0
		scanner := bufio.NewScanner(&buf)
		for scanner.Scan() {
			line := scanner.Text()
			if !strings.HasPrefix(line, "exp ") {
				t.Errorf("exp %d: malformed row %q", e.ID, line)
			}
			lines++
		}
		if e.ID != 13 && lines == 0 {
			t.Errorf("exp %d produced no rows", e.ID)
		}
	}
}
