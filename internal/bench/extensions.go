package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/dynamic"
	"repro/internal/gen"
	"repro/internal/match"
	"repro/internal/plan"
	"repro/internal/stats"
	"repro/internal/store"
)

// Experiments 14 and 15 are not paper figures: they measure the two
// extension subsystems (planner, dynamic maintenance) with the same row
// format as the paper experiments, so qgpbench serves both.

// exp14 — planner ablation: QMatch with the default breadth-first order
// vs the statistics-driven order, per pattern size.
func exp14(sc Scale, w io.Writer) error {
	g := gen.Social(gen.DefaultSocial(sc.SocialPersons, sc.Seed))
	st := stats.Collect(g)
	orderBy := plan.OrderFunc(g, st)

	for _, shape := range []struct{ nodes, edges int }{{4, 5}, {5, 6}, {6, 7}} {
		patterns := patternsWithHops(g, gen.PatternConfig{
			Nodes: shape.nodes, Edges: shape.edges, RatioBP: 3000, Seed: sc.Seed + int64(shape.nodes),
		}, sc.PatternsPerPoint, 3)
		if len(patterns) == 0 {
			continue
		}
		x := fmt.Sprintf("(%d,%d)", shape.nodes, shape.edges)
		for _, series := range []struct {
			name string
			opts *match.Options
		}{
			{"default", nil},
			{"planned", &match.Options{OrderBy: orderBy}},
		} {
			start := time.Now()
			var work int64
			matches := 0
			for _, p := range patterns {
				res, err := match.QMatch(g, p, series.opts)
				if err != nil {
					return err
				}
				work += res.Metrics.Extensions + int64(res.Metrics.Verifications)
				matches += len(res.Matches)
			}
			row(w, 14, x, series.name, time.Since(start), work, work, matches)
		}
	}
	return nil
}

// exp15 — dynamic maintenance: answers kept live over a stream of edge
// insertions, incrementally (Matcher) vs full recomputation, per batch
// count.
func exp15(sc Scale, w io.Writer) error {
	g := gen.Social(gen.DefaultSocial(sc.SocialPersons/2, sc.Seed))
	patterns := patternsWithHops(g, gen.PatternConfig{
		Nodes: 3, Edges: 3, RatioBP: 3000, Seed: sc.Seed + 99,
	}, 1, 2)
	if len(patterns) == 0 {
		return fmt.Errorf("exp15: no feasible pattern")
	}
	q := patterns[0]

	for _, batches := range []int{5, 10, 20} {
		ups := make([][]dynamic.Update, batches)
		for i := range ups {
			f := int32((i * 37) % g.NumNodes())
			to := int32((i*91 + 13) % g.NumNodes())
			ups[i] = []dynamic.Update{store.AddEdge(f, to, "follow")}
		}
		x := fmt.Sprintf("%d", batches)

		start := time.Now()
		m, err := dynamic.NewMatcher(g, q)
		if err != nil {
			return err
		}
		verified := 0
		for _, u := range ups {
			d, err := m.Apply(u)
			if err != nil {
				return err
			}
			verified += d.Affected
		}
		row(w, 15, x, "increment", time.Since(start), int64(verified), int64(verified), len(m.Answers()))

		start = time.Now()
		cur := g
		recomputeWork := 0
		var finalMatches int
		for _, u := range ups {
			ng, _, err := dynamic.Apply(cur, u)
			if err != nil {
				return err
			}
			cur = ng
			res, err := match.QMatch(cur, q, nil)
			if err != nil {
				return err
			}
			recomputeWork += res.Metrics.FocusCandidates
			finalMatches = len(res.Matches)
		}
		row(w, 15, x, "recompute", time.Since(start), int64(recomputeWork), int64(recomputeWork), finalMatches)
	}
	return nil
}
