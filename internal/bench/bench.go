// Package bench defines the experiment harness reproducing every figure of
// the paper's evaluation (§7, Figures 8(a)–8(l) plus Exp-3). Each
// experiment generates its seeded workload, runs the algorithms the figure
// compares, and prints one row per (x-value, series) in a fixed format:
//
//	exp <id>  x=<value>  series=<algo>  wall_ms=<t> sim_work=<w> total_work=<w> matches=<m>
//
// The same experiments back both cmd/qgpbench (full scale) and the
// testing.B benchmarks in bench_test.go (reduced scale).
package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/parallel"
	"repro/internal/partition"
)

// Scale sizes the workloads. Full() mirrors the paper's setup (scaled to a
// laptop); Small() keeps every experiment in the seconds range for
// testing.B runs.
type Scale struct {
	SocialPersons    int
	KnowledgePersons int
	SmallWorldNodes  int // base size; E12 sweeps multiples
	SmallWorldEdges  int
	Workers          []int // the paper sweeps 4..20; we sweep within the machine
	Threads          int   // b, intra-fragment threads
	PatternsPerPoint int   // patterns averaged per data point
	Seed             int64
}

// Full returns the laptop-scale counterpart of the paper's configuration.
func Full() Scale {
	return Scale{
		SocialPersons:    12000,
		KnowledgePersons: 15000,
		SmallWorldNodes:  10000,
		SmallWorldEdges:  20000,
		Workers:          []int{1, 2, 4, 8, 16},
		Threads:          4,
		PatternsPerPoint: 3,
		Seed:             1,
	}
}

// Small returns a reduced scale for unit benchmarks.
func Small() Scale {
	return Scale{
		SocialPersons:    1500,
		KnowledgePersons: 2000,
		SmallWorldNodes:  1500,
		SmallWorldEdges:  3000,
		Workers:          []int{1, 2, 4},
		Threads:          2,
		PatternsPerPoint: 2,
		Seed:             1,
	}
}

// Experiment is one reproducible figure.
type Experiment struct {
	ID     int
	Figure string
	Title  string
	Run    func(sc Scale, w io.Writer) error
}

// All returns the experiments in figure order.
func All() []Experiment {
	return []Experiment{
		{1, "Fig 8(a)", "QMatch vs QMatchn vs Enum response time", exp1},
		{2, "Fig 8(b)", "parallel matching varying n (social)", exp2},
		{3, "Fig 8(c)", "parallel matching varying n (knowledge)", exp3},
		{4, "Fig 8(d)", "DPar varying n (social)", exp4},
		{5, "Fig 8(e)", "DPar varying n (knowledge)", exp5},
		{6, "Fig 8(f)", "varying |Q| (social)", exp6},
		{7, "Fig 8(g)", "varying |Q| (knowledge)", exp7},
		{8, "Fig 8(h)", "varying |E-Q| (social)", exp8},
		{9, "Fig 8(i)", "varying |E-Q| (knowledge)", exp9},
		{10, "Fig 8(j)", "varying pa (social)", exp10},
		{11, "Fig 8(k)", "varying pa (knowledge)", exp11},
		{12, "Fig 8(l)", "varying |G| (synthetic)", exp12},
		{13, "Exp-3", "QGAR mining effectiveness", exp13},
		{14, "Ext-1", "planner ablation: default vs statistics-driven order", exp14},
		{15, "Ext-2", "dynamic maintenance: incremental vs recompute", exp15},
	}
}

// ByID returns the experiment with the given id.
func ByID(id int) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// row prints one measurement row.
func row(w io.Writer, exp int, x, series string, wall time.Duration, sim, total int64, matches int) {
	fmt.Fprintf(w, "exp %-2d  x=%-12s series=%-9s wall_ms=%-9.2f sim_work=%-11d total_work=%-11d matches=%d\n",
		exp, x, series, float64(wall.Microseconds())/1000, sim, total, matches)
}

// sequentialAlgos are the Exp-1 contestants.
var sequentialAlgos = []struct {
	name string
	run  func(*graph.Graph, *core.Pattern, *match.Options) (*match.Result, error)
}{
	{"QMatch", match.QMatch},
	{"QMatchn", match.QMatchN},
	{"Enum", match.Enum},
}

// parallelAlgos are the Exp-2 contestants; threads applies to the engines
// that use intra-fragment parallelism.
type parallelAlgo struct {
	name    string
	engine  parallel.Engine
	threads func(b int) int
}

func parallelAlgos() []parallelAlgo {
	return []parallelAlgo{
		{"PQMatch", parallel.EngineQMatch, func(b int) int { return b }},
		{"PQMatchs", parallel.EngineQMatch, func(int) int { return 1 }},
		{"PQMatchn", parallel.EngineQMatchN, func(b int) int { return b }},
		{"PEnum", parallel.EngineEnum, func(int) int { return 1 }},
	}
}

// patternsWithHops generates patterns whose RequiredHops fit a partition
// of radius d (so parallel evaluation is exact), preferring patterns with
// non-empty answers: a benchmark over unsatisfiable patterns measures
// nothing. If satisfiable patterns are scarce it falls back to whatever
// fits the radius.
func patternsWithHops(g *graph.Graph, cfg gen.PatternConfig, count, maxHops int) []*core.Pattern {
	return patternsFrom(gen.Pattern, g, cfg, count, maxHops)
}

// sampledPatternsWithHops is patternsWithHops over the subgraph-sampling
// generator, used for the label-rich small-world synthetics.
func sampledPatternsWithHops(g *graph.Graph, cfg gen.PatternConfig, count, maxHops int) []*core.Pattern {
	return patternsFrom(gen.SampledPattern, g, cfg, count, maxHops)
}

func patternsFrom(generate func(*graph.Graph, gen.PatternConfig) *core.Pattern, g *graph.Graph, cfg gen.PatternConfig, count, maxHops int) []*core.Pattern {
	var matched, fallback []*core.Pattern
	seed := cfg.Seed
	for attempts := 0; len(matched) < count && attempts < 60; attempts++ {
		c := cfg
		c.Seed = seed
		seed += 104729
		p := generate(g, c)
		if parallel.RequiredHops(p) > maxHops {
			continue
		}
		// Probe before the full evaluation: the sample-projected Enum cost
		// upper-bounds QMatch too, so this also guards the satisfiability
		// check below against combinatorial blowups.
		if !enumFeasible(g, p, 15*time.Second) {
			continue
		}
		res, err := match.QMatch(g, p, nil)
		if err != nil {
			continue
		}
		if len(res.Matches) > 0 {
			matched = append(matched, p)
		} else {
			fallback = append(fallback, p)
		}
	}
	for len(matched) < count && len(fallback) > 0 {
		matched = append(matched, fallback[0])
		fallback = fallback[1:]
	}
	return matched
}

// enumFeasible estimates the enumerate-then-verify cost of a pattern by
// probing a sample of focus candidates and rejects patterns whose
// projected full Enum run exceeds the budget. Occasional hub-driven
// isomorphism explosions would otherwise dominate every sweep that
// includes the Enum baselines; the paper's workloads (mined from real
// graphs with a production-grade engine) sit in the feasible regime, so
// this keeps the comparison in the same regime.
func enumFeasible(g *graph.Graph, p *core.Pattern, budget time.Duration) bool {
	cands := g.NodesByLabelName(p.Nodes[p.Focus].Label)
	if len(cands) == 0 {
		return true
	}
	k := 16
	if len(cands) < k {
		k = len(cands)
	}
	sample := make([]graph.NodeID, 0, k)
	step := len(cands) / k
	if step == 0 {
		step = 1
	}
	for i := 0; i < k; i++ {
		sample = append(sample, cands[i*step])
	}
	start := time.Now()
	// The probe itself is hard-capped: a single hub candidate can explode.
	_, err := match.Enum(g, p, &match.Options{FocusRestrict: sample, ExtensionBudget: 30_000_000})
	if err != nil {
		return false // budget blown or otherwise unevaluable: infeasible
	}
	projected := time.Duration(int64(time.Since(start)) * int64(len(cands)) / int64(k))
	return projected <= budget
}

// cluster builds a validated d-hop cluster.
func cluster(g *graph.Graph, workers, d int) (*parallel.Cluster, error) {
	part, err := partition.DPar(g, partition.Config{Workers: workers, D: d})
	if err != nil {
		return nil, err
	}
	return parallel.NewCluster(part), nil
}
