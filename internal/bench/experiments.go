package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/rules"
)

// maxPatternHops caps the radius of generated patterns: the paper cites
// the finding that 99% of real-world queries have radius ≤ 2, and fixes
// d = 2 for its parallel experiments.
const maxPatternHops = 2

// exp1 — Figure 8(a): sequential response time of QMatch vs QMatchn vs
// Enum over a knowledge graph ("yago2"), the social graph with pattern
// sizes (5,7) and (6,8) ("pokec5"/"pokec6"), and a small-world synthetic.
func exp1(sc Scale, w io.Writer) error {
	type dataset struct {
		name  string
		g     *graph.Graph
		nodes int
		edges int
	}
	social := gen.Social(gen.DefaultSocial(sc.SocialPersons, sc.Seed))
	datasets := []dataset{
		{"yago2", gen.Knowledge(gen.DefaultKnowledge(sc.KnowledgePersons, sc.Seed)), 5, 7},
		{"pokec5", social, 5, 7},
		{"pokec6", social, 6, 8},
		{"synthetic", gen.SmallWorld(gen.SmallWorldConfig{
			Nodes: 2 * sc.SmallWorldNodes, Edges: 2 * sc.SmallWorldEdges, Seed: sc.Seed}), 4, 5},
	}
	for _, ds := range datasets {
		generate := patternsWithHops
		if ds.name == "synthetic" {
			generate = sampledPatternsWithHops
		}
		patterns := generate(ds.g, gen.PatternConfig{
			Nodes: ds.nodes, Edges: ds.edges, RatioBP: 3000, NegEdges: 1, Seed: sc.Seed,
		}, sc.PatternsPerPoint, maxPatternHops)
		for _, algo := range sequentialAlgos {
			start := time.Now()
			var total int64
			matches := 0
			for _, q := range patterns {
				res, err := algo.run(ds.g, q, nil)
				if err != nil {
					return fmt.Errorf("exp1 %s/%s: %w", ds.name, algo.name, err)
				}
				total += res.Metrics.Extensions + int64(res.Metrics.Verifications)
				matches += len(res.Matches)
			}
			row(w, 1, ds.name, algo.name, time.Since(start), total, total, matches)
		}
	}
	return nil
}

// varyN runs the Figure 8(b)/8(c) sweep on one graph.
func varyN(exp int, sc Scale, w io.Writer, g *graph.Graph, nodes, edges int) error {
	patterns := patternsWithHops(g, gen.PatternConfig{
		Nodes: nodes, Edges: edges, RatioBP: 3000, NegEdges: 1, Seed: sc.Seed,
	}, sc.PatternsPerPoint, maxPatternHops)
	for _, n := range sc.Workers {
		c, err := cluster(g, n, maxPatternHops)
		if err != nil {
			return err
		}
		for _, algo := range parallelAlgos() {
			start := time.Now()
			var sim, total int64
			matches := 0
			for _, q := range patterns {
				res, err := parallel.Run(c, q, algo.engine, algo.threads(sc.Threads))
				if err != nil {
					return fmt.Errorf("exp%d n=%d %s: %w", exp, n, algo.name, err)
				}
				sim += res.SimWork
				total += res.TotalWork
				matches += len(res.Matches)
			}
			row(w, exp, fmt.Sprintf("n=%d", n), algo.name, time.Since(start), sim, total, matches)
		}
	}
	return nil
}

// exp2 — Figure 8(b): parallel matching varying n on the social graph.
func exp2(sc Scale, w io.Writer) error {
	return varyN(2, sc, w, gen.Social(gen.DefaultSocial(sc.SocialPersons, sc.Seed)), 6, 8)
}

// exp3 — Figure 8(c): parallel matching varying n on the knowledge graph.
func exp3(sc Scale, w io.Writer) error {
	return varyN(3, sc, w, gen.Knowledge(gen.DefaultKnowledge(sc.KnowledgePersons, sc.Seed)), 5, 7)
}

// varyNDPar runs the Figure 8(d)/8(e) sweep: DPar cost and balance. Like
// the paper, the d=3 partition is computed incrementally from the d=2 one
// (Extend), not from scratch.
func varyNDPar(exp int, sc Scale, w io.Writer, g *graph.Graph) error {
	for _, n := range sc.Workers {
		start := time.Now()
		p2, err := partition.DPar(g, partition.Config{Workers: n, D: 2})
		if err != nil {
			return err
		}
		row(w, exp, fmt.Sprintf("n=%d", n), "d=2",
			time.Since(start), int64(p2.MaxWork()), int64(p2.TotalWork()), int(p2.Skew()*100))

		start = time.Now()
		p3, err := p2.Extend(3)
		if err != nil {
			return err
		}
		row(w, exp, fmt.Sprintf("n=%d", n), "d=3",
			time.Since(start), int64(p3.MaxWork()), int64(p3.TotalWork()), int(p3.Skew()*100))
	}
	return nil
}

// exp4 — Figure 8(d): DPar varying n on the social graph. The matches
// column reports the balance skew in percent (paper: ≥ 80 at n = 8).
func exp4(sc Scale, w io.Writer) error {
	return varyNDPar(4, sc, w, gen.Social(gen.DefaultSocial(sc.SocialPersons, sc.Seed)))
}

// exp5 — Figure 8(e): DPar varying n on the knowledge graph.
func exp5(sc Scale, w io.Writer) error {
	return varyNDPar(5, sc, w, gen.Knowledge(gen.DefaultKnowledge(sc.KnowledgePersons, sc.Seed)))
}

// varyQ runs the Figure 8(f)/8(g) sweep over pattern sizes.
func varyQ(exp int, sc Scale, w io.Writer, g *graph.Graph, sizes [][2]int) error {
	n := sc.Workers[len(sc.Workers)-1]
	c, err := cluster(g, n, maxPatternHops)
	if err != nil {
		return err
	}
	for _, size := range sizes {
		patterns := patternsWithHops(g, gen.PatternConfig{
			Nodes: size[0], Edges: size[1], RatioBP: 3000, NegEdges: 1, Seed: sc.Seed,
		}, sc.PatternsPerPoint, maxPatternHops)
		x := fmt.Sprintf("(%d,%d)", size[0], size[1])
		for _, algo := range parallelAlgos() {
			start := time.Now()
			var sim, total int64
			matches := 0
			for _, q := range patterns {
				res, err := parallel.Run(c, q, algo.engine, algo.threads(sc.Threads))
				if err != nil {
					return fmt.Errorf("exp%d %s %s: %w", exp, x, algo.name, err)
				}
				sim += res.SimWork
				total += res.TotalWork
				matches += len(res.Matches)
			}
			row(w, exp, x, algo.name, time.Since(start), sim, total, matches)
		}
	}
	return nil
}

// exp6 — Figure 8(f): varying |Q| from (4,6) to (8,10) on the social graph.
func exp6(sc Scale, w io.Writer) error {
	return varyQ(6, sc, w, gen.Social(gen.DefaultSocial(sc.SocialPersons, sc.Seed)),
		[][2]int{{4, 6}, {5, 7}, {6, 8}, {7, 9}, {8, 10}})
}

// exp7 — Figure 8(g): varying |Q| from (3,5) to (7,9) on the knowledge
// graph.
func exp7(sc Scale, w io.Writer) error {
	return varyQ(7, sc, w, gen.Knowledge(gen.DefaultKnowledge(sc.KnowledgePersons, sc.Seed)),
		[][2]int{{3, 5}, {4, 6}, {5, 7}, {6, 8}, {7, 9}})
}

// varyNeg runs the Figure 8(h)/8(i) sweep over the number of negated
// edges, the IncQMatch ablation.
func varyNeg(exp int, sc Scale, w io.Writer, g *graph.Graph, nodes, edges int) error {
	n := sc.Workers[len(sc.Workers)-1]
	c, err := cluster(g, n, maxPatternHops)
	if err != nil {
		return err
	}
	for neg := 0; neg <= 4; neg++ {
		patterns := patternsWithHops(g, gen.PatternConfig{
			Nodes: nodes, Edges: edges, RatioBP: 3000, NegEdges: neg, Seed: sc.Seed,
		}, sc.PatternsPerPoint, maxPatternHops)
		x := fmt.Sprintf("neg=%d", neg)
		for _, algo := range parallelAlgos() {
			start := time.Now()
			var sim, total int64
			matches := 0
			for _, q := range patterns {
				res, err := parallel.Run(c, q, algo.engine, algo.threads(sc.Threads))
				if err != nil {
					return fmt.Errorf("exp%d %s %s: %w", exp, x, algo.name, err)
				}
				sim += res.SimWork
				total += res.TotalWork
				matches += len(res.Matches)
			}
			row(w, exp, x, algo.name, time.Since(start), sim, total, matches)
		}
	}
	return nil
}

// exp8 — Figure 8(h): varying |E−Q| on the social graph.
func exp8(sc Scale, w io.Writer) error {
	return varyNeg(8, sc, w, gen.Social(gen.DefaultSocial(sc.SocialPersons, sc.Seed)), 6, 8)
}

// exp9 — Figure 8(i): varying |E−Q| on the knowledge graph.
func exp9(sc Scale, w io.Writer) error {
	return varyNeg(9, sc, w, gen.Knowledge(gen.DefaultKnowledge(sc.KnowledgePersons, sc.Seed)), 5, 7)
}

// varyP runs the Figure 8(j)/8(k) sweep over the ratio aggregate pa.
func varyP(exp int, sc Scale, w io.Writer, g *graph.Graph, nodes, edges int) error {
	n := sc.Workers[len(sc.Workers)-1]
	c, err := cluster(g, n, maxPatternHops)
	if err != nil {
		return err
	}
	for _, pa := range []int{1000, 3000, 5000, 7000, 9000} {
		patterns := patternsWithHops(g, gen.PatternConfig{
			Nodes: nodes, Edges: edges, RatioBP: pa, NegEdges: 1, Seed: sc.Seed,
		}, sc.PatternsPerPoint, maxPatternHops)
		x := fmt.Sprintf("p=%d%%", pa/100)
		for _, algo := range parallelAlgos() {
			start := time.Now()
			var sim, total int64
			matches := 0
			for _, q := range patterns {
				res, err := parallel.Run(c, q, algo.engine, algo.threads(sc.Threads))
				if err != nil {
					return fmt.Errorf("exp%d %s %s: %w", exp, x, algo.name, err)
				}
				sim += res.SimWork
				total += res.TotalWork
				matches += len(res.Matches)
			}
			row(w, exp, x, algo.name, time.Since(start), sim, total, matches)
		}
	}
	return nil
}

// exp10 — Figure 8(j): varying pa on the social graph.
func exp10(sc Scale, w io.Writer) error {
	return varyP(10, sc, w, gen.Social(gen.DefaultSocial(sc.SocialPersons, sc.Seed)), 6, 8)
}

// exp11 — Figure 8(k): varying pa on the knowledge graph.
func exp11(sc Scale, w io.Writer) error {
	return varyP(11, sc, w, gen.Knowledge(gen.DefaultKnowledge(sc.KnowledgePersons, sc.Seed)), 5, 7)
}

// exp12 — Figure 8(l): varying |G| on small-world synthetics with 4
// workers.
func exp12(sc Scale, w io.Writer) error {
	for mult := 1; mult <= 5; mult++ {
		g := gen.SmallWorld(gen.SmallWorldConfig{
			Nodes: mult * sc.SmallWorldNodes,
			Edges: mult * sc.SmallWorldEdges,
			Seed:  sc.Seed,
		})
		patterns := sampledPatternsWithHops(g, gen.PatternConfig{
			Nodes: 4, Edges: 5, RatioBP: 3000, NegEdges: 1, Seed: sc.Seed,
		}, sc.PatternsPerPoint, maxPatternHops)
		c, err := cluster(g, 4, maxPatternHops)
		if err != nil {
			return err
		}
		x := fmt.Sprintf("|G|=%dk", (g.NumNodes()+g.NumEdges())/1000)
		for _, algo := range parallelAlgos() {
			start := time.Now()
			var sim, total int64
			matches := 0
			for _, q := range patterns {
				res, err := parallel.Run(c, q, algo.engine, algo.threads(sc.Threads))
				if err != nil {
					return fmt.Errorf("exp12 %s %s: %w", x, algo.name, err)
				}
				sim += res.SimWork
				total += res.TotalWork
				matches += len(res.Matches)
			}
			row(w, 12, x, algo.name, time.Since(start), sim, total, matches)
		}
	}
	return nil
}

// exp13 — Exp-3: QGAR mining effectiveness on the social and knowledge
// graphs, with an R7-style handcrafted rule on the knowledge graph.
func exp13(sc Scale, w io.Writer) error {
	social := gen.Social(gen.DefaultSocial(sc.SocialPersons, sc.Seed))
	mined, err := rules.Mine(social, rules.MineConfig{
		MinSupport: 10, MinConfidence: 0.5, MaxRules: 5, StartRatioBP: 3000,
	})
	if err != nil {
		return err
	}
	for _, mr := range mined {
		fmt.Fprintf(w, "exp 13  graph=social rule=%-40s supp=%-6d conf=%.2f\n",
			mr.Rule.Name, mr.Eval.Support, mr.Eval.Confidence)
	}

	knowledge := gen.Knowledge(gen.DefaultKnowledge(sc.KnowledgePersons, sc.Seed))
	r7, err := r7Rule()
	if err != nil {
		return err
	}
	ev, err := r7.Evaluate(knowledge)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "exp 13  graph=knowledge rule=%-40s supp=%-6d conf=%.2f\n",
		r7.Name, ev.Support, ev.Confidence)
	return nil
}

// r7Rule builds the R7-style rule of Figure 9: professors who won ≥ 2
// prizes and advised ≥ 4 students are likely to have a foreign student —
// adapted to our generator's vocabulary: they likely advised someone who
// also won a prize.
func r7Rule() (*rules.QGAR, error) {
	q1 := core.NewPattern()
	q1.AddNode("xo", "person")
	q1.AddNode("prof", "prof")
	q1.AddNode("prize", "prize")
	q1.AddNode("z", "person")
	q1.AddEdge("xo", "prof", "is_a", core.Exists())
	q1.AddEdge("xo", "prize", "won", core.Exists())
	q1.AddEdge("xo", "z", "advisor", core.Count(core.GE, 2))

	q2 := core.NewPattern()
	q2.AddNode("xo", "person")
	q2.AddNode("w", "person")
	q2.AddNode("phd", "PhD")
	q2.AddEdge("xo", "w", "advisor", core.Exists())
	q2.AddEdge("w", "phd", "is_a", core.Exists())

	return rules.New("R7(prof∧prize∧≥2 students⇒PhD student)", q1, q2)
}
