package tenant

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/server"
)

func TestNameEncoding(t *testing.T) {
	cases := []struct{ tenant, watch string }{
		{"alice", "w"},
		{"s-12", "orders.books"},
		{"a b", "c d"},
	}
	for _, c := range cases {
		tn, w := SplitName(GlobalName(c.tenant, c.watch))
		if tn != c.tenant || w != c.watch {
			t.Fatalf("round trip (%q,%q) -> (%q,%q)", c.tenant, c.watch, tn, w)
		}
	}
	// Bare legacy names decode as the "" tenant.
	if tn, w := SplitName("legacy"); tn != "" || w != "legacy" {
		t.Fatalf("legacy split: (%q,%q)", tn, w)
	}
	// A watch containing what looks like another encoding still splits at
	// the FIRST separator, so tenant names can never be forged by watches.
	tn, w := SplitName(GlobalName("a", "b\x1fc"))
	if tn != "a" || w != "b\x1fc" {
		t.Fatalf("nested separator split: (%q,%q)", tn, w)
	}
}

func TestNameValidation(t *testing.T) {
	m := NewManager(Config{}, &fakeRegistrar{})
	// "" is not in this list: an empty Attach name means "generate one".
	for _, bad := range []string{"a\x1fb", "a\nb", "ctl\x01", string(make([]byte, 129))} {
		if _, err := m.Attach(bad); err == nil {
			t.Fatalf("Attach(%q) accepted an invalid name", bad)
		}
	}
	name, err := m.Attach("ok-name.1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Watch(name, "bad\x1fwatch", testPattern(t)); err == nil {
		t.Fatal("Watch accepted a name containing the separator")
	}
}

// fakeRegistrar records global-name registrations without a cluster.
type fakeRegistrar struct {
	mu        sync.Mutex
	watches   map[string]string
	failWatch error
	unwatched []string
}

func (r *fakeRegistrar) Watch(name string, q *core.Pattern) ([]graph.NodeID, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.failWatch != nil {
		return nil, r.failWatch
	}
	if r.watches == nil {
		r.watches = make(map[string]string)
	}
	if _, dup := r.watches[name]; dup {
		return nil, fmt.Errorf("duplicate global watch %q", name)
	}
	r.watches[name] = q.String()
	return []graph.NodeID{1, 2}, nil
}

func (r *fakeRegistrar) Unwatch(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.watches, name)
	r.unwatched = append(r.unwatched, name)
	return nil
}

func (r *fakeRegistrar) names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.watches))
	for n := range r.watches {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func testPattern(t *testing.T) *core.Pattern {
	t.Helper()
	q, err := core.Parse("qgp\nn xo person *\nn z person\ne xo z follow >=2\n")
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestNamespacesAreDisjoint(t *testing.T) {
	reg := &fakeRegistrar{}
	m := NewManager(Config{}, reg)
	for _, tn := range []string{"alice", "bob"} {
		if _, err := m.Attach(tn); err != nil {
			t.Fatal(err)
		}
		// Both tenants use the SAME local watch name; the encoding keeps
		// them apart on the shared coordinator.
		if _, err := m.Watch(tn, "w", testPattern(t)); err != nil {
			t.Fatalf("%s: %v", tn, err)
		}
	}
	want := []string{GlobalName("alice", "w"), GlobalName("bob", "w")}
	if got := reg.names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("registered globals %q, want %q", got, want)
	}
	if _, err := m.Watch("alice", "w", testPattern(t)); err == nil {
		t.Fatal("duplicate local watch accepted")
	}
}

func TestQuotas(t *testing.T) {
	m := NewManager(Config{MaxTenants: 2, MaxWatches: 1}, &fakeRegistrar{})
	if _, err := m.Attach("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Attach("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Attach("c"); err == nil {
		t.Fatal("third tenant accepted past MaxTenants=2")
	}
	// Re-attaching an existing session is not a new tenant.
	if _, err := m.Attach("a"); err != nil {
		t.Fatalf("re-attach: %v", err)
	}
	if _, err := m.Watch("a", "w1", testPattern(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Watch("a", "w2", testPattern(t)); err == nil {
		t.Fatal("second watch accepted past MaxWatches=1")
	}
	// Evicting frees the tenant slot.
	m.Evict("b")
	if _, err := m.Attach("c"); err != nil {
		t.Fatalf("attach after evict: %v", err)
	}
}

func TestDeltaRoutingAndCoalescing(t *testing.T) {
	reg := &fakeRegistrar{}
	m := NewManager(Config{}, reg)
	for _, tn := range []string{"writer", "reader"} {
		if _, err := m.Attach(tn); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Watch(tn, "w", testPattern(t)); err != nil {
			t.Fatal(err)
		}
	}
	deltas := []server.WatchDelta{
		{Watch: GlobalName("writer", "w"), Added: []int64{1}, Affected: 2},
		{Watch: GlobalName("reader", "w"), Added: []int64{5, 6}, Removed: []int64{7}, Affected: 3},
		{Watch: "orphan", Added: []int64{9}}, // unknown tenant: dropped
	}
	own := m.RecordDeltas("writer", deltas)
	if len(own) != 1 || own[0].Watch != "w" || !reflect.DeepEqual(own[0].Added, []int64{1}) {
		t.Fatalf("writer's own deltas: %+v", own)
	}
	// The writer's own deltas are NOT also queued.
	if ds, _ := m.Drain("writer"); len(ds) != 0 {
		t.Fatalf("writer inbox not empty: %+v", ds)
	}

	// A second batch nets out against the first: 5 removed again, 7 added
	// back — both cancel; 8 newly added survives.
	m.RecordDeltas("writer", []server.WatchDelta{
		{Watch: GlobalName("reader", "w"), Added: []int64{7, 8}, Removed: []int64{5}, Affected: 1},
	})
	ds, err := m.Drain("reader")
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 {
		t.Fatalf("reader drain: %+v", ds)
	}
	d := ds[0]
	if d.Watch != "w" || !reflect.DeepEqual(d.Added, []int64{6, 8}) || len(d.Removed) != 0 || d.Affected != 4 {
		t.Fatalf("coalesced delta wrong: %+v", d)
	}
	// Drained means gone.
	if ds, _ := m.Drain("reader"); len(ds) != 0 {
		t.Fatalf("second drain not empty: %+v", ds)
	}
}

func TestFences(t *testing.T) {
	m := NewManager(Config{}, &fakeRegistrar{})
	if _, err := m.Attach("a"); err != nil {
		t.Fatal(err)
	}
	if f := m.Fence("a"); f != 0 {
		t.Fatalf("fresh fence %d", f)
	}
	m.NoteWrite("a", 7)
	m.NoteWrite("a", 3) // stale token must not regress the fence
	if f := m.NoteRead("a"); f != 7 {
		t.Fatalf("fence %d, want 7", f)
	}
	infos := m.List()
	if len(infos) != 1 || infos[0].Writes != 2 || infos[0].Reads != 1 {
		t.Fatalf("List: %+v", infos)
	}
}

func TestEvictUnregistersWatches(t *testing.T) {
	reg := &fakeRegistrar{}
	m := NewManager(Config{}, reg)
	if _, err := m.Attach("a"); err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"w1", "w2"} {
		if _, err := m.Watch("a", w, testPattern(t)); err != nil {
			t.Fatal(err)
		}
	}
	m.Evict("a")
	if got := reg.names(); len(got) != 0 {
		t.Fatalf("globals still registered after evict: %q", got)
	}
	want := []string{GlobalName("a", "w1"), GlobalName("a", "w2")}
	sort.Strings(reg.unwatched)
	if !reflect.DeepEqual(reg.unwatched, want) {
		t.Fatalf("unwatched %q, want %q", reg.unwatched, want)
	}
	if _, err := m.Watch("a", "w3", testPattern(t)); err == nil {
		t.Fatal("watch on evicted session accepted")
	}
}

func TestEphemeralReleaseEvicts(t *testing.T) {
	reg := &fakeRegistrar{}
	m := NewManager(Config{}, reg)
	name, err := m.Attach("")
	if err != nil {
		t.Fatal(err)
	}
	if name == "" {
		t.Fatal("no generated name")
	}
	if _, err := m.Watch(name, "w", testPattern(t)); err != nil {
		t.Fatal(err)
	}
	// A second connection holds the same session: the first release must
	// not evict.
	if _, err := m.Attach(name); err != nil {
		t.Fatal(err)
	}
	m.Release(name, true)
	if len(reg.names()) != 1 {
		t.Fatal("evicted while still attached")
	}
	m.Release(name, true)
	if len(reg.names()) != 0 {
		t.Fatal("last release of an ephemeral session did not evict")
	}
}

// TestEvictSparesReattachedSession: the last-ref Release and the idle
// sweeper decide to evict outside the manager lock; a concurrent Attach
// to the same name that wins the lock in that window must keep its
// freshly acquired session. The interleaving is simulated directly:
// refs drops to zero (the releasing connection's decrement), a second
// connection attaches, then the deferred conditional eviction runs.
func TestEvictSparesReattachedSession(t *testing.T) {
	reg := &fakeRegistrar{}
	m := NewManager(Config{}, reg)
	name, err := m.Attach("")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Watch(name, "w", testPattern(t)); err != nil {
		t.Fatal(err)
	}

	m.mu.Lock()
	m.tenants[name].refs = 0 // conn1's Release decremented the last ref
	m.mu.Unlock()
	if _, err := m.Attach(name); err != nil { // conn2 wins the lock
		t.Fatal(err)
	}
	if m.evict(name, true) { // conn1's deferred eviction stands down
		t.Fatal("conditional eviction removed a re-attached session")
	}
	if got := m.Watches(name); !reflect.DeepEqual(got, []string{"w"}) {
		t.Fatalf("re-attached session lost its watches: %v", got)
	}
	if len(reg.unwatched) != 0 {
		t.Fatalf("eviction unregistered %v despite the re-attach", reg.unwatched)
	}
	// The explicit Evict (endsession) is unconditional, as before.
	m.Evict(name)
	if got := m.Watches(name); got != nil {
		t.Fatalf("explicit Evict left the session: %v", got)
	}
}

func TestIdleEviction(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	reg := &fakeRegistrar{}
	m := NewManager(Config{IdleTimeout: time.Minute, Now: clock}, reg)
	if _, err := m.Attach("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Attach("b"); err != nil {
		t.Fatal(err)
	}
	// "a" disconnects; "b" stays attached.
	m.Release("a", false)
	now = now.Add(2 * time.Minute)
	evicted := m.EvictIdle()
	if !reflect.DeepEqual(evicted, []string{"a"}) {
		t.Fatalf("evicted %q, want [a]", evicted)
	}
	// An attached session never idles out, however stale.
	if got := m.EvictIdle(); len(got) != 0 {
		t.Fatalf("attached session evicted: %q", got)
	}
	infos := m.List()
	if len(infos) != 1 || infos[0].Name != "b" {
		t.Fatalf("List after idle eviction: %+v", infos)
	}
}

func TestRestoreAndReset(t *testing.T) {
	reg := &fakeRegistrar{}
	m := NewManager(Config{}, reg)
	m.Restore(map[string]map[string]string{
		"alice": {"w": "p1"},
		"":      {"legacy": "p2"}, // pre-tenant journal watches: no session
	})
	infos := m.List()
	if len(infos) != 1 || infos[0].Name != "alice" || infos[0].Watches != 1 {
		t.Fatalf("restored sessions: %+v", infos)
	}
	if ws := m.Watches("alice"); !reflect.DeepEqual(ws, []string{"w"}) {
		t.Fatalf("restored watches: %q", ws)
	}
	// Restored sessions have no connections: they idle-evict eventually,
	// but survive a Reset (graph rebuild) with cleared namespaces.
	m.NoteWrite("alice", 4)
	m.Reset()
	if f := m.Fence("alice"); f != 0 {
		t.Fatalf("fence survived reset: %d", f)
	}
	if ws := m.Watches("alice"); len(ws) != 0 {
		t.Fatalf("watch table survived reset: %q", ws)
	}
}

func TestWatchFailureRollsBackSlot(t *testing.T) {
	reg := &fakeRegistrar{failWatch: fmt.Errorf("cluster down")}
	m := NewManager(Config{MaxWatches: 1}, reg)
	if _, err := m.Attach("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Watch("a", "w", testPattern(t)); err == nil {
		t.Fatal("watch succeeded against a failing registrar")
	}
	// The reserved slot was released: the quota is not consumed.
	reg.failWatch = nil
	if _, err := m.Watch("a", "w", testPattern(t)); err != nil {
		t.Fatalf("watch after registrar recovery: %v", err)
	}
}
