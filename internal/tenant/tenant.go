// Package tenant multiplexes many client sessions over one shared
// fragmentation and one coordinator write path.
//
// The cluster front end historically built a full cluster per TCP
// connection: correct, but k connections cost k fragmentations of the
// same graph and k copies of every watch. A Manager instead gives each
// client a *tenant session* — a private watch namespace, quotas, and a
// lifecycle (create, list, evict on disconnect or idle timeout) — while
// every session shares the single coordinator underneath.
//
// Namespacing is by name encoding: a tenant's watch "w" is registered on
// the coordinator as "tenant\x1fw" (GlobalName), so the shared watch
// table stays a plain map and failover re-registration (internal/ha)
// carries tenant watches for free, as opaque strings. An update's fan-out
// produces deltas for every tenant's watches at once; RecordDeltas
// projects them — the writer's own deltas are returned immediately under
// their local names, every other tenant's are coalesced into its pending
// inbox until that tenant drains them (the deltas command).
//
// Read-your-writes across replicas: NoteWrite remembers the version token
// the coordinator returned for a tenant's update, Fence returns it, and
// the front end passes it as MatchOptions.MinVersion so routed reads
// never land on a replica older than the tenant's last accepted write.
package tenant

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/server"
)

// sep joins tenant and watch in a coordinator-global watch name. A unit
// separator: excluded from valid tenant and watch names (control
// character), so the encoding is unambiguous and SplitName can cut at the
// first occurrence.
const sep = "\x1f"

// GlobalName encodes a tenant-local watch name into the shared
// coordinator namespace.
func GlobalName(tenant, watch string) string { return tenant + sep + watch }

// SplitName decodes a coordinator-global watch name. Names without a
// separator predate the tenant layer (a journal written by an older
// build): they belong to the legacy tenant "".
func SplitName(global string) (tenant, watch string) {
	if i := strings.Index(global, sep); i >= 0 {
		return global[:i], global[i+1:]
	}
	return "", global
}

// checkName validates a tenant or watch name: non-empty, at most 128
// bytes, no control characters (which excludes sep and newlines — names
// travel in newline-delimited JSON and inside encoded global names).
func checkName(kind, name string) error {
	if name == "" {
		return fmt.Errorf("tenant: empty %s name", kind)
	}
	if len(name) > 128 {
		return fmt.Errorf("tenant: %s name longer than 128 bytes", kind)
	}
	for i := 0; i < len(name); i++ {
		if name[i] < 0x20 || name[i] == 0x7f {
			return fmt.Errorf("tenant: %s name contains control character 0x%02x", kind, name[i])
		}
	}
	return nil
}

// Registrar is where tenant watches land: the shared coordinator's
// Watch/Unwatch, with global (encoded) names. The front end passes itself
// rather than the coordinator directly so the indirection survives graph
// rebuilds. *cluster.Coordinator satisfies it.
type Registrar interface {
	Watch(name string, q *core.Pattern) ([]graph.NodeID, error)
	Unwatch(name string) error
}

// Config bounds and instruments a Manager.
type Config struct {
	// MaxTenants caps live sessions (0 = 1024, negative = unlimited).
	MaxTenants int
	// MaxWatches caps standing patterns per tenant (0 = 16, negative =
	// unlimited) — the per-tenant replacement for the per-session cap the
	// front end lifts on the shared coordinator.
	MaxWatches int
	// IdleTimeout evicts named sessions with no attached connection and
	// no command for this long (0 = 15m, negative = never). Ephemeral
	// connection-scoped sessions die with their connection regardless.
	IdleTimeout time.Duration
	// RateQPS caps each tenant's admitted cluster commands — match,
	// update, watch — per second with a token bucket (0 = unlimited).
	// RateBurst is the bucket capacity (0 = 2×RateQPS, at least 1).
	RateQPS   float64
	RateBurst int
	// AffectedPerSec budgets each tenant's update work in affected-set
	// units per second: the coordinator's re-verification region size
	// (UpdateResult.AffectedSize), i.e. what the update actually cost
	// the shared cluster. The budget is post-paid — see limits.go —
	// so a huge batch drives the balance negative rather than being
	// under-charged. 0 = unlimited. AffectedBurst is the bucket
	// capacity (0 = 4×AffectedPerSec, at least 1).
	AffectedPerSec float64
	AffectedBurst  int
	// MaxPendingIDs caps one watch's coalesced pending inbox — the
	// undrained added+removed ids RecordDeltas may accumulate for a
	// tenant that is not draining. On overflow the coalesced state is
	// dropped and the watch's next Drain carries Resync=true instead:
	// the client re-reads its answer set rather than silently losing
	// deltas, and the manager's memory stays bounded. 0 = 4096,
	// negative = unlimited.
	MaxPendingIDs int
	// Logf reports evictions; nil discards.
	Logf func(format string, args ...any)
	// Metrics registers aggregate tenant gauges/counters; nil disables.
	Metrics *obs.Registry
	// Now is the clock; nil means time.Now. Tests inject a fake to drive
	// idle eviction deterministically.
	Now func() time.Time
}

func (c Config) maxTenants() int {
	if c.MaxTenants == 0 {
		return 1024
	}
	return c.MaxTenants
}

func (c Config) maxWatches() int {
	if c.MaxWatches == 0 {
		return 16
	}
	return c.MaxWatches
}

func (c Config) idle() time.Duration {
	if c.IdleTimeout == 0 {
		return 15 * time.Minute
	}
	return c.IdleTimeout
}

func (c Config) rateBurst() float64 {
	if c.RateBurst > 0 {
		return float64(c.RateBurst)
	}
	if b := 2 * c.RateQPS; b > 1 {
		return b
	}
	return 1
}

func (c Config) affectedBurst() float64 {
	if c.AffectedBurst > 0 {
		return float64(c.AffectedBurst)
	}
	if b := 4 * c.AffectedPerSec; b > 1 {
		return b
	}
	return 1
}

func (c Config) pendingCap() int {
	if c.MaxPendingIDs == 0 {
		return 4096
	}
	return c.MaxPendingIDs
}

// pending is one watch's coalesced undrained delta: the net effect of
// every update since the tenant last drained. Coalescing is net-out — an
// answer added then removed between drains cancels to nothing — so the
// drained delta composes with the tenant's last seen answer set exactly
// as one big batch would have.
type pending struct {
	added    map[int64]bool
	removed  map[int64]bool
	affected int
	// resync marks a delta the tenant cannot reconstruct incrementally:
	// its inbox overflowed Config.MaxPendingIDs (the coalesced state was
	// dropped), or an update raced the watch's registration. The next
	// Drain carries the flag; the client re-reads the answer set.
	resync bool
}

// state is one live tenant session.
type state struct {
	watches   map[string]string   // local watch name -> pattern
	pend      map[string]*pending // local watch name -> undrained delta
	fence     uint64              // version token of the last accepted write
	lastSeen  time.Time           // last command on behalf of this tenant
	refs      int                 // attached connections
	writes    int64
	reads     int64
	throttled int64        // commands refused by admission control
	overflow  int64        // pending inboxes dropped at the cap
	rate      bucket       // command admissions (limits.go)
	budget    bucket       // affected-set units, post-paid (limits.go)
	im        *instruments // per-tenant metric series
	gone      bool         // evicted; a concurrent Watch must not resurrect it
}

// ensurePending returns the watch's inbox, creating it empty if needed.
func (st *state) ensurePending(watch string) *pending {
	p := st.pend[watch]
	if p == nil {
		p = &pending{added: make(map[int64]bool), removed: make(map[int64]bool)}
		st.pend[watch] = p
	}
	return p
}

// Manager owns the tenant table. All methods are safe for concurrent use.
// Registrar calls (the coordinator's Watch/Unwatch fan-out) happen outside
// the Manager mutex: they pay cluster round trips and, through the front
// end, may take locks of their own.
type Manager struct {
	cfg Config
	reg Registrar

	mu       sync.Mutex
	tenants  map[string]*state
	nextAuto int // generator for ephemeral session names
	// deltaEpoch counts RecordDeltas calls. Watch snapshots it while its
	// slot is reserved; if it advanced by commit time, an update fanned
	// out between the coordinator's registration and the manager's
	// commit — its deltas for the new watch were dropped at the reserved
	// slot, so the watch starts life marked resync.
	deltaEpoch uint64

	stop chan struct{} // idle sweeper; nil until Start
	done chan struct{}

	mActive  *obs.Gauge
	mWatches *obs.Gauge
	mCreated *obs.Counter
	mEvicted *obs.Counter
	mExpired *obs.Counter
}

// NewManager builds a Manager registering watches on reg.
func NewManager(cfg Config, reg Registrar) *Manager {
	m := &Manager{cfg: cfg, reg: reg, tenants: make(map[string]*state)}
	if r := cfg.Metrics; r != nil {
		m.mActive = r.Gauge("tenant.active")   // live tenant sessions
		m.mWatches = r.Gauge("tenant.watches") // standing patterns across all tenants
		m.mCreated = r.Counter("tenant.created")
		m.mEvicted = r.Counter("tenant.evicted") // disconnect or endsession
		m.mExpired = r.Counter("tenant.expired") // idle timeout
	}
	return m
}

func (m *Manager) now() time.Time {
	if m.cfg.Now != nil {
		return m.cfg.Now()
	}
	return time.Now()
}

func (m *Manager) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

// Attach binds a connection to the named session, creating it if needed;
// an empty name creates a fresh session under a generated name. Returns
// the (possibly generated) name. Every Attach must be paired with a
// Release.
func (m *Manager) Attach(name string) (string, error) {
	if name != "" {
		if err := checkName("session", name); err != nil {
			return "", err
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if name == "" {
		for {
			m.nextAuto++
			name = fmt.Sprintf("s-%d", m.nextAuto)
			if _, taken := m.tenants[name]; !taken {
				break
			}
		}
	}
	st, ok := m.tenants[name]
	if !ok {
		if max := m.cfg.maxTenants(); max > 0 && len(m.tenants) >= max {
			return "", fmt.Errorf("tenant: session limit of %d reached", max)
		}
		st = &state{
			watches: make(map[string]string),
			pend:    make(map[string]*pending),
			im:      m.instruments(name),
		}
		m.tenants[name] = st
		m.mCreated.Inc()
		m.mActive.Set(int64(len(m.tenants)))
	}
	st.refs++
	st.lastSeen = m.now()
	return name, nil
}

// Release drops a connection's hold on the session. With evict true (the
// connection-scoped ephemeral case) the session is evicted once no
// connection holds it; otherwise it lingers until the idle sweeper
// collects it.
func (m *Manager) Release(name string, evict bool) {
	m.mu.Lock()
	st, ok := m.tenants[name]
	if !ok {
		m.mu.Unlock()
		return
	}
	if st.refs > 0 {
		st.refs--
	}
	st.lastSeen = m.now()
	last := st.refs == 0
	m.mu.Unlock()
	if evict && last {
		// Conditionally: a concurrent Attach in this unlocked window
		// re-acquires the session and must not have it torn down
		// underneath.
		m.evict(name, true)
	}
}

// touch requires the session to exist and marks it used.
func (m *Manager) touch(name string) (*state, error) {
	st, ok := m.tenants[name]
	if !ok {
		return nil, fmt.Errorf("tenant: no session named %q", name)
	}
	st.lastSeen = m.now()
	return st, nil
}

// Watch registers a standing pattern in the tenant's namespace and
// returns the initial answer set. The coordinator round trip happens
// outside the Manager mutex; the slot is reserved first so concurrent
// watches respect the quota, and committed (or abandoned) after.
func (m *Manager) Watch(tenant, watch string, q *core.Pattern) ([]graph.NodeID, error) {
	if err := checkName("watch", watch); err != nil {
		return nil, err
	}
	m.mu.Lock()
	st, err := m.touch(tenant)
	if err != nil {
		m.mu.Unlock()
		return nil, err
	}
	if _, dup := st.watches[watch]; dup {
		m.mu.Unlock()
		return nil, fmt.Errorf("tenant: watch %q already registered in session %q", watch, tenant)
	}
	if max := m.cfg.maxWatches(); max > 0 && len(st.watches) >= max {
		m.mu.Unlock()
		return nil, fmt.Errorf("tenant: session %q limit of %d standing patterns reached", tenant, max)
	}
	st.watches[watch] = "" // reserve the slot against concurrent quota races
	epoch := m.deltaEpoch
	m.mu.Unlock()

	initial, err := m.reg.Watch(GlobalName(tenant, watch), q)

	m.mu.Lock()
	if err != nil {
		delete(st.watches, watch)
		m.mu.Unlock()
		return nil, err
	}
	if st.gone {
		// The session was evicted while the fan-out was in flight; its
		// eviction already unwatched what it knew about, so clean up the
		// straggler ourselves.
		m.mu.Unlock()
		_ = m.reg.Unwatch(GlobalName(tenant, watch))
		return nil, fmt.Errorf("tenant: session %q evicted", tenant)
	}
	st.watches[watch] = q.String()
	if m.deltaEpoch != epoch {
		// An update fanned out while the registration was in flight:
		// RecordDeltas saw only the reserved slot and dropped whatever
		// the update changed under this watch, and the initial answer
		// set returned above may predate that update. The client cannot
		// tell which — so its first Drain says resync instead of
		// pretending the delta stream is complete.
		st.ensurePending(watch).resync = true
	}
	m.mWatches.Add(1)
	m.mu.Unlock()
	return initial, nil
}

// Unwatch removes a standing pattern from the tenant's namespace.
func (m *Manager) Unwatch(tenant, watch string) error {
	m.mu.Lock()
	st, err := m.touch(tenant)
	if err != nil {
		m.mu.Unlock()
		return err
	}
	if _, ok := st.watches[watch]; !ok {
		m.mu.Unlock()
		return fmt.Errorf("tenant: no watch named %q in session %q", watch, tenant)
	}
	m.mu.Unlock()

	if err := m.reg.Unwatch(GlobalName(tenant, watch)); err != nil {
		return err
	}

	m.mu.Lock()
	// Re-check under the lock: an eviction that ran during the registrar
	// round trip saw the still-committed watch and already accounted for
	// it (and unwatches it best-effort), so decrementing again here would
	// drift mWatches below the true count. Only the path that still finds
	// the watch in a live session owns its accounting.
	if _, ok := st.watches[watch]; ok && !st.gone {
		delete(st.watches, watch)
		delete(st.pend, watch)
		m.mWatches.Add(-1)
	}
	m.mu.Unlock()
	return nil
}

// RecordDeltas routes one update's merged watch deltas (global names) to
// their tenants. The writer's own deltas are returned immediately, renamed
// to local watch names — its response carries them, read-your-writes
// style. Every other tenant's deltas are coalesced into that tenant's
// pending inbox for its next Drain, bounded per watch by
// Config.MaxPendingIDs: a tenant that never drains overflows, loses its
// coalesced state, and is told to resync — it cannot grow the manager
// without bound. Deltas for unknown tenants or watches (races with
// eviction) are dropped.
func (m *Manager) RecordDeltas(writer string, deltas []server.WatchDelta) []server.WatchDelta {
	var own []server.WatchDelta
	m.mu.Lock()
	defer m.mu.Unlock()
	m.deltaEpoch++
	limit := m.cfg.pendingCap()
	for _, d := range deltas {
		tn, watch := SplitName(d.Watch)
		st, ok := m.tenants[tn]
		if !ok {
			continue
		}
		if pattern, ok := st.watches[watch]; !ok || pattern == "" {
			// Unknown, or a reserved slot whose registration is still in
			// flight: the watch's initial answer set has not been returned
			// yet, so a delta against it is meaningless to the client.
			// Watch notices the dropped delta through deltaEpoch and marks
			// the committed watch resync.
			continue
		}
		if tn == writer {
			own = append(own, server.WatchDelta{
				Watch: watch, Added: d.Added, Removed: d.Removed, Affected: d.Affected,
			})
			continue
		}
		p := st.ensurePending(watch)
		for _, v := range d.Added {
			if p.removed[v] {
				delete(p.removed, v)
			} else {
				p.added[v] = true
			}
		}
		for _, v := range d.Removed {
			if p.added[v] {
				delete(p.added, v)
			} else {
				p.removed[v] = true
			}
		}
		p.affected += d.Affected
		if limit > 0 && len(p.added)+len(p.removed) > limit {
			// Overflow: drop the oldest state — everything coalesced so
			// far — and flag the watch. The flag survives until drained,
			// so the client learns it must re-read even if later deltas
			// fit under the cap again.
			p.added = make(map[int64]bool)
			p.removed = make(map[int64]bool)
			p.resync = true
			st.overflow++
			st.im.overflow.Inc()
		}
	}
	sort.Slice(own, func(i, j int) bool { return own[i].Watch < own[j].Watch })
	return own
}

// Drain returns and clears the tenant's pending deltas, sorted by watch
// name with sorted id lists. Watches whose pending delta netted out to
// nothing are omitted unless re-verification touched them (Affected > 0)
// or they carry a Resync marker — an overflowed or registration-raced
// watch reports Resync even with empty sets, because "re-read your
// answers" is exactly the information the drain must deliver.
func (m *Manager) Drain(tenant string) ([]server.WatchDelta, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, err := m.touch(tenant)
	if err != nil {
		return nil, err
	}
	var out []server.WatchDelta
	for watch, p := range st.pend {
		if len(p.added) == 0 && len(p.removed) == 0 && p.affected == 0 && !p.resync {
			continue
		}
		out = append(out, server.WatchDelta{
			Watch:    watch,
			Added:    sortedIDs(p.added),
			Removed:  sortedIDs(p.removed),
			Affected: p.affected,
			Resync:   p.resync,
		})
	}
	st.pend = make(map[string]*pending)
	sort.Slice(out, func(i, j int) bool { return out[i].Watch < out[j].Watch })
	return out, nil
}

func sortedIDs(set map[int64]bool) []int64 {
	if len(set) == 0 {
		return nil
	}
	ids := make([]int64, 0, len(set))
	for v := range set {
		ids = append(ids, v)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// NoteWrite records the version token of the tenant's accepted update; a
// later Fence returns it as the read-your-writes floor.
func (m *Manager) NoteWrite(tenant string, version uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if st, ok := m.tenants[tenant]; ok {
		if version > st.fence {
			st.fence = version
		}
		st.writes++
		st.lastSeen = m.now()
	}
}

// NoteRead counts a routed read on behalf of the tenant and returns its
// fence: the minimum coordinator version a replica must have mirrored for
// this tenant's reads to see its own writes.
func (m *Manager) NoteRead(tenant string) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.tenants[tenant]
	if !ok {
		return 0
	}
	st.reads++
	st.lastSeen = m.now()
	return st.fence
}

// Fence returns the tenant's read-your-writes floor without counting a
// read.
func (m *Manager) Fence(tenant string) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if st, ok := m.tenants[tenant]; ok {
		return st.fence
	}
	return 0
}

// Watches returns the tenant's local watch names, sorted.
func (m *Manager) Watches(tenant string) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.tenants[tenant]
	if !ok {
		return nil
	}
	names := make([]string, 0, len(st.watches))
	for w := range st.watches {
		names = append(names, w)
	}
	sort.Strings(names)
	return names
}

// List describes the live sessions, sorted by name.
func (m *Manager) List() []server.TenantInfo {
	now := m.now()
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]server.TenantInfo, 0, len(m.tenants))
	for name, st := range m.tenants {
		ids := 0
		for _, p := range st.pend {
			ids += len(p.added) + len(p.removed)
		}
		out = append(out, server.TenantInfo{
			Name:       name,
			Watches:    len(st.watches),
			Writes:     st.writes,
			Reads:      st.reads,
			Pending:    len(st.pend),
			PendingIDs: ids,
			Throttled:  st.throttled,
			Overflows:  st.overflow,
			IdleMS:     now.Sub(st.lastSeen).Milliseconds(),
			Conns:      st.refs,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Evict removes the session, unregistering its watches from the shared
// coordinator. Idempotent; the registrar round trips happen outside the
// Manager mutex.
func (m *Manager) Evict(name string) { m.evict(name, false) }

// evict implements Evict, reporting whether the session was removed.
// The unattachedOnly paths (last-ref Release, the idle sweeper) decide
// to evict outside the lock, so they re-check refs here: a concurrent
// Attach that won the lock in between keeps its freshly acquired
// session.
func (m *Manager) evict(name string, unattachedOnly bool) bool {
	m.mu.Lock()
	st, ok := m.tenants[name]
	if !ok {
		m.mu.Unlock()
		return false
	}
	if unattachedOnly && st.refs > 0 {
		m.mu.Unlock()
		return false
	}
	st.gone = true
	delete(m.tenants, name)
	watches := make([]string, 0, len(st.watches))
	for w, pattern := range st.watches {
		if pattern == "" {
			continue // reserved but never committed; its Watch cleans up
		}
		watches = append(watches, w)
	}
	sort.Strings(watches)
	m.mEvicted.Inc()
	m.mActive.Set(int64(len(m.tenants)))
	m.mWatches.Add(-int64(len(watches)))
	m.mu.Unlock()

	for _, w := range watches {
		if err := m.reg.Unwatch(GlobalName(name, w)); err != nil {
			// Best effort: on a failed/rebuilt coordinator the watch is
			// already gone; anything else fail-stops the cluster itself.
			m.logf("tenant: evict %s: unwatch %s: %v", name, w, err)
		}
	}
	return true
}

// EvictIdle evicts named sessions with no attached connection that have
// been idle past the timeout. Returns the evicted names, sorted.
func (m *Manager) EvictIdle() []string {
	timeout := m.cfg.idle()
	if timeout < 0 {
		return nil
	}
	now := m.now()
	m.mu.Lock()
	var idle []string
	for name, st := range m.tenants {
		if st.refs == 0 && now.Sub(st.lastSeen) > timeout {
			idle = append(idle, name)
		}
	}
	m.mu.Unlock()
	sort.Strings(idle)
	evicted := idle[:0]
	for _, name := range idle {
		// Conditionally: a client may have attached since the scan above.
		if !m.evict(name, true) {
			continue
		}
		m.logf("tenant: session %s idle past %v, evicted", name, timeout)
		m.mExpired.Inc()
		evicted = append(evicted, name)
	}
	return evicted
}

// Start launches the idle sweeper. Stop with Stop.
func (m *Manager) Start() {
	if m.cfg.idle() < 0 || m.stop != nil {
		return
	}
	interval := m.cfg.idle() / 4
	if interval < time.Second {
		interval = time.Second
	}
	m.stop = make(chan struct{})
	m.done = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				m.EvictIdle()
			}
		}
	}(m.stop, m.done)
}

// Stop halts the idle sweeper.
func (m *Manager) Stop() {
	if m.stop == nil {
		return
	}
	close(m.stop)
	<-m.done
	m.stop = nil
	m.done = nil
}

// Restore rebuilds the tenant table from journal-recovered watch tables
// (tenant -> local watch -> pattern): the watches are already live on the
// recovered coordinator, so no registrar round trips. Sessions restore
// with zero connections; they persist until attached or idle-evicted.
func (m *Manager) Restore(tables map[string]map[string]string) {
	now := m.now()
	m.mu.Lock()
	defer m.mu.Unlock()
	total := int64(0)
	for tn, watches := range tables {
		if tn == "" {
			// Legacy un-namespaced watches (pre-tenant journal); they stay
			// registered on the coordinator but belong to no session.
			continue
		}
		st, ok := m.tenants[tn]
		if !ok {
			st = &state{
				watches: make(map[string]string),
				pend:    make(map[string]*pending),
				im:      m.instruments(tn),
			}
			m.tenants[tn] = st
			st.lastSeen = now
		}
		for w, pattern := range watches {
			if _, dup := st.watches[w]; !dup {
				st.watches[w] = pattern
				total++
			}
		}
	}
	m.mActive.Set(int64(len(m.tenants)))
	m.mWatches.Add(total)
}

// Reset drops every session's watch table, pending deltas, and fence —
// the shared graph was rebuilt (gen/load), so registered watches and
// version tokens no longer exist on the coordinator. Sessions themselves
// survive: attached connections keep their names.
func (m *Manager) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	dropped := int64(0)
	for _, st := range m.tenants {
		dropped += int64(len(st.watches))
		st.watches = make(map[string]string)
		st.pend = make(map[string]*pending)
		st.fence = 0
	}
	m.mWatches.Add(-dropped)
}
