package tenant

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/server"
)

// fakeClock drives the manager's on-demand bucket refills
// deterministically.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestAdmitRateLimit(t *testing.T) {
	clock := newFakeClock()
	m := NewManager(Config{RateQPS: 2, RateBurst: 2, Now: clock.Now}, &fakeRegistrar{})
	if _, err := m.Attach("a"); err != nil {
		t.Fatal(err)
	}
	// The bucket starts full: burst admissions pass.
	for i := 0; i < 2; i++ {
		if err := m.Admit("a", "match"); err != nil {
			t.Fatalf("admit %d within burst: %v", i, err)
		}
	}
	err := m.Admit("a", "match")
	var thr *ErrThrottled
	if !errors.As(err, &thr) {
		t.Fatalf("admit past burst: %v, want *ErrThrottled", err)
	}
	if thr.Reason != "rate" || thr.Tenant != "a" {
		t.Fatalf("throttle: %+v", thr)
	}
	// One token at 2 qps is 500ms away.
	if thr.RetryAfter != 500*time.Millisecond {
		t.Fatalf("retry-after %v, want 500ms", thr.RetryAfter)
	}
	// A refusal costs nothing: after the advertised wait the refill admits.
	clock.Advance(thr.RetryAfter)
	if err := m.Admit("a", "match"); err != nil {
		t.Fatalf("admit after refill: %v", err)
	}
	infos := m.List()
	if len(infos) != 1 || infos[0].Throttled != 1 {
		t.Fatalf("List: %+v", infos)
	}
}

func TestAffectedBudgetPostPaid(t *testing.T) {
	clock := newFakeClock()
	m := NewManager(Config{AffectedPerSec: 10, AffectedBurst: 10, Now: clock.Now}, &fakeRegistrar{})
	if _, err := m.Attach("a"); err != nil {
		t.Fatal(err)
	}
	// Post-paid: the update is admitted on a non-negative balance and its
	// real cost lands afterwards, driving the balance negative.
	if err := m.Admit("a", "update"); err != nil {
		t.Fatalf("first update: %v", err)
	}
	m.ChargeAffected("a", 110) // balance 10 - 110 = -100
	err := m.Admit("a", "update")
	var thr *ErrThrottled
	if !errors.As(err, &thr) {
		t.Fatalf("update against a deficit: %v, want *ErrThrottled", err)
	}
	if thr.Reason != "budget" {
		t.Fatalf("reason %q, want budget", thr.Reason)
	}
	// The debt is 100 units at 10/s: 10 seconds to dig out.
	if thr.RetryAfter != 10*time.Second {
		t.Fatalf("retry-after %v, want 10s", thr.RetryAfter)
	}
	// The budget gates updates only; the tenant's reads keep flowing.
	if err := m.Admit("a", "match"); err != nil {
		t.Fatalf("match while update-budget blocked: %v", err)
	}
	clock.Advance(10 * time.Second)
	if err := m.Admit("a", "update"); err != nil {
		t.Fatalf("update after the debt refilled: %v", err)
	}
}

func TestInboxOverflowResync(t *testing.T) {
	reg := &fakeRegistrar{}
	m := NewManager(Config{MaxPendingIDs: 4}, reg)
	for _, tn := range []string{"writer", "reader"} {
		if _, err := m.Attach(tn); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Watch(tn, "w", testPattern(t)); err != nil {
			t.Fatal(err)
		}
	}
	// Five coalesced ids against a cap of four: the state is dropped and
	// the watch flagged for resync.
	m.RecordDeltas("writer", []server.WatchDelta{
		{Watch: GlobalName("reader", "w"), Added: []int64{1, 2, 3}, Removed: []int64{4, 5}, Affected: 5},
	})
	// The writer's own oversized delta is returned directly, never capped.
	own := m.RecordDeltas("writer", []server.WatchDelta{
		{Watch: GlobalName("writer", "w"), Added: []int64{1, 2, 3, 4, 5, 6}},
	})
	if len(own) != 1 || len(own[0].Added) != 6 || own[0].Resync {
		t.Fatalf("writer's own deltas: %+v", own)
	}
	// Later deltas under the cap coalesce again, but the flag survives
	// until drained: the reader must learn its stream has a hole.
	m.RecordDeltas("writer", []server.WatchDelta{
		{Watch: GlobalName("reader", "w"), Added: []int64{100}, Affected: 1},
	})
	var reader server.TenantInfo
	for _, info := range m.List() {
		if info.Name == "reader" {
			reader = info
		}
	}
	if reader.Overflows != 1 || reader.PendingIDs != 1 || reader.PendingIDs > 4 {
		t.Fatalf("reader info after overflow: %+v", reader)
	}
	ds, err := m.Drain("reader")
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 || !ds[0].Resync {
		t.Fatalf("drain after overflow: %+v", ds)
	}
	if len(ds[0].Added) != 1 || ds[0].Added[0] != 100 {
		t.Fatalf("post-overflow delta not coalesced: %+v", ds[0])
	}
	// Draining clears the flag along with the state.
	m.RecordDeltas("writer", []server.WatchDelta{
		{Watch: GlobalName("reader", "w"), Added: []int64{101}, Affected: 1},
	})
	if ds, _ := m.Drain("reader"); len(ds) != 1 && ds[0].Resync {
		t.Fatalf("resync flag survived the drain: %+v", ds)
	}
}

// gatedUnwatchRegistrar blocks the FIRST Unwatch round trip until
// released, so a test can interleave an eviction with it.
type gatedUnwatchRegistrar struct {
	fakeRegistrar
	once    sync.Once
	entered chan struct{}
	release chan struct{}
}

func (r *gatedUnwatchRegistrar) Unwatch(name string) error {
	first := false
	r.once.Do(func() { first = true })
	if first {
		close(r.entered)
		<-r.release
	}
	return r.fakeRegistrar.Unwatch(name)
}

// TestUnwatchEvictRaceKeepsGaugeExact: Unwatch runs its registrar round
// trip outside the manager lock; an Evict that lands in that window
// already accounts for the watch (and unregisters it). The regression:
// Unwatch used to decrement tenant.watches again on return, drifting
// the gauge below the true count.
func TestUnwatchEvictRaceKeepsGaugeExact(t *testing.T) {
	reg := &gatedUnwatchRegistrar{entered: make(chan struct{}), release: make(chan struct{})}
	r := obs.NewRegistry()
	m := NewManager(Config{Metrics: r}, reg)
	if _, err := m.Attach("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Watch("a", "w", testPattern(t)); err != nil {
		t.Fatal(err)
	}
	gauge := r.Gauge("tenant.watches")
	if v := gauge.Value(); v != 1 {
		t.Fatalf("gauge %d after one watch", v)
	}
	errc := make(chan error, 1)
	go func() { errc <- m.Unwatch("a", "w") }()
	<-reg.entered // Unwatch is inside its registrar round trip
	m.Evict("a")  // accounts for (and unregisters) the still-committed watch
	close(reg.release)
	if err := <-errc; err != nil {
		t.Fatalf("unwatch: %v", err)
	}
	if v := gauge.Value(); v != 0 {
		t.Fatalf("tenant.watches gauge %d after unwatch/evict race, want 0", v)
	}
}

// gatedWatchRegistrar blocks Watch registrations once armed, so a test
// can run an update's delta fan-out mid-registration.
type gatedWatchRegistrar struct {
	fakeRegistrar
	mu      sync.Mutex
	armed   bool
	entered chan struct{}
	release chan struct{}
}

func (r *gatedWatchRegistrar) Watch(name string, q *core.Pattern) ([]graph.NodeID, error) {
	r.mu.Lock()
	gate := r.armed
	r.armed = false
	r.mu.Unlock()
	if gate {
		close(r.entered)
		<-r.release
	}
	return r.fakeRegistrar.Watch(name, q)
}

// TestWatchRegistrationRaceMarksResync: an update that fans out while a
// watch's registration round trip is in flight produces deltas the
// reserved slot must NOT receive (the client has no initial answer set
// yet) — and must not silently lose either. RecordDeltas skips the
// reserved slot; Watch notices via the delta epoch and the committed
// watch's first drain says resync.
func TestWatchRegistrationRaceMarksResync(t *testing.T) {
	reg := &gatedWatchRegistrar{entered: make(chan struct{}), release: make(chan struct{})}
	m := NewManager(Config{}, reg)
	for _, tn := range []string{"writer", "b"} {
		if _, err := m.Attach(tn); err != nil {
			t.Fatal(err)
		}
	}
	reg.mu.Lock()
	reg.armed = true
	reg.mu.Unlock()
	errc := make(chan error, 1)
	go func() {
		_, err := m.Watch("b", "w", testPattern(t))
		errc <- err
	}()
	<-reg.entered // registration in flight; the slot is reserved

	// The update's delta targets the reserved slot: dropped, not queued.
	m.RecordDeltas("writer", []server.WatchDelta{
		{Watch: GlobalName("b", "w"), Added: []int64{7}, Affected: 1},
	})
	if ds, _ := m.Drain("b"); len(ds) != 0 {
		t.Fatalf("reserved slot received deltas: %+v", ds)
	}

	close(reg.release)
	if err := <-errc; err != nil {
		t.Fatalf("watch: %v", err)
	}
	ds, err := m.Drain("b")
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 || ds[0].Watch != "w" || !ds[0].Resync {
		t.Fatalf("first drain after a raced registration: %+v, want a resync marker", ds)
	}
	// A registration with no concurrent update starts clean.
	if _, err := m.Watch("b", "w2", testPattern(t)); err != nil {
		t.Fatal(err)
	}
	if ds, _ := m.Drain("b"); len(ds) != 0 {
		t.Fatalf("unraced registration drained %+v", ds)
	}
}
