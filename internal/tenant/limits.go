package tenant

// Admission control: the shared cluster's QoS layer. Every tenant gets
// two token buckets refilled on demand from the manager clock:
//
//   - a command bucket (Config.RateQPS/RateBurst) charged one token per
//     admitted match, update or watch — the blunt per-tenant QPS cap;
//   - an update budget (Config.AffectedPerSec/AffectedBurst) denominated
//     in affected-set units, the coordinator's re-verification region
//     size (UpdateResult.AffectedSize). This is the incremental-
//     maintenance observable — work proportional to the change, not the
//     database — so it is what updates actually cost the shared cluster,
//     and what tenants are billed for.
//
// The affected budget is post-paid: an update's cost is unknown until
// the coordinator has computed its affected region, so Admit only
// requires a non-negative balance and ChargeAffected debits the real
// size afterwards. One oversized batch cannot be under-charged; it
// drives the balance negative and the tenant's next updates are refused
// until the refill works the debt off. Rejections carry *ErrThrottled
// with the wait until capacity returns, surfaced on the wire as
// Response.RetryAfterMS.

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// ErrThrottled reports a command refused by per-tenant admission
// control. RetryAfter is how long until the exhausted bucket has
// capacity again — a well-behaved client backs off that long instead of
// hammering.
type ErrThrottled struct {
	Tenant     string
	Reason     string // "rate" (command bucket) | "budget" (affected-set budget)
	RetryAfter time.Duration
}

func (e *ErrThrottled) Error() string {
	return fmt.Sprintf("tenant: session %q throttled (%s limit), retry in %v",
		e.Tenant, e.Reason, e.RetryAfter.Round(time.Millisecond))
}

// bucket is a token bucket refilled on demand: no background goroutine,
// just elapsed-time accounting against the manager clock (Config.Now in
// tests). The zero value starts full on first refill.
type bucket struct {
	tokens float64
	last   time.Time
}

// refill advances the bucket to now at rate tokens/second, capped at
// burst.
func (b *bucket) refill(now time.Time, rate, burst float64) {
	if b.last.IsZero() {
		b.tokens = burst
	} else if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * rate
	}
	if b.tokens > burst {
		b.tokens = burst
	}
	b.last = now
}

// take debits cost tokens if the balance covers them, or reports how
// long the caller must wait for the balance to recover.
func (b *bucket) take(cost, rate float64) (time.Duration, bool) {
	if b.tokens >= cost {
		b.tokens -= cost
		return 0, true
	}
	return durationFor(cost-b.tokens, rate), false
}

// spend debits cost unconditionally — the post-paid path; the balance
// may go negative.
func (b *bucket) spend(cost float64) { b.tokens -= cost }

// deficit reports how long until a negative balance refills to zero (0
// when the balance is already non-negative).
func (b *bucket) deficit(rate float64) time.Duration {
	if b.tokens >= 0 {
		return 0
	}
	return durationFor(-b.tokens, rate)
}

func durationFor(tokens, rate float64) time.Duration {
	d := time.Duration(tokens / rate * float64(time.Second))
	if d <= 0 {
		d = time.Millisecond // round a sub-resolution wait up, never report "retry in 0"
	}
	return d
}

// instruments is one tenant's metric set, resolved once at session
// creation. Fields are nil without a registry; the obs types no-op on
// nil receivers. Like every registry instrument the series live for the
// process lifetime — they are keyed by session name, so dashboards keep
// a tenant's history across reconnects and idle evictions.
type instruments struct {
	matchMS   *obs.Histogram // tenant.<name>.match.ms — served reads (match/explain/profile/watch)
	updateMS  *obs.Histogram // tenant.<name>.update.ms — served writes
	ops       *obs.Counter   // tenant.<name>.ops — admitted commands (the QPS series)
	throttled *obs.Counter   // tenant.<name>.throttled — admission rejections
	overflow  *obs.Counter   // tenant.<name>.inbox_overflow — pending inboxes dropped at cap
}

func (m *Manager) instruments(name string) *instruments {
	r := m.cfg.Metrics
	if r == nil {
		return &instruments{}
	}
	p := "tenant." + name + "."
	return &instruments{
		matchMS:   r.Histogram(p+"match.ms", obs.LatencyBucketsMS),
		updateMS:  r.Histogram(p+"update.ms", obs.LatencyBucketsMS),
		ops:       r.Counter(p + "ops"),
		throttled: r.Counter(p + "throttled"),
		overflow:  r.Counter(p + "inbox_overflow"),
	}
}

// Admit charges one command against the tenant's admission limits and
// marks the session used. op is the accounting class — "match" (any
// routed read), "update" or "watch". Every class pays one command
// token; "update" additionally requires the affected-set budget to be
// non-negative (its real cost lands later, via ChargeAffected). A
// refusal returns *ErrThrottled and costs the tenant nothing.
func (m *Manager) Admit(tenant, op string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, err := m.touch(tenant)
	if err != nil {
		return err
	}
	now := m.now()
	// Budget first: refusing before the command bucket is debited keeps
	// a budget-blocked tenant from also burning its rate tokens on
	// requests that cannot be served.
	if ups := m.cfg.AffectedPerSec; ups > 0 && op == "update" {
		st.budget.refill(now, ups, m.cfg.affectedBurst())
		if wait := st.budget.deficit(ups); wait > 0 {
			st.throttled++
			st.im.throttled.Inc()
			return &ErrThrottled{Tenant: tenant, Reason: "budget", RetryAfter: wait}
		}
	}
	if qps := m.cfg.RateQPS; qps > 0 {
		st.rate.refill(now, qps, m.cfg.rateBurst())
		if wait, ok := st.rate.take(1, qps); !ok {
			st.throttled++
			st.im.throttled.Inc()
			return &ErrThrottled{Tenant: tenant, Reason: "rate", RetryAfter: wait}
		}
	}
	st.im.ops.Inc()
	return nil
}

// ChargeAffected debits an accepted update's real cost — the
// coordinator-computed affected-set size — from the tenant's budget.
// Post-paid: the balance may go negative, refusing the tenant's next
// updates until the refill clears the debt.
func (m *Manager) ChargeAffected(tenant string, affected int) {
	if m.cfg.AffectedPerSec <= 0 || affected <= 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.tenants[tenant]
	if !ok {
		return
	}
	st.budget.refill(m.now(), m.cfg.AffectedPerSec, m.cfg.affectedBurst())
	st.budget.spend(float64(affected))
}

// Observe records one served command's latency in the tenant's
// histograms: op "update" lands in tenant.<name>.update.ms, everything
// else in tenant.<name>.match.ms. The windowed percentile layer
// (obs.Windows) picks both up, so per-tenant p95 shows at
// /metrics?window=1 with no extra bookkeeping here.
func (m *Manager) Observe(tenant, op string, start time.Time) {
	m.mu.Lock()
	var im *instruments
	if st, ok := m.tenants[tenant]; ok {
		im = st.im
	}
	m.mu.Unlock()
	if im == nil {
		return
	}
	if op == "update" {
		im.updateMS.ObserveSince(start)
	} else {
		im.matchMS.ObserveSince(start)
	}
}
