// Package client is the Go client for the qgpd query server: it dials the
// newline-delimited JSON protocol of internal/server and exposes one
// typed method per command. A Client owns one connection (one server
// session, one graph); it is safe for concurrent use — calls are
// serialized, matching the server's in-order processing per connection.
package client

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/server"
)

// Client is a connection to a qgpd server.
type Client struct {
	mu     sync.Mutex
	conn   net.Conn
	sc     *bufio.Scanner
	nextID int64
	// Timeout bounds each round trip; zero means no deadline.
	Timeout time.Duration
}

// Dial connects to a server address.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (useful with net.Pipe in
// tests).
func NewClient(conn net.Conn) *Client {
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64<<10), 64<<20)
	return &Client{conn: conn, sc: sc}
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Do sends one request and waits for its response. Most callers use the
// typed helpers instead.
func (c *Client) Do(req *server.Request) (*server.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	req.ID = c.nextID

	if c.Timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.Timeout))
	}
	b, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	b = append(b, '\n')
	if _, err := c.conn.Write(b); err != nil {
		return nil, fmt.Errorf("client: write: %w", err)
	}
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return nil, fmt.Errorf("client: read: %w", err)
		}
		return nil, fmt.Errorf("client: connection closed by server")
	}
	var resp server.Response
	if err := json.Unmarshal(c.sc.Bytes(), &resp); err != nil {
		return nil, fmt.Errorf("client: decode: %w", err)
	}
	if resp.ID != req.ID {
		return nil, fmt.Errorf("client: response id %d for request %d", resp.ID, req.ID)
	}
	if !resp.OK {
		return &resp, &ServerError{Msg: resp.Error, RetryAfterMS: resp.RetryAfterMS}
	}
	return &resp, nil
}

// ServerError is a command-level failure reported by the server; the
// connection remains usable. RetryAfterMS is non-zero when the
// multi-tenant front end throttled the command (per-tenant rate limit
// or update budget): back off that many milliseconds before retrying.
type ServerError struct {
	Msg          string
	RetryAfterMS float64
}

func (e *ServerError) Error() string { return "server: " + e.Msg }

// Ping checks liveness.
func (c *Client) Ping() error {
	_, err := c.Do(&server.Request{Cmd: "ping"})
	return err
}

// Gen generates a synthetic session graph ("social", "knowledge" or
// "smallworld") and returns its node and edge counts.
func (c *Client) Gen(kind string, size int, seed int64) (nodes, edges int, err error) {
	resp, err := c.Do(&server.Request{Cmd: "gen", Kind: kind, Size: size, Seed: seed})
	if err != nil {
		return 0, 0, err
	}
	return resp.Nodes, resp.Edges, nil
}

// LoadText loads a graph in the native text format.
func (c *Client) LoadText(data string) (nodes, edges int, err error) {
	resp, err := c.Do(&server.Request{Cmd: "load", Format: "text", Data: data})
	if err != nil {
		return 0, 0, err
	}
	return resp.Nodes, resp.Edges, nil
}

// LoadJSON loads a graph in the JSON property-graph format.
func (c *Client) LoadJSON(data string) (nodes, edges int, err error) {
	resp, err := c.Do(&server.Request{Cmd: "load", Format: "json", Data: data})
	if err != nil {
		return 0, 0, err
	}
	return resp.Nodes, resp.Edges, nil
}

// Update applies a mutation batch to the session graph and returns the
// new node and edge counts. Ops: "addNode", "addEdge", "removeEdge",
// "removeNode" (isolates the node; ids stay stable).
func (c *Client) Update(updates ...server.UpdateSpec) (nodes, edges int, err error) {
	resp, err := c.Do(&server.Request{Cmd: "update", Updates: updates})
	if err != nil {
		return 0, 0, err
	}
	return resp.Nodes, resp.Edges, nil
}

// Watch registers a standing pattern under a name and returns its initial
// answers. Every later Update on this client reports the watch's answer
// delta in Response.Deltas.
func (c *Client) Watch(name, pattern string) (*server.Response, error) {
	return c.Do(&server.Request{Cmd: "watch", Watch: name, Pattern: pattern})
}

// Unwatch removes a standing pattern.
func (c *Client) Unwatch(name string) error {
	_, err := c.Do(&server.Request{Cmd: "unwatch", Watch: name})
	return err
}

// UpdateWithDeltas is Update returning the full response, including the
// per-watch answer deltas.
func (c *Client) UpdateWithDeltas(updates ...server.UpdateSpec) (*server.Response, error) {
	return c.Do(&server.Request{Cmd: "update", Updates: updates})
}

// Fragment loads a d-hop-preserving fragment into the session, turning it
// into a cluster worker: data is the fragment subgraph in the graph text
// format (local node ids) and owned lists the local ids of the focus
// candidates this worker answers for. See internal/cluster.
func (c *Client) Fragment(data string, owned []int64) (nodes, edges int, err error) {
	resp, err := c.Do(&server.Request{Cmd: "fragment", Data: data, Owned: owned})
	if err != nil {
		return 0, 0, err
	}
	return resp.Nodes, resp.Edges, nil
}

// Assign adds nodes (local ids) to a fragment session's owned set and
// returns the per-watch answer deltas the new candidates contribute.
func (c *Client) Assign(owned []int64) (*server.Response, error) {
	return c.Do(&server.Request{Cmd: "assign", Owned: owned})
}

// MatchOptions tunes a Match call.
type MatchOptions struct {
	Engine  string // qmatch (default) | qmatchn | enum
	Planner bool
	Budget  int64
	Limit   int
}

// Match evaluates a QGP (DSL text) and returns the focus matches.
func (c *Client) Match(pattern string, opts *MatchOptions) (*server.Response, error) {
	req := &server.Request{Cmd: "match", Pattern: pattern}
	if opts != nil {
		req.Engine = opts.Engine
		req.Planner = opts.Planner
		req.Budget = opts.Budget
		req.Limit = opts.Limit
	}
	return c.Do(req)
}

// PMatch evaluates a QGP in parallel over a d-hop partition.
func (c *Client) PMatch(pattern string, workers, threads int) (*server.Response, error) {
	return c.Do(&server.Request{Cmd: "pmatch", Pattern: pattern, Workers: workers, Threads: threads})
}

// Rule evaluates a QGAR Q1 ⇒ Q2 and returns support, confidence and (when
// confidence ≥ eta > 0) the identified entities.
func (c *Client) Rule(q1, q2 string, eta float64) (*server.Response, error) {
	return c.Do(&server.Request{Cmd: "rule", Pattern: q1, Consequent: q2, Eta: eta})
}

// RPQFilter evaluates a QGP and filters its answers by a quantified path
// constraint ("expr within N quant").
func (c *Client) RPQFilter(pattern, constraint string) (*server.Response, error) {
	return c.Do(&server.Request{Cmd: "rpqfilter", Pattern: pattern, Constraint: constraint})
}

// Partition builds a d-hop preserving partition and reports balance.
func (c *Client) Partition(workers, d int) (*server.Response, error) {
	return c.Do(&server.Request{Cmd: "partition", Workers: workers, D: d})
}

// Stats returns graph summary statistics with the topK triple classes.
func (c *Client) Stats(topK int) (*server.Response, error) {
	return c.Do(&server.Request{Cmd: "stats", TopK: topK})
}

// Metrics returns the server's metrics-registry snapshot as raw JSON
// (obs.Snapshot shape); "{}" when the server runs without a registry.
func (c *Client) Metrics() (json.RawMessage, error) {
	resp, err := c.Do(&server.Request{Cmd: "metrics"})
	if err != nil {
		return nil, err
	}
	return resp.Obs, nil
}

// Explain plans a QGP without executing it and returns the plan document
// (matching order and per-step cardinality estimates) as raw JSON.
func (c *Client) Explain(pattern string) (json.RawMessage, error) {
	resp, err := c.Do(&server.Request{Cmd: "explain", Pattern: pattern})
	if err != nil {
		return nil, err
	}
	return resp.Profile, nil
}

// ProfileMatch evaluates a QGP with per-stage profiling: the full
// response (matches, metrics) plus the profile document in
// Response.Profile.
func (c *Client) ProfileMatch(pattern string, opts *MatchOptions) (*server.Response, error) {
	req := &server.Request{Cmd: "profile", Pattern: pattern}
	if opts != nil {
		req.Engine = opts.Engine
		req.Planner = opts.Planner
		req.Budget = opts.Budget
		req.Limit = opts.Limit
	}
	return c.Do(req)
}

// ProfileUpdate applies a mutation batch with per-stage profiling: the
// full response (counts, watch deltas) plus the update stage document in
// Response.Profile.
func (c *Client) ProfileUpdate(updates ...server.UpdateSpec) (*server.Response, error) {
	return c.Do(&server.Request{Cmd: "profile", Updates: updates})
}

// Session attaches this connection to a named tenant session on the
// multi-tenant cluster front end; an empty name creates a fresh
// connection-scoped one. Returns the (possibly generated) session name.
// A named session's watches and pending deltas survive disconnects until
// the front end's idle timeout evicts it.
func (c *Client) Session(name string) (string, error) {
	resp, err := c.Do(&server.Request{Cmd: "session", Session: name})
	if err != nil {
		return "", err
	}
	return resp.Session, nil
}

// Sessions lists the front end's live tenant sessions.
func (c *Client) Sessions() ([]server.TenantInfo, error) {
	resp, err := c.Do(&server.Request{Cmd: "sessions"})
	if err != nil {
		return nil, err
	}
	return resp.Tenants, nil
}

// EndSession evicts a tenant session, unregistering its watches; an
// empty name evicts the connection's current session.
func (c *Client) EndSession(name string) error {
	_, err := c.Do(&server.Request{Cmd: "endsession", Session: name})
	return err
}

// Deltas drains this connection's tenant session inbox: the watch
// deltas other tenants' updates caused in this session's namespace,
// coalesced since the last drain. (The session's own updates return
// their deltas directly on the update response.)
func (c *Client) Deltas() ([]server.WatchDelta, error) {
	resp, err := c.Do(&server.Request{Cmd: "deltas"})
	if err != nil {
		return nil, err
	}
	return resp.Deltas, nil
}
