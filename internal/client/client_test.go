package client

import (
	"bufio"
	"encoding/json"
	"errors"
	"net"
	"testing"

	"repro/internal/server"
)

// fakeServer answers each request line using fn, over a net.Pipe.
func fakeServer(t *testing.T, fn func(req server.Request) server.Response) *Client {
	t.Helper()
	cs, ss := net.Pipe()
	go func() {
		sc := bufio.NewScanner(ss)
		enc := json.NewEncoder(ss)
		for sc.Scan() {
			var req server.Request
			if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
				return
			}
			if err := enc.Encode(fn(req)); err != nil {
				return
			}
		}
	}()
	c := NewClient(cs)
	t.Cleanup(func() { c.Close(); ss.Close() })
	return c
}

func TestDoRoundTrip(t *testing.T) {
	c := fakeServer(t, func(req server.Request) server.Response {
		return server.Response{ID: req.ID, OK: true, Pong: req.Cmd == "ping"}
	})
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	// IDs increment per request.
	resp, err := c.Do(&server.Request{Cmd: "ping"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != 2 {
		t.Errorf("second request id = %d, want 2", resp.ID)
	}
}

func TestDoServerError(t *testing.T) {
	c := fakeServer(t, func(req server.Request) server.Response {
		return server.Response{ID: req.ID, OK: false, Error: "boom"}
	})
	_, err := c.Do(&server.Request{Cmd: "match"})
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *ServerError", err)
	}
	if se.Error() != "server: boom" {
		t.Errorf("message = %q", se.Error())
	}
	// The connection keeps working after a command error.
	if _, err := c.Do(&server.Request{Cmd: "ping"}); err == nil {
		t.Log("fake always errors; expected error again")
	}
}

func TestDoIDMismatch(t *testing.T) {
	c := fakeServer(t, func(req server.Request) server.Response {
		return server.Response{ID: req.ID + 41, OK: true}
	})
	if _, err := c.Do(&server.Request{Cmd: "ping"}); err == nil {
		t.Fatal("mismatched response id accepted")
	}
}

func TestDoClosedConnection(t *testing.T) {
	cs, ss := net.Pipe()
	ss.Close()
	c := NewClient(cs)
	defer c.Close()
	if _, err := c.Do(&server.Request{Cmd: "ping"}); err == nil {
		t.Fatal("write to closed pipe succeeded")
	}
}
