package match

// Profile is the structured per-stage record of one evaluation — what
// the prefilters kept, which matching order ran, and where the time
// went. It is the PROFILE document's match section: Metrics says how
// much work happened, Profile says where and why.
type Profile struct {
	// Patterns holds one entry per compiled positive pattern, in
	// evaluation order: Π(Q) first, then each positified Q+e.
	Patterns []PatternProfile `json:"patterns"`
	// TotalMS is the wall-clock time of the whole evaluation.
	TotalMS float64 `json:"total_ms"`
	// Metrics is the evaluation's aggregate work metrics (the same value
	// as Result.Metrics, repeated so the document is self-contained).
	Metrics Metrics `json:"metrics"`
}

// PatternProfile records one positive pattern's compilation and
// evaluation: prefilter sizes per pattern node, the matching order
// actually used, and stage timings.
type PatternProfile struct {
	// Pattern names the pattern within the query: "pi" for Π(Q), or
	// "pi+e<i>" for the positified pattern of negated edge i.
	Pattern string `json:"pattern"`
	// FastPath reports the focus-scoped fast path: the restriction was
	// small enough that label-based candidates beat paying O(|G|)
	// simulation and acceptance filtering.
	FastPath bool `json:"fast_path,omitempty"`
	// Restricted is the focus-restriction size (0 = unrestricted): the
	// candidate cap IncQMatch or a scoped re-verification imposed.
	Restricted int `json:"restricted,omitempty"`
	// Empty reports a compile-time prune: some candidate set was empty
	// (unknown label, failed simulation, threshold test), so the pattern
	// has no matches and evaluation was skipped entirely.
	Empty bool `json:"empty,omitempty"`
	// Nodes reports the per-pattern-node prefilter sizes.
	Nodes []NodeProfile `json:"nodes,omitempty"`
	// Order is the matching order actually used (node names; the focus
	// first). It may differ from a planner's proposal when connectivity
	// forced a deviation.
	Order []string `json:"order,omitempty"`
	// CompileMS and EvalMS split the pattern's time into the prefilter/
	// compile stage and the backtracking search.
	CompileMS float64 `json:"compile_ms"`
	EvalMS    float64 `json:"eval_ms"`
	// Answers is the number of focus matches this pattern produced.
	Answers int `json:"answers"`
	// Metrics is this pattern's share of the evaluation work.
	Metrics Metrics `json:"metrics"`
}

// NodeProfile reports the prefilter sizes of one pattern node:
// Candidates is the stratified-sound candidate set (dual simulation for
// QMatch, label-based otherwise), Accepted the quantifier-threshold
// acceptance filter (Lemma 13) on top of it.
type NodeProfile struct {
	Name       string `json:"name"`
	Candidates int    `json:"candidates"`
	Accepted   int    `json:"accepted"`
}

// metricsDelta returns after minus before, field by field.
func metricsDelta(after, before Metrics) Metrics {
	return Metrics{
		FocusCandidates: after.FocusCandidates - before.FocusCandidates,
		Verifications:   after.Verifications - before.Verifications,
		Extensions:      after.Extensions - before.Extensions,
		EarlyAccepts:    after.EarlyAccepts - before.EarlyAccepts,
		AcceptSearches:  after.AcceptSearches - before.AcceptSearches,
		IncRuns:         after.IncRuns - before.IncRuns,
		IncCandidates:   after.IncCandidates - before.IncCandidates,
	}
}
