package match

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// The paper's §2.2 remark names "conjunctions of predicates" on one edge
// as a syntactic extension. The model already expresses them as parallel
// pattern edges with the same endpoints and label but different
// quantifiers: both edges share the same child set Me(v), so each
// quantifier applies to the same count. One caveat is inherent to the
// encoding: the conjunct edges need pairwise-distinct images under the
// isomorphism, so k parallel edges imply at least k distinct children —
// the encoding expresses "≥ a AND ≤ b" with a ≥ k. Range predicates
// (a ≥ 2, two conjuncts) satisfy this naturally.

// conjGraph builds persons with 1, 3 and 5 purchased products.
func conjGraph(t *testing.T) (*graph.Graph, []graph.NodeID) {
	t.Helper()
	g := graph.New(16)
	var persons []graph.NodeID
	for _, n := range []int{1, 3, 5} {
		p := g.AddNode("person")
		persons = append(persons, p)
		for j := 0; j < n; j++ {
			prod := g.AddNode("product")
			g.AddEdge(p, prod, "buy")
		}
	}
	g.Finalize()
	return g, persons
}

func conjPattern(lo, hi int) *core.Pattern {
	q := core.NewPattern()
	q.AddNode("xo", "person")
	q.AddNode("y1", "product")
	q.AddNode("y2", "product")
	q.AddEdge("xo", "y1", "buy", core.Count(core.GE, lo))
	q.AddEdge("xo", "y2", "buy", core.Count(core.LE, hi))
	return q
}

func TestConjunctionRangePredicate(t *testing.T) {
	g, persons := conjGraph(t)
	cases := []struct {
		lo, hi int
		want   []graph.NodeID
	}{
		{2, 4, []graph.NodeID{persons[1]}},             // 3 ∈ [2,4]
		{2, 5, []graph.NodeID{persons[1], persons[2]}}, // 3 and 5
		{4, 5, []graph.NodeID{persons[2]}},             // only 5
		{2, 2, nil},                                    // nobody buys exactly 2
		{3, 3, []graph.NodeID{persons[1]}},             // exactly 3
		{2, 3, []graph.NodeID{persons[1]}},             // 3 ∈ [2,3]
	}
	for _, c := range cases {
		res, err := QMatch(g, conjPattern(c.lo, c.hi), nil)
		if err != nil {
			t.Fatalf("[%d,%d]: %v", c.lo, c.hi, err)
		}
		if !reflect.DeepEqual(res.Matches, c.want) && !(len(res.Matches) == 0 && len(c.want) == 0) {
			t.Errorf("[%d,%d] = %v, want %v", c.lo, c.hi, res.Matches, c.want)
		}
	}
}

// All engines agree on conjunction patterns.
func TestConjunctionEngineAgreement(t *testing.T) {
	g, _ := conjGraph(t)
	q := conjPattern(2, 4)
	base, err := QMatch(g, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	for name, f := range map[string]func(*graph.Graph, *core.Pattern, *Options) (*Result, error){
		"QMatchN": QMatchN, "Enum": Enum,
	} {
		res, err := f(g, q, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(res.Matches, base.Matches) {
			t.Errorf("%s = %v, QMatch = %v", name, res.Matches, base.Matches)
		}
	}
}

// Conjunction with a ratio conjunct: at least 2 buys AND at most 60% of
// follow-children flagged — mixing numeric and ratio conjuncts on
// different edges of one focus.
func TestConjunctionMixedQuantifiers(t *testing.T) {
	g := graph.New(20)
	// good: 2 buys, 1 of 3 followees flagged (33% ≤ 60%).
	good := g.AddNode("person")
	// bad: 2 buys, 3 of 3 followees flagged (100% > 60%).
	bad := g.AddNode("person")
	flagged := g.AddNode("flag")
	for i := 0; i < 2; i++ {
		pr := g.AddNode("product")
		g.AddEdge(good, pr, "buy")
		pr2 := g.AddNode("product")
		g.AddEdge(bad, pr2, "buy")
	}
	for i := 0; i < 3; i++ {
		f := g.AddNode("person")
		g.AddEdge(good, f, "follow")
		if i == 0 {
			g.AddEdge(f, flagged, "is")
		}
		f2 := g.AddNode("person")
		g.AddEdge(bad, f2, "follow")
		g.AddEdge(f2, flagged, "is")
	}
	g.Finalize()

	q := core.NewPattern()
	q.AddNode("xo", "person")
	q.AddNode("y", "product")
	q.AddNode("z", "person")
	q.AddNode("fl", "flag")
	q.AddEdge("xo", "y", "buy", core.Count(core.GE, 2))
	q.AddEdge("xo", "z", "follow", core.Ratio(core.LE, 6000))
	q.AddEdge("z", "fl", "is", core.Exists())

	res, err := QMatch(g, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Matches, []graph.NodeID{good}) {
		t.Fatalf("matches = %v, want [%d]", res.Matches, good)
	}
}
