package match

import (
	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/graph"
)

// realizedKey identifies the pair (pattern edge, image of its source).
type realizedKey struct {
	edge int
	v    graph.NodeID
}

// evalPositive computes the focus matches of a compiled positive pattern.
//
// Semantics (§2.2, flat counting): vx matches iff there is a stratified
// isomorphism h0 with h0(xo) = vx such that for every edge e = (u, u′),
// |Me(vx, h0(u), Q)| satisfies f(e), where Me collects the distinct
// children of h0(u) realized by ANY stratified isomorphism anchored at vx.
// Counting therefore runs over the stratified-sound candidate sets
// (pr.cand); only acceptance may use the threshold-filtered sets.
//
// restrict, when non-nil, limits the focus candidates (used by IncQMatch
// and by parallel workers). earlyAccept enables QMatch's early
// termination: once some isomorphism's images all meet their (monotone)
// thresholds, vx is accepted without exhausting the search.
func evalPositive(pr *program, restrict *bitset.Set, earlyAccept bool, m *Metrics) []graph.NodeID {
	quantOut := make([][]int, len(pr.p.Nodes))
	for _, ei := range pr.quant {
		e := pr.p.Edges[ei]
		quantOut[e.From] = append(quantOut[e.From], ei)
	}

	// Iterate candidates in ascending bit order (ForEach is ordered)
	// instead of materializing and sorting them, and walk whichever of
	// the acceptance set and the restriction is smaller — a scoped
	// re-verification restricts to a handful of nodes and must not pay
	// a full sweep over every label-compatible candidate.
	iter, filter := pr.accept[pr.p.Focus], restrict
	if restrict != nil && restrict.Count() < iter.Count() {
		iter, filter = restrict, pr.accept[pr.p.Focus]
	}
	var answers []graph.NodeID
	iter.ForEach(func(vi int) bool {
		if filter != nil && !filter.Contains(vi) {
			return true
		}
		vx := graph.NodeID(vi)
		m.FocusCandidates++
		if pr.matchFocus(vx, quantOut, earlyAccept, m) {
			answers = append(answers, vx)
		}
		return !pr.budgetExceeded
	})
	if pr.budgetExceeded {
		return nil
	}
	return answers
}

// matchFocus decides whether vx is a match of the focus.
func (pr *program) matchFocus(vx graph.NodeID, quantOut [][]int, earlyAccept bool, m *Metrics) bool {
	if len(pr.quant) == 0 {
		// Conventional pattern: existence of one isomorphism suffices.
		found := false
		pr.run(vx, true, m, func([]graph.NodeID) bool {
			found = true
			return false
		})
		return found
	}

	realized := make(map[realizedKey]map[graph.NodeID]struct{})
	foundAny := false
	accepted := false
	canEarly := earlyAccept && !pr.hasEQ

	pr.run(vx, false, m, func(assign []graph.NodeID) bool {
		foundAny = true
		for _, ei := range pr.quant {
			e := pr.p.Edges[ei]
			k := realizedKey{ei, assign[e.From]}
			s := realized[k]
			if s == nil {
				s = make(map[graph.NodeID]struct{})
				realized[k] = s
			}
			s[assign[e.To]] = struct{}{}
		}
		if canEarly && pr.imagesSatisfied(assign, realized) {
			accepted = true
			m.EarlyAccepts++
			return false
		}
		return true
	})
	if accepted {
		return true
	}
	if !foundAny {
		return false
	}

	// Counts are now exact. Search for one isomorphism whose images are all
	// count-valid, pruning candidates through the per-node count filter.
	m.AcceptSearches++
	countOK := func(u int, w graph.NodeID) bool {
		for _, ei := range quantOut[u] {
			e := pr.p.Edges[ei]
			total := pr.g.CountOut(w, pr.edgeLabel[ei])
			if !e.Q.Satisfied(len(realized[realizedKey{ei, w}]), total) {
				return false
			}
		}
		return true
	}
	if !countOK(pr.p.Focus, vx) {
		return false
	}
	ok := false
	pr.runFiltered(vx, m, countOK, func([]graph.NodeID) bool {
		ok = true
		return false
	})
	return ok
}

// imagesSatisfied reports whether every image of the current isomorphism
// already meets its quantifier with the (monotonically growing) realized
// counts. Only sound for GE and universal-EQ quantifiers.
func (pr *program) imagesSatisfied(assign []graph.NodeID, realized map[realizedKey]map[graph.NodeID]struct{}) bool {
	for _, ei := range pr.quant {
		e := pr.p.Edges[ei]
		v := assign[e.From]
		total := pr.g.CountOut(v, pr.edgeLabel[ei])
		need, ok := e.Q.Threshold(total)
		if !ok {
			return false
		}
		cur := len(realized[realizedKey{ei, v}])
		switch {
		case e.Q.Op() == core.GE:
			if cur < need {
				return false
			}
		default: // universal EQ: need == total, counts cannot overshoot
			if cur != need {
				return false
			}
		}
	}
	return true
}

// runFiltered is run over the acceptance sets with an additional per-node
// candidate predicate.
func (pr *program) runFiltered(vx graph.NodeID, m *Metrics, filter func(u int, w graph.NodeID) bool, onIso func([]graph.NodeID) bool) {
	pr.version++
	if pr.version == 0 {
		for i := range pr.used {
			pr.used[i] = 0
		}
		pr.version = 1
	}
	assign := make([]graph.NodeID, len(pr.p.Nodes))
	assign[pr.p.Focus] = vx
	pr.used[vx] = pr.version

	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(pr.order) {
			m.Verifications++
			return onIso(assign)
		}
		u := pr.order[i]
		a := pr.anchors[i]
		e := pr.p.Edges[a.edge]
		l := pr.edgeLabel[a.edge]
		var edges []graph.Edge
		if a.out {
			edges = pr.g.OutByLabel(assign[e.From], l)
		} else {
			edges = pr.g.InByLabel(assign[e.To], l)
		}
		for _, ge := range edges {
			w := ge.To
			m.Extensions++
			if pr.budget > 0 && m.Extensions > pr.budget {
				pr.budgetExceeded = true
				return false
			}
			if pr.used[w] == pr.version || !pr.accept[u].Contains(int(w)) {
				continue
			}
			if !filter(u, w) || !pr.checkBoundEdges(i, u, w, assign) {
				continue
			}
			assign[u] = w
			pr.used[w] = pr.version
			cont := rec(i + 1)
			pr.used[w] = pr.version - 1
			if !cont {
				return false
			}
		}
		return true
	}
	rec(1)
}

// toBitset converts a node list into a bitset of capacity n.
func toBitset(nodes []graph.NodeID, n int) *bitset.Set {
	s := bitset.New(n)
	for _, v := range nodes {
		s.Add(int(v))
	}
	return s
}
