package match

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/fixture"
	"repro/internal/graph"
)

func TestMatchSetsQ2OnG1(t *testing.T) {
	f := fixture.NewG1()
	sets, err := MatchSets(f.G, fixture.Q2(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Q2(xo, G1) = {x1, x2}; their followees v0, v1, v2 are the valid z
	// images; Redmi 2A is the only product image.
	if got := sets["xo"]; !reflect.DeepEqual(got, ids(f.X1, f.X2)) {
		t.Errorf("xo images = %v", got)
	}
	if got := sets["z"]; !reflect.DeepEqual(got, ids(f.V0, f.V1, f.V2)) {
		t.Errorf("z images = %v", got)
	}
	if got := sets["redmi"]; !reflect.DeepEqual(got, ids(f.Redmi)) {
		t.Errorf("redmi images = %v", got)
	}
}

func TestMatchSetsConsistentWithQMatch(t *testing.T) {
	// The focus entry of MatchSets must equal QMatch's answer.
	f := fixture.NewG2()
	pi, _ := fixture.Q4(2).Pi()
	sets, err := MatchSets(f.G, pi, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := QMatch(f.G, pi, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sets["xo"], res.Matches) {
		t.Fatalf("MatchSets focus=%v QMatch=%v", sets["xo"], res.Matches)
	}
}

func TestMatchSetsRejectsNegative(t *testing.T) {
	f := fixture.NewG1()
	if _, err := MatchSets(f.G, fixture.Q3(2), nil); err == nil {
		t.Fatal("negative pattern accepted")
	}
}

func TestMatchSetsEmptyForUnsatisfiable(t *testing.T) {
	f := fixture.NewG1()
	p := core.NewPattern()
	p.AddNode("xo", "person")
	p.AddNode("z", "person")
	p.AddEdge("xo", "z", "follow", core.Count(core.GE, 10))
	sets, err := MatchSets(f.G, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	for name, vs := range sets {
		if len(vs) != 0 {
			t.Errorf("node %s has images %v for an unsatisfiable pattern", name, vs)
		}
	}
}

func TestMatchSetsBudget(t *testing.T) {
	f := fixture.NewG1()
	if _, err := MatchSets(f.G, fixture.Q2(), &Options{ExtensionBudget: 1}); err != ErrBudgetExceeded {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}

func TestMatchSetsRestrict(t *testing.T) {
	f := fixture.NewG1()
	sets, err := MatchSets(f.G, fixture.Q2(), &Options{FocusRestrict: []graph.NodeID{f.X2}})
	if err != nil {
		t.Fatal(err)
	}
	if got := sets["xo"]; !reflect.DeepEqual(got, ids(f.X2)) {
		t.Errorf("restricted xo images = %v", got)
	}
	if got := sets["z"]; !reflect.DeepEqual(got, ids(f.V1, f.V2)) {
		t.Errorf("restricted z images = %v", got)
	}
}
