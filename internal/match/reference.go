package match

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
)

// Reference evaluates a QGP by direct appeal to the definitions of §2.2,
// with no candidate filtering, search ordering, pruning or caching. It is
// deliberately naive — exponential enumeration of all injective
// label-preserving assignments — and exists as the executable
// specification that QMatch, QMatchN and Enum are differentially tested
// against on small instances. Do not use it on graphs beyond a few dozen
// nodes.
func Reference(g *graph.Graph, q *core.Pattern) ([]graph.NodeID, error) {
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("match: %w", err)
	}
	pi, _ := q.Pi()
	if !pi.Connected() {
		return nil, fmt.Errorf("match: Π(Q) is disconnected")
	}
	base := refPositive(g, pi)
	excluded := make(map[graph.NodeID]bool)
	for _, ei := range q.NegatedEdges() {
		pp, _ := q.PiPlus(ei)
		if !pp.Connected() {
			return nil, fmt.Errorf("match: Π(Q+e) is disconnected for edge %d", ei)
		}
		for _, v := range refPositive(g, pp) {
			excluded[v] = true
		}
	}
	var out []graph.NodeID
	for _, v := range base {
		if !excluded[v] {
			out = append(out, v)
		}
	}
	return out, nil
}

// refPositive returns the focus matches of a positive pattern, sorted.
func refPositive(g *graph.Graph, p *core.Pattern) []graph.NodeID {
	isos := allIsomorphisms(g, p)

	// Group stratified isomorphisms by their focus image and collect the
	// realized children Me(vx, v, Q) per (edge, v).
	type group struct {
		isos     [][]graph.NodeID
		realized map[realizedKey]map[graph.NodeID]struct{}
	}
	groups := make(map[graph.NodeID]*group)
	for _, h := range isos {
		vx := h[p.Focus]
		gr := groups[vx]
		if gr == nil {
			gr = &group{realized: make(map[realizedKey]map[graph.NodeID]struct{})}
			groups[vx] = gr
		}
		gr.isos = append(gr.isos, h)
		for ei, e := range p.Edges {
			if e.Q.IsExistential() {
				continue
			}
			k := realizedKey{ei, h[e.From]}
			s := gr.realized[k]
			if s == nil {
				s = make(map[graph.NodeID]struct{})
				gr.realized[k] = s
			}
			s[h[e.To]] = struct{}{}
		}
	}

	var answers []graph.NodeID
	for vx, gr := range groups {
		for _, h := range gr.isos {
			valid := true
			for ei, e := range p.Edges {
				if e.Q.IsExistential() {
					continue
				}
				v := h[e.From]
				total := g.CountOut(v, g.LookupLabel(e.Label))
				if !e.Q.Satisfied(len(gr.realized[realizedKey{ei, v}]), total) {
					valid = false
					break
				}
			}
			if valid {
				answers = append(answers, vx)
				break
			}
		}
	}
	sort.Slice(answers, func(i, j int) bool { return answers[i] < answers[j] })
	return answers
}

// allIsomorphisms enumerates every injective assignment of pattern nodes
// to graph nodes that preserves node labels and realizes every pattern
// edge with its label. Each result slice is a fresh copy indexed by
// pattern node.
func allIsomorphisms(g *graph.Graph, p *core.Pattern) [][]graph.NodeID {
	var out [][]graph.NodeID
	assign := make([]graph.NodeID, len(p.Nodes))
	used := make(map[graph.NodeID]bool)

	var rec func(u int)
	rec = func(u int) {
		if u == len(p.Nodes) {
			for _, e := range p.Edges {
				l := g.LookupLabel(e.Label)
				if l == graph.NoLabel || !g.HasEdge(assign[e.From], assign[e.To], l) {
					return
				}
			}
			out = append(out, append([]graph.NodeID(nil), assign...))
			return
		}
		for v := 0; v < g.NumNodes(); v++ {
			w := graph.NodeID(v)
			if used[w] || g.NodeLabelName(w) != p.Nodes[u].Label {
				continue
			}
			assign[u] = w
			used[w] = true
			rec(u + 1)
			used[w] = false
		}
	}
	rec(0)
	return out
}
