package match

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fixture"
)

// End-to-end tests of the ≤ / ≠ quantifier extension on the paper's G1.

func TestLEOnG1(t *testing.T) {
	// At most 2 recommending followees: x1 (1 of them) and x2 (2) qualify,
	// x3 has 3 (v2, v3 recommend; v4 does not → count 2... with v4 not a
	// recommender x3's count is 2 as well, so x3 qualifies too).
	f := fixture.NewG1()
	p := core.NewPattern()
	p.AddNode("xo", "person")
	p.AddNode("z", "person")
	p.AddNode("r", "Redmi 2A")
	p.AddEdge("xo", "z", "follow", core.Count(core.LE, 2))
	p.AddEdge("z", "r", "recom", core.Exists())
	assertMatches(t, f.G, p, ids(f.X1, f.X2, f.X3))
}

func TestLEOnG1Tight(t *testing.T) {
	// At most 1 recommending followee: only x1.
	f := fixture.NewG1()
	p := core.NewPattern()
	p.AddNode("xo", "person")
	p.AddNode("z", "person")
	p.AddNode("r", "Redmi 2A")
	p.AddEdge("xo", "z", "follow", core.Count(core.LE, 1))
	p.AddEdge("z", "r", "recom", core.Exists())
	assertMatches(t, f.G, p, ids(f.X1))
}

func TestNEOnG1(t *testing.T) {
	// Not exactly 2 recommending followees: x1 (count 1) qualifies; x2 and
	// x3 (count 2 each) do not.
	f := fixture.NewG1()
	p := core.NewPattern()
	p.AddNode("xo", "person")
	p.AddNode("z", "person")
	p.AddNode("r", "Redmi 2A")
	p.AddEdge("xo", "z", "follow", core.Count(core.NE, 2))
	p.AddEdge("z", "r", "recom", core.Exists())
	assertMatches(t, f.G, p, ids(f.X1))
}

func TestLERatioOnG1(t *testing.T) {
	// At most 70% of followees recommend: x3 (2 of 3 ≈ 67%) qualifies;
	// x1 (1/1) and x2 (2/2) are at 100%.
	f := fixture.NewG1()
	p := core.NewPattern()
	p.AddNode("xo", "person")
	p.AddNode("z", "person")
	p.AddNode("r", "Redmi 2A")
	p.AddEdge("xo", "z", "follow", core.RatioPercent(core.LE, 70))
	p.AddEdge("z", "r", "recom", core.Exists())
	assertMatches(t, f.G, p, ids(f.X3))
}

func TestLEWithNegationMix(t *testing.T) {
	// LE quantifier plus a negated branch evaluates through IncQMatch.
	f := fixture.NewG1()
	p := core.NewPattern()
	p.AddNode("xo", "person")
	p.AddNode("z", "person")
	p.AddNode("r", "Redmi 2A")
	p.AddNode("w", "person")
	p.AddEdge("xo", "z", "follow", core.Count(core.LE, 2))
	p.AddEdge("z", "r", "recom", core.Exists())
	p.AddEdge("xo", "w", "follow", core.Negated())
	p.AddEdge("w", "r", "bad_rating", core.Exists())
	// x3 would pass the LE part (count 2) but follows v4 (bad rating).
	assertMatches(t, f.G, p, ids(f.X1, f.X2))
}

func TestGlobalPruningRule(t *testing.T) {
	// Lemma 12: with only one candidate for z but a ≥3 quantifier into it,
	// QMatch must return empty without search work.
	f := fixture.NewG1()
	p := core.NewPattern()
	p.AddNode("xo", "person")
	p.AddNode("z", "Redmi 2A") // a single Redmi node exists
	p.AddEdge("xo", "z", "recom", core.Count(core.GE, 3))
	res, err := QMatch(f.G, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 0 {
		t.Fatalf("matches = %v, want none", res.Matches)
	}
	if res.Metrics.Extensions != 0 {
		t.Fatalf("global pruning did not fire: %d extensions", res.Metrics.Extensions)
	}
	// The answer agrees with the reference, of course.
	ref, err := Reference(f.G, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != 0 {
		t.Fatalf("reference disagrees: %v", ref)
	}
}

func TestExtensionBudget(t *testing.T) {
	f := fixture.NewG1()
	q := fixture.Q2()
	// An absurdly small budget must abort with ErrBudgetExceeded.
	if _, err := QMatch(f.G, q, &Options{ExtensionBudget: 1}); err != ErrBudgetExceeded {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	// A generous budget changes nothing.
	res, err := QMatch(f.G, q, &Options{ExtensionBudget: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 2 {
		t.Fatalf("matches = %v", res.Matches)
	}
}
