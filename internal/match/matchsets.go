package match

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
)

// MatchSets computes Q(u, G) for every pattern node u of a positive QGP:
// the set of graph nodes appearing as the image of u in some
// quantifier-valid match (Table 1 of the paper). The result maps pattern
// node names to sorted node lists; nodes of the pattern with no valid
// match map to empty sets.
//
// Negative patterns are rejected: the paper defines answers of negative
// QGPs only for the focus (via set difference), not per node.
func MatchSets(g *graph.Graph, q *core.Pattern, opts *Options) (map[string][]graph.NodeID, error) {
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("match: %w", err)
	}
	if !q.IsPositive() {
		return nil, fmt.Errorf("match: MatchSets requires a positive pattern")
	}

	out := make(map[string][]graph.NodeID, len(q.Nodes))
	images := make([]map[graph.NodeID]struct{}, len(q.Nodes))
	for i := range images {
		images[i] = make(map[graph.NodeID]struct{})
	}

	pr, err := compile(g, q, true, true, nil)
	if err == nil {
		if opts != nil {
			pr.budget = opts.ExtensionBudget
		}
		if err := collectMatchSets(pr, opts, images); err != nil {
			return nil, err
		}
	}

	for i, n := range q.Nodes {
		vs := make([]graph.NodeID, 0, len(images[i]))
		for v := range images[i] {
			vs = append(vs, v)
		}
		sort.Slice(vs, func(a, b int) bool { return vs[a] < vs[b] })
		out[n.Name] = vs
	}
	return out, nil
}

// collectMatchSets enumerates, per focus candidate, the valid matches and
// records every image. Validity needs exact counts, so early acceptance is
// disabled and each accepted candidate re-enumerates over the count-valid
// filter.
func collectMatchSets(pr *program, opts *Options, images []map[graph.NodeID]struct{}) error {
	quantOut := make([][]int, len(pr.p.Nodes))
	for _, ei := range pr.quant {
		e := pr.p.Edges[ei]
		quantOut[e.From] = append(quantOut[e.From], ei)
	}
	restrict := combineRestrictions(pr.g.NumNodes(), opts, nil)

	var m Metrics
	for _, vx := range pr.focusCandidates() {
		if restrict != nil && !restrict.Contains(int(vx)) {
			continue
		}
		realized := make(map[realizedKey]map[graph.NodeID]struct{})
		found := false
		pr.run(vx, false, &m, func(assign []graph.NodeID) bool {
			found = true
			for _, ei := range pr.quant {
				e := pr.p.Edges[ei]
				k := realizedKey{ei, assign[e.From]}
				s := realized[k]
				if s == nil {
					s = make(map[graph.NodeID]struct{})
					realized[k] = s
				}
				s[assign[e.To]] = struct{}{}
			}
			return true
		})
		if pr.budgetExceeded {
			return ErrBudgetExceeded
		}
		if !found {
			continue
		}
		countOK := func(u int, w graph.NodeID) bool {
			for _, ei := range quantOut[u] {
				e := pr.p.Edges[ei]
				total := pr.g.CountOut(w, pr.edgeLabel[ei])
				if !e.Q.Satisfied(len(realized[realizedKey{ei, w}]), total) {
					return false
				}
			}
			return true
		}
		if !countOK(pr.p.Focus, vx) {
			continue
		}
		pr.runFiltered(vx, &m, countOK, func(assign []graph.NodeID) bool {
			for u, w := range assign {
				images[u][w] = struct{}{}
			}
			return true
		})
		if pr.budgetExceeded {
			return ErrBudgetExceeded
		}
	}
	return nil
}
