package match

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// randGraph builds a small random labeled graph.
func randGraph(r *rand.Rand, maxN int) *graph.Graph {
	n := 3 + r.Intn(maxN-2)
	nodeLabels := []string{"a", "b", "c"}
	edgeLabels := []string{"R", "S"}
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode(nodeLabels[r.Intn(len(nodeLabels))])
	}
	m := r.Intn(3 * n)
	for i := 0; i < m; i++ {
		from := graph.NodeID(r.Intn(n))
		to := graph.NodeID(r.Intn(n))
		if from == to {
			continue
		}
		g.AddEdge(from, to, edgeLabels[r.Intn(len(edgeLabels))])
	}
	g.Finalize()
	return g
}

// randQuantifier draws a quantifier with a bias toward the interesting
// kinds.
func randQuantifier(r *rand.Rand) core.Quantifier {
	switch r.Intn(13) {
	case 0, 1, 2, 3:
		return core.Exists()
	case 4, 5:
		return core.Count(core.GE, 1+r.Intn(3))
	case 6:
		return core.Ratio(core.GE, 1+r.Intn(10000))
	case 7:
		return core.Universal()
	case 8:
		return core.Count(core.EQ, 1+r.Intn(2))
	case 9:
		return core.Count(core.LE, 1+r.Intn(3))
	case 10:
		return core.Count(core.NE, r.Intn(3))
	case 11:
		return core.Ratio(core.LE, 1+r.Intn(10000))
	default:
		return core.Negated()
	}
}

// randPattern builds a random tree-shaped QGP of 2..5 nodes rooted at the
// focus (the shape the paper's restriction targets), retrying until it
// validates.
func randPattern(r *rand.Rand) *core.Pattern {
	nodeLabels := []string{"a", "b", "c"}
	edgeLabels := []string{"R", "S"}
	for {
		p := core.NewPattern()
		n := 2 + r.Intn(4)
		for i := 0; i < n; i++ {
			p.AddNode(fmt.Sprintf("u%d", i), nodeLabels[r.Intn(len(nodeLabels))])
		}
		for i := 1; i < n; i++ {
			parent := fmt.Sprintf("u%d", r.Intn(i))
			child := fmt.Sprintf("u%d", i)
			q := randQuantifier(r)
			if r.Intn(4) == 0 && !q.IsNegation() {
				// Occasionally reverse the edge (child points at parent).
				p.AddEdge(child, parent, edgeLabels[r.Intn(len(edgeLabels))], q)
			} else {
				p.AddEdge(parent, child, edgeLabels[r.Intn(len(edgeLabels))], q)
			}
		}
		if p.Validate() != nil {
			continue
		}
		if pi, _ := p.Pi(); !pi.Connected() {
			continue
		}
		return p
	}
}

// TestDifferentialRandom cross-checks QMatch, QMatchN and Enum against the
// naive Reference evaluator on seeded random instances. This is the
// load-bearing correctness test for the core contribution.
func TestDifferentialRandom(t *testing.T) {
	iters := 400
	if testing.Short() {
		iters = 60
	}
	for seed := 0; seed < iters; seed++ {
		r := rand.New(rand.NewSource(int64(seed)))
		g := randGraph(r, 10)
		q := randPattern(r)

		want, err := Reference(g, q)
		if err != nil {
			t.Fatalf("seed %d: Reference: %v\npattern:\n%s", seed, err, q)
		}
		for name, algo := range algorithms {
			res, err := algo(g, q, nil)
			if err != nil {
				t.Fatalf("seed %d: %s: %v\npattern:\n%s", seed, name, err, q)
			}
			got := res.Matches
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				var buf string
				gw := &stringWriter{&buf}
				g.WriteTo(gw)
				t.Fatalf("seed %d: %s = %v, want %v\npattern:\n%s\ngraph:\n%s",
					seed, name, got, want, q, buf)
			}
		}
	}
}

type stringWriter struct{ s *string }

func (w *stringWriter) Write(p []byte) (int, error) {
	*w.s += string(p)
	return len(p), nil
}

// TestDifferentialPositiveLarger drives the three engines (not Reference,
// which is too slow) against each other on somewhat larger instances.
func TestDifferentialPositiveLarger(t *testing.T) {
	iters := 120
	if testing.Short() {
		iters = 20
	}
	for seed := 1000; seed < 1000+iters; seed++ {
		r := rand.New(rand.NewSource(int64(seed)))
		g := randGraph(r, 60)
		q := randPattern(r)

		var want []graph.NodeID
		first := true
		for name, algo := range algorithms {
			res, err := algo(g, q, nil)
			if err != nil {
				t.Fatalf("seed %d: %s: %v", seed, name, err)
			}
			if first {
				want = res.Matches
				first = false
				continue
			}
			if len(res.Matches) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(res.Matches, want) {
				t.Fatalf("seed %d: %s = %v, others = %v\npattern:\n%s",
					seed, name, res.Matches, want, q)
			}
		}
	}
}

// TestDifferentialLabelOnlyCandidates exercises the engine without the
// simulation prefilter (label-only candidate sets) against Reference, so
// both candidate strategies stay verified.
func TestDifferentialLabelOnlyCandidates(t *testing.T) {
	for seed := 3000; seed < 3150; seed++ {
		r := rand.New(rand.NewSource(int64(seed)))
		g := randGraph(r, 10)
		q := randPattern(r)
		want, err := Reference(g, q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eval(g, q, nil, evalConfig{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(res.Matches) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(res.Matches, want) {
			t.Fatalf("seed %d: label-only eval = %v, want %v\npattern:\n%s",
				seed, res.Matches, want, q)
		}
	}
}

// TestQMatchNeverMoreVerificationsThanEnum checks the paper's efficiency
// claim on random instances: QMatch's pruning and early acceptance never
// inspect more complete isomorphisms than enumerate-then-verify.
func TestQMatchNeverMoreVerificationsThanEnum(t *testing.T) {
	for seed := 2000; seed < 2100; seed++ {
		r := rand.New(rand.NewSource(int64(seed)))
		g := randGraph(r, 40)
		q := randPattern(r)
		rq, err := QMatch(g, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		re, err := Enum(g, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if rq.Metrics.Verifications > re.Metrics.Verifications {
			t.Errorf("seed %d: QMatch verified %d > Enum %d\npattern:\n%s",
				seed, rq.Metrics.Verifications, re.Metrics.Verifications, q)
		}
	}
}
