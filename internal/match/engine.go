package match

import (
	"repro/internal/graph"
)

// Metrics records the work performed by an evaluation. The paper measures
// algorithms by their number of verifications (complete-isomorphism
// checks); Extensions counts candidate extension attempts (IsExtend calls
// in the generic Match of Fig. 4).
type Metrics struct {
	FocusCandidates int   // |C(xo)| after filtering
	Verifications   int   // complete isomorphisms inspected (Verify calls)
	Extensions      int64 // candidate extension attempts
	EarlyAccepts    int   // focus candidates accepted before exhaustive search
	AcceptSearches  int   // phase-2 acceptance searches (EQ quantifiers)
	IncRuns         int   // IncQMatch invocations (one per negated edge)
	IncCandidates   int   // focus candidates re-examined by IncQMatch
}

// Add accumulates other into m.
func (m *Metrics) Add(other Metrics) {
	m.FocusCandidates += other.FocusCandidates
	m.Verifications += other.Verifications
	m.Extensions += other.Extensions
	m.EarlyAccepts += other.EarlyAccepts
	m.AcceptSearches += other.AcceptSearches
	m.IncRuns += other.IncRuns
	m.IncCandidates += other.IncCandidates
}

// run enumerates isomorphisms of the compiled pattern with the focus bound
// to vx, over the candidate sets selected by restrict (one bitset per
// pattern node; nil entries fall back to pr.cand). onIso is invoked for
// every complete isomorphism; returning false stops the enumeration.
//
// assign is indexed by pattern node; the slice passed to onIso is reused
// across calls and must not be retained.
func (pr *program) run(vx graph.NodeID, acceptance bool, m *Metrics, onIso func(assign []graph.NodeID) bool) {
	pr.version++
	if pr.version == 0 { // stamp wrap-around: reset
		for i := range pr.used {
			pr.used[i] = 0
		}
		pr.version = 1
	}
	assign := make([]graph.NodeID, len(pr.p.Nodes))
	assign[pr.p.Focus] = vx
	pr.used[vx] = pr.version

	sets := pr.cand
	if acceptance {
		sets = pr.accept
	}

	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(pr.order) {
			m.Verifications++
			return onIso(assign)
		}
		u := pr.order[i]
		a := pr.anchors[i]
		e := pr.p.Edges[a.edge]
		l := pr.edgeLabel[a.edge]
		var edges []graph.Edge
		if a.out {
			edges = pr.g.OutByLabel(assign[e.From], l)
		} else {
			edges = pr.g.InByLabel(assign[e.To], l)
		}
		for _, ge := range edges {
			w := ge.To
			m.Extensions++
			if pr.budget > 0 && m.Extensions > pr.budget {
				pr.budgetExceeded = true
				return false
			}
			if pr.used[w] == pr.version || !sets[u].Contains(int(w)) {
				continue
			}
			if !pr.checkBoundEdges(i, u, w, assign) {
				continue
			}
			assign[u] = w
			pr.used[w] = pr.version
			cont := rec(i + 1)
			pr.used[w] = pr.version - 1
			if !cont {
				return false
			}
		}
		return true
	}
	rec(1)
}

// checkBoundEdges verifies the pattern edges that become fully bound when
// node u is assigned w.
func (pr *program) checkBoundEdges(i, u int, w graph.NodeID, assign []graph.NodeID) bool {
	for _, ei := range pr.checks[i] {
		e := pr.p.Edges[ei]
		l := pr.edgeLabel[ei]
		var from, to graph.NodeID
		if e.From == u {
			from, to = w, assign[e.To]
		} else {
			from, to = assign[e.From], w
		}
		if !pr.g.HasEdge(from, to, l) {
			return false
		}
	}
	return true
}
