package match

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/graph"
)

// Result is the outcome of a quantified matching run: the sorted matches
// of the query focus, Q(xo, G), and the work metrics. Profile is non-nil
// only when Options.CollectProfile was set.
type Result struct {
	Matches []graph.NodeID
	Metrics Metrics
	Profile *Profile
}

// Options tunes an evaluation.
type Options struct {
	// FocusRestrict, when non-empty, restricts evaluation to these focus
	// candidates. Parallel workers use it to evaluate only the nodes their
	// fragment covers.
	FocusRestrict []graph.NodeID
	// ExtensionBudget, when > 0, aborts the evaluation with
	// ErrBudgetExceeded once the engine has attempted that many candidate
	// extensions. Use it to bound worst-case exponential searches (cost
	// probes, interactive time limits).
	ExtensionBudget int64
	// OrderBy, when non-nil, proposes a matching order for each positive
	// pattern the evaluation compiles (Π(Q) and every positified Q+e). It
	// receives the pattern and returns a permutation of its node indexes;
	// the engine follows the proposal as far as connectivity allows and
	// falls back to its default breadth-first order when the proposal is
	// nil or not a permutation. internal/plan provides a statistics-driven
	// implementation.
	OrderBy func(p *core.Pattern) []int
	// CollectProfile, when set, records a per-stage Profile (prefilter
	// sizes, matching order, timings) into Result.Profile. Collection
	// cost is a handful of bitset counts and clock reads per compiled
	// pattern — negligible against evaluation, but nonzero, so it is
	// opt-in.
	CollectProfile bool
}

// ErrBudgetExceeded is returned when Options.ExtensionBudget ran out
// before the evaluation completed. Partial results are discarded: the
// exact semantics admit no sound partial answer.
var ErrBudgetExceeded = fmt.Errorf("match: extension budget exceeded")

// combineRestrictions intersects the caller's FocusRestrict option with an
// algorithm-internal restriction (IncQMatch). A nil result means no
// restriction.
func combineRestrictions(n int, opts *Options, internal []graph.NodeID) *bitset.Set {
	var fromOpts, fromInternal *bitset.Set
	if opts != nil && len(opts.FocusRestrict) > 0 {
		fromOpts = toBitset(opts.FocusRestrict, n)
	}
	if internal != nil {
		fromInternal = toBitset(internal, n)
	}
	switch {
	case fromOpts == nil:
		return fromInternal
	case fromInternal == nil:
		return fromOpts
	default:
		fromOpts.IntersectWith(fromInternal)
		return fromOpts
	}
}

// QMatch evaluates a QGP with the paper's optimized algorithm (§4):
// simulation-filtered candidates, quantifier-threshold pruning of the
// acceptance search, early termination, and incremental IncQMatch
// processing of negated edges against the cached Π(Q) answers.
func QMatch(g *graph.Graph, q *core.Pattern, opts *Options) (*Result, error) {
	return eval(g, q, opts, evalConfig{useSim: true, quantFilter: true, earlyAccept: true, incremental: true})
}

// QMatchN is QMatch without IncQMatch: each positified pattern Q+e is
// re-evaluated from scratch over the full candidate space (the ablation
// baseline of Exp-1 and Exp-2).
func QMatchN(g *graph.Graph, q *core.Pattern, opts *Options) (*Result, error) {
	return eval(g, q, opts, evalConfig{useSim: true, quantFilter: true, earlyAccept: true, incremental: false})
}

// Enum is the enumerate-then-verify baseline (§7): a conventional
// subgraph-isomorphism engine (with the same simulation-based candidate
// filtering as QMatch, standing in for the state-of-the-art engine the
// paper uses) enumerates all matches of the stratified pattern and
// verifies quantifiers afterwards — no quantifier-aware pruning, no early
// acceptance, no incremental negation handling.
func Enum(g *graph.Graph, q *core.Pattern, opts *Options) (*Result, error) {
	return eval(g, q, opts, evalConfig{useSim: true, quantFilter: false, earlyAccept: false, incremental: false})
}

type evalConfig struct {
	useSim      bool
	quantFilter bool
	earlyAccept bool
	incremental bool
}

func eval(g *graph.Graph, q *core.Pattern, opts *Options, cfg evalConfig) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("match: %w", err)
	}
	res := &Result{}
	var t0 time.Time
	if opts != nil && opts.CollectProfile {
		res.Profile = &Profile{}
		t0 = time.Now()
	}

	pi, _ := q.Pi()
	if !pi.Connected() {
		return nil, fmt.Errorf("match: Π(Q) is disconnected; the pattern cannot be evaluated")
	}

	base, err := evalPattern(g, pi, "pi", opts, cfg, nil, &res.Metrics, res.Profile)
	if err != nil {
		return nil, err
	}

	neg := q.NegatedEdges()
	if len(neg) == 0 || len(base) == 0 {
		res.Matches = base
		finishProfile(res, t0)
		return res, nil
	}

	// Q(xo, G) = Π(Q)(xo, G) \ ⋃e Π(Q+e)(xo, G). Only the intersection with
	// the base answers matters, so IncQMatch restricts the focus candidates
	// of each positified pattern to the cached Π(Q) matches.
	excluded := make(map[graph.NodeID]bool)
	for _, ei := range neg {
		pp, _ := q.PiPlus(ei)
		if !pp.Connected() {
			return nil, fmt.Errorf("match: Π(Q+e) is disconnected for edge %d", ei)
		}
		var restrict []graph.NodeID
		if cfg.incremental {
			res.Metrics.IncRuns++
			restrict = base
			res.Metrics.IncCandidates += len(base)
		}
		minus, err := evalPattern(g, pp, fmt.Sprintf("pi+e%d", ei), opts, cfg, restrict, &res.Metrics, res.Profile)
		if err != nil {
			return nil, err
		}
		for _, v := range minus {
			excluded[v] = true
		}
	}
	out := base[:0:0]
	for _, v := range base {
		if !excluded[v] {
			out = append(out, v)
		}
	}
	res.Matches = out
	finishProfile(res, t0)
	return res, nil
}

// finishProfile stamps the evaluation total onto a collected profile.
func finishProfile(res *Result, t0 time.Time) {
	if res.Profile == nil {
		return
	}
	res.Profile.TotalMS = msSince(t0)
	res.Profile.Metrics = res.Metrics
}

// msSince returns the elapsed time since t0 in fractional milliseconds.
func msSince(t0 time.Time) float64 {
	return float64(time.Since(t0).Microseconds()) / 1000
}

// evalPattern compiles and evaluates one positive pattern. restrict, when
// non-nil, limits focus candidates (incremental evaluation); the caller's
// FocusRestrict option is applied on top. name labels the pattern in the
// profile; prof, when non-nil, receives one PatternProfile entry.
func evalPattern(g *graph.Graph, p *core.Pattern, name string, opts *Options, cfg evalConfig, restrict []graph.NodeID, m *Metrics, prof *Profile) ([]graph.NodeID, error) {
	var pp *PatternProfile
	var before Metrics
	var t0 time.Time
	if prof != nil {
		prof.Patterns = append(prof.Patterns, PatternProfile{Pattern: name})
		pp = &prof.Patterns[len(prof.Patterns)-1]
		before = *m
		t0 = time.Now()
	}
	var pref []int
	if opts != nil && opts.OrderBy != nil {
		pref = opts.OrderBy(p)
	}
	set := combineRestrictions(g.NumNodes(), opts, restrict)
	if cfg.useSim && set != nil && set.Count()*8 <= g.NumNodes() {
		// Focus-scoped fast path: simulation and the acceptance filter
		// cost O(|G|) per evaluation no matter how few focus candidates
		// are asked about, while the anchored search itself only visits
		// the candidates' neighborhoods. With a small restriction the
		// label-based candidate sets win outright. Answers are identical:
		// the filters are sound over-approximations that prune the
		// search without changing the enumerated isomorphisms.
		cfg.useSim, cfg.quantFilter = false, false
		if pp != nil {
			pp.FastPath = true
		}
	}
	if pp != nil && set != nil {
		pp.Restricted = set.Count()
	}
	pr, err := compile(g, p, cfg.useSim, cfg.quantFilter, pref)
	if pp != nil {
		pp.CompileMS = msSince(t0)
	}
	if err != nil {
		if pp != nil {
			pp.Empty = true
		}
		return nil, nil
	}
	if pp != nil {
		for u := range p.Nodes {
			pp.Nodes = append(pp.Nodes, NodeProfile{
				Name:       p.Nodes[u].Name,
				Candidates: pr.cand[u].Count(),
				Accepted:   pr.accept[u].Count(),
			})
		}
		for _, u := range pr.order {
			pp.Order = append(pp.Order, p.Nodes[u].Name)
		}
	}
	if opts != nil {
		pr.budget = opts.ExtensionBudget
	}
	t1 := time.Now()
	answers := evalPositive(pr, set, cfg.earlyAccept, m)
	if pr.budgetExceeded {
		return nil, ErrBudgetExceeded
	}
	sort.Slice(answers, func(i, j int) bool { return answers[i] < answers[j] })
	if pp != nil {
		pp.EvalMS = msSince(t1)
		pp.Answers = len(answers)
		pp.Metrics = metricsDelta(*m, before)
	}
	return answers, nil
}
