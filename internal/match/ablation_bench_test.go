package match

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// Ablation benchmarks for QMatch's design choices (DESIGN.md §4): each
// lever — simulation-based candidate filtering, the quantifier-threshold
// acceptance filter, early acceptance, incremental negation handling — is
// toggled independently against the same seeded workload. Run with
//
//	go test -bench=Ablation -benchmem ./internal/match/

func ablationWorkload(b *testing.B) (*graph.Graph, *core.Pattern) {
	b.Helper()
	g := gen.Social(gen.DefaultSocial(1200, 7))
	q := gen.Pattern(g, gen.PatternConfig{Nodes: 5, Edges: 6, RatioBP: 4000, NegEdges: 1, Seed: 3})
	return g, q
}

func runAblation(b *testing.B, cfg evalConfig) {
	g, q := ablationWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval(g, q, nil, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationFull(b *testing.B) {
	runAblation(b, evalConfig{useSim: true, quantFilter: true, earlyAccept: true, incremental: true})
}

func BenchmarkAblationNoSimulation(b *testing.B) {
	runAblation(b, evalConfig{useSim: false, quantFilter: true, earlyAccept: true, incremental: true})
}

func BenchmarkAblationNoQuantFilter(b *testing.B) {
	runAblation(b, evalConfig{useSim: true, quantFilter: false, earlyAccept: true, incremental: true})
}

func BenchmarkAblationNoEarlyAccept(b *testing.B) {
	runAblation(b, evalConfig{useSim: true, quantFilter: true, earlyAccept: false, incremental: true})
}

func BenchmarkAblationNoIncremental(b *testing.B) {
	runAblation(b, evalConfig{useSim: true, quantFilter: true, earlyAccept: true, incremental: false})
}

func BenchmarkAblationNone(b *testing.B) {
	runAblation(b, evalConfig{})
}

// TestAblationConfigsAgree pins the ablation benchmarks to identical
// answers: every lever is a pure optimization.
func TestAblationConfigsAgree(t *testing.T) {
	g := gen.Social(gen.DefaultSocial(600, 7))
	q := gen.Pattern(g, gen.PatternConfig{Nodes: 4, Edges: 5, RatioBP: 4000, NegEdges: 1, Seed: 3})
	configs := []evalConfig{
		{useSim: true, quantFilter: true, earlyAccept: true, incremental: true},
		{useSim: false, quantFilter: true, earlyAccept: true, incremental: true},
		{useSim: true, quantFilter: false, earlyAccept: true, incremental: true},
		{useSim: true, quantFilter: true, earlyAccept: false, incremental: true},
		{useSim: true, quantFilter: true, earlyAccept: true, incremental: false},
		{},
	}
	var want []graph.NodeID
	for i, cfg := range configs {
		res, err := eval(g, q, nil, cfg)
		if err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
		if i == 0 {
			want = res.Matches
			continue
		}
		if len(res.Matches) != len(want) {
			t.Fatalf("config %d: %d matches, config 0: %d", i, len(res.Matches), len(want))
		}
		for j := range want {
			if res.Matches[j] != want[j] {
				t.Fatalf("config %d disagrees at %d", i, j)
			}
		}
	}
}
