package match

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// Property: tightening a GE quantifier (raising p) never adds answers —
// the answer-set counterpart of Lemma 10's support anti-monotonicity.
func TestQuickAnswerAntiMonotone(t *testing.T) {
	for seed := 5000; seed < 5120; seed++ {
		r := rand.New(rand.NewSource(int64(seed)))
		g := randGraph(r, 30)

		build := func(n int, ratioBP int) *core.Pattern {
			p := core.NewPattern()
			p.AddNode("xo", "a")
			p.AddNode("z", "b")
			p.AddNode("w", "c")
			var q core.Quantifier
			if ratioBP > 0 {
				q = core.Ratio(core.GE, ratioBP)
			} else {
				q = core.Count(core.GE, n)
			}
			p.AddEdge("xo", "z", "R", q)
			p.AddEdge("z", "w", "S", core.Exists())
			return p
		}

		var prev map[graph.NodeID]bool
		for _, n := range []int{1, 2, 3} {
			res, err := QMatch(g, build(n, 0), nil)
			if err != nil {
				t.Fatal(err)
			}
			cur := toSet(res.Matches)
			if prev != nil && !subset(cur, prev) {
				t.Fatalf("seed %d: answers grew when raising numeric p to %d", seed, n)
			}
			prev = cur
		}

		prev = nil
		for _, bp := range []int{2000, 5000, 9000} {
			res, err := QMatch(g, build(0, bp), nil)
			if err != nil {
				t.Fatal(err)
			}
			cur := toSet(res.Matches)
			if prev != nil && !subset(cur, prev) {
				t.Fatalf("seed %d: answers grew when raising ratio to %d bp", seed, bp)
			}
			prev = cur
		}
	}
}

// Property: adding a negated edge never adds answers.
func TestQuickNegationShrinks(t *testing.T) {
	for seed := 6000; seed < 6100; seed++ {
		r := rand.New(rand.NewSource(int64(seed)))
		g := randGraph(r, 30)

		base := core.NewPattern()
		base.AddNode("xo", "a")
		base.AddNode("z", "b")
		base.AddEdge("xo", "z", "R", core.Exists())

		withNeg := core.NewPattern()
		withNeg.AddNode("xo", "a")
		withNeg.AddNode("z", "b")
		withNeg.AddNode("n", "c")
		withNeg.AddEdge("xo", "z", "R", core.Exists())
		withNeg.AddEdge("xo", "n", "S", core.Negated())

		rb, err := QMatch(g, base, nil)
		if err != nil {
			t.Fatal(err)
		}
		rn, err := QMatch(g, withNeg, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !subset(toSet(rn.Matches), toSet(rb.Matches)) {
			t.Fatalf("seed %d: negation added answers: %v vs %v", seed, rn.Matches, rb.Matches)
		}
	}
}

func toSet(vs []graph.NodeID) map[graph.NodeID]bool {
	m := make(map[graph.NodeID]bool, len(vs))
	for _, v := range vs {
		m[v] = true
	}
	return m
}

func subset(a, b map[graph.NodeID]bool) bool {
	for v := range a {
		if !b[v] {
			return false
		}
	}
	return true
}
