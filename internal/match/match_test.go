package match

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/fixture"
	"repro/internal/graph"
)

// algorithms under differential test. Each must implement the exact
// semantics of §2.2.
var algorithms = map[string]func(*graph.Graph, *core.Pattern, *Options) (*Result, error){
	"QMatch":  QMatch,
	"QMatchN": QMatchN,
	"Enum":    Enum,
}

func ids(vs ...graph.NodeID) []graph.NodeID { return vs }

func assertMatches(t *testing.T, g *graph.Graph, q *core.Pattern, want []graph.NodeID) {
	t.Helper()
	for name, algo := range algorithms {
		res, err := algo(g, q, nil)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		got := res.Matches
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	ref, err := Reference(g, q)
	if err != nil {
		t.Fatalf("Reference: %v", err)
	}
	if !(len(ref) == 0 && len(want) == 0) && !reflect.DeepEqual(ref, want) {
		t.Errorf("Reference = %v, want %v", ref, want)
	}
}

// --- Paper examples -----------------------------------------------------

func TestQ2OnG1(t *testing.T) {
	// Example 3: Q2(xo, G1) = {x1, x2}; x3 fails the universal quantifier.
	f := fixture.NewG1()
	assertMatches(t, f.G, fixture.Q2(), ids(f.X1, f.X2))
}

func TestPiQ3OnG1(t *testing.T) {
	// Example 4: Π(Q3)(xo, G1) = {x2, x3} for p=2; x1 has only one
	// recommending followee.
	f := fixture.NewG1()
	pi, _ := fixture.Q3(2).Pi()
	assertMatches(t, f.G, pi, ids(f.X2, f.X3))
}

func TestQ3OnG1(t *testing.T) {
	// Example 4: Q3(xo, G1) = {x2}; x3 follows v4 who bad-rated Redmi 2A.
	f := fixture.NewG1()
	assertMatches(t, f.G, fixture.Q3(2), ids(f.X2))
}

func TestQ3PositifiedOnG1(t *testing.T) {
	// Example 4: Π(Q3+e)(xo, G1) = {x3}.
	f := fixture.NewG1()
	pp, _ := fixture.Q3(2).PiPlus(2)
	assertMatches(t, f.G, pp, ids(f.X3))
}

func TestQ4OnG2(t *testing.T) {
	// Example 4: Q4(xo, G2) = {x5, x6} for p=2; x4 is excluded by the
	// negation on (xo, PhD).
	f := fixture.NewG2()
	assertMatches(t, f.G, fixture.Q4(2), ids(f.X5, f.X6))
}

func TestQ4OnG2HighP(t *testing.T) {
	// With p=3 no professor has enough advisees.
	f := fixture.NewG2()
	assertMatches(t, f.G, fixture.Q4(3), nil)
}

func TestQ5OnG2(t *testing.T) {
	// All professors in G2 are in the UK, so the non-UK pattern Q5 finds
	// nothing.
	f := fixture.NewG2()
	assertMatches(t, f.G, fixture.Q5(), nil)
}

func TestQ1(t *testing.T) {
	// Q1 on a small custom graph: u0 in a music club with 4 followees, 3
	// of whom (75%) like the album — below 80%; u1 with 4 of 5 (80%) — a
	// match.
	g := graph.New(16)
	club := g.AddNode("music club")
	album := g.AddNode("album")
	u0 := g.AddNode("person")
	u1 := g.AddNode("person")
	g.AddEdge(u0, club, "in")
	g.AddEdge(u1, club, "in")
	for i := 0; i < 4; i++ {
		z := g.AddNode("person")
		g.AddEdge(u0, z, "follow")
		if i < 3 {
			g.AddEdge(z, album, "like")
		}
	}
	for i := 0; i < 5; i++ {
		z := g.AddNode("person")
		g.AddEdge(u1, z, "follow")
		if i < 4 {
			g.AddEdge(z, album, "like")
		}
	}
	g.Finalize()
	assertMatches(t, g, fixture.Q1(), ids(u1))
}

// --- API behaviour ------------------------------------------------------

func TestFocusRestrict(t *testing.T) {
	f := fixture.NewG1()
	res, err := QMatch(f.G, fixture.Q2(), &Options{FocusRestrict: ids(f.X2, f.X3)})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Matches, ids(f.X2)) {
		t.Fatalf("restricted matches = %v, want [x2]", res.Matches)
	}
}

func TestInvalidPatternRejected(t *testing.T) {
	f := fixture.NewG1()
	bad := core.NewPattern()
	bad.AddNode("a", "person")
	bad.AddNode("b", "person")
	// disconnected
	for name, algo := range algorithms {
		if _, err := algo(f.G, bad, nil); err == nil {
			t.Errorf("%s accepted an invalid pattern", name)
		}
	}
}

func TestAbsentLabels(t *testing.T) {
	f := fixture.NewG1()
	p := core.NewPattern()
	p.AddNode("xo", "martian")
	p.AddNode("z", "person")
	p.AddEdge("xo", "z", "follow", core.Exists())
	assertMatches(t, f.G, p, nil)

	p2 := core.NewPattern()
	p2.AddNode("xo", "person")
	p2.AddNode("z", "person")
	p2.AddEdge("xo", "z", "teleport", core.Exists())
	assertMatches(t, f.G, p2, nil)
}

func TestSingleNodePattern(t *testing.T) {
	f := fixture.NewG1()
	p := core.NewPattern()
	p.AddNode("xo", "Redmi 2A")
	assertMatches(t, f.G, p, ids(f.Redmi))
}

func TestNumericEQQuantifier(t *testing.T) {
	// Exactly 2 recommending followees: x2 (v1, v2) and x3 (v2, v3)
	// qualify; x1 has 1.
	f := fixture.NewG1()
	p := core.NewPattern()
	p.AddNode("xo", "person")
	p.AddNode("z", "person")
	p.AddNode("r", "Redmi 2A")
	p.AddEdge("xo", "z", "follow", core.Count(core.EQ, 2))
	p.AddEdge("z", "r", "recom", core.Exists())
	assertMatches(t, f.G, p, ids(f.X2, f.X3))
}

func TestMetricsPopulated(t *testing.T) {
	f := fixture.NewG1()
	res, err := QMatch(f.G, fixture.Q3(2), nil)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.Verifications == 0 || m.Extensions == 0 {
		t.Errorf("metrics not populated: %+v", m)
	}
	if m.IncRuns != 1 {
		t.Errorf("IncRuns = %d, want 1 (one negated edge)", m.IncRuns)
	}

	var sum Metrics
	sum.Add(m)
	sum.Add(m)
	if sum.Verifications != 2*m.Verifications {
		t.Error("Metrics.Add is broken")
	}
}

func TestIncQMatchDoesLessWork(t *testing.T) {
	// On Q3, IncQMatch restricts the positified evaluation to the cached
	// Π(Q3) matches, so QMatch must not verify more than QMatchN.
	f := fixture.NewG1()
	rq, err := QMatch(f.G, fixture.Q3(2), nil)
	if err != nil {
		t.Fatal(err)
	}
	rn, err := QMatchN(f.G, fixture.Q3(2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rq.Matches, rn.Matches) {
		t.Fatalf("QMatch=%v QMatchN=%v", rq.Matches, rn.Matches)
	}
	if rq.Metrics.FocusCandidates > rn.Metrics.FocusCandidates {
		t.Errorf("IncQMatch examined more focus candidates (%d) than recompute (%d)",
			rq.Metrics.FocusCandidates, rn.Metrics.FocusCandidates)
	}
}
