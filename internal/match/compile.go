// Package match implements quantified graph pattern matching: the generic
// backtracking engine (Match, after Lee et al.'s common framework), the
// Enum baseline (enumerate all isomorphisms, then verify quantifiers), the
// optimized QMatch/DMatch algorithm with simulation-based filtering,
// quantifier-aware pruning and early acceptance, and the incremental
// IncQMatch procedure for negated edges (§4 of the paper).
package match

import (
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/simulation"
)

// program is a pattern compiled against a graph: resolved labels, a
// connected matching order anchored at the focus, and per-step edge checks.
type program struct {
	g *graph.Graph
	p *core.Pattern

	edgeLabel []graph.LabelID // resolved edge labels (NoLabel → unmatchable)
	order     []int           // pattern node indexes; order[0] is the focus
	anchors   []anchorInfo    // per position ≥ 1: how to generate candidates
	checks    [][]int         // per position: edges verified once this node binds
	quant     []int           // non-existential, non-negated edge indexes

	// cand[u] over-approximates the stratified-isomorphism images of u
	// (label-only for Enum, dual simulation for QMatch). Counting is sound
	// against these sets.
	cand []*bitset.Set
	// accept[u] further filters candidates that can appear in a
	// quantifier-valid match (threshold test of Lemma 13). Only acceptance
	// search uses it; counting must not (counts range over all stratified
	// isomorphisms).
	accept []*bitset.Set

	// hasEQ reports a numeric/ratio EQ quantifier that is not universal
	// (count == total); such patterns cannot early-accept.
	hasEQ bool

	used    []uint32 // injectivity stamps, indexed by graph node
	version uint32

	// budget, when > 0, caps total extension attempts; budgetExceeded is
	// set when the cap fires and the evaluation must be discarded.
	budget         int64
	budgetExceeded bool
}

type anchorInfo struct {
	edge int
	out  bool // true: anchor is Edges[edge].From, candidates are its children
}

var errNoMatches = fmt.Errorf("match: empty candidate set")

// compile builds a program for a positive pattern. useSim selects dual
// simulation (plain, for counting) as the candidate filter; otherwise
// candidates are label-based. quantFilter additionally computes the
// acceptance filter from quantifier thresholds. pref, when a valid
// permutation of node indexes, guides the matching order (see buildOrder).
// compile returns errNoMatches when some candidate set is empty (the
// caller returns an empty answer).
func compile(g *graph.Graph, p *core.Pattern, useSim, quantFilter bool, pref []int) (*program, error) {
	if len(p.NegatedEdges()) != 0 {
		panic("match: compile requires a positive pattern (apply Pi first)")
	}
	pr := &program{g: g, p: p}

	pr.edgeLabel = make([]graph.LabelID, len(p.Edges))
	for i, e := range p.Edges {
		pr.edgeLabel[i] = g.LookupLabel(e.Label)
		if pr.edgeLabel[i] == graph.NoLabel {
			return nil, errNoMatches
		}
	}
	for i, e := range p.Edges {
		if !e.Q.IsExistential() {
			pr.quant = append(pr.quant, i)
			// Only GE quantifiers (and the universal = 100%, whose count
			// cannot overshoot) admit early acceptance; EQ/LE/NE need the
			// exact final counts.
			if e.Q.Op() != core.GE && !e.Q.IsUniversal() {
				pr.hasEQ = true
			}
		}
	}

	// Candidate sets: label-only or plain dual simulation (stratified-sound).
	if useSim {
		sets, ok := simulation.Candidates(g, p, false)
		if !ok {
			return nil, errNoMatches
		}
		pr.cand = sets
	} else {
		pr.cand = make([]*bitset.Set, len(p.Nodes))
		for u, pn := range p.Nodes {
			pr.cand[u] = bitset.New(g.NumNodes())
			for _, v := range g.NodesByLabelName(pn.Label) {
				pr.cand[u].Add(int(v))
			}
			if pr.cand[u].Empty() {
				return nil, errNoMatches
			}
		}
	}

	if quantFilter {
		pr.accept = pr.acceptanceFilter()
		if pr.accept[p.Focus].Empty() {
			return nil, errNoMatches
		}
		// Global pruning rule (Lemma 12): the focus has a match only if
		// every pattern node u′ has at least pm candidates, where pm is
		// the largest numeric GE threshold over u′'s incoming quantified
		// edges — a match of u needs that many distinct children matching
		// u′.
		for _, ei := range pr.quant {
			e := p.Edges[ei]
			if e.Q.IsRatio() || e.Q.Op() != core.GE {
				continue
			}
			if pr.cand[e.To].Count() < e.Q.N() {
				return nil, errNoMatches
			}
		}
	} else {
		pr.accept = pr.cand
	}

	pr.buildOrder(pref)
	pr.used = make([]uint32, g.NumNodes())
	return pr, nil
}

// acceptanceFilter computes accept[u] ⊆ cand[u]: candidates whose viable
// child counts (within cand, which is stratified-sound) can still satisfy
// every quantified out-edge threshold. A single pass suffices: thresholds
// are judged against cand-based upper bounds, which do not shrink.
func (pr *program) acceptanceFilter() []*bitset.Set {
	accept := make([]*bitset.Set, len(pr.p.Nodes))
	for u := range pr.p.Nodes {
		accept[u] = pr.cand[u].Clone()
	}
	for _, ei := range pr.quant {
		e := pr.p.Edges[ei]
		l := pr.edgeLabel[ei]
		var removed []int
		accept[e.From].ForEach(func(vi int) bool {
			v := graph.NodeID(vi)
			total := pr.g.CountOut(v, l)
			need, ok := e.Q.Threshold(total)
			if !ok {
				removed = append(removed, vi)
				return true
			}
			upper := 0
			for _, ge := range pr.g.OutByLabel(v, l) {
				if pr.cand[e.To].Contains(int(ge.To)) {
					upper++
				}
			}
			if upper < need || upper < 1 {
				removed = append(removed, vi)
			}
			return true
		})
		for _, vi := range removed {
			accept[e.From].Remove(vi)
		}
	}
	return accept
}

// buildOrder computes the matching order: every position after the first
// is adjacent to the matched prefix, with an anchor edge into the prefix
// and the set of edges that become fully bound at that position. Without a
// preference the order is breadth-first from the focus; with a valid
// preference (a permutation of node indexes from a planner) it greedily
// follows the preference, at each step placing the most-preferred node
// that is connected to the prefix.
func (pr *program) buildOrder(pref []int) {
	p := pr.p
	n := len(p.Nodes)
	pos := make([]int, n)
	for i := range pos {
		pos[i] = -1
	}
	type half struct{ other, edge int }
	adj := make([][]half, n)
	for i, e := range p.Edges {
		adj[e.From] = append(adj[e.From], half{e.To, i})
		adj[e.To] = append(adj[e.To], half{e.From, i})
	}

	pr.order = []int{p.Focus}
	pos[p.Focus] = 0
	if rank := prefRank(pref, n); rank != nil {
		for len(pr.order) < n {
			best := -1
			for u := 0; u < n; u++ {
				if pos[u] >= 0 {
					continue
				}
				connected := false
				for _, h := range adj[u] {
					if pos[h.other] >= 0 {
						connected = true
						break
					}
				}
				if connected && (best < 0 || rank[u] < rank[best]) {
					best = u
				}
			}
			if best < 0 {
				break // disconnected pattern; caller validates connectivity
			}
			pos[best] = len(pr.order)
			pr.order = append(pr.order, best)
		}
	}
	for qi := 0; qi < len(pr.order); qi++ {
		u := pr.order[qi]
		// Default breadth-first completion: visit neighbors in edge order
		// for determinism; candidate ordering happens at run time.
		for _, h := range adj[u] {
			if pos[h.other] < 0 {
				pos[h.other] = len(pr.order)
				pr.order = append(pr.order, h.other)
			}
		}
	}

	pr.anchors = make([]anchorInfo, len(pr.order))
	pr.checks = make([][]int, len(pr.order))
	seen := make([]bool, len(p.Edges))
	for i := 1; i < len(pr.order); i++ {
		u := pr.order[i]
		anchorSet := false
		for ei, e := range p.Edges {
			var other int
			var out bool
			switch {
			case e.From == u && pos[e.To] < i:
				other, out = e.To, false // u is the source; matched node is target
			case e.To == u && pos[e.From] < i:
				other, out = e.From, true // matched node is the source
			default:
				continue
			}
			_ = other
			if !anchorSet {
				pr.anchors[i] = anchorInfo{edge: ei, out: out}
				anchorSet = true
				seen[ei] = true
				continue
			}
			if !seen[ei] {
				pr.checks[i] = append(pr.checks[i], ei)
				seen[ei] = true
			}
		}
		if !anchorSet {
			panic("match: disconnected pattern in buildOrder")
		}
	}
}

// prefRank validates a proposed order and converts it to a rank lookup:
// rank[u] is u's position in the proposal. It returns nil when the
// proposal is not a permutation of 0..n-1 (the engine then falls back to
// its default order rather than failing the query).
func prefRank(pref []int, n int) []int {
	if len(pref) != n {
		return nil
	}
	rank := make([]int, n)
	for i := range rank {
		rank[i] = -1
	}
	for i, u := range pref {
		if u < 0 || u >= n || rank[u] >= 0 {
			return nil
		}
		rank[u] = i
	}
	return rank
}

// focusCandidates returns the acceptance-filtered focus candidates, sorted.
func (pr *program) focusCandidates() []graph.NodeID {
	var out []graph.NodeID
	pr.accept[pr.p.Focus].ForEach(func(vi int) bool {
		out = append(out, graph.NodeID(vi))
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
