package plan

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/stats"
)

// hubGraph: one Person follows many Bots; Bots each like one Product.
// Matching from Person via follow explodes (fan 50); matching the Product
// side first is cheap. The planner should bind product before bot... but
// connectivity forces bot after person or product; the key check is that
// the planner prefers the low-fan anchor.
func hubGraph() *graph.Graph {
	g := graph.New(60)
	p := g.AddNode("Person")
	prod := g.AddNode("Product")
	for i := 0; i < 50; i++ {
		b := g.AddNode("Bot")
		g.AddEdge(p, b, "follow")
		if i == 0 {
			g.AddEdge(b, prod, "like")
		}
	}
	g.Finalize()
	return g
}

func hubPattern() *core.Pattern {
	p := core.NewPattern()
	p.AddNode("x", "Person")
	p.AddNode("z", "Bot")
	p.AddNode("y", "Product")
	p.AddEdge("x", "z", "follow", core.Exists())
	p.AddEdge("z", "y", "like", core.Exists())
	p.SetFocus("x")
	return p
}

func TestChooseValid(t *testing.T) {
	g := hubGraph()
	s := stats.Collect(g)
	p := hubPattern()
	pl := Choose(g, s, p)
	if err := Validate(p, pl); err != nil {
		t.Fatal(err)
	}
	if pl.Order[0] != p.Focus {
		t.Errorf("order starts at %d, want focus %d", pl.Order[0], p.Focus)
	}
	if math.IsInf(pl.Cost, 1) {
		t.Errorf("connected pattern got infinite cost")
	}
}

func TestChoosePrefersLowFan(t *testing.T) {
	g := hubGraph()
	s := stats.Collect(g)
	p := hubPattern()
	pl := Choose(g, s, p)
	// From x the only connected extension is z (fan 50). After z, y costs
	// fan ≤ 1. Check the model: step cost must be non-decreasing only via
	// the forced hub step, and total cost reflects the 50-fan.
	if pl.StepCost[1] < 49 {
		t.Errorf("hub step cost = %v, want ≈50", pl.StepCost[1])
	}
	if pl.StepCost[2] > pl.StepCost[1] {
		t.Errorf("product step must not grow cardinality: %v -> %v", pl.StepCost[1], pl.StepCost[2])
	}
}

// star pattern with one cheap and one expensive branch: the planner must
// take the cheap branch first.
func TestChooseGreedyBranchOrder(t *testing.T) {
	g := graph.New(100)
	x := g.AddNode("X")
	cheap := g.AddNode("C")
	g.AddEdge(x, cheap, "c")
	for i := 0; i < 40; i++ {
		e := g.AddNode("E")
		g.AddEdge(x, e, "e")
	}
	g.Finalize()
	s := stats.Collect(g)

	p := core.NewPattern()
	p.AddNode("x", "X")
	p.AddNode("a", "E")
	p.AddNode("b", "C")
	p.AddEdge("x", "a", "e", core.Exists())
	p.AddEdge("x", "b", "c", core.Exists())
	p.SetFocus("x")

	pl := Choose(g, s, p)
	if err := Validate(p, pl); err != nil {
		t.Fatal(err)
	}
	bIdx, _ := p.NodeIndex("b")
	if pl.Order[1] != bIdx {
		t.Errorf("planner chose node %d second, want cheap branch %d (order %v)", pl.Order[1], bIdx, pl.Order)
	}
}

func TestValidateRejects(t *testing.T) {
	p := hubPattern()
	cases := []struct {
		name string
		pl   *Plan
	}{
		{"short", &Plan{Order: []int{0, 1}, StepCost: []float64{1, 1}}},
		{"dup", &Plan{Order: []int{0, 1, 1}, StepCost: []float64{1, 1, 1}}},
		{"notFocus", &Plan{Order: []int{1, 0, 2}, StepCost: []float64{1, 1, 1}}},
		{"disconnected", &Plan{Order: []int{0, 2, 1}, StepCost: []float64{1, 1, 1}}},
	}
	for _, c := range cases {
		if err := Validate(p, c.pl); err == nil {
			t.Errorf("%s: Validate accepted invalid plan", c.name)
		}
	}
}

func TestChooseDisconnectedPattern(t *testing.T) {
	g := hubGraph()
	s := stats.Collect(g)
	p := core.NewPattern()
	p.AddNode("x", "Person")
	p.AddNode("y", "Product") // no edge: disconnected
	p.SetFocus("x")
	pl := Choose(g, s, p)
	if !math.IsInf(pl.Cost, 1) {
		t.Errorf("disconnected pattern should cost +Inf, got %v", pl.Cost)
	}
	if len(pl.Order) != 2 {
		t.Errorf("order must still cover all nodes: %v", pl.Order)
	}
}

// Property: for generated patterns on a social graph, Choose yields a
// valid plan, and running QMatch with the planner's order returns exactly
// the same answers as the default order.
func TestPlannerDifferentialEquality(t *testing.T) {
	g := gen.Social(gen.DefaultSocial(300, 11))
	s := stats.Collect(g)
	pats := gen.Patterns(g, gen.PatternConfig{Nodes: 4, Edges: 4, RatioBP: 3000, Seed: 23}, 30)
	checked := 0
	for _, p := range pats {
		pl := Choose(g, s, p)
		if err := Validate(p, pl); err != nil {
			// Patterns from the generator are connected; any failure is a bug.
			t.Fatalf("pattern %v: %v", p, err)
		}
		base, err := match.QMatch(g, p, nil)
		if err != nil {
			continue
		}
		planned, err := match.QMatch(g, p, &match.Options{OrderBy: OrderFunc(g, s)})
		if err != nil {
			t.Fatalf("planned run failed: %v", err)
		}
		if !reflect.DeepEqual(base.Matches, planned.Matches) {
			t.Fatalf("planned answers differ: %v vs %v", base.Matches, planned.Matches)
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("too few patterns checked: %d", checked)
	}
}

// Property: the engine falls back gracefully on garbage orders — results
// never change even when OrderBy returns invalid permutations.
func TestEngineToleratesInvalidOrder(t *testing.T) {
	g := gen.Social(gen.DefaultSocial(200, 5))
	pats := gen.Patterns(g, gen.PatternConfig{Nodes: 4, Edges: 4, RatioBP: 3000, Seed: 29}, 10)
	bad := [][]int{nil, {}, {0}, {0, 0, 0, 0}, {-1, 1, 2, 3}, {0, 1, 2, 99}}
	i := 0
	for _, p := range pats {
		base, err := match.QMatch(g, p, nil)
		if err != nil {
			continue
		}
		got, err := match.QMatch(g, p, &match.Options{OrderBy: func(*core.Pattern) []int {
			o := bad[i%len(bad)]
			i++
			return o
		}})
		if err != nil {
			t.Fatalf("invalid order crashed evaluation: %v", err)
		}
		if !reflect.DeepEqual(base.Matches, got.Matches) {
			t.Fatalf("invalid order changed answers")
		}
	}
}

// Property (quick): plans on random small-world graphs are always valid
// and deterministic.
func TestChooseDeterministicProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.SmallWorld(gen.SmallWorldConfig{Nodes: 150, Edges: 600, Labels: 6, Seed: seed})
		s := stats.Collect(g)
		pats := gen.Patterns(g, gen.PatternConfig{Nodes: 4, Edges: 5, RatioBP: 3000, Seed: seed ^ 0x5a5a}, 5)
		for _, p := range pats {
			a := Choose(g, s, p)
			b := Choose(g, s, p)
			if Validate(p, a) != nil {
				return false
			}
			if !reflect.DeepEqual(a.Order, b.Order) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestDescribe(t *testing.T) {
	g := hubGraph()
	s := stats.Collect(g)
	p := hubPattern()
	pl := Choose(g, s, p)
	d := pl.Describe(p)
	if d == "" || !containsAll(d, "x", "z", "y", "cost=") {
		t.Errorf("Describe = %q", d)
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		found := false
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
