package plan

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/stats"
)

// Explanation is the EXPLAIN document for a query: one chosen plan per
// positive pattern the engine would compile (Π(Q) first, then each
// positified Q+e), with per-step cardinality estimates. It reports what
// the planner would do without executing anything; the PROFILE document
// pairs it with the observed candidate counts, so estimate and reality
// are directly comparable per step.
type Explanation struct {
	Patterns []PatternPlan `json:"patterns"`
}

// PatternPlan is the chosen order and cost estimate for one positive
// pattern.
type PatternPlan struct {
	// Pattern names the pattern within the query: "pi" for Π(Q), or
	// "pi+e<i>" for the positified pattern of negated edge i.
	Pattern string `json:"pattern"`
	// Order is the planned matching order, as node names (focus first).
	Order []string `json:"order"`
	// StepCost[i] is the estimated partial-match cardinality after
	// binding Order[i]; Cost is their sum, the planner's estimate of
	// total work.
	StepCost []float64 `json:"step_cost"`
	Cost     float64   `json:"cost"`
}

// Explain plans every positive pattern of q over the graph summarized by
// s and returns the structured explanation. It mirrors eval's pattern
// decomposition exactly, so the entries align one-to-one with a
// profile's PatternProfile entries.
func Explain(g *graph.Graph, s *stats.Stats, q *core.Pattern) (*Explanation, error) {
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("plan: %w", err)
	}
	ex := &Explanation{}
	pi, _ := q.Pi()
	ex.Patterns = append(ex.Patterns, patternPlan("pi", g, s, pi))
	for _, ei := range q.NegatedEdges() {
		pp, _ := q.PiPlus(ei)
		ex.Patterns = append(ex.Patterns, patternPlan(fmt.Sprintf("pi+e%d", ei), g, s, pp))
	}
	return ex, nil
}

func patternPlan(name string, g *graph.Graph, s *stats.Stats, p *core.Pattern) PatternPlan {
	pl := Choose(g, s, p)
	out := PatternPlan{Pattern: name, StepCost: pl.StepCost, Cost: pl.Cost}
	for _, u := range pl.Order {
		out.Order = append(out.Order, p.Nodes[u].Name)
	}
	return out
}
