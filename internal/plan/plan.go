// Package plan chooses a matching order for a quantified graph pattern
// from graph statistics (internal/stats), in the spirit of the candidate-
// selectivity heuristics the generic subgraph-isomorphism framework of
// Lee et al. leaves open. The planner is optional: the engine's default
// breadth-first order is always correct; a good order only shrinks the
// intermediate search space.
//
// The cost model is the classic left-deep estimate: starting from the
// focus with |candidates(focus)| partial matches, each extension step
// multiplies the running cardinality by the expected fan from the anchor
// node through the anchor edge (average fan-out of the edge's label
// triple, or fan-in when the anchor is the edge's target), and additional
// bound edges at the step act as filters with selectivity ≤ 1. The greedy
// planner picks, at each step, the connected extension with the smallest
// estimated fan.
package plan

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/stats"
)

// Plan is a chosen matching order with its cost estimate.
type Plan struct {
	// Order is a permutation of pattern node indexes; Order[0] is the
	// focus, and every later node is adjacent (in the pattern, ignoring
	// direction) to an earlier one.
	Order []int
	// StepCost[i] is the estimated cardinality of the partial-match
	// relation after binding Order[i].
	StepCost []float64
	// Cost is the sum of step cardinalities — the planner's estimate of
	// total work.
	Cost float64
}

// String renders the plan with node names for diagnostics.
func (pl *Plan) Describe(p *core.Pattern) string {
	var b strings.Builder
	for i, u := range pl.Order {
		if i > 0 {
			b.WriteString(" -> ")
		}
		fmt.Fprintf(&b, "%s(%.3g)", p.Nodes[u].Name, pl.StepCost[i])
	}
	fmt.Fprintf(&b, " cost=%.4g", pl.Cost)
	return b.String()
}

// Choose computes a plan for pattern p over the graph summarized by s.
// The pattern must be connected (ignoring direction); disconnected
// remainders are appended in index order with infinite step cost, which
// the engine tolerates but the caller should treat as a planning failure.
func Choose(g *graph.Graph, s *stats.Stats, p *core.Pattern) *Plan {
	n := len(p.Nodes)
	pl := &Plan{Order: make([]int, 0, n), StepCost: make([]float64, 0, n)}

	type half struct{ other, edge int }
	adj := make([][]half, n)
	for i, e := range p.Edges {
		adj[e.From] = append(adj[e.From], half{e.To, i})
		adj[e.To] = append(adj[e.To], half{e.From, i})
	}

	placed := make([]bool, n)
	place := func(u int, card float64) {
		placed[u] = true
		pl.Order = append(pl.Order, u)
		pl.StepCost = append(pl.StepCost, card)
		pl.Cost += card
	}

	card := math.Max(1, stats.EstimateNode(g, s, p, p.Focus))
	place(p.Focus, card)

	for len(pl.Order) < n {
		best, bestFan := -1, math.Inf(1)
		for u := 0; u < n; u++ {
			if placed[u] {
				continue
			}
			fan := math.Inf(1)
			for _, h := range adj[u] {
				if !placed[h.other] {
					continue
				}
				f := edgeFan(g, s, p, h.edge, h.other)
				// Extra already-bound edges beyond the anchor filter the
				// extension; approximate each as halving the fan.
				bound := 0
				for _, h2 := range adj[u] {
					if h2.edge != h.edge && placed[h2.other] {
						bound++
					}
				}
				f = f / math.Pow(2, float64(bound))
				if f < fan {
					fan = f
				}
			}
			if fan < bestFan {
				best, bestFan = u, fan
			}
		}
		if best < 0 {
			// Disconnected remainder: append in index order, infinite cost.
			for u := 0; u < n; u++ {
				if !placed[u] {
					place(u, math.Inf(1))
				}
			}
			break
		}
		card *= math.Max(bestFan, 1e-9)
		place(best, card)
	}
	return pl
}

// edgeFan estimates the expected number of extensions when growing a
// partial match across pattern edge ei from the already-bound endpoint
// anchor: the average fan-out of the triple class when the anchor is the
// edge source, the average fan-in when it is the target. An absent class
// means the edge is unrealizable; its fan is 0 (the cheapest possible
// extension — it immediately empties the search).
func edgeFan(g *graph.Graph, s *stats.Stats, p *core.Pattern, ei, anchor int) float64 {
	e := p.Edges[ei]
	src := g.LookupLabel(p.Nodes[e.From].Label)
	el := g.LookupLabel(e.Label)
	dst := g.LookupLabel(p.Nodes[e.To].Label)
	if src == graph.NoLabel || el == graph.NoLabel || dst == graph.NoLabel {
		return 0
	}
	ts, ok := s.TripleFor(stats.Triple{Src: src, Edge: el, Dst: dst})
	if !ok {
		return 0
	}
	if anchor == e.From {
		return ts.AvgFanOut()
	}
	return ts.AvgFanIn()
}

// OrderFunc adapts the planner to the engine's Options.OrderBy hook: it
// returns a closure computing a plan for each positive pattern the
// evaluation compiles. Statistics are collected once per call, not per
// pattern.
func OrderFunc(g *graph.Graph, s *stats.Stats) func(p *core.Pattern) []int {
	return func(p *core.Pattern) []int {
		return Choose(g, s, p).Order
	}
}

// Validate checks the structural invariants of a plan against its pattern:
// Order is a permutation, starts at the focus, and each position is
// adjacent to the prefix (for connected patterns). It returns nil when the
// plan is well-formed.
func Validate(p *core.Pattern, pl *Plan) error {
	n := len(p.Nodes)
	if len(pl.Order) != n || len(pl.StepCost) != n {
		return fmt.Errorf("plan: order length %d, cost length %d, want %d", len(pl.Order), len(pl.StepCost), n)
	}
	seen := make([]bool, n)
	for _, u := range pl.Order {
		if u < 0 || u >= n || seen[u] {
			return fmt.Errorf("plan: order is not a permutation")
		}
		seen[u] = true
	}
	if pl.Order[0] != p.Focus {
		return fmt.Errorf("plan: order must start at the focus")
	}
	placed := make([]bool, n)
	placed[p.Focus] = true
	for i := 1; i < n; i++ {
		u := pl.Order[i]
		if math.IsInf(pl.StepCost[i], 1) {
			// Disconnected remainder is permitted but flagged by cost.
			placed[u] = true
			continue
		}
		connected := false
		for _, e := range p.Edges {
			if (e.From == u && placed[e.To]) || (e.To == u && placed[e.From]) {
				connected = true
				break
			}
		}
		if !connected {
			return fmt.Errorf("plan: node %d at position %d is not connected to the prefix", u, i)
		}
		placed[u] = true
	}
	return nil
}
