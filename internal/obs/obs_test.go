package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// TestNilSafety is the "zero cost when disabled" contract: every
// instrument, registry and trace method must be a no-op — not a panic —
// on a nil receiver, because disabled components hold exactly those
// nils.
func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter value")
	}
	var g *Gauge
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge value")
	}
	var h *Histogram
	h.Observe(1)
	h.ObserveSince(time.Now())
	if h.Count() != 0 || h.Sum() != 0 || h.BucketCounts() != nil {
		t.Fatal("nil histogram state")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x", nil) != nil {
		t.Fatal("nil registry must yield nil instruments")
	}
	if string(r.JSON()) != "{}" {
		t.Fatalf("nil registry JSON = %s", r.JSON())
	}
	var tr *Tracer
	if tr.Start("op") != nil {
		t.Fatal("nil tracer must yield a nil trace")
	}
	var trace *Trace
	trace.Span(0, "x", time.Now())
	trace.Annotatef("note=%d", 1)
	trace.Finish(nil)
	if trace.ID() != 0 {
		t.Fatal("nil trace id")
	}
	if NewTracer(nil) != nil {
		t.Fatal("NewTracer(nil) must disable tracing")
	}
}

// TestHistogramBuckets pins the bucket boundary semantics: bucket i
// counts bounds[i-1] < v <= bounds[i] (upper bounds are inclusive, as
// the le convention), with a trailing overflow bucket.
func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 2, 2.0001, 5, 7, 100} {
		h.Observe(v)
	}
	// ≤1: {0.5, 1}; ≤2: {1.5, 2}; ≤5: {2.0001, 5}; overflow: {7, 100}.
	want := []int64{2, 2, 2, 2}
	got := h.BucketCounts()
	if len(got) != len(want) {
		t.Fatalf("bucket count %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d, want 8", h.Count())
	}
	if sum := h.Sum(); sum != 0.5+1+1.5+2+2.0001+5+7+100 {
		t.Fatalf("sum = %v", sum)
	}
}

// TestHistogramUnsortedBounds: NewHistogram sorts, so callers cannot
// corrupt the bucket search invariant.
func TestHistogramUnsortedBounds(t *testing.T) {
	h := NewHistogram([]float64{5, 1, 2})
	h.Observe(1.5)
	got := h.BucketCounts()
	if got[1] != 1 {
		t.Fatalf("1.5 landed in %v, want bucket 1 (≤2)", got)
	}
}

// TestRegistryConcurrency hammers one registry from many goroutines —
// get-or-create races, concurrent observation, concurrent snapshots —
// and asserts nothing is lost. The CI -race job runs this.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const goroutines, iters = 8, 2000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				r.Counter("shared.count").Inc()
				r.Gauge("shared.gauge").Set(int64(j))
				r.Histogram("shared.hist", LatencyBucketsMS).Observe(float64(j % 10))
				if j%100 == 0 {
					_ = r.Snapshot()
					_ = r.JSON()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared.count").Value(); got != goroutines*iters {
		t.Fatalf("counter = %d, want %d", got, goroutines*iters)
	}
	if got := r.Histogram("shared.hist", nil).Count(); got != goroutines*iters {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*iters)
	}
	var total int64
	for _, n := range r.Histogram("shared.hist", nil).BucketCounts() {
		total += n
	}
	if total != goroutines*iters {
		t.Fatalf("bucket total = %d, want %d", total, goroutines*iters)
	}
}

// TestRegistryJSON asserts the export parses, carries every instrument
// kind, and is deterministic for a fixed state.
func TestRegistryJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.count").Add(3)
	r.Gauge("b.gauge").Set(-7)
	r.Histogram("c.ms", []float64{1, 10}).Observe(4)

	b := r.JSON()
	var snap Snapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		t.Fatalf("export does not parse: %v\n%s", err, b)
	}
	if snap.Counters["a.count"] != 3 || snap.Gauges["b.gauge"] != -7 {
		t.Fatalf("snapshot wrong: %+v", snap)
	}
	h := snap.Histograms["c.ms"]
	if h.Count != 1 || h.Sum != 4 || len(h.Counts) != 3 || h.Counts[1] != 1 {
		t.Fatalf("histogram snapshot wrong: %+v", h)
	}
	if b2 := r.JSON(); string(b) != string(b2) {
		t.Fatalf("export is not deterministic:\n%s\n%s", b, b2)
	}
}

// TestInstrumentIdentity: the registry get-or-creates, so two lookups of
// one name share state — how independent components agree on a metric.
func TestInstrumentIdentity(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	r.Counter("x").Inc()
	if got := r.Counter("x").Value(); got != 2 {
		t.Fatalf("counter identity broken: %d", got)
	}
	h1 := r.Histogram("h", []float64{1})
	h2 := r.Histogram("h", []float64{99, 100}) // later bounds ignored
	if h1 != h2 {
		t.Fatal("histogram identity broken")
	}
}
