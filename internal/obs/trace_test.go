package obs

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// logCapture collects Logf output thread-safely.
type logCapture struct {
	mu    sync.Mutex
	lines []string
}

func (lc *logCapture) logf(format string, args ...interface{}) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	lc.lines = append(lc.lines, fmt.Sprintf(format, args...))
}

func (lc *logCapture) all() []string {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return append([]string(nil), lc.lines...)
}

func TestTraceOutput(t *testing.T) {
	var lc logCapture
	tracer := NewTracer(lc.logf)

	tr1 := tracer.Start("match")
	tr2 := tracer.Start("update")
	if tr1.ID() == tr2.ID() || tr1.ID() == 0 {
		t.Fatalf("trace ids must be unique and non-zero: %d, %d", tr1.ID(), tr2.ID())
	}

	t0 := time.Now()
	// Spans may be recorded from concurrent fan-out goroutines.
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tr1.Span(w, "rtt", t0)
		}(w)
	}
	wg.Wait()
	tr1.Span(-1, "merge", t0)
	tr1.Annotatef("answers=%d", 42)
	tr1.Finish(nil)
	tr2.Finish(errors.New("boom"))

	lines := lc.all()
	if len(lines) != 2 {
		t.Fatalf("got %d trace lines, want 2: %q", len(lines), lines)
	}
	got := lines[0]
	for _, want := range []string{"op=match", "w0:rtt@", "w2:rtt@", "merge@", "notes=[answers=42]"} {
		if !strings.Contains(got, want) {
			t.Errorf("trace line missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "err=") {
		t.Errorf("successful trace should not report err:\n%s", got)
	}
	if !strings.Contains(lines[1], "op=update") || !strings.Contains(lines[1], "err=boom") {
		t.Errorf("failed trace line wrong:\n%s", lines[1])
	}
}
