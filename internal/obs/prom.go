package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// promPrefix namespaces every exported series, per Prometheus naming
// convention (a single-word application prefix).
const promPrefix = "qgp_"

// WriteProm renders a registry snapshot in the Prometheus text
// exposition format (version 0.0.4), so the registry is scrapeable by
// standard tooling without taking a client_golang dependency. Instrument
// names are sanitized (every character outside [a-zA-Z0-9_:] becomes
// '_') and prefixed with "qgp_"; histograms render with the cumulative
// le-bucket convention. Output is sorted by name, so it is deterministic
// for a fixed state.
func WriteProm(w io.Writer, s Snapshot) error {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		// The exposition format wants cumulative bucket counts; the
		// snapshot stores per-bucket counts.
		var cum int64
		for i, bound := range h.Bounds {
			if i < len(h.Counts) {
				cum += h.Counts[i]
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", pn, promFloat(bound), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", pn, promFloat(h.Sum), pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// promName maps a registry instrument name ("cluster.update.ms",
// "cluster.worker.0.match.ms") onto a valid Prometheus metric name.
func promName(name string) string {
	b := []byte(name)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
		default:
			b[i] = '_'
		}
	}
	return promPrefix + string(b)
}

// promFloat renders a float the way Prometheus expects: shortest exact
// decimal form.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
