package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceBufferBounded(t *testing.T) {
	b := NewTraceBuffer(4, 0)
	for i := 1; i <= 10; i++ {
		b.Record(TraceRecord{ID: uint64(i), Op: "match", DurMS: float64(i)})
	}
	if b.Len() != 4 {
		t.Fatalf("Len = %d, want 4 (bounded)", b.Len())
	}
	if b.Total() != 10 {
		t.Fatalf("Total = %d, want 10", b.Total())
	}
	recs := b.Snapshot(false, 0)
	if len(recs) != 4 {
		t.Fatalf("snapshot has %d records, want 4", len(recs))
	}
	// Newest first: ids 10, 9, 8, 7.
	for i, want := range []uint64{10, 9, 8, 7} {
		if recs[i].ID != want {
			t.Fatalf("snapshot[%d].ID = %d, want %d (newest first)", i, recs[i].ID, want)
		}
	}
	if recs = b.Snapshot(false, 2); len(recs) != 2 || recs[0].ID != 10 {
		t.Fatalf("limited snapshot wrong: %+v", recs)
	}
}

func TestTraceBufferSlowFilter(t *testing.T) {
	b := NewTraceBuffer(8, 10) // slow at >= 10ms
	b.Record(TraceRecord{ID: 1, DurMS: 2})
	b.Record(TraceRecord{ID: 2, DurMS: 10})
	b.Record(TraceRecord{ID: 3, DurMS: 50})
	b.Record(TraceRecord{ID: 4, DurMS: 9.99})
	slow := b.Snapshot(true, 0)
	if len(slow) != 2 || slow[0].ID != 3 || slow[1].ID != 2 {
		t.Fatalf("slow snapshot = %+v, want ids [3 2]", slow)
	}
	for _, r := range slow {
		if !r.Slow {
			t.Fatalf("record %d not flagged slow", r.ID)
		}
	}
	all := b.Snapshot(false, 0)
	if len(all) != 4 {
		t.Fatalf("full snapshot has %d records, want 4", len(all))
	}
}

// TestTraceBufferConcurrent drives concurrent Finish (through a tracer)
// and Snapshot; run under -race this is the data-race check for the
// flight recorder.
func TestTraceBufferConcurrent(t *testing.T) {
	b := NewTraceBuffer(16, 0)
	tracer := NewTracerWith(nil, b)
	if tracer == nil {
		t.Fatal("tracer with a buffer sink must not be nil")
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				tr := tracer.Start("op")
				tr.Span(0, "rtt", time.Now())
				tr.Finish(nil)
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				b.Snapshot(false, 0)
				b.Len()
			}
		}()
	}
	wg.Wait()
	if b.Total() != 400 {
		t.Fatalf("Total = %d, want 400", b.Total())
	}
	if b.Len() != 16 {
		t.Fatalf("Len = %d, want 16", b.Len())
	}
}

// TestTraceRecordJSONDeterministic: the same record marshals to the same
// bytes — the /debug/traces document is diffable across scrapes.
func TestTraceRecordJSONDeterministic(t *testing.T) {
	rec := TraceRecord{
		ID:    7,
		Op:    "update",
		Start: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC),
		DurMS: 1.25,
		Spans: []SpanRecord{{Worker: 0, Name: "rtt", OffsetMS: 0.1, DurMS: 1.0}, {Worker: -1, Name: "merge", OffsetMS: 1.1, DurMS: 0.1}},
		Notes: []string{"affected=3"},
		Slow:  true,
	}
	a, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	bts, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, bts) {
		t.Fatalf("marshal not deterministic:\n%s\n%s", a, bts)
	}
	var back TraceRecord
	if err := json.Unmarshal(a, &back); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if back.ID != rec.ID || back.Op != rec.Op || len(back.Spans) != 2 || !back.Slow {
		t.Fatalf("round trip lost fields: %+v", back)
	}
}

func TestNilTraceBuffer(t *testing.T) {
	var b *TraceBuffer
	b.Record(TraceRecord{ID: 1}) // must not panic
	if b.Len() != 0 || b.Total() != 0 || b.Snapshot(false, 0) != nil {
		t.Fatal("nil buffer must be inert")
	}
	if NewTracerWith(nil, nil) != nil {
		t.Fatal("tracer with no sinks must be nil (tracing disabled)")
	}
}

func TestWindowsPercentiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("req.ms", []float64{1, 10, 100})
	w := NewWindows(reg, time.Second)

	// Window 1: 90 fast, 10 slow.
	for i := 0; i < 90; i++ {
		h.Observe(0.5)
	}
	for i := 0; i < 10; i++ {
		h.Observe(50)
	}
	w.Roll()
	s := w.Snapshot()
	wh, ok := s.Histograms["req.ms"]
	if !ok {
		t.Fatalf("window missing histogram: %+v", s)
	}
	if wh.Count != 100 {
		t.Fatalf("window count = %d, want 100", wh.Count)
	}
	if wh.P50 > 1 || wh.P50 <= 0 {
		t.Fatalf("p50 = %v, want within (0, 1]", wh.P50)
	}
	if wh.P95 <= 10 || wh.P95 > 100 {
		t.Fatalf("p95 = %v, want within (10, 100]", wh.P95)
	}

	// Window 2: nothing observed — the histogram must drop out rather
	// than report window-1 percentiles as current.
	w.Roll()
	if s := w.Snapshot(); len(s.Histograms) != 0 {
		t.Fatalf("quiet window must be empty, got %+v", s.Histograms)
	}

	// Window 3: only the delta since window 2 counts.
	h.Observe(500) // overflow bucket clamps to the last bound
	w.Roll()
	s = w.Snapshot()
	if wh := s.Histograms["req.ms"]; wh.Count != 1 || wh.P50 != 100 {
		t.Fatalf("delta window wrong: %+v", wh)
	}
}

func TestPercentileFromBuckets(t *testing.T) {
	bounds := []float64{1, 2, 4}
	counts := []int64{2, 2, 0, 0} // 4 obs, all <= 2
	if got := percentileFromBuckets(bounds, counts, 4, 0.5); got != 1 {
		t.Fatalf("p50 = %v, want 1 (upper edge of first bucket)", got)
	}
	if got := percentileFromBuckets(bounds, counts, 4, 0.75); got != 1.5 {
		t.Fatalf("p75 = %v, want 1.5 (midway through second bucket)", got)
	}
	if got := percentileFromBuckets(bounds, []int64{0, 0, 0, 4}, 4, 0.5); got != 4 {
		t.Fatalf("overflow p50 = %v, want clamp to 4", got)
	}
	if got := percentileFromBuckets(nil, nil, 0, 0.5); got != 0 {
		t.Fatalf("empty = %v, want 0", got)
	}
}

func TestWriteProm(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("match.count").Add(3)
	reg.Gauge("cluster.config.workers").Set(2)
	h := reg.Histogram("match.ms", []float64{0.001, 1, 100})
	h.Observe(0.0005)
	h.Observe(0.5)
	h.Observe(50)
	h.Observe(5000)

	var buf bytes.Buffer
	if err := WriteProm(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE qgp_match_count counter",
		"qgp_match_count 3",
		"# TYPE qgp_cluster_config_workers gauge",
		"qgp_cluster_config_workers 2",
		"# TYPE qgp_match_ms histogram",
		`qgp_match_ms_bucket{le="0.001"} 1`,
		`qgp_match_ms_bucket{le="1"} 2`,
		`qgp_match_ms_bucket{le="100"} 3`,
		`qgp_match_ms_bucket{le="+Inf"} 4`,
		"qgp_match_ms_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q:\n%s", want, out)
		}
	}
	// _sum equals the observation sum.
	var sum float64
	if _, err := fmt.Sscanf(out[strings.Index(out, "qgp_match_ms_sum "):], "qgp_match_ms_sum %g", &sum); err != nil {
		t.Fatalf("no parsable _sum line: %v\n%s", err, out)
	}
	if math.Abs(sum-5050.5005) > 1e-6 {
		t.Fatalf("_sum = %v, want 5050.5005", sum)
	}
}

// TestDebugServerRetention covers the debug endpoint's new routes:
// /debug/traces (with slow and n filters), /metrics?format=prom and
// /metrics?window=1.
func TestDebugServerRetention(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test.count").Add(1)
	reg.Histogram("test.ms", []float64{1, 10}).Observe(0.5)
	traces := NewTraceBuffer(8, 10)
	tracer := NewTracerWith(nil, traces)
	windows := NewWindows(reg, time.Second)
	windows.Roll()

	tr := tracer.Start("match")
	tr.Finish(nil)
	slow := TraceRecord{ID: 99, Op: "update", DurMS: 25}
	traces.Record(slow)

	d, err := ServeWith("127.0.0.1:0", HandlerConfig{Registry: reg, Traces: traces, Windows: windows})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	base := fmt.Sprintf("http://%s", d.Addr())

	code, body := get(t, base+"/debug/traces")
	if code != http.StatusOK {
		t.Fatalf("/debug/traces status %d", code)
	}
	var recs []TraceRecord
	if err := json.Unmarshal(body, &recs); err != nil || len(recs) != 2 {
		t.Fatalf("/debug/traces = %v %s", err, body)
	}
	if recs[0].ID != 99 {
		t.Fatalf("traces not newest-first: %+v", recs)
	}

	code, body = get(t, base+"/debug/traces?slow=1")
	if err := json.Unmarshal(body, &recs); code != http.StatusOK || err != nil || len(recs) != 1 || recs[0].ID != 99 {
		t.Fatalf("/debug/traces?slow=1 = %d %v %s", code, err, body)
	}

	resp, err := http.Get(base + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	ct := resp.Header.Get("Content-Type")
	resp.Body.Close()
	if !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("prom Content-Type = %q", ct)
	}
	code, body = get(t, base+"/metrics?format=prom")
	if code != http.StatusOK || !strings.Contains(string(body), "qgp_test_count 1") {
		t.Fatalf("/metrics?format=prom = %d %s", code, body)
	}

	code, body = get(t, base+"/metrics?window=1")
	var ws WindowedSnapshot
	if err := json.Unmarshal(body, &ws); code != http.StatusOK || err != nil {
		t.Fatalf("/metrics?window=1 = %d %v %s", code, err, body)
	}
	if ws.Histograms["test.ms"].Count != 1 {
		t.Fatalf("window snapshot missing histogram: %s", body)
	}
}
