package obs

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer hands out per-request traces with process-unique ids. A nil
// Tracer (tracing disabled) yields nil traces whose methods are no-ops,
// so instrumented code never branches on whether tracing is on.
type Tracer struct {
	next atomic.Uint64
	logf func(format string, args ...interface{})
}

// NewTracer returns a tracer emitting finished traces through logf — the
// same diagnostics hook the servers already expose, so trace output goes
// wherever the component's logging goes. A nil logf returns a nil tracer
// (tracing disabled).
func NewTracer(logf func(format string, args ...interface{})) *Tracer {
	if logf == nil {
		return nil
	}
	return &Tracer{logf: logf}
}

// Start opens a trace for one request. op names the request kind
// ("match", "update", "watch"); the returned trace carries a
// process-unique id so a slow request in the log can be followed across
// its per-worker spans.
func (t *Tracer) Start(op string) *Trace {
	if t == nil {
		return nil
	}
	return &Trace{id: t.next.Add(1), op: op, start: time.Now(), logf: t.logf}
}

// Trace accumulates the spans of one request — which worker was doing
// what, when, for how long — and emits a single structured log line at
// Finish. Span and Annotatef are safe to call from concurrent fan-out
// goroutines. All methods are no-ops on a nil receiver.
type Trace struct {
	id    uint64
	op    string
	start time.Time
	logf  func(format string, args ...interface{})

	mu    sync.Mutex
	spans []span
	notes []string
}

// span is one timed step; worker -1 marks coordinator-side work (merge,
// plan) as opposed to a specific worker's.
type span struct {
	worker int
	name   string
	offset time.Duration // since the trace started
	dur    time.Duration
}

// ID returns the trace's process-unique id (0 on nil).
func (tr *Trace) ID() uint64 {
	if tr == nil {
		return 0
	}
	return tr.id
}

// Span records a step that started at t0 and ends now. worker is the
// fragment/worker id the step belongs to, or -1 for coordinator-side
// work.
func (tr *Trace) Span(worker int, name string, t0 time.Time) {
	if tr == nil {
		return
	}
	sp := span{worker: worker, name: name, offset: t0.Sub(tr.start), dur: time.Since(t0)}
	tr.mu.Lock()
	tr.spans = append(tr.spans, sp)
	tr.mu.Unlock()
}

// Annotatef attaches a free-form key=value note ("affected=3",
// "w1 compute=0.42ms") to the trace.
func (tr *Trace) Annotatef(format string, args ...interface{}) {
	if tr == nil {
		return
	}
	note := fmt.Sprintf(format, args...)
	tr.mu.Lock()
	tr.notes = append(tr.notes, note)
	tr.mu.Unlock()
}

// Finish emits the trace as one structured log line:
//
//	trace id=7 op=update dur=1.84ms spans=[w0:rtt@0.12+1.40 w1:rtt@0.13+0.61 merge@1.60+0.09] notes=[affected=3] err=<nil>
//
// Span offsets and durations are milliseconds relative to the trace
// start, so overlap (the pipelined fan-out) is visible: two spans with
// the same offset ran concurrently.
func (tr *Trace) Finish(err error) {
	if tr == nil {
		return
	}
	total := time.Since(tr.start)
	tr.mu.Lock()
	spans, notes := tr.spans, tr.notes
	tr.mu.Unlock()

	var b strings.Builder
	fmt.Fprintf(&b, "trace id=%d op=%s dur=%.2fms spans=[", tr.id, tr.op, ms(total))
	for i, sp := range spans {
		if i > 0 {
			b.WriteByte(' ')
		}
		if sp.worker >= 0 {
			fmt.Fprintf(&b, "w%d:", sp.worker)
		}
		fmt.Fprintf(&b, "%s@%.2f+%.2f", sp.name, ms(sp.offset), ms(sp.dur))
	}
	b.WriteByte(']')
	if len(notes) > 0 {
		fmt.Fprintf(&b, " notes=[%s]", strings.Join(notes, " "))
	}
	if err != nil {
		fmt.Fprintf(&b, " err=%v", err)
	}
	tr.logf("%s", b.String())
}

func ms(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}
