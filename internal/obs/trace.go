package obs

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer hands out per-request traces with process-unique ids. A nil
// Tracer (tracing disabled) yields nil traces whose methods are no-ops,
// so instrumented code never branches on whether tracing is on.
type Tracer struct {
	next atomic.Uint64
	logf func(format string, args ...interface{})
	buf  *TraceBuffer
}

// NewTracer returns a tracer emitting finished traces through logf — the
// same diagnostics hook the servers already expose, so trace output goes
// wherever the component's logging goes. A nil logf returns a nil tracer
// (tracing disabled).
func NewTracer(logf func(format string, args ...interface{})) *Tracer {
	return NewTracerWith(logf, nil)
}

// NewTracerWith returns a tracer that emits finished traces through logf
// (when non-nil) and retains them as structured records in buf (when
// non-nil) — log lines are for following a request live, the buffer is
// for asking "what were the last N slow requests" after the fact. When
// both sinks are nil there is nowhere for a trace to go, so the tracer
// itself is nil (tracing disabled).
func NewTracerWith(logf func(format string, args ...interface{}), buf *TraceBuffer) *Tracer {
	if logf == nil && buf == nil {
		return nil
	}
	return &Tracer{logf: logf, buf: buf}
}

// Start opens a trace for one request. op names the request kind
// ("match", "update", "watch"); the returned trace carries a
// process-unique id so a slow request in the log can be followed across
// its per-worker spans.
func (t *Tracer) Start(op string) *Trace {
	if t == nil {
		return nil
	}
	return &Trace{id: t.next.Add(1), op: op, start: time.Now(), logf: t.logf, buf: t.buf}
}

// Trace accumulates the spans of one request — which worker was doing
// what, when, for how long — and emits a single structured log line at
// Finish. Span and Annotatef are safe to call from concurrent fan-out
// goroutines. All methods are no-ops on a nil receiver.
type Trace struct {
	id    uint64
	op    string
	start time.Time
	logf  func(format string, args ...interface{})
	buf   *TraceBuffer

	mu    sync.Mutex
	spans []span
	notes []string
}

// span is one timed step; worker -1 marks coordinator-side work (merge,
// plan) as opposed to a specific worker's.
type span struct {
	worker int
	name   string
	offset time.Duration // since the trace started
	dur    time.Duration
}

// ID returns the trace's process-unique id (0 on nil).
func (tr *Trace) ID() uint64 {
	if tr == nil {
		return 0
	}
	return tr.id
}

// Span records a step that started at t0 and ends now. worker is the
// fragment/worker id the step belongs to, or -1 for coordinator-side
// work.
func (tr *Trace) Span(worker int, name string, t0 time.Time) {
	if tr == nil {
		return
	}
	sp := span{worker: worker, name: name, offset: t0.Sub(tr.start), dur: time.Since(t0)}
	tr.mu.Lock()
	tr.spans = append(tr.spans, sp)
	tr.mu.Unlock()
}

// Annotatef attaches a free-form key=value note ("affected=3",
// "w1 compute=0.42ms") to the trace.
func (tr *Trace) Annotatef(format string, args ...interface{}) {
	if tr == nil {
		return
	}
	note := fmt.Sprintf(format, args...)
	tr.mu.Lock()
	tr.notes = append(tr.notes, note)
	tr.mu.Unlock()
}

// Finish emits the trace as one structured log line:
//
//	trace id=7 op=update dur=1.84ms spans=[w0:rtt@0.12+1.40 w1:rtt@0.13+0.61 merge@1.60+0.09] notes=[affected=3] err=<nil>
//
// Span offsets and durations are milliseconds relative to the trace
// start, so overlap (the pipelined fan-out) is visible: two spans with
// the same offset ran concurrently. When the tracer carries a
// TraceBuffer, the same data is retained there as a TraceRecord.
func (tr *Trace) Finish(err error) {
	if tr == nil {
		return
	}
	total := time.Since(tr.start)
	tr.mu.Lock()
	spans, notes := tr.spans, tr.notes
	tr.mu.Unlock()

	if tr.buf != nil {
		rec := TraceRecord{
			ID:    tr.id,
			Op:    tr.op,
			Start: tr.start.UTC(),
			DurMS: ms(total),
			Notes: append([]string(nil), notes...),
		}
		if err != nil {
			rec.Error = err.Error()
		}
		for _, sp := range spans {
			rec.Spans = append(rec.Spans, SpanRecord{
				Worker:   sp.worker,
				Name:     sp.name,
				OffsetMS: ms(sp.offset),
				DurMS:    ms(sp.dur),
			})
		}
		tr.buf.Record(rec)
	}
	if tr.logf == nil {
		return
	}

	var b strings.Builder
	fmt.Fprintf(&b, "trace id=%d op=%s dur=%.2fms spans=[", tr.id, tr.op, ms(total))
	for i, sp := range spans {
		if i > 0 {
			b.WriteByte(' ')
		}
		if sp.worker >= 0 {
			fmt.Fprintf(&b, "w%d:", sp.worker)
		}
		fmt.Fprintf(&b, "%s@%.2f+%.2f", sp.name, ms(sp.offset), ms(sp.dur))
	}
	b.WriteByte(']')
	if len(notes) > 0 {
		fmt.Fprintf(&b, " notes=[%s]", strings.Join(notes, " "))
	}
	if err != nil {
		fmt.Fprintf(&b, " err=%v", err)
	}
	tr.logf("%s", b.String())
}

func ms(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}

// SpanRecord is the structured form of one trace span. Worker is the
// fragment/worker id, or -1 for coordinator-side work; offsets and
// durations are milliseconds relative to the trace start, mirroring the
// log-line rendering.
type SpanRecord struct {
	Worker   int     `json:"worker"`
	Name     string  `json:"name"`
	OffsetMS float64 `json:"offset_ms"`
	DurMS    float64 `json:"dur_ms"`
}

// TraceRecord is the structured form of one finished trace, as retained
// by a TraceBuffer and served at /debug/traces.
type TraceRecord struct {
	ID    uint64       `json:"id"`
	Op    string       `json:"op"`
	Start time.Time    `json:"start"`
	DurMS float64      `json:"dur_ms"`
	Spans []SpanRecord `json:"spans,omitempty"`
	Notes []string     `json:"notes,omitempty"`
	Error string       `json:"error,omitempty"`
	Slow  bool         `json:"slow,omitempty"`
}

// TraceBuffer retains the last N finished traces as structured records —
// the "flight recorder" half of tracing, complementing the fire-and-
// forget log lines. Records at or above the slow threshold are flagged,
// so "show me the recent slow requests" is one filtered snapshot rather
// than a log grep. All methods are safe for concurrent use and no-ops on
// a nil receiver, matching the rest of the package's disabled-is-nil
// contract.
type TraceBuffer struct {
	mu     sync.Mutex
	recs   []TraceRecord // ring storage, grows to max then wraps
	max    int
	total  int // records ever written; recs[i] holds write (total-k) at i=(total-k)%max
	slowMS float64
}

// NewTraceBuffer returns a buffer retaining the last max finished traces
// (128 when max <= 0). Traces lasting slowMS milliseconds or more are
// flagged Slow; slowMS <= 0 disables the flag.
func NewTraceBuffer(max int, slowMS float64) *TraceBuffer {
	if max <= 0 {
		max = 128
	}
	return &TraceBuffer{recs: make([]TraceRecord, 0, max), max: max, slowMS: slowMS}
}

// Record adds one finished trace, evicting the oldest when full.
func (b *TraceBuffer) Record(rec TraceRecord) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	rec.Slow = b.slowMS > 0 && rec.DurMS >= b.slowMS
	if len(b.recs) < b.max {
		b.recs = append(b.recs, rec) // lands at index total%max while filling
	} else {
		b.recs[b.total%b.max] = rec
	}
	b.total++
}

// Len returns the number of retained records.
func (b *TraceBuffer) Len() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.recs)
}

// Total returns the number of records ever written (retained or
// evicted).
func (b *TraceBuffer) Total() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total
}

// Snapshot returns retained records newest-first. slowOnly keeps only
// records at or above the slow threshold; limit > 0 caps the result
// after filtering. The returned slice is a copy, safe to hold across
// further recording.
func (b *TraceBuffer) Snapshot(slowOnly bool, limit int) []TraceRecord {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	n := len(b.recs)
	out := make([]TraceRecord, 0, n)
	for i := 0; i < n; i++ {
		rec := b.recs[(b.total-1-i)%b.max]
		if slowOnly && !rec.Slow {
			continue
		}
		out = append(out, rec)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}
