package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"testing"
)

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, b
}

func TestDebugServer(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test.count").Add(5)
	healthy := true
	health := func() (interface{}, error) {
		if !healthy {
			return nil, errors.New("a fragment has no live primary")
		}
		return map[string]interface{}{"status": "ok", "fragments": 2}, nil
	}
	d, err := Serve("127.0.0.1:0", reg, health)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	base := fmt.Sprintf("http://%s", d.Addr())

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metrics body does not parse: %v\n%s", err, body)
	}
	if snap.Counters["test.count"] != 5 {
		t.Fatalf("/metrics missing counter: %s", body)
	}

	code, body = get(t, base+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status %d: %s", code, body)
	}
	var doc map[string]interface{}
	if err := json.Unmarshal(body, &doc); err != nil || doc["status"] != "ok" {
		t.Fatalf("/healthz body wrong: %v %s", err, body)
	}

	healthy = false
	code, body = get(t, base+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("unhealthy /healthz status %d, want 503: %s", code, body)
	}

	code, _ = get(t, base+"/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", code)
	}

	code, _ = get(t, base+"/nope")
	if code != http.StatusNotFound {
		t.Fatalf("unknown path status %d, want 404", code)
	}
}

// TestDebugServerNilRegistry: the endpoint must stay up (serving "{}")
// when no registry is wired, matching the nil-safe instrument contract.
func TestDebugServerNilRegistry(t *testing.T) {
	d, err := Serve("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	base := fmt.Sprintf("http://%s", d.Addr())
	code, body := get(t, base+"/metrics")
	if code != http.StatusOK || string(body) != "{}" {
		t.Fatalf("nil-registry /metrics = %d %q", code, body)
	}
	code, body = get(t, base+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("nil-health /healthz = %d %s", code, body)
	}
}
