package obs

import (
	"sync"
	"time"
)

// Windows turns the registry's cumulative histograms into rolling-window
// views: at every roll it diffs each histogram against the previous
// snapshot and keeps the delta as "the last completed window", from
// which p50/p95/p99 are estimated. Cumulative histograms answer "what
// has this process seen since boot"; windows answer the operational
// question "what is latency like right now" — a p99 regression is
// visible in the next window instead of being averaged away under hours
// of history. A nil *Windows is valid and yields empty snapshots.
type Windows struct {
	reg      *Registry
	interval time.Duration

	mu     sync.Mutex
	prev   map[string]HistogramSnapshot // cumulative state at last roll
	window map[string]windowState       // deltas of the last completed window
	rolled time.Time                    // when the last completed window ended
	stop   chan struct{}
	once   sync.Once
}

type windowState struct {
	count  int64
	sum    float64
	bounds []float64
	counts []int64
}

// NewWindows returns a roller over reg. interval is the target window
// length (10s when <= 0); it is advisory for Start's ticker and recorded
// in snapshots — callers driving Roll manually (tests) set their own
// cadence.
func NewWindows(reg *Registry, interval time.Duration) *Windows {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	return &Windows{
		reg:      reg,
		interval: interval,
		prev:     map[string]HistogramSnapshot{},
		window:   map[string]windowState{},
		stop:     make(chan struct{}),
	}
}

// Roll completes the current window: every histogram's delta since the
// previous roll becomes the new "last window", and the cumulative state
// is re-based. Safe to call concurrently with observations.
func (w *Windows) Roll() {
	if w == nil {
		return
	}
	cur := w.reg.Snapshot().Histograms
	now := time.Now()
	w.mu.Lock()
	defer w.mu.Unlock()
	next := make(map[string]windowState, len(cur))
	for name, c := range cur {
		p, ok := w.prev[name]
		st := windowState{count: c.Count, sum: c.Sum, bounds: c.Bounds, counts: c.Counts}
		if ok && len(p.Counts) == len(c.Counts) {
			st.count -= p.Count
			st.sum -= p.Sum
			st.counts = make([]int64, len(c.Counts))
			for i := range c.Counts {
				st.counts[i] = c.Counts[i] - p.Counts[i]
			}
		}
		next[name] = st
	}
	w.window = next
	w.prev = cur
	w.rolled = now
}

// Start rolls windows in the background every interval, until Stop.
func (w *Windows) Start() {
	if w == nil {
		return
	}
	go func() {
		t := time.NewTicker(w.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				w.Roll()
			case <-w.stop:
				return
			}
		}
	}()
}

// Stop halts a Start'ed roller. Idempotent.
func (w *Windows) Stop() {
	if w == nil {
		return
	}
	w.once.Do(func() { close(w.stop) })
}

// WindowedHistogram summarizes one histogram over the last completed
// window: observation count, sum, and interpolated percentiles.
type WindowedHistogram struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// WindowedSnapshot is the JSON form of the last completed window.
type WindowedSnapshot struct {
	IntervalMS float64                      `json:"interval_ms"`
	RolledAt   time.Time                    `json:"rolled_at,omitempty"`
	Histograms map[string]WindowedHistogram `json:"histograms"`
}

// Snapshot returns the last completed window. Histograms with no
// observations in the window are omitted, so a quiet instrument does not
// report stale percentiles as current.
func (w *Windows) Snapshot() WindowedSnapshot {
	s := WindowedSnapshot{Histograms: map[string]WindowedHistogram{}}
	if w == nil {
		return s
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	s.IntervalMS = float64(w.interval.Microseconds()) / 1000
	s.RolledAt = w.rolled
	for name, st := range w.window {
		if st.count <= 0 {
			continue
		}
		s.Histograms[name] = WindowedHistogram{
			Count: st.count,
			Sum:   st.sum,
			P50:   percentileFromBuckets(st.bounds, st.counts, st.count, 0.50),
			P95:   percentileFromBuckets(st.bounds, st.counts, st.count, 0.95),
			P99:   percentileFromBuckets(st.bounds, st.counts, st.count, 0.99),
		}
	}
	return s
}

// percentileFromBuckets estimates the q-quantile of a bucketed
// distribution by linear interpolation inside the bucket holding the
// target rank (the standard histogram_quantile estimate). The first
// bucket interpolates from 0; a rank landing in the overflow bucket
// clamps to the final bound — the histogram carries no upper edge there.
func percentileFromBuckets(bounds []float64, counts []int64, total int64, q float64) float64 {
	if total <= 0 || len(counts) == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(bounds) {
			// Overflow bucket: no upper edge to interpolate toward.
			if len(bounds) == 0 {
				return 0
			}
			return bounds[len(bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		return lo + (bounds[i]-lo)*(rank-prev)/float64(c)
	}
	if len(bounds) == 0 {
		return 0
	}
	return bounds[len(bounds)-1]
}
