// Package obs is the cluster's observability layer: a dependency-free
// metrics registry (atomic counters, gauges and bounded-bucket
// histograms with expvar-style JSON export), lightweight per-request
// tracing (trace.go), and a debug HTTP endpoint serving /metrics,
// /healthz and /debug/pprof (http.go).
//
// The design constraint is the cluster's update hot path: recording a
// metric is one or two atomic operations, instruments are resolved from
// the registry once at construction time (never per request), and every
// method is a no-op on a nil receiver — a component built without a
// registry pays a single nil check, so the instrumented and
// uninstrumented code paths are the same code.
//
// This is the sensor layer the ROADMAP's elastic re-fragmentation and
// global-planner items will read from: per-fragment load lives here as
// routed-update counters and per-worker latency histograms, and the
// "work proportional to the change" claim (Berkholz–Keppeler–Schweikardt
// framing, PAPERS.md) becomes checkable as the affected-set-size
// histogram of the update path.
package obs

import (
	"encoding/json"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. All methods are
// safe for concurrent use and no-ops on a nil receiver.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic last-value instrument. All methods are safe for
// concurrent use and no-ops on a nil receiver.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the value by n (gauges go both ways).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a bounded-bucket distribution: bucket i counts
// observations v with bounds[i-1] < v <= bounds[i], and one overflow
// bucket counts v > bounds[len-1]. Memory is fixed at construction —
// observing never allocates. All methods are safe for concurrent use and
// no-ops on a nil receiver.
type Histogram struct {
	bounds []float64      // ascending upper bounds
	counts []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram returns a histogram over the given ascending upper
// bounds. A nil or empty bounds slice yields a single overflow bucket
// (count/sum only).
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveSince records the elapsed time since t0 in milliseconds — the
// unit every latency histogram in the registry uses.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(float64(time.Since(t0).Microseconds()) / 1000)
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// BucketCounts returns a copy of the per-bucket counts; the last entry
// is the overflow bucket (> the final bound).
func (h *Histogram) BucketCounts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// HistogramSnapshot is the JSON form of a histogram: Counts is aligned
// with Bounds plus a trailing overflow bucket.
type HistogramSnapshot struct {
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []int64   `json:"counts"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Count:  h.Count(),
		Sum:    h.Sum(),
		Bounds: append([]float64(nil), h.bounds...),
		Counts: h.BucketCounts(),
	}
}

// LatencyBucketsMS is the default latency bucket set, in milliseconds:
// 1µs to 5s, roughly logarithmic. The microsecond tail exists for the
// incremental update path, whose per-batch cost sits in the tens of
// microseconds once work is proportional to the change — buckets
// bottoming out at 50µs collapsed that entire distribution into two
// bins; the top stays wide enough for a multi-second recovery.
var LatencyBucketsMS = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// SizeBuckets is the default bucket set for counts (batch sizes,
// affected-set sizes, fan-out widths): powers of four from 1 to ~1M.
var SizeBuckets = []float64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}

// Registry is a named set of instruments. Lookup methods get-or-create,
// so independent components agree on an instrument by name alone; hot
// paths resolve their instruments once and hold the pointers. A nil
// *Registry is valid everywhere and yields nil instruments, whose
// methods are no-ops — "metrics disabled" needs no branching at use
// sites beyond what the nil receiver check already does.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use (nil on a
// nil registry).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use (nil on a nil
// registry).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (nil on a nil registry). The bounds of the first
// caller win; later callers share the instrument regardless of the
// bounds they pass.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every instrument, in the shape the
// JSON export serializes. Maps marshal with sorted keys, so the export
// is deterministic for a fixed state.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the registry's current state. Safe to call
// concurrently with observations; each instrument is read atomically
// (the snapshot as a whole is not one atomic cut, which diagnostics do
// not need).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// JSON renders the registry as a JSON document ("{}" on nil), the body
// /metrics and the metrics wire command serve.
func (r *Registry) JSON() []byte {
	if r == nil {
		return []byte("{}")
	}
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		// Snapshot is maps of numbers; Marshal cannot fail on it.
		return []byte("{}")
	}
	return b
}
