package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// HandlerConfig wires the optional observability components into one
// debug handler. Every field may be nil — the corresponding endpoint
// then serves an empty document rather than disappearing, so probes do
// not have to know which components a binary enabled.
type HandlerConfig struct {
	Registry *Registry
	Health   func() (interface{}, error)
	Traces   *TraceBuffer
	Windows  *Windows
}

// Handler serves the debug endpoint over reg and health only; see
// HandlerWith for the full configuration.
func Handler(reg *Registry, health func() (interface{}, error)) http.Handler {
	return HandlerWith(HandlerConfig{Registry: reg, Health: health})
}

// HandlerWith serves the debug endpoint:
//
//	/metrics              — the registry as JSON ("{}" when Registry is nil)
//	/metrics?format=prom  — the registry in Prometheus text exposition format
//	/metrics?window=1     — last-window percentiles (p50/p95/p99) as JSON
//	/debug/traces         — retained trace records, newest first; ?slow=1
//	                        keeps only slow-flagged traces, ?n=K caps the count
//	/healthz              — the health callback's value as JSON; 503 when the
//	                        callback reports an error, 200 otherwise
//	/debug/pprof/         — the standard runtime profiles
//
// Health may be nil (a bare {"status":"ok"} is served) and is called per
// request, so it can probe live state. The pprof handlers are mounted
// explicitly rather than through net/http/pprof's DefaultServeMux side
// effect, so importing this package does not pollute the global mux.
func HandlerWith(cfg HandlerConfig) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		switch {
		case q.Get("format") == "prom":
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			WriteProm(w, cfg.Registry.Snapshot())
		case q.Get("window") != "":
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(cfg.Windows.Snapshot())
		default:
			w.Header().Set("Content-Type", "application/json")
			w.Write(cfg.Registry.JSON())
		}
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		limit, _ := strconv.Atoi(q.Get("n"))
		recs := cfg.Traces.Snapshot(q.Get("slow") == "1", limit)
		if recs == nil {
			recs = []TraceRecord{}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(recs)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		var (
			doc interface{} = map[string]string{"status": "ok"}
			err error
		)
		if cfg.Health != nil {
			doc, err = cfg.Health()
		}
		w.Header().Set("Content-Type", "application/json")
		if err != nil {
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]string{"status": "unhealthy", "error": err.Error()})
			return
		}
		if b, merr := json.Marshal(doc); merr == nil {
			w.Write(b)
		} else {
			w.WriteHeader(http.StatusInternalServerError)
			json.NewEncoder(w).Encode(map[string]string{"status": "error", "error": merr.Error()})
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DebugServer is a running debug HTTP listener.
type DebugServer struct {
	srv *http.Server
	ln  net.Listener
}

// Serve starts the debug endpoint on addr with a registry and health
// callback only; see ServeWith for the full configuration.
func Serve(addr string, reg *Registry, health func() (interface{}, error)) (*DebugServer, error) {
	return ServeWith(addr, HandlerConfig{Registry: reg, Health: health})
}

// ServeWith starts the debug endpoint on addr (":7699", "127.0.0.1:0",
// ...) and serves in the background until Close. The listener is bound
// before returning, so Addr is immediately valid and a bad address fails
// fast.
func ServeWith(addr string, cfg HandlerConfig) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: HandlerWith(cfg), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return &DebugServer{srv: srv, ln: ln}, nil
}

// Addr returns the bound listen address.
func (d *DebugServer) Addr() net.Addr { return d.ln.Addr() }

// Close stops the listener and in-flight handlers.
func (d *DebugServer) Close() error { return d.srv.Close() }
