package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler serves the debug endpoint:
//
//	/metrics       — the registry as JSON ("{}" when reg is nil)
//	/healthz       — the health callback's value as JSON; 503 when the
//	                 callback reports an error, 200 otherwise
//	/debug/pprof/  — the standard runtime profiles
//
// health may be nil (a bare {"status":"ok"} is served) and is called per
// request, so it can probe live state. The pprof handlers are mounted
// explicitly rather than through net/http/pprof's DefaultServeMux side
// effect, so importing this package does not pollute the global mux.
func Handler(reg *Registry, health func() (interface{}, error)) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write(reg.JSON())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		var (
			doc interface{} = map[string]string{"status": "ok"}
			err error
		)
		if health != nil {
			doc, err = health()
		}
		w.Header().Set("Content-Type", "application/json")
		if err != nil {
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]string{"status": "unhealthy", "error": err.Error()})
			return
		}
		if b, merr := json.Marshal(doc); merr == nil {
			w.Write(b)
		} else {
			w.WriteHeader(http.StatusInternalServerError)
			json.NewEncoder(w).Encode(map[string]string{"status": "error", "error": merr.Error()})
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DebugServer is a running debug HTTP listener.
type DebugServer struct {
	srv *http.Server
	ln  net.Listener
}

// Serve starts the debug endpoint on addr (":7699", "127.0.0.1:0", ...)
// and serves in the background until Close. The listener is bound before
// returning, so Addr is immediately valid and a bad address fails fast.
func Serve(addr string, reg *Registry, health func() (interface{}, error)) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler(reg, health), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return &DebugServer{srv: srv, ln: ln}, nil
}

// Addr returns the bound listen address.
func (d *DebugServer) Addr() net.Addr { return d.ln.Addr() }

// Close stops the listener and in-flight handlers.
func (d *DebugServer) Close() error { return d.srv.Close() }
