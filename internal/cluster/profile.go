package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/match"
	"repro/internal/obs"
	"repro/internal/server"
)

// This file defines the coordinator's merged profile documents. The
// coordinator does not re-interpret worker profiles: each worker's own
// per-stage document (produced by the server's profile command against
// its fragment) is embedded verbatim as raw JSON, with the coordinator
// contributing the cross-fragment dimensions a worker cannot see —
// round-trip vs compute split, fan-out width, merge time, and the global
// affected-region size.

// MatchProfile is the merged cluster-level profile of one match.
type MatchProfile struct {
	Op      string `json:"op"` // "match"
	Engine  string `json:"engine"`
	Workers int    `json:"workers"`
	// Fragments has one entry per worker, indexed by worker id.
	Fragments []FragmentProfile `json:"fragments"`
	Matches   int               `json:"matches"`
	MergeMS   float64           `json:"merge_ms"`
	TotalMS   float64           `json:"total_ms"`
	Metrics   match.Metrics     `json:"metrics"`
}

// FragmentProfile is one worker's share of a cluster match. ComputeMS is
// the worker-reported handler time; RTTMS the coordinator-measured round
// trip — their difference is serialization + wire + queueing. Profile is
// the worker's own per-stage document, embedded verbatim.
type FragmentProfile struct {
	Worker    int             `json:"worker"`
	Answers   int             `json:"answers"`
	ComputeMS float64         `json:"compute_ms"`
	RTTMS     float64         `json:"rtt_ms"`
	Profile   json.RawMessage `json:"profile,omitempty"`
}

// UpdateProfile is the merged cluster-level profile of one update batch:
// the coordinator pipeline stage by stage (apply / journal / affected /
// fan-out / merge), per contacted worker timings with the worker's own
// stage document, and the affected-vs-|G| work ratio.
type UpdateProfile struct {
	Op        string `json:"op"` // "update"
	BatchSize int    `json:"batch_size"`
	Touched   int    `json:"touched"`
	Nodes     int    `json:"nodes"`
	// AffectedSize is the coordinator-computed re-verification region
	// (largest standing-watch radius); WorkRatio = AffectedSize / Nodes.
	// The incremental claim is WorkRatio ≪ 1 for small batches.
	AffectedSize int     `json:"affected_size"`
	WorkRatio    float64 `json:"work_ratio"`
	ApplyMS      float64 `json:"apply_ms"`
	JournalMS    float64 `json:"journal_ms,omitempty"`
	AffectedMS   float64 `json:"affected_ms"`
	FanoutMS     float64 `json:"fanout_ms"`
	MergeMS      float64 `json:"merge_ms"`
	TotalMS      float64 `json:"total_ms"`
	// Workers has one entry per contacted worker, ascending id; skipped
	// workers (the routing win) do not appear.
	Workers []WorkerUpdateProfile `json:"workers,omitempty"`
}

// WorkerUpdateProfile is one contacted worker's share of an update.
type WorkerUpdateProfile struct {
	Worker    int     `json:"worker"`
	PlanMS    float64 `json:"plan_ms"`
	RTTMS     float64 `json:"rtt_ms"`
	MirrorMS  float64 `json:"mirror_ms,omitempty"`
	Mutations int     `json:"mutations"`
	Affected  int     `json:"affected"`
	Assigned  int     `json:"assigned,omitempty"`
	// Profile is the worker's own update stage document (apply time,
	// per-watch affected/verify split), embedded verbatim.
	Profile json.RawMessage `json:"profile,omitempty"`
}

// ExplainResult is the merged cluster-level explain document: each
// worker plans the query against its own fragment statistics, so the
// per-fragment orders may legitimately differ.
type ExplainResult struct {
	Op        string            `json:"op"` // "explain"
	Workers   int               `json:"workers"`
	Fragments []FragmentExplain `json:"fragments"`
}

// FragmentExplain is one worker's plan document, embedded verbatim.
type FragmentExplain struct {
	Worker int             `json:"worker"`
	Plan   json.RawMessage `json:"plan,omitempty"`
}

// Explain fans the explain command out to every worker and merges the
// per-fragment plan documents. Nothing is executed. Like Match it is
// read-only, so it routes across fragment copies under the read lock
// and falls back to the write-locked failover path only when a fragment
// has no live copy.
func (c *Coordinator) Explain(q *core.Pattern) (res *ExplainResult, err error) {
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	tr := c.cfg.Tracer.Start("explain")
	defer func() { tr.Finish(err) }()
	c.mu.RLock()
	res, err = c.explainLocked(q, tr, true)
	c.mu.RUnlock()
	if errors.Is(err, errReadFailover) {
		c.om.readFellBack()
		c.mu.Lock()
		c.pruneSuspectsLocked()
		res, err = c.explainLocked(q, tr, false)
		c.mu.Unlock()
	}
	return res, err
}

func (c *Coordinator) explainLocked(q *core.Pattern, tr *obs.Trace, readPath bool) (*ExplainResult, error) {
	if err := c.refuseLocked(); err != nil {
		return nil, err
	}
	out := &ExplainResult{Op: "explain", Workers: len(c.workers), Fragments: make([]FragmentExplain, len(c.workers))}
	pattern := q.String()
	err := c.fanOut(func(w *worker) error {
		t0 := time.Now()
		req := &server.Request{Cmd: "explain", Pattern: pattern}
		var resp *server.Response
		var err error
		if readPath {
			resp, err = c.sendRead(w, "explain", req, 0)
		} else {
			resp, err = c.sendPrimary(w, "explain", req, c.g)
		}
		if err != nil {
			return err
		}
		tr.Span(w.id, "rtt", t0)
		out.Fragments[w.id] = FragmentExplain{Worker: w.id, Plan: resp.Profile}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// msSince returns the elapsed time since t0 in fractional milliseconds.
func msSince(t0 time.Time) float64 {
	return float64(time.Since(t0).Microseconds()) / 1000
}
