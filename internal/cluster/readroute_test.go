package cluster

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/server"
)

// TestLeastLoadedCopy: the router picks by read score, skips suspects,
// and honors the version fence (primary always eligible).
func TestLeastLoadedCopy(t *testing.T) {
	g := gen.Social(gen.DefaultSocial(200, 13))
	pool := newTestPool(4)
	c, err := New(g, InProcessN(2, server.Config{}), Config{D: 2, Replicas: 3, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	w := c.workers[0]
	if len(w.replicas) != 2 {
		t.Fatalf("expected 2 warm replicas, got %d", len(w.replicas))
	}
	// All idle: any copy qualifies; loading the chosen one must steer the
	// next pick elsewhere.
	first := w.leastLoadedCopy(0)
	atomic.AddInt64(&first.inflight, 5)
	second := w.leastLoadedCopy(0)
	if second == first {
		t.Fatal("router re-picked the loaded copy")
	}

	// Fence: replicas below minV are ineligible, the primary always is.
	w.replicas[0].version = 3
	w.replicas[1].version = 7
	atomic.AddInt64(&w.primary.inflight, 100) // make the primary maximally unattractive
	if r := w.leastLoadedCopy(5); r != w.replicas[1] {
		t.Fatalf("fenced pick chose a copy at version %d, want the one at 7", r.version)
	}
	if r := w.leastLoadedCopy(9); r != w.primary {
		t.Fatal("fence past every replica must degrade to the primary")
	}

	// Suspects are skipped outright.
	w.replicas[1].suspect.Store(true)
	if r := w.leastLoadedCopy(5); r != w.primary {
		t.Fatal("suspect replica served a fenced read")
	}
	w.primary.suspect.Store(true)
	w.replicas[0].suspect.Store(true)
	if r := w.leastLoadedCopy(0); r != nil {
		t.Fatal("all copies suspect, router still picked one")
	}
}

// TestReadsSpreadAcrossCopies: a burst of concurrent Match calls must
// not pile onto one copy — with k=3 every copy of some fragment serves
// reads.
func TestReadsSpreadAcrossCopies(t *testing.T) {
	g := gen.Social(gen.DefaultSocial(300, 13))
	pool := newTestPool(6)
	c, err := New(g, InProcessN(2, server.Config{}), Config{D: 2, Replicas: 3, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	q := mustParse(t, testPatterns[0])
	want, err := c.Match(q)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := c.Match(q)
			if err != nil {
				errs <- err
				return
			}
			if len(res.Matches) != len(want.Matches) {
				errs <- errReadFailover // any sentinel; we just need a failure
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent match: %v", err)
	}

	dist := c.ReadDistribution()
	spread := false
	for _, counts := range dist {
		busy := 0
		for _, n := range counts {
			if n > 0 {
				busy++
			}
		}
		if busy >= 2 {
			spread = true
		}
	}
	if !spread {
		t.Fatalf("64 concurrent reads all served by one copy per fragment: %v", dist)
	}
}

// TestMinVersionRestrictsReplicas: a fenced match (MinVersion ahead of
// every replica) is served — by primaries — and an unfenced one still
// routes freely. Exercises the MatchOptions plumbing end to end.
func TestMinVersionRestrictsReplicas(t *testing.T) {
	g := gen.Social(gen.DefaultSocial(200, 13))
	pool := newTestPool(4)
	c, err := New(g, InProcessN(2, server.Config{}), Config{D: 2, Replicas: 2, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	q := mustParse(t, testPatterns[0])

	res, err := c.Update([]server.UpdateSpec{{Op: "addEdge", From: 1, To: 2, Label: "follow"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 1 || c.Version() != 1 {
		t.Fatalf("version token %d / coordinator %d, want 1/1", res.Version, c.Version())
	}

	// Artificially stale every replica; a read fenced at the token must
	// fall back to primaries and still succeed.
	for _, w := range c.workers {
		for _, r := range w.replicas {
			r.version = 0
		}
	}
	pre := c.ReadDistribution()
	if _, err := c.MatchWith(q, &MatchOptions{MinVersion: res.Version}); err != nil {
		t.Fatalf("fenced match: %v", err)
	}
	post := c.ReadDistribution()
	for i := range post {
		if post[i][0] != pre[i][0]+1 {
			t.Fatalf("fragment %d: fenced read did not go to the primary (%v -> %v)", i, pre[i], post[i])
		}
		for j := 1; j < len(post[i]); j++ {
			if post[i][j] != pre[i][j] {
				t.Fatalf("fragment %d: stale replica served a fenced read", i)
			}
		}
	}
}

// TestReadFailoverKeepsProfile: a profiled match that trips read
// failover still returns a profile document. Regression: the failed
// first attempt returns (nil, nil, err), and matchWith used to let that
// nil overwrite the profile pointer, so the write-locked retry ran an
// unprofiled match and handleProfile serialized Profile as JSON null.
func TestReadFailoverKeepsProfile(t *testing.T) {
	g := gen.Social(gen.DefaultSocial(200, 13))
	pool := newTestPool(6)
	c, err := New(g, InProcessN(2, server.Config{}), Config{D: 2, Replicas: 2, Pool: pool,
		Metrics: obs.NewRegistry(), Logf: func(string, ...interface{}) {}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	q := mustParse(t, testPatterns[0])

	c.workers[0].primary.t.Close()
	for _, r := range c.workers[0].replicas {
		r.t.Close()
	}
	res, prof, err := c.ProfileMatch(q, nil)
	if err != nil {
		t.Fatalf("profiled match after killing every copy of fragment 0: %v", err)
	}
	if c.om.readFallbacks.Value() == 0 {
		t.Fatal("profiled match did not trip the read-failover retry; the test exercised nothing")
	}
	if prof == nil {
		t.Fatal("profile document lost across the read-failover retry")
	}
	if prof.Workers != 2 || len(prof.Fragments) != 2 {
		t.Fatalf("profile covers %d workers / %d fragments, want 2/2", prof.Workers, len(prof.Fragments))
	}
	if prof.Matches != len(res.Matches) {
		t.Fatalf("profile reports %d matches, result has %d", prof.Matches, len(res.Matches))
	}
}

// TestReadFailoverFallback: killing every copy of a fragment makes the
// lock-free read path fail over to the write-locked path, which repairs
// the cluster from the pool; the match still answers correctly.
func TestReadFailoverFallback(t *testing.T) {
	g := gen.Social(gen.DefaultSocial(200, 13))
	pool := newTestPool(6)
	ts := InProcessN(2, server.Config{})
	c, err := New(g, ts, Config{D: 2, Replicas: 2, Pool: pool, Logf: func(string, ...interface{}) {}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	q := mustParse(t, testPatterns[0])
	want, err := c.Match(q)
	if err != nil {
		t.Fatal(err)
	}

	// Kill fragment 0 outright: primary transport and its warm replica.
	c.workers[0].primary.t.Close()
	for _, r := range c.workers[0].replicas {
		r.t.Close()
	}
	got, err := c.Match(q)
	if err != nil {
		t.Fatalf("match after killing every copy of fragment 0: %v", err)
	}
	if len(got.Matches) != len(want.Matches) {
		t.Fatalf("answers diverged after read failover: %d vs %d", len(got.Matches), len(want.Matches))
	}
	if c.om != nil && c.om.readFallbacks.Value() == 0 {
		t.Fatal("fallback path did not record itself") // only with metrics configured
	}
}
