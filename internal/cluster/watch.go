package cluster

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/server"
)

// Watch registers a standing pattern on every worker under the given name
// and returns the merged initial answer set; every later Update reports
// the watch's merged answer delta. ClusterWatch of the ISSUE's API naming.
//
// Each worker maintains the answers of its owned focus candidates with a
// restricted dynamic.Matcher, so maintenance work is sharded the same way
// matching is.
func (c *Coordinator) Watch(name string, q *core.Pattern) ([]graph.NodeID, error) {
	if name == "" {
		return nil, fmt.Errorf("cluster: watch: empty name")
	}
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	if need := parallel.RequiredHops(q); need > c.cfg.D {
		return nil, fmt.Errorf("cluster: pattern needs %d-hop preservation but the fragmentation has d=%d", need, c.cfg.D)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failed != nil {
		return nil, fmt.Errorf("cluster: coordinator failed earlier: %w", c.failed)
	}
	if c.watches[name] {
		return nil, fmt.Errorf("cluster: watch %q already registered", name)
	}
	// Mirror the workers' per-session cap (server.go) before fanning out:
	// hitting it on the workers would look like a partial failure and
	// needlessly fail-stop the cluster.
	if len(c.watches) >= 16 {
		return nil, fmt.Errorf("cluster: session limit of 16 standing patterns reached")
	}

	pattern := q.String()
	merged := make(map[graph.NodeID]bool)
	responses := make([]*server.Response, len(c.workers))
	err := c.fanOut(func(w *worker) error {
		resp, err := w.t.Do(&server.Request{Cmd: "watch", Watch: name, Pattern: pattern})
		if err != nil {
			return fmt.Errorf("cluster: worker %d: %w", w.id, err)
		}
		responses[w.id] = resp
		return nil
	})
	if err != nil {
		// Some workers may now hold the watch while others don't; deltas
		// from the orphans would leak into later updates. Fail-stop, as
		// Update does.
		c.failed = err
		return nil, err
	}
	for i, resp := range responses {
		if err := c.workers[i].mergeGlobal(resp.Matches, merged); err != nil {
			c.failed = err
			return nil, err
		}
	}
	c.watches[name] = true
	return sortedSet(merged), nil
}

// Unwatch removes a standing pattern from every worker.
func (c *Coordinator) Unwatch(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failed != nil {
		return fmt.Errorf("cluster: coordinator failed earlier: %w", c.failed)
	}
	if !c.watches[name] {
		return fmt.Errorf("cluster: no watch named %q", name)
	}
	err := c.fanOut(func(w *worker) error {
		if _, err := w.t.Do(&server.Request{Cmd: "unwatch", Watch: name}); err != nil {
			return fmt.Errorf("cluster: worker %d: %w", w.id, err)
		}
		return nil
	})
	if err != nil {
		// Partial removal: some workers still hold the watch. Fail-stop.
		c.failed = err
		return err
	}
	delete(c.watches, name)
	return nil
}

// Watches returns the registered watch names, sorted.
func (c *Coordinator) Watches() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.watches))
	for name := range c.watches {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
