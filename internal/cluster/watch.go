package cluster

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/server"
)

// Watch registers a standing pattern on every worker under the given name
// and returns the merged initial answer set; every later Update reports
// the watch's merged answer delta. ClusterWatch of the ISSUE's API naming.
//
// Each worker maintains the answers of its owned focus candidates with a
// restricted dynamic.Matcher, so maintenance work is sharded the same way
// matching is. Watches live only on primaries: a replica promoted by
// failover re-registers them before serving.
func (c *Coordinator) Watch(name string, q *core.Pattern) (initial []graph.NodeID, err error) {
	if name == "" {
		return nil, fmt.Errorf("cluster: watch: empty name")
	}
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	if need := parallel.RequiredHops(q); need > c.cfg.D {
		return nil, fmt.Errorf("cluster: pattern needs %d-hop preservation but the fragmentation has d=%d", need, c.cfg.D)
	}
	tr := c.cfg.Tracer.Start("watch")
	defer func() { tr.Finish(err) }()
	tr.Annotatef("name=%s", name)
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.refuseLocked(); err != nil {
		return nil, err
	}
	if _, dup := c.watches[name]; dup {
		return nil, fmt.Errorf("cluster: watch %q already registered", name)
	}
	// Mirror the workers' per-session cap (server.go) before fanning out
	// so the common overflow is caught without paying a round trip. The
	// multi-tenant front end lifts both caps (MaxWatches < 0,
	// server.Config.MaxWatches < 0 — remote qgpd workers need
	// -max-watches -1) and enforces per-tenant quotas itself; a worker
	// that still rejects (a misconfigured or stock remote worker keeping
	// its own cap) is handled below by rolling the fan-out back.
	max := c.cfg.MaxWatches
	if max == 0 {
		max = 16
	}
	if max > 0 && len(c.watches) >= max {
		return nil, fmt.Errorf("cluster: session limit of %d standing patterns reached", max)
	}

	pattern := q.String()
	merged := make(map[graph.NodeID]bool)
	responses := make([]*server.Response, len(c.workers))
	err = c.fanOut(func(w *worker) error {
		t0 := time.Now()
		resp, err := c.sendPrimary(w, "watch", &server.Request{Cmd: "watch", Watch: name, Pattern: pattern}, c.g)
		if err != nil {
			return err
		}
		tr.Span(w.id, "rtt", t0)
		responses[w.id] = resp
		return nil
	})
	if err != nil {
		// Some workers may now hold the watch while others don't; deltas
		// from the orphans would leak into later updates. A protocol
		// rejection (the worker answered, e.g. a remote qgpd enforcing
		// its own per-session watch cap, which the coordinator cannot
		// see) left every contacted worker alive and changed no graph
		// state, so the orphans are rolled back and the error stays
		// scoped to this one caller instead of fail-stopping the shared
		// cluster for every tenant. A transport failure (worker died
		// mid-registration and failover could not replace it) fail-stops,
		// as Update does, and so does a failed rollback.
		var se *client.ServerError
		if errors.As(err, &se) {
			if rberr := c.rollbackWatchLocked(name, responses); rberr != nil {
				c.failed = fmt.Errorf("watch %q: %v; rollback: %w", name, err, rberr)
				return nil, c.failed
			}
			return nil, err
		}
		c.failed = err
		return nil, err
	}
	for i, resp := range responses {
		if err := c.workers[i].mergeGlobal(resp.Matches, merged); err != nil {
			c.failed = err
			return nil, err
		}
	}
	c.watches[name] = pattern
	c.watchHops[name] = parallel.RequiredHops(q)
	if c.cfg.Journal != nil {
		if err := c.cfg.Journal.WatchRegistered(name, pattern); err != nil {
			// The watch is live on every worker but not durable; a
			// recovery would silently drop it. Fail-stop rather than
			// diverge from the journal.
			c.failed = fmt.Errorf("journal watch %q: %w", name, err)
			return nil, c.failed
		}
	}
	if c.om != nil {
		c.om.watchCount.Inc()
	}
	return sortedSet(merged), nil
}

// rollbackWatchLocked removes a partially registered watch from the
// workers that accepted it (those with a non-nil response in the Watch
// fan-out). Workers that rejected or died never hold the watch: a
// protocol error means the server refused the registration, and a
// transport failure replaced the primary with a copy enlisted from
// c.watches, which does not yet contain name. A protocol error from the
// rollback unwatch itself is benign — the server only refuses unwatch
// for a name it does not hold (a failover mid-rollback promoted a copy
// without the orphan), so no orphan remains either way. Callers hold
// c.mu.
func (c *Coordinator) rollbackWatchLocked(name string, responses []*server.Response) error {
	return c.fanOut(func(w *worker) error {
		if responses[w.id] == nil {
			return nil
		}
		_, err := c.sendPrimary(w, "unwatch", &server.Request{Cmd: "unwatch", Watch: name}, c.g)
		var se *client.ServerError
		if errors.As(err, &se) {
			return nil
		}
		return err
	})
}

// Unwatch removes a standing pattern from every worker.
func (c *Coordinator) Unwatch(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.refuseLocked(); err != nil {
		return err
	}
	if _, ok := c.watches[name]; !ok {
		return fmt.Errorf("cluster: no watch named %q", name)
	}
	err := c.fanOut(func(w *worker) error {
		_, err := c.sendPrimary(w, "unwatch", &server.Request{Cmd: "unwatch", Watch: name}, c.g)
		return err
	})
	if err != nil {
		// Partial removal: some workers still hold the watch. Fail-stop.
		c.failed = err
		return err
	}
	delete(c.watches, name)
	delete(c.watchHops, name)
	if c.cfg.Journal != nil {
		if err := c.cfg.Journal.WatchRemoved(name); err != nil {
			c.failed = fmt.Errorf("journal unwatch %q: %w", name, err)
			return c.failed
		}
	}
	return nil
}

// Watches returns the registered watch names, sorted.
func (c *Coordinator) Watches() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.watches))
	for name := range c.watches {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
