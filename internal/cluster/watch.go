package cluster

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/server"
)

// Watch registers a standing pattern on every worker under the given name
// and returns the merged initial answer set; every later Update reports
// the watch's merged answer delta. ClusterWatch of the ISSUE's API naming.
//
// Each worker maintains the answers of its owned focus candidates with a
// restricted dynamic.Matcher, so maintenance work is sharded the same way
// matching is. Watches live only on primaries: a replica promoted by
// failover re-registers them before serving.
func (c *Coordinator) Watch(name string, q *core.Pattern) (initial []graph.NodeID, err error) {
	if name == "" {
		return nil, fmt.Errorf("cluster: watch: empty name")
	}
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	if need := parallel.RequiredHops(q); need > c.cfg.D {
		return nil, fmt.Errorf("cluster: pattern needs %d-hop preservation but the fragmentation has d=%d", need, c.cfg.D)
	}
	tr := c.cfg.Tracer.Start("watch")
	defer func() { tr.Finish(err) }()
	tr.Annotatef("name=%s", name)
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.refuseLocked(); err != nil {
		return nil, err
	}
	if _, dup := c.watches[name]; dup {
		return nil, fmt.Errorf("cluster: watch %q already registered", name)
	}
	// Mirror the workers' per-session cap (server.go) before fanning out:
	// hitting it on the workers would look like a partial failure and
	// needlessly fail-stop the cluster. The multi-tenant front end lifts
	// both caps (MaxWatches < 0, server.Config.MaxWatches < 0) and
	// enforces per-tenant quotas itself.
	max := c.cfg.MaxWatches
	if max == 0 {
		max = 16
	}
	if max > 0 && len(c.watches) >= max {
		return nil, fmt.Errorf("cluster: session limit of %d standing patterns reached", max)
	}

	pattern := q.String()
	merged := make(map[graph.NodeID]bool)
	responses := make([]*server.Response, len(c.workers))
	err = c.fanOut(func(w *worker) error {
		t0 := time.Now()
		resp, err := c.sendPrimary(w, "watch", &server.Request{Cmd: "watch", Watch: name, Pattern: pattern}, c.g)
		if err != nil {
			return err
		}
		tr.Span(w.id, "rtt", t0)
		responses[w.id] = resp
		return nil
	})
	if err != nil {
		// Some workers may now hold the watch while others don't; deltas
		// from the orphans would leak into later updates. Fail-stop, as
		// Update does.
		c.failed = err
		return nil, err
	}
	for i, resp := range responses {
		if err := c.workers[i].mergeGlobal(resp.Matches, merged); err != nil {
			c.failed = err
			return nil, err
		}
	}
	c.watches[name] = pattern
	c.watchHops[name] = parallel.RequiredHops(q)
	if c.cfg.Journal != nil {
		if err := c.cfg.Journal.WatchRegistered(name, pattern); err != nil {
			// The watch is live on every worker but not durable; a
			// recovery would silently drop it. Fail-stop rather than
			// diverge from the journal.
			c.failed = fmt.Errorf("journal watch %q: %w", name, err)
			return nil, c.failed
		}
	}
	if c.om != nil {
		c.om.watchCount.Inc()
	}
	return sortedSet(merged), nil
}

// Unwatch removes a standing pattern from every worker.
func (c *Coordinator) Unwatch(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.refuseLocked(); err != nil {
		return err
	}
	if _, ok := c.watches[name]; !ok {
		return fmt.Errorf("cluster: no watch named %q", name)
	}
	err := c.fanOut(func(w *worker) error {
		_, err := c.sendPrimary(w, "unwatch", &server.Request{Cmd: "unwatch", Watch: name}, c.g)
		return err
	})
	if err != nil {
		// Partial removal: some workers still hold the watch. Fail-stop.
		c.failed = err
		return err
	}
	delete(c.watches, name)
	delete(c.watchHops, name)
	if c.cfg.Journal != nil {
		if err := c.cfg.Journal.WatchRemoved(name); err != nil {
			c.failed = fmt.Errorf("journal unwatch %q: %w", name, err)
			return c.failed
		}
	}
	return nil
}

// Watches returns the registered watch names, sorted.
func (c *Coordinator) Watches() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.watches))
	for name := range c.watches {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
