package cluster

import (
	"context"
	"net"
	"reflect"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/server"
)

func startFrontend(t *testing.T, workers int) *client.Client {
	t.Helper()
	fe := NewFrontend(FrontendConfig{
		Cluster: Config{D: 2},
		NewWorkers: func() ([]Transport, error) {
			return InProcessN(workers, server.Config{}), nil
		},
		Logf: func(string, ...interface{}) {},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go fe.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		fe.Shutdown(ctx)
	})
	c, err := client.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestFrontendEndToEnd drives a 2-worker cluster through the front-end
// wire protocol with the stock client: gen → watch → update → match, plus
// stats and partition introspection.
func TestFrontendEndToEnd(t *testing.T) {
	c := startFrontend(t, 2)
	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	nodes, edges, err := c.Gen("social", 200, 9)
	if err != nil {
		t.Fatalf("gen: %v", err)
	}
	if nodes == 0 || edges == 0 {
		t.Fatalf("gen returned %d nodes / %d edges", nodes, edges)
	}

	pattern := "qgp\nn xo person *\nn z person\ne xo z follow >=3\n"
	wresp, err := c.Watch("w", pattern)
	if err != nil {
		t.Fatalf("watch: %v", err)
	}

	mresp, err := c.Match(pattern, nil)
	if err != nil {
		t.Fatalf("match: %v", err)
	}
	if !reflect.DeepEqual(mresp.Matches, wresp.Matches) {
		t.Fatalf("match answers %v != watch initial answers %v", mresp.Matches, wresp.Matches)
	}

	// Per-request engine selection is forwarded to the workers: the enum
	// baseline must agree, and a bogus engine must be rejected.
	eresp, err := c.Match(pattern, &client.MatchOptions{Engine: "enum"})
	if err != nil {
		t.Fatalf("match engine=enum: %v", err)
	}
	if !reflect.DeepEqual(eresp.Matches, mresp.Matches) {
		t.Fatalf("enum answers %v != qmatch answers %v", eresp.Matches, mresp.Matches)
	}
	if _, err := c.Match(pattern, &client.MatchOptions{Engine: "bogus"}); err == nil {
		t.Fatal("bogus engine accepted")
	}

	uresp, err := c.UpdateWithDeltas(
		server.UpdateSpec{Op: "removeNode", From: mresp.Matches[0]},
	)
	if err != nil {
		t.Fatalf("update: %v", err)
	}
	var found bool
	for _, d := range uresp.Deltas {
		if d.Watch != "w" {
			continue
		}
		for _, v := range d.Removed {
			if v == mresp.Matches[0] {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("removing answer node %d did not surface in deltas: %+v", mresp.Matches[0], uresp.Deltas)
	}

	sresp, err := c.Stats(5)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if sresp.Nodes != uresp.Nodes {
		t.Fatalf("stats nodes %d != post-update nodes %d", sresp.Nodes, uresp.Nodes)
	}

	presp, err := c.Partition(0, 0)
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	if len(presp.Fragments) != 2 {
		t.Fatalf("partition fragments = %v, want 2 entries", presp.Fragments)
	}

	// Unsupported commands fail loudly instead of answering wrong.
	if _, err := c.PMatch(pattern, 2, 2); err == nil {
		t.Fatal("pmatch should not be served by the front end")
	}
	// The connection stays usable after a command error.
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after error: %v", err)
	}
}

// TestFrontendNoGraph: querying before gen/load is a clean error.
func TestFrontendNoGraph(t *testing.T) {
	c := startFrontend(t, 2)
	if _, err := c.Match("qgp\nn xo person *\n", nil); err == nil {
		t.Fatal("match before gen succeeded")
	}
}

// TestFrontendRejectsWorkerRouting: the combined-batch routing fields
// (owned/scoped/affected) are coordinator→worker vocabulary; a client
// sending them to the front end gets an explicit error, not silently
// dropped assignment.
func TestFrontendRejectsWorkerRouting(t *testing.T) {
	c := startFrontend(t, 2)
	if _, _, err := c.Gen("social", 100, 3); err != nil {
		t.Fatalf("gen: %v", err)
	}
	for name, req := range map[string]*server.Request{
		"owned":    {Cmd: "update", Updates: []server.UpdateSpec{{Op: "addNode", Label: "person"}}, Owned: []int64{0}},
		"scoped":   {Cmd: "update", Updates: []server.UpdateSpec{{Op: "addNode", Label: "person"}}, Scoped: true},
		"affected": {Cmd: "update", Updates: []server.UpdateSpec{{Op: "addNode", Label: "person"}}, Affected: []int64{0}},
	} {
		if _, err := c.Do(req); err == nil {
			t.Errorf("update with %s field succeeded at the front end", name)
		}
	}
	// A plain update on the same connection still works.
	if _, _, err := c.Update(server.UpdateSpec{Op: "addNode", Label: "person"}); err != nil {
		t.Fatalf("plain update after rejections: %v", err)
	}
}
