package cluster

import (
	"context"
	"net"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/server"
)

// startSharedFrontend starts a front end in the default shared-session
// mode, counting how many worker sets (i.e. fragmentations) it builds.
func startSharedFrontend(t *testing.T, isolate bool, builds *atomic.Int64) (string, *Frontend) {
	t.Helper()
	fe := NewFrontend(FrontendConfig{
		Cluster: Config{D: 2},
		Isolate: isolate,
		NewWorkers: func() ([]Transport, error) {
			builds.Add(1)
			return InProcessN(2, server.Config{MaxWatches: -1}), nil
		},
		Logf: func(string, ...interface{}) {},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go fe.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		fe.Shutdown(ctx)
	})
	return ln.Addr().String(), fe
}

func dialFrontend(t *testing.T, addr string) *client.Client {
	t.Helper()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestFrontendSharedSession: the regression for the old
// cluster-per-connection default — two connections must see ONE
// fragmentation. The second client queries the graph the first one
// loaded, and no second worker set is ever built.
func TestFrontendSharedSession(t *testing.T) {
	var builds atomic.Int64
	addr, _ := startSharedFrontend(t, false, &builds)
	c1 := dialFrontend(t, addr)
	c2 := dialFrontend(t, addr)

	if _, _, err := c1.Gen("social", 200, 9); err != nil {
		t.Fatalf("gen: %v", err)
	}
	r1, err := c1.Match(testPatterns[0], nil)
	if err != nil {
		t.Fatalf("match c1: %v", err)
	}
	// c2 never ran gen: in the shared model it reads the same cluster.
	r2, err := c2.Match(testPatterns[0], nil)
	if err != nil {
		t.Fatalf("match on second connection: %v", err)
	}
	if !reflect.DeepEqual(r1.Matches, r2.Matches) {
		t.Fatalf("connections disagree: %v vs %v", r1.Matches, r2.Matches)
	}
	if n := builds.Load(); n != 1 {
		t.Fatalf("two connections built %d fragmentations, want 1", n)
	}
}

// TestFrontendIsolateMode: the -isolate flag restores per-connection
// clusters — a second connection has no graph, and session commands are
// refused.
func TestFrontendIsolateMode(t *testing.T) {
	var builds atomic.Int64
	addr, _ := startSharedFrontend(t, true, &builds)
	c1 := dialFrontend(t, addr)
	c2 := dialFrontend(t, addr)

	if _, _, err := c1.Gen("social", 150, 4); err != nil {
		t.Fatalf("gen: %v", err)
	}
	if _, err := c2.Match(testPatterns[0], nil); err == nil {
		t.Fatal("isolate mode: second connection saw the first one's graph")
	}
	if _, _, err := c2.Gen("social", 150, 4); err != nil {
		t.Fatalf("gen c2: %v", err)
	}
	if n := builds.Load(); n != 2 {
		t.Fatalf("isolate mode built %d clusters for two gens, want 2", n)
	}
	if _, err := c1.Session("alice"); err == nil {
		t.Fatal("isolate mode accepted the session command")
	}
}

// TestFrontendTenantNamespaces drives the tenant layer over the wire:
// private watch names, writer-only update deltas, cross-tenant delta
// drains, session listing and eviction.
func TestFrontendTenantNamespaces(t *testing.T) {
	var builds atomic.Int64
	addr, _ := startSharedFrontend(t, false, &builds)
	alice := dialFrontend(t, addr)
	bob := dialFrontend(t, addr)

	if got, err := alice.Session("alice"); err != nil || got != "alice" {
		t.Fatalf("session: %q, %v", got, err)
	}
	if got, err := bob.Session("bob"); err != nil || got != "bob" {
		t.Fatalf("session: %q, %v", got, err)
	}
	if _, _, err := alice.Gen("social", 200, 9); err != nil {
		t.Fatalf("gen: %v", err)
	}

	// Both tenants watch under the SAME name; namespaces keep them apart.
	wa, err := alice.Watch("w", testPatterns[0])
	if err != nil {
		t.Fatalf("alice watch: %v", err)
	}
	if _, err := bob.Watch("w", testPatterns[0]); err != nil {
		t.Fatalf("bob watch (same local name): %v", err)
	}

	// Alice removes one of her answers. Her update response carries only
	// her own namespace's delta, under the local name.
	victim := wa.Matches[0]
	res, err := alice.UpdateWithDeltas(server.UpdateSpec{Op: "removeNode", From: victim})
	if err != nil {
		t.Fatalf("update: %v", err)
	}
	if len(res.Deltas) != 1 || res.Deltas[0].Watch != "w" {
		t.Fatalf("writer deltas: %+v", res.Deltas)
	}
	foundRemoved := false
	for _, v := range res.Deltas[0].Removed {
		if v == victim {
			foundRemoved = true
		}
	}
	if !foundRemoved {
		t.Fatalf("alice's own delta misses the removed answer: %+v", res.Deltas)
	}

	// Bob picks his namespace's delta up with the deltas command.
	bd, err := bob.Deltas()
	if err != nil {
		t.Fatalf("bob deltas: %v", err)
	}
	if len(bd) != 1 || bd[0].Watch != "w" {
		t.Fatalf("bob's drained deltas: %+v", bd)
	}
	// Drained once, gone.
	if bd, _ := bob.Deltas(); len(bd) != 0 {
		t.Fatalf("second drain not empty: %+v", bd)
	}

	infos, err := alice.Sessions()
	if err != nil {
		t.Fatalf("sessions: %v", err)
	}
	if len(infos) != 2 || infos[0].Name != "alice" || infos[1].Name != "bob" {
		t.Fatalf("session list: %+v", infos)
	}
	if infos[0].Watches != 1 || infos[0].Writes != 1 {
		t.Fatalf("alice info: %+v", infos[0])
	}

	// Ending bob's session unregisters his watch; alice's keeps running.
	if err := bob.EndSession(""); err != nil {
		t.Fatalf("endsession: %v", err)
	}
	infos, _ = alice.Sessions()
	if len(infos) != 1 || infos[0].Name != "alice" {
		t.Fatalf("session list after eviction: %+v", infos)
	}
	res, err = alice.UpdateWithDeltas(server.UpdateSpec{Op: "addEdge", From: 2, To: 3, Label: "follow"})
	if err != nil {
		t.Fatalf("update after eviction: %v", err)
	}
	if n := builds.Load(); n != 1 {
		t.Fatalf("tenant traffic rebuilt the cluster %d times, want 1 build", n)
	}
}

// TestFrontendEphemeralSessionDiesWithConnection: a connection that never
// names a session gets an auto-created one, evicted on disconnect.
func TestFrontendEphemeralSessionDiesWithConnection(t *testing.T) {
	var builds atomic.Int64
	addr, fe := startSharedFrontend(t, false, &builds)
	c1 := dialFrontend(t, addr)
	if _, _, err := c1.Gen("social", 150, 4); err != nil {
		t.Fatalf("gen: %v", err)
	}
	c2, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Watch("w", testPatterns[0]); err != nil {
		t.Fatalf("watch: %v", err)
	}
	if infos, _ := c1.Sessions(); len(infos) != 1 {
		t.Fatalf("expected c2's ephemeral session, got %+v", infos)
	}
	c2.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if infos, _ := c1.Sessions(); len(infos) == 0 {
			break
		}
		if time.Now().After(deadline) {
			infos, _ := c1.Sessions()
			t.Fatalf("ephemeral session survived disconnect: %+v", infos)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Its watch left the shared coordinator too.
	if ws := fe.Tenants().List(); len(ws) != 0 {
		t.Fatalf("tenant manager still tracks %+v", ws)
	}
}

// TestFrontendReadYourWrites: a tenant's match immediately after its own
// update is fenced at the update's version token, so replica routing can
// never serve it pre-update state.
func TestFrontendReadYourWrites(t *testing.T) {
	pool := newTestPool(4)
	fe := NewFrontend(FrontendConfig{
		Cluster: Config{D: 2, Replicas: 3, Pool: pool},
		NewWorkers: func() ([]Transport, error) {
			return InProcessN(2, server.Config{MaxWatches: -1}), nil
		},
		Logf: func(string, ...interface{}) {},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go fe.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		fe.Shutdown(ctx)
	})
	c := dialFrontend(t, ln.Addr().String())
	if _, _, err := c.Gen("social", 200, 9); err != nil {
		t.Fatalf("gen: %v", err)
	}
	base, err := c.Match(testPatterns[0], nil)
	if err != nil {
		t.Fatalf("match: %v", err)
	}
	if len(base.Matches) == 0 {
		t.Fatal("pattern has no answers; pick another seed")
	}
	// Interleave writes and immediate reads; every read must see its own
	// write's effect (the removed answer gone), whatever copy serves it.
	answers := base.Matches
	for i := 0; i < 3 && len(answers) > 0; i++ {
		victim := answers[0]
		if _, _, err := c.Update(server.UpdateSpec{Op: "removeNode", From: victim}); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
		res, err := c.Match(testPatterns[0], nil)
		if err != nil {
			t.Fatalf("match %d: %v", i, err)
		}
		for _, v := range res.Matches {
			if v == victim {
				t.Fatalf("read %d returned the tenant's own removed answer %d", i, victim)
			}
		}
		answers = res.Matches
	}
}
