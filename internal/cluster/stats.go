package cluster

import (
	"errors"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

// Distributed statistics. The front end used to serve stats by cloning
// the authoritative graph and collecting over the clone — O(|G|) on the
// front-end process, pinned there no matter how many replicas the
// cluster had. Stats is instead fanned out like Match: each fragment
// copy answers the stats wire command with its OWNED-restricted summary
// (structured TripleRows; see stats.CollectOwned for why per-worker
// sums are exact), routed to the least-loaded live copy under the read
// lock, and the coordinator merges by summing per class. The last
// read-only command that pinned the primary/front end now scales with
// the replication factor like every other read.

// ClusterStats is the merged cluster-wide summary: exact — equal to
// collecting over the whole graph in one process — because ownership
// partitions the nodes and each owned node's full neighborhood is
// materialized in its owner's fragment.
type ClusterStats struct {
	Nodes  int
	Edges  int
	Labels []string           // distinct node label names present, sorted
	Rows   []server.TripleRow // summed triple classes, unordered
}

// Stats fans the stats command out across fragment copies and merges
// the owned-restricted summaries. minV is the read-your-writes fence
// (0 accepts any live copy), exactly as for Match.
func (c *Coordinator) Stats(minV uint64) (res *ClusterStats, err error) {
	tr := c.cfg.Tracer.Start("stats")
	defer func() { tr.Finish(err) }()
	c.mu.RLock()
	res, err = c.statsLocked(tr, minV, true)
	c.mu.RUnlock()
	if errors.Is(err, errReadFailover) {
		c.om.readFellBack()
		c.mu.Lock()
		c.pruneSuspectsLocked()
		res, err = c.statsLocked(tr, minV, false)
		c.mu.Unlock()
	}
	return res, err
}

func (c *Coordinator) statsLocked(tr *obs.Trace, minV uint64, readPath bool) (*ClusterStats, error) {
	if err := c.refuseLocked(); err != nil {
		return nil, err
	}
	responses := make([]*server.Response, len(c.workers))
	err := c.fanOut(func(w *worker) error {
		t0 := time.Now()
		// TopK 1 keeps the workers' rendered-string work minimal; the
		// merge consumes only the complete structured rows.
		req := &server.Request{Cmd: "stats", TopK: 1}
		var resp *server.Response
		var err error
		if readPath {
			resp, err = c.sendRead(w, "stats", req, minV)
		} else {
			resp, err = c.sendPrimary(w, "stats", req, c.g)
		}
		if err != nil {
			return err
		}
		tr.Span(w.id, "rtt", t0)
		responses[w.id] = resp
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := &ClusterStats{}
	rowIx := make(map[[3]string]int)
	labels := make(map[string]bool)
	for _, resp := range responses {
		out.Nodes += resp.Nodes
		out.Edges += resp.Edges
		for _, l := range resp.LabelNames {
			labels[l] = true
		}
		for _, r := range resp.TripleRows {
			key := [3]string{r.Src, r.Edge, r.Dst}
			if i, ok := rowIx[key]; ok {
				out.Rows[i].Count += r.Count
				out.Rows[i].Srcs += r.Srcs
				out.Rows[i].Dsts += r.Dsts
			} else {
				rowIx[key] = len(out.Rows)
				out.Rows = append(out.Rows, r)
			}
		}
	}
	out.Labels = make([]string, 0, len(labels))
	for l := range labels {
		out.Labels = append(out.Labels, l)
	}
	sort.Strings(out.Labels)
	return out, nil
}
