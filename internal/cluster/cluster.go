// Package cluster implements the paper's coordinator/worker architecture
// (§5) as a real multi-node subsystem: a Coordinator fragments a graph
// with the d-hop-preserving partition of internal/partition, ships each
// fragment to a worker over the qgpd wire protocol, fans quantified
// matches out to the workers, and routes update batches to only the
// workers whose fragments contain affected nodes, where
// internal/dynamic.Matcher maintains standing answers incrementally.
//
// Workers are stock qgpd processes: the fragment and assign protocol
// commands (see internal/server) turn an ordinary session into a fragment
// holder. The Transport interface abstracts how a worker is reached — Dial
// for a TCP worker, InProcess for an embedded one — so the same cluster
// runs across machines or inside a single test binary.
//
// High availability (ha.go) layers on this seam: with Config.Replicas=k
// each fragment is also shipped to k-1 warm replica sessions placed by a
// WorkerPool, a failed primary is promoted over or re-shipped from the
// authoritative graph, and Config.Journal records the durable state that
// internal/ha replays after a coordinator restart.
//
// Correctness rests on Lemma 9(1): whether a node answers a pattern Q
// depends only on the subgraph induced by its d-hop neighborhood, where
// d = parallel.RequiredHops(Q). Each worker owns a set of focus
// candidates whose full d-hop neighborhoods are materialized locally, so
// fragment-local evaluation restricted to owned nodes is exact and the
// coordinator's merge is a disjoint union.
package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"log"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/dynamic"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/server"
)

// Config tunes a Coordinator.
type Config struct {
	// D is the hop radius the fragmentation preserves (default 2).
	// Patterns with RequiredHops > D are rejected: fragment-local
	// evaluation would silently lose answers.
	D int
	// BalanceC is the fragment capacity multiplier of partition.Config.
	BalanceC float64
	// Engine is the per-worker matching engine ("qmatch", "qmatchn",
	// "enum"; empty means qmatch).
	Engine string
	// Budget is the extension budget forwarded with every worker match
	// request (0 uses each worker's default).
	Budget int64
	// Replicas is the number of copies of each fragment (k). The
	// default (0 or 1) keeps the primary-only fragmentation of the
	// original design. With k > 1 each fragment is also shipped to k-1
	// warm replica sessions obtained from Pool (placed on the
	// least-loaded endpoints by partition.OwnerMap owned counts, off
	// the primary's endpoint when possible); update and assign batches
	// are mirrored to replicas after the primary applies them, so a
	// replica can be promoted on primary failure without re-shipping,
	// and read-only fan-outs (Match, Explain, ProfileMatch) are routed
	// to the least-loaded live copy of each fragment, scaling read
	// throughput with k.
	Replicas int
	// MaxWatches caps the standing patterns one coordinator holds. 0
	// keeps the historical per-session default of 16; a negative value
	// lifts the cap (the multi-tenant front end enforces per-tenant
	// quotas itself and multiplexes many namespaces over one
	// coordinator). Workers need a matching server.Config.MaxWatches
	// (remote qgpd workers: the -max-watches flag); a worker that still
	// rejects a registration has the partial fan-out rolled back and the
	// error returned to the one caller (watch.go), not fail-stopped.
	MaxWatches int
	// Pool supplies fresh worker sessions for replica placement and
	// failover re-shipping. Optional when Replicas <= 1: without it, a
	// worker failure that no warm replica can cover fail-stops the
	// coordinator.
	Pool WorkerPool
	// Journal, when set, receives the authoritative graph at
	// construction and every accepted update batch (journaled before
	// fan-out) and watch change, so internal/ha can rebuild the
	// coordinator after a restart. Strictly off the hot path when nil.
	Journal UpdateJournal
	// Logf receives coordinator diagnostics — failovers, replica
	// promotions, re-ships, dropped mirrors; nil means log.Printf.
	// Library users pass a no-op func to silence the chatter or their
	// own sink to redirect it, like Frontend and ha.Monitor.
	Logf func(format string, args ...interface{})
	// Metrics, when set, receives the coordinator's counters and
	// histograms: per-operation counts and latency, per-worker fan-out
	// round-trip histograms, routed-vs-skipped worker counts, update
	// batch and affected-set sizes, and failover/mirror events (names
	// under cluster.*). Nil disables instrumentation at zero cost.
	Metrics *obs.Registry
	// Tracer, when set, gives every Match/Update/Watch request a
	// process-unique id and emits one structured line per request with
	// per-worker spans (plan, wire round trip, merge), so a slow
	// fan-out can be attributed to a specific worker/fragment. Nil
	// disables tracing.
	Tracer *obs.Tracer
}

// Coordinator is the paper's Sc: it holds the authoritative global graph,
// knows which worker owns and materializes which nodes, and drives the
// workers through the wire protocol. Methods are safe for concurrent use;
// requests to distinct workers run in parallel, and read-only operations
// (Match, Explain, ProfileMatch, status inspection) additionally run
// concurrently with each other under the read side of mu, routed across
// fragment copies (readroute.go).
type Coordinator struct {
	mu  sync.RWMutex
	cfg Config
	om  *coordMetrics
	g   *graph.Graph // authoritative global graph (edge-set normalized)
	// vg maintains g in place: Update applies each accepted batch as a
	// delta through the versioned core instead of rebuilding the graph,
	// and hands the pre-batch OldView to affected-set computation and
	// failover re-shipping.
	vg      *graph.Versioned
	workers []*worker
	watches map[string]string // watch name → pattern DSL (for failover re-registration)
	// watchHops tracks each watch's maintenance radius; Update re-verifies
	// only within the largest registered radius instead of the (usually
	// wider) fragmentation radius D.
	watchHops map[string]int
	closed    bool
	// failed is set when a worker failed mid-update with no failover
	// left, leaving fragments possibly inconsistent; every later
	// request is refused.
	failed error
	// version counts accepted update batches. Every live copy of every
	// fragment records the version it is synced to; the read router uses
	// the tokens as a read-your-writes fence (MatchOptions.MinVersion).
	// Guarded by mu: written under the write lock, read under either.
	version uint64
}

// replica is one worker session holding a copy of a fragment. The
// primary additionally holds the fragment's standing watches; warm
// replicas mirror only the graph and owned set.
type replica struct {
	t        Transport
	endpoint int // pool endpoint hosting the session, -1 unknown
	// version is the coordinator batch counter this copy is synced to.
	// Replicas are mirrored synchronously, so at rest every surviving
	// copy is current; the token is the fence that keeps a routed read
	// off a copy that missed a batch (it was added mid-history, or a
	// future async mirror left it behind). Guarded by c.mu.
	version uint64
	// inflight counts read-routed requests currently on this copy and
	// reads the total it has served; both are atomics because the read
	// path runs under c.mu's read side only.
	inflight int64
	reads    int64
	// suspect marks a copy whose transport failed a routed read: reads
	// skip it (no failover runs under the read lock) and the next
	// write-locked operation prunes or replaces it.
	suspect atomic.Bool
}

// worker is the coordinator's book-keeping for one fragment. The
// invariant between updates: every copy's session graph equals the
// subgraph of c.g induced by nodes, with local ids toGlobal[local].
type worker struct {
	id       int
	primary  *replica
	replicas []*replica                    // warm mirrors, promotion order
	dropped  int                           // replicas discarded after mirror/probe failures
	nodes    map[graph.NodeID]bool         // materialized global nodes
	owned    map[graph.NodeID]bool         // owned global nodes (answer set, disjoint across workers)
	toLocal  map[graph.NodeID]graph.NodeID // global → local id
	toGlobal []graph.NodeID                // local id → global
}

// New fragments g across the given worker transports (one fragment per
// transport) and ships each fragment with the fragment command; with
// cfg.Replicas=k > 1 each fragment is also shipped to k-1 replica
// sessions from cfg.Pool. The input graph is normalized to edge-set
// semantics (duplicate parallel edges collapse), matching what
// dynamic.Apply does on every update; Graph returns the normalized
// version.
//
// On success the coordinator owns every transport it holds — ts and any
// pool acquisitions — and releases them in Close. On error the caller
// keeps ownership of ts; sessions New acquired from the pool are closed
// before returning.
func New(g *graph.Graph, ts []Transport, cfg Config) (*Coordinator, error) {
	if len(ts) == 0 {
		return nil, errors.New("cluster: need at least one worker transport")
	}
	if cfg.D <= 0 {
		cfg.D = 2
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	if cfg.Replicas > 1 && cfg.Pool == nil {
		return nil, fmt.Errorf("cluster: %d replicas requested but no worker pool configured", cfg.Replicas)
	}
	g, _, err := dynamic.Apply(g, nil)
	if err != nil {
		return nil, fmt.Errorf("cluster: normalize: %w", err)
	}
	p, err := partition.DPar(g, partition.Config{Workers: len(ts), D: cfg.D, BalanceC: cfg.BalanceC})
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	// The normalized graph is a fresh copy (dynamic.Apply rebuilds), so
	// the versioned core can own it outright.
	vg := graph.NewVersioned(g)
	c := &Coordinator{cfg: cfg, g: vg.Graph(), vg: vg, watches: make(map[string]string), watchHops: make(map[string]int)}
	c.om = newCoordMetrics(cfg.Metrics, len(ts))
	c.workers = make([]*worker, len(ts))
	for i, f := range p.Fragments {
		w := &worker{
			id:      i,
			primary: &replica{t: ts[i], endpoint: endpointOf(ts[i])},
			nodes:   make(map[graph.NodeID]bool, len(f.Nodes)),
			owned:   make(map[graph.NodeID]bool, len(f.Owned)),
			toLocal: make(map[graph.NodeID]graph.NodeID, len(f.Nodes)),
		}
		for _, v := range f.Nodes {
			w.nodes[v] = true
		}
		c.workers[i] = w
	}
	// Ownership bookkeeping comes from the partition's routing-table view;
	// OwnerMap also guarantees each node has exactly one owner.
	for v, wid := range p.OwnerMap() {
		if wid < 0 {
			return nil, fmt.Errorf("cluster: node %d has no owning fragment", v)
		}
		c.workers[wid].owned[graph.NodeID(v)] = true
	}
	// Replica placement load is the partition's owned-node count per
	// fragment: the weight a fragment's sessions add to a pool endpoint.
	ownedLoad := p.OwnedCounts()
	err = c.fanOut(func(w *worker) error {
		f := p.Fragments[w.id]
		sub, toGlobal := g.Induced(f.Nodes)
		w.toGlobal = toGlobal
		for local, global := range toGlobal {
			w.toLocal[global] = graph.NodeID(local)
		}
		ownedLocal := make([]int64, len(f.Owned))
		for j, v := range f.Owned {
			ownedLocal[j] = int64(w.toLocal[v])
		}
		var buf bytes.Buffer
		if _, err := sub.WriteTo(&buf); err != nil {
			return fmt.Errorf("cluster: worker %d: serialize fragment: %w", w.id, err)
		}
		ship := &server.Request{Cmd: "fragment", Data: buf.String(), Owned: ownedLocal}
		if _, err := w.primary.t.Do(ship); err != nil {
			return &WorkerError{Worker: w.id, Op: "fragment", Err: err}
		}
		for len(w.replicas) < cfg.Replicas-1 {
			r, err := c.newCopy(w, ship, ownedLoad[w.id])
			if err != nil {
				return &WorkerError{Worker: w.id, Op: "replicate", Err: err}
			}
			w.replicas = append(w.replicas, r)
		}
		return nil
	})
	if err != nil {
		c.closeReplicasLocked()
		return nil, err
	}
	if cfg.Journal != nil {
		if err := cfg.Journal.SetGraph(g); err != nil {
			c.closeReplicasLocked()
			return nil, fmt.Errorf("cluster: journal: %w", err)
		}
	}
	return c, nil
}

// coordMetrics holds the coordinator's instruments, resolved from the
// registry once at construction so the fan-out hot path performs only
// atomic operations. Every field is nil (and every method call on it a
// no-op) when Config.Metrics is unset.
type coordMetrics struct {
	matchCount, updateCount, watchCount *obs.Counter
	matchMS, updateMS                   *obs.Histogram
	// Per-worker wire round-trip latency: a slow fan-out is attributed
	// to a specific worker/fragment here even without tracing.
	workerMatchMS, workerUpdateMS []*obs.Histogram
	// Update routing: how wide each batch fanned out, how many workers
	// were skipped, and the size of the batch and its affected region —
	// the "work proportional to the change" observables.
	updateBatch, updateAffected, updateFanout *obs.Histogram
	workersRouted, workersSkipped             *obs.Counter
	// Failover events (the mechanics in ha.go; internal/ha's monitor
	// counts its policy decisions separately).
	promotions, reships, mirrorDrops *obs.Counter
	// Read routing: how many routed reads landed on the primary vs a
	// warm replica, how many fell back to the write-locked failover
	// path, and how many copies were marked suspect by a failed read.
	readPrimary, readReplica, readFallbacks, readSuspects *obs.Counter
}

func newCoordMetrics(reg *obs.Registry, workers int) *coordMetrics {
	if reg == nil {
		return nil
	}
	om := &coordMetrics{
		matchCount:     reg.Counter("cluster.match.count"),
		updateCount:    reg.Counter("cluster.update.count"),
		watchCount:     reg.Counter("cluster.watch.count"),
		matchMS:        reg.Histogram("cluster.match.ms", obs.LatencyBucketsMS),
		updateMS:       reg.Histogram("cluster.update.ms", obs.LatencyBucketsMS),
		updateBatch:    reg.Histogram("cluster.update.batch_size", obs.SizeBuckets),
		updateAffected: reg.Histogram("cluster.update.affected_size", obs.SizeBuckets),
		updateFanout:   reg.Histogram("cluster.update.fanout", obs.SizeBuckets),
		workersRouted:  reg.Counter("cluster.update.workers_routed"),
		workersSkipped: reg.Counter("cluster.update.workers_skipped"),
		promotions:     reg.Counter("cluster.failover.promotions"),
		reships:        reg.Counter("cluster.failover.reships"),
		mirrorDrops:    reg.Counter("cluster.replica.mirror_drops"),
		readPrimary:    reg.Counter("cluster.read.primary"),
		readReplica:    reg.Counter("cluster.read.replica"),
		readFallbacks:  reg.Counter("cluster.read.fallbacks"),
		readSuspects:   reg.Counter("cluster.read.suspects"),
	}
	om.workerMatchMS = make([]*obs.Histogram, workers)
	om.workerUpdateMS = make([]*obs.Histogram, workers)
	for i := 0; i < workers; i++ {
		om.workerMatchMS[i] = reg.Histogram(fmt.Sprintf("cluster.worker.%d.match.ms", i), obs.LatencyBucketsMS)
		om.workerUpdateMS[i] = reg.Histogram(fmt.Sprintf("cluster.worker.%d.update.ms", i), obs.LatencyBucketsMS)
	}
	return om
}

// Nil-safe accessors for the per-event instruments used outside the
// request paths (failover can run on a coordinator whose om is nil).
func (om *coordMetrics) promoted() {
	if om != nil {
		om.promotions.Inc()
	}
}

func (om *coordMetrics) reshipped() {
	if om != nil {
		om.reships.Inc()
	}
}

func (om *coordMetrics) mirrorDropped() {
	if om != nil {
		om.mirrorDrops.Inc()
	}
}

func (om *coordMetrics) readRouted(toPrimary bool) {
	if om == nil {
		return
	}
	if toPrimary {
		om.readPrimary.Inc()
	} else {
		om.readReplica.Inc()
	}
}

func (om *coordMetrics) readFellBack() {
	if om != nil {
		om.readFallbacks.Inc()
	}
}

func (om *coordMetrics) readSuspected() {
	if om != nil {
		om.readSuspects.Inc()
	}
}

// endpointOf reports which pool endpoint hosts a transport, -1 when the
// transport does not know (e.g. caller-supplied embedded workers).
func endpointOf(t Transport) int {
	if e, ok := t.(Endpointer); ok {
		return e.Endpoint()
	}
	return -1
}

// Graph returns a snapshot of the coordinator's authoritative global
// graph. The snapshot is a deep copy: the live graph mutates in place
// under Update, and callers (oracles, stats, tests) hold snapshots
// across updates.
func (c *Coordinator) Graph() *graph.Graph {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.g.Clone()
}

// D returns the hop radius the fragmentation preserves.
func (c *Coordinator) D() int { return c.cfg.D }

// Workers returns the number of workers.
func (c *Coordinator) Workers() int { return len(c.workers) }

// Version returns the coordinator's accepted-batch counter: 0 for a
// fresh cluster, incremented by every successful Update. A client that
// fences its reads with MatchOptions.MinVersion = the Version (or
// UpdateResult.Version) observed after its last write can never read a
// fragment copy that has not applied that write.
func (c *Coordinator) Version() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.version
}

// FragmentSizes returns each worker's materialized node count.
func (c *Coordinator) FragmentSizes() []int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	sizes := make([]int, len(c.workers))
	for i, w := range c.workers {
		sizes[i] = len(w.nodes)
	}
	return sizes
}

// refuseLocked reports why the coordinator no longer serves requests, or
// nil. Callers must hold c.mu.
func (c *Coordinator) refuseLocked() error {
	if c.closed {
		return errors.New("cluster: coordinator closed")
	}
	if c.failed != nil {
		return fmt.Errorf("cluster: coordinator failed earlier: %w", c.failed)
	}
	return nil
}

// fanOut runs fn once per worker concurrently and returns the first error
// (by worker id) if any failed.
func (c *Coordinator) fanOut(fn func(w *worker) error) error {
	errs := make([]error, len(c.workers))
	var wg sync.WaitGroup
	for i, w := range c.workers {
		wg.Add(1)
		go func(i int, w *worker) {
			defer wg.Done()
			errs[i] = fn(w)
		}(i, w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// global maps a worker-local node id from a wire response back to the
// global id space.
func (w *worker) global(local int64) (graph.NodeID, error) {
	if local < 0 || int(local) >= len(w.toGlobal) {
		return 0, fmt.Errorf("cluster: worker %d returned local node %d outside [0, %d)", w.id, local, len(w.toGlobal))
	}
	return w.toGlobal[local], nil
}

// mergeGlobal converts a worker's local answer ids and folds them into a
// global set.
func (w *worker) mergeGlobal(locals []int64, into map[graph.NodeID]bool) error {
	for _, v := range locals {
		g, err := w.global(v)
		if err != nil {
			return err
		}
		into[g] = true
	}
	return nil
}

func sortedSet(m map[graph.NodeID]bool) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
