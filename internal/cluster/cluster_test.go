package cluster

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/server"
	"repro/internal/store"
)

// Patterns exercised across the tests: an existential/counting mix, a
// negation, and a ratio — the quantifier classes of the paper.
var testPatterns = []string{
	"qgp\nn xo person *\nn z person\ne xo z follow >=3\n",
	"qgp\nn xo person *\nn z person\nn p product\ne xo z follow >=2\ne z p recom >=1\n",
	"qgp\nn xo person *\nn z person\nn p product\ne xo z follow >=1\ne z p bad_rating =0\n",
	"qgp\nn xo person *\nn z person\ne xo z follow >=60%\n",
}

func mustParse(t testing.TB, dsl string) *core.Pattern {
	t.Helper()
	q, err := core.Parse(dsl)
	if err != nil {
		t.Fatalf("parse %q: %v", dsl, err)
	}
	return q
}

func newEmbedded(t testing.TB, g *graph.Graph, workers int, cfg Config) *Coordinator {
	t.Helper()
	ts := InProcessN(workers, server.Config{})
	t.Cleanup(func() { CloseAll(ts) })
	c, err := New(g, ts, cfg)
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	return c
}

func globalAnswers(t testing.TB, g *graph.Graph, q *core.Pattern) []graph.NodeID {
	t.Helper()
	res, err := match.QMatch(g, q, nil)
	if err != nil {
		t.Fatalf("QMatch: %v", err)
	}
	return res.Matches
}

func nodeIDs(vs []graph.NodeID) []graph.NodeID {
	if vs == nil {
		return []graph.NodeID{}
	}
	return vs
}

// TestMatchEquivalence is the acceptance criterion: an embedded 2-worker
// cluster returns exactly the single-process answer set, for every
// quantifier class.
func TestMatchEquivalence(t *testing.T) {
	g := gen.Social(gen.DefaultSocial(400, 7))
	for _, workers := range []int{1, 2, 4} {
		c := newEmbedded(t, g, workers, Config{D: 2})
		ref := c.Graph() // normalized version both sides evaluate
		for _, dsl := range testPatterns {
			q := mustParse(t, dsl)
			got, err := c.Match(q)
			if err != nil {
				t.Fatalf("workers=%d: Match: %v", workers, err)
			}
			want := globalAnswers(t, ref, q)
			if !reflect.DeepEqual(nodeIDs(got.Matches), nodeIDs(want)) {
				t.Errorf("workers=%d pattern %q: cluster answers %v != single-process %v",
					workers, dsl, got.Matches, want)
			}
		}
	}
}

// TestMatchRejectsUnderRadius: a pattern needing more hops than the
// fragmentation preserves must be rejected, not silently wrong.
func TestMatchRejectsUnderRadius(t *testing.T) {
	g := gen.Social(gen.DefaultSocial(100, 1))
	c := newEmbedded(t, g, 2, Config{D: 1})
	q := mustParse(t, testPatterns[1]) // radius 2
	if _, err := c.Match(q); err == nil {
		t.Fatal("Match accepted a pattern with RequiredHops > d")
	}
	if _, err := c.Watch("w", q); err == nil {
		t.Fatal("Watch accepted a pattern with RequiredHops > d")
	}
}

// twoIslands builds two disconnected communities so the BFS-ordered base
// partition puts one on each of two workers; updates inside one island
// must not contact the other island's worker.
func twoIslands(t *testing.T) *graph.Graph {
	t.Helper()
	const side = 30
	g := graph.New(2 * side)
	for i := 0; i < 2*side; i++ {
		g.AddNode("person")
	}
	for island := 0; island < 2; island++ {
		base := graph.NodeID(island * side)
		for i := 0; i < side; i++ {
			// A ring plus a chord keeps each island connected and gives
			// the follow counts some variety.
			g.AddEdge(base+graph.NodeID(i), base+graph.NodeID((i+1)%side), "follow")
			if i%3 == 0 {
				g.AddEdge(base+graph.NodeID(i), base+graph.NodeID((i+7)%side), "follow")
			}
		}
	}
	g.Finalize()
	return g
}

// TestUpdateRouting is the second acceptance criterion: an update batch is
// routed to only the workers whose fragments contain affected nodes.
func TestUpdateRouting(t *testing.T) {
	g := twoIslands(t)
	c := newEmbedded(t, g, 2, Config{D: 2})

	// Every island-0 node must be owned by one worker and every island-1
	// node by the other for the routing assertion to be meaningful.
	if _, err := c.Watch("w", mustParse(t, "qgp\nn xo person *\nn z person\ne xo z follow >=2\n")); err != nil {
		t.Fatalf("Watch: %v", err)
	}

	res, err := c.Update([]server.UpdateSpec{
		{Op: "addEdge", From: 2, To: 11, Label: "follow"},
	})
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	if len(res.Contacted) != 1 {
		t.Fatalf("update inside one island contacted workers %v, want exactly one", res.Contacted)
	}

	// An update touching both islands must contact both workers.
	res, err = c.Update([]server.UpdateSpec{
		{Op: "addEdge", From: 3, To: 5, Label: "follow"},
		{Op: "addEdge", From: 40, To: 42, Label: "follow"},
	})
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	if len(res.Contacted) != 2 {
		t.Fatalf("update in both islands contacted workers %v, want both", res.Contacted)
	}

	// A no-op batch (re-adding existing edges) changes no fragment mirror
	// and no answer, so nobody is spoken to at all.
	res, err = c.Update([]server.UpdateSpec{
		{Op: "addEdge", From: 3, To: 5, Label: "follow"},
		{Op: "addEdge", From: 40, To: 42, Label: "follow"},
	})
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	if len(res.Contacted) != 0 {
		t.Fatalf("no-op update contacted workers %v, want none", res.Contacted)
	}
}

// applySpecs mirrors the cluster update on a single-process graph.
func applySpecs(t *testing.T, g *graph.Graph, specs []server.UpdateSpec) *graph.Graph {
	t.Helper()
	ups, err := server.ToUpdates(specs)
	if err != nil {
		t.Fatal(err)
	}
	ng, _, err := dynamic.Apply(g, ups)
	if err != nil {
		t.Fatal(err)
	}
	return ng
}

// TestIncrementalEquivalence is the e2e satellite: an embedded coordinator
// plus ≥2 workers driven through gen → watch → update, asserting after
// every batch that the merged cluster delta equals the single-process
// dynamic.Matcher delta, and that the merged standing answers track the
// single-process answers.
func TestIncrementalEquivalence(t *testing.T) {
	for _, workers := range []int{2, 3} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			g := gen.Social(gen.DefaultSocial(250, 11))
			c := newEmbedded(t, g, workers, Config{D: 2})
			ref := c.Graph()

			watched := []string{testPatterns[0], testPatterns[2]}
			matchers := make(map[string]*dynamic.Matcher, len(watched))
			for i, dsl := range watched {
				name := fmt.Sprintf("w%d", i)
				q := mustParse(t, dsl)
				got, err := c.Watch(name, q)
				if err != nil {
					t.Fatalf("Watch %s: %v", name, err)
				}
				m, err := dynamic.NewMatcher(ref, q)
				if err != nil {
					t.Fatal(err)
				}
				matchers[name] = m
				if !reflect.DeepEqual(nodeIDs(got), nodeIDs(m.Answers())) {
					t.Fatalf("watch %s initial answers %v != single-process %v", name, got, m.Answers())
				}
			}

			r := rand.New(rand.NewSource(int64(workers)))
			persons := int64(250)
			for round := 0; round < 8; round++ {
				var specs []server.UpdateSpec
				for i := 0; i < 5; i++ {
					from, to := r.Int63n(persons), r.Int63n(persons)
					if from == to {
						to = (to + 1) % persons
					}
					switch r.Intn(4) {
					case 0, 1:
						specs = append(specs, server.UpdateSpec{Op: "addEdge", From: from, To: to, Label: "follow"})
					case 2:
						specs = append(specs, server.UpdateSpec{Op: "removeEdge", From: from, To: to, Label: "follow"})
					case 3:
						specs = append(specs, server.UpdateSpec{Op: "removeNode", From: from})
					}
				}
				if round == 3 {
					// Grow the graph: a new person following into the
					// existing community, exercising node assignment.
					specs = append(specs,
						server.UpdateSpec{Op: "addNode", Label: "person"},
						server.UpdateSpec{Op: "addEdge", From: int64(ref.NumNodes()), To: 4, Label: "follow"},
						server.UpdateSpec{Op: "addEdge", From: 5, To: int64(ref.NumNodes()), Label: "follow"},
					)
				}

				res, err := c.Update(specs)
				if err != nil {
					t.Fatalf("round %d: Update: %v", round, err)
				}
				ref = applySpecs(t, ref, specs)
				if res.Nodes != ref.NumNodes() || res.Edges != ref.NumEdges() {
					t.Fatalf("round %d: cluster graph %d/%d != single-process %d/%d",
						round, res.Nodes, res.Edges, ref.NumNodes(), ref.NumEdges())
				}

				deltaByWatch := make(map[string]server.WatchDelta, len(res.Deltas))
				for _, d := range res.Deltas {
					deltaByWatch[d.Watch] = d
				}
				ups, _ := server.ToUpdates(specs)
				for name, m := range matchers {
					want, err := m.Apply(ups)
					if err != nil {
						t.Fatal(err)
					}
					got := deltaByWatch[name]
					if !reflect.DeepEqual(toInt64(want.Added), nodeIDs64(got.Added)) ||
						!reflect.DeepEqual(toInt64(want.Removed), nodeIDs64(got.Removed)) {
						t.Fatalf("round %d watch %s: cluster delta +%v -%v != single-process +%v -%v",
							round, name, got.Added, got.Removed, want.Added, want.Removed)
					}
				}
			}

			// After all rounds the cluster must still answer fresh queries
			// exactly like a single process over the final graph.
			for _, dsl := range testPatterns {
				q := mustParse(t, dsl)
				got, err := c.Match(q)
				if err != nil {
					t.Fatalf("final Match: %v", err)
				}
				want := globalAnswers(t, ref, q)
				if !reflect.DeepEqual(nodeIDs(got.Matches), nodeIDs(want)) {
					t.Errorf("final pattern %q: cluster %v != single-process %v", dsl, got.Matches, want)
				}
			}
		})
	}
}

func toInt64(vs []graph.NodeID) []int64 {
	out := make([]int64, len(vs))
	for i, v := range vs {
		out[i] = int64(v)
	}
	return out
}

func nodeIDs64(vs []int64) []int64 {
	if vs == nil {
		return []int64{}
	}
	return vs
}

// TestUnwatch: removed watches stop producing deltas cluster-wide.
func TestUnwatch(t *testing.T) {
	g := gen.Social(gen.DefaultSocial(120, 3))
	c := newEmbedded(t, g, 2, Config{D: 2})
	q := mustParse(t, testPatterns[0])
	if _, err := c.Watch("w", q); err != nil {
		t.Fatal(err)
	}
	if got := c.Watches(); !reflect.DeepEqual(got, []string{"w"}) {
		t.Fatalf("Watches() = %v", got)
	}
	if err := c.Unwatch("w"); err != nil {
		t.Fatal(err)
	}
	res, err := c.Update([]server.UpdateSpec{{Op: "addEdge", From: 0, To: 1, Label: "follow"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Deltas) != 0 {
		t.Fatalf("deltas after unwatch: %v", res.Deltas)
	}
	if err := c.Unwatch("w"); err == nil {
		t.Fatal("double Unwatch succeeded")
	}
}

// TestRestrictedMatcherDirect covers the dynamic-package API the workers
// rely on: a restricted matcher maintains exactly the restricted subset
// and AddFocus extends it.
func TestRestrictedMatcherDirect(t *testing.T) {
	g := gen.Social(gen.DefaultSocial(150, 5))
	q := mustParse(t, testPatterns[0])
	full, err := dynamic.NewMatcher(g, q)
	if err != nil {
		t.Fatal(err)
	}
	all := full.Answers()
	if len(all) < 2 {
		t.Fatalf("test graph too sparse: %d answers", len(all))
	}
	half := all[:len(all)/2]
	m, err := dynamic.NewMatcherRestricted(g, q, half)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Answers(), half) {
		t.Fatalf("restricted answers %v != %v", m.Answers(), half)
	}
	d, err := m.AddFocus(all[len(all)/2:])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(nodeIDs(d.Added), nodeIDs(all[len(all)/2:])) {
		t.Fatalf("AddFocus delta %v != %v", d.Added, all[len(all)/2:])
	}
	if !reflect.DeepEqual(m.Answers(), all) {
		t.Fatalf("answers after AddFocus %v != %v", m.Answers(), all)
	}
	// Updates on a restricted matcher only report restricted members.
	ups := []dynamic.Update{store.RemoveNode(int32(all[0]))}
	delta, err := m.Apply(ups)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range delta.Removed {
		found := false
		for _, w := range all {
			if v == w {
				found = true
			}
		}
		if !found {
			t.Fatalf("restricted matcher reported non-restricted node %d", v)
		}
	}
}
