package cluster

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/server"
)

// TestTransportErrorPaths distinguishes the two failure classes a
// transport surfaces, for both the TCP (Dial) and embedded (InProcess)
// transports:
//
//   - protocol-level: the worker is alive and replies with an error
//     response — a *client.ServerError, the connection stays usable,
//     and the cluster layer must NOT fail the worker over;
//   - connection-level: the worker dies mid-request — any other error,
//     which is exactly what triggers failover.
func TestTransportErrorPaths(t *testing.T) {
	silent := func(string, ...interface{}) {}
	transports := []struct {
		name string
		// make returns a connected transport and a function that kills
		// the server side abruptly.
		make func(t *testing.T) (Transport, func())
	}{
		{
			name: "dial",
			make: func(t *testing.T) (Transport, func()) {
				t.Helper()
				srv := server.New(server.Config{Logf: silent})
				ln, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					t.Fatal(err)
				}
				go srv.Serve(ln)
				tr, err := Dial(ln.Addr().String())
				if err != nil {
					t.Fatal(err)
				}
				drop := func() {
					ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
					defer cancel()
					srv.Shutdown(ctx)
				}
				return tr, drop
			},
		},
		{
			name: "inprocess",
			make: func(t *testing.T) (Transport, func()) {
				t.Helper()
				srv := server.New(server.Config{Logf: silent})
				clientEnd, serverEnd := net.Pipe()
				go srv.ServeConn(serverEnd)
				return client.NewClient(clientEnd), func() { serverEnd.Close() }
			},
		},
	}
	modes := []struct {
		name string
		run  func(t *testing.T, tr Transport, drop func())
	}{
		{
			name: "protocol-error",
			run: func(t *testing.T, tr Transport, drop func()) {
				_, err := tr.Do(&server.Request{Cmd: "bogus"})
				if err == nil {
					t.Fatal("unknown command succeeded")
				}
				var se *client.ServerError
				if !errors.As(err, &se) {
					t.Fatalf("worker error response surfaced as %T (%v), want *client.ServerError", err, err)
				}
				// The session survives a command error: the very same
				// connection must keep answering.
				resp, err := tr.Do(&server.Request{Cmd: "ping"})
				if err != nil || !resp.Pong {
					t.Fatalf("ping after protocol error: resp=%+v err=%v", resp, err)
				}
			},
		},
		{
			name: "connection-drop",
			run: func(t *testing.T, tr Transport, drop func()) {
				if _, err := tr.Do(&server.Request{Cmd: "ping"}); err != nil {
					t.Fatalf("ping before drop: %v", err)
				}
				drop()
				_, err := tr.Do(&server.Request{Cmd: "ping"})
				if err == nil {
					t.Fatal("request against a dead worker succeeded")
				}
				var se *client.ServerError
				if errors.As(err, &se) {
					t.Fatalf("connection drop surfaced as a protocol error: %v", err)
				}
			},
		},
	}
	for _, tc := range transports {
		for _, mode := range modes {
			tc, mode := tc, mode
			t.Run(tc.name+"/"+mode.name, func(t *testing.T) {
				tr, drop := tc.make(t)
				t.Cleanup(func() { tr.Close() })
				mode.run(t, tr, drop)
			})
		}
	}
}
