package cluster

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/dynamic"
	"repro/internal/graph"
	"repro/internal/server"
	"repro/internal/store"
)

// UpdateResult reports one cluster-wide update batch.
type UpdateResult struct {
	// Nodes and Edges are the global graph's counts after the batch.
	Nodes, Edges int
	// Deltas are the merged per-watch answer changes, in global node ids,
	// one entry per standing watch that changed or was re-verified
	// anywhere. Affected sums the workers' re-verified candidate counts;
	// workers re-verify exactly the coordinator-computed affected set
	// restricted to their owned candidates, so the sum tracks the
	// single-process count at the largest standing-watch radius.
	Deltas []server.WatchDelta
	// Contacted lists the workers (ascending id) that received traffic:
	// exactly those whose fragment mirrors changed, whose owned candidates
	// need re-verification, or that were assigned a node the batch
	// created. The others were not spoken to — the paper's "coordinator Sc
	// assigns the changes to each fragment" routing (§5.2).
	Contacted []int
	// AffectedSize is the size of the coordinator-computed re-verification
	// region (nodes within the largest standing-watch radius of a touched
	// node, old or new graph) — the "work proportional to the change"
	// observable: for a small batch on a large graph it should be far
	// below |V|.
	AffectedSize int
	// Version is the coordinator batch counter after this batch. A
	// caller that fences its later reads with MatchOptions.MinVersion =
	// Version can never read a fragment copy that missed this batch —
	// the read-your-writes token of the replica-read router.
	Version uint64
}

// workerPlan is the update traffic computed for one worker, coalesced
// into what becomes a single wire request: the local mutation batch
// keeping its fragment mirror equal to the induced subgraph of the new
// global graph, the globals it newly materializes (local ids follow its
// current id space, in order), the new nodes it will own (as post-batch
// local ids), and the owned candidates the coordinator determined need
// re-verification (pre-batch local ids).
type workerPlan struct {
	batch    []server.UpdateSpec
	newMat   []graph.NodeID
	assign   []graph.NodeID // global ids, for owned-set bookkeeping
	assignL  []int64        // the same nodes as post-batch local ids
	affected []int64        // owned ∩ global affected set, local ids
}

// empty reports whether the plan carries no traffic at all.
func (p *workerPlan) empty() bool {
	return len(p.batch) == 0 && len(p.assignL) == 0
}

// Update applies a global mutation batch: the coordinator applies it to
// its authoritative graph, journals it (when configured) before any
// fan-out, computes the affected regions (every node within the
// fragmentation radius of a touched node for materialization upkeep,
// and within the largest standing-watch radius for re-verification, in
// the old or new graph), and
// routes one combined wire batch to only the workers whose fragments
// intersect that region — local mutations, newly assigned owned nodes,
// and the affected set restricted to the worker's owned candidates all
// travel in a single request, so routing a batch costs one round trip
// per contacted worker. Workers re-verify exactly the carried affected
// set instead of re-expanding the local batch (which materialization
// traffic would inflate far beyond the globally affected region).
// ClusterUpdate of the ISSUE's API naming.
func (c *Coordinator) Update(specs []server.UpdateSpec) (*UpdateResult, error) {
	return c.update(specs, nil)
}

// UpdateProfiled is Update plus a merged cluster-level profile: contacted
// workers receive the profile command (so their responses carry per-stage
// update documents for their fragments), and the coordinator records its
// own pipeline stage timings — apply, journal, affected-region, fan-out,
// merge — around them.
func (c *Coordinator) UpdateProfiled(specs []server.UpdateSpec) (*UpdateResult, *UpdateProfile, error) {
	prof := &UpdateProfile{Op: "update"}
	res, err := c.update(specs, prof)
	if err != nil {
		return nil, nil, err
	}
	return res, prof, nil
}

// update runs one global batch; prof non-nil switches the contacted
// workers to the profile command and fills the merged profile.
//
// The fan-out is pipelined: per-worker planning, serialization and I/O
// run concurrently across workers (each plan touches only its own
// worker's state), and replica mirroring fans out concurrently once the
// primary acks. Per fragment the batch still reaches the primary first
// and the warm replicas only after the primary applied it, so a primary
// that dies mid-batch leaves every replica at the pre-batch sync point:
// failover promotes one (or re-ships from the authoritative graph) and
// replays the batch exactly once. Only when no session survives
// failover does the coordinator mark itself failed and refuse further
// requests rather than serve possibly inconsistent answers.
func (c *Coordinator) update(specs []server.UpdateSpec, prof *UpdateProfile) (res *UpdateResult, err error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("cluster: update: empty batch")
	}
	start := time.Now()
	tr := c.cfg.Tracer.Start("update")
	defer func() { tr.Finish(err) }()
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.refuseLocked(); err != nil {
		return nil, err
	}
	// Replicas a routed read found dead are dropped now, before the
	// mirror fan-out pays round trips to them.
	c.pruneSuspectsLocked()
	tapply := time.Now()
	ups, err := server.ToUpdates(specs)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	// The batch applies to the authoritative graph in place; oldG is the
	// pre-batch view the versioned core hands back — the "deletions are
	// measured in the old graph" side of the affected-set computation and
	// the sync-point state a mid-batch failover re-ships from.
	oldG, touched, err := dynamic.ApplyVersioned(c.vg, ups)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	newG := c.vg.Graph()
	tr.Span(-1, "apply", tapply)
	if prof != nil {
		prof.ApplyMS = msSince(tapply)
	}
	// The batch is accepted: journal it before any worker sees it, so a
	// coordinator crash during fan-out cannot lose an applied batch.
	// A journal append failure rejects the batch with the cluster still
	// consistent (no fragment has been touched yet — the in-place apply
	// is rolled back).
	if c.cfg.Journal != nil {
		tj := time.Now()
		if err := c.cfg.Journal.AppendBatch(specs); err != nil {
			if rerr := c.vg.Rollback(oldG); rerr != nil {
				// The authoritative graph is ahead of both journal and
				// fragments and cannot be walked back: fail-stop.
				c.failed = fmt.Errorf("cluster: journal: %v (rollback failed: %v)", err, rerr)
				return nil, c.failed
			}
			return nil, fmt.Errorf("cluster: journal: %w", err)
		}
		if prof != nil {
			prof.JournalMS = msSince(tj)
		}
	}
	taff := time.Now()
	// Two affected regions: answer re-verification needs every node
	// within the largest standing-watch radius of a touched node (old or
	// new graph), while fragment materialization upkeep is bounded by the
	// (D-1)-ball around inserted-edge endpoints and batch-created nodes —
	// a node can only move into an owned node's D-hop ball along a path
	// through an inserted edge, and deletions never extend a fragment.
	// Neither region needs the full D-hop ball of the whole touched set,
	// which for a 1-edge batch can cover most of a dense graph.
	reverifyHops := 0
	for _, h := range c.watchHops {
		if h > reverifyHops {
			reverifyHops = h
		}
	}
	reverify := dynamic.AffectedWithin(oldG, newG, touched, reverifyHops)
	var insEnds []graph.NodeID
	for _, u := range ups {
		if u.Op == store.OpAddEdge {
			insEnds = append(insEnds, graph.NodeID(u.From), graph.NodeID(u.To))
		}
	}
	for v := oldG.NumNodes(); v < newG.NumNodes(); v++ {
		insEnds = append(insEnds, graph.NodeID(v))
	}
	var matCand []graph.NodeID
	if len(insEnds) > 0 {
		matCand = dynamic.Ball(newG, insEnds, c.cfg.D-1)
	}
	tr.Annotatef("batch=%d touched=%d affected=%d matcand=%d", len(specs), len(touched), len(reverify), len(matCand))
	if prof != nil {
		prof.AffectedMS = msSince(taff)
		prof.BatchSize = len(specs)
		prof.Touched = len(touched)
		prof.Nodes = newG.NumNodes()
		prof.AffectedSize = len(reverify)
		if prof.Nodes > 0 {
			prof.WorkRatio = float64(prof.AffectedSize) / float64(prof.Nodes)
		}
	}
	if c.om != nil {
		c.om.updateBatch.Observe(float64(len(specs)))
		c.om.updateAffected.Observe(float64(len(reverify)))
	}

	// Assign each node the batch created to the worker owning the fewest.
	assignTo := make(map[graph.NodeID]int)
	ownedCount := make([]int, len(c.workers))
	for i, w := range c.workers {
		ownedCount[i] = len(w.owned)
	}
	for v := oldG.NumNodes(); v < newG.NumNodes(); v++ {
		best := 0
		for i := 1; i < len(ownedCount); i++ {
			if ownedCount[i] < ownedCount[best] {
				best = i
			}
		}
		assignTo[graph.NodeID(v)] = best
		ownedCount[best]++
	}

	// Plan and execute concurrently, one goroutine per worker: planning
	// reads only shared immutable inputs plus the worker's own state, so
	// computing it inside the fan-out overlaps the planning of one worker
	// with the serialization and I/O of another.
	contacted := make([]bool, len(c.workers))
	updDeltas := make([][]server.WatchDelta, len(c.workers))
	cmd := "update"
	var workerProfs []*WorkerUpdateProfile
	if prof != nil {
		cmd = "profile"
		workerProfs = make([]*WorkerUpdateProfile, len(c.workers))
	}
	tfan := time.Now()
	err = c.fanOut(func(w *worker) error {
		tplan := time.Now()
		p := c.planFor(w, oldG, newG, ups, touched, matCand, reverify, assignTo)
		if p == nil || p.empty() {
			if c.om != nil {
				c.om.workersSkipped.Inc()
			}
			return nil
		}
		tr.Span(w.id, "plan", tplan)
		contacted[w.id] = true
		if c.om != nil {
			c.om.workersRouted.Inc()
		}
		var wp *WorkerUpdateProfile
		if prof != nil {
			// Each goroutine writes only its own slot; no lock needed.
			wp = &WorkerUpdateProfile{
				Worker:    w.id,
				PlanMS:    msSince(tplan),
				Mutations: len(p.batch),
				Affected:  len(p.affected),
				Assigned:  len(p.assignL),
			}
			workerProfs[w.id] = wp
		}
		req := &server.Request{
			Cmd:      cmd,
			Updates:  p.batch,
			Owned:    p.assignL,
			Scoped:   true,
			Affected: p.affected,
		}
		// The id mapping is extended only after the primary holds the
		// batch: failover before that point re-ships the pre-batch
		// fragment (from the oldG view over the unextended id space) and
		// replays the whole combined request — updates and assignment
		// apply exactly once. Response deltas use post-batch local ids;
		// they are translated after the fan-out, when the extension below
		// is committed.
		trtt := time.Now()
		resp, err := c.sendPrimary(w, "update", req, oldG)
		if err != nil {
			return err
		}
		tr.Span(w.id, "rtt", trtt)
		tr.Annotatef("w%d:muts=%d affected=%d", w.id, len(p.batch), len(p.affected))
		if c.om != nil {
			c.om.workerUpdateMS[w.id].ObserveSince(trtt)
		}
		if wp != nil {
			wp.RTTMS = msSince(trtt)
			wp.Profile = resp.Profile
		}
		updDeltas[w.id] = resp.Deltas
		for _, gv := range p.newMat {
			w.toLocal[gv] = graph.NodeID(len(w.toGlobal))
			w.toGlobal = append(w.toGlobal, gv)
			w.nodes[gv] = true
		}
		for _, gv := range p.assign {
			w.owned[gv] = true
		}
		if len(w.replicas) > 0 {
			tmir := time.Now()
			c.mirror(w, req)
			tr.Span(w.id, "mirror", tmir)
			if wp != nil {
				wp.MirrorMS = msSince(tmir)
			}
		}
		return nil
	})
	if err != nil {
		c.failed = err
		return nil, err
	}
	if prof != nil {
		prof.FanoutMS = msSince(tfan)
		for _, wp := range workerProfs {
			if wp != nil {
				prof.Workers = append(prof.Workers, *wp)
			}
		}
	}
	// c.g already is newG — the batch applied in place; the assignment
	// keeps the field meaningful if the pointer ever diverges.
	c.g = newG

	out := &UpdateResult{Nodes: newG.NumNodes(), Edges: newG.NumEdges(), AffectedSize: len(reverify)}
	// The batch is applied everywhere it needed to go: primaries saw it
	// first, mirror() dropped every replica that failed it, and
	// uncontacted fragments were untouched — so stamping every surviving
	// copy with the new version is exact.
	out.Version = c.bumpVersionLocked()
	for i, hit := range contacted {
		if hit {
			out.Contacted = append(out.Contacted, i)
		}
	}
	tm := time.Now()
	merged, err := c.mergeDeltas(updDeltas)
	if err != nil {
		c.failed = err
		return nil, err
	}
	out.Deltas = merged
	tr.Span(-1, "merge", tm)
	if prof != nil {
		prof.MergeMS = msSince(tm)
		prof.TotalMS = msSince(start)
	}
	if c.om != nil {
		c.om.updateCount.Inc()
		c.om.updateFanout.Observe(float64(len(out.Contacted)))
		c.om.updateMS.ObserveSince(start)
	}
	return out, nil
}

// planFor computes one worker's share of a global batch, or nil when the
// batch cannot affect the worker: no touched node is materialized there,
// no owned candidate needs re-verification or materialization upkeep,
// and no new node is being assigned to it. matCand is the (D-1)-ball
// around inserted-edge endpoints and batch-created nodes (it bounds
// materialization maintenance); reverify is the affected region at the
// largest standing-watch radius (it scopes answer re-verification).
func (c *Coordinator) planFor(w *worker, oldG graph.View, newG *graph.Graph, ups []dynamic.Update, touched, matCand, reverify []graph.NodeID, assignTo map[graph.NodeID]int) *workerPlan {
	oldN := oldG.NumNodes()
	var roots []graph.NodeID // owned candidates whose d-hop neighborhood must stay materialized
	for _, v := range matCand {
		if w.owned[v] {
			roots = append(roots, v)
		}
	}
	// The re-verification scope: the worker's owned share of the
	// watch-radius affected set, in its (pre-batch, since owned nodes are
	// always already materialized) local ids. Newly assigned nodes are
	// excluded — the assignment itself evaluates them.
	var affectedL []int64
	for _, gv := range reverify {
		if w.owned[gv] {
			affectedL = append(affectedL, int64(w.toLocal[gv]))
		}
	}
	touchedMat := false
	for _, v := range touched {
		if w.nodes[v] {
			touchedMat = true
			break
		}
	}
	var assign []graph.NodeID
	for v := oldN; v < newG.NumNodes(); v++ {
		if assignTo[graph.NodeID(v)] == w.id {
			assign = append(assign, graph.NodeID(v))
		}
	}
	if !touchedMat && len(roots) == 0 && len(assign) == 0 && len(affectedL) == 0 {
		return nil
	}

	// Expansion: every affected owned candidate and every newly assigned
	// node must keep its full new-graph d-hop neighborhood materialized
	// (Lemma 9(1) needs the full neighborhood for fragment-local
	// exactness). The fragment invariant — a root's old-graph
	// neighborhood is already materialized — bounds what can be missing:
	// a node newly within d hops of a root reached it along a path
	// through an inserted edge or a batch-created node, so both it and
	// the root lie within d-1 hops of an insertion endpoint (matCand).
	// The candidate pool is therefore the non-materialized slice of
	// matCand, and since undirected d-hop membership is symmetric, the
	// work is one neighborhood expansion per element of the *smaller*
	// side: from each pool node asking "is a root within d hops?" when
	// the pool is small (the steady state, where it is empty — the old
	// always-expand-every-root code was the planner's measured hot
	// spot), or from each root asking "which pool nodes are within d
	// hops?" when a multi-region batch makes the pool large while this
	// worker has few roots.
	needed := make(map[graph.NodeID]bool)
	if len(roots)+len(assign) > 0 {
		var pool []graph.NodeID
		for _, u := range matCand {
			if !w.nodes[u] {
				pool = append(pool, u)
			}
		}
		if len(pool) <= len(roots)+len(assign) {
			rootSet := make(map[graph.NodeID]bool, len(roots)+len(assign))
			for _, v := range roots {
				rootSet[v] = true
			}
			for _, v := range assign {
				rootSet[v] = true
			}
			for _, u := range pool {
				for _, r := range newG.Neighborhood(u, c.cfg.D) {
					if rootSet[r] {
						needed[u] = true
						break
					}
				}
			}
		} else if len(pool) > 0 {
			inPool := make(map[graph.NodeID]bool, len(pool))
			for _, u := range pool {
				inPool[u] = true
			}
			for _, root := range append(append([]graph.NodeID(nil), roots...), assign...) {
				for _, u := range newG.Neighborhood(root, c.cfg.D) {
					if inPool[u] {
						needed[u] = true
					}
				}
			}
		}
	}
	newMat := sortedSet(needed)

	localOf := func(gv graph.NodeID) graph.NodeID {
		if lv, ok := w.toLocal[gv]; ok {
			return lv
		}
		// Newly materialized: its local id follows the current space in
		// newMat order; binary search for its index.
		i := sort.Search(len(newMat), func(i int) bool { return newMat[i] >= gv })
		return graph.NodeID(len(w.toGlobal) + i)
	}

	batch := make([]server.UpdateSpec, 0, len(newMat))
	for _, gv := range newMat {
		batch = append(batch, server.UpdateSpec{Op: "addNode", Label: newG.NodeLabelName(gv)})
	}

	// Edge diff between the old and new induced subgraphs. The global
	// edge delta is exactly the batch's net edge mutations plus the edges
	// a removed node lost, and the mirror additionally gains every edge
	// incident to a newly materialized node — so the candidate set comes
	// straight from the batch and newMat adjacency instead of rescanning
	// every touched node's (possibly hub-sized) neighborhood.
	type ekey struct {
		from, to graph.NodeID
		label    string
	}
	matOld := func(v graph.NodeID) bool { return w.nodes[v] }
	matNew := func(v graph.NodeID) bool { return w.nodes[v] || needed[v] }
	candidates := make(map[ekey]bool)
	for _, u := range ups {
		switch u.Op {
		case store.OpAddEdge, store.OpRemoveEdge:
			candidates[ekey{graph.NodeID(u.From), graph.NodeID(u.To), u.Label}] = true
		case store.OpRemoveNode:
			v := graph.NodeID(u.From)
			if int(v) >= oldN {
				continue
			}
			for _, e := range oldG.Out(v) {
				candidates[ekey{v, e.To, oldG.LabelName(e.Label)}] = true
			}
			for _, e := range oldG.In(v) {
				candidates[ekey{e.To, v, oldG.LabelName(e.Label)}] = true
			}
		}
	}
	collectNew := func(v graph.NodeID) {
		if !matNew(v) {
			return
		}
		for _, e := range newG.Out(v) {
			if matNew(e.To) {
				candidates[ekey{v, e.To, newG.LabelName(e.Label)}] = true
			}
		}
		for _, e := range newG.In(v) {
			if matNew(e.To) {
				candidates[ekey{e.To, v, newG.LabelName(e.Label)}] = true
			}
		}
	}
	for _, v := range newMat {
		collectNew(v)
	}

	keys := make([]ekey, 0, len(candidates))
	for k := range candidates {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.from != b.from {
			return a.from < b.from
		}
		if a.to != b.to {
			return a.to < b.to
		}
		return a.label < b.label
	})
	for _, k := range keys {
		oldHas := matOld(k.from) && matOld(k.to) && hasEdge(oldG, k.from, k.to, k.label)
		newHas := matNew(k.from) && matNew(k.to) && hasEdge(newG, k.from, k.to, k.label)
		if oldHas == newHas {
			continue
		}
		op := "addEdge"
		if oldHas {
			op = "removeEdge"
		}
		batch = append(batch, server.UpdateSpec{
			Op:    op,
			From:  int64(localOf(k.from)),
			To:    int64(localOf(k.to)),
			Label: k.label,
		})
	}

	assignL := make([]int64, len(assign))
	for i, gv := range assign {
		assignL[i] = int64(localOf(gv))
	}
	return &workerPlan{batch: batch, newMat: newMat, assign: assign, assignL: assignL, affected: affectedL}
}

func hasEdge(g graph.View, from, to graph.NodeID, label string) bool {
	l := g.LookupLabel(label)
	if l == graph.NoLabel {
		return false
	}
	return g.HasEdge(from, to, l)
}

// mergeDeltas folds the workers' local watch deltas (indexed by worker
// id; a worker's response may carry several entries per watch, e.g. a
// re-verification delta and an assignment delta) into global per-watch
// deltas: added/removed sets are disjoint unions (ownership partitions
// the nodes), affected counts sum.
func (c *Coordinator) mergeDeltas(byWorker [][]server.WatchDelta) ([]server.WatchDelta, error) {
	type acc struct {
		added, removed map[graph.NodeID]bool
		affected       int
	}
	byWatch := make(map[string]*acc)
	for wid, deltas := range byWorker {
		w := c.workers[wid]
		for _, d := range deltas {
			a := byWatch[d.Watch]
			if a == nil {
				a = &acc{added: make(map[graph.NodeID]bool), removed: make(map[graph.NodeID]bool)}
				byWatch[d.Watch] = a
			}
			a.affected += d.Affected
			if err := w.mergeGlobal(d.Added, a.added); err != nil {
				return nil, err
			}
			if err := w.mergeGlobal(d.Removed, a.removed); err != nil {
				return nil, err
			}
		}
	}
	names := make([]string, 0, len(byWatch))
	for name := range byWatch {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]server.WatchDelta, 0, len(names))
	for _, name := range names {
		a := byWatch[name]
		wd := server.WatchDelta{Watch: name, Affected: a.affected}
		for _, v := range sortedSet(a.added) {
			wd.Added = append(wd.Added, int64(v))
		}
		for _, v := range sortedSet(a.removed) {
			wd.Removed = append(wd.Removed, int64(v))
		}
		out = append(out, wd)
	}
	return out, nil
}
