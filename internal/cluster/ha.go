package cluster

// High-availability mechanics for the coordinator: warm fragment
// replicas, primary failover (promotion or re-ship from the
// authoritative graph), state-verifying probes and replica repair. The
// policy side — when to probe, how many consecutive failures declare a
// worker dead, journal-backed restart recovery — lives in internal/ha;
// this file is the mechanism it drives.
//
// The invariants that make failover exact:
//
//   - A fragment's local id space is its toGlobal order, and
//     graph.Induced preserves the order of its input node list, so
//     re-shipping Induced(state, w.toGlobal) reproduces the exact local
//     id space of the lost session — answer merging and standing-watch
//     deltas keep working unchanged.
//   - A combined update batch (mutations + assigned nodes + affected
//     set, one request per contacted worker) reaches replicas only
//     after the primary applied it, so when a primary dies mid-batch
//     every warm replica is still at the pre-batch sync point:
//     promoting one and replaying the batch neither loses nor
//     double-applies mutations (addNode is not idempotent, so this
//     ordering is load-bearing). Mirroring fans out to the replicas
//     concurrently — they are ordered after the primary, not after each
//     other.
//   - Warm replicas carry no standing watches; promotion registers them
//     (at the promoted session's current sync point) before the failed
//     operation is retried, so the retried batch reports exactly the
//     delta the lost primary would have.

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/client"
	"repro/internal/graph"
	"repro/internal/server"
)

// WorkerError identifies which worker failed and during which operation,
// so a fail-stopped coordinator's refusals name the culprit instead of a
// bare wrapped error.
type WorkerError struct {
	// Worker is the fragment id (coordinator worker index).
	Worker int
	// Endpoint is the pool endpoint hosting the failed session, -1 when
	// unknown.
	Endpoint int
	// Op is the wire operation in flight: "fragment", "replicate",
	// "update", "assign", "watch", "unwatch", "match", "probe".
	Op  string
	Err error
}

func (e *WorkerError) Error() string {
	where := ""
	if e.Endpoint >= 0 {
		where = fmt.Sprintf(" (endpoint %d)", e.Endpoint)
	}
	return fmt.Sprintf("cluster: worker %d%s failed during %s: %v", e.Worker, where, e.Op, e.Err)
}

func (e *WorkerError) Unwrap() error { return e.Err }

// sendPrimary sends req to w's current primary. A transport-level
// failure (the worker is unreachable or died mid-request) triggers
// failover — promote a warm replica or re-ship the fragment from state,
// the authoritative graph at the fragment's current sync point — and a
// retry on the new primary. A protocol-level failure (the worker
// answered with an error response, client.ServerError) is returned as
// is: the worker is alive, so killing it would not help.
func (c *Coordinator) sendPrimary(w *worker, op string, req *server.Request, state graph.View) (*server.Response, error) {
	// Each failover consumes a warm replica or a pool session, so the
	// retry loop is bounded; +2 covers the initial attempt and one
	// final re-ship after the replica list is exhausted. The bound is
	// captured up front: failover shrinks w.replicas, and the last
	// promotion still deserves its retry.
	attempts := len(w.replicas) + 2
	for attempt := 0; attempt < attempts; attempt++ {
		resp, err := w.primary.t.Do(req)
		if err == nil {
			return resp, nil
		}
		var se *client.ServerError
		if errors.As(err, &se) {
			return nil, &WorkerError{Worker: w.id, Endpoint: w.primary.endpoint, Op: op, Err: err}
		}
		if ferr := c.failover(w, state); ferr != nil {
			return nil, &WorkerError{Worker: w.id, Endpoint: w.primary.endpoint, Op: op,
				Err: fmt.Errorf("%v; failover: %w", err, ferr)}
		}
	}
	return nil, &WorkerError{Worker: w.id, Endpoint: w.primary.endpoint, Op: op,
		Err: errors.New("no worker session survived failover")}
}

// failover replaces w's dead primary: the first warm replica that
// accepts the standing watches is promoted; with none left, the
// fragment is re-shipped from state to a fresh pool session. Callers
// must hold c.mu (directly or via the fan-out running under it) and
// pass the authoritative graph matching the fragment's current sync
// point. On error the fragment has no serving primary, but the
// coordinator is not failed: a later call may succeed once the pool
// recovers.
func (c *Coordinator) failover(w *worker, state graph.View) error {
	w.primary.t.Close()
	for len(w.replicas) > 0 {
		r := w.replicas[0]
		w.replicas = w.replicas[1:]
		if err := c.enlistWatches(r); err != nil {
			r.t.Close()
			w.dropped++
			c.om.mirrorDropped()
			c.cfg.Logf("cluster: fragment %d: replica on endpoint %d refused watches during promotion, dropped: %v", w.id, r.endpoint, err)
			continue
		}
		w.primary = r
		c.om.promoted()
		c.cfg.Logf("cluster: fragment %d: promoted warm replica on endpoint %d to primary (%d replicas left)", w.id, r.endpoint, len(w.replicas))
		return nil
	}
	r, err := c.reship(w, state)
	if err != nil {
		return err
	}
	if err := c.enlistWatches(r); err != nil {
		r.t.Close()
		return fmt.Errorf("re-registering watches on re-shipped fragment: %w", err)
	}
	w.primary = r
	c.om.reshipped()
	c.cfg.Logf("cluster: fragment %d: no warm replica left, re-shipped fragment to endpoint %d", w.id, r.endpoint)
	return nil
}

// enlistWatches registers every standing watch on a session about to
// serve as primary. The initial answer sets it computes are discarded:
// the session's graph is at the fragment's current sync point, so they
// equal the answers already accumulated from previously reported
// deltas.
func (c *Coordinator) enlistWatches(r *replica) error {
	for _, name := range sortedKeys(c.watches) {
		if _, err := r.t.Do(&server.Request{Cmd: "watch", Watch: name, Pattern: c.watches[name]}); err != nil {
			return err
		}
	}
	return nil
}

// reship rebuilds w's fragment on a fresh pool session from state.
// Induced preserves the order of w.toGlobal, so the new session's local
// id space is identical to the lost one's.
func (c *Coordinator) reship(w *worker, state graph.View) (*replica, error) {
	req, err := w.shipRequest(state)
	if err != nil {
		return nil, err
	}
	r, err := c.newCopy(w, req, len(w.owned))
	if err != nil {
		return nil, err
	}
	// The fresh copy is built from the authoritative graph at its
	// current sync point, so it is synced to the current batch version.
	r.version = c.version
	return r, nil
}

// shipRequest serializes w's fragment at the given authoritative-graph
// sync point into a fragment command.
func (w *worker) shipRequest(state graph.View) (*server.Request, error) {
	sub, _ := graph.InducedOf(state, w.toGlobal)
	var buf bytes.Buffer
	if _, err := sub.WriteTo(&buf); err != nil {
		return nil, fmt.Errorf("serialize fragment %d: %w", w.id, err)
	}
	ownedLocal := make([]int64, 0, len(w.owned))
	for gv := range w.owned {
		ownedLocal = append(ownedLocal, int64(w.toLocal[gv]))
	}
	sort.Slice(ownedLocal, func(i, j int) bool { return ownedLocal[i] < ownedLocal[j] })
	return &server.Request{Cmd: "fragment", Data: buf.String(), Owned: ownedLocal}, nil
}

// newCopy obtains a fresh session from the pool — off the endpoints
// already holding a copy of this fragment when possible — and ships the
// fragment to it.
func (c *Coordinator) newCopy(w *worker, ship *server.Request, weight int) (*replica, error) {
	if c.cfg.Pool == nil {
		return nil, errors.New("no warm replica left and no worker pool configured")
	}
	t, ep, err := c.cfg.Pool.Get(weight, w.occupiedEndpoints())
	if err != nil {
		return nil, fmt.Errorf("worker pool: %w", err)
	}
	if _, err := t.Do(ship); err != nil {
		t.Close()
		return nil, fmt.Errorf("shipping fragment: %w", err)
	}
	return &replica{t: t, endpoint: ep}, nil
}

// occupiedEndpoints lists the pool endpoints already hosting a copy of
// the fragment, so placement avoids co-locating copies.
func (w *worker) occupiedEndpoints() map[int]bool {
	avoid := make(map[int]bool, len(w.replicas)+1)
	if w.primary != nil && w.primary.endpoint >= 0 {
		avoid[w.primary.endpoint] = true
	}
	for _, r := range w.replicas {
		if r.endpoint >= 0 {
			avoid[r.endpoint] = true
		}
	}
	return avoid
}

// mirror forwards a state-changing request the primary has applied to
// every warm replica, concurrently: replicas only ever wait on the
// primary, not on each other, so k-way replication adds one replica
// round trip of latency instead of k-1. A replica that fails to apply
// the request is no longer a faithful mirror and is dropped (Repair
// recruits a replacement); the primary's result stands either way.
func (c *Coordinator) mirror(w *worker, req *server.Request) {
	switch len(w.replicas) {
	case 0:
		return
	case 1:
		// No fan-out to overlap; skip the goroutine machinery.
		if _, err := w.replicas[0].t.Do(req); err != nil {
			ep := w.replicas[0].endpoint
			w.replicas[0].t.Close()
			w.replicas = w.replicas[:0]
			w.dropped++
			c.om.mirrorDropped()
			c.cfg.Logf("cluster: fragment %d: replica on endpoint %d failed to mirror %s, dropped: %v", w.id, ep, req.Cmd, err)
		}
		return
	}
	ok := make([]bool, len(w.replicas))
	var wg sync.WaitGroup
	for i, r := range w.replicas {
		wg.Add(1)
		go func(i int, r *replica) {
			defer wg.Done()
			// Each goroutine sends its own shallow copy: client.Do stamps
			// the request's ID in place, so sharing one Request across
			// concurrent sends is a data race (the slices inside are
			// read-only and safely shared).
			cp := *req
			if _, err := r.t.Do(&cp); err != nil {
				r.t.Close()
				return
			}
			ok[i] = true
		}(i, r)
	}
	wg.Wait()
	kept := w.replicas[:0]
	for i, r := range w.replicas {
		if !ok[i] {
			w.dropped++
			c.om.mirrorDropped()
			c.cfg.Logf("cluster: fragment %d: replica on endpoint %d failed to mirror %s, dropped", w.id, r.endpoint, req.Cmd)
			continue
		}
		kept = append(kept, r)
	}
	w.replicas = kept
}

// ProbeResult reports one fragment's health: nil errors mean the
// session answered the ping and still holds the expected fragment
// state.
type ProbeResult struct {
	Fragment int
	Primary  error
	Replicas []error // one entry per warm replica, promotion order
}

// Probe pings every fragment copy over the wire protocol's ping path
// and verifies the session still holds the expected fragment (node and
// owned counts match the coordinator's bookkeeping, catching a worker
// that restarted blank as well as one that died). Probing is read-only:
// it performs no failover — internal/ha's Monitor applies its failure
// policy to the results and calls FailOver and Repair.
func (c *Coordinator) Probe() ([]ProbeResult, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if err := c.refuseLocked(); err != nil {
		return nil, err
	}
	results := make([]ProbeResult, len(c.workers))
	c.fanOut(func(w *worker) error {
		pr := ProbeResult{Fragment: w.id, Primary: w.probe(w.primary)}
		for _, r := range w.replicas {
			pr.Replicas = append(pr.Replicas, w.probe(r))
		}
		results[w.id] = pr
		return nil
	})
	return results, nil
}

// probe checks one fragment copy: reachable, holding a fragment, and at
// the expected node/owned counts.
func (w *worker) probe(r *replica) error {
	resp, err := r.t.Do(&server.Request{Cmd: "ping"})
	if err != nil {
		return &WorkerError{Worker: w.id, Endpoint: r.endpoint, Op: "probe", Err: err}
	}
	if !resp.Fragment {
		return &WorkerError{Worker: w.id, Endpoint: r.endpoint, Op: "probe",
			Err: errors.New("session no longer holds a fragment")}
	}
	if resp.Nodes != len(w.toGlobal) || resp.Owned != len(w.owned) {
		return &WorkerError{Worker: w.id, Endpoint: r.endpoint, Op: "probe",
			Err: fmt.Errorf("state mismatch: session has %d nodes / %d owned, expected %d / %d",
				resp.Nodes, resp.Owned, len(w.toGlobal), len(w.owned))}
	}
	return nil
}

// FailOver force-replaces a fragment's primary — promotion of a warm
// replica, or a re-ship from the authoritative graph — without waiting
// for an operation to trip over it. The supervision loop calls it when
// probes exceed its failure threshold.
func (c *Coordinator) FailOver(fragment int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.refuseLocked(); err != nil {
		return err
	}
	if fragment < 0 || fragment >= len(c.workers) {
		return fmt.Errorf("cluster: no fragment %d", fragment)
	}
	w := c.workers[fragment]
	if err := c.failover(w, c.g); err != nil {
		return &WorkerError{Worker: fragment, Endpoint: w.primary.endpoint, Op: "failover", Err: err}
	}
	return nil
}

// RepairReport summarizes one Repair pass.
type RepairReport struct {
	// Dropped counts replicas discarded because they failed their
	// probe.
	Dropped int
	// Added counts fresh replicas shipped to restore Config.Replicas.
	Added int
}

// Repair restores the replication factor: dead warm replicas are
// dropped and fresh ones are shipped from the authoritative graph until
// every fragment has Replicas-1 mirrors again (or the pool runs out, in
// which case the shortfall is reported as an error alongside the partial
// report).
func (c *Coordinator) Repair() (RepairReport, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var rep RepairReport
	if err := c.refuseLocked(); err != nil {
		return rep, err
	}
	// Copies a routed read marked suspect are dropped up front: even
	// when a probe would pass (a transient transport error), the read
	// router skips suspects forever, so replacing them restores read
	// capacity.
	c.pruneSuspectsLocked()
	var firstErr error
	for _, w := range c.workers {
		kept := w.replicas[:0]
		for _, r := range w.replicas {
			if w.probe(r) != nil {
				r.t.Close()
				w.dropped++
				rep.Dropped++
				continue
			}
			kept = append(kept, r)
		}
		w.replicas = kept
		for len(w.replicas) < c.cfg.Replicas-1 {
			r, err := c.reship(w, c.g)
			if err != nil {
				if firstErr == nil {
					firstErr = &WorkerError{Worker: w.id, Op: "replicate", Err: err}
				}
				break
			}
			w.replicas = append(w.replicas, r)
			rep.Added++
		}
	}
	return rep, firstErr
}

// FragmentStatus describes one fragment's serving state.
type FragmentStatus struct {
	Fragment     int
	Endpoint     int // primary's pool endpoint, -1 unknown
	Materialized int // nodes in the fragment
	Owned        int // focus candidates answered for
	Replicas     int // warm replicas currently alive
	Dropped      int // replicas discarded over the coordinator's lifetime
}

// Status reports the serving state of every fragment.
func (c *Coordinator) Status() []FragmentStatus {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]FragmentStatus, len(c.workers))
	for i, w := range c.workers {
		out[i] = FragmentStatus{
			Fragment:     i,
			Endpoint:     w.primary.endpoint,
			Materialized: len(w.nodes),
			Owned:        len(w.owned),
			Replicas:     len(w.replicas),
			Dropped:      w.dropped,
		}
	}
	return out
}

// FragmentHealth is one fragment's liveness report, shaped for the
// debug listener's /healthz document (JSON tags are the wire contract).
type FragmentHealth struct {
	Fragment      int    `json:"fragment"`
	Endpoint      int    `json:"endpoint"`
	Materialized  int    `json:"materialized"`
	Owned         int    `json:"owned"`
	PrimaryAlive  bool   `json:"primaryAlive"`
	PrimaryError  string `json:"primaryError,omitempty"`
	Replicas      int    `json:"replicas"`      // warm replicas held
	ReplicasAlive int    `json:"replicasAlive"` // of those, passing their probe
	Dropped       int    `json:"dropped"`       // replicas discarded over the lifetime
}

// Health probes every fragment copy and combines the results with the
// coordinator's topology bookkeeping: one report per fragment with the
// primary's liveness, the warm-replica counts, and the owned/materialized
// sizes. Unlike Probe it stays usable as a debug endpoint on a fail-stopped
// coordinator — the error is returned alongside the last-known topology so
// /healthz can show what the cluster looked like when it stopped.
func (c *Coordinator) Health() ([]FragmentHealth, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]FragmentHealth, len(c.workers))
	refused := c.refuseLocked()
	for i, w := range c.workers {
		fh := FragmentHealth{
			Fragment:     i,
			Endpoint:     w.primary.endpoint,
			Materialized: len(w.nodes),
			Owned:        len(w.owned),
			Replicas:     len(w.replicas),
			Dropped:      w.dropped,
		}
		if refused == nil {
			if err := w.probe(w.primary); err != nil {
				fh.PrimaryError = err.Error()
			} else {
				fh.PrimaryAlive = true
			}
			for _, r := range w.replicas {
				if w.probe(r) == nil {
					fh.ReplicasAlive++
				}
			}
		}
		out[i] = fh
	}
	return out, refused
}

// ReplicaCounts returns each fragment's current warm-replica count.
func (c *Coordinator) ReplicaCounts() []int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	counts := make([]int, len(c.workers))
	for i, w := range c.workers {
		counts[i] = len(w.replicas)
	}
	return counts
}

// Close releases every worker session the coordinator holds — primaries
// and warm replicas — and makes later requests fail with a clean
// "closed" error. Safe to call more than once.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	var first error
	for _, w := range c.workers {
		if err := w.primary.t.Close(); err != nil && first == nil {
			first = err
		}
		for _, r := range w.replicas {
			if err := r.t.Close(); err != nil && first == nil {
				first = err
			}
		}
		w.replicas = nil
	}
	return first
}

// closeReplicasLocked releases every pool-acquired replica; New's error
// path uses it so a failed construction does not leak pool sessions
// (the caller keeps ownership of the primary transports it passed in).
func (c *Coordinator) closeReplicasLocked() {
	for _, w := range c.workers {
		if w == nil {
			continue
		}
		for _, r := range w.replicas {
			r.t.Close()
		}
		w.replicas = nil
	}
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
