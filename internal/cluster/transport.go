package cluster

import (
	"net"

	"repro/internal/client"
	"repro/internal/graph"
	"repro/internal/server"
)

// Transport is one worker endpoint speaking the qgpd wire protocol. A
// *client.Client satisfies it, so any reachable qgpd process can be a
// worker; InProcess provides the embedded equivalent for tests and
// single-machine deployments.
type Transport interface {
	Do(req *server.Request) (*server.Response, error)
	Close() error
}

// WorkerPool supplies fresh worker transports for replica placement and
// failover re-shipping. Implementations (internal/ha) re-dial qgpd
// addresses or spawn embedded workers, tracking per-endpoint load.
type WorkerPool interface {
	// Get returns a fresh worker session, preferring the least-loaded
	// endpoint whose id is not in avoid (the coordinator passes the
	// endpoints already holding a copy of the fragment, so replicas do
	// not co-locate with their primary when the pool has a choice).
	// weight is the load the session will add — the fragment's
	// owned-node count from partition.OwnerMap. The returned transport
	// reports its endpoint back to the pool when closed.
	Get(weight int, avoid map[int]bool) (Transport, int, error)
}

// Endpointer is optionally implemented by transports that know which
// pool endpoint hosts them; the coordinator uses it to keep replicas off
// their primary's endpoint. Transports without it report endpoint -1.
type Endpointer interface {
	Endpoint() int
}

// ReadTracker is optionally implemented by pool-backed transports
// (ha.pooled): the coordinator's replica-read router brackets every
// routed read with ReadStart/ReadEnd and consults ReadLoad — the
// endpoint-wide in-flight routed-read count — when picking the
// least-loaded live copy of a fragment. Counting at the endpoint rather
// than the copy means reads issued by other fragments and sessions on
// the same endpoint steer routing too. Transports without it are scored
// by the coordinator's own per-copy in-flight count.
type ReadTracker interface {
	ReadStart()
	ReadEnd()
	ReadLoad() int
}

// UpdateJournal receives the coordinator's durable state: the
// authoritative graph at construction and every accepted update batch
// and watch change. internal/ha implements it over internal/store's
// snapshot+journal so a restarted coordinator can replay, re-fragment,
// re-ship and re-register watches (ha.Recover).
type UpdateJournal interface {
	// SetGraph replaces the durable graph (called by New with the
	// normalized authoritative graph once fragments are shipped).
	SetGraph(g *graph.Graph) error
	// AppendBatch records an accepted update batch; the coordinator
	// calls it after validating the batch against the authoritative
	// graph and before fanning it out to the workers.
	AppendBatch(specs []server.UpdateSpec) error
	// WatchRegistered and WatchRemoved record the standing-watch set.
	WatchRegistered(name, pattern string) error
	WatchRemoved(name string) error
}

// Dial connects to a stock qgpd process that will act as a worker. Each
// call opens a fresh connection, i.e. a fresh worker session.
func Dial(addr string) (Transport, error) {
	return client.Dial(addr)
}

// InProcess starts an embedded worker: a server.Server speaking the real
// wire protocol over a net.Pipe, so the embedded cluster exercises exactly
// the code paths of a distributed one. Server diagnostics are silenced
// unless cfg.Logf is set (a closing pipe is routine here, not noteworthy).
func InProcess(cfg server.Config) Transport {
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...interface{}) {}
	}
	srv := server.New(cfg)
	clientEnd, serverEnd := net.Pipe()
	go srv.ServeConn(serverEnd)
	return client.NewClient(clientEnd)
}

// InProcessN starts n embedded workers with a shared configuration.
func InProcessN(n int, cfg server.Config) []Transport {
	ts := make([]Transport, n)
	for i := range ts {
		ts[i] = InProcess(cfg)
	}
	return ts
}

// CloseAll closes every transport, returning the first error.
func CloseAll(ts []Transport) error {
	var first error
	for _, t := range ts {
		if err := t.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
