package cluster

import (
	"net"

	"repro/internal/client"
	"repro/internal/server"
)

// Transport is one worker endpoint speaking the qgpd wire protocol. A
// *client.Client satisfies it, so any reachable qgpd process can be a
// worker; InProcess provides the embedded equivalent for tests and
// single-machine deployments.
type Transport interface {
	Do(req *server.Request) (*server.Response, error)
	Close() error
}

// Dial connects to a stock qgpd process that will act as a worker. Each
// call opens a fresh connection, i.e. a fresh worker session.
func Dial(addr string) (Transport, error) {
	return client.Dial(addr)
}

// InProcess starts an embedded worker: a server.Server speaking the real
// wire protocol over a net.Pipe, so the embedded cluster exercises exactly
// the code paths of a distributed one. Server diagnostics are silenced
// unless cfg.Logf is set (a closing pipe is routine here, not noteworthy).
func InProcess(cfg server.Config) Transport {
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...interface{}) {}
	}
	srv := server.New(cfg)
	clientEnd, serverEnd := net.Pipe()
	go srv.ServeConn(serverEnd)
	return client.NewClient(clientEnd)
}

// InProcessN starts n embedded workers with a shared configuration.
func InProcessN(n int, cfg server.Config) []Transport {
	ts := make([]Transport, n)
	for i := range ts {
		ts[i] = InProcess(cfg)
	}
	return ts
}

// CloseAll closes every transport, returning the first error.
func CloseAll(ts []Transport) error {
	var first error
	for _, t := range ts {
		if err := t.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
