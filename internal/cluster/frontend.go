package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/server"
	"repro/internal/stats"
)

// FrontendConfig tunes a Frontend.
type FrontendConfig struct {
	// Cluster is the coordinator configuration applied to every session
	// (including Replicas, Pool and, for durable sessions, Journal).
	Cluster Config
	// NewWorkers supplies a fresh set of worker transports for a session's
	// coordinator (each front-end connection is an independent cluster
	// session, mirroring qgpd's session-per-connection model). Required.
	// The coordinator built over them owns and closes them.
	NewWorkers func() ([]Transport, error)
	// Durable, when non-nil, replaces the session-per-connection model
	// with ONE journal-backed cluster session shared by every
	// connection: updates are journaled before fan-out and a restarted
	// front end resumes from the recovered graph and watches. The
	// shared session serializes requests and shares the watch
	// namespace across connections.
	Durable *DurableState
	// OnSession, when set, is called with each coordinator the front
	// end builds; the returned stop function is called when that
	// coordinator is replaced or its session ends. internal/ha attaches
	// its health monitor here.
	OnSession func(*Coordinator) (stop func())
	// MaxLineBytes bounds one request line (default 64 MiB).
	MaxLineBytes int
	// MaxGraphSize bounds |V|+|E| of gen/load graphs (default 50M).
	MaxGraphSize int
	// IdleTimeout closes connections with no request for this long
	// (default 5 minutes).
	IdleTimeout time.Duration
	// Logf receives diagnostics; nil means log.Printf.
	Logf func(format string, args ...interface{})
}

// DurableState is the journal backing of a durable front-end session:
// the journal that receives graph, update and watch records, and the
// state recovered from it at startup (nil/empty on a fresh directory).
type DurableState struct {
	Journal UpdateJournal
	// Graph is the recovered authoritative graph to serve immediately,
	// nil when the journal directory held no state.
	Graph *graph.Graph
	// Watches maps recovered watch names to their pattern DSL; they are
	// re-registered when the recovered graph's cluster is built.
	Watches map[string]string
}

func (c *FrontendConfig) fill() {
	if c.MaxLineBytes <= 0 {
		c.MaxLineBytes = 64 << 20
	}
	if c.MaxGraphSize <= 0 {
		c.MaxGraphSize = 50_000_000
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 5 * time.Minute
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
}

// Frontend exposes a Coordinator through the qgpd wire protocol, so any
// existing client (internal/client, netcat, the examples) can talk to a
// cluster exactly as it talks to a single server. Commands gen, load,
// match, update, watch, unwatch, stats, partition, metrics, explain,
// profile and ping are
// served; commands that only make sense against a local graph (pmatch,
// rule, rpqfilter) report an error naming the limitation.
type Frontend struct {
	cfg FrontendConfig

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]bool
	coords   map[*Coordinator]bool // live session coordinators, for Health
	shutdown bool
	wg       sync.WaitGroup

	// Durable mode: one shared session, serialized by dmu.
	dmu   sync.Mutex
	dsess *feSession
}

// NewFrontend returns a front-end server for cluster sessions.
func NewFrontend(cfg FrontendConfig) *Frontend {
	cfg.fill()
	return &Frontend{cfg: cfg, conns: make(map[net.Conn]bool), coords: make(map[*Coordinator]bool)}
}

// Serve accepts connections until Shutdown. It always returns a non-nil
// error; after Shutdown the error is net.ErrClosed.
func (f *Frontend) Serve(ln net.Listener) error {
	f.mu.Lock()
	if f.shutdown {
		f.mu.Unlock()
		return net.ErrClosed
	}
	f.ln = ln
	f.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		f.mu.Lock()
		if f.shutdown {
			f.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		f.conns[conn] = true
		f.wg.Add(1)
		f.mu.Unlock()
		go func() {
			defer f.wg.Done()
			f.ServeConn(conn)
			f.mu.Lock()
			delete(f.conns, conn)
			f.mu.Unlock()
		}()
	}
}

// Shutdown stops accepting, closes the listener and all connections,
// waits for in-flight handlers (or the context), and releases the
// durable session's coordinator and workers if one exists.
func (f *Frontend) Shutdown(ctx context.Context) error {
	f.mu.Lock()
	f.shutdown = true
	if f.ln != nil {
		f.ln.Close()
	}
	for c := range f.conns {
		c.Close()
	}
	f.mu.Unlock()

	done := make(chan struct{})
	go func() {
		f.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		// A handler may still hold dmu; skip the durable teardown
		// rather than block past the caller's deadline.
		return ctx.Err()
	}
	// All handlers have returned, so dmu is free.
	f.dmu.Lock()
	if f.dsess != nil {
		f.dsess.close()
		f.dsess = nil
	}
	f.dmu.Unlock()
	return nil
}

// feSession is one cluster session's state. The coordinator owns its
// worker transports (including any pool-acquired replicas), so closing
// the session cannot leak worker sessions even on an abrupt client
// disconnect.
type feSession struct {
	coord *Coordinator
	st    *stats.Stats
	stop  func() // OnSession cleanup (e.g. a health monitor)
	unreg func() // removes coord from the front end's Health tracking
}

// reset tears the session's cluster down: the supervisor hook is
// stopped and the coordinator releases every worker transport it owns.
func (sess *feSession) reset() {
	if sess.stop != nil {
		sess.stop()
		sess.stop = nil
	}
	if sess.unreg != nil {
		sess.unreg()
		sess.unreg = nil
	}
	if sess.coord != nil {
		sess.coord.Close()
		sess.coord = nil
	}
	sess.st = nil
}

func (sess *feSession) close() { sess.reset() }

// ServeConn serves the protocol on one established connection and blocks
// until it closes. The request loop itself is the server package's
// ServeProtocol, so framing cannot diverge between qgpd and qgpcluster.
func (f *Frontend) ServeConn(conn net.Conn) {
	sess := &feSession{}
	// A dropped connection — graceful or abrupt — tears down the
	// per-connection cluster; the shared durable session (when Durable
	// is configured) is not touched, it belongs to the front end.
	defer sess.close()
	server.ServeProtocol(conn, server.ProtocolConfig{
		MaxLineBytes: f.cfg.MaxLineBytes,
		IdleTimeout:  f.cfg.IdleTimeout,
		Logf:         f.cfg.Logf,
		Name:         "cluster frontend",
	}, func(req *server.Request) server.Response { return f.handle(sess, req) })
}

func (f *Frontend) handle(sess *feSession, req *server.Request) server.Response {
	if f.cfg.Durable != nil {
		// One shared, serialized session: the coordinator serializes its
		// own operations, dmu additionally covers the session bookkeeping
		// (stats cache, lazy recovery) shared across connections.
		f.dmu.Lock()
		defer f.dmu.Unlock()
		var err error
		if sess, err = f.durableSession(); err != nil {
			var resp server.Response
			resp.Error = err.Error()
			return resp
		}
	}
	start := time.Now()
	var resp server.Response
	var err error
	switch req.Cmd {
	case "ping":
		resp.Pong = true
	case "gen", "load":
		err = f.handleGraph(sess, req, &resp)
	case "match":
		err = f.handleMatch(sess, req, &resp)
	case "update":
		err = f.handleUpdate(sess, req, &resp)
	case "watch":
		err = f.handleWatch(sess, req, &resp)
	case "unwatch":
		err = f.handleUnwatch(sess, req, &resp)
	case "stats":
		err = f.handleStats(sess, req, &resp)
	case "partition":
		err = f.handlePartition(sess, req, &resp)
	case "explain":
		err = f.handleExplain(sess, req, &resp)
	case "profile":
		err = f.handleProfile(sess, req, &resp)
	case "metrics":
		// The front end and its coordinators share one registry
		// (FrontendConfig.Cluster.Metrics), so the snapshot covers every
		// session's fan-out counters; "{}" when none is configured.
		resp.Obs = f.cfg.Cluster.Metrics.JSON()
	case "pmatch", "rule", "rpqfilter", "fragment", "assign":
		err = fmt.Errorf("command %q is not served by the cluster front end; connect to a worker qgpd for it", req.Cmd)
	default:
		err = fmt.Errorf("unknown command %q", req.Cmd)
	}
	if err != nil {
		resp.Error = err.Error()
	}
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	return resp
}

// durableSession returns the shared journal-backed session, building its
// cluster from the recovered graph and watches on first use. Callers
// hold dmu. A failed recovery is returned to the requesting client and
// retried on the next request.
func (f *Frontend) durableSession() (*feSession, error) {
	if f.dsess != nil {
		return f.dsess, nil
	}
	sess := &feSession{}
	if g := f.cfg.Durable.Graph; g != nil {
		if err := f.buildCluster(sess, g, true); err != nil {
			return nil, fmt.Errorf("recovering journaled cluster: %w", err)
		}
		for _, name := range sortedKeys(f.cfg.Durable.Watches) {
			q, err := core.Parse(f.cfg.Durable.Watches[name])
			if err != nil {
				sess.close()
				return nil, fmt.Errorf("recovering watch %q: %w", name, err)
			}
			if _, err := sess.coord.Watch(name, q); err != nil {
				sess.close()
				return nil, fmt.Errorf("recovering watch %q: %w", name, err)
			}
		}
	}
	f.dsess = sess
	return sess, nil
}

// ClusterHealth is one live cluster session's slice of the front end's
// /healthz document.
type ClusterHealth struct {
	Fragments []FragmentHealth `json:"fragments"`
	Error     string           `json:"error,omitempty"`
}

// Health reports the topology and per-fragment liveness of every live
// cluster session, shaped for the debug listener's /healthz endpoint.
// With no session yet (no client has loaded a graph) the document is
// healthy but empty. The error is non-nil — a 503 from the debug handler
// — when a session has fail-stopped or a fragment's primary fails its
// probe.
func (f *Frontend) Health() (interface{}, error) {
	f.mu.Lock()
	coords := make([]*Coordinator, 0, len(f.coords))
	for c := range f.coords {
		coords = append(coords, c)
	}
	f.mu.Unlock()
	doc := struct {
		Status   string          `json:"status"`
		Sessions int             `json:"sessions"`
		Clusters []ClusterHealth `json:"clusters,omitempty"`
	}{Status: "ok", Sessions: len(coords)}
	var firstErr error
	for _, c := range coords {
		fhs, err := c.Health()
		ch := ClusterHealth{Fragments: fhs}
		if err != nil {
			ch.Error = err.Error()
			if firstErr == nil {
				firstErr = err
			}
		} else {
			for _, fh := range fhs {
				if !fh.PrimaryAlive && firstErr == nil {
					firstErr = fmt.Errorf("fragment %d primary failed its probe: %s", fh.Fragment, fh.PrimaryError)
				}
			}
		}
		doc.Clusters = append(doc.Clusters, ch)
	}
	if firstErr != nil {
		doc.Status = "degraded"
	}
	return doc, firstErr
}

var errNoCluster = errors.New("no graph loaded: run gen or load first")

// buildCluster replaces the session's coordinator with a fresh one over
// g: fresh worker transports, and for a durable session the journal is
// attached (cluster.New records g as the new durable graph).
func (f *Frontend) buildCluster(sess *feSession, g *graph.Graph, durable bool) error {
	// The old cluster's sessions are released first: a failed rebuild
	// leaves the front-end session refusing queries (errNoCluster-style
	// errors via nil coord) rather than serving a graph the client
	// believes it replaced.
	sess.reset()
	ts, err := f.cfg.NewWorkers()
	if err != nil {
		return fmt.Errorf("workers: %w", err)
	}
	if len(ts) == 0 {
		return errors.New("workers: NewWorkers returned an empty set")
	}
	ccfg := f.cfg.Cluster
	if durable {
		ccfg.Journal = f.cfg.Durable.Journal
	} else {
		ccfg.Journal = nil
	}
	coord, err := New(g, ts, ccfg)
	if err != nil {
		CloseAll(ts) // New failed: ownership stayed with us
		return err
	}
	sess.coord = coord
	f.mu.Lock()
	f.coords[coord] = true
	f.mu.Unlock()
	sess.unreg = func() {
		f.mu.Lock()
		delete(f.coords, coord)
		f.mu.Unlock()
	}
	if f.cfg.OnSession != nil {
		sess.stop = f.cfg.OnSession(coord)
	}
	return nil
}

// setGraph builds (or rebuilds) the session's coordinator over g.
func (f *Frontend) setGraph(sess *feSession, g *graph.Graph) error {
	if g.Size() > f.cfg.MaxGraphSize {
		return fmt.Errorf("graph size %d exceeds front-end cap %d", g.Size(), f.cfg.MaxGraphSize)
	}
	return f.buildCluster(sess, g, f.cfg.Durable != nil && sess == f.dsess)
}

// handleGraph serves gen and load: the graph construction is shared with
// the single server (server.BuildGraph), so the two vocabularies cannot
// diverge.
func (f *Frontend) handleGraph(sess *feSession, req *server.Request, resp *server.Response) error {
	g, err := server.BuildGraph(req)
	if err != nil {
		return err
	}
	if err := f.setGraph(sess, g); err != nil {
		return err
	}
	g = sess.coord.Graph() // normalized version
	resp.Nodes, resp.Edges = g.NumNodes(), g.NumEdges()
	return nil
}

func (f *Frontend) handleMatch(sess *feSession, req *server.Request, resp *server.Response) error {
	if sess.coord == nil {
		return errNoCluster
	}
	q, err := core.Parse(req.Pattern)
	if err != nil {
		return err
	}
	res, err := sess.coord.MatchWith(q, &MatchOptions{
		Engine:  req.Engine,
		Budget:  req.Budget,
		Planner: req.Planner,
	})
	if err != nil {
		return err
	}
	server.FillMatches(resp, res.Matches, req.Limit)
	resp.Metrics = &res.Metrics
	return nil
}

func (f *Frontend) handleUpdate(sess *feSession, req *server.Request, resp *server.Response) error {
	if sess.coord == nil {
		return errNoCluster
	}
	// The combined-batch fields are coordinator→worker routing, not
	// client vocabulary: the coordinator computes assignment and the
	// affected set itself. Reject rather than silently drop them, as
	// with the other worker-only commands.
	if len(req.Owned) > 0 || req.Scoped || len(req.Affected) > 0 {
		return fmt.Errorf("update fields owned/scoped/affected are not served by the cluster front end; the coordinator computes routing itself")
	}
	res, err := sess.coord.Update(req.Updates)
	if err != nil {
		return err
	}
	sess.st = nil
	resp.Nodes, resp.Edges = res.Nodes, res.Edges
	resp.Deltas = res.Deltas
	return nil
}

// handleExplain fans the plan-only command out and returns the merged
// per-fragment plan documents in Profile.
func (f *Frontend) handleExplain(sess *feSession, req *server.Request, resp *server.Response) error {
	if sess.coord == nil {
		return errNoCluster
	}
	q, err := core.Parse(req.Pattern)
	if err != nil {
		return err
	}
	ex, err := sess.coord.Explain(q)
	if err != nil {
		return err
	}
	return fillProfile(resp, ex)
}

// handleProfile dispatches like the single server's profile command: a
// pattern profiles a cluster match, an update batch profiles the
// maintenance pipeline. The merged cluster-level document travels in
// Profile with each worker's own document embedded verbatim.
func (f *Frontend) handleProfile(sess *feSession, req *server.Request, resp *server.Response) error {
	if sess.coord == nil {
		return errNoCluster
	}
	switch {
	case len(req.Updates) > 0:
		// Same client-vocabulary boundary as handleUpdate.
		if len(req.Owned) > 0 || req.Scoped || len(req.Affected) > 0 {
			return fmt.Errorf("update fields owned/scoped/affected are not served by the cluster front end; the coordinator computes routing itself")
		}
		res, prof, err := sess.coord.UpdateProfiled(req.Updates)
		if err != nil {
			return err
		}
		sess.st = nil
		resp.Nodes, resp.Edges = res.Nodes, res.Edges
		resp.Deltas = res.Deltas
		return fillProfile(resp, prof)
	case req.Pattern != "":
		q, err := core.Parse(req.Pattern)
		if err != nil {
			return err
		}
		res, prof, err := sess.coord.ProfileMatch(q, &MatchOptions{
			Engine:  req.Engine,
			Budget:  req.Budget,
			Planner: req.Planner,
		})
		if err != nil {
			return err
		}
		server.FillMatches(resp, res.Matches, req.Limit)
		resp.Metrics = &res.Metrics
		return fillProfile(resp, prof)
	default:
		return fmt.Errorf("profile: request carries neither a pattern nor an update batch")
	}
}

// fillProfile serializes a merged profile document into the response.
func fillProfile(resp *server.Response, doc interface{}) error {
	b, err := json.Marshal(doc)
	if err != nil {
		return fmt.Errorf("profile: %w", err)
	}
	resp.Profile = b
	return nil
}

func (f *Frontend) handleWatch(sess *feSession, req *server.Request, resp *server.Response) error {
	if sess.coord == nil {
		return errNoCluster
	}
	q, err := core.Parse(req.Pattern)
	if err != nil {
		return err
	}
	answers, err := sess.coord.Watch(req.Watch, q)
	if err != nil {
		return err
	}
	server.FillMatches(resp, answers, req.Limit)
	return nil
}

func (f *Frontend) handleUnwatch(sess *feSession, req *server.Request, resp *server.Response) error {
	if sess.coord == nil {
		return errNoCluster
	}
	return sess.coord.Unwatch(req.Watch)
}

func (f *Frontend) handleStats(sess *feSession, req *server.Request, resp *server.Response) error {
	if sess.coord == nil {
		return errNoCluster
	}
	g := sess.coord.Graph()
	if sess.st == nil {
		sess.st = stats.Collect(g)
	}
	st := sess.st
	resp.Nodes, resp.Edges = st.Nodes, st.Edges
	resp.Labels = len(st.LabelCount)
	k := req.TopK
	if k <= 0 {
		k = 10
	}
	for _, t := range st.TopTriples(k) {
		resp.Triples = append(resp.Triples, st.Describe(g, t))
	}
	return nil
}

func (f *Frontend) handlePartition(sess *feSession, req *server.Request, resp *server.Response) error {
	if sess.coord == nil {
		return errNoCluster
	}
	sizes := sess.coord.FragmentSizes()
	min, max := -1, 0
	for _, s := range sizes {
		resp.Fragments = append(resp.Fragments, s)
		if s > max {
			max = s
		}
		if min < 0 || s < min {
			min = s
		}
	}
	if max > 0 {
		resp.Skew = float64(min) / float64(max)
	}
	return nil
}
