package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/server"
	"repro/internal/stats"
	"repro/internal/tenant"
)

// FrontendConfig tunes a Frontend.
type FrontendConfig struct {
	// Cluster is the coordinator configuration applied to every session
	// (including Replicas, Pool and, for durable sessions, Journal). In
	// shared-session mode a zero MaxWatches is lifted to unlimited: the
	// one coordinator aggregates every tenant's watches, and quotas are
	// enforced per tenant by the session manager instead.
	Cluster Config
	// NewWorkers supplies a fresh set of worker transports for a
	// cluster's coordinator. Required. The coordinator built over them
	// owns and closes them.
	NewWorkers func() ([]Transport, error)
	// Isolate restores the legacy cluster-per-connection model: every
	// TCP connection gets a private fragmentation and watch namespace,
	// torn down on disconnect. The default (false) is ONE shared cluster
	// session multiplexed across connections by the tenant layer — k
	// clients cost one fragmentation, not k. Ignored (forced off) when
	// Durable is set: durability requires the shared session.
	Isolate bool
	// Tenancy tunes the shared session's tenant manager (quotas, idle
	// eviction). Zero values take the tenant package defaults; Logf and
	// Metrics default to this config's Logf and Cluster.Metrics. Unused
	// in Isolate mode.
	Tenancy tenant.Config
	// Durable, when non-nil, backs the shared session with a journal:
	// updates are journaled before fan-out and a restarted front end
	// resumes from the recovered graph and watches.
	Durable *DurableState
	// OnSession, when set, is called with each coordinator the front
	// end builds; the returned stop function is called when that
	// coordinator is replaced or its session ends. internal/ha attaches
	// its health monitor here.
	OnSession func(*Coordinator) (stop func())
	// MaxLineBytes bounds one request line (default 64 MiB).
	MaxLineBytes int
	// MaxGraphSize bounds |V|+|E| of gen/load graphs (default 50M).
	MaxGraphSize int
	// IdleTimeout closes connections with no request for this long
	// (default 5 minutes).
	IdleTimeout time.Duration
	// Logf receives diagnostics; nil means log.Printf.
	Logf func(format string, args ...interface{})
}

// DurableState is the journal backing of a durable front-end session:
// the journal that receives graph, update and watch records, and the
// state recovered from it at startup (nil/empty on a fresh directory).
type DurableState struct {
	Journal UpdateJournal
	// Graph is the recovered authoritative graph to serve immediately,
	// nil when the journal directory held no state.
	Graph *graph.Graph
	// Watches maps recovered watch names to their pattern DSL; they are
	// re-registered when the recovered graph's cluster is built. Names
	// are coordinator-global: tenant-encoded (tenant.GlobalName) when
	// written by this build, bare legacy names from older journals.
	Watches map[string]string
}

func (c *FrontendConfig) fill() {
	if c.MaxLineBytes <= 0 {
		c.MaxLineBytes = 64 << 20
	}
	if c.MaxGraphSize <= 0 {
		c.MaxGraphSize = 50_000_000
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 5 * time.Minute
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
}

// Frontend exposes a Coordinator through the qgpd wire protocol, so any
// existing client (internal/client, netcat, the examples) can talk to a
// cluster exactly as it talks to a single server.
//
// By default every connection shares ONE cluster session — one
// fragmentation, one coordinator write path — and the tenant layer
// (internal/tenant) gives each connection (or named session, via the
// session command) a private watch namespace with quotas and lifecycle.
// Reads are routed to the least-loaded live copy of each fragment, fenced
// by the tenant's last write so a session never misses its own update.
// FrontendConfig.Isolate restores the legacy cluster-per-connection
// model.
//
// Commands gen, load, match, update, watch, unwatch, stats, partition,
// metrics, explain, profile, ping and (shared mode) session, sessions,
// endsession, deltas are served; commands that only make sense against a
// local graph (pmatch, rule, rpqfilter) report an error naming the
// limitation.
type Frontend struct {
	cfg FrontendConfig

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]bool
	coords   map[*Coordinator]bool // live session coordinators, for Health
	shutdown bool
	wg       sync.WaitGroup

	// Shared-session mode (the default): one cluster session for every
	// connection, multiplexed by the tenant manager. smu guards the
	// session bookkeeping (rebuilds, lazy durable recovery); requests
	// snapshot the coordinator under smu and then run concurrently —
	// the coordinator's own RWMutex serializes writes against routed
	// reads.
	smu     sync.Mutex
	ssess   *feSession
	srecov  bool // durable recovery applied (or superseded by gen/load)
	tenants *tenant.Manager
}

// NewFrontend returns a front-end server for cluster sessions.
func NewFrontend(cfg FrontendConfig) *Frontend {
	cfg.fill()
	if cfg.Durable != nil {
		cfg.Isolate = false // durability requires the one shared session
	}
	f := &Frontend{cfg: cfg, conns: make(map[net.Conn]bool), coords: make(map[*Coordinator]bool)}
	if !cfg.Isolate {
		f.ssess = &feSession{}
		tcfg := cfg.Tenancy
		if tcfg.Logf == nil {
			tcfg.Logf = cfg.Logf
		}
		if tcfg.Metrics == nil {
			tcfg.Metrics = cfg.Cluster.Metrics
		}
		f.tenants = tenant.NewManager(tcfg, f)
		f.tenants.Start()
	}
	return f
}

// Tenants exposes the shared session's tenant manager (nil in Isolate
// mode) for supervision and tests.
func (f *Frontend) Tenants() *tenant.Manager { return f.tenants }

// Serve accepts connections until Shutdown. It always returns a non-nil
// error; after Shutdown the error is net.ErrClosed.
func (f *Frontend) Serve(ln net.Listener) error {
	f.mu.Lock()
	if f.shutdown {
		f.mu.Unlock()
		return net.ErrClosed
	}
	f.ln = ln
	f.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		f.mu.Lock()
		if f.shutdown {
			f.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		f.conns[conn] = true
		f.wg.Add(1)
		f.mu.Unlock()
		go func() {
			defer f.wg.Done()
			f.ServeConn(conn)
			f.mu.Lock()
			delete(f.conns, conn)
			f.mu.Unlock()
		}()
	}
}

// Shutdown stops accepting, closes the listener and all connections,
// waits for in-flight handlers (or the context), and releases the shared
// session's coordinator and workers.
func (f *Frontend) Shutdown(ctx context.Context) error {
	f.mu.Lock()
	f.shutdown = true
	if f.ln != nil {
		f.ln.Close()
	}
	for c := range f.conns {
		c.Close()
	}
	f.mu.Unlock()

	// Stop the idle sweeper before waiting on handlers: it does not
	// depend on them, and the deadline return below must not leak a
	// goroutine that would keep evicting (Unwatch round trips) against a
	// coordinator the caller is about to close. The sweeper never blocks
	// indefinitely — an in-flight EvictIdle's fan-outs run against the
	// still-open shared session with bounded failover retries.
	if f.tenants != nil {
		f.tenants.Stop()
	}
	done := make(chan struct{})
	go func() {
		f.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		// A handler may still hold smu; skip the shared teardown rather
		// than block past the caller's deadline.
		return ctx.Err()
	}
	// All handlers have returned, so smu is free.
	f.smu.Lock()
	if f.ssess != nil {
		f.ssess.close()
	}
	f.smu.Unlock()
	return nil
}

// feSession is one cluster session's state. The coordinator owns its
// worker transports (including any pool-acquired replicas), so closing
// the session cannot leak worker sessions even on an abrupt client
// disconnect.
type feSession struct {
	coord *Coordinator
	stop  func() // OnSession cleanup (e.g. a health monitor)
	unreg func() // removes coord from the front end's Health tracking

	// Stats cache. Shared-session handlers run concurrently, so it has
	// its own lock rather than riding on smu.
	stmu sync.Mutex
	st   *stats.Stats
}

func (sess *feSession) cachedStats(g *graph.Graph) *stats.Stats {
	sess.stmu.Lock()
	st := sess.st
	sess.stmu.Unlock()
	if st != nil {
		return st
	}
	st = stats.Collect(g)
	sess.stmu.Lock()
	sess.st = st
	sess.stmu.Unlock()
	return st
}

func (sess *feSession) invalidateStats() {
	sess.stmu.Lock()
	sess.st = nil
	sess.stmu.Unlock()
}

// reset tears the session's cluster down: the supervisor hook is
// stopped and the coordinator releases every worker transport it owns.
func (sess *feSession) reset() {
	if sess.stop != nil {
		sess.stop()
		sess.stop = nil
	}
	if sess.unreg != nil {
		sess.unreg()
		sess.unreg = nil
	}
	if sess.coord != nil {
		sess.coord.Close()
		sess.coord = nil
	}
	sess.invalidateStats()
}

func (sess *feSession) close() { sess.reset() }

// connState is one connection's slice of front-end state: its private
// cluster session in Isolate mode, its tenant attachment in shared mode.
// ServeProtocol serves one request at a time per connection, so connState
// needs no lock.
type connState struct {
	sess      *feSession // Isolate mode only
	tenant    string     // attached tenant session; "" until first use
	ephemeral bool       // created for this connection; evict on disconnect
}

// ServeConn serves the protocol on one established connection and blocks
// until it closes. The request loop itself is the server package's
// ServeProtocol, so framing cannot diverge between qgpd and qgpcluster.
func (f *Frontend) ServeConn(conn net.Conn) {
	cs := &connState{}
	if f.cfg.Isolate {
		cs.sess = &feSession{}
	}
	defer func() {
		// A dropped connection — graceful or abrupt — tears down the
		// per-connection cluster (Isolate) or releases the tenant
		// attachment (shared; an ephemeral session is evicted with its
		// last connection, a named one lingers until idle timeout).
		if cs.sess != nil {
			cs.sess.close()
		}
		if cs.tenant != "" && f.tenants != nil {
			f.tenants.Release(cs.tenant, cs.ephemeral)
		}
	}()
	server.ServeProtocol(conn, server.ProtocolConfig{
		MaxLineBytes: f.cfg.MaxLineBytes,
		IdleTimeout:  f.cfg.IdleTimeout,
		Logf:         f.cfg.Logf,
		Name:         "cluster frontend",
	}, func(req *server.Request) server.Response { return f.handle(cs, req) })
}

func (f *Frontend) handle(cs *connState, req *server.Request) server.Response {
	start := time.Now()
	var resp server.Response
	var err error
	if f.cfg.Isolate {
		err = f.handleIsolated(cs.sess, req, &resp)
	} else {
		err = f.handleShared(cs, req, &resp)
	}
	if err != nil {
		resp.Error = err.Error()
		var thr *tenant.ErrThrottled
		if errors.As(err, &thr) {
			// Typed retry-after on the wire: a throttled client backs off
			// this long instead of guessing (or hammering).
			resp.RetryAfterMS = float64(thr.RetryAfter.Microseconds()) / 1000
		}
	} else if cs.tenant != "" && f.tenants != nil {
		// Per-tenant latency: served commands land in the tenant's
		// match.ms/update.ms histograms (windowed p95 via obs.Windows).
		// Errors and rejections stay out — a throttle refusal costing
		// microseconds would mask the tenant's real service latency.
		if op := observeClass(req); op != "" {
			f.tenants.Observe(cs.tenant, op, start)
		}
	}
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	return resp
}

// admissionClass maps a wire command to its admission-control class:
// "update" for writes, "match" for routed reads, "" for free commands.
// Drains are deliberately free — refusing deltas would keep a throttled
// tenant's inbox full, the opposite of what the bounded-inbox design
// wants — as are the session and observability commands.
func admissionClass(req *server.Request) string {
	switch req.Cmd {
	case "update":
		return "update"
	case "match", "explain":
		return "match"
	case "profile":
		if len(req.Updates) > 0 {
			return "update"
		}
		return "match"
	}
	return ""
}

// observeClass is admissionClass plus watch registrations, whose
// initial-answer evaluation is read work.
func observeClass(req *server.Request) string {
	if req.Cmd == "watch" {
		return "match"
	}
	return admissionClass(req)
}

// handleIsolated dispatches against the connection's private cluster
// session (legacy model).
func (f *Frontend) handleIsolated(sess *feSession, req *server.Request, resp *server.Response) error {
	switch req.Cmd {
	case "ping":
		resp.Pong = true
		return nil
	case "gen", "load":
		g, err := f.buildGraph(req)
		if err != nil {
			return err
		}
		if err := f.buildCluster(sess, g, false); err != nil {
			return err
		}
		g = sess.coord.Graph() // normalized version
		resp.Nodes, resp.Edges = g.NumNodes(), g.NumEdges()
		return nil
	case "metrics":
		resp.Obs = f.cfg.Cluster.Metrics.JSON()
		return nil
	case "session", "sessions", "endsession", "deltas":
		return fmt.Errorf("command %q needs the shared-session front end; this one runs with -isolate (cluster per connection)", req.Cmd)
	}
	if sess.coord == nil {
		return errNoCluster
	}
	return f.dispatch(sess, sess.coord, nil, req, resp)
}

// handleShared dispatches against the one shared cluster session,
// multiplexed across connections by the tenant manager.
func (f *Frontend) handleShared(cs *connState, req *server.Request, resp *server.Response) error {
	switch req.Cmd {
	case "ping":
		resp.Pong = true
		return nil
	case "gen", "load":
		return f.handleSharedGraph(req, resp)
	case "metrics":
		resp.Obs = f.cfg.Cluster.Metrics.JSON()
		return nil
	case "session":
		return f.handleSession(cs, req, resp)
	case "sessions":
		resp.Tenants = f.tenants.List()
		return nil
	case "endsession":
		return f.handleEndSession(cs, req, resp)
	case "deltas":
		if err := f.ensureTenant(cs); err != nil {
			return err
		}
		ds, err := f.tenants.Drain(cs.tenant)
		if err != nil {
			return err
		}
		resp.Deltas = ds
		resp.Session = cs.tenant
		return nil
	case "watch":
		if err := f.ensureTenant(cs); err != nil {
			return err
		}
		if err := f.tenants.Admit(cs.tenant, "watch"); err != nil {
			return err
		}
		q, err := core.Parse(req.Pattern)
		if err != nil {
			return err
		}
		// The tenant manager registers the encoded global name through
		// this front end (tenant.Registrar), reaching the shared
		// coordinator underneath.
		answers, err := f.tenants.Watch(cs.tenant, req.Watch, q)
		if err != nil {
			return err
		}
		server.FillMatches(resp, answers, req.Limit)
		resp.Session = cs.tenant
		return nil
	case "unwatch":
		if err := f.ensureTenant(cs); err != nil {
			return err
		}
		return f.tenants.Unwatch(cs.tenant, req.Watch)
	}
	sess, coord, err := f.sharedSession()
	if err != nil {
		return err
	}
	// Admission control for the commands that cost the shared cluster
	// work. Attaching first means even a session-less client's first
	// match is accounted to (and limited by) its ephemeral tenant.
	if op := admissionClass(req); op != "" {
		if err := f.ensureTenant(cs); err != nil {
			return err
		}
		if err := f.tenants.Admit(cs.tenant, op); err != nil {
			return err
		}
	}
	return f.dispatch(sess, coord, cs, req, resp)
}

// dispatch serves the commands common to both models against a concrete
// coordinator. cs is nil in Isolate mode: no tenant layer, so no fences
// and updates return every watch's deltas directly.
func (f *Frontend) dispatch(sess *feSession, coord *Coordinator, cs *connState, req *server.Request, resp *server.Response) error {
	switch req.Cmd {
	case "match":
		return f.handleMatch(coord, cs, req, resp)
	case "update":
		return f.handleUpdate(sess, coord, cs, req, resp)
	case "watch": // Isolate mode only; shared watch goes via the tenant manager
		q, err := core.Parse(req.Pattern)
		if err != nil {
			return err
		}
		answers, err := coord.Watch(req.Watch, q)
		if err != nil {
			return err
		}
		server.FillMatches(resp, answers, req.Limit)
		return nil
	case "unwatch":
		return coord.Unwatch(req.Watch)
	case "stats":
		return f.handleStats(sess, coord, cs, req, resp)
	case "partition":
		return f.handlePartition(coord, resp)
	case "explain":
		return f.handleExplain(coord, req, resp)
	case "profile":
		return f.handleProfile(sess, coord, cs, req, resp)
	case "pmatch", "rule", "rpqfilter", "fragment", "assign":
		return fmt.Errorf("command %q is not served by the cluster front end; connect to a worker qgpd for it", req.Cmd)
	default:
		return fmt.Errorf("unknown command %q", req.Cmd)
	}
}

// ensureTenant lazily attaches the connection to a fresh ephemeral
// session: a client that never sends the session command still gets a
// private watch namespace and a read-your-writes fence, scoped to its
// connection.
func (f *Frontend) ensureTenant(cs *connState) error {
	if cs.tenant != "" {
		return nil
	}
	name, err := f.tenants.Attach("")
	if err != nil {
		return err
	}
	cs.tenant, cs.ephemeral = name, true
	return nil
}

func (f *Frontend) handleSession(cs *connState, req *server.Request, resp *server.Response) error {
	name, err := f.tenants.Attach(req.Session)
	if err != nil {
		return err
	}
	switch {
	case cs.tenant == name:
		// Re-attach to the current session: drop the extra hold.
		f.tenants.Release(name, false)
	case cs.tenant != "":
		f.tenants.Release(cs.tenant, cs.ephemeral)
		fallthrough
	default:
		cs.tenant, cs.ephemeral = name, req.Session == ""
	}
	resp.Session = name
	return nil
}

func (f *Frontend) handleEndSession(cs *connState, req *server.Request, resp *server.Response) error {
	target := req.Session
	if target == "" {
		if cs.tenant == "" {
			return errors.New("endsession: no session attached to this connection")
		}
		target = cs.tenant
	}
	f.tenants.Evict(target)
	if target == cs.tenant {
		cs.tenant, cs.ephemeral = "", false
	}
	resp.Session = target
	return nil
}

// sharedSession returns the shared session and a snapshot of its current
// coordinator, applying lazy durable recovery on first use. A failed
// recovery is returned to the requesting client and retried on the next
// request.
func (f *Frontend) sharedSession() (*feSession, *Coordinator, error) {
	f.smu.Lock()
	defer f.smu.Unlock()
	if err := f.recoverLocked(); err != nil {
		return nil, nil, err
	}
	if f.ssess.coord == nil {
		return nil, nil, errNoCluster
	}
	return f.ssess, f.ssess.coord, nil
}

// recoverLocked builds the shared cluster from journal-recovered state on
// the first request after a durable restart: the graph is re-fragmented
// and re-shipped, every recovered watch re-registered under its global
// name, and the tenant manager's per-session watch tables rebuilt by
// decoding those names. Callers hold smu.
func (f *Frontend) recoverLocked() error {
	if f.srecov {
		return nil
	}
	if f.cfg.Durable == nil || f.cfg.Durable.Graph == nil {
		f.srecov = true
		return nil
	}
	if err := f.buildCluster(f.ssess, f.cfg.Durable.Graph, true); err != nil {
		return fmt.Errorf("recovering journaled cluster: %w", err)
	}
	for _, name := range sortedKeys(f.cfg.Durable.Watches) {
		q, err := core.Parse(f.cfg.Durable.Watches[name])
		if err != nil {
			f.ssess.close()
			return fmt.Errorf("recovering watch %q: %w", name, err)
		}
		if _, err := f.ssess.coord.Watch(name, q); err != nil {
			f.ssess.close()
			return fmt.Errorf("recovering watch %q: %w", name, err)
		}
	}
	tables := make(map[string]map[string]string)
	for name, pattern := range f.cfg.Durable.Watches {
		tn, w := tenant.SplitName(name)
		if tables[tn] == nil {
			tables[tn] = make(map[string]string)
		}
		tables[tn][w] = pattern
	}
	f.tenants.Restore(tables)
	f.srecov = true
	return nil
}

// handleSharedGraph serves gen and load on the shared session: the one
// cluster is rebuilt and every tenant's watch table reset (their watches
// and version fences died with the old coordinator).
func (f *Frontend) handleSharedGraph(req *server.Request, resp *server.Response) error {
	g, err := f.buildGraph(req)
	if err != nil {
		return err
	}
	f.smu.Lock()
	defer f.smu.Unlock()
	f.srecov = true // an explicit graph supersedes journal recovery
	if err := f.buildCluster(f.ssess, g, f.cfg.Durable != nil); err != nil {
		return err
	}
	f.tenants.Reset()
	g = f.ssess.coord.Graph() // normalized version
	resp.Nodes, resp.Edges = g.NumNodes(), g.NumEdges()
	return nil
}

// buildGraph constructs and size-checks a gen/load graph; the
// construction is shared with the single server (server.BuildGraph), so
// the two vocabularies cannot diverge.
func (f *Frontend) buildGraph(req *server.Request) (*graph.Graph, error) {
	g, err := server.BuildGraph(req)
	if err != nil {
		return nil, err
	}
	if g.Size() > f.cfg.MaxGraphSize {
		return nil, fmt.Errorf("graph size %d exceeds front-end cap %d", g.Size(), f.cfg.MaxGraphSize)
	}
	return g, nil
}

// Watch implements tenant.Registrar: tenant watches land on the current
// shared coordinator under their encoded global names. Indirecting
// through the front end rather than capturing a coordinator keeps the
// registrar valid across graph rebuilds.
func (f *Frontend) Watch(name string, q *core.Pattern) ([]graph.NodeID, error) {
	_, coord, err := f.sharedSession()
	if err != nil {
		return nil, err
	}
	return coord.Watch(name, q)
}

// Unwatch implements tenant.Registrar.
func (f *Frontend) Unwatch(name string) error {
	_, coord, err := f.sharedSession()
	if err != nil {
		return err
	}
	return coord.Unwatch(name)
}

// ClusterHealth is one live cluster session's slice of the front end's
// /healthz document.
type ClusterHealth struct {
	Fragments []FragmentHealth `json:"fragments"`
	Error     string           `json:"error,omitempty"`
}

// Health reports the topology and per-fragment liveness of every live
// cluster session, shaped for the debug listener's /healthz endpoint.
// With no session yet (no client has loaded a graph) the document is
// healthy but empty. The error is non-nil — a 503 from the debug handler
// — when a session has fail-stopped or a fragment's primary fails its
// probe.
func (f *Frontend) Health() (interface{}, error) {
	f.mu.Lock()
	coords := make([]*Coordinator, 0, len(f.coords))
	for c := range f.coords {
		coords = append(coords, c)
	}
	f.mu.Unlock()
	doc := struct {
		Status   string          `json:"status"`
		Sessions int             `json:"sessions"`
		Clusters []ClusterHealth `json:"clusters,omitempty"`
	}{Status: "ok", Sessions: len(coords)}
	var firstErr error
	for _, c := range coords {
		fhs, err := c.Health()
		ch := ClusterHealth{Fragments: fhs}
		if err != nil {
			ch.Error = err.Error()
			if firstErr == nil {
				firstErr = err
			}
		} else {
			for _, fh := range fhs {
				if !fh.PrimaryAlive && firstErr == nil {
					firstErr = fmt.Errorf("fragment %d primary failed its probe: %s", fh.Fragment, fh.PrimaryError)
				}
			}
		}
		doc.Clusters = append(doc.Clusters, ch)
	}
	if firstErr != nil {
		doc.Status = "degraded"
	}
	return doc, firstErr
}

var errNoCluster = errors.New("no graph loaded: run gen or load first")

// buildCluster replaces the session's coordinator with a fresh one over
// g: fresh worker transports, and for a durable session the journal is
// attached (cluster.New records g as the new durable graph).
func (f *Frontend) buildCluster(sess *feSession, g *graph.Graph, durable bool) error {
	// The old cluster's sessions are released first: a failed rebuild
	// leaves the front-end session refusing queries (errNoCluster-style
	// errors via nil coord) rather than serving a graph the client
	// believes it replaced.
	sess.reset()
	ts, err := f.cfg.NewWorkers()
	if err != nil {
		return fmt.Errorf("workers: %w", err)
	}
	if len(ts) == 0 {
		return errors.New("workers: NewWorkers returned an empty set")
	}
	ccfg := f.cfg.Cluster
	if durable {
		ccfg.Journal = f.cfg.Durable.Journal
	} else {
		ccfg.Journal = nil
	}
	if !f.cfg.Isolate && ccfg.MaxWatches == 0 {
		// The shared coordinator aggregates every tenant's watches;
		// quotas are per tenant in the manager, so the per-session cap
		// makes no sense here. An explicit positive cap is respected.
		ccfg.MaxWatches = -1
	}
	coord, err := New(g, ts, ccfg)
	if err != nil {
		CloseAll(ts) // New failed: ownership stayed with us
		return err
	}
	sess.coord = coord
	f.mu.Lock()
	f.coords[coord] = true
	f.mu.Unlock()
	sess.unreg = func() {
		f.mu.Lock()
		delete(f.coords, coord)
		f.mu.Unlock()
	}
	if f.cfg.OnSession != nil {
		sess.stop = f.cfg.OnSession(coord)
	}
	return nil
}

func (f *Frontend) handleMatch(coord *Coordinator, cs *connState, req *server.Request, resp *server.Response) error {
	q, err := core.Parse(req.Pattern)
	if err != nil {
		return err
	}
	res, err := coord.MatchWith(q, f.matchOptions(cs, req))
	if err != nil {
		return err
	}
	server.FillMatches(resp, res.Matches, req.Limit)
	resp.Metrics = &res.Metrics
	return nil
}

// matchOptions builds a read's options; an attached tenant's reads are
// fenced at its last accepted write, so replica routing can never serve
// it a copy that predates its own update.
func (f *Frontend) matchOptions(cs *connState, req *server.Request) *MatchOptions {
	opts := &MatchOptions{
		Engine:  req.Engine,
		Budget:  req.Budget,
		Planner: req.Planner,
	}
	if cs != nil && cs.tenant != "" && f.tenants != nil {
		opts.MinVersion = f.tenants.NoteRead(cs.tenant)
	}
	return opts
}

func (f *Frontend) handleUpdate(sess *feSession, coord *Coordinator, cs *connState, req *server.Request, resp *server.Response) error {
	// The combined-batch fields are coordinator→worker routing, not
	// client vocabulary: the coordinator computes assignment and the
	// affected set itself. Reject rather than silently drop them, as
	// with the other worker-only commands.
	if len(req.Owned) > 0 || req.Scoped || len(req.Affected) > 0 {
		return fmt.Errorf("update fields owned/scoped/affected are not served by the cluster front end; the coordinator computes routing itself")
	}
	if cs != nil {
		if err := f.ensureTenant(cs); err != nil {
			return err
		}
	}
	res, err := coord.Update(req.Updates)
	if err != nil {
		return err
	}
	sess.invalidateStats()
	resp.Nodes, resp.Edges = res.Nodes, res.Edges
	f.finishWrite(cs, res, resp)
	return nil
}

// finishWrite routes an accepted update's deltas and fence. In shared
// mode the writer gets only its own namespace's deltas back (other
// tenants drain theirs with the deltas command) and its fence advances to
// the batch's version token; in Isolate mode the response carries every
// delta, as a private cluster always did.
func (f *Frontend) finishWrite(cs *connState, res *UpdateResult, resp *server.Response) {
	if cs == nil || f.tenants == nil {
		resp.Deltas = res.Deltas
		return
	}
	resp.Deltas = f.tenants.RecordDeltas(cs.tenant, res.Deltas)
	f.tenants.NoteWrite(cs.tenant, res.Version)
	// Post-paid budget accounting: the batch's real cost — the size of
	// the re-verification region the coordinator computed — is debited
	// now that it is known. See tenant.Config.AffectedPerSec.
	f.tenants.ChargeAffected(cs.tenant, res.AffectedSize)
	resp.Session = cs.tenant
}

// handleExplain fans the plan-only command out and returns the merged
// per-fragment plan documents in Profile.
func (f *Frontend) handleExplain(coord *Coordinator, req *server.Request, resp *server.Response) error {
	q, err := core.Parse(req.Pattern)
	if err != nil {
		return err
	}
	ex, err := coord.Explain(q)
	if err != nil {
		return err
	}
	return fillProfile(resp, ex)
}

// handleProfile dispatches like the single server's profile command: a
// pattern profiles a cluster match, an update batch profiles the
// maintenance pipeline. The merged cluster-level document travels in
// Profile with each worker's own document embedded verbatim.
func (f *Frontend) handleProfile(sess *feSession, coord *Coordinator, cs *connState, req *server.Request, resp *server.Response) error {
	switch {
	case len(req.Updates) > 0:
		// Same client-vocabulary boundary as handleUpdate.
		if len(req.Owned) > 0 || req.Scoped || len(req.Affected) > 0 {
			return fmt.Errorf("update fields owned/scoped/affected are not served by the cluster front end; the coordinator computes routing itself")
		}
		if cs != nil {
			if err := f.ensureTenant(cs); err != nil {
				return err
			}
		}
		res, prof, err := coord.UpdateProfiled(req.Updates)
		if err != nil {
			return err
		}
		sess.invalidateStats()
		resp.Nodes, resp.Edges = res.Nodes, res.Edges
		f.finishWrite(cs, res, resp)
		return fillProfile(resp, prof)
	case req.Pattern != "":
		q, err := core.Parse(req.Pattern)
		if err != nil {
			return err
		}
		res, prof, err := coord.ProfileMatch(q, f.matchOptions(cs, req))
		if err != nil {
			return err
		}
		server.FillMatches(resp, res.Matches, req.Limit)
		resp.Metrics = &res.Metrics
		return fillProfile(resp, prof)
	default:
		return fmt.Errorf("profile: request carries neither a pattern nor an update batch")
	}
}

// fillProfile serializes a merged profile document into the response.
func fillProfile(resp *server.Response, doc interface{}) error {
	b, err := json.Marshal(doc)
	if err != nil {
		return fmt.Errorf("profile: %w", err)
	}
	resp.Profile = b
	return nil
}

// handleStats serves statistics. Shared mode fans out to the fragment
// copies through the replica-read router (Coordinator.Stats) — the
// front end no longer clones the authoritative graph, so a stats burst
// neither pins the front-end process nor blocks behind writers.
// Isolate mode keeps the private cluster's frontend-side collection.
// Both shapes render through server.FillStatsRows, so the TopK cap and
// output format are one code path.
func (f *Frontend) handleStats(sess *feSession, coord *Coordinator, cs *connState, req *server.Request, resp *server.Response) error {
	if cs == nil {
		g := coord.Graph()
		server.FillStats(resp, g, sess.cachedStats(g), req.TopK)
		return nil
	}
	var minV uint64
	if cs.tenant != "" && f.tenants != nil {
		// Fenced like a match: a tenant's stats reflect its own writes
		// even when served from a replica.
		minV = f.tenants.Fence(cs.tenant)
	}
	cst, err := coord.Stats(minV)
	if err != nil {
		return err
	}
	server.FillStatsRows(resp, cst.Nodes, cst.Edges, cst.Labels, cst.Rows, req.TopK)
	return nil
}

// handlePartition reports the live fragmentation. Pure coordinator
// bookkeeping under its read lock — no worker round trips, so nothing
// to route.
func (f *Frontend) handlePartition(coord *Coordinator, resp *server.Response) error {
	sizes := coord.FragmentSizes()
	resp.Fragments = sizes
	// Skew over non-empty fragments only (partition.SkewOf, shared with
	// the partition command): an empty fragment means the graph populated
	// fewer workers, not that a balanced partition is maximally skewed.
	resp.Skew = partition.SkewOf(sizes)
	return nil
}
