package cluster

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/gen"
	"repro/internal/server"
)

// TestProfileMatchMergedDocument is the cluster acceptance criterion for
// profiled matches: a workers=2 cluster returns one merged document whose
// per-fragment stages are consistent with the totals — fragment answers
// sum to the merged count, per-fragment compute fits inside the measured
// round trip, and each embedded worker document parses as the server's
// own profile shape.
func TestProfileMatchMergedDocument(t *testing.T) {
	g := gen.Social(gen.DefaultSocial(400, 7))
	c := newEmbedded(t, g, 2, Config{D: 2})
	q := mustParse(t, testPatterns[1])

	plain, err := c.Match(q)
	if err != nil {
		t.Fatal(err)
	}
	res, prof, err := c.ProfileMatch(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(nodeIDs(res.Matches), nodeIDs(plain.Matches)) {
		t.Fatalf("profiled answers %v != plain answers %v", res.Matches, plain.Matches)
	}
	if prof.Op != "match" || prof.Engine != "qmatch" || prof.Workers != 2 {
		t.Fatalf("profile header wrong: %+v", prof)
	}
	if prof.Matches != len(res.Matches) {
		t.Fatalf("prof.Matches = %d, want %d", prof.Matches, len(res.Matches))
	}
	if len(prof.Fragments) != 2 {
		t.Fatalf("fragments = %d, want 2", len(prof.Fragments))
	}
	answers := 0
	for i, f := range prof.Fragments {
		if f.Worker != i {
			t.Errorf("fragment %d has worker id %d", i, f.Worker)
		}
		answers += f.Answers
		if f.ComputeMS > f.RTTMS {
			t.Errorf("fragment %d compute %vms exceeds round trip %vms", i, f.ComputeMS, f.RTTMS)
		}
		if f.RTTMS > prof.TotalMS {
			t.Errorf("fragment %d rtt %vms exceeds total %vms", i, f.RTTMS, prof.TotalMS)
		}
		// The embedded worker document is the server's own profile shape.
		var wd server.MatchProfileDoc
		if err := json.Unmarshal(f.Profile, &wd); err != nil {
			t.Fatalf("fragment %d profile does not parse: %v\n%s", i, err, f.Profile)
		}
		if wd.Op != "match" || wd.Profile == nil {
			t.Errorf("fragment %d worker document incomplete: %s", i, f.Profile)
		}
		if wd.Matches != f.Answers {
			t.Errorf("fragment %d worker reports %d matches, coordinator saw %d", i, wd.Matches, f.Answers)
		}
	}
	// Ownership partitions the candidates, so fragment answers sum to the
	// merged global count.
	if answers != prof.Matches {
		t.Fatalf("fragment answers sum to %d, merged count is %d", answers, prof.Matches)
	}
	// The aggregate metrics fold exactly as Match's do.
	if prof.Metrics != res.Metrics {
		t.Fatalf("profile metrics %+v != result metrics %+v", prof.Metrics, res.Metrics)
	}
	// The whole document serializes.
	if _, err := json.Marshal(prof); err != nil {
		t.Fatalf("marshal merged profile: %v", err)
	}
}

// TestUpdateProfiledWorkRatio is the incremental acceptance criterion: a
// 1-edge batch on a 400-node graph reports an affected region far below
// |V| and stage timings for the contacted workers only.
func TestUpdateProfiledWorkRatio(t *testing.T) {
	g := gen.Social(gen.DefaultSocial(400, 7))
	c := newEmbedded(t, g, 2, Config{D: 2})
	q := mustParse(t, testPatterns[0])
	if _, err := c.Watch("w", q); err != nil {
		t.Fatal(err)
	}

	res, prof, err := c.UpdateProfiled([]server.UpdateSpec{
		{Op: "addEdge", From: 1, To: 2, Label: "follow"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if prof.Op != "update" || prof.BatchSize != 1 {
		t.Fatalf("profile header wrong: %+v", prof)
	}
	if prof.Nodes != c.Graph().NumNodes() {
		t.Fatalf("prof.Nodes = %d, want |V| = %d", prof.Nodes, c.Graph().NumNodes())
	}
	if prof.AffectedSize != res.AffectedSize {
		t.Fatalf("prof.AffectedSize = %d, result says %d", prof.AffectedSize, res.AffectedSize)
	}
	// work ∝ change: a 1-edge batch must re-verify far less than |V|.
	if prof.AffectedSize <= 0 || prof.AffectedSize >= prof.Nodes/2 {
		t.Fatalf("AffectedSize = %d on |V| = %d; want 0 < affected << |V|", prof.AffectedSize, prof.Nodes)
	}
	if prof.WorkRatio <= 0 || prof.WorkRatio >= 0.5 {
		t.Fatalf("WorkRatio = %v, want well below 1", prof.WorkRatio)
	}
	if prof.TotalMS <= 0 || prof.FanoutMS <= 0 {
		t.Fatalf("stage timings missing: %+v", prof)
	}
	if len(prof.Workers) != len(res.Contacted) {
		t.Fatalf("profile has %d worker entries, result contacted %d", len(prof.Workers), len(res.Contacted))
	}
	for i, wp := range prof.Workers {
		if wp.Worker != res.Contacted[i] {
			t.Errorf("worker entry %d is for worker %d, contacted order says %d", i, wp.Worker, res.Contacted[i])
		}
		if wp.RTTMS <= 0 {
			t.Errorf("worker %d missing rtt", wp.Worker)
		}
		var wd server.UpdateProfileDoc
		if err := json.Unmarshal(wp.Profile, &wd); err != nil {
			t.Fatalf("worker %d profile does not parse: %v\n%s", wp.Worker, err, wp.Profile)
		}
		if wd.Op != "update" || !wd.Scoped {
			t.Errorf("worker %d document wrong (want scoped update): %s", wp.Worker, wp.Profile)
		}
	}
	// Profiled and plain updates converge to the same graph state.
	res2, err := c.Update([]server.UpdateSpec{{Op: "removeEdge", From: 1, To: 2, Label: "follow"}})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Edges != res.Edges-1 {
		t.Fatalf("edge counts diverged: %d after remove, %d after profiled add", res2.Edges, res.Edges)
	}
}

// TestFrontendProfileCommands drives explain and profile through the
// front-end wire protocol with the stock client, so any newline-JSON
// client gets cluster-level EXPLAIN/PROFILE documents.
func TestFrontendProfileCommands(t *testing.T) {
	c := startFrontend(t, 2)
	pattern := testPatterns[0]
	if _, err := c.Explain(pattern); err == nil {
		t.Fatal("explain before gen succeeded")
	}
	if _, _, err := c.Gen("social", 200, 9); err != nil {
		t.Fatal(err)
	}

	raw, err := c.Explain(pattern)
	if err != nil {
		t.Fatalf("explain: %v", err)
	}
	var ex ExplainResult
	if err := json.Unmarshal(raw, &ex); err != nil || ex.Workers != 2 || len(ex.Fragments) != 2 {
		t.Fatalf("explain document wrong: %v %s", err, raw)
	}

	plain, err := c.Match(pattern, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.ProfileMatch(pattern, nil)
	if err != nil {
		t.Fatalf("profile match: %v", err)
	}
	if !reflect.DeepEqual(resp.Matches, plain.Matches) {
		t.Fatalf("profiled matches %v != plain matches %v", resp.Matches, plain.Matches)
	}
	var mp MatchProfile
	if err := json.Unmarshal(resp.Profile, &mp); err != nil || mp.Workers != 2 || mp.Matches != resp.Total {
		t.Fatalf("match profile document wrong: %v %s", err, resp.Profile)
	}

	uresp, err := c.ProfileUpdate(server.UpdateSpec{Op: "addEdge", From: 0, To: 1, Label: "follow"})
	if err != nil {
		t.Fatalf("profile update: %v", err)
	}
	var up UpdateProfile
	if err := json.Unmarshal(uresp.Profile, &up); err != nil || up.Op != "update" || up.BatchSize != 1 {
		t.Fatalf("update profile document wrong: %v %s", err, uresp.Profile)
	}
	if up.AffectedSize >= up.Nodes {
		t.Fatalf("AffectedSize %d not below |V| %d", up.AffectedSize, up.Nodes)
	}

	// The coordinator-internal routing fields stay rejected on the
	// profile path too.
	if _, err := c.Do(&server.Request{Cmd: "profile",
		Updates: []server.UpdateSpec{{Op: "addEdge", From: 0, To: 1, Label: "follow"}},
		Scoped:  true}); err == nil {
		t.Fatal("profile update with scoped routing fields succeeded")
	}
}

// TestExplainMerged: explain fans out without executing and returns one
// plan document per fragment.
func TestExplainMerged(t *testing.T) {
	g := gen.Social(gen.DefaultSocial(200, 5))
	c := newEmbedded(t, g, 2, Config{D: 2})
	ex, err := c.Explain(mustParse(t, testPatterns[0]))
	if err != nil {
		t.Fatal(err)
	}
	if ex.Op != "explain" || ex.Workers != 2 || len(ex.Fragments) != 2 {
		t.Fatalf("explain document wrong: %+v", ex)
	}
	for i, f := range ex.Fragments {
		var wd server.ExplainDoc
		if err := json.Unmarshal(f.Plan, &wd); err != nil {
			t.Fatalf("fragment %d plan does not parse: %v\n%s", i, err, f.Plan)
		}
		if wd.Plan == nil || len(wd.Plan.Patterns) == 0 {
			t.Errorf("fragment %d plan empty: %s", i, f.Plan)
		}
	}
}
