package cluster

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/server"
)

// flakyTransport wraps a real in-process worker but fails every command
// named in failOn, simulating a worker dying mid-operation.
type flakyTransport struct {
	Transport
	failOn string
}

func (f *flakyTransport) Do(req *server.Request) (*server.Response, error) {
	if req.Cmd == f.failOn {
		return nil, errors.New("injected transport failure")
	}
	return f.Transport.Do(req)
}

// TestFailStop: with no replicas and no worker pool, a worker failure
// during Watch, Unwatch or Update marks the coordinator failed, and
// every later request is refused instead of answered from possibly
// inconsistent fragments. The failure identifies which worker died and
// during which operation.
func TestFailStop(t *testing.T) {
	for _, failOn := range []string{"watch", "unwatch", "update"} {
		failOn := failOn
		t.Run(failOn, func(t *testing.T) {
			g := gen.Social(gen.DefaultSocial(100, 1))
			healthy := InProcess(server.Config{})
			flaky := &flakyTransport{Transport: InProcess(server.Config{}), failOn: failOn}
			ts := []Transport{healthy, flaky}
			c, err := New(g, ts, Config{D: 2})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { c.Close() })
			q := mustParse(t, testPatterns[0])

			var opErr error
			switch failOn {
			case "watch":
				_, opErr = c.Watch("w", q)
			case "unwatch":
				if _, err := c.Watch("w", q); err != nil {
					t.Fatal(err)
				}
				opErr = c.Unwatch("w")
			case "update":
				// Touch both fragments so the flaky worker is contacted.
				_, opErr = c.Update([]server.UpdateSpec{
					{Op: "addNode", Label: "person"},
					{Op: "addNode", Label: "person"},
				})
			}
			if opErr == nil {
				t.Fatalf("%s with a failing worker succeeded", failOn)
			}
			// The error must identify the failed worker (the flaky one is
			// worker 1) and the operation in flight.
			var we *WorkerError
			if !errors.As(opErr, &we) {
				t.Fatalf("%s error %v is not a *WorkerError", failOn, opErr)
			}
			if we.Worker != 1 {
				t.Errorf("%s: WorkerError.Worker = %d, want 1 (the flaky worker)", failOn, we.Worker)
			}
			if we.Op != failOn {
				t.Errorf("%s: WorkerError.Op = %q, want %q", failOn, we.Op, failOn)
			}
			if !strings.Contains(opErr.Error(), "worker 1") || !strings.Contains(opErr.Error(), failOn) {
				t.Errorf("%s: error %q does not name the worker and operation", failOn, opErr)
			}
			if _, err := c.Match(q); err == nil || !strings.Contains(err.Error(), "failed earlier") {
				t.Fatalf("Match after failed %s: err = %v, want fail-stop refusal", failOn, err)
			}
		})
	}
}

// TestClosedRefusal: a closed coordinator refuses requests with a clean
// error instead of writing to closed worker sessions.
func TestClosedRefusal(t *testing.T) {
	g := gen.Social(gen.DefaultSocial(80, 2))
	c, err := New(g, InProcessN(2, server.Config{}), Config{D: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := c.Match(mustParse(t, testPatterns[0])); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("Match on closed coordinator: err = %v, want closed refusal", err)
	}
}

// TestFrontendFailedRebuild: when re-fragmentation fails partway, the
// front-end session refuses queries instead of serving answers through
// the stale coordinator's tables.
func TestFrontendFailedRebuild(t *testing.T) {
	// The front end dials a fresh worker set per gen/load (the built
	// coordinator owns it); failOn steers each fresh set's second worker.
	failOn := ""
	fe := NewFrontend(FrontendConfig{
		Cluster: Config{D: 2},
		NewWorkers: func() ([]Transport, error) {
			flaky := &flakyTransport{Transport: InProcess(server.Config{}), failOn: failOn}
			return []Transport{InProcess(server.Config{}), flaky}, nil
		},
		Logf: func(string, ...interface{}) {},
	})
	sess := &connState{}
	defer fe.Shutdown(context.Background())

	resp := fe.handle(sess, &server.Request{Cmd: "gen", Kind: "social", Size: 100, Seed: 1})
	if resp.Error != "" {
		t.Fatalf("gen: %s", resp.Error)
	}
	// Second gen fails mid-fragmentation: one worker re-fragmented, one
	// dead.
	failOn = "fragment"
	resp = fe.handle(sess, &server.Request{Cmd: "gen", Kind: "social", Size: 120, Seed: 2})
	if resp.Error == "" {
		t.Fatal("gen with a dying worker succeeded")
	}
	resp = fe.handle(sess, &server.Request{Cmd: "match", Pattern: testPatterns[0]})
	if resp.Error == "" {
		t.Fatal("match served through a stale coordinator after failed re-fragmentation")
	}
	// A successful gen recovers the session.
	failOn = ""
	resp = fe.handle(sess, &server.Request{Cmd: "gen", Kind: "social", Size: 100, Seed: 1})
	if resp.Error != "" {
		t.Fatalf("recovery gen: %s", resp.Error)
	}
	resp = fe.handle(sess, &server.Request{Cmd: "match", Pattern: testPatterns[0]})
	if resp.Error != "" {
		t.Fatalf("match after recovery: %s", resp.Error)
	}
}
