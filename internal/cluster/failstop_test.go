package cluster

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/server"
)

// flakyTransport wraps a real in-process worker but fails every command
// named in failOn, simulating a worker dying mid-operation.
type flakyTransport struct {
	Transport
	failOn string
}

func (f *flakyTransport) Do(req *server.Request) (*server.Response, error) {
	if req.Cmd == f.failOn {
		return nil, errors.New("injected transport failure")
	}
	return f.Transport.Do(req)
}

// TestFailStop: with no replicas and no worker pool, a worker failure
// during Watch, Unwatch or Update marks the coordinator failed, and
// every later request is refused instead of answered from possibly
// inconsistent fragments. The failure identifies which worker died and
// during which operation.
func TestFailStop(t *testing.T) {
	for _, failOn := range []string{"watch", "unwatch", "update"} {
		failOn := failOn
		t.Run(failOn, func(t *testing.T) {
			g := gen.Social(gen.DefaultSocial(100, 1))
			healthy := InProcess(server.Config{})
			flaky := &flakyTransport{Transport: InProcess(server.Config{}), failOn: failOn}
			ts := []Transport{healthy, flaky}
			c, err := New(g, ts, Config{D: 2})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { c.Close() })
			q := mustParse(t, testPatterns[0])

			var opErr error
			switch failOn {
			case "watch":
				_, opErr = c.Watch("w", q)
			case "unwatch":
				if _, err := c.Watch("w", q); err != nil {
					t.Fatal(err)
				}
				opErr = c.Unwatch("w")
			case "update":
				// Touch both fragments so the flaky worker is contacted.
				_, opErr = c.Update([]server.UpdateSpec{
					{Op: "addNode", Label: "person"},
					{Op: "addNode", Label: "person"},
				})
			}
			if opErr == nil {
				t.Fatalf("%s with a failing worker succeeded", failOn)
			}
			// The error must identify the failed worker (the flaky one is
			// worker 1) and the operation in flight.
			var we *WorkerError
			if !errors.As(opErr, &we) {
				t.Fatalf("%s error %v is not a *WorkerError", failOn, opErr)
			}
			if we.Worker != 1 {
				t.Errorf("%s: WorkerError.Worker = %d, want 1 (the flaky worker)", failOn, we.Worker)
			}
			if we.Op != failOn {
				t.Errorf("%s: WorkerError.Op = %q, want %q", failOn, we.Op, failOn)
			}
			if !strings.Contains(opErr.Error(), "worker 1") || !strings.Contains(opErr.Error(), failOn) {
				t.Errorf("%s: error %q does not name the worker and operation", failOn, opErr)
			}
			if _, err := c.Match(q); err == nil || !strings.Contains(err.Error(), "failed earlier") {
				t.Fatalf("Match after failed %s: err = %v, want fail-stop refusal", failOn, err)
			}
		})
	}
}

// TestWatchCapRollback: a worker that refuses a watch registration with
// a protocol error — here its own per-session watch cap, which the
// coordinator cannot see (the shape of a stock remote qgpd behind a
// shared multi-tenant front end whose cap is lifted) — does not
// fail-stop the cluster. The partial registration is rolled back on the
// workers that accepted it, the error goes to the one caller, and the
// cluster keeps serving everyone else.
func TestWatchCapRollback(t *testing.T) {
	g := gen.Social(gen.DefaultSocial(100, 1))
	ts := []Transport{
		InProcess(server.Config{MaxWatches: -1}),
		InProcess(server.Config{MaxWatches: 2}),
	}
	c, err := New(g, ts, Config{D: 2, MaxWatches: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	q := mustParse(t, testPatterns[0])
	for _, name := range []string{"w1", "w2"} {
		if _, err := c.Watch(name, q); err != nil {
			t.Fatalf("Watch(%s): %v", name, err)
		}
	}

	// Third watch: worker 0 accepts, worker 1 rejects at its cap.
	_, err = c.Watch("w3", q)
	if err == nil {
		t.Fatal("watch past the worker-side cap succeeded")
	}
	var we *WorkerError
	if !errors.As(err, &we) {
		t.Fatalf("cap rejection surfaced as %T (%v), want *WorkerError", err, err)
	}
	if we.Worker != 1 || !strings.Contains(err.Error(), "limit") {
		t.Errorf("cap rejection %v does not name worker 1 and its limit", err)
	}

	// Not fail-stopped: reads and writes keep serving, and worker 0's
	// rolled-back registration leaks no w3 delta into updates.
	if _, err := c.Match(q); err != nil {
		t.Fatalf("Match after rejected watch: %v", err)
	}
	res, err := c.Update([]server.UpdateSpec{{Op: "addNode", Label: "person"}})
	if err != nil {
		t.Fatalf("Update after rejected watch: %v", err)
	}
	for _, d := range res.Deltas {
		if d.Watch == "w3" {
			t.Fatalf("orphan registration leaked a w3 delta: %+v", d)
		}
	}

	// Freeing a slot on worker 1 lets the same name register cleanly on
	// every worker; an orphan on worker 0 would reject it as a duplicate.
	if err := c.Unwatch("w1"); err != nil {
		t.Fatalf("Unwatch(w1): %v", err)
	}
	if _, err := c.Watch("w3", q); err != nil {
		t.Fatalf("re-watch of the rolled-back name: %v", err)
	}
	got := c.Watches()
	want := []string{"w2", "w3"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Watches() = %v, want %v", got, want)
	}
}

// TestClosedRefusal: a closed coordinator refuses requests with a clean
// error instead of writing to closed worker sessions.
func TestClosedRefusal(t *testing.T) {
	g := gen.Social(gen.DefaultSocial(80, 2))
	c, err := New(g, InProcessN(2, server.Config{}), Config{D: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := c.Match(mustParse(t, testPatterns[0])); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("Match on closed coordinator: err = %v, want closed refusal", err)
	}
}

// TestFrontendFailedRebuild: when re-fragmentation fails partway, the
// front-end session refuses queries instead of serving answers through
// the stale coordinator's tables.
func TestFrontendFailedRebuild(t *testing.T) {
	// The front end dials a fresh worker set per gen/load (the built
	// coordinator owns it); failOn steers each fresh set's second worker.
	failOn := ""
	fe := NewFrontend(FrontendConfig{
		Cluster: Config{D: 2},
		NewWorkers: func() ([]Transport, error) {
			flaky := &flakyTransport{Transport: InProcess(server.Config{}), failOn: failOn}
			return []Transport{InProcess(server.Config{}), flaky}, nil
		},
		Logf: func(string, ...interface{}) {},
	})
	sess := &connState{}
	defer fe.Shutdown(context.Background())

	resp := fe.handle(sess, &server.Request{Cmd: "gen", Kind: "social", Size: 100, Seed: 1})
	if resp.Error != "" {
		t.Fatalf("gen: %s", resp.Error)
	}
	// Second gen fails mid-fragmentation: one worker re-fragmented, one
	// dead.
	failOn = "fragment"
	resp = fe.handle(sess, &server.Request{Cmd: "gen", Kind: "social", Size: 120, Seed: 2})
	if resp.Error == "" {
		t.Fatal("gen with a dying worker succeeded")
	}
	resp = fe.handle(sess, &server.Request{Cmd: "match", Pattern: testPatterns[0]})
	if resp.Error == "" {
		t.Fatal("match served through a stale coordinator after failed re-fragmentation")
	}
	// A successful gen recovers the session.
	failOn = ""
	resp = fe.handle(sess, &server.Request{Cmd: "gen", Kind: "social", Size: 100, Seed: 1})
	if resp.Error != "" {
		t.Fatalf("recovery gen: %s", resp.Error)
	}
	resp = fe.handle(sess, &server.Request{Cmd: "match", Pattern: testPatterns[0]})
	if resp.Error != "" {
		t.Fatalf("match after recovery: %s", resp.Error)
	}
}
