package cluster

// Replica-read routing: Match, Explain, ProfileMatch and Stats do not
// change fragment state, so they need not pin the primary the way
// updates do. (Partition needs no routing at all — it reports
// coordinator bookkeeping without worker round trips.)
// Each fragment's request is routed to the least-loaded live copy —
// primary or warm replica — which lets k copies serve k overlapping read
// streams (one wire session per copy, each serialized by its transport)
// and scales read throughput with the replication factor.
//
// The routing runs under the read side of c.mu, concurrent with other
// reads, so it must not mutate coordinator bookkeeping:
//
//   - A copy whose transport fails is marked suspect (an atomic flag)
//     and skipped; the next write-locked operation (update, repair)
//     prunes it. No promotion or re-shipping happens here.
//   - When a fragment has no eligible copy left, the read fails with
//     errReadFailover and the caller retries the whole fan-out under
//     the write lock, where sendPrimary can promote a warm replica or
//     re-ship the fragment.
//
// Read-your-writes: every copy carries the coordinator batch version it
// is synced to, and a read fenced with MatchOptions.MinVersion only
// considers copies at or past that version. The primary always
// qualifies — it applies every batch before the coordinator accepts it —
// so a fenced read degrades to the primary rather than failing. Mirrors
// are synchronous today (surviving replicas are always current at
// rest), which makes the fence cheap insurance: it is what keeps a
// tenant's own write visible to its next read even if mirroring ever
// becomes asynchronous or a copy joins mid-history.

import (
	"errors"
	"sync/atomic"

	"repro/internal/client"
	"repro/internal/server"
)

// errReadFailover reports that a fragment had no live eligible copy on
// the lock-free read path; the caller retries under the write lock,
// where failover can run.
var errReadFailover = errors.New("cluster: read routing: no live fragment copy")

// sendRead routes one read-only request to the least-loaded live copy
// of w's fragment whose synced version is at least minV. A transport
// failure marks the copy suspect and the next candidate is tried; a
// protocol error (the worker answered) is returned as is. Callers hold
// c.mu's read side.
func (c *Coordinator) sendRead(w *worker, op string, req *server.Request, minV uint64) (*server.Response, error) {
	for {
		r := w.leastLoadedCopy(minV)
		if r == nil {
			return nil, errReadFailover
		}
		atomic.AddInt64(&r.inflight, 1)
		rt, tracked := r.t.(ReadTracker)
		if tracked {
			rt.ReadStart()
		}
		resp, err := r.t.Do(req)
		if tracked {
			rt.ReadEnd()
		}
		atomic.AddInt64(&r.inflight, -1)
		if err == nil {
			atomic.AddInt64(&r.reads, 1)
			c.om.readRouted(r == w.primary)
			return resp, nil
		}
		var se *client.ServerError
		if errors.As(err, &se) {
			return nil, &WorkerError{Worker: w.id, Endpoint: r.endpoint, Op: op, Err: err}
		}
		r.suspect.Store(true)
		c.om.readSuspected()
		c.cfg.Logf("cluster: fragment %d: copy on endpoint %d failed a routed read, marked suspect: %v", w.id, r.endpoint, err)
	}
}

// leastLoadedCopy picks the eligible copy with the lowest read load:
// not suspect, and synced to minV or later (the primary always
// qualifies). Returns nil when no copy is eligible.
func (w *worker) leastLoadedCopy(minV uint64) *replica {
	var best *replica
	var bestScore int64
	consider := func(r *replica, isPrimary bool) {
		if r.suspect.Load() {
			return
		}
		if !isPrimary && r.version < minV {
			return
		}
		s := r.readScore()
		if best == nil || s < bestScore {
			best, bestScore = r, s
		}
	}
	consider(w.primary, true)
	for _, r := range w.replicas {
		consider(r, false)
	}
	return best
}

// readScore is the copy's current read load: the endpoint-wide
// in-flight routed-read count when the transport is pool-tracked (reads
// from other fragments and sessions on the endpoint count too), the
// copy's own in-flight count otherwise.
func (r *replica) readScore() int64 {
	if rt, ok := r.t.(ReadTracker); ok {
		return int64(rt.ReadLoad())
	}
	return atomic.LoadInt64(&r.inflight)
}

// pruneSuspectsLocked drops every replica a routed read marked suspect,
// so mirrors stop paying round trips to dead sessions. A suspect
// primary is left in place: the next sendPrimary contact trips over it
// and runs real failover (promotion or re-ship), which pruning cannot
// do for lack of a safe sync point here. Callers hold c.mu's write
// side.
func (c *Coordinator) pruneSuspectsLocked() {
	for _, w := range c.workers {
		kept := w.replicas[:0]
		for _, r := range w.replicas {
			if r.suspect.Load() {
				r.t.Close()
				w.dropped++
				c.om.mirrorDropped()
				c.cfg.Logf("cluster: fragment %d: dropping suspect replica on endpoint %d", w.id, r.endpoint)
				continue
			}
			kept = append(kept, r)
		}
		w.replicas = kept
	}
}

// bumpVersionLocked advances the coordinator's batch counter after a
// successful update and stamps every surviving copy as synced to it:
// contacted primaries applied the batch, surviving replicas mirrored it
// (mirror drops the ones that failed), and uncontacted fragments were
// not changed by it, so all their copies are trivially current. Callers
// hold c.mu's write side.
func (c *Coordinator) bumpVersionLocked() uint64 {
	c.version++
	for _, w := range c.workers {
		w.primary.version = c.version
		for _, r := range w.replicas {
			r.version = c.version
		}
	}
	return c.version
}

// ReadDistribution reports, per fragment, how many routed reads each
// copy has served (index 0 is the primary, then the warm replicas in
// promotion order) — the observable behind "a Match burst does not pile
// onto one copy".
func (c *Coordinator) ReadDistribution() [][]int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([][]int64, len(c.workers))
	for i, w := range c.workers {
		counts := make([]int64, 0, len(w.replicas)+1)
		counts = append(counts, atomic.LoadInt64(&w.primary.reads))
		for _, r := range w.replicas {
			counts = append(counts, atomic.LoadInt64(&r.reads))
		}
		out[i] = counts
	}
	return out
}
