package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/obs"
	"repro/internal/server"
)

func quietLogf(string, ...interface{}) {}

// TestClusterMetrics: one match, one watch and one update on an
// instrumented 2-worker cluster must surface in the registry — the
// per-operation counters, the routed-vs-skipped split covering every
// worker, and the per-worker latency histograms.
func TestClusterMetrics(t *testing.T) {
	g := gen.Social(gen.DefaultSocial(200, 7))
	reg := obs.NewRegistry()
	c := newEmbedded(t, g, 2, Config{D: 2, Metrics: reg, Logf: quietLogf})
	q := mustParse(t, testPatterns[0])

	if _, err := c.Match(q); err != nil {
		t.Fatalf("Match: %v", err)
	}
	if _, err := c.Watch("w", q); err != nil {
		t.Fatalf("Watch: %v", err)
	}
	if _, err := c.Update([]server.UpdateSpec{{Op: "addEdge", From: 0, To: 1, Label: "follow"}}); err != nil {
		t.Fatalf("Update: %v", err)
	}

	s := reg.Snapshot()
	for _, name := range []string{"cluster.match.count", "cluster.update.count", "cluster.watch.count"} {
		if got := s.Counters[name]; got != 1 {
			t.Errorf("%s = %d, want 1", name, got)
		}
	}
	// One update batch: every worker is either routed to or skipped.
	routed, skipped := s.Counters["cluster.update.workers_routed"], s.Counters["cluster.update.workers_skipped"]
	if routed+skipped != 2 {
		t.Errorf("workers_routed (%d) + workers_skipped (%d) = %d, want 2", routed, skipped, routed+skipped)
	}
	if routed < 1 {
		t.Errorf("an edge between existing nodes routed to %d workers, want at least 1", routed)
	}
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("cluster.worker.%d.match.ms", i)
		if h, ok := s.Histograms[name]; !ok || h.Count != 1 {
			t.Errorf("%s observed %d times, want 1", name, h.Count)
		}
	}
	if h := s.Histograms["cluster.update.batch_size"]; h.Count != 1 || h.Sum != 1 {
		t.Errorf("cluster.update.batch_size = {count %d, sum %v}, want one observation of 1", h.Count, h.Sum)
	}
	if h := s.Histograms["cluster.update.fanout"]; h.Count != 1 {
		t.Errorf("cluster.update.fanout observed %d times, want 1", h.Count)
	}
}

// obsRing is a single 400-node follow ring: a 1-edge update can only
// affect the d-hop ball around its endpoints, so the affected set is a
// constant independent of |V| — the "work proportional to the change,
// not to the graph" observable.
func obsRing(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode("person")
	}
	for i := 0; i < n; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%n), "follow")
	}
	g.Finalize()
	return g
}

// TestUpdateAffectedSizeProportionalToChange: a 1-edge batch on a
// 400-node graph must report an affected set that is a small constant,
// not a fraction of |V|, and the registry's affected-size histogram
// must record the same number.
func TestUpdateAffectedSizeProportionalToChange(t *testing.T) {
	const n = 400
	g := obsRing(t, n)
	reg := obs.NewRegistry()
	c := newEmbedded(t, g, 2, Config{D: 2, Metrics: reg, Logf: quietLogf})
	if _, err := c.Watch("w", mustParse(t, "qgp\nn xo person *\nn z person\ne xo z follow >=1\n")); err != nil {
		t.Fatalf("Watch: %v", err)
	}
	res, err := c.Update([]server.UpdateSpec{{Op: "addEdge", From: 5, To: 9, Label: "follow"}})
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	if res.AffectedSize == 0 {
		t.Fatal("an edge between candidate nodes affected nobody")
	}
	if res.AffectedSize >= n/10 {
		t.Fatalf("1-edge batch affected %d of %d nodes; want ≪ |V| (the d-hop ball around the endpoints)", res.AffectedSize, n)
	}
	h := reg.Snapshot().Histograms["cluster.update.affected_size"]
	if h.Count != 1 || h.Sum != float64(res.AffectedSize) {
		t.Fatalf("cluster.update.affected_size = {count %d, sum %v}, want one observation of %d", h.Count, h.Sum, res.AffectedSize)
	}
}

// TestMatchMetricsAggregation: a 1-worker cluster is the whole graph on
// one fragment with every candidate owned, so the aggregated per-worker
// engine metrics must equal a single-process run exactly; on 2 workers
// the candidate partition keeps the focus-candidate total identical.
func TestMatchMetricsAggregation(t *testing.T) {
	g := gen.Social(gen.DefaultSocial(300, 11))
	q := mustParse(t, testPatterns[0])

	single, err := match.QMatch(g, q, nil)
	if err != nil {
		t.Fatalf("QMatch: %v", err)
	}

	c1 := newEmbedded(t, g, 1, Config{D: 2, Logf: quietLogf})
	res1, err := c1.Match(q)
	if err != nil {
		t.Fatalf("Match (1 worker): %v", err)
	}
	if !reflect.DeepEqual(res1.Metrics, single.Metrics) {
		t.Errorf("1-worker aggregated metrics %+v != single-process %+v", res1.Metrics, single.Metrics)
	}

	c2 := newEmbedded(t, g, 2, Config{D: 2, Logf: quietLogf})
	res2, err := c2.Match(q)
	if err != nil {
		t.Fatalf("Match (2 workers): %v", err)
	}
	if res2.Metrics.FocusCandidates != single.Metrics.FocusCandidates {
		t.Errorf("2-worker focus candidates %d != single-process %d (ownership partitions the candidates)",
			res2.Metrics.FocusCandidates, single.Metrics.FocusCandidates)
	}
}

// traceSink is a concurrency-safe Logf capture.
type traceSink struct {
	mu    sync.Mutex
	lines []string
}

func (s *traceSink) logf(format string, args ...interface{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lines = append(s.lines, fmt.Sprintf(format, args...))
}

func (s *traceSink) all() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return strings.Join(s.lines, "\n")
}

// TestClusterTrace: with a tracer configured, every fan-out operation
// emits one structured line carrying its per-worker spans and
// annotations.
func TestClusterTrace(t *testing.T) {
	g := gen.Social(gen.DefaultSocial(150, 5))
	sink := &traceSink{}
	c := newEmbedded(t, g, 2, Config{D: 2, Tracer: obs.NewTracer(sink.logf), Logf: quietLogf})
	q := mustParse(t, testPatterns[0])

	if _, err := c.Match(q); err != nil {
		t.Fatalf("Match: %v", err)
	}
	if _, err := c.Update([]server.UpdateSpec{{Op: "addEdge", From: 0, To: 1, Label: "follow"}}); err != nil {
		t.Fatalf("Update: %v", err)
	}

	out := sink.all()
	for _, want := range []string{"op=match", "op=update", "w0:rtt", "merge", "batch=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q:\n%s", want, out)
		}
	}
}

// TestFrontendMetricsCommand: the metrics wire command must return the
// same numbers the registry holds, so a newline-JSON client can scrape
// a cluster without the debug HTTP listener.
func TestFrontendMetricsCommand(t *testing.T) {
	reg := obs.NewRegistry()
	fe := NewFrontend(FrontendConfig{
		Cluster: Config{D: 2, Metrics: reg},
		NewWorkers: func() ([]Transport, error) {
			return InProcessN(2, server.Config{Metrics: reg}), nil
		},
		Logf: quietLogf,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go fe.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		fe.Shutdown(ctx)
	})
	cl, err := client.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })

	if _, _, err := cl.Gen("social", 200, 9); err != nil {
		t.Fatalf("gen: %v", err)
	}
	if _, err := cl.Match(testPatterns[0], nil); err != nil {
		t.Fatalf("match: %v", err)
	}
	if _, _, err := cl.Update(server.UpdateSpec{Op: "addEdge", From: 0, To: 1, Label: "follow"}); err != nil {
		t.Fatalf("update: %v", err)
	}

	resp, err := cl.Do(&server.Request{Cmd: "metrics"})
	if err != nil {
		t.Fatalf("metrics command: %v", err)
	}
	if len(resp.Obs) == 0 {
		t.Fatal("metrics command returned an empty document")
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(resp.Obs, &snap); err != nil {
		t.Fatalf("metrics document does not parse as a snapshot: %v\n%s", err, resp.Obs)
	}
	// The wire numbers are the registry's numbers. The command itself
	// does not touch the cluster counters, so these are stable between
	// the snapshot and the assertion.
	want := reg.Snapshot()
	for _, name := range []string{"cluster.match.count", "cluster.update.count"} {
		if snap.Counters[name] != want.Counters[name] || snap.Counters[name] != 1 {
			t.Errorf("%s over the wire = %d, registry = %d, want 1", name, snap.Counters[name], want.Counters[name])
		}
	}
	// The embedded workers share the registry, so their per-command
	// server metrics ride along in the same document.
	if snap.Counters["server.cmd.match.count"] == 0 {
		t.Error("worker-side server.cmd.match.count missing from the wire snapshot")
	}
	if h, ok := snap.Histograms["cluster.worker.0.update.ms"]; !ok {
		t.Error("per-worker update latency histogram missing from the wire snapshot")
	} else if h.Count == 0 && snap.Histograms["cluster.worker.1.update.ms"].Count == 0 {
		t.Error("no worker recorded an update round trip")
	}
}
