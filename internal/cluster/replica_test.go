package cluster

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/server"
)

// testPool is a WorkerPool over embedded workers that records every
// session it hands out, so tests can kill replicas and observe
// placement.
type testPool struct {
	mu        sync.Mutex
	endpoints int
	next      int
	handed    []*closeCounting
	avoids    []map[int]bool
}

func newTestPool(endpoints int) *testPool { return &testPool{endpoints: endpoints} }

func (p *testPool) Get(weight int, avoid map[int]bool) (Transport, int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ep := p.next % p.endpoints
	p.next++
	t := &closeCounting{Transport: InProcess(server.Config{})}
	p.handed = append(p.handed, t)
	cp := make(map[int]bool, len(avoid))
	for k, v := range avoid {
		cp[k] = v
	}
	p.avoids = append(p.avoids, cp)
	return t, ep, nil
}

func (p *testPool) handedCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.handed)
}

// openCount reports how many handed-out sessions are not yet closed.
func (p *testPool) openCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	open := 0
	for _, t := range p.handed {
		if !t.closed.Load() {
			open++
		}
	}
	return open
}

func (p *testPool) kill(i int) {
	p.mu.Lock()
	t := p.handed[i]
	p.mu.Unlock()
	t.Close()
}

// TestReplicatedNewAndPromotion: with Replicas=2 each fragment gets one
// warm replica from the pool; killing a primary mid-stream promotes the
// replica and the cluster keeps answering exactly like a single
// process.
func TestReplicatedNewAndPromotion(t *testing.T) {
	g := gen.Social(gen.DefaultSocial(200, 13))
	pool := newTestPool(4)
	ts := InProcessN(2, server.Config{})
	c, err := New(g, ts, Config{D: 2, Replicas: 2, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if got := c.ReplicaCounts(); !reflect.DeepEqual(got, []int{1, 1}) {
		t.Fatalf("ReplicaCounts = %v, want [1 1]", got)
	}
	ref := c.Graph()
	q := mustParse(t, testPatterns[0])
	if _, err := c.Watch("w", q); err != nil {
		t.Fatal(err)
	}

	// Kill worker 0's primary abruptly; the next update must promote
	// the warm replica and report the exact delta.
	ts[0].Close()
	specs := []server.UpdateSpec{{Op: "removeNode", From: 3}}
	res, err := c.Update(specs)
	if err != nil {
		t.Fatalf("Update after primary death: %v", err)
	}
	ref = applySpecs(t, ref, specs)
	if res.Nodes != ref.NumNodes() || res.Edges != ref.NumEdges() {
		t.Fatalf("post-failover counts %d/%d != oracle %d/%d", res.Nodes, res.Edges, ref.NumNodes(), ref.NumEdges())
	}
	got, err := c.Match(q)
	if err != nil {
		t.Fatal(err)
	}
	if want := globalAnswers(t, ref, q); !reflect.DeepEqual(nodeIDs(got.Matches), nodeIDs(want)) {
		t.Fatalf("post-failover answers %v != oracle %v", got.Matches, want)
	}
	// Every probe must be healthy again (the dead primary is gone).
	probes, err := c.Probe()
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range probes {
		if pr.Primary != nil {
			t.Fatalf("fragment %d primary unhealthy after failover: %v", pr.Fragment, pr.Primary)
		}
	}
}

// TestFailoverExhaustsReplicasThenReships: when a fragment's primary
// AND its warm replica are both dead, the operation must still succeed
// via the final re-ship from the authoritative graph — the retry budget
// covers every promotion plus the re-ship (regression: the bound used
// to shrink as failover consumed replicas, stranding the last
// successful re-ship unretried).
func TestFailoverExhaustsReplicasThenReships(t *testing.T) {
	g := gen.Social(gen.DefaultSocial(150, 21))
	pool := newTestPool(4)
	ts := InProcessN(2, server.Config{})
	c, err := New(g, ts, Config{D: 2, Replicas: 2, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	ref := c.Graph()

	// Kill fragment 0's primary and its warm replica (the first pool
	// session). With no watches registered, promotion cannot notice the
	// replica is dead until the retried request fails on it.
	ts[0].Close()
	pool.kill(0)

	q := mustParse(t, testPatterns[0])
	got, err := c.Match(q)
	if err != nil {
		t.Fatalf("Match with primary and replica both dead: %v", err)
	}
	if want := globalAnswers(t, ref, q); !reflect.DeepEqual(nodeIDs(got.Matches), nodeIDs(want)) {
		t.Fatalf("answers after double failover %v != oracle %v", got.Matches, want)
	}
}

// TestProtocolErrorDoesNotFailOver: a worker that answers with an error
// response is alive; the coordinator must surface the error without
// killing the worker or consuming replicas or pool sessions.
func TestProtocolErrorDoesNotFailOver(t *testing.T) {
	g := gen.Social(gen.DefaultSocial(120, 5))
	pool := newTestPool(4)
	c, err := New(g, InProcessN(2, server.Config{}), Config{D: 2, Replicas: 2, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	handedBefore := pool.handedCount()

	q := mustParse(t, testPatterns[0])
	if _, err := c.MatchWith(q, &MatchOptions{Engine: "bogus"}); err == nil {
		t.Fatal("bogus engine accepted")
	} else if !strings.Contains(err.Error(), "unknown engine") {
		t.Fatalf("unexpected error: %v", err)
	}
	if got := pool.handedCount(); got != handedBefore {
		t.Fatalf("protocol error consumed %d pool sessions", got-handedBefore)
	}
	if got := c.ReplicaCounts(); !reflect.DeepEqual(got, []int{1, 1}) {
		t.Fatalf("protocol error consumed replicas: %v", got)
	}
	// The cluster is not failed: real queries still work.
	if _, err := c.Match(q); err != nil {
		t.Fatalf("Match after protocol error: %v", err)
	}
}

// TestReplicaDropAndRepair: a replica that dies is dropped at the next
// mirrored batch without disturbing the primary's result, and Repair
// restores the replication factor from the pool.
func TestReplicaDropAndRepair(t *testing.T) {
	g := gen.Social(gen.DefaultSocial(160, 9))
	pool := newTestPool(4)
	c, err := New(g, InProcessN(2, server.Config{}), Config{D: 2, Replicas: 2, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	ref := c.Graph()
	q := mustParse(t, testPatterns[0])
	if _, err := c.Watch("w", q); err != nil {
		t.Fatal(err)
	}

	// The first two pool sessions are the two fragments' replicas; kill
	// both so every fragment loses its mirror.
	pool.kill(0)
	pool.kill(1)
	specs := []server.UpdateSpec{
		{Op: "addEdge", From: 1, To: 2, Label: "follow"},
		{Op: "addEdge", From: int64(ref.NumNodes()) - 2, To: int64(ref.NumNodes()) - 1, Label: "follow"},
	}
	res, err := c.Update(specs)
	if err != nil {
		t.Fatalf("Update with dead replicas: %v", err)
	}
	ref = applySpecs(t, ref, specs)
	if res.Nodes != ref.NumNodes() || res.Edges != ref.NumEdges() {
		t.Fatalf("counts %d/%d != oracle %d/%d", res.Nodes, res.Edges, ref.NumNodes(), ref.NumEdges())
	}
	// Only fragments the batch contacted notice their dead mirror at
	// mirror time; Repair probes and replaces the rest.
	rep, err := c.Repair()
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if got := c.ReplicaCounts(); !reflect.DeepEqual(got, []int{1, 1}) {
		t.Fatalf("ReplicaCounts after Repair = %v, want [1 1] (report %+v)", got, rep)
	}
	if rep.Added == 0 {
		t.Fatalf("Repair added no replicas: %+v", rep)
	}
	// The repaired replicas are faithful mirrors.
	probes, err := c.Probe()
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range probes {
		for i, rerr := range pr.Replicas {
			if rerr != nil {
				t.Fatalf("fragment %d replica %d unhealthy after repair: %v", pr.Fragment, i, rerr)
			}
		}
	}
	if got, err := c.Match(q); err != nil {
		t.Fatal(err)
	} else if want := globalAnswers(t, ref, q); !reflect.DeepEqual(nodeIDs(got.Matches), nodeIDs(want)) {
		t.Fatalf("answers after repair %v != oracle %v", got.Matches, want)
	}
}
