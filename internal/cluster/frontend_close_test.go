package cluster

import (
	"context"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/server"
)

// closeCounting wraps a transport and records whether it was closed.
type closeCounting struct {
	Transport
	closed atomic.Bool
}

func (t *closeCounting) Close() error {
	t.closed.Store(true)
	return t.Transport.Close()
}

// TestFrontendClosesWorkersOnDisconnect: in Isolate mode (the legacy
// cluster-per-connection model) an abrupt client disconnect must tear
// the per-connection cluster down — the coordinator and every worker
// session it owns, including pool-acquired replicas — instead of leaking
// them for the process lifetime. (In the default shared-session mode the
// cluster deliberately outlives connections; TestFrontendSharedSession
// covers that.)
func TestFrontendClosesWorkersOnDisconnect(t *testing.T) {
	var mu sync.Mutex
	var made []*closeCounting
	pool := newTestPool(4)
	fe := NewFrontend(FrontendConfig{
		Cluster: Config{D: 2, Replicas: 2, Pool: pool},
		Isolate: true,
		NewWorkers: func() ([]Transport, error) {
			ts := make([]Transport, 2)
			mu.Lock()
			for i := range ts {
				cc := &closeCounting{Transport: InProcess(server.Config{})}
				made = append(made, cc)
				ts[i] = cc
			}
			mu.Unlock()
			return ts, nil
		},
		Logf: func(string, ...interface{}) {},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go fe.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		fe.Shutdown(ctx)
	})

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	cl := client.NewClient(conn)
	if _, _, err := cl.Gen("social", 150, 4); err != nil {
		t.Fatalf("gen: %v", err)
	}
	mu.Lock()
	workers := len(made)
	mu.Unlock()
	if workers != 2 {
		t.Fatalf("expected 2 worker transports, NewWorkers made %d", workers)
	}
	if got := pool.handedCount(); got != 2 {
		t.Fatalf("expected 2 pool replicas, pool handed out %d", got)
	}

	// Abrupt disconnect: RST instead of FIN, no unwatch/cleanup traffic.
	conn.(*net.TCPConn).SetLinger(0)
	conn.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		allClosed := true
		for _, cc := range made {
			if !cc.closed.Load() {
				allClosed = false
			}
		}
		mu.Unlock()
		if allClosed && pool.openCount() == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker sessions still open 5s after abrupt client disconnect (pool open: %d)", pool.openCount())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
