package cluster

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/parallel"
	"repro/internal/server"
)

// MatchResult is a merged cluster-wide answer set.
type MatchResult struct {
	// Matches is the global focus-node answer set, sorted ascending. It
	// equals the single-process answer set: ownership is a partition of
	// the nodes and fragment-local evaluation is exact for owned nodes.
	Matches []graph.NodeID
	// Metrics aggregates the per-worker engine metrics.
	Metrics match.Metrics
	// PerWorker is each worker's contributed answer count.
	PerWorker []int
}

// MatchOptions tunes one Match call; zero values fall back to the
// coordinator's Config.
type MatchOptions struct {
	Engine  string // per-worker engine: qmatch | qmatchn | enum
	Budget  int64  // extension budget forwarded to workers
	Planner bool   // let each worker plan its matching order from fragment stats
}

// Match evaluates a quantified pattern across the cluster: the pattern is
// fanned out to every worker, each evaluates it over its fragment
// restricted to its owned focus candidates, and the coordinator merges the
// disjoint partial answers. ClusterMatch of the ISSUE's API naming.
func (c *Coordinator) Match(q *core.Pattern) (*MatchResult, error) {
	return c.MatchWith(q, nil)
}

// MatchWith is Match with per-call options.
func (c *Coordinator) MatchWith(q *core.Pattern, opts *MatchOptions) (*MatchResult, error) {
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	if need := parallel.RequiredHops(q); need > c.cfg.D {
		return nil, fmt.Errorf("cluster: pattern needs %d-hop preservation but the fragmentation has d=%d", need, c.cfg.D)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.refuseLocked(); err != nil {
		return nil, err
	}

	engine, budget, planner := c.cfg.Engine, c.cfg.Budget, false
	if opts != nil {
		if opts.Engine != "" {
			engine = opts.Engine
		}
		if opts.Budget > 0 {
			budget = opts.Budget
		}
		planner = opts.Planner
	}
	pattern := q.String()
	responses := make([]*server.Response, len(c.workers))
	err := c.fanOut(func(w *worker) error {
		// Matching does not change fragment state, so a failover here
		// (against the current authoritative graph) and a plain retry
		// are always safe.
		resp, err := c.sendPrimary(w, "match", &server.Request{
			Cmd:     "match",
			Pattern: pattern,
			Engine:  engine,
			Budget:  budget,
			Planner: planner,
		}, c.g)
		if err != nil {
			return err
		}
		responses[w.id] = resp
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := &MatchResult{PerWorker: make([]int, len(c.workers))}
	merged := make(map[graph.NodeID]bool)
	for i, resp := range responses {
		out.PerWorker[i] = len(resp.Matches)
		if err := c.workers[i].mergeGlobal(resp.Matches, merged); err != nil {
			return nil, err
		}
		if resp.Metrics != nil {
			out.Metrics.Add(*resp.Metrics)
		}
	}
	out.Matches = sortedSet(merged)
	return out, nil
}
