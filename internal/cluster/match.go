package cluster

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/server"
)

// MatchResult is a merged cluster-wide answer set.
type MatchResult struct {
	// Matches is the global focus-node answer set, sorted ascending. It
	// equals the single-process answer set: ownership is a partition of
	// the nodes and fragment-local evaluation is exact for owned nodes.
	Matches []graph.NodeID
	// Metrics aggregates the per-worker engine metrics.
	Metrics match.Metrics
	// PerWorker is each worker's contributed answer count.
	PerWorker []int
}

// MatchOptions tunes one Match call; zero values fall back to the
// coordinator's Config.
type MatchOptions struct {
	Engine  string // per-worker engine: qmatch | qmatchn | enum
	Budget  int64  // extension budget forwarded to workers
	Planner bool   // let each worker plan its matching order from fragment stats
	// MinVersion is the read-your-writes fence: the read is only served
	// from fragment copies synced to this coordinator batch version or
	// later (Coordinator.Version / UpdateResult.Version after the
	// caller's last write). The primary always qualifies. 0 accepts any
	// live copy.
	MinVersion uint64
}

// Match evaluates a quantified pattern across the cluster: the pattern is
// fanned out to every worker, each evaluates it over its fragment
// restricted to its owned focus candidates, and the coordinator merges the
// disjoint partial answers. ClusterMatch of the ISSUE's API naming.
func (c *Coordinator) Match(q *core.Pattern) (*MatchResult, error) {
	return c.MatchWith(q, nil)
}

// MatchWith is Match with per-call options.
func (c *Coordinator) MatchWith(q *core.Pattern, opts *MatchOptions) (*MatchResult, error) {
	res, _, err := c.matchWith(q, opts, nil)
	return res, err
}

// ProfileMatch is MatchWith plus a merged cluster-level profile: each
// worker runs the profile command (so its response carries a per-stage
// match profile of its fragment), and the coordinator assembles one
// document with per-fragment compute/round-trip timings and the workers'
// own stage documents embedded verbatim.
func (c *Coordinator) ProfileMatch(q *core.Pattern, opts *MatchOptions) (*MatchResult, *MatchProfile, error) {
	prof := &MatchProfile{Op: "match"}
	res, prof, err := c.matchWith(q, opts, prof)
	return res, prof, err
}

// matchWith runs one cluster match; prof non-nil switches the workers to
// the profile command and collects the merged profile.
//
// The fan-out first runs under the read side of c.mu with each
// fragment's request routed to its least-loaded live copy (readroute.go),
// so concurrent matches overlap across the k copies of every fragment.
// Only when a fragment has no live copy does the call retry under the
// write lock, where sendPrimary can promote a warm replica or re-ship
// the fragment.
func (c *Coordinator) matchWith(q *core.Pattern, opts *MatchOptions, prof *MatchProfile) (res *MatchResult, _ *MatchProfile, err error) {
	if err := q.Validate(); err != nil {
		return nil, nil, fmt.Errorf("cluster: %w", err)
	}
	if need := parallel.RequiredHops(q); need > c.cfg.D {
		return nil, nil, fmt.Errorf("cluster: pattern needs %d-hop preservation but the fragmentation has d=%d", need, c.cfg.D)
	}
	start := time.Now()
	tr := c.cfg.Tracer.Start("match")
	defer func() { tr.Finish(err) }()

	// The failed first attempt returns a nil profile; keep the caller's
	// prof pointer so the write-locked retry still profiles (matchLocked
	// re-initializes it from scratch).
	var out *MatchProfile
	c.mu.RLock()
	res, out, err = c.matchLocked(q, opts, prof, tr, start, true)
	c.mu.RUnlock()
	if errors.Is(err, errReadFailover) {
		// A fragment lost every live copy mid-read: take the write lock,
		// drop the suspects and rerun the fan-out through sendPrimary,
		// which fails over (promotion or re-ship) as needed. Matching
		// does not change fragment state, so the retry is always safe.
		c.om.readFellBack()
		c.mu.Lock()
		c.pruneSuspectsLocked()
		res, out, err = c.matchLocked(q, opts, prof, tr, start, false)
		c.mu.Unlock()
	}
	return res, out, err
}

// matchLocked runs the fan-out and merge under whichever side of c.mu
// the caller holds: readPath true routes each fragment across its
// copies (read lock, no state mutation), false uses sendPrimary with
// full failover (write lock).
func (c *Coordinator) matchLocked(q *core.Pattern, opts *MatchOptions, prof *MatchProfile, tr *obs.Trace, start time.Time, readPath bool) (res *MatchResult, _ *MatchProfile, err error) {
	if err := c.refuseLocked(); err != nil {
		return nil, nil, err
	}

	engine, budget, planner := c.cfg.Engine, c.cfg.Budget, false
	var minV uint64
	if opts != nil {
		if opts.Engine != "" {
			engine = opts.Engine
		}
		if opts.Budget > 0 {
			budget = opts.Budget
		}
		planner = opts.Planner
		minV = opts.MinVersion
	}
	cmd := "match"
	if prof != nil {
		cmd = "profile"
		if engine == "" {
			prof.Engine = "qmatch"
		} else {
			prof.Engine = engine
		}
		prof.Workers = len(c.workers)
		prof.Fragments = make([]FragmentProfile, len(c.workers))
	}
	pattern := q.String()
	responses := make([]*server.Response, len(c.workers))
	err = c.fanOut(func(w *worker) error {
		t0 := time.Now()
		req := &server.Request{
			Cmd:     cmd,
			Pattern: pattern,
			Engine:  engine,
			Budget:  budget,
			Planner: planner,
		}
		var resp *server.Response
		var err error
		if readPath {
			resp, err = c.sendRead(w, cmd, req, minV)
		} else {
			resp, err = c.sendPrimary(w, cmd, req, c.g)
		}
		if err != nil {
			return err
		}
		// The round trip measured here minus the worker-reported compute
		// time (resp.ElapsedMS) is serialization + wire + queueing: the
		// trace annotation makes a slow worker distinguishable from a
		// slow link.
		tr.Span(w.id, "rtt", t0)
		tr.Annotatef("w%d:compute=%.2fms answers=%d", w.id, resp.ElapsedMS, len(resp.Matches))
		if c.om != nil {
			c.om.workerMatchMS[w.id].ObserveSince(t0)
		}
		if prof != nil {
			// Each goroutine writes only its own slot; no lock needed.
			prof.Fragments[w.id] = FragmentProfile{
				Worker:    w.id,
				Answers:   len(resp.Matches),
				ComputeMS: resp.ElapsedMS,
				RTTMS:     msSince(t0),
				Profile:   resp.Profile,
			}
		}
		responses[w.id] = resp
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	tm := time.Now()
	out := &MatchResult{PerWorker: make([]int, len(c.workers))}
	merged := make(map[graph.NodeID]bool)
	for i, resp := range responses {
		out.PerWorker[i] = len(resp.Matches)
		if err := c.workers[i].mergeGlobal(resp.Matches, merged); err != nil {
			return nil, nil, err
		}
		// Per-worker engine metrics fold into the cluster-wide totals:
		// ownership partitions the focus candidates, so sums over the
		// workers are exactly the single-process work counts.
		if resp.Metrics != nil {
			out.Metrics.Add(*resp.Metrics)
		}
	}
	out.Matches = sortedSet(merged)
	tr.Span(-1, "merge", tm)
	if prof != nil {
		prof.Matches = len(out.Matches)
		prof.MergeMS = msSince(tm)
		prof.TotalMS = msSince(start)
		prof.Metrics = out.Metrics
	}
	if c.om != nil {
		c.om.matchCount.Inc()
		c.om.matchMS.ObserveSince(start)
	}
	return out, prof, nil
}
