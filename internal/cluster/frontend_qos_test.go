package cluster

import (
	"context"
	"errors"
	"net"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/tenant"
)

// startQoSFrontend starts a shared-mode front end with admission
// control configured and a metrics registry attached.
func startQoSFrontend(t *testing.T, tcfg tenant.Config, reg *obs.Registry) (string, *Frontend) {
	t.Helper()
	fe := NewFrontend(FrontendConfig{
		Cluster: Config{D: 2, Metrics: reg},
		Tenancy: tcfg,
		NewWorkers: func() ([]Transport, error) {
			return InProcessN(2, server.Config{MaxWatches: -1}), nil
		},
		Logf: func(string, ...interface{}) {},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go fe.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		fe.Shutdown(ctx)
	})
	return ln.Addr().String(), fe
}

// TestFrontendThrottleOnTheWire: a rate-limited tenant's rejection
// travels as a typed retry-after, and the commands that must stay free
// under throttling — stats, deltas — keep working.
func TestFrontendThrottleOnTheWire(t *testing.T) {
	addr, fe := startQoSFrontend(t, tenant.Config{RateQPS: 0.1, RateBurst: 1}, obs.NewRegistry())
	c := dialFrontend(t, addr)
	if _, err := c.Session("t"); err != nil {
		t.Fatal(err)
	}
	// Graph builds are not admission-charged: the cap is on per-tenant
	// cluster work, not on setup.
	if _, _, err := c.Gen("social", 150, 4); err != nil {
		t.Fatalf("gen: %v", err)
	}
	if _, err := c.Match(testPatterns[0], nil); err != nil {
		t.Fatalf("match within burst: %v", err)
	}
	_, err := c.Match(testPatterns[0], nil)
	var se *client.ServerError
	if !errors.As(err, &se) {
		t.Fatalf("match past burst: %v, want *client.ServerError", err)
	}
	// One token at 0.1 qps is 10s away: the advertised backoff must be
	// meaningful, not a rounding artifact.
	if se.RetryAfterMS < 1000 {
		t.Fatalf("throttled response advertises RetryAfterMS=%v, want >= 1000", se.RetryAfterMS)
	}
	// A throttled tenant can still observe and drain: refusing deltas
	// would keep its inbox full — the opposite of the bounded-inbox goal.
	if _, err := c.Stats(3); err != nil {
		t.Fatalf("stats while throttled: %v", err)
	}
	if _, err := c.Deltas(); err != nil {
		t.Fatalf("deltas while throttled: %v", err)
	}
	infos := fe.Tenants().List()
	if len(infos) != 1 || infos[0].Throttled != 1 {
		t.Fatalf("tenant rows: %+v", infos)
	}
}

// TestFrontendTwoTenantFairness is the QoS regression: tenant A
// saturates the shared front end with updates it has no budget for and
// never drains its inbox; tenant B's fenced Match throughput must not
// drop by more than 30%, A's pending inbox must stay bounded (overflow
// to a Resync marker, not growth), and both show up in the per-tenant
// metric series.
func TestFrontendTwoTenantFairness(t *testing.T) {
	reg := obs.NewRegistry()
	// A small post-paid update budget and a tiny inbox cap: the first
	// oversized update drives a tenant deep into debt, and a burst of
	// undrained deltas overflows fast.
	addr, fe := startQoSFrontend(t, tenant.Config{
		AffectedPerSec: 5,
		AffectedBurst:  5,
		MaxPendingIDs:  2,
	}, reg)

	cb := dialFrontend(t, addr)
	if _, err := cb.Session("b"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cb.Gen("social", 400, 9); err != nil {
		t.Fatalf("gen: %v", err)
	}
	ca := dialFrontend(t, addr)
	if _, err := ca.Session("a"); err != nil {
		t.Fatal(err)
	}
	wa, err := ca.Watch("w", testPatterns[0])
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	if len(wa.Matches) < 3 {
		t.Fatalf("pattern has %d answers; pick another seed", len(wa.Matches))
	}

	// B removes three of A's watch answers in one batch: B's fence
	// advances (its later matches are fenced reads), and the delta lands
	// in A's inbox — three ids against a cap of two, so A overflows to a
	// Resync marker instead of growing.
	batch := []server.UpdateSpec{
		{Op: "removeNode", From: wa.Matches[0]},
		{Op: "removeNode", From: wa.Matches[1]},
		{Op: "removeNode", From: wa.Matches[2]},
	}
	if _, _, err := cb.Update(batch...); err != nil {
		t.Fatalf("update: %v", err)
	}

	const rounds = 40
	measure := func() time.Duration {
		t0 := time.Now()
		for i := 0; i < rounds; i++ {
			if _, err := cb.Match(testPatterns[0], nil); err != nil {
				t.Fatalf("match %d: %v", i, err)
			}
		}
		return time.Since(t0)
	}
	baseline := measure()

	// Tenant A hammers updates from two connections in tight loops. Its
	// budget is long since negative, so admission rejects the batches at
	// the manager — cheaply, before any coordinator work.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		h := dialFrontend(t, addr)
		if _, err := h.Session("a"); err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(h *client.Client) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, _, _ = h.Update(server.UpdateSpec{Op: "addEdge", From: 2, To: 3, Label: "follow"})
			}
		}(h)
	}
	contended := measure()
	close(stop)
	wg.Wait()

	// The ≤30% criterion, with a small additive grace so scheduler noise
	// on a loaded CI machine cannot fail a sub-100ms baseline.
	limit := baseline*10/7 + 30*time.Millisecond
	if contended > limit {
		t.Errorf("B's %d fenced matches took %v under A's saturation vs %v alone (limit %v): throughput cut by more than 30%%",
			rounds, contended, baseline, limit)
	}

	var a, b server.TenantInfo
	for _, info := range fe.Tenants().List() {
		switch info.Name {
		case "a":
			a = info
		case "b":
			b = info
		}
	}
	if a.Throttled == 0 {
		t.Error("tenant a was never throttled")
	}
	if a.Overflows < 1 {
		t.Errorf("tenant a overflows = %d, want >= 1", a.Overflows)
	}
	if a.PendingIDs > 2 {
		t.Errorf("tenant a pending inbox %d ids exceeds the cap of 2", a.PendingIDs)
	}
	if b.Throttled != 0 {
		t.Errorf("tenant b throttled %d times; only A was misbehaving", b.Throttled)
	}

	// A's drain reports the hole in its delta stream.
	ds, err := ca.Deltas()
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	resync := false
	for _, d := range ds {
		if d.Watch == "w" && d.Resync {
			resync = true
		}
	}
	if !resync {
		t.Errorf("overflowed watch drained without a resync marker: %+v", ds)
	}

	// Per-tenant series: B's served matches landed in its latency
	// histogram (the windowed-percentile source), A's rejections and
	// overflow in its counters.
	if n := reg.Histogram("tenant.b.match.ms", obs.LatencyBucketsMS).Count(); n < 2*rounds {
		t.Errorf("tenant.b.match.ms observed %d commands, want >= %d", n, 2*rounds)
	}
	if v := reg.Counter("tenant.a.throttled").Value(); v == 0 {
		t.Error("tenant.a.throttled counter is zero")
	}
	if v := reg.Counter("tenant.a.inbox_overflow").Value(); v < 1 {
		t.Errorf("tenant.a.inbox_overflow = %d, want >= 1", v)
	}
}

// TestFrontendStatsConsistency: the shared front end's fanned-out,
// replica-routed stats must be byte-identical to the isolate mode's
// frontend-side collection over the same graph — same counts, same
// label names, same rendered rows — and both must honor TopK the same
// way.
func TestFrontendStatsConsistency(t *testing.T) {
	reg := obs.NewRegistry()
	sharedAddr, _ := startQoSFrontend(t, tenant.Config{}, reg)
	var builds atomic.Int64
	isoAddr, _ := startSharedFrontend(t, true, &builds)

	shared := dialFrontend(t, sharedAddr)
	iso := dialFrontend(t, isoAddr)
	for _, c := range []*client.Client{shared, iso} {
		if _, _, err := c.Gen("social", 300, 5); err != nil {
			t.Fatalf("gen: %v", err)
		}
	}
	routedBefore := reg.Counter("cluster.read.primary").Value() + reg.Counter("cluster.read.replica").Value()
	for _, topK := range []int{0, 3} {
		rs, err := shared.Stats(topK)
		if err != nil {
			t.Fatalf("shared stats: %v", err)
		}
		ri, err := iso.Stats(topK)
		if err != nil {
			t.Fatalf("isolate stats: %v", err)
		}
		if rs.Nodes != ri.Nodes || rs.Edges != ri.Edges || rs.Labels != ri.Labels {
			t.Fatalf("counts diverge: shared %d/%d/%d, isolate %d/%d/%d",
				rs.Nodes, rs.Edges, rs.Labels, ri.Nodes, ri.Edges, ri.Labels)
		}
		if !reflect.DeepEqual(rs.LabelNames, ri.LabelNames) {
			t.Fatalf("label names diverge: %v vs %v", rs.LabelNames, ri.LabelNames)
		}
		if !reflect.DeepEqual(rs.Triples, ri.Triples) {
			t.Fatalf("rendered rows diverge (topK=%d):\nshared  %v\nisolate %v", topK, rs.Triples, ri.Triples)
		}
		if !reflect.DeepEqual(rs.TripleRows, ri.TripleRows) {
			t.Fatalf("structured rows diverge (topK=%d)", topK)
		}
		want := server.StatsTopK(topK)
		if len(rs.TripleRows) < want {
			want = len(rs.TripleRows)
		}
		if len(rs.Triples) != want {
			t.Fatalf("topK=%d rendered %d rows, want %d", topK, len(rs.Triples), want)
		}
	}
	// The shared answers came through the read router, not a front-end
	// graph clone: both fragments' copies served routed stats reads.
	routed := reg.Counter("cluster.read.primary").Value() + reg.Counter("cluster.read.replica").Value()
	if routed-routedBefore < 4 {
		t.Fatalf("routed reads grew by %d over two stats calls on two fragments, want >= 4", routed-routedBefore)
	}
}
