// Package transform implements Lemma 4 of the paper: any QGP with ratio
// aggregates can be rewritten, together with the graph, into an
// equivalent QGP with numeric aggregates only. The construction pads
// every relevant node's child set to a common degree d with dummy
// children — non-matching dummies (a fresh label) to inflate the
// denominator, and matching dummies (a copy of the pattern subtree under
// the ratio edge) to align the numerator — after which σ(e) ≥ p% becomes
// σ(e) ≥ p%·d.
//
// The implementation is exact on the fragment it accepts (see
// CanTransform): positive tree-shaped patterns whose ratio aggregates use
// ≥, are not nested under one another, and whose source nodes have no
// other out-edge with the same label. This covers the star-like workloads
// the paper targets; the construction itself is what the lemma's proof
// sketches, with the floor/ceiling rounding made explicit.
package transform

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
)

// Result is the output of RatioToNumeric.
type Result struct {
	Pattern *core.Pattern // Qd: numeric aggregates only
	Graph   *graph.Graph  // Gd: G plus dummy children
	// OriginalNodes is the number of nodes of the input graph; nodes with
	// id ≥ OriginalNodes are dummies.
	OriginalNodes int
}

// dummyLabel is the non-matching label of denominator-padding dummies.
const dummyLabel = "⊥dummy"

// CanTransform reports whether the pattern is in the fragment Lemma 4's
// construction handles exactly, with a reason when it is not.
func CanTransform(q *core.Pattern) error {
	if !q.IsPositive() {
		return fmt.Errorf("transform: pattern has negated edges; transform Π(Q) and Π(Q+e) separately")
	}
	if len(q.Edges) != len(q.Nodes)-1 || !q.Connected() {
		return fmt.Errorf("transform: pattern is not a tree")
	}
	for _, ei := range q.QuantifiedEdges() {
		e := q.Edges[ei]
		if e.Q.IsRatio() && e.Q.Op() != core.GE {
			return fmt.Errorf("transform: ratio edge %d uses %v; only >= is supported", ei, e.Q.Op())
		}
	}
	// Each ratio edge's label must be globally unique in the pattern:
	// dummy edges carry that label, so a second pattern edge with it could
	// map onto dummy structure and create spurious embeddings. For the
	// same reason the focus must not lie under a ratio edge (its subtree
	// is copied into the graph, and a copied focus could enter the
	// answer), and ratio edges must not nest (padding below a ratio edge
	// would perturb the outer count).
	for _, ei := range ratioEdges(q) {
		e := q.Edges[ei]
		for j, other := range q.Edges {
			if j != ei && other.Label == e.Label {
				return fmt.Errorf("transform: ratio edge label %q is not unique in the pattern", e.Label)
			}
		}
		below := subtreeNodes(q, e.From, e.To)
		if below[q.Focus] {
			return fmt.Errorf("transform: the focus lies under ratio edge %d", ei)
		}
		for _, ej := range ratioEdges(q) {
			if ej == ei {
				continue
			}
			if below[q.Edges[ej].From] {
				return fmt.Errorf("transform: ratio edge %d is nested under ratio edge %d", ej, ei)
			}
		}
	}
	return nil
}

// RatioToNumeric applies the Lemma 4 construction. The result satisfies
// QMatch(Qd, Gd) ∩ originals = QMatch(Q, G); see the package test for the
// executable statement.
func RatioToNumeric(q *core.Pattern, g *graph.Graph) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if err := CanTransform(q); err != nil {
		return nil, err
	}

	gd := cloneGraph(g)
	qd := clonePattern(q)

	for _, ei := range ratioEdges(q) {
		e := q.Edges[ei]
		l := g.LookupLabel(e.Label)
		if l == graph.NoLabel {
			// Unmatchable edge: keep a numeric stand-in; answers stay empty.
			qd.Edges[ei].Q = core.Count(core.GE, 1)
			continue
		}
		bp := e.Q.BasisPoints()

		// Common degree d: the max relevant child count, rounded up so
		// that bp·d is a multiple of 10000 (T integral).
		maxC := 0
		for v := 0; v < g.NumNodes(); v++ {
			if c := g.CountOut(graph.NodeID(v), l); c > maxC {
				maxC = c
			}
		}
		step := 10000 / gcd(bp, 10000)
		d := ((maxC + step - 1) / step) * step
		if d == 0 {
			d = step
		}
		threshold := bp * d / 10000
		qd.Edges[ei].Q = core.Count(core.GE, threshold)

		subtree := subtreeSpec(q, e.From, e.To)
		for v := 0; v < g.NumNodes(); v++ {
			c := g.CountOut(graph.NodeID(v), l)
			if c == 0 {
				continue // the edge cannot embed at v either way
			}
			// m matching dummies shift the numerator so that the numeric
			// threshold at d children equals the ratio threshold at c.
			need := (bp*c + 9999) / 10000 // ceil: the exact GE frontier
			m := threshold - need
			for k := 0; k < m; k++ {
				attachSubtreeCopy(gd, graph.NodeID(v), e.Label, subtree)
			}
			for k := 0; k < d-c-m; k++ {
				dummy := gd.AddNode(dummyLabel)
				gd.AddEdge(graph.NodeID(v), dummy, e.Label)
			}
		}
	}
	gd.Finalize()
	return &Result{Pattern: qd, Graph: gd, OriginalNodes: g.NumNodes()}, nil
}

// ratioEdges returns the indexes of ratio-quantified edges.
func ratioEdges(q *core.Pattern) []int {
	var out []int
	for i, e := range q.Edges {
		if e.Q.IsRatio() {
			out = append(out, i)
		}
	}
	return out
}

// subtreeNodes returns the node set on the child side of tree edge
// (from, to): nodes reachable from to without crossing back through from.
func subtreeNodes(q *core.Pattern, from, to int) map[int]bool {
	adj := make([][]int, len(q.Nodes))
	for _, e := range q.Edges {
		adj[e.From] = append(adj[e.From], e.To)
		adj[e.To] = append(adj[e.To], e.From)
	}
	seen := map[int]bool{from: true, to: true}
	stack := []int{to}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	delete(seen, from)
	return seen
}

// subtree is the pattern fragment hanging under a ratio edge, in a form
// ready to copy into the graph.
type subtree struct {
	labels []string // node labels; index 0 is the ratio edge's target
	edges  []subtreeEdge
}

type subtreeEdge struct {
	from, to int
	label    string
}

func subtreeSpec(q *core.Pattern, from, to int) subtree {
	nodes := subtreeNodes(q, from, to)
	index := map[int]int{to: 0}
	st := subtree{labels: []string{q.Nodes[to].Label}}
	for u := range nodes {
		if u == to {
			continue
		}
		index[u] = len(st.labels)
		st.labels = append(st.labels, q.Nodes[u].Label)
	}
	for _, e := range q.Edges {
		if nodes[e.From] && nodes[e.To] {
			st.edges = append(st.edges, subtreeEdge{index[e.From], index[e.To], e.Label})
		}
	}
	return st
}

// attachSubtreeCopy adds a fresh copy of the subtree as a child of v.
func attachSubtreeCopy(g *graph.Graph, v graph.NodeID, edgeLabel string, st subtree) {
	ids := make([]graph.NodeID, len(st.labels))
	for i, l := range st.labels {
		ids[i] = g.AddNode(l)
	}
	g.AddEdge(v, ids[0], edgeLabel)
	for _, e := range st.edges {
		g.AddEdge(ids[e.from], ids[e.to], e.label)
	}
}

func cloneGraph(g *graph.Graph) *graph.Graph {
	out := graph.New(g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		out.AddNode(g.NodeLabelName(graph.NodeID(v)))
	}
	for v := 0; v < g.NumNodes(); v++ {
		for _, e := range g.Out(graph.NodeID(v)) {
			out.AddEdge(graph.NodeID(v), e.To, g.LabelName(e.Label))
		}
	}
	return out
}

func clonePattern(q *core.Pattern) *core.Pattern {
	out := core.NewPattern()
	for _, n := range q.Nodes {
		out.AddNode(n.Name, n.Label)
	}
	out.Focus = q.Focus
	out.Edges = append([]core.PEdge(nil), q.Edges...)
	return out
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
