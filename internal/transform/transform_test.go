package transform

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/match"
)

func TestCanTransform(t *testing.T) {
	ok := core.NewPattern()
	ok.AddNode("xo", "person")
	ok.AddNode("z", "person")
	ok.AddNode("y", "album")
	ok.AddEdge("xo", "z", "follow", core.RatioPercent(core.GE, 80))
	ok.AddEdge("z", "y", "like", core.Exists())
	if err := CanTransform(ok); err != nil {
		t.Errorf("valid pattern rejected: %v", err)
	}

	neg := core.NewPattern()
	neg.AddNode("xo", "person")
	neg.AddNode("z", "person")
	neg.AddEdge("xo", "z", "follow", core.Negated())
	if err := CanTransform(neg); err == nil {
		t.Error("negated pattern accepted")
	}

	dupLabel := core.NewPattern()
	dupLabel.AddNode("xo", "person")
	dupLabel.AddNode("a", "person")
	dupLabel.AddNode("b", "person")
	dupLabel.AddEdge("xo", "a", "follow", core.RatioPercent(core.GE, 50))
	dupLabel.AddEdge("a", "b", "follow", core.Exists())
	if err := CanTransform(dupLabel); err == nil {
		t.Error("duplicate ratio label accepted")
	}

	nested := core.NewPattern()
	nested.AddNode("xo", "person")
	nested.AddNode("a", "person")
	nested.AddNode("b", "album")
	nested.AddEdge("xo", "a", "follow", core.RatioPercent(core.GE, 50))
	nested.AddEdge("a", "b", "like", core.RatioPercent(core.GE, 50))
	if err := CanTransform(nested); err == nil {
		t.Error("nested ratio edges accepted")
	}

	eqRatio := core.NewPattern()
	eqRatio.AddNode("xo", "person")
	eqRatio.AddNode("a", "person")
	eqRatio.AddEdge("xo", "a", "follow", core.Universal())
	if err := CanTransform(eqRatio); err == nil {
		t.Error("EQ ratio accepted (only >= is in the fragment)")
	}
}

func TestRatioToNumericHandWorked(t *testing.T) {
	// Three people: 4/5, 3/5 and 2/3 of followees like the album. The
	// ratio ≥ 66% keeps the first and third.
	g := graph.New(24)
	album := g.AddNode("album")
	mk := func(total, likers int) graph.NodeID {
		p := g.AddNode("person")
		for i := 0; i < total; i++ {
			z := g.AddNode("person")
			g.AddEdge(p, z, "follow")
			if i < likers {
				g.AddEdge(z, album, "like")
			}
		}
		return p
	}
	a := mk(5, 4)
	b := mk(5, 3)
	c := mk(3, 2)
	g.Finalize()

	q := core.NewPattern()
	q.AddNode("xo", "person")
	q.AddNode("z", "person")
	q.AddNode("y", "album")
	q.AddEdge("xo", "z", "follow", core.RatioPercent(core.GE, 66))
	q.AddEdge("z", "y", "like", core.Exists())

	orig, err := match.QMatch(g, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig.Matches, []graph.NodeID{a, c}) {
		t.Fatalf("original answer = %v, want [%d %d] (b=%d excluded)", orig.Matches, a, c, b)
	}

	res, err := RatioToNumeric(q, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pattern.QuantifiedEdges()) != 1 || res.Pattern.Edges[0].Q.IsRatio() {
		t.Fatalf("transformed pattern still has ratios:\n%s", res.Pattern)
	}
	got, err := match.QMatch(res.Graph, res.Pattern, nil)
	if err != nil {
		t.Fatal(err)
	}
	onOriginals := filterOriginals(got.Matches, res.OriginalNodes)
	if !reflect.DeepEqual(onOriginals, orig.Matches) {
		t.Fatalf("Lemma 4 equality violated: transformed=%v original=%v", onOriginals, orig.Matches)
	}
}

func filterOriginals(vs []graph.NodeID, n int) []graph.NodeID {
	var out []graph.NodeID
	for _, v := range vs {
		if int(v) < n {
			out = append(out, v)
		}
	}
	return out
}

// Property: Lemma 4 — Q(xo, G) = Qd(xo, Gd) on original nodes, over
// random graphs and random transformable patterns.
func TestQuickLemma4(t *testing.T) {
	iters := 120
	if testing.Short() {
		iters = 25
	}
	for seed := 0; seed < iters; seed++ {
		r := rand.New(rand.NewSource(int64(seed)))
		g := randomGraph(r)
		q := randomTransformablePattern(r)
		if CanTransform(q) != nil {
			continue
		}
		orig, err := match.QMatch(g, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RatioToNumeric(q, g)
		if err != nil {
			t.Fatal(err)
		}
		got, err := match.QMatch(res.Graph, res.Pattern, nil)
		if err != nil {
			t.Fatal(err)
		}
		onOriginals := filterOriginals(got.Matches, res.OriginalNodes)
		if len(onOriginals) == 0 && len(orig.Matches) == 0 {
			continue
		}
		if !reflect.DeepEqual(onOriginals, orig.Matches) {
			t.Fatalf("seed %d: transformed=%v original=%v\npattern:\n%s",
				seed, onOriginals, orig.Matches, q)
		}
		// Dummies must never enter the answer (the focus is never under a
		// ratio edge in the accepted fragment).
		if len(onOriginals) != len(got.Matches) {
			t.Fatalf("seed %d: dummy node in the answer: %v", seed, got.Matches)
		}
	}
}

func randomGraph(r *rand.Rand) *graph.Graph {
	nodeLabels := []string{"a", "b", "c"}
	edgeLabels := []string{"R", "S", "T"}
	n := 4 + r.Intn(14)
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode(nodeLabels[r.Intn(len(nodeLabels))])
	}
	m := r.Intn(4 * n)
	for i := 0; i < m; i++ {
		a, b := graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n))
		if a != b {
			g.AddEdge(a, b, edgeLabels[r.Intn(len(edgeLabels))])
		}
	}
	g.Finalize()
	return g
}

// randomTransformablePattern builds tree patterns with one or two GE-ratio
// edges on the focus, each with a distinct edge label.
func randomTransformablePattern(r *rand.Rand) *core.Pattern {
	nodeLabels := []string{"a", "b", "c"}
	edgeLabels := []string{"R", "S", "T"}
	for {
		p := core.NewPattern()
		n := 2 + r.Intn(3)
		for i := 0; i < n; i++ {
			p.AddNode(fmt.Sprintf("u%d", i), nodeLabels[r.Intn(len(nodeLabels))])
		}
		ratioLabel := edgeLabels[r.Intn(len(edgeLabels))]
		for i := 1; i < n; i++ {
			parent := r.Intn(i)
			label := edgeLabels[r.Intn(len(edgeLabels))]
			q := core.Exists()
			if parent == 0 && i == 1 {
				label = ratioLabel
				q = core.Ratio(core.GE, 1+r.Intn(9999))
			} else if label == ratioLabel {
				continue // keep the ratio label unique
			}
			p.AddEdge(fmt.Sprintf("u%d", parent), fmt.Sprintf("u%d", i), label, q)
		}
		if len(p.Edges) != n-1 {
			continue
		}
		if p.Validate() != nil || CanTransform(p) != nil {
			continue
		}
		return p
	}
}
