package partition

import (
	"fmt"

	"repro/internal/graph"
)

// Extend incrementally adapts a d-hop preserving partition to a larger
// radius d′ (the Remark of §5.2: for a query with radius d′ > d, each
// worker incrementally loads the missing Nd′−d rings of its border nodes
// instead of repartitioning). Ownership is unchanged; each fragment loads
// exactly the nodes its owned neighborhoods now additionally need. The
// receiver is not modified.
func (p *Partition) Extend(dNew int) (*Partition, error) {
	if dNew < p.D {
		return nil, fmt.Errorf("partition: cannot shrink from d=%d to d=%d", p.D, dNew)
	}
	out := &Partition{G: p.G, D: dNew, Fragments: make([]*Fragment, len(p.Fragments))}
	if dNew == p.D {
		for i, f := range p.Fragments {
			c := *f
			out.Fragments[i] = &c
		}
		return out, nil
	}

	bfs := newBFS(p.G.NumNodes())
	for i, f := range p.Fragments {
		present := make(map[graph.NodeID]bool, len(f.Nodes))
		for _, v := range f.Nodes {
			present[v] = true
		}
		work := f.Work
		for _, v := range f.Owned {
			nd := bfs.neighborhood(p.G, v, dNew)
			loaded := 0
			for _, u := range nd {
				if !present[u] {
					present[u] = true
					loaded++
				}
			}
			// Incremental cost: only newly loaded data plus the ring scan.
			work += loaded + 1
		}
		nf := &Fragment{
			Worker: f.Worker,
			Owned:  append([]graph.NodeID(nil), f.Owned...),
			Work:   work,
		}
		nf.Nodes = sortedKeys(present)
		nf.Size = fragmentSize(p.G, present)
		out.Fragments[i] = nf
	}
	return out, nil
}
