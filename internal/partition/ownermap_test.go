package partition

import (
	"testing"

	"repro/internal/gen"
)

// TestOwnerMap: every node maps to exactly the worker whose fragment owns
// it, and no node is unowned.
func TestOwnerMap(t *testing.T) {
	g := gen.Social(gen.DefaultSocial(200, 2))
	p, err := DPar(g, Config{Workers: 3, D: 2})
	if err != nil {
		t.Fatal(err)
	}
	owner := p.OwnerMap()
	if len(owner) != g.NumNodes() {
		t.Fatalf("owner map covers %d nodes, graph has %d", len(owner), g.NumNodes())
	}
	owned := 0
	for _, f := range p.Fragments {
		for _, v := range f.Owned {
			if owner[v] != f.Worker {
				t.Fatalf("node %d: owner map says %d, fragment says %d", v, owner[v], f.Worker)
			}
			owned++
		}
	}
	if owned != g.NumNodes() {
		t.Fatalf("fragments own %d nodes, graph has %d", owned, g.NumNodes())
	}
	for v, w := range owner {
		if w < 0 {
			t.Fatalf("node %d unowned", v)
		}
	}
}

// TestOwnedCounts: the placement-load view agrees with the fragments
// and covers the whole graph.
func TestOwnedCounts(t *testing.T) {
	g := gen.Social(gen.DefaultSocial(200, 2))
	p, err := DPar(g, Config{Workers: 3, D: 2})
	if err != nil {
		t.Fatal(err)
	}
	counts := p.OwnedCounts()
	if len(counts) != 3 {
		t.Fatalf("OwnedCounts has %d entries, want 3", len(counts))
	}
	total := 0
	for i, n := range counts {
		if n != len(p.Fragments[i].Owned) {
			t.Fatalf("worker %d: OwnedCounts %d != fragment owned %d", i, n, len(p.Fragments[i].Owned))
		}
		total += n
	}
	if total != g.NumNodes() {
		t.Fatalf("owned counts sum to %d, graph has %d nodes", total, g.NumNodes())
	}
}
