package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestAssignMKPBasic(t *testing.T) {
	items := []Item{
		{ID: 0, Weight: 5, Prefer: -1},
		{ID: 1, Weight: 3, Prefer: -1},
		{ID: 2, Weight: 4, Prefer: -1},
	}
	got := AssignMKP(items, []int{8, 5})
	// LPT order 5,4,3: 5→bin0 (rem 3), 4→bin1 (rem 1), 3→bin0 (rem 0).
	loads := []int{0, 0}
	for i, bin := range got {
		if bin < 0 {
			t.Fatalf("item %d unassigned: %v", i, got)
		}
		loads[bin] += items[i].Weight
	}
	if loads[0] != 8 || loads[1] != 4 {
		t.Fatalf("loads = %v, want [8 4]", loads)
	}
}

func TestAssignMKPPrefersHome(t *testing.T) {
	items := []Item{{ID: 0, Weight: 2, Prefer: 1}}
	got := AssignMKP(items, []int{100, 10})
	if got[0] != 1 {
		t.Fatalf("preferred bin ignored: %v", got)
	}
	// When the preferred bin is full, fall back to the roomiest.
	got = AssignMKP([]Item{{ID: 0, Weight: 20, Prefer: 1}}, []int{100, 10})
	if got[0] != 0 {
		t.Fatalf("fallback bin = %d, want 0", got[0])
	}
	// When nothing fits, report -1.
	got = AssignMKP([]Item{{ID: 0, Weight: 200, Prefer: -1}}, []int{100, 10})
	if got[0] != -1 {
		t.Fatalf("infeasible item assigned to %d", got[0])
	}
}

// Property: AssignMKP never overfills a bin.
func TestQuickMKPCapacity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nBins := 1 + r.Intn(6)
		caps := make([]int, nBins)
		for i := range caps {
			caps[i] = r.Intn(50)
		}
		items := make([]Item, r.Intn(30))
		for i := range items {
			items[i] = Item{ID: i, Weight: 1 + r.Intn(20), Prefer: r.Intn(nBins+1) - 1}
		}
		got := AssignMKP(items, caps)
		loads := make([]int, nBins)
		for i, bin := range got {
			if bin >= nBins {
				return false
			}
			if bin >= 0 {
				loads[bin] += items[i].Weight
			}
		}
		for b := range loads {
			if loads[b] > caps[b] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDParInvariantsSocial(t *testing.T) {
	g := gen.Social(gen.DefaultSocial(800, 3))
	for _, n := range []int{1, 2, 4} {
		for _, d := range []int{1, 2} {
			p, err := DPar(g, Config{Workers: n, D: d})
			if err != nil {
				t.Fatalf("DPar(n=%d,d=%d): %v", n, d, err)
			}
			if err := p.Validate(); err != nil {
				t.Fatalf("DPar(n=%d,d=%d) invariants: %v", n, d, err)
			}
		}
	}
}

func TestDParInvariantsSmallWorld(t *testing.T) {
	g := gen.SmallWorld(gen.SmallWorldConfig{Nodes: 600, Edges: 1500, Seed: 9})
	p, err := DPar(g, Config{Workers: 3, D: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDParSingleWorker(t *testing.T) {
	g := gen.Knowledge(gen.DefaultKnowledge(300, 1))
	p, err := DPar(g, Config{Workers: 1, D: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Fragments) != 1 {
		t.Fatalf("fragments = %d", len(p.Fragments))
	}
	f := p.Fragments[0]
	if len(f.Owned) != g.NumNodes() {
		t.Fatalf("single worker owns %d of %d nodes", len(f.Owned), g.NumNodes())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDParErrors(t *testing.T) {
	g := gen.Knowledge(gen.DefaultKnowledge(50, 1))
	if _, err := DPar(g, Config{Workers: 0, D: 1}); err == nil {
		t.Error("Workers=0 accepted")
	}
	if _, err := DPar(g, Config{Workers: 2, D: -1}); err == nil {
		t.Error("negative D accepted")
	}
}

func TestDParEmptyGraph(t *testing.T) {
	g := graph.New(0)
	g.Finalize()
	p, err := DPar(g, Config{Workers: 3, D: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDParD0(t *testing.T) {
	// d=0 preserves nothing beyond the node itself: base partition owns
	// everything in place.
	g := gen.Knowledge(gen.DefaultKnowledge(200, 4))
	p, err := DPar(g, Config{Workers: 4, D: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, f := range p.Fragments {
		total += len(f.Owned)
	}
	if total != g.NumNodes() {
		t.Fatalf("owned %d of %d", total, g.NumNodes())
	}
}

func TestSkewAndWork(t *testing.T) {
	g := gen.Social(gen.DefaultSocial(1500, 5))
	p, err := DPar(g, Config{Workers: 4, D: 2})
	if err != nil {
		t.Fatal(err)
	}
	skew := p.Skew()
	if skew <= 0 || skew > 1 {
		t.Fatalf("skew = %f out of range", skew)
	}
	// The paper reports skew ≥ 0.8 at n=8; our BFS chunking plus MKP should
	// comfortably clear a looser bar on this workload.
	if skew < 0.5 {
		t.Errorf("skew = %f, fragments badly unbalanced", skew)
	}
	if p.MaxWork() <= 0 || p.TotalWork() < p.MaxWork() {
		t.Fatalf("work accounting broken: max=%d total=%d", p.MaxWork(), p.TotalWork())
	}
	// More workers must not increase the per-worker work.
	p8, err := DPar(g, Config{Workers: 8, D: 2})
	if err != nil {
		t.Fatal(err)
	}
	if p8.MaxWork() > p.MaxWork() {
		t.Errorf("MaxWork grew with more workers: n=4 %d, n=8 %d", p.MaxWork(), p8.MaxWork())
	}
}

func TestSkewOfIgnoresEmptyFragments(t *testing.T) {
	cases := []struct {
		sizes []int
		want  float64
	}{
		{nil, 0},
		{[]int{0, 0, 0}, 0},           // all empty: no load, no skew
		{[]int{5, 5, 0}, 1},           // an unpopulated worker is not imbalance
		{[]int{4, 8}, 0.5},            // real imbalance still shows
		{[]int{0, 3, 0, 12, 6}, 0.25}, // empties dropped, min/max over the rest
	}
	for _, c := range cases {
		if got := SkewOf(c.sizes); got != c.want {
			t.Errorf("SkewOf(%v) = %v, want %v", c.sizes, got, c.want)
		}
	}
}
