// Package partition implements the d-hop preserving graph partition of §5:
// a balanced base partition, border-node discovery, neighborhood loading
// balanced by a multiple-knapsack assignment, and a completion phase, so
// that every node's d-hop neighborhood is fully contained in the fragment
// that owns the node. Quantified patterns of radius ≤ d then evaluate on
// each fragment independently, with no inter-fragment communication
// (Lemma 9(1)).
package partition

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Config controls DPar.
type Config struct {
	Workers int
	D       int // hop radius to preserve (the paper's d; queries need radius ≤ d)
	// BalanceC is the fragment capacity multiplier c: each fragment's
	// size (nodes + edges, counting loaded neighborhoods) is capped at
	// c·|G|/n during the knapsack phase. Default 2.5.
	BalanceC float64
}

// Fragment is the data one worker manages: the nodes materialized at the
// worker (base chunk plus loaded neighborhoods) and the nodes it owns —
// the focus candidates it is responsible for answering, each with its full
// d-hop neighborhood present locally.
type Fragment struct {
	Worker int
	Nodes  []graph.NodeID // materialized nodes, ascending
	Owned  []graph.NodeID // owned (covered) nodes, ascending
	Size   int            // |nodes| + |edges| of the induced subgraph
	Work   int            // bookkeeping cost incurred building this fragment
}

// Partition is a d-hop preserving partition of a graph.
type Partition struct {
	G         *graph.Graph
	D         int
	Fragments []*Fragment
}

// DPar computes a d-hop preserving partition (§5.2):
//
//  1. base partition: a BFS-ordered chunking into Workers balanced pieces
//     (BFS order keeps neighborhoods contiguous, shrinking borders);
//  2. border discovery: nodes whose d-hop neighborhood leaves their chunk;
//  3. balanced loading: each border node's Nd(v) is assigned to a fragment
//     by the multiple-knapsack heuristic, subject to the c·|G|/n cap;
//  4. completion: still-uncovered nodes go to the currently smallest
//     fragment, so the partition is complete.
func DPar(g *graph.Graph, cfg Config) (*Partition, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("partition: need at least 1 worker, got %d", cfg.Workers)
	}
	if cfg.D < 0 {
		return nil, fmt.Errorf("partition: negative hop radius %d", cfg.D)
	}
	if cfg.BalanceC == 0 {
		cfg.BalanceC = 2.5
	}
	n := cfg.Workers
	p := &Partition{G: g, D: cfg.D, Fragments: make([]*Fragment, n)}
	for i := range p.Fragments {
		p.Fragments[i] = &Fragment{Worker: i}
	}
	if g.NumNodes() == 0 {
		return p, nil
	}

	// (1) Base partition: BFS order over the whole graph, cut into n
	// equal-count chunks.
	order := bfsOrder(g)
	home := make([]int, g.NumNodes())
	chunk := (len(order) + n - 1) / n
	for i, v := range order {
		home[v] = i / chunk
	}

	// (2) Border discovery with early exit: the BFS from v stops at the
	// first foreign node. Full neighborhoods are collected only for border
	// nodes. Work accounting: each worker scans its chunk.
	type borderNode struct {
		v     graph.NodeID
		nodes []graph.NodeID // Nd(v)
		size  int
	}
	var borders []borderNode
	fragNodes := make([]map[graph.NodeID]bool, n)
	for i := range fragNodes {
		fragNodes[i] = make(map[graph.NodeID]bool)
	}
	for _, v := range order {
		fragNodes[home[v]][v] = true
	}
	bfs := newBFS(g.NumNodes())
	for _, v := range order {
		h := home[v]
		inside, visited := bfs.insideFragment(g, v, cfg.D, home, h)
		p.Fragments[h].Work += visited
		if inside {
			p.Fragments[h].Owned = append(p.Fragments[h].Owned, v)
			continue
		}
		nd := bfs.neighborhood(g, v, cfg.D)
		p.Fragments[h].Work += len(nd)
		borders = append(borders, borderNode{
			v:     v,
			nodes: append([]graph.NodeID(nil), nd...),
			size:  bfs.size(g, nd),
		})
	}

	// (3) Balanced neighborhood loading via MKP.
	capTotal := int(cfg.BalanceC * float64(g.Size()) / float64(n))
	caps := make([]int, n)
	baseSizes := baseFragmentSizes(g, fragNodes)
	for i := range caps {
		caps[i] = capTotal - baseSizes[i]
		if caps[i] < 0 {
			caps[i] = 0
		}
	}
	items := make([]Item, len(borders))
	for i, b := range borders {
		items[i] = Item{ID: i, Weight: b.size, Prefer: home[b.v]}
	}
	assignment := AssignMKP(items, caps)
	loads := append([]int(nil), baseSizes...)
	for i, bin := range assignment {
		b := borders[i]
		if bin < 0 {
			continue
		}
		loadNeighborhood(p.Fragments[bin], fragNodes[bin], b.nodes)
		p.Fragments[bin].Owned = append(p.Fragments[bin].Owned, b.v)
		p.Fragments[bin].Work += b.size
		loads[bin] += b.size
	}

	// (4) Completion: place leftovers on the smallest fragment.
	for i, bin := range assignment {
		if bin >= 0 {
			continue
		}
		b := borders[i]
		smallest := 0
		for j := 1; j < n; j++ {
			if loads[j] < loads[smallest] {
				smallest = j
			}
		}
		loadNeighborhood(p.Fragments[smallest], fragNodes[smallest], b.nodes)
		p.Fragments[smallest].Owned = append(p.Fragments[smallest].Owned, b.v)
		p.Fragments[smallest].Work += b.size
		loads[smallest] += b.size
	}

	// Materialize fragment node lists and sizes.
	for i, f := range p.Fragments {
		f.Nodes = sortedKeys(fragNodes[i])
		f.Owned = sortNodes(f.Owned)
		f.Size = fragmentSize(g, fragNodes[i])
	}
	return p, nil
}

// OwnerMap returns node → owning worker for every graph node (-1 for a
// node no fragment owns, which Validate rejects) — the routing-table view
// of the partition for callers that look up owners by node rather than
// iterating fragments.
func (p *Partition) OwnerMap() []int {
	owner := make([]int, p.G.NumNodes())
	for i := range owner {
		owner[i] = -1
	}
	for _, f := range p.Fragments {
		for _, v := range f.Owned {
			owner[v] = f.Worker
		}
	}
	return owner
}

// OwnedCounts returns each fragment's owned-node count, indexed by
// worker. This is the per-fragment answering load the partition assigned
// — the cluster layer uses it as the placement weight when choosing
// which pool endpoints host a fragment's replicas.
func (p *Partition) OwnedCounts() []int {
	counts := make([]int, len(p.Fragments))
	for i, f := range p.Fragments {
		counts[i] = len(f.Owned)
	}
	return counts
}

// Skew returns min/max fragment size over the NON-EMPTY fragments, in
// (0, 1]; the paper reports ≥ 0.8 at n = 8. Empty fragments are
// excluded: they carry no load, so a partition whose populated
// fragments are perfectly balanced used to report 0 — "maximally
// skewed" — just because the graph was smaller than the worker count.
// All fragments empty yields 0.
func (p *Partition) Skew() float64 {
	sizes := make([]int, len(p.Fragments))
	for i, f := range p.Fragments {
		sizes[i] = f.Size
	}
	return SkewOf(sizes)
}

// SkewOf is Skew over a plain size slice — shared with the cluster
// front end, which reports the skew of live fragment sizes without
// holding a Partition.
func SkewOf(sizes []int) float64 {
	min, max := -1, 0
	for _, s := range sizes {
		if s == 0 {
			continue
		}
		if s > max {
			max = s
		}
		if min < 0 || s < min {
			min = s
		}
	}
	if max == 0 {
		return 0
	}
	return float64(min) / float64(max)
}

// MaxWork returns the maximum per-worker bookkeeping work — the simulated
// parallel cost of building the partition.
func (p *Partition) MaxWork() int {
	max := 0
	for _, f := range p.Fragments {
		if f.Work > max {
			max = f.Work
		}
	}
	return max
}

// TotalWork returns the summed bookkeeping work across workers — the
// sequential cost of building the partition.
func (p *Partition) TotalWork() int {
	total := 0
	for _, f := range p.Fragments {
		total += f.Work
	}
	return total
}

// Validate checks the partition invariants: every graph node owned exactly
// once, and every owned node's d-hop neighborhood materialized in its
// fragment (the covering property).
func (p *Partition) Validate() error {
	ownedBy := make([]int, p.G.NumNodes())
	for i := range ownedBy {
		ownedBy[i] = -1
	}
	for _, f := range p.Fragments {
		present := make(map[graph.NodeID]bool, len(f.Nodes))
		for _, v := range f.Nodes {
			present[v] = true
		}
		for _, v := range f.Owned {
			if ownedBy[v] >= 0 {
				return fmt.Errorf("partition: node %d owned by workers %d and %d", v, ownedBy[v], f.Worker)
			}
			ownedBy[v] = f.Worker
			for _, u := range p.G.Neighborhood(v, p.D) {
				if !present[u] {
					return fmt.Errorf("partition: worker %d owns %d but misses neighbor %d", f.Worker, v, u)
				}
			}
		}
	}
	for v, w := range ownedBy {
		if w < 0 {
			return fmt.Errorf("partition: node %d is not owned by any worker", v)
		}
	}
	return nil
}

func bfsOrder(g *graph.Graph) []graph.NodeID {
	seen := make([]bool, g.NumNodes())
	order := make([]graph.NodeID, 0, g.NumNodes())
	for start := 0; start < g.NumNodes(); start++ {
		if seen[start] {
			continue
		}
		queue := []graph.NodeID{graph.NodeID(start)}
		seen[start] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			for _, e := range g.Out(v) {
				if !seen[e.To] {
					seen[e.To] = true
					queue = append(queue, e.To)
				}
			}
			for _, e := range g.In(v) {
				if !seen[e.To] {
					seen[e.To] = true
					queue = append(queue, e.To)
				}
			}
		}
	}
	return order
}

func loadNeighborhood(f *Fragment, present map[graph.NodeID]bool, nodes []graph.NodeID) {
	for _, u := range nodes {
		present[u] = true
	}
}

func baseFragmentSizes(g *graph.Graph, fragNodes []map[graph.NodeID]bool) []int {
	sizes := make([]int, len(fragNodes))
	for i, m := range fragNodes {
		sizes[i] = fragmentSize(g, m)
	}
	return sizes
}

func fragmentSize(g *graph.Graph, present map[graph.NodeID]bool) int {
	edges := 0
	for v := range present {
		for _, e := range g.Out(v) {
			if present[e.To] {
				edges++
			}
		}
	}
	return len(present) + edges
}

func sortedKeys(m map[graph.NodeID]bool) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	return sortNodes(out)
}

func sortNodes(vs []graph.NodeID) []graph.NodeID {
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return vs
}
