package partition

import "sort"

// Item is a multiple-knapsack item: DPar uses one item per border node,
// with weight |Nd(v)| and unit value.
type Item struct {
	ID     int
	Weight int
	// Prefer, when ≥ 0, is the bin that already holds most of the item
	// (the border node's base fragment); the greedy assigner tries it
	// first to minimize data movement.
	Prefer int
}

// AssignMKP assigns items to bins with the given remaining capacities,
// maximizing covered items while keeping loads balanced. It stands in for
// the Chekuri–Khanna PTAS the paper invokes (see DESIGN.md §3): heaviest
// items first (LPT), each placed into its preferred bin when feasible and
// otherwise into the feasible bin with the largest remaining capacity.
// The result maps each item index to a bin index, or -1 when no bin fits.
func AssignMKP(items []Item, capacities []int) []int {
	remaining := append([]int(nil), capacities...)
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := items[order[a]], items[order[b]]
		if ia.Weight != ib.Weight {
			return ia.Weight > ib.Weight
		}
		return ia.ID < ib.ID
	})

	out := make([]int, len(items))
	for _, idx := range order {
		it := items[idx]
		bin := -1
		if it.Prefer >= 0 && it.Prefer < len(remaining) && remaining[it.Prefer] >= it.Weight {
			bin = it.Prefer
		} else {
			best := -1
			for b, cap := range remaining {
				if cap >= it.Weight && (best < 0 || cap > remaining[best]) {
					best = b
				}
			}
			bin = best
		}
		out[idx] = bin
		if bin >= 0 {
			remaining[bin] -= it.Weight
		}
	}
	return out
}
