package partition

import (
	"reflect"
	"testing"

	"repro/internal/gen"
)

func TestExtendPreservesInvariants(t *testing.T) {
	g := gen.Social(gen.DefaultSocial(600, 9))
	p, err := DPar(g, Config{Workers: 3, D: 1})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := p.Extend(2)
	if err != nil {
		t.Fatal(err)
	}
	if p2.D != 2 {
		t.Fatalf("extended D = %d", p2.D)
	}
	if err := p2.Validate(); err != nil {
		t.Fatalf("extended partition invalid: %v", err)
	}
	// Ownership is unchanged.
	for i := range p.Fragments {
		if !reflect.DeepEqual(p.Fragments[i].Owned, p2.Fragments[i].Owned) {
			t.Fatalf("fragment %d ownership changed", i)
		}
	}
	// The original is untouched.
	if p.D != 1 {
		t.Fatal("Extend mutated the receiver")
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("original partition broken after Extend: %v", err)
	}
}

func TestExtendSameD(t *testing.T) {
	g := gen.Knowledge(gen.DefaultKnowledge(300, 2))
	p, err := DPar(g, Config{Workers: 2, D: 2})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := p.Extend(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := range p.Fragments {
		if p.Fragments[i].Size != p2.Fragments[i].Size {
			t.Fatal("same-d Extend changed fragment sizes")
		}
	}
}

func TestExtendRejectsShrink(t *testing.T) {
	g := gen.Knowledge(gen.DefaultKnowledge(200, 2))
	p, err := DPar(g, Config{Workers: 2, D: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Extend(1); err == nil {
		t.Fatal("shrinking Extend accepted")
	}
}

func TestExtendMatchesFreshPartitionCoverage(t *testing.T) {
	// Extended fragments must cover at least what a fresh d=2 partition
	// covers for the same owned nodes (the covering property is what
	// parallel matching relies on; sizes may differ).
	g := gen.SmallWorld(gen.SmallWorldConfig{Nodes: 400, Edges: 900, Seed: 4})
	p1, err := DPar(g, Config{Workers: 3, D: 1})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := p1.Extend(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.Validate(); err != nil {
		t.Fatal(err)
	}
}
