package partition

import "repro/internal/graph"

// bfsScratch runs repeated bounded BFS traversals without per-call
// allocation, using version stamps for the visited set. DPar visits every
// node's d-hop neighborhood, so this is the partitioner's hot path.
type bfsScratch struct {
	stamp   []uint32
	version uint32
	buf     []graph.NodeID
}

func newBFS(n int) *bfsScratch {
	return &bfsScratch{stamp: make([]uint32, n)}
}

func (b *bfsScratch) reset() {
	b.version++
	if b.version == 0 {
		for i := range b.stamp {
			b.stamp[i] = 0
		}
		b.version = 1
	}
	b.buf = b.buf[:0]
}

// neighborhood returns the nodes within d undirected hops of v. The
// returned slice aliases the scratch buffer and is valid until the next
// call.
func (b *bfsScratch) neighborhood(g *graph.Graph, v graph.NodeID, d int) []graph.NodeID {
	b.reset()
	b.stamp[v] = b.version
	b.buf = append(b.buf, v)
	frontier := 0
	for hop := 0; hop < d; hop++ {
		end := len(b.buf)
		for ; frontier < end; frontier++ {
			u := b.buf[frontier]
			for _, e := range g.Out(u) {
				if b.stamp[e.To] != b.version {
					b.stamp[e.To] = b.version
					b.buf = append(b.buf, e.To)
				}
			}
			for _, e := range g.In(u) {
				if b.stamp[e.To] != b.version {
					b.stamp[e.To] = b.version
					b.buf = append(b.buf, e.To)
				}
			}
		}
	}
	return b.buf
}

// insideFragment reports whether Nd(v) stays within the fragment h of the
// home assignment, stopping at the first foreign node. It also returns the
// number of nodes visited (work accounting).
func (b *bfsScratch) insideFragment(g *graph.Graph, v graph.NodeID, d int, home []int, h int) (bool, int) {
	b.reset()
	b.stamp[v] = b.version
	b.buf = append(b.buf, v)
	frontier := 0
	for hop := 0; hop < d; hop++ {
		end := len(b.buf)
		for ; frontier < end; frontier++ {
			u := b.buf[frontier]
			for _, e := range g.Out(u) {
				if b.stamp[e.To] != b.version {
					if home[e.To] != h {
						return false, len(b.buf)
					}
					b.stamp[e.To] = b.version
					b.buf = append(b.buf, e.To)
				}
			}
			for _, e := range g.In(u) {
				if b.stamp[e.To] != b.version {
					if home[e.To] != h {
						return false, len(b.buf)
					}
					b.stamp[e.To] = b.version
					b.buf = append(b.buf, e.To)
				}
			}
		}
	}
	return true, len(b.buf)
}

// size returns |nodes| + |induced edges| for a neighborhood whose stamps
// are still current (call immediately after neighborhood).
func (b *bfsScratch) size(g *graph.Graph, nodes []graph.NodeID) int {
	edges := 0
	for _, u := range nodes {
		for _, e := range g.Out(u) {
			if b.stamp[e.To] == b.version {
				edges++
			}
		}
	}
	return len(nodes) + edges
}
