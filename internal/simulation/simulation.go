// Package simulation implements the graph-simulation candidate filter of
// the paper's Appendix B (Lemma 13): a quantifier-aware dual simulation
// that over-approximates isomorphism participation and is used by QMatch
// to shrink candidate sets before search.
package simulation

import (
	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/graph"
)

// Candidates returns, for each pattern node u, the set of graph nodes that
// (quantified-)simulate u. The result over-approximates the match sets
// Q(u, G): every node appearing as h(u) in a valid quantified match of the
// pattern's positive part survives the refinement.
//
// The initial sets are label-based. Refinement then repeatedly removes a
// candidate v of u when
//
//   - some non-negated out-edge e = (u, u′) has fewer than need(e, v)
//     children of v (via e's label) left in C(u′), where need is the
//     numeric threshold of e's quantifier at total |Me(v)| (Lemma 13's
//     |R(vx,v,G)| ⊙ p test, with need = 1 for existential edges), or
//   - some non-negated in-edge (u″, u) leaves v without any candidate
//     parent in C(u″).
//
// When quantified is false, thresholds are ignored and need is always 1
// (plain dual simulation); this is used for differential testing.
//
// The boolean result is false when some pattern node ends up with an empty
// candidate set (the pattern has no matches at all).
func Candidates(g *graph.Graph, p *core.Pattern, quantified bool) ([]*bitset.Set, bool) {
	n := g.NumNodes()
	sets := make([]*bitset.Set, len(p.Nodes))
	for u, pn := range p.Nodes {
		sets[u] = bitset.New(n)
		for _, v := range g.NodesByLabelName(pn.Label) {
			sets[u].Add(int(v))
		}
		if sets[u].Empty() {
			return sets, false
		}
	}

	edgeLabel := make([]graph.LabelID, len(p.Edges))
	for i, e := range p.Edges {
		edgeLabel[i] = g.LookupLabel(e.Label)
		if edgeLabel[i] == graph.NoLabel && !e.IsNegated() {
			// A required edge label absent from the graph: no matches.
			for u := range sets {
				sets[u].Clear()
			}
			return sets, false
		}
	}

	for changed := true; changed; {
		changed = false
		for u := range p.Nodes {
			var removed []int
			sets[u].ForEach(func(vi int) bool {
				if !simOK(g, p, sets, edgeLabel, u, graph.NodeID(vi), quantified) {
					removed = append(removed, vi)
				}
				return true
			})
			for _, vi := range removed {
				sets[u].Remove(vi)
				changed = true
			}
			if sets[u].Empty() {
				return sets, false
			}
		}
	}
	return sets, true
}

// simOK checks the local simulation conditions for candidate v of pattern
// node u.
func simOK(g *graph.Graph, p *core.Pattern, sets []*bitset.Set, edgeLabel []graph.LabelID, u int, v graph.NodeID, quantified bool) bool {
	for i, e := range p.Edges {
		if e.IsNegated() {
			continue
		}
		l := edgeLabel[i]
		if e.From == u {
			total := g.CountOut(v, l)
			need := 1
			if quantified {
				var ok bool
				need, ok = e.Q.Threshold(total)
				if !ok {
					return false
				}
				if need < 1 {
					need = 1 // the edge must still be embeddable
				}
			}
			cnt := 0
			for _, ge := range g.OutByLabel(v, l) {
				if sets[e.To].Contains(int(ge.To)) {
					cnt++
					if cnt >= need {
						break
					}
				}
			}
			if cnt < need {
				return false
			}
		}
		if e.To == u {
			found := false
			for _, ge := range g.InByLabel(v, l) {
				if sets[e.From].Contains(int(ge.To)) {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
	}
	return true
}
