package simulation_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/fixture"
	"repro/internal/graph"
	"repro/internal/simulation"
)

func TestCandidatesOnG1(t *testing.T) {
	f := fixture.NewG1()
	q := fixture.Q2() // universal pattern: xo -follow(=100%)-> z -recom-> Redmi
	sets, ok := simulation.Candidates(f.G, q, false)
	if !ok {
		t.Fatal("plain simulation found no candidates")
	}
	// Plain simulation: xo candidates are all followers (x1, x2, x3).
	xo, _ := q.NodeIndex("xo")
	if got := sets[xo].Count(); got != 3 {
		t.Errorf("plain C(xo) = %d, want 3", got)
	}

	qsets, ok := simulation.Candidates(f.G, q, true)
	if !ok {
		t.Fatal("quantified simulation found no candidates")
	}
	// Quantified (=100%): x3 is pruned — v4 never simulates z (no recom).
	if qsets[xo].Contains(int(f.X3)) {
		t.Error("quantified simulation kept x3, whose followee v4 lacks recom")
	}
	if !qsets[xo].Contains(int(f.X1)) || !qsets[xo].Contains(int(f.X2)) {
		t.Error("quantified simulation dropped a true match")
	}
}

func TestCandidatesEmptyLabel(t *testing.T) {
	f := fixture.NewG1()
	p := core.NewPattern()
	p.AddNode("xo", "martian")
	p.AddNode("z", "person")
	p.AddEdge("xo", "z", "follow", core.Exists())
	if _, ok := simulation.Candidates(f.G, p, false); ok {
		t.Error("absent node label should yield no candidates")
	}

	p2 := core.NewPattern()
	p2.AddNode("xo", "person")
	p2.AddNode("z", "person")
	p2.AddEdge("xo", "z", "teleport", core.Exists())
	if _, ok := simulation.Candidates(f.G, p2, false); ok {
		t.Error("absent edge label should yield no candidates")
	}
}

func TestNegatedEdgesIgnored(t *testing.T) {
	// Simulation on a full negative pattern must not force negated edges
	// to exist.
	f := fixture.NewG2()
	q := fixture.Q5()
	sets, ok := simulation.Candidates(f.G, q, false)
	if !ok {
		t.Fatal("simulation failed on Q5")
	}
	xo, _ := q.NodeIndex("xo")
	if sets[xo].Count() == 0 {
		t.Error("negated edges should not constrain candidates")
	}
}

// Soundness property: every image of every stratified isomorphism survives
// plain simulation, and every image of a quantifier-valid match survives
// quantified simulation. Verified against brute-force enumeration.
func TestQuickSoundness(t *testing.T) {
	nodeLabels := []string{"a", "b"}
	edgeLabels := []string{"R", "S"}
	for seed := 0; seed < 150; seed++ {
		r := rand.New(rand.NewSource(int64(seed)))
		n := 3 + r.Intn(8)
		g := graph.New(n)
		for i := 0; i < n; i++ {
			g.AddNode(nodeLabels[r.Intn(2)])
		}
		for i := 0; i < r.Intn(3*n); i++ {
			a, b := graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n))
			if a != b {
				g.AddEdge(a, b, edgeLabels[r.Intn(2)])
			}
		}
		g.Finalize()

		p := core.NewPattern()
		k := 2 + r.Intn(3)
		for i := 0; i < k; i++ {
			p.AddNode(fmt.Sprintf("u%d", i), nodeLabels[r.Intn(2)])
		}
		for i := 1; i < k; i++ {
			q := core.Exists()
			if r.Intn(3) == 0 {
				q = core.Count(core.GE, 1+r.Intn(2))
			}
			p.AddEdge(fmt.Sprintf("u%d", r.Intn(i)), fmt.Sprintf("u%d", i), edgeLabels[r.Intn(2)], q)
		}
		if p.Validate() != nil {
			continue
		}

		sets, ok := simulation.Candidates(g, p, false)
		images := isoImages(g, p)
		if !ok {
			if len(images[0]) != 0 {
				t.Fatalf("seed %d: simulation empty but isomorphisms exist", seed)
			}
			continue
		}
		for u, vs := range images {
			for v := range vs {
				if !sets[u].Contains(int(v)) {
					t.Fatalf("seed %d: plain simulation dropped image %d of node %d", seed, v, u)
				}
			}
		}
	}
}

// isoImages returns, per pattern node, the set of graph nodes appearing in
// some stratified isomorphism (brute force).
func isoImages(g *graph.Graph, p *core.Pattern) []map[graph.NodeID]bool {
	images := make([]map[graph.NodeID]bool, len(p.Nodes))
	for i := range images {
		images[i] = map[graph.NodeID]bool{}
	}
	assign := make([]graph.NodeID, len(p.Nodes))
	used := map[graph.NodeID]bool{}
	var rec func(u int)
	rec = func(u int) {
		if u == len(p.Nodes) {
			for _, e := range p.Edges {
				l := g.LookupLabel(e.Label)
				if l == graph.NoLabel || !g.HasEdge(assign[e.From], assign[e.To], l) {
					return
				}
			}
			for i, v := range assign {
				images[i][v] = true
			}
			return
		}
		for v := 0; v < g.NumNodes(); v++ {
			w := graph.NodeID(v)
			if used[w] || g.NodeLabelName(w) != p.Nodes[u].Label {
				continue
			}
			assign[u] = w
			used[w] = true
			rec(u + 1)
			used[w] = false
		}
	}
	rec(0)
	return images
}
