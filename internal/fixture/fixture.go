// Package fixture encodes the running examples of the paper — graphs G1
// and G2 of Figure 2 and patterns Q1..Q5 of Figures 1 and 3 — together
// with the answer sets the paper derives for them (Examples 3, 4, 6, 7).
// Tests across the repository assert against these known-good values.
package fixture

import (
	"repro/internal/core"
	"repro/internal/graph"
)

// G1 holds the social graph of Figure 2 (left) and handles to its nodes.
type G1 struct {
	G                  *graph.Graph
	X1, X2, X3         graph.NodeID
	V0, V1, V2, V3, V4 graph.NodeID
	Redmi              graph.NodeID
}

// NewG1 builds G1: x1 follows v0; x2 follows v1,v2; x3 follows v2,v3,v4;
// v0..v3 recommend Redmi 2A; v4 gives it a bad rating.
func NewG1() *G1 {
	g := graph.New(9)
	f := &G1{G: g}
	f.X1 = g.AddNode("person")
	f.X2 = g.AddNode("person")
	f.X3 = g.AddNode("person")
	f.V0 = g.AddNode("person")
	f.V1 = g.AddNode("person")
	f.V2 = g.AddNode("person")
	f.V3 = g.AddNode("person")
	f.V4 = g.AddNode("person")
	f.Redmi = g.AddNode("Redmi 2A")

	g.AddEdge(f.X1, f.V0, "follow")
	g.AddEdge(f.X2, f.V1, "follow")
	g.AddEdge(f.X2, f.V2, "follow")
	g.AddEdge(f.X3, f.V2, "follow")
	g.AddEdge(f.X3, f.V3, "follow")
	g.AddEdge(f.X3, f.V4, "follow")
	g.AddEdge(f.V0, f.Redmi, "recom")
	g.AddEdge(f.V1, f.Redmi, "recom")
	g.AddEdge(f.V2, f.Redmi, "recom")
	g.AddEdge(f.V3, f.Redmi, "recom")
	g.AddEdge(f.V4, f.Redmi, "bad_rating")
	g.Finalize()
	return f
}

// G2 holds the knowledge graph of Figure 2 (right).
type G2 struct {
	G                  *graph.Graph
	X4, X5, X6         graph.NodeID
	V5, V6, V7, V8, V9 graph.NodeID
	Prof, PhD, UK      graph.NodeID
}

// NewG2 builds G2: x4..x6 are professors in the UK; x4 advises v5,v6;
// x5 advises v6,v7; x6 advises v8,v9; v6..v9 are professors; v5..v9 hold
// PhDs; x4 also holds a PhD (and so violates Q4's negation).
func NewG2() *G2 {
	g := graph.New(12)
	f := &G2{G: g}
	f.X4 = g.AddNode("person")
	f.X5 = g.AddNode("person")
	f.X6 = g.AddNode("person")
	f.V5 = g.AddNode("person")
	f.V6 = g.AddNode("person")
	f.V7 = g.AddNode("person")
	f.V8 = g.AddNode("person")
	f.V9 = g.AddNode("person")
	f.Prof = g.AddNode("prof")
	f.PhD = g.AddNode("PhD")
	f.UK = g.AddNode("UK")

	for _, x := range []graph.NodeID{f.X4, f.X5, f.X6} {
		g.AddEdge(x, f.Prof, "is_a")
	}
	g.AddEdge(f.Prof, f.UK, "in")
	g.AddEdge(f.X4, f.PhD, "is_a")
	for _, v := range []graph.NodeID{f.V5, f.V6, f.V7, f.V8, f.V9} {
		g.AddEdge(v, f.PhD, "is_a")
	}
	for _, v := range []graph.NodeID{f.V6, f.V7, f.V8, f.V9} {
		g.AddEdge(v, f.Prof, "is_a")
	}
	g.AddEdge(f.X4, f.V5, "advisor")
	g.AddEdge(f.X4, f.V6, "advisor")
	g.AddEdge(f.X5, f.V6, "advisor")
	g.AddEdge(f.X5, f.V7, "advisor")
	g.AddEdge(f.X6, f.V8, "advisor")
	g.AddEdge(f.X6, f.V9, "advisor")
	g.Finalize()
	return f
}

// Q1 is the social-marketing QGP of Example 1: xo is in a music club and
// at least 80% of the people xo follows like album y.
func Q1() *core.Pattern {
	p := core.NewPattern()
	p.AddNode("xo", "person")
	p.AddNode("club", "music club")
	p.AddNode("z", "person")
	p.AddNode("y", "album")
	p.AddEdge("xo", "club", "in", core.Exists())
	p.AddEdge("xo", "z", "follow", core.RatioPercent(core.GE, 80))
	p.AddEdge("z", "y", "like", core.Exists())
	return p
}

// Q2 is the universal-quantification QGP: everyone xo follows recommends
// Redmi 2A.
func Q2() *core.Pattern {
	p := core.NewPattern()
	p.AddNode("xo", "person")
	p.AddNode("z", "person")
	p.AddNode("redmi", "Redmi 2A")
	p.AddEdge("xo", "z", "follow", core.Universal())
	p.AddEdge("z", "redmi", "recom", core.Exists())
	return p
}

// Q3 is the negation QGP: at least p followees recommend Redmi 2A and no
// followee gives it a bad rating.
func Q3(p int) *core.Pattern {
	q := core.NewPattern()
	q.AddNode("xo", "person")
	q.AddNode("z1", "person")
	q.AddNode("z2", "person")
	q.AddNode("redmi", "Redmi 2A")
	q.AddEdge("xo", "z1", "follow", core.Count(core.GE, p))
	q.AddEdge("z1", "redmi", "recom", core.Exists())
	q.AddEdge("xo", "z2", "follow", core.Negated())
	q.AddEdge("z2", "redmi", "bad_rating", core.Exists())
	return q
}

// Q4 is the knowledge-discovery QGP: UK professors without a PhD who
// advised at least p students who are themselves professors.
func Q4(p int) *core.Pattern {
	q := core.NewPattern()
	q.AddNode("xo", "person")
	q.AddNode("prof", "prof")
	q.AddNode("uk", "UK")
	q.AddNode("phd", "PhD")
	q.AddNode("z", "person")
	q.AddEdge("xo", "prof", "is_a", core.Exists())
	q.AddEdge("prof", "uk", "in", core.Exists())
	q.AddEdge("xo", "phd", "is_a", core.Negated())
	q.AddEdge("xo", "z", "advisor", core.Count(core.GE, p))
	q.AddEdge("z", "prof", "is_a", core.Exists())
	return q
}

// Q5 is the double-negation-free QGP with two negated edges on different
// paths: non-UK professors whose advisees are professors without PhDs.
func Q5() *core.Pattern {
	q := core.NewPattern()
	q.AddNode("xo", "person")
	q.AddNode("prof", "prof")
	q.AddNode("uk", "UK")
	q.AddNode("phd", "PhD")
	q.AddNode("z", "person")
	q.AddEdge("xo", "prof", "is_a", core.Exists())
	q.AddEdge("prof", "uk", "in", core.Negated())
	q.AddEdge("xo", "z", "advisor", core.Exists())
	q.AddEdge("z", "prof", "is_a", core.Exists())
	q.AddEdge("z", "phd", "is_a", core.Negated())
	return q
}
