package ha

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// MonitorConfig tunes a Monitor.
type MonitorConfig struct {
	// Interval between supervision passes (default 2s).
	Interval time.Duration
	// FailureThreshold is how many consecutive failed probes declare a
	// primary dead and trigger failover (default 2: one lost probe is
	// tolerated as a blip, matching the usual phi-accrual-lite
	// practice of not failing over on a single timeout).
	FailureThreshold int
	// OnFailover, when set, is notified after the monitor fails a
	// fragment's primary over (err is nil on success).
	OnFailover func(fragment int, err error)
	// Logf receives diagnostics; nil silences them.
	Logf func(format string, args ...interface{})
	// Metrics, when set, mirrors MonitorStats into the registry
	// (ha.monitor.* counters) so the debug listener's /metrics shows
	// supervision activity without polling Stats.
	Metrics *obs.Registry
}

func (c *MonitorConfig) fill() {
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 2
	}
	if c.Logf == nil {
		c.Logf = func(string, ...interface{}) {}
	}
}

// MonitorStats counts what a monitor has done.
type MonitorStats struct {
	Passes          int `json:"passes"`          // supervision passes completed
	ProbeFailures   int `json:"probeFailures"`   // primary probes that failed
	Failovers       int `json:"failovers"`       // primaries replaced
	ReplicasDropped int `json:"replicasDropped"` // dead warm replicas discarded by repair
	ReplicasAdded   int `json:"replicasAdded"`   // fresh warm replicas shipped by repair
	// Uptime is how long the supervision loop has been running, measured
	// on the monotonic clock from Start (zero before Start, frozen at
	// Stop). Wall-clock steps (NTP, suspend) cannot make it jump.
	Uptime time.Duration `json:"uptimeNS"`
}

// monitorMetrics mirrors MonitorStats into a registry. With no registry
// configured every field is nil, and nil obs instruments are no-ops, so
// the increments below need no guards.
type monitorMetrics struct {
	passes        *obs.Counter
	probeFailures *obs.Counter
	failovers     *obs.Counter
	dropped       *obs.Counter
	added         *obs.Counter
}

func newMonitorMetrics(reg *obs.Registry) monitorMetrics {
	return monitorMetrics{
		passes:        reg.Counter("ha.monitor.passes"),
		probeFailures: reg.Counter("ha.monitor.probe_failures"),
		failovers:     reg.Counter("ha.monitor.failovers"),
		dropped:       reg.Counter("ha.monitor.replicas_dropped"),
		added:         reg.Counter("ha.monitor.replicas_added"),
	}
}

// Monitor supervises a coordinator's workers: it probes every fragment
// copy over the wire protocol's ping path on a fixed cadence, fails a
// primary over once it misses FailureThreshold consecutive probes, and
// repairs the replication factor after any replica loss. The probing
// and failover mechanics live in the cluster package (Probe, FailOver,
// Repair); the monitor is the policy loop driving them.
type Monitor struct {
	c   *cluster.Coordinator
	cfg MonitorConfig
	om  monitorMetrics

	mu          sync.Mutex
	consecutive map[int]int
	stats       MonitorStats
	started     time.Time // monotonic Start time; zero before Start
	stopped     time.Time // monotonic Stop time; zero while running
	stop        chan struct{}
	done        chan struct{}
}

// NewMonitor returns an unstarted monitor for c. Check runs one pass
// synchronously; Start runs passes on cfg.Interval until Stop.
func NewMonitor(c *cluster.Coordinator, cfg MonitorConfig) *Monitor {
	cfg.fill()
	return &Monitor{c: c, cfg: cfg, om: newMonitorMetrics(cfg.Metrics), consecutive: make(map[int]int)}
}

// Start launches the supervision loop. The loop exits on Stop or once
// the coordinator reports itself closed or failed.
func (m *Monitor) Start() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stop != nil {
		return
	}
	m.started, m.stopped = time.Now(), time.Time{}
	m.stop = make(chan struct{})
	m.done = make(chan struct{})
	go m.loop(m.stop, m.done)
}

// Stop halts the supervision loop and waits for an in-flight pass.
// Safe to call without Start and more than once.
func (m *Monitor) Stop() {
	m.mu.Lock()
	stop, done := m.stop, m.done
	m.stop, m.done = nil, nil
	if stop != nil {
		m.stopped = time.Now()
	}
	m.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// Stats returns what the monitor has done so far. Safe to call
// concurrently with a running supervision loop; the returned copy is
// consistent (taken under the monitor's lock) and Uptime is monotonic.
func (m *Monitor) Stats() MonitorStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.stats
	switch {
	case m.started.IsZero():
		// Never started: Uptime stays zero.
	case m.stopped.IsZero():
		st.Uptime = time.Since(m.started)
	default:
		st.Uptime = m.stopped.Sub(m.started)
	}
	return st
}

func (m *Monitor) loop(stop, done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(m.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			if err := m.Check(); errors.Is(err, ErrUnsupervisable) {
				m.cfg.Logf("ha: monitor: coordinator gone, stopping: %v", err)
				return
			}
		}
	}
}

// ErrUnsupervisable is returned by Check when the coordinator refuses
// supervision (closed, or fail-stopped beyond what failover can fix);
// the loop stops on it.
var ErrUnsupervisable = errors.New("ha: coordinator is not supervisable")

// Check runs one supervision pass: probe every fragment copy, fail over
// primaries past the consecutive-failure threshold, and restore the
// replication factor if any replica was lost. It is the unit the Start
// loop runs; tests drive it directly for determinism.
func (m *Monitor) Check() error {
	results, err := m.c.Probe()
	if err != nil {
		return fmt.Errorf("%w: %v", ErrUnsupervisable, err)
	}
	needRepair := false
	for _, pr := range results {
		if pr.Primary == nil {
			m.mu.Lock()
			m.consecutive[pr.Fragment] = 0
			m.mu.Unlock()
		} else {
			m.mu.Lock()
			m.consecutive[pr.Fragment]++
			m.stats.ProbeFailures++
			trip := m.consecutive[pr.Fragment] >= m.cfg.FailureThreshold
			m.mu.Unlock()
			m.om.probeFailures.Inc()
			m.cfg.Logf("ha: monitor: fragment %d probe failed: %v", pr.Fragment, pr.Primary)
			if trip {
				ferr := m.c.FailOver(pr.Fragment)
				m.mu.Lock()
				if ferr == nil {
					// A failed FailOver (pool exhausted) keeps the
					// counter tripped, so the very next pass retries
					// instead of waiting out the threshold again.
					m.consecutive[pr.Fragment] = 0
					m.stats.Failovers++
					m.om.failovers.Inc()
				}
				m.mu.Unlock()
				if ferr != nil {
					m.cfg.Logf("ha: monitor: fragment %d failover: %v", pr.Fragment, ferr)
				}
				if m.cfg.OnFailover != nil {
					m.cfg.OnFailover(pr.Fragment, ferr)
				}
				needRepair = true
			}
		}
		for _, rerr := range pr.Replicas {
			if rerr != nil {
				needRepair = true
			}
		}
	}
	if needRepair {
		rep, rerr := m.c.Repair()
		m.mu.Lock()
		m.stats.ReplicasDropped += rep.Dropped
		m.stats.ReplicasAdded += rep.Added
		m.mu.Unlock()
		m.om.dropped.Add(int64(rep.Dropped))
		m.om.added.Add(int64(rep.Added))
		if rerr != nil {
			m.cfg.Logf("ha: monitor: repair: %v", rerr)
		}
	}
	m.mu.Lock()
	m.stats.Passes++
	m.mu.Unlock()
	m.om.passes.Inc()
	return nil
}
