package ha

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
)

// MonitorConfig tunes a Monitor.
type MonitorConfig struct {
	// Interval between supervision passes (default 2s).
	Interval time.Duration
	// FailureThreshold is how many consecutive failed probes declare a
	// primary dead and trigger failover (default 2: one lost probe is
	// tolerated as a blip, matching the usual phi-accrual-lite
	// practice of not failing over on a single timeout).
	FailureThreshold int
	// OnFailover, when set, is notified after the monitor fails a
	// fragment's primary over (err is nil on success).
	OnFailover func(fragment int, err error)
	// Logf receives diagnostics; nil silences them.
	Logf func(format string, args ...interface{})
}

func (c *MonitorConfig) fill() {
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 2
	}
	if c.Logf == nil {
		c.Logf = func(string, ...interface{}) {}
	}
}

// MonitorStats counts what a monitor has done.
type MonitorStats struct {
	Passes          int // supervision passes completed
	ProbeFailures   int // primary probes that failed
	Failovers       int // primaries replaced
	ReplicasDropped int // dead warm replicas discarded by repair
	ReplicasAdded   int // fresh warm replicas shipped by repair
}

// Monitor supervises a coordinator's workers: it probes every fragment
// copy over the wire protocol's ping path on a fixed cadence, fails a
// primary over once it misses FailureThreshold consecutive probes, and
// repairs the replication factor after any replica loss. The probing
// and failover mechanics live in the cluster package (Probe, FailOver,
// Repair); the monitor is the policy loop driving them.
type Monitor struct {
	c   *cluster.Coordinator
	cfg MonitorConfig

	mu          sync.Mutex
	consecutive map[int]int
	stats       MonitorStats
	stop        chan struct{}
	done        chan struct{}
}

// NewMonitor returns an unstarted monitor for c. Check runs one pass
// synchronously; Start runs passes on cfg.Interval until Stop.
func NewMonitor(c *cluster.Coordinator, cfg MonitorConfig) *Monitor {
	cfg.fill()
	return &Monitor{c: c, cfg: cfg, consecutive: make(map[int]int)}
}

// Start launches the supervision loop. The loop exits on Stop or once
// the coordinator reports itself closed or failed.
func (m *Monitor) Start() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stop != nil {
		return
	}
	m.stop = make(chan struct{})
	m.done = make(chan struct{})
	go m.loop(m.stop, m.done)
}

// Stop halts the supervision loop and waits for an in-flight pass.
// Safe to call without Start and more than once.
func (m *Monitor) Stop() {
	m.mu.Lock()
	stop, done := m.stop, m.done
	m.stop, m.done = nil, nil
	m.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// Stats returns what the monitor has done so far.
func (m *Monitor) Stats() MonitorStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

func (m *Monitor) loop(stop, done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(m.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			if err := m.Check(); errors.Is(err, ErrUnsupervisable) {
				m.cfg.Logf("ha: monitor: coordinator gone, stopping: %v", err)
				return
			}
		}
	}
}

// ErrUnsupervisable is returned by Check when the coordinator refuses
// supervision (closed, or fail-stopped beyond what failover can fix);
// the loop stops on it.
var ErrUnsupervisable = errors.New("ha: coordinator is not supervisable")

// Check runs one supervision pass: probe every fragment copy, fail over
// primaries past the consecutive-failure threshold, and restore the
// replication factor if any replica was lost. It is the unit the Start
// loop runs; tests drive it directly for determinism.
func (m *Monitor) Check() error {
	results, err := m.c.Probe()
	if err != nil {
		return fmt.Errorf("%w: %v", ErrUnsupervisable, err)
	}
	needRepair := false
	for _, pr := range results {
		if pr.Primary == nil {
			m.mu.Lock()
			m.consecutive[pr.Fragment] = 0
			m.mu.Unlock()
		} else {
			m.mu.Lock()
			m.consecutive[pr.Fragment]++
			m.stats.ProbeFailures++
			trip := m.consecutive[pr.Fragment] >= m.cfg.FailureThreshold
			m.mu.Unlock()
			m.cfg.Logf("ha: monitor: fragment %d probe failed: %v", pr.Fragment, pr.Primary)
			if trip {
				ferr := m.c.FailOver(pr.Fragment)
				m.mu.Lock()
				if ferr == nil {
					// A failed FailOver (pool exhausted) keeps the
					// counter tripped, so the very next pass retries
					// instead of waiting out the threshold again.
					m.consecutive[pr.Fragment] = 0
					m.stats.Failovers++
				}
				m.mu.Unlock()
				if ferr != nil {
					m.cfg.Logf("ha: monitor: fragment %d failover: %v", pr.Fragment, ferr)
				}
				if m.cfg.OnFailover != nil {
					m.cfg.OnFailover(pr.Fragment, ferr)
				}
				needRepair = true
			}
		}
		for _, rerr := range pr.Replicas {
			if rerr != nil {
				needRepair = true
			}
		}
	}
	if needRepair {
		rep, rerr := m.c.Repair()
		m.mu.Lock()
		m.stats.ReplicasDropped += rep.Dropped
		m.stats.ReplicasAdded += rep.Added
		m.mu.Unlock()
		if rerr != nil {
			m.cfg.Logf("ha: monitor: repair: %v", rerr)
		}
	}
	m.mu.Lock()
	m.stats.Passes++
	m.mu.Unlock()
	return nil
}
