package ha

import (
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/server"
)

// TestSpawnPoolPlacement: Get places sessions on the least-loaded
// allowed endpoint, falls back to the pool-wide least-loaded one when
// avoid covers everything, and closing a session returns its weight.
func TestSpawnPoolPlacement(t *testing.T) {
	p := NewSpawnPool(3, server.Config{})
	if p.Endpoints() != 3 {
		t.Fatalf("Endpoints = %d", p.Endpoints())
	}
	t0, e0, err := p.Get(10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if e0 != 0 {
		t.Fatalf("first Get landed on endpoint %d, want 0 (all empty)", e0)
	}
	_, e1, err := p.Get(10, map[int]bool{e0: true})
	if err != nil {
		t.Fatal(err)
	}
	if e1 == e0 {
		t.Fatalf("Get ignored avoid: landed on %d", e1)
	}
	// All endpoints avoided: the pool must still serve (co-location is
	// better than no replica), from the least-loaded endpoint.
	_, e2, err := p.Get(5, map[int]bool{0: true, 1: true, 2: true})
	if err != nil {
		t.Fatal(err)
	}
	if e2 != 2 {
		t.Fatalf("fallback landed on endpoint %d, want 2 (the only empty one)", e2)
	}
	if got := p.Loads(); !reflect.DeepEqual(got, []int{10, 10, 5}) {
		t.Fatalf("Loads = %v, want [10 10 5]", got)
	}
	if err := t0.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	t0.Close() // double close must not double-release
	if got := p.Loads(); !reflect.DeepEqual(got, []int{0, 10, 5}) {
		t.Fatalf("Loads after close = %v, want [0 10 5]", got)
	}
	// Pooled sessions report their endpoint to the cluster layer.
	var ep cluster.Endpointer = t0.(cluster.Endpointer)
	if ep.Endpoint() != 0 {
		t.Fatalf("Endpoint() = %d", ep.Endpoint())
	}
}

// TestPoolPrimaries: primaries spread over distinct endpoints while the
// pool has spare ones and wrap past that; the sessions are real workers.
func TestPoolPrimaries(t *testing.T) {
	p := NewSpawnPool(3, server.Config{})
	ts, err := p.Primaries(3)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.CloseAll(ts)
	seen := map[int]bool{}
	for _, tr := range ts {
		seen[tr.(cluster.Endpointer).Endpoint()] = true
	}
	if len(seen) != 3 {
		t.Fatalf("3 primaries on %d distinct endpoints, want 3", len(seen))
	}
	for i, tr := range ts {
		resp, err := tr.Do(&server.Request{Cmd: "ping"})
		if err != nil || !resp.Pong {
			t.Fatalf("primary %d ping: resp=%+v err=%v", i, resp, err)
		}
	}
	// More primaries than endpoints: allowed, wrapping onto the pool.
	more, err := p.Primaries(5)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.CloseAll(more)
}

// TestDialPoolError: a dead endpoint surfaces a dial error and does not
// leak placement load.
func TestDialPoolError(t *testing.T) {
	p := NewDialPool([]string{"127.0.0.1:1"}) // reserved port: nothing listens
	if _, _, err := p.Get(7, nil); err == nil {
		t.Fatal("dial to a dead endpoint succeeded")
	}
	if got := p.Loads(); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("failed Get leaked load: %v", got)
	}
}
