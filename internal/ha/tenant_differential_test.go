package ha

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/dynamic"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/server"
	"repro/internal/tenant"
)

// TestDifferentialTwoTenantFailover extends the differential harness to
// the tenant layer: two tenants multiplex private watch namespaces (the
// SAME local watch names, different patterns) over one shared coordinator
// while a seeded update stream runs. Midway a primary is killed abruptly
// (mid-stream failover), and later one tenant's session is evicted
// mid-stream. After every round, each tenant's view — the writer's own
// deltas from RecordDeltas plus the other's Drain — must be exactly the
// per-tenant single-process dynamic.Matcher oracle's delta, and the
// accumulated answer sets must track the oracles. Read fences follow the
// coordinator's version tokens throughout.
func TestDifferentialTwoTenantFailover(t *testing.T) {
	seed := int64(4242)
	r := rand.New(rand.NewSource(seed))
	g := gen.Social(gen.DefaultSocial(150, seed))

	pool := NewSpawnPool(4, server.Config{})
	ts, err := pool.Primaries(2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cluster.New(g, ts, cluster.Config{D: 2, Replicas: 2, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	ref := c.Graph()

	// The coordinator itself is the registrar: tenant-scoped global names
	// land directly in its shared watch table.
	mgr := tenant.NewManager(tenant.Config{}, c)
	for _, tn := range []string{"alice", "bob"} {
		if got, err := mgr.Attach(tn); err != nil || got != tn {
			t.Fatalf("attach %s: %q, %v", tn, got, err)
		}
	}

	// Deliberately colliding local names: alice/w0 and bob/w0 are
	// DIFFERENT patterns, so any namespace mixup shows up as a delta
	// mismatch against the per-tenant oracles.
	watches := []struct {
		tenant, watch, dsl string
	}{
		{"alice", "w0", chaosPatterns[0]},
		{"alice", "w1", chaosPatterns[1]},
		{"bob", "w0", chaosPatterns[1]},
		{"bob", "w1", chaosPatterns[0]},
	}
	key := func(tn, w string) string { return tn + "/" + w }
	oracles := make(map[string]*dynamic.Matcher)
	accumulated := make(map[string]map[graph.NodeID]bool)
	for _, ws := range watches {
		q := mustParse(t, ws.dsl)
		got, err := mgr.Watch(ws.tenant, ws.watch, q)
		if err != nil {
			t.Fatalf("watch %s/%s: %v", ws.tenant, ws.watch, err)
		}
		m, err := dynamic.NewMatcher(ref, q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, m.Answers()) {
			t.Fatalf("watch %s/%s initial answers %v != oracle %v", ws.tenant, ws.watch, got, m.Answers())
		}
		oracles[key(ws.tenant, ws.watch)] = m
		acc := make(map[graph.NodeID]bool)
		for _, v := range got {
			acc[v] = true
		}
		accumulated[key(ws.tenant, ws.watch)] = acc
	}

	alive := []string{"alice", "bob"}
	n := int64(ref.NumNodes())
	for round := 0; round < 12; round++ {
		if round == 5 {
			// Abrupt primary death with both tenants watching: the next
			// batch fails over mid-stream and every tenant's deltas must
			// stay exact across the promotion.
			ts[r.Intn(2)].Close()
		}
		if round == 9 {
			// Lifecycle under load: bob's session ends mid-stream. His
			// watches must leave the shared coordinator; alice's survive
			// untouched.
			mgr.Evict("bob")
			for _, name := range c.Watches() {
				if tn, _ := tenant.SplitName(name); tn == "bob" {
					t.Fatalf("evicted tenant's watch %q still registered", name)
				}
			}
			delete(oracles, key("bob", "w0"))
			delete(oracles, key("bob", "w1"))
			alive = []string{"alice"}
		}
		writer := alive[round%len(alive)]
		batch := randomBatch(r, &n)

		res, err := c.Update(batch)
		if err != nil {
			t.Fatalf("round %d: Update: %v", round, err)
		}
		ref = applySpecs(t, ref, batch)
		mgr.NoteWrite(writer, res.Version)
		if f := mgr.Fence(writer); f != res.Version {
			t.Fatalf("round %d: %s's fence %d != version token %d", round, writer, f, res.Version)
		}

		// Route the merged deltas: the writer gets its own back renamed,
		// everyone else drains their inbox.
		perTenant := map[string][]server.WatchDelta{
			writer: mgr.RecordDeltas(writer, res.Deltas),
		}
		for _, tn := range alive {
			if tn == writer {
				continue
			}
			drained, err := mgr.Drain(tn)
			if err != nil {
				t.Fatalf("round %d: drain %s: %v", round, tn, err)
			}
			perTenant[tn] = drained
		}

		ups, err := server.ToUpdates(batch)
		if err != nil {
			t.Fatal(err)
		}
		for _, ws := range watches {
			m, ok := oracles[key(ws.tenant, ws.watch)]
			if !ok {
				continue // evicted
			}
			want, err := m.Apply(ups)
			if err != nil {
				t.Fatal(err)
			}
			var got server.WatchDelta
			for _, d := range perTenant[ws.tenant] {
				if d.Watch == ws.watch {
					got = d
				}
			}
			if !sameIDs(got.Added, want.Added) || !sameIDs(got.Removed, want.Removed) {
				t.Fatalf("round %d %s/%s: tenant delta +%v -%v != oracle +%v -%v",
					round, ws.tenant, ws.watch, got.Added, got.Removed, want.Added, want.Removed)
			}
			acc := accumulated[key(ws.tenant, ws.watch)]
			for _, v := range got.Added {
				acc[graph.NodeID(v)] = true
			}
			for _, v := range got.Removed {
				delete(acc, graph.NodeID(v))
			}
			if !reflect.DeepEqual(sortedNodeSet(acc), m.Answers()) {
				t.Fatalf("round %d %s/%s: accumulated answers %v != oracle %v",
					round, ws.tenant, ws.watch, sortedNodeSet(acc), m.Answers())
			}
		}
	}

	// Read-your-writes across the whole stream: a fenced match at alice's
	// fence (her last write's token) agrees with the oracle graph.
	fence := mgr.NoteRead("alice")
	for _, ws := range watches {
		if ws.tenant != "alice" {
			continue
		}
		q := mustParse(t, ws.dsl)
		got, err := c.MatchWith(q, &cluster.MatchOptions{MinVersion: fence})
		if err != nil {
			t.Fatalf("fenced final match: %v", err)
		}
		want := oracleAnswers(t, ref, q)
		if !reflect.DeepEqual(emptyNotNil(got.Matches), emptyNotNil(want)) {
			t.Errorf("final %s/%s: cluster %v != oracle %v", ws.tenant, ws.watch, got.Matches, want)
		}
	}
	infos := mgr.List()
	if len(infos) != 1 || infos[0].Name != "alice" || infos[0].Watches != 2 {
		t.Fatalf("surviving session list: %+v", infos)
	}
}
