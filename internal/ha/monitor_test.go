package ha

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/gen"
	"repro/internal/server"
)

// TestMonitorFailoverPolicy: the monitor tolerates one missed probe,
// fails the primary over on the second consecutive miss, and repairs
// the replication factor afterwards — all without any client operation
// tripping over the dead worker.
func TestMonitorFailoverPolicy(t *testing.T) {
	g := gen.Social(gen.DefaultSocial(180, 3))
	pool := NewSpawnPool(3, server.Config{})
	ts, err := pool.Primaries(3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cluster.New(g, ts, cluster.Config{D: 2, Replicas: 2, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	ref := c.Graph()
	q := mustParse(t, chaosPatterns[0])
	if _, err := c.Watch("w", q); err != nil {
		t.Fatal(err)
	}

	failedOver := -1
	m := NewMonitor(c, MonitorConfig{
		FailureThreshold: 2,
		OnFailover: func(fragment int, err error) {
			if err == nil {
				failedOver = fragment
			}
		},
	})
	// Healthy pass: nothing to do.
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.Passes != 1 || st.Failovers != 0 || st.ProbeFailures != 0 {
		t.Fatalf("healthy pass stats: %+v", st)
	}

	// Kill primary 0 abruptly. First pass: a blip, no failover yet.
	ts[0].Close()
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.Failovers != 0 || st.ProbeFailures == 0 {
		t.Fatalf("one missed probe must not fail over: %+v", st)
	}
	// Second consecutive miss: failover plus replica repair.
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Failovers != 1 {
		t.Fatalf("stats after threshold: %+v, want 1 failover", st)
	}
	if failedOver != 0 {
		t.Fatalf("OnFailover reported fragment %d, want 0", failedOver)
	}
	if st.ReplicasAdded == 0 {
		t.Fatalf("repair added no replicas: %+v", st)
	}
	if got := c.ReplicaCounts(); !reflect.DeepEqual(got, []int{1, 1, 1}) {
		t.Fatalf("ReplicaCounts after repair = %v, want [1 1 1]", got)
	}
	probes, err := c.Probe()
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range probes {
		if pr.Primary != nil {
			t.Fatalf("fragment %d unhealthy after monitor failover: %v", pr.Fragment, pr.Primary)
		}
	}
	// The promoted worker serves exact answers.
	res, err := c.Match(q)
	if err != nil {
		t.Fatal(err)
	}
	if want := oracleAnswers(t, ref, q); !reflect.DeepEqual(emptyNotNil(res.Matches), emptyNotNil(want)) {
		t.Fatalf("answers after monitor failover %v != oracle %v", res.Matches, want)
	}
}

// TestMonitorLoop: Start/Stop lifecycle — a dead primary is failed over
// by the background loop without any manual Check calls.
func TestMonitorLoop(t *testing.T) {
	g := gen.Social(gen.DefaultSocial(120, 8))
	pool := NewSpawnPool(2, server.Config{})
	ts, err := pool.Primaries(2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cluster.New(g, ts, cluster.Config{D: 2, Replicas: 2, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	m := NewMonitor(c, MonitorConfig{Interval: 5 * time.Millisecond, FailureThreshold: 2})
	m.Start()
	m.Start() // idempotent
	defer m.Stop()

	ts[1].Close()
	deadline := time.Now().Add(5 * time.Second)
	for m.Stats().Failovers == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("monitor loop never failed the dead worker over: %+v", m.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	m.Stop()
	m.Stop() // idempotent
	probes, err := c.Probe()
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range probes {
		if pr.Primary != nil {
			t.Fatalf("fragment %d unhealthy after loop failover: %v", pr.Fragment, pr.Primary)
		}
	}
}
