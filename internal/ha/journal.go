package ha

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/tenant"
)

const watchesName = "watches.json"

// JournalOptions configures a Journal.
type JournalOptions struct {
	// Fsync makes every journaled batch durable before the coordinator
	// fans it out. Off by default (matching store.Options).
	Fsync bool
	// CompactBytes bounds the on-disk mutation journal: once an appended
	// batch pushes it past this many bytes, the journal is folded into a
	// fresh snapshot before the append returns, so a long-lived
	// coordinator's directory stays proportional to the graph instead of
	// to its update history (and the next recovery replays a short
	// suffix, not the lifetime's mutations). 0 disables the policy — the
	// journal then compacts only at construction and torn-tail repair,
	// the pre-threshold behavior.
	CompactBytes int64
	// Logf receives diagnostics (compaction passes and their trigger
	// sizes); nil means log.Printf.
	Logf func(format string, args ...interface{})
	// Metrics, when set, exposes journal activity in the registry:
	// ha.journal.batches / .mutations / .compactions / .fsyncs counters
	// and the ha.journal.bytes gauge (on-disk mutation-journal size).
	Metrics *obs.Registry
}

func (o *JournalOptions) fill() {
	if o.Logf == nil {
		o.Logf = log.Printf
	}
}

// journalMetrics holds the journal's pre-resolved instruments; with no
// registry every field is nil and the observations are no-ops.
type journalMetrics struct {
	batches     *obs.Counter
	mutations   *obs.Counter
	compactions *obs.Counter
	fsyncs      *obs.Counter
	bytes       *obs.Gauge
}

func newJournalMetrics(reg *obs.Registry) journalMetrics {
	return journalMetrics{
		batches:     reg.Counter("ha.journal.batches"),
		mutations:   reg.Counter("ha.journal.mutations"),
		compactions: reg.Counter("ha.journal.compactions"),
		fsyncs:      reg.Counter("ha.journal.fsyncs"),
		bytes:       reg.Gauge("ha.journal.bytes"),
	}
}

// Journal is a coordinator's durable state in one directory: the
// authoritative graph as internal/store's snapshot + append-only
// mutation journal, plus the standing-watch set as a small manifest
// (watches.json, replaced atomically). It implements
// cluster.UpdateJournal, so a coordinator built with Config.Journal set
// records every accepted update batch before fan-out; OpenJournal on
// the same directory after a restart recovers the graph and watches for
// Recover to rebuild the cluster from.
type Journal struct {
	dir  string
	opts JournalOptions
	om   journalMetrics

	mu      sync.Mutex
	st      *store.Store
	watches map[string]string
}

// OpenJournal opens (or initializes) the journal directory, replaying
// any existing snapshot+journal into the recovered graph.
func OpenJournal(dir string, opts JournalOptions) (*Journal, error) {
	opts.fill()
	st, err := store.Open(dir, store.Options{Fsync: opts.Fsync})
	if err != nil {
		return nil, fmt.Errorf("ha: %w", err)
	}
	j := &Journal{dir: dir, opts: opts, om: newJournalMetrics(opts.Metrics), st: st, watches: make(map[string]string)}
	b, err := os.ReadFile(filepath.Join(dir, watchesName))
	switch {
	case errors.Is(err, os.ErrNotExist):
		// Fresh directory, or one written before any watch existed.
	case err != nil:
		st.Close()
		return nil, fmt.Errorf("ha: %w", err)
	default:
		if err := j.readWatches(b); err != nil {
			st.Close()
			return nil, fmt.Errorf("ha: watches manifest: %w", err)
		}
	}
	return j, nil
}

// watchManifest is the on-disk shape of watches.json since the tenant
// layer: version-tagged, with watches grouped per tenant session so the
// manifest survives renames of the encoding. Pre-tenant directories hold
// a bare flat map (no "v" key); readWatches accepts both.
type watchManifest struct {
	V       int                          `json:"v"`
	Tenants map[string]map[string]string `json:"tenants"`
}

// readWatches parses either manifest generation into the flat
// global-name → pattern map the coordinator registers from.
func (j *Journal) readWatches(b []byte) error {
	var m watchManifest
	if err := json.Unmarshal(b, &m); err == nil && m.V >= 2 {
		for tn, watches := range m.Tenants {
			for w, pattern := range watches {
				if tn == "" {
					// Legacy un-namespaced watches carried into a v2
					// manifest keep their bare global names.
					j.watches[w] = pattern
				} else {
					j.watches[tenant.GlobalName(tn, w)] = pattern
				}
			}
		}
		return nil
	}
	// Legacy flat map: names are coordinator-global already (and decode
	// as the "" tenant's watches through tenant.SplitName).
	return json.Unmarshal(b, &j.watches)
}

// HasState reports whether the directory held a recoverable cluster
// state (a non-empty graph or standing watches).
func (j *Journal) HasState() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.st.NumNodes() > 0 || len(j.watches) > 0
}

// Graph returns the recovered (or current) durable graph.
func (j *Journal) Graph() *graph.Graph {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.st.Graph()
}

// Watches returns a copy of the recovered (or current) standing-watch
// set, global watch name → pattern DSL.
func (j *Journal) Watches() map[string]string {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make(map[string]string, len(j.watches))
	for k, v := range j.watches {
		out[k] = v
	}
	return out
}

// TenantWatches returns the standing-watch set grouped by tenant session
// (global names decoded with tenant.SplitName; bare legacy names land
// under tenant ""). The shape tenant.Manager.Restore takes.
func (j *Journal) TenantWatches() map[string]map[string]string {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make(map[string]map[string]string)
	for name, pattern := range j.watches {
		tn, w := tenant.SplitName(name)
		if out[tn] == nil {
			out[tn] = make(map[string]string)
		}
		out[tn][w] = pattern
	}
	return out
}

// Recovery reports what replaying the on-disk journal found at open.
func (j *Journal) Recovery() store.RecoveryInfo {
	return j.st.Recovery()
}

// SetGraph replaces the durable graph wholesale (one snapshot write, no
// per-edge journaling) and clears the watch set: a coordinator built
// over a new graph starts with no standing watches. Implements
// cluster.UpdateJournal.
func (j *Journal) SetGraph(g *graph.Graph) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.st.ImportGraph(g); err != nil {
		return err
	}
	j.watches = make(map[string]string)
	return j.writeWatchesLocked()
}

// AppendBatch journals one accepted update batch, compacting first when
// the journal has outgrown Options.CompactBytes. Implements
// cluster.UpdateJournal.
func (j *Journal) AppendBatch(specs []server.UpdateSpec) error {
	muts, err := server.ToUpdates(specs)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.opts.CompactBytes > 0 {
		size, err := j.st.JournalBytes()
		if err != nil {
			return err
		}
		if size >= j.opts.CompactBytes {
			// Compact before the append rather than after: the snapshot
			// write is the expensive step, and folding it in up front
			// means a crash between append and compaction never loses
			// the batch — it is either in the fresh journal suffix or
			// not yet accepted.
			if err := j.st.Compact(); err != nil {
				return err
			}
			j.om.compactions.Inc()
			j.opts.Logf("ha: journal: compacted at %d bytes (threshold %d)", size, j.opts.CompactBytes)
		}
	}
	if _, err = j.st.Apply(muts...); err != nil {
		return err
	}
	j.om.batches.Inc()
	j.om.mutations.Add(int64(len(muts)))
	if j.opts.Fsync {
		// The store syncs each applied batch when Fsync is on; counting
		// here (rather than inside the store) keeps the dependency
		// one-way.
		j.om.fsyncs.Inc()
	}
	if size, serr := j.st.JournalBytes(); serr == nil {
		j.om.bytes.Set(size)
	}
	return nil
}

// WatchRegistered records a standing watch. Implements
// cluster.UpdateJournal.
func (j *Journal) WatchRegistered(name, pattern string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.watches[name] = pattern
	return j.writeWatchesLocked()
}

// WatchRemoved forgets a standing watch. Implements
// cluster.UpdateJournal.
func (j *Journal) WatchRemoved(name string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	delete(j.watches, name)
	return j.writeWatchesLocked()
}

// Compact folds the mutation journal into a fresh snapshot.
func (j *Journal) Compact() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.st.Compact(); err != nil {
		return err
	}
	j.om.compactions.Inc()
	if size, err := j.st.JournalBytes(); err == nil {
		j.om.bytes.Set(size)
	}
	return nil
}

// JournalBytes reports the on-disk size of the mutation journal — what
// the CompactBytes policy bounds.
func (j *Journal) JournalBytes() (int64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.st.JournalBytes()
}

// Close flushes and closes the underlying store.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.st.Close()
}

// writeWatchesLocked replaces watches.json atomically (tmp + rename),
// mirroring the store's manifest discipline. The on-disk shape is the v2
// tenant-grouped manifest; the in-memory map stays flat (global names).
func (j *Journal) writeWatchesLocked() error {
	m := watchManifest{V: 2, Tenants: make(map[string]map[string]string)}
	for name, pattern := range j.watches {
		tn, w := tenant.SplitName(name)
		if m.Tenants[tn] == nil {
			m.Tenants[tn] = make(map[string]string)
		}
		m.Tenants[tn][w] = pattern
	}
	b, err := json.Marshal(m)
	if err != nil {
		return err
	}
	path := filepath.Join(j.dir, watchesName)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return fmt.Errorf("ha: %w", err)
	}
	return os.Rename(tmp, path)
}
