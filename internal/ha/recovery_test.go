package ha

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"repro/internal/cluster"
	"repro/internal/dynamic"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/server"
)

// TestJournalRecovery is the recovery acceptance criterion: a journaled
// coordinator is stopped and rebuilt from snapshot+journal; the
// re-fragmented cluster (even across a different worker count) answers
// every pattern exactly as the pre-restart cluster did, standing
// watches survive, and incremental maintenance continues from the
// recovered state.
func TestJournalRecovery(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pool := NewSpawnPool(3, server.Config{})
	ts, err := pool.Primaries(3)
	if err != nil {
		t.Fatal(err)
	}
	g := gen.Social(gen.DefaultSocial(200, 41))
	c, err := cluster.New(g, ts, cluster.Config{D: 2, Pool: pool, Journal: j})
	if err != nil {
		t.Fatal(err)
	}

	q0, q1 := mustParse(t, chaosPatterns[0]), mustParse(t, chaosPatterns[1])
	if _, err := c.Watch("w0", q0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Watch("doomed", q1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Watch("w1", q1); err != nil {
		t.Fatal(err)
	}
	// Unwatch must be durable too: "doomed" must not resurrect.
	if err := c.Unwatch("doomed"); err != nil {
		t.Fatal(err)
	}
	batches := [][]server.UpdateSpec{
		{{Op: "addEdge", From: 3, To: 17, Label: "follow"}, {Op: "removeNode", From: 9}},
		{{Op: "addNode", Label: "person"}, {Op: "addEdge", From: 200, To: 5, Label: "follow"}},
		{{Op: "removeEdge", From: 3, To: 17, Label: "follow"}, {Op: "addEdge", From: 11, To: 12, Label: "follow"}},
	}
	for i, specs := range batches {
		if _, err := c.Update(specs); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}

	// Record the pre-restart observable state, then stop everything.
	preGraph := c.Graph()
	preWatches := c.Watches()
	preAnswers := make(map[string][]int64)
	for _, dsl := range chaosPatterns {
		res, err := c.Match(mustParse(t, dsl))
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range res.Matches {
			preAnswers[dsl] = append(preAnswers[dsl], int64(v))
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: replay snapshot+journal, re-fragment across a DIFFERENT
	// worker count, re-ship, re-register watches.
	j2, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if !j2.HasState() {
		t.Fatal("journal directory reports no recoverable state")
	}
	pool2 := NewSpawnPool(4, server.Config{})
	c2, err := Recover(j2, pool2, 4, cluster.Config{D: 2, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	if got := c2.Graph(); got.NumNodes() != preGraph.NumNodes() || got.NumEdges() != preGraph.NumEdges() {
		t.Fatalf("recovered graph %d/%d != pre-restart %d/%d",
			got.NumNodes(), got.NumEdges(), preGraph.NumNodes(), preGraph.NumEdges())
	}
	if got := c2.Watches(); !reflect.DeepEqual(got, preWatches) {
		t.Fatalf("recovered watches %v != pre-restart %v", got, preWatches)
	}
	for _, dsl := range chaosPatterns {
		res, err := c2.Match(mustParse(t, dsl))
		if err != nil {
			t.Fatalf("recovered Match: %v", err)
		}
		got := make([]int64, 0, len(res.Matches))
		for _, v := range res.Matches {
			got = append(got, int64(v))
		}
		if !reflect.DeepEqual(got, append([]int64(nil), preAnswers[dsl]...)) {
			t.Errorf("pattern %q: recovered answers %v != pre-restart %v", dsl, got, preAnswers[dsl])
		}
	}

	// Incremental maintenance continues exactly from the recovered
	// state: the next batch's deltas equal a fresh oracle's.
	oracle, err := dynamic.NewMatcher(c2.Graph(), q0)
	if err != nil {
		t.Fatal(err)
	}
	specs := []server.UpdateSpec{
		{Op: "addEdge", From: 20, To: 21, Label: "follow"},
		{Op: "removeNode", From: 40},
	}
	res, err := c2.Update(specs)
	if err != nil {
		t.Fatal(err)
	}
	ups, _ := server.ToUpdates(specs)
	want, err := oracle.Apply(ups)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Deltas {
		if d.Watch != "w0" {
			continue
		}
		if !sameIDs(d.Added, want.Added) || !sameIDs(d.Removed, want.Removed) {
			t.Fatalf("post-recovery delta +%v -%v != oracle +%v -%v", d.Added, d.Removed, want.Added, want.Removed)
		}
	}
}

// canonGraph renders a graph as interner-independent node-label and
// "from to label" edge lists, so graphs that went through different
// interners (the recovered store's vs the original's) compare exactly.
func canonGraph(g *graph.Graph) (nodes, edges []string) {
	nodes = make([]string, g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		nodes[v] = g.NodeLabelName(graph.NodeID(v))
		for _, e := range g.Out(graph.NodeID(v)) {
			edges = append(edges, fmt.Sprintf("%d %d %s", v, e.To, g.LabelName(e.Label)))
		}
	}
	sort.Strings(edges)
	return nodes, edges
}

// TestJournalRecoveryVersionedReplayExact crashes a journaled cluster and
// asserts the recovery replay — which runs every journaled batch through
// the store's versioned in-place core — reconstructs the EXACT pre-crash
// graph, canonically (labels and edges, not just counts), and that the
// recovered cluster's watch answers equal both the pre-crash answers and
// an independent versioned-core replay of the same batches.
func TestJournalRecoveryVersionedReplayExact(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pool := NewSpawnPool(2, server.Config{})
	ts, err := pool.Primaries(2)
	if err != nil {
		t.Fatal(err)
	}
	g := gen.Social(gen.DefaultSocial(150, 17))
	// Independent replay reference: the same initial graph maintained by
	// ApplyVersioned alone, no cluster or journal involved.
	vg := graph.NewVersioned(g.Clone())

	c, err := cluster.New(g, ts, cluster.Config{D: 2, Pool: pool, Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	q0 := mustParse(t, chaosPatterns[0])
	initial, err := c.Watch("w0", q0)
	if err != nil {
		t.Fatal(err)
	}
	watchAns := make(map[graph.NodeID]bool)
	for _, v := range initial {
		watchAns[v] = true
	}

	batches := [][]server.UpdateSpec{
		{{Op: "addEdge", From: 1, To: 2, Label: "follow"}, {Op: "addEdge", From: 1, To: 3, Label: "follow"}, {Op: "addEdge", From: 1, To: 4, Label: "follow"}},
		{{Op: "addNode", Label: "person"}, {Op: "addEdge", From: 150, To: 1, Label: "follow"}},
		{{Op: "removeNode", From: 7}, {Op: "removeEdge", From: 1, To: 2, Label: "follow"}},
	}
	for i, specs := range batches {
		res, err := c.Update(specs)
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		for _, d := range res.Deltas {
			for _, v := range d.Added {
				watchAns[graph.NodeID(v)] = true
			}
			for _, v := range d.Removed {
				delete(watchAns, graph.NodeID(v))
			}
		}
		ups, err := server.ToUpdates(specs)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := dynamic.ApplyVersioned(vg, ups); err != nil {
			t.Fatalf("batch %d versioned replay: %v", i, err)
		}
	}

	preNodes, preEdges := canonGraph(c.Graph())
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	pool2 := NewSpawnPool(2, server.Config{})
	c2, err := Recover(j2, pool2, 2, cluster.Config{D: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	// The journal replay (store versioned core) and the independent
	// ApplyVersioned replay must both reproduce the pre-crash graph
	// exactly.
	recNodes, recEdges := canonGraph(c2.Graph())
	if !reflect.DeepEqual(recNodes, preNodes) || !reflect.DeepEqual(recEdges, preEdges) {
		t.Fatal("recovered graph diverges canonically from the pre-crash graph")
	}
	repNodes, repEdges := canonGraph(vg.Graph())
	if !reflect.DeepEqual(repNodes, preNodes) || !reflect.DeepEqual(repEdges, preEdges) {
		t.Fatal("independent versioned replay diverges canonically from the pre-crash graph")
	}

	// Watch answers: the recovered cluster serves the same answer set the
	// crashed cluster had accumulated, which equals a fresh evaluation
	// over the replayed versioned graph.
	res, err := c2.Match(q0)
	if err != nil {
		t.Fatal(err)
	}
	if want := sortedNodeSet(watchAns); !reflect.DeepEqual(res.Matches, want) {
		t.Fatalf("recovered watch answers %v != pre-crash %v", res.Matches, want)
	}
	if want := oracleAnswers(t, vg.Graph(), q0); !reflect.DeepEqual(res.Matches, want) {
		t.Fatalf("recovered watch answers %v != versioned-replay oracle %v", res.Matches, want)
	}
}

// TestJournalWatchManifest: the watch manifest round-trips and SetGraph
// clears it (a new graph starts with no standing watches).
func TestJournalWatchManifest(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if j.HasState() {
		t.Fatal("fresh journal claims state")
	}
	if err := j.WatchRegistered("a", "pat-a"); err != nil {
		t.Fatal(err)
	}
	if err := j.WatchRegistered("b", "pat-b"); err != nil {
		t.Fatal(err)
	}
	if err := j.WatchRemoved("a"); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := j2.Watches(); !reflect.DeepEqual(got, map[string]string{"b": "pat-b"}) {
		t.Fatalf("recovered watches = %v", got)
	}
	if !j2.HasState() {
		t.Fatal("journal with watches claims no state")
	}
	if err := j2.SetGraph(gen.Social(gen.DefaultSocial(30, 1))); err != nil {
		t.Fatal(err)
	}
	if got := j2.Watches(); len(got) != 0 {
		t.Fatalf("watches survived SetGraph: %v", got)
	}
}
