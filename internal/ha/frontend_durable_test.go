package ha

import (
	"context"
	"net"
	"reflect"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/server"
)

// startDurableFrontend wires a journal-backed front end the way
// cmd/qgpcluster does: one durable session shared by every connection,
// workers and replicas from a spawn pool.
func startDurableFrontend(t *testing.T, j *Journal) (*cluster.Frontend, string) {
	t.Helper()
	pool := NewSpawnPool(3, server.Config{})
	durable := &cluster.DurableState{Journal: j}
	if j.HasState() {
		durable.Graph = j.Graph()
		durable.Watches = j.Watches()
	}
	fe := cluster.NewFrontend(cluster.FrontendConfig{
		Cluster:    cluster.Config{D: 2, Replicas: 2, Pool: pool},
		NewWorkers: func() ([]cluster.Transport, error) { return pool.Primaries(3) },
		Durable:    durable,
		Logf:       func(string, ...interface{}) {},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go fe.Serve(ln)
	return fe, ln.Addr().String()
}

func shutdownFrontend(t *testing.T, fe *cluster.Frontend) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := fe.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestDurableFrontendRestart: a journal-backed qgpcluster front end is
// stopped and restarted over the same directory; the new process serves
// the recovered graph and watches without any gen/load, and connections
// share the durable session.
func TestDurableFrontendRestart(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fe, addr := startDurableFrontend(t, j)

	c1, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	// A named tenant session: its watches survive the disconnect (an
	// ephemeral connection-scoped session's would be evicted with it)
	// and so reach the journal's restart recovery.
	if _, err := c1.Session("alice"); err != nil {
		t.Fatalf("session: %v", err)
	}
	if _, _, err := c1.Gen("social", 150, 6); err != nil {
		t.Fatalf("gen: %v", err)
	}
	pattern := chaosPatterns[0]
	if _, err := c1.Watch("w", pattern); err != nil {
		t.Fatalf("watch: %v", err)
	}
	if _, _, err := c1.Update(
		server.UpdateSpec{Op: "addEdge", From: 2, To: 3, Label: "follow"},
		server.UpdateSpec{Op: "removeNode", From: 7},
	); err != nil {
		t.Fatalf("update: %v", err)
	}

	// A second connection shares the durable session: it can query
	// without running gen first.
	c2, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := c2.Match(pattern, nil)
	if err != nil {
		t.Fatalf("match on second connection: %v", err)
	}
	c1.Close()
	c2.Close()
	shutdownFrontend(t, fe)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart over the same directory.
	j2, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	fe2, addr2 := startDurableFrontend(t, j2)
	defer shutdownFrontend(t, fe2)

	c3, err := client.Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	// Re-attach to the recovered named session: its watch namespace was
	// rebuilt from the journal's tenant-grouped manifest.
	if _, err := c3.Session("alice"); err != nil {
		t.Fatalf("session after restart: %v", err)
	}
	post, err := c3.Match(pattern, nil)
	if err != nil {
		t.Fatalf("match after restart (no gen): %v", err)
	}
	if !reflect.DeepEqual(post.Matches, pre.Matches) {
		t.Fatalf("recovered answers %v != pre-restart %v", post.Matches, pre.Matches)
	}
	// The recovered watch is live: re-registering it collides.
	if _, err := c3.Watch("w", pattern); err == nil {
		t.Fatal("recovered watch namespace lost: re-registering 'w' succeeded")
	}
	// And it still maintains deltas incrementally.
	res, err := c3.UpdateWithDeltas(server.UpdateSpec{Op: "removeNode", From: post.Matches[0]})
	if err != nil {
		t.Fatalf("update after restart: %v", err)
	}
	found := false
	for _, d := range res.Deltas {
		if d.Watch != "w" {
			continue
		}
		for _, v := range d.Removed {
			if v == post.Matches[0] {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("removing an answer node did not surface in the recovered watch's delta: %+v", res.Deltas)
	}
}
