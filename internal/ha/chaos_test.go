package ha

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/server"
)

var chaosPatterns = []string{
	"qgp\nn xo person *\nn z person\ne xo z follow >=3\n",
	"qgp\nn xo person *\nn z person\nn p product\ne xo z follow >=1\ne z p bad_rating =0\n",
}

func mustParse(t testing.TB, dsl string) *core.Pattern {
	t.Helper()
	q, err := core.Parse(dsl)
	if err != nil {
		t.Fatalf("parse %q: %v", dsl, err)
	}
	return q
}

func applySpecs(t testing.TB, g *graph.Graph, specs []server.UpdateSpec) *graph.Graph {
	t.Helper()
	ups, err := server.ToUpdates(specs)
	if err != nil {
		t.Fatal(err)
	}
	ng, _, err := dynamic.Apply(g, ups)
	if err != nil {
		t.Fatal(err)
	}
	return ng
}

func oracleAnswers(t testing.TB, g *graph.Graph, q *core.Pattern) []graph.NodeID {
	t.Helper()
	res, err := match.QMatch(g, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res.Matches
}

func sortedNodeSet(m map[graph.NodeID]bool) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestChaosWorkerKilledMidStream is the chaos acceptance criterion: an
// embedded 4-worker cluster under a randomized stream of updates and
// standing watches has one worker killed abruptly mid-stream and keeps
// serving; the final answer sets and every accumulated delta exactly
// equal a single-process dynamic.Matcher oracle. With k=2 the recovery
// path is warm-replica promotion; with k=1 it is a re-ship of the
// fragment from the authoritative graph to a fresh pool session.
func TestChaosWorkerKilledMidStream(t *testing.T) {
	cases := []struct {
		name     string
		replicas int
	}{
		{"promote-warm-replica", 2},
		{"reship-from-authoritative-graph", 1},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			g := gen.Social(gen.DefaultSocial(240, 31))
			pool := NewSpawnPool(4, server.Config{})
			ts, err := pool.Primaries(4)
			if err != nil {
				t.Fatal(err)
			}
			c, err := cluster.New(g, ts, cluster.Config{D: 2, Replicas: tc.replicas, Pool: pool})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { c.Close() })
			ref := c.Graph()

			// Standing watches with a single-process oracle each, plus the
			// accumulated answer set replayed from the cluster's deltas.
			oracles := make(map[string]*dynamic.Matcher)
			accumulated := make(map[string]map[graph.NodeID]bool)
			addWatch := func(name, dsl string) {
				q := mustParse(t, dsl)
				got, err := c.Watch(name, q)
				if err != nil {
					t.Fatalf("watch %s: %v", name, err)
				}
				m, err := dynamic.NewMatcher(ref, q)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, m.Answers()) {
					t.Fatalf("watch %s initial answers %v != oracle %v", name, got, m.Answers())
				}
				oracles[name] = m
				acc := make(map[graph.NodeID]bool)
				for _, v := range got {
					acc[v] = true
				}
				accumulated[name] = acc
			}
			addWatch("w0", chaosPatterns[0])

			r := rand.New(rand.NewSource(7))
			for round := 0; round < 14; round++ {
				if round == 6 {
					// Abrupt mid-stream death of worker 1: its session
					// drops without any goodbye; the next operation that
					// touches its fragment trips the failover.
					ts[1].Close()
				}
				if round == 9 {
					// Standing watches registered after the failure keep
					// working too.
					addWatch("late", chaosPatterns[1])
				}
				n := int64(ref.NumNodes())
				var specs []server.UpdateSpec
				for i := 0; i < 5; i++ {
					from, to := r.Int63n(n), r.Int63n(n)
					if from == to {
						to = (to + 1) % n
					}
					switch r.Intn(5) {
					case 0, 1:
						specs = append(specs, server.UpdateSpec{Op: "addEdge", From: from, To: to, Label: "follow"})
					case 2:
						specs = append(specs, server.UpdateSpec{Op: "removeEdge", From: from, To: to, Label: "follow"})
					case 3:
						specs = append(specs, server.UpdateSpec{Op: "removeNode", From: from})
					case 4:
						specs = append(specs,
							server.UpdateSpec{Op: "addNode", Label: "person"},
							server.UpdateSpec{Op: "addEdge", From: n, To: to, Label: "follow"})
						n++
					}
				}

				res, err := c.Update(specs)
				if err != nil {
					t.Fatalf("round %d: Update: %v", round, err)
				}
				ref = applySpecs(t, ref, specs)
				if res.Nodes != ref.NumNodes() || res.Edges != ref.NumEdges() {
					t.Fatalf("round %d: cluster %d/%d != oracle %d/%d",
						round, res.Nodes, res.Edges, ref.NumNodes(), ref.NumEdges())
				}

				deltaByWatch := make(map[string]server.WatchDelta)
				for _, d := range res.Deltas {
					deltaByWatch[d.Watch] = d
				}
				ups, _ := server.ToUpdates(specs)
				for name, m := range oracles {
					want, err := m.Apply(ups)
					if err != nil {
						t.Fatal(err)
					}
					got := deltaByWatch[name]
					if !sameIDs(got.Added, want.Added) || !sameIDs(got.Removed, want.Removed) {
						t.Fatalf("round %d watch %s: cluster delta +%v -%v != oracle +%v -%v",
							round, name, got.Added, got.Removed, want.Added, want.Removed)
					}
					acc := accumulated[name]
					for _, v := range got.Added {
						acc[graph.NodeID(v)] = true
					}
					for _, v := range got.Removed {
						delete(acc, graph.NodeID(v))
					}
					if !reflect.DeepEqual(sortedNodeSet(acc), m.Answers()) {
						t.Fatalf("round %d watch %s: accumulated answers %v != oracle %v",
							round, name, sortedNodeSet(acc), m.Answers())
					}
				}
			}

			// Fresh queries over the final graph equal the single-process
			// oracle for every pattern.
			for _, dsl := range chaosPatterns {
				q := mustParse(t, dsl)
				got, err := c.Match(q)
				if err != nil {
					t.Fatalf("final Match: %v", err)
				}
				want := oracleAnswers(t, ref, q)
				if !reflect.DeepEqual(emptyNotNil(got.Matches), emptyNotNil(want)) {
					t.Errorf("final pattern %q: cluster %v != oracle %v", dsl, got.Matches, want)
				}
			}
			// The killed worker was actually replaced: every fragment copy
			// probes healthy.
			probes, err := c.Probe()
			if err != nil {
				t.Fatal(err)
			}
			for _, pr := range probes {
				if pr.Primary != nil {
					t.Errorf("fragment %d primary unhealthy after chaos: %v", pr.Fragment, pr.Primary)
				}
			}
			if tc.replicas > 1 {
				// Promotion consumed fragment 1's warm replica.
				if counts := c.ReplicaCounts(); counts[1] != 0 {
					t.Errorf("fragment 1 replicas = %d after promotion, want 0 (counts %v)", counts[1], counts)
				}
			}
		})
	}
}

func sameIDs(got []int64, want []graph.NodeID) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != int64(want[i]) {
			return false
		}
	}
	return true
}

func emptyNotNil(vs []graph.NodeID) []graph.NodeID {
	if vs == nil {
		return []graph.NodeID{}
	}
	return vs
}
