package ha

import (
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/server"
)

// TestPoolReadSkew: a Match burst concentrated on one endpoint (modelled
// as in-flight routed reads bracketed by ReadStart/ReadEnd) must steer
// subsequent placement away from that endpoint even when shipped-fragment
// weights are tied — the read axis is what keeps bursts from piling onto
// one replica host.
func TestPoolReadSkew(t *testing.T) {
	p := NewSpawnPool(3, server.Config{})

	// One unit-weight session per endpoint: placement loads are tied at
	// [1 1 1], so without read accounting the next Get would land on the
	// lowest endpoint id (0).
	sessions := make([]cluster.Transport, 3)
	for i := range sessions {
		tr, ep, err := p.Get(1, map[int]bool{})
		if err != nil {
			t.Fatal(err)
		}
		if ep != i {
			t.Fatalf("setup session %d landed on endpoint %d", i, ep)
		}
		sessions[i] = tr
	}
	defer cluster.CloseAll(sessions)

	// Skew endpoint 0 with a burst of in-flight routed reads, the way the
	// coordinator's read router brackets every replica-served Match.
	rt, ok := sessions[0].(cluster.ReadTracker)
	if !ok {
		t.Fatal("pooled session does not implement cluster.ReadTracker")
	}
	for i := 0; i < 8; i++ {
		rt.ReadStart()
	}
	if got := p.ReadLoads(); !reflect.DeepEqual(got, []int{8, 0, 0}) {
		t.Fatalf("ReadLoads = %v, want [8 0 0]", got)
	}
	if got := rt.ReadLoad(); got != 8 {
		t.Fatalf("ReadLoad = %d, want 8", got)
	}

	// Tied placement loads: the pick must avoid the read-hammered
	// endpoint. Endpoint 1 and 2 are equally idle; open-session and id
	// tie-breaks choose 1.
	tr, ep, err := p.Get(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ep == 0 {
		t.Fatalf("Get placed a session on the read-skewed endpoint (reads %v)", p.ReadLoads())
	}
	if ep != 1 {
		t.Fatalf("Get landed on endpoint %d, want 1", ep)
	}
	tr.Close()

	// Placement weight still dominates reads: a heavy endpoint with zero
	// reads loses to the read-skewed but placement-light one.
	heavy, ep2, err := p.Get(100, map[int]bool{0: true})
	if err != nil {
		t.Fatal(err)
	}
	defer heavy.Close()
	light, ep3, err := p.Get(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer light.Close()
	if ep3 == ep2 {
		t.Fatalf("read skew outweighed a 100x placement load (picked %d)", ep3)
	}

	// Draining the burst restores balance: with reads back to zero the
	// tied pick returns to the lowest endpoint id among the lightest.
	for i := 0; i < 8; i++ {
		rt.ReadEnd()
	}
	if got := p.ReadLoads()[0]; got != 0 {
		t.Fatalf("ReadEnd left %d in-flight reads", got)
	}
}
