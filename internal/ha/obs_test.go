package ha

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/server"
)

// TestMonitorStatsUptime: Uptime is zero before Start, grows
// monotonically while the loop runs, and freezes at Stop; Stats stays
// safe to call concurrently with a running loop.
func TestMonitorStatsUptime(t *testing.T) {
	g := gen.Social(gen.DefaultSocial(120, 3))
	pool := NewSpawnPool(2, server.Config{})
	ts, err := pool.Primaries(2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cluster.New(g, ts, cluster.Config{D: 2, Pool: pool, Logf: func(string, ...interface{}) {}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	m := NewMonitor(c, MonitorConfig{Interval: 5 * time.Millisecond})
	if up := m.Stats().Uptime; up != 0 {
		t.Fatalf("uptime before Start = %v, want 0", up)
	}
	m.Start()
	// Hammer Stats concurrently with the running loop; the race detector
	// turns any unsynchronized read into a failure.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				m.Stats()
			}
		}()
	}
	wg.Wait()
	time.Sleep(15 * time.Millisecond)
	if up := m.Stats().Uptime; up <= 0 {
		t.Fatalf("uptime while running = %v, want > 0", up)
	}
	m.Stop()
	frozen := m.Stats().Uptime
	if frozen <= 0 {
		t.Fatalf("uptime after Stop = %v, want > 0", frozen)
	}
	time.Sleep(5 * time.Millisecond)
	if again := m.Stats().Uptime; again != frozen {
		t.Fatalf("uptime advanced after Stop: %v then %v", frozen, again)
	}
}

// TestMonitorMetricsMirrorStats: the ha.monitor.* counters track the
// same events MonitorStats counts.
func TestMonitorMetricsMirrorStats(t *testing.T) {
	g := gen.Social(gen.DefaultSocial(120, 5))
	pool := NewSpawnPool(2, server.Config{})
	ts, err := pool.Primaries(2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cluster.New(g, ts, cluster.Config{D: 2, Pool: pool, Logf: func(string, ...interface{}) {}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	reg := obs.NewRegistry()
	m := NewMonitor(c, MonitorConfig{FailureThreshold: 1, Metrics: reg})
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	ts[0].Close() // kill a primary; threshold 1 fails it over on the next pass
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	s := reg.Snapshot()
	for name, want := range map[string]int{
		"ha.monitor.passes":         st.Passes,
		"ha.monitor.probe_failures": st.ProbeFailures,
		"ha.monitor.failovers":      st.Failovers,
	} {
		if got := s.Counters[name]; got != int64(want) {
			t.Errorf("%s = %d, Stats says %d", name, got, want)
		}
	}
	if st.Failovers == 0 {
		t.Error("killing a primary at threshold 1 did not fail over")
	}
}

// TestJournalMetrics: appended batches drive the ha.journal.* counters
// and bytes gauge, a threshold crossing counts a compaction, and the
// compaction emits a Logf diagnostic.
func TestJournalMetrics(t *testing.T) {
	var mu sync.Mutex
	var logged []string
	logf := func(format string, args ...interface{}) {
		mu.Lock()
		defer mu.Unlock()
		logged = append(logged, fmt.Sprintf(format, args...))
	}
	reg := obs.NewRegistry()
	j, err := OpenJournal(t.TempDir(), JournalOptions{CompactBytes: 512, Metrics: reg, Logf: logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })

	const batches = 40
	for i := 0; i < batches; i++ {
		if err := j.AppendBatch([]server.UpdateSpec{
			{Op: "addNode", Label: "person"},
			{Op: "addNode", Label: "product"},
		}); err != nil {
			t.Fatal(err)
		}
	}
	s := reg.Snapshot()
	if got := s.Counters["ha.journal.batches"]; got != batches {
		t.Errorf("ha.journal.batches = %d, want %d", got, batches)
	}
	if got := s.Counters["ha.journal.mutations"]; got != 2*batches {
		t.Errorf("ha.journal.mutations = %d, want %d", got, 2*batches)
	}
	if got := s.Counters["ha.journal.compactions"]; got == 0 {
		t.Error("40 batches against a 512-byte threshold never compacted")
	}
	if got := s.Gauges["ha.journal.bytes"]; got <= 0 {
		t.Errorf("ha.journal.bytes = %d, want > 0", got)
	}
	if got := s.Counters["ha.journal.fsyncs"]; got != 0 {
		t.Errorf("ha.journal.fsyncs = %d without Fsync, want 0", got)
	}

	mu.Lock()
	defer mu.Unlock()
	var sawCompaction bool
	for _, line := range logged {
		if strings.Contains(line, "compacted at") {
			sawCompaction = true
		}
	}
	if !sawCompaction {
		t.Errorf("no compaction diagnostic logged; got %d lines", len(logged))
	}
}
