package ha

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/core"
)

// Recover rebuilds a journaled cluster after a coordinator restart: the
// graph recovered from j's snapshot+journal is re-fragmented across
// `workers` fresh primary sessions from the pool (replica shipping and
// failover come from cfg.Replicas as usual), and every recovered
// standing watch is re-registered, so the rebuilt cluster serves the
// same answers and deltas the lost one would have. cfg.Pool and
// cfg.Journal are overwritten with pool and j; the returned coordinator
// owns its worker sessions (Close releases them).
func Recover(j *Journal, pool *Pool, workers int, cfg cluster.Config) (*cluster.Coordinator, error) {
	g := j.Graph()
	// Snapshot the watch set first: cluster.New re-imports the graph
	// into the journal, which resets its durable watch set until the
	// re-registrations below land.
	watches := j.Watches()
	ts, err := pool.Primaries(workers)
	if err != nil {
		return nil, fmt.Errorf("ha: recover: %w", err)
	}
	cfg.Pool = pool
	cfg.Journal = j
	c, err := cluster.New(g, ts, cfg)
	if err != nil {
		cluster.CloseAll(ts)
		return nil, fmt.Errorf("ha: recover: %w", err)
	}
	for _, name := range sortedNames(watches) {
		q, err := core.Parse(watches[name])
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("ha: recover watch %q: %w", name, err)
		}
		if _, err := c.Watch(name, q); err != nil {
			c.Close()
			return nil, fmt.Errorf("ha: recover watch %q: %w", name, err)
		}
	}
	return c, nil
}

func sortedNames(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
