// Package ha is the high-availability layer over the internal/cluster
// coordinator/worker seam: worker pools with load-balanced replica
// placement, a supervising health monitor with a consecutive-failure
// failover policy, and journal-backed restart recovery built on
// internal/store's snapshot+journal.
//
// Responsibilities are split so each stays testable: the cluster package
// owns the failover mechanics (warm replicas, promotion, re-shipping,
// probes), while this package owns the policy — where fragment copies
// are placed, when a worker is declared dead, and how a coordinator's
// durable state is recorded and replayed.
package ha

import (
	"fmt"
	"sync"

	"repro/internal/cluster"
	"repro/internal/server"
)

// Pool is a cluster.WorkerPool backed by a fixed set of endpoints:
// qgpd addresses (NewDialPool) or embedded in-process worker slots
// (NewSpawnPool). Get opens a fresh worker session on the least-loaded
// endpoint the caller allows, where load is the sum of the placement
// weights (fragment owned-node counts) of the sessions currently open
// there; closing a pooled session returns its weight. All methods are
// safe for concurrent use.
type Pool struct {
	mu   sync.Mutex
	load []int
	open []int // open sessions per endpoint
	// reads counts the in-flight read-routed requests per endpoint: the
	// coordinator's replica-read router brackets every routed Match with
	// ReadStart/ReadEnd (via the pooled transport), so placement and
	// routing decisions see live read traffic, not just shipped-fragment
	// weight — a burst of Matches on one replica makes its endpoint look
	// busy before any fragment moves.
	reads []int
	dial  func(endpoint int) (cluster.Transport, error)
	name  func(endpoint int) string
}

// NewDialPool returns a pool whose endpoints are qgpd worker addresses;
// every Get dials a fresh connection (a fresh worker session) to the
// chosen address.
func NewDialPool(addrs []string) *Pool {
	p := &Pool{
		load:  make([]int, len(addrs)),
		open:  make([]int, len(addrs)),
		reads: make([]int, len(addrs)),
		name:  func(i int) string { return addrs[i] },
	}
	p.dial = func(i int) (cluster.Transport, error) { return cluster.Dial(addrs[i]) }
	return p
}

// NewSpawnPool returns a pool of n embedded worker slots; every Get
// spawns a fresh in-process worker attributed to the chosen slot. The
// slots model distinct hosts for placement purposes, so tests and
// single-machine deployments exercise the same placement logic as a
// distributed pool.
func NewSpawnPool(n int, cfg server.Config) *Pool {
	p := &Pool{
		load:  make([]int, n),
		open:  make([]int, n),
		reads: make([]int, n),
		name:  func(i int) string { return fmt.Sprintf("spawn-%d", i) },
	}
	p.dial = func(int) (cluster.Transport, error) { return cluster.InProcess(cfg), nil }
	return p
}

// Endpoints returns the number of endpoints in the pool.
func (p *Pool) Endpoints() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.load)
}

// Loads returns the current per-endpoint placement load.
func (p *Pool) Loads() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]int(nil), p.load...)
}

// ReadLoads returns the current per-endpoint in-flight routed-read
// counts.
func (p *Pool) ReadLoads() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]int(nil), p.reads...)
}

// Get opens a fresh worker session on the least-loaded endpoint not in
// avoid, falling back to the least-loaded endpoint overall when avoid
// covers the whole pool (an embedded pool co-locates by nature; a
// co-located replica still survives session-level failures). Ties break
// toward fewer open sessions, then the lower endpoint id.
func (p *Pool) Get(weight int, avoid map[int]bool) (cluster.Transport, int, error) {
	p.mu.Lock()
	ep := p.pickLocked(avoid)
	if ep < 0 {
		ep = p.pickLocked(nil)
	}
	if ep < 0 {
		p.mu.Unlock()
		return nil, -1, fmt.Errorf("ha: pool has no endpoints")
	}
	p.load[ep] += weight
	p.open[ep]++
	p.mu.Unlock()

	t, err := p.dial(ep)
	if err != nil {
		p.release(ep, weight)
		return nil, -1, fmt.Errorf("ha: endpoint %s: %w", p.name(ep), err)
	}
	return &pooled{Transport: t, pool: p, ep: ep, weight: weight}, ep, nil
}

// Primaries opens n worker sessions for a coordinator's primary
// fragments, spread across distinct endpoints while the pool has spare
// ones (wrapping onto the least-loaded endpoints past that). Fragment
// owned counts are not known until the coordinator partitions the
// graph, so primaries carry unit weight — their balance comes from the
// distinct-endpoint spread, while replica placement (cluster side)
// carries the real owned-count weights.
func (p *Pool) Primaries(n int) ([]cluster.Transport, error) {
	ts := make([]cluster.Transport, 0, n)
	used := make(map[int]bool)
	for i := 0; i < n; i++ {
		t, ep, err := p.Get(1, used)
		if err != nil {
			cluster.CloseAll(ts)
			return nil, err
		}
		used[ep] = true
		ts = append(ts, t)
	}
	return ts, nil
}

// pickLocked returns the least-loaded endpoint not in avoid, -1 when
// none qualifies. Placement load (shipped-fragment weight) dominates;
// in-flight routed reads break ties so a fresh session lands off the
// endpoint a Match burst is hammering, then fewer open sessions, then
// the lower endpoint id.
func (p *Pool) pickLocked(avoid map[int]bool) int {
	best := -1
	for i := range p.load {
		if avoid[i] {
			continue
		}
		if best < 0 || p.load[i] < p.load[best] ||
			(p.load[i] == p.load[best] && p.reads[i] < p.reads[best]) ||
			(p.load[i] == p.load[best] && p.reads[i] == p.reads[best] && p.open[i] < p.open[best]) {
			best = i
		}
	}
	return best
}

func (p *Pool) release(ep, weight int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.load[ep] -= weight
	p.open[ep]--
}

// pooled wraps a session handed out by Get: it reports its endpoint to
// the cluster layer (for co-location avoidance) and returns its
// placement weight to the pool when closed.
type pooled struct {
	cluster.Transport
	pool   *Pool
	ep     int
	weight int
	once   sync.Once
}

// Endpoint implements cluster.Endpointer.
func (t *pooled) Endpoint() int { return t.ep }

// ReadStart, ReadEnd and ReadLoad implement cluster.ReadTracker: the
// coordinator's replica-read router brackets each routed read so the
// endpoint-wide in-flight count steers both copy selection (least-loaded
// live copy) and later placement decisions.
func (t *pooled) ReadStart() {
	t.pool.mu.Lock()
	t.pool.reads[t.ep]++
	t.pool.mu.Unlock()
}

func (t *pooled) ReadEnd() {
	t.pool.mu.Lock()
	t.pool.reads[t.ep]--
	t.pool.mu.Unlock()
}

func (t *pooled) ReadLoad() int {
	t.pool.mu.Lock()
	defer t.pool.mu.Unlock()
	return t.pool.reads[t.ep]
}

func (t *pooled) Close() error {
	t.once.Do(func() { t.pool.release(t.ep, t.weight) })
	return t.Transport.Close()
}
