package ha

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/dynamic"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/server"
)

// randomBatch builds a seeded batch of 1..5 mutations over a graph with n
// nodes, occasionally growing n: edge churn on the two labels the
// differential patterns observe, node removals, and node creations wired
// into the existing graph (the created node exercises the coordinator's
// assignment routing — it must be owned by exactly one worker and show up
// in that worker's watch deltas).
func randomBatch(r *rand.Rand, n *int64) []server.UpdateSpec {
	labels := []string{"follow", "follow", "follow", "bad_rating"}
	var specs []server.UpdateSpec
	for i, k := 0, 1+r.Intn(5); i < k; i++ {
		from, to := r.Int63n(*n), r.Int63n(*n)
		if from == to {
			to = (to + 1) % *n
		}
		label := labels[r.Intn(len(labels))]
		switch r.Intn(6) {
		case 0, 1, 2:
			specs = append(specs, server.UpdateSpec{Op: "addEdge", From: from, To: to, Label: label})
		case 3:
			specs = append(specs, server.UpdateSpec{Op: "removeEdge", From: from, To: to, Label: label})
		case 4:
			specs = append(specs, server.UpdateSpec{Op: "removeNode", From: from})
		case 5:
			specs = append(specs,
				server.UpdateSpec{Op: "addNode", Label: "person"},
				server.UpdateSpec{Op: "addEdge", From: *n, To: to, Label: "follow"},
				server.UpdateSpec{Op: "addEdge", From: from, To: *n, Label: "follow"})
			*n++
		}
	}
	return specs
}

// TestDifferentialClusterUpdates is the differential property harness for
// the batched + pipelined update routing path: for every worker count ×
// replication factor, a seeded stream of random update batches is applied
// to both the cluster and a single-process dynamic.Matcher oracle per
// standing watch, asserting after every batch that the reported deltas
// and the answer set accumulated from them are exact. Midway through the
// stream a primary is killed abruptly, so the same assertions cover
// mid-batch failover — promotion of a warm replica at the pre-batch sync
// point (k=2) or a re-ship from the authoritative graph (k=1) — followed
// by more batches over the recovered cluster.
func TestDifferentialClusterUpdates(t *testing.T) {
	// replicas=3 is load-bearing beyond the ISSUE's {1,2}: it is the
	// smallest factor giving a fragment two warm replicas, i.e. the only
	// way the concurrent multi-replica mirror branch executes — and gets
	// raced by CI's -race run of this package.
	for _, workers := range []int{1, 2, 4} {
		for _, replicas := range []int{1, 2, 3} {
			workers, replicas := workers, replicas
			t.Run(fmt.Sprintf("workers=%d,replicas=%d", workers, replicas), func(t *testing.T) {
				t.Parallel()
				seed := int64(1000*workers + replicas)
				r := rand.New(rand.NewSource(seed))
				g := gen.Social(gen.DefaultSocial(150, seed))

				// Spare endpoints beyond the primaries keep failover viable
				// even when every warm replica is spent.
				pool := NewSpawnPool(workers+2, server.Config{})
				ts, err := pool.Primaries(workers)
				if err != nil {
					t.Fatal(err)
				}
				c, err := cluster.New(g, ts, cluster.Config{D: 2, Replicas: replicas, Pool: pool})
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { c.Close() })
				ref := c.Graph()

				oracles := make(map[string]*dynamic.Matcher)
				accumulated := make(map[string]map[graph.NodeID]bool)
				for i, dsl := range chaosPatterns {
					name := fmt.Sprintf("w%d", i)
					q := mustParse(t, dsl)
					got, err := c.Watch(name, q)
					if err != nil {
						t.Fatalf("watch %s: %v", name, err)
					}
					m, err := dynamic.NewMatcher(ref, q)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, m.Answers()) {
						t.Fatalf("watch %s initial answers %v != oracle %v", name, got, m.Answers())
					}
					oracles[name] = m
					acc := make(map[graph.NodeID]bool)
					for _, v := range got {
						acc[v] = true
					}
					accumulated[name] = acc
				}

				n := int64(ref.NumNodes())
				for round := 0; round < 12; round++ {
					if round == 5 {
						// Abrupt primary death; the next batch that routes
						// to its fragment fails over mid-batch and replays
						// the combined request on the promoted or
						// re-shipped session.
						ts[r.Intn(workers)].Close()
					}
					specs := randomBatch(r, &n)

					res, err := c.Update(specs)
					if err != nil {
						t.Fatalf("round %d: Update: %v", round, err)
					}
					ref = applySpecs(t, ref, specs)
					if res.Nodes != ref.NumNodes() || res.Edges != ref.NumEdges() {
						t.Fatalf("round %d: cluster %d/%d != oracle %d/%d",
							round, res.Nodes, res.Edges, ref.NumNodes(), ref.NumEdges())
					}

					deltaByWatch := make(map[string]server.WatchDelta)
					for _, d := range res.Deltas {
						deltaByWatch[d.Watch] = d
					}
					ups, err := server.ToUpdates(specs)
					if err != nil {
						t.Fatal(err)
					}
					for name, m := range oracles {
						want, err := m.Apply(ups)
						if err != nil {
							t.Fatal(err)
						}
						got := deltaByWatch[name]
						if !sameIDs(got.Added, want.Added) || !sameIDs(got.Removed, want.Removed) {
							t.Fatalf("round %d watch %s: cluster delta +%v -%v != oracle +%v -%v",
								round, name, got.Added, got.Removed, want.Added, want.Removed)
						}
						acc := accumulated[name]
						for _, v := range got.Added {
							acc[graph.NodeID(v)] = true
						}
						for _, v := range got.Removed {
							delete(acc, graph.NodeID(v))
						}
						if !reflect.DeepEqual(sortedNodeSet(acc), m.Answers()) {
							t.Fatalf("round %d watch %s: accumulated answers %v != oracle %v",
								round, name, sortedNodeSet(acc), m.Answers())
						}
					}
				}

				// Fresh cluster-wide matches over the final graph agree with
				// the oracle too — the fragments converged, not just the
				// watch bookkeeping.
				for _, dsl := range chaosPatterns {
					q := mustParse(t, dsl)
					got, err := c.Match(q)
					if err != nil {
						t.Fatalf("final Match: %v", err)
					}
					want := oracleAnswers(t, ref, q)
					if !reflect.DeepEqual(emptyNotNil(got.Matches), emptyNotNil(want)) {
						t.Errorf("final pattern %q: cluster %v != oracle %v", dsl, got.Matches, want)
					}
				}
				probes, err := c.Probe()
				if err != nil {
					t.Fatal(err)
				}
				for _, pr := range probes {
					if pr.Primary != nil {
						t.Errorf("fragment %d primary unhealthy after stream: %v", pr.Fragment, pr.Primary)
					}
				}
			})
		}
	}
}
