package ha

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/gen"
	"repro/internal/server"
)

// TestJournalCompactionBounded exercises the size-threshold compaction
// policy end to end: a journaled coordinator absorbs many update batches
// and the on-disk journal must stay bounded near the threshold instead
// of growing with the update history — a long-lived coordinator's
// directory is proportional to the graph, not its lifetime. The
// compacted journal must still recover: a rebuild from the directory
// reproduces the exact graph.
func TestJournalCompactionBounded(t *testing.T) {
	dir := t.TempDir()
	// A threshold small enough that the run compacts several times, with
	// headroom over the largest single batch.
	const threshold = 2 << 10
	j, err := OpenJournal(dir, JournalOptions{CompactBytes: threshold})
	if err != nil {
		t.Fatal(err)
	}
	pool := NewSpawnPool(2, server.Config{})
	ts, err := pool.Primaries(2)
	if err != nil {
		t.Fatal(err)
	}
	g := gen.Social(gen.DefaultSocial(120, 17))
	c, err := cluster.New(g, ts, cluster.Config{D: 2, Pool: pool, Journal: j})
	if err != nil {
		t.Fatal(err)
	}

	const graphSize = 120
	var maxSeen int64
	for i := 0; i < 400; i++ {
		from := int64((i*7919 + 13) % graphSize)
		to := int64((i*104729 + 31) % graphSize)
		if from == to {
			to = (to + 1) % graphSize
		}
		op := "addEdge"
		if i%2 == 1 {
			op = "removeEdge"
		}
		if _, err := c.Update([]server.UpdateSpec{{Op: op, From: from, To: to, Label: "follow"}}); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		size, err := j.JournalBytes()
		if err != nil {
			t.Fatal(err)
		}
		if size > maxSeen {
			maxSeen = size
		}
	}
	// The journal may exceed the threshold by at most one batch: the
	// policy compacts before the append that would have grown past it.
	const slack = 256 // one tiny batch's records
	if maxSeen > threshold+slack {
		t.Fatalf("journal grew to %d bytes despite a %d-byte compaction threshold", maxSeen, threshold)
	}
	want := c.Graph()
	c.Close()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// The compacted directory still recovers the exact graph.
	j2, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	got := j2.Graph()
	if got.NumNodes() != want.NumNodes() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("recovered graph %d/%d != pre-close %d/%d",
			got.NumNodes(), got.NumEdges(), want.NumNodes(), want.NumEdges())
	}

	// Without the policy the same run keeps every record: sanity-check the
	// bound is the policy's doing, not an artifact of batch sizes.
	dir2 := t.TempDir()
	ju, err := OpenJournal(dir2, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ju.Close()
	if err := ju.SetGraph(g); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		if err := ju.AppendBatch([]server.UpdateSpec{
			{Op: "addEdge", From: int64(i % graphSize), To: int64((i + 1) % graphSize), Label: "follow"},
		}); err != nil {
			t.Fatal(err)
		}
	}
	unbounded, err := ju.JournalBytes()
	if err != nil {
		t.Fatal(err)
	}
	if unbounded <= threshold+slack {
		t.Fatalf("unbounded journal stayed at %d bytes; the bounded run proves nothing", unbounded)
	}
	t.Logf("journal peak with policy: %d bytes; without: %d bytes", maxSeen, unbounded)
}

// TestJournalBytes covers the accessor the policy is built on.
func TestJournalBytes(t *testing.T) {
	j, err := OpenJournal(t.TempDir(), JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	before, err := j.JournalBytes()
	if err != nil {
		t.Fatal(err)
	}
	if err := j.AppendBatch([]server.UpdateSpec{{Op: "addNode", Label: "person"}}); err != nil {
		t.Fatal(err)
	}
	after, err := j.JournalBytes()
	if err != nil {
		t.Fatal(err)
	}
	if after <= before {
		t.Fatalf("journal size %d did not grow past %d after an append", after, before)
	}
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	compacted, err := j.JournalBytes()
	if err != nil {
		t.Fatal(err)
	}
	if compacted != before {
		t.Fatalf("compacted journal is %d bytes, want the empty size %d", compacted, before)
	}
}
