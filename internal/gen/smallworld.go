package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// SmallWorldConfig controls the GTgraph-style synthetic generator: |V|
// nodes, |E| edges, node and edge labels drawn from an alphabet of Labels
// symbols (the paper uses 30).
type SmallWorldConfig struct {
	Nodes  int
	Edges  int
	Labels int
	Seed   int64
}

// SmallWorld generates a labeled small-world graph: edges follow
// preferential attachment (hub formation) with a rewiring fraction for
// local clustering, mirroring the GTgraph generator the paper uses.
func SmallWorld(cfg SmallWorldConfig) *graph.Graph {
	if cfg.Labels <= 0 {
		cfg.Labels = 30
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	g := graph.New(cfg.Nodes)

	nodeLabels := make([]string, cfg.Labels)
	edgeLabels := make([]string, cfg.Labels)
	for i := range nodeLabels {
		nodeLabels[i] = fmt.Sprintf("L%d", i)
		edgeLabels[i] = fmt.Sprintf("r%d", i)
	}
	for i := 0; i < cfg.Nodes; i++ {
		// Zipf-ish label distribution: low label ids are frequent.
		g.AddNode(nodeLabels[skewedIndex(r, cfg.Labels)])
	}

	// Preferential attachment: targets drawn from a growing pool in which
	// high-degree nodes appear more often; 20% of edges rewire uniformly.
	pool := make([]graph.NodeID, 0, 2*cfg.Edges)
	for i := 0; i < cfg.Nodes && i < 64; i++ {
		pool = append(pool, graph.NodeID(i))
	}
	for i := 0; i < cfg.Edges; i++ {
		from := graph.NodeID(r.Intn(cfg.Nodes))
		var to graph.NodeID
		if r.Intn(5) == 0 || len(pool) == 0 {
			to = graph.NodeID(r.Intn(cfg.Nodes))
		} else {
			to = pool[r.Intn(len(pool))]
		}
		if from == to {
			continue
		}
		g.AddEdge(from, to, edgeLabels[skewedIndex(r, cfg.Labels)])
		pool = append(pool, to)
		if len(pool) < 2*cfg.Edges {
			pool = append(pool, from)
		}
	}
	g.Finalize()
	return g
}

// skewedIndex draws an index in [0, n) with probability decaying roughly
// geometrically, so that a few labels dominate (as in real property
// graphs).
func skewedIndex(r *rand.Rand, n int) int {
	i := 0
	for i < n-1 && r.Intn(3) != 0 {
		i++
		if i >= 8 { // flatten the tail
			return 8 + r.Intn(n-8)
		}
	}
	return i
}
