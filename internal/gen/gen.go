// Package gen provides the workload substrate of the paper's evaluation
// (§7): seeded synthetic graph generators standing in for the Pokec social
// network, the YAGO2 knowledge base and the GTgraph small-world synthetic
// graphs, plus the frequent-feature-seeded QGP generator. All generators
// are deterministic in their seeds. See DESIGN.md §3 for the substitution
// rationale.
package gen

import (
	"math/rand"

	"repro/internal/graph"
)

// zipfOutDegree draws a skewed out-degree with the given mean: most nodes
// sit near the mean, a heavy tail reaches maxFactor times it (social-graph
// degree skew, average ≈ 14 per the NSA big-graph report the paper cites).
func zipfOutDegree(r *rand.Rand, mean, maxFactor int) int {
	if mean <= 0 {
		return 0
	}
	// 80% of nodes: uniform around the mean; 20%: heavy tail.
	if r.Intn(5) > 0 {
		return 1 + r.Intn(2*mean)
	}
	tail := mean * maxFactor
	d := mean + int(float64(tail)*r.ExpFloat64()/4)
	if d > tail {
		d = tail
	}
	return d
}

// pick returns a random element of ids.
func pick(r *rand.Rand, ids []graph.NodeID) graph.NodeID {
	return ids[r.Intn(len(ids))]
}

// addNodes appends n nodes with the given label and returns their ids.
func addNodes(g *graph.Graph, n int, label string) []graph.NodeID {
	ids := make([]graph.NodeID, n)
	for i := range ids {
		ids[i] = g.AddNode(label)
	}
	return ids
}
