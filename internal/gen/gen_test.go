package gen_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/match"
)

func TestSmallWorldDeterministic(t *testing.T) {
	cfg := gen.SmallWorldConfig{Nodes: 500, Edges: 1500, Seed: 7}
	g1 := gen.SmallWorld(cfg)
	g2 := gen.SmallWorld(cfg)
	if g1.NumNodes() != g2.NumNodes() || g1.NumEdges() != g2.NumEdges() {
		t.Fatal("SmallWorld is not deterministic in its seed")
	}
	if g1.NumNodes() != 500 {
		t.Fatalf("nodes = %d, want 500", g1.NumNodes())
	}
	if g1.NumEdges() < 1200 {
		t.Fatalf("edges = %d, want ≈1500 (some self-loops and duplicates dropped)", g1.NumEdges())
	}
	g3 := gen.SmallWorld(gen.SmallWorldConfig{Nodes: 500, Edges: 1500, Seed: 8})
	if g3.NumEdges() == g1.NumEdges() && eq(g3, g1) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func eq(a, b *graph.Graph) bool {
	if a.NumNodes() != b.NumNodes() {
		return false
	}
	for v := 0; v < a.NumNodes(); v++ {
		if a.NodeLabelName(graph.NodeID(v)) != b.NodeLabelName(graph.NodeID(v)) {
			return false
		}
		ae, be := a.Out(graph.NodeID(v)), b.Out(graph.NodeID(v))
		if len(ae) != len(be) {
			return false
		}
	}
	return true
}

func TestSocialShape(t *testing.T) {
	g := gen.Social(gen.DefaultSocial(2000, 42))
	st := g.ComputeStats()
	if st.Nodes < 2000 {
		t.Fatalf("social graph too small: %v", st)
	}
	// Average degree should be within a factor of two of the configured
	// follow degree plus taste edges.
	if st.AvgDeg < 5 || st.AvgDeg > 40 {
		t.Fatalf("unrealistic average degree: %v", st)
	}
	for _, l := range []string{"person", "product", "album", "club", "city", "hobby"} {
		if len(g.NodesByLabelName(l)) == 0 {
			t.Errorf("no %s nodes", l)
		}
	}
	for _, l := range []string{"follow", "like", "recom", "buy", "in", "bad_rating"} {
		if g.LookupLabel(l) == graph.NoLabel {
			t.Errorf("no %s edges", l)
		}
	}
}

func TestKnowledgeShape(t *testing.T) {
	g := gen.Knowledge(gen.DefaultKnowledge(2000, 42))
	for _, l := range []string{"person", "university", "prize", "country", "prof", "PhD"} {
		if len(g.NodesByLabelName(l)) == 0 {
			t.Errorf("no %s nodes", l)
		}
	}
	for _, l := range []string{"advisor", "is_a", "won", "graduated_from", "citizen_of", "in"} {
		if g.LookupLabel(l) == graph.NoLabel {
			t.Errorf("no %s edges", l)
		}
	}
	// Knowledge graphs are sparser than social graphs.
	if st := g.ComputeStats(); st.AvgDeg > 10 {
		t.Fatalf("knowledge graph too dense: %v", st)
	}
}

func TestMineFeatures(t *testing.T) {
	g := gen.Social(gen.DefaultSocial(1000, 1))
	feats := gen.MineFeatures(g)
	if len(feats) == 0 {
		t.Fatal("no features mined")
	}
	// (person, follow, person) must be the most frequent triple in a
	// social graph.
	top := feats[0]
	if top.Src != "person" || top.Edge != "follow" || top.Dst != "person" {
		t.Fatalf("top feature = %v, want person-follow-person", top)
	}
	for i := 1; i < len(feats); i++ {
		if feats[i].Count > feats[i-1].Count {
			t.Fatal("features not sorted by frequency")
		}
	}
}

func TestPatternGeneration(t *testing.T) {
	g := gen.Social(gen.DefaultSocial(1000, 1))
	cfg := gen.PatternConfig{Nodes: 5, Edges: 7, RatioBP: 3000, NegEdges: 1, Seed: 3}
	p := gen.Pattern(g, cfg)
	if err := p.Validate(); err != nil {
		t.Fatalf("generated pattern invalid: %v\n%s", err, p)
	}
	if len(p.NegatedEdges()) != 1 {
		t.Fatalf("negated edges = %d, want 1\n%s", len(p.NegatedEdges()), p)
	}
	if pi, _ := p.Pi(); len(pi.Nodes) != 5 {
		t.Fatalf("positive part has %d nodes, want 5\n%s", len(pi.Nodes), p)
	}
	if len(p.QuantifiedEdges()) == 0 {
		t.Fatalf("no ratio quantifiers assigned\n%s", p)
	}

	// Determinism.
	p2 := gen.Pattern(g, cfg)
	if p.String() != p2.String() {
		t.Fatal("Pattern is not deterministic in its seed")
	}

	// Distinct seeds give distinct patterns (almost surely).
	ps := gen.Patterns(g, cfg, 5)
	distinct := map[string]bool{}
	for _, q := range ps {
		distinct[q.String()] = true
	}
	if len(distinct) < 2 {
		t.Fatal("Patterns produced no variety")
	}
}

func TestGeneratedPatternsEvaluate(t *testing.T) {
	// Generated patterns must evaluate without error, and frequent-feature
	// seeding should make at least some of them non-empty.
	g := gen.Social(gen.DefaultSocial(1500, 11))
	ps := gen.Patterns(g, gen.PatternConfig{Nodes: 4, Edges: 4, RatioBP: 3000, NegEdges: 1, Seed: 5}, 6)
	nonEmpty := 0
	for _, p := range ps {
		res, err := match.QMatch(g, p, nil)
		if err != nil {
			t.Fatalf("QMatch on generated pattern: %v\n%s", err, p)
		}
		if len(res.Matches) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 0 {
		t.Error("all generated patterns evaluated to empty answers")
	}
}

func TestPatternQuantifierPlacement(t *testing.T) {
	g := gen.Knowledge(gen.DefaultKnowledge(1500, 2))
	p := gen.Pattern(g, gen.PatternConfig{Nodes: 4, Edges: 4, RatioBP: 5000, NegEdges: 0, Seed: 9})
	for _, ei := range p.QuantifiedEdges() {
		if p.Edges[ei].From != p.Focus {
			t.Errorf("quantifier on non-focus edge %d", ei)
		}
		if p.Edges[ei].Q != core.Ratio(core.GE, 5000) {
			t.Errorf("quantifier = %v, want >=50%%", p.Edges[ei].Q)
		}
	}
}

func TestSampledPattern(t *testing.T) {
	g := gen.SmallWorld(gen.SmallWorldConfig{Nodes: 400, Edges: 1200, Labels: 12, Seed: 5})
	for seed := int64(0); seed < 5; seed++ {
		p := gen.SampledPattern(g, gen.PatternConfig{Nodes: 4, Edges: 4, RatioBP: 3000, Seed: seed})
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(p.Nodes) < 2 || len(p.Edges) < 1 {
			t.Fatalf("seed %d: degenerate pattern %v", seed, p)
		}
		// Sampled patterns come from the graph, so their stratified
		// pattern matches somewhere by construction most of the time;
		// at minimum every label must exist in the graph.
		for _, n := range p.Nodes {
			if g.LookupLabel(n.Label) == graph.NoLabel {
				t.Fatalf("seed %d: label %q not in graph", seed, n.Label)
			}
		}
	}
}

func TestSampledPatternWithNegation(t *testing.T) {
	g := gen.SmallWorld(gen.SmallWorldConfig{Nodes: 300, Edges: 900, Labels: 8, Seed: 9})
	p := gen.SampledPattern(g, gen.PatternConfig{Nodes: 4, Edges: 4, RatioBP: 3000, NegEdges: 1, Seed: 3})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.NegatedEdges()) != 1 {
		t.Fatalf("negated edges = %d, want 1", len(p.NegatedEdges()))
	}
}
