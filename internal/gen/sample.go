package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
)

// SampledPattern generates a QGP by extracting a connected subgraph of the
// graph itself and lifting it to a pattern, so the stratified pattern is
// satisfiable by construction (the extraction is one embedding). It is
// the workload generator for label-rich synthetic graphs where frequent
// feature composition often yields unsatisfiable patterns. Quantifier and
// negated-edge placement follow the same rules as Pattern.
func SampledPattern(g *graph.Graph, cfg PatternConfig) *core.Pattern {
	if g.NumEdges() == 0 {
		panic("gen: cannot sample patterns from an edgeless graph")
	}
	for attempt := 0; ; attempt++ {
		r := rand.New(rand.NewSource(cfg.Seed + int64(attempt)*6151))
		p := trySample(r, g, cfg)
		if p != nil {
			return p
		}
		if attempt > 300 {
			panic("gen: could not sample a valid pattern")
		}
	}
}

func trySample(r *rand.Rand, g *graph.Graph, cfg PatternConfig) *core.Pattern {
	// Anchor at a node with out-edges so the focus can carry a quantifier.
	var focus graph.NodeID
	ok := false
	for tries := 0; tries < 50; tries++ {
		focus = graph.NodeID(r.Intn(g.NumNodes()))
		if g.OutDegree(focus) > 0 {
			ok = true
			break
		}
	}
	if !ok {
		return nil
	}

	sample := []graph.NodeID{focus}
	index := map[graph.NodeID]int{focus: 0}
	type pedge struct {
		from, to int
		label    string
	}
	var edges []pedge

	// Random connected growth copying real edges.
	for len(sample) < cfg.Nodes {
		ui := r.Intn(len(sample))
		u := sample[ui]
		all := g.Out(u)
		dir := true
		if len(all) == 0 || (len(g.In(u)) > 0 && r.Intn(3) == 0) {
			all = g.In(u)
			dir = false
		}
		if len(all) == 0 {
			return nil
		}
		ge := all[r.Intn(len(all))]
		w := ge.To
		if _, seen := index[w]; seen {
			continue
		}
		index[w] = len(sample)
		sample = append(sample, w)
		if dir {
			edges = append(edges, pedge{ui, index[w], g.LabelName(ge.Label)})
		} else {
			edges = append(edges, pedge{index[w], ui, g.LabelName(ge.Label)})
		}
	}

	// Closing edges: real edges between sampled nodes.
	for tries := 0; len(edges) < cfg.Edges && tries < 30; tries++ {
		ui := r.Intn(len(sample))
		u := sample[ui]
		outs := g.Out(u)
		if len(outs) == 0 {
			continue
		}
		ge := outs[r.Intn(len(outs))]
		wi, seen := index[ge.To]
		if !seen || wi == ui {
			continue
		}
		dup := false
		for _, e := range edges {
			if e.from == ui && e.to == wi && e.label == g.LabelName(ge.Label) {
				dup = true
				break
			}
		}
		if !dup {
			edges = append(edges, pedge{ui, wi, g.LabelName(ge.Label)})
		}
	}

	p := core.NewPattern()
	for i, v := range sample {
		p.AddNode(nodeName(i), g.NodeLabelName(v))
	}
	quantified := 0
	for _, e := range edges {
		q := core.Exists()
		if e.from == 0 && quantified < 2 && cfg.RatioBP > 0 {
			q = core.Ratio(core.GE, cfg.RatioBP)
			quantified++
		}
		p.Edges = append(p.Edges, core.PEdge{From: e.from, To: e.to, Label: e.label, Q: q})
	}
	if quantified == 0 {
		return nil
	}

	// Negated branches: copy a real out-edge type to a fresh leaf.
	for k := 0; k < cfg.NegEdges; k++ {
		ui := r.Intn(len(sample))
		outs := g.Out(sample[ui])
		if len(outs) == 0 {
			return nil
		}
		ge := outs[r.Intn(len(outs))]
		wName := fmt.Sprintf("neg%d", k)
		p.AddNode(wName, g.NodeLabelName(ge.To))
		p.AddEdge(nodeName(ui), wName, g.LabelName(ge.Label), core.Negated())
	}

	if p.Validate() != nil {
		return nil
	}
	if pi, _ := p.Pi(); !pi.Connected() || len(pi.Nodes) != cfg.Nodes {
		return nil
	}
	return p
}
