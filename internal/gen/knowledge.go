package gen

import (
	"math/rand"

	"repro/internal/graph"
)

// KnowledgeConfig controls the YAGO2-like knowledge graph generator.
type KnowledgeConfig struct {
	People       int
	Universities int
	Prizes       int
	Countries    int
	Seed         int64
}

// DefaultKnowledge returns a laptop-scale YAGO2-shaped configuration:
// sparser than the social graph, with many relation types over a small
// entity-type vocabulary.
func DefaultKnowledge(people int, seed int64) KnowledgeConfig {
	return KnowledgeConfig{
		People:       people,
		Universities: people/200 + 5,
		Prizes:       10,
		Countries:    20,
		Seed:         seed,
	}
}

// Knowledge generates the knowledge graph: an academic world of people
// (some professors, some PhD holders), advisor lineages, universities in
// countries, prizes, and citizenship — the relation vocabulary of the
// paper's Q4/Q5 and R7 examples.
func Knowledge(cfg KnowledgeConfig) *graph.Graph {
	r := rand.New(rand.NewSource(cfg.Seed))
	g := graph.New(cfg.People + cfg.Universities + cfg.Prizes + cfg.Countries + 4)

	people := addNodes(g, cfg.People, "person")
	universities := addNodes(g, cfg.Universities, "university")
	prizes := addNodes(g, cfg.Prizes, "prize")
	countries := addNodes(g, cfg.Countries, "country")
	prof := g.AddNode("prof")
	phd := g.AddNode("PhD")
	scientist := g.AddNode("scientist")

	for _, u := range universities {
		g.AddEdge(u, pick(r, countries), "in")
	}

	// Academic roles: ~30% professors, ~50% PhD holders, with correlation.
	isProf := make([]bool, cfg.People)
	for i, p := range people {
		hasPhD := r.Intn(10) < 5
		isProf[i] = r.Intn(10) < 3
		if isProf[i] && r.Intn(10) < 8 {
			hasPhD = true
		}
		if isProf[i] {
			g.AddEdge(p, prof, "is_a")
		}
		if hasPhD {
			g.AddEdge(p, phd, "is_a")
		}
		if r.Intn(10) < 2 {
			g.AddEdge(p, scientist, "is_a")
		}
		u := pick(r, universities)
		g.AddEdge(p, u, "graduated_from")
		if isProf[i] {
			g.AddEdge(p, u, "works_at")
		}
		g.AddEdge(p, pick(r, countries), "citizen_of")
		if r.Intn(20) == 0 {
			g.AddEdge(p, pick(r, prizes), "won")
			if r.Intn(3) == 0 {
				g.AddEdge(p, pick(r, prizes), "won")
			}
		}
	}

	// Advisor lineages: professors advise 0..8 students with lower ids
	// drawn nearby (academia is clustered).
	for i, p := range people {
		if !isProf[i] {
			continue
		}
		n := r.Intn(9)
		for k := 0; k < n; k++ {
			span := 200
			lo := i - span
			if lo < 0 {
				lo = 0
			}
			hi := i + span
			if hi > cfg.People {
				hi = cfg.People
			}
			s := people[lo+r.Intn(hi-lo)]
			if s != p {
				g.AddEdge(p, s, "advisor")
			}
		}
	}
	g.Finalize()
	return g
}
