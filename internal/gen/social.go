package gen

import (
	"math/rand"

	"repro/internal/graph"
)

// SocialConfig controls the Pokec-like social graph generator.
type SocialConfig struct {
	Persons   int
	AvgFollow int // mean follow out-degree (Pokec ≈ 14)
	Products  int
	Albums    int
	Clubs     int
	Cities    int
	Hobbies   int
	Seed      int64
}

// DefaultSocial returns a laptop-scale configuration whose shape matches
// the Pokec workload: skewed follow degrees, a product/album/club/city
// entity layer, and the follow/like/recom/buy/bad_rating/in edge types the
// paper's example patterns use.
func DefaultSocial(persons int, seed int64) SocialConfig {
	return SocialConfig{
		Persons:   persons,
		AvgFollow: 14,
		Products:  persons/100 + 5,
		Albums:    persons/100 + 5,
		Clubs:     persons/200 + 3,
		Cities:    persons/500 + 3,
		Hobbies:   persons/200 + 3,
		Seed:      seed,
	}
}

// Social generates the social graph. Person behaviour is community
// correlated: each person belongs to one of ~sqrt(P) communities; follows
// stay inside the community 70% of the time, and people in the same
// community tend to like the same albums and recommend the same products —
// this is what makes ratio quantifiers (≥ p% of followees like y) and
// association rules discover non-trivial structure.
func Social(cfg SocialConfig) *graph.Graph {
	r := rand.New(rand.NewSource(cfg.Seed))
	est := cfg.Persons * (cfg.AvgFollow + 4)
	g := graph.New(cfg.Persons + cfg.Products + cfg.Albums + cfg.Clubs + cfg.Cities + cfg.Hobbies)
	_ = est

	persons := addNodes(g, cfg.Persons, "person")
	products := addNodes(g, cfg.Products, "product")
	albums := addNodes(g, cfg.Albums, "album")
	clubs := addNodes(g, cfg.Clubs, "club")
	cities := addNodes(g, cfg.Cities, "city")
	hobbies := addNodes(g, cfg.Hobbies, "hobby")

	nComm := 1
	for nComm*nComm < cfg.Persons {
		nComm++
	}
	comm := make([]int, cfg.Persons)
	// Per-community preferences.
	commAlbum := make([]graph.NodeID, nComm)
	commProduct := make([]graph.NodeID, nComm)
	commHobby := make([]graph.NodeID, nComm)
	commClub := make([]graph.NodeID, nComm)
	for c := 0; c < nComm; c++ {
		commAlbum[c] = pick(r, albums)
		commProduct[c] = pick(r, products)
		commHobby[c] = pick(r, hobbies)
		commClub[c] = pick(r, clubs)
	}
	members := make([][]graph.NodeID, nComm)
	for i, p := range persons {
		c := r.Intn(nComm)
		comm[i] = c
		members[c] = append(members[c], p)
	}

	for i, p := range persons {
		c := comm[i]
		g.AddEdge(p, pick(r, cities), "in")
		if r.Intn(3) == 0 {
			g.AddEdge(p, commClub[c], "in")
		}
		// Follow edges: mostly intra-community.
		deg := zipfOutDegree(r, cfg.AvgFollow, 20)
		for k := 0; k < deg; k++ {
			var q graph.NodeID
			if r.Intn(10) < 7 && len(members[c]) > 1 {
				q = pick(r, members[c])
			} else {
				q = pick(r, persons)
			}
			if q != p {
				g.AddEdge(p, q, "follow")
			}
		}
		// Tastes: community album/hobby with high probability, plus noise.
		if r.Intn(10) < 8 {
			g.AddEdge(p, commAlbum[c], "like")
		}
		if r.Intn(10) < 3 {
			g.AddEdge(p, pick(r, albums), "like")
		}
		if r.Intn(10) < 5 {
			g.AddEdge(p, commHobby[c], "like")
		}
		// Product interactions.
		if r.Intn(10) < 6 {
			g.AddEdge(p, commProduct[c], "recom")
		}
		if r.Intn(10) < 2 {
			g.AddEdge(p, pick(r, products), "recom")
		}
		if r.Intn(10) < 3 {
			g.AddEdge(p, commProduct[c], "buy")
		}
		if r.Intn(20) == 0 {
			g.AddEdge(p, pick(r, products), "bad_rating")
		}
	}
	g.Finalize()
	return g
}
