package gen

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
)

// PatternConfig controls the QGP generator of §7: stratified patterns of
// |VQ| nodes and |EQ| edges built from the graph's most frequent features,
// ratio quantifiers of pa% on focus edges, and |E−Q| negated edges added
// as fresh branches (the Q3/Q4 shape).
type PatternConfig struct {
	Nodes    int // |VQ| of the positive part
	Edges    int // |EQ| target of the positive part (≥ Nodes-1)
	RatioBP  int // pa in basis points (3000 = the paper's default 30%)
	NegEdges int // |E−Q|
	Seed     int64
}

// Feature is a frequent (source label, edge label, target label) triple
// mined from a graph.
type Feature struct {
	Src, Edge, Dst string
	Count          int
}

// MineFeatures counts label triples over all edges and returns them in
// descending frequency — the paper's "frequent features" (edges; paths
// arise by composing them during growth).
func MineFeatures(g *graph.Graph) []Feature {
	counts := make(map[[3]graph.LabelID]int)
	for v := 0; v < g.NumNodes(); v++ {
		src := g.NodeLabel(graph.NodeID(v))
		for _, e := range g.Out(graph.NodeID(v)) {
			counts[[3]graph.LabelID{src, e.Label, g.NodeLabel(e.To)}]++
		}
	}
	feats := make([]Feature, 0, len(counts))
	for k, c := range counts {
		feats = append(feats, Feature{
			Src:   g.LabelName(k[0]),
			Edge:  g.LabelName(k[1]),
			Dst:   g.LabelName(k[2]),
			Count: c,
		})
	}
	sort.Slice(feats, func(i, j int) bool {
		if feats[i].Count != feats[j].Count {
			return feats[i].Count > feats[j].Count
		}
		return feats[i].Src+feats[i].Edge+feats[i].Dst < feats[j].Src+feats[j].Edge+feats[j].Dst
	})
	return feats
}

// Pattern generates one QGP from the graph's frequent features. It retries
// internally until the result passes core validation; patterns place ratio
// quantifiers on focus out-edges only, which keeps any focus-anchored path
// within the paper's l = 2 budget by construction.
func Pattern(g *graph.Graph, cfg PatternConfig) *core.Pattern {
	feats := MineFeatures(g)
	if len(feats) == 0 {
		panic("gen: graph has no edges to mine features from")
	}
	// The paper combines the top-5 features as seeds.
	seeds := feats
	if len(seeds) > 25 {
		seeds = seeds[:25]
	}
	bySrc := make(map[string][]Feature)
	byDst := make(map[string][]Feature)
	for _, f := range seeds {
		bySrc[f.Src] = append(bySrc[f.Src], f)
		byDst[f.Dst] = append(byDst[f.Dst], f)
	}

	for attempt := 0; ; attempt++ {
		r := rand.New(rand.NewSource(cfg.Seed + int64(attempt)*7919))
		p := tryPattern(r, cfg, seeds, bySrc, byDst)
		if p != nil {
			return p
		}
		if attempt > 200 {
			panic("gen: could not generate a valid pattern; graph too sparse in features")
		}
	}
}

// Patterns generates count patterns with distinct derived seeds.
func Patterns(g *graph.Graph, cfg PatternConfig, count int) []*core.Pattern {
	out := make([]*core.Pattern, count)
	for i := range out {
		c := cfg
		c.Seed = cfg.Seed + int64(i)*104729
		out[i] = Pattern(g, c)
	}
	return out
}

func tryPattern(r *rand.Rand, cfg PatternConfig, seeds []Feature, bySrc, byDst map[string][]Feature) *core.Pattern {
	p := core.NewPattern()
	// Focus: source label of one of the top seeds (biased to the top).
	seed := seeds[r.Intn(1+r.Intn(len(seeds)))]
	p.AddNode("xo", seed.Src)
	labels := []string{seed.Src}

	// Grow a connected positive part to cfg.Nodes nodes.
	for len(labels) < cfg.Nodes {
		ui := r.Intn(len(labels))
		uName := nodeName(ui)
		var grown bool
		if fs := bySrc[labels[ui]]; len(fs) > 0 && r.Intn(4) != 0 {
			f := fs[r.Intn(len(fs))]
			wName := nodeName(len(labels))
			p.AddNode(wName, f.Dst)
			p.AddEdge(uName, wName, f.Edge, core.Exists())
			labels = append(labels, f.Dst)
			grown = true
		} else if fs := byDst[labels[ui]]; len(fs) > 0 {
			f := fs[r.Intn(len(fs))]
			wName := nodeName(len(labels))
			p.AddNode(wName, f.Src)
			p.AddEdge(wName, uName, f.Edge, core.Exists())
			labels = append(labels, f.Src)
			grown = true
		}
		if !grown {
			return nil
		}
	}

	// Close extra edges up to cfg.Edges using frequent triples between
	// existing nodes.
	for tries := 0; len(p.Edges) < cfg.Edges && tries < 40; tries++ {
		ui, wi := r.Intn(len(labels)), r.Intn(len(labels))
		if ui == wi {
			continue
		}
		var chosen *Feature
		for _, f := range bySrc[labels[ui]] {
			if f.Dst == labels[wi] && !hasEdge(p, ui, wi, f.Edge) {
				chosen = &f
				break
			}
		}
		if chosen == nil {
			continue
		}
		p.AddEdge(nodeName(ui), nodeName(wi), chosen.Edge, core.Exists())
	}

	// Ratio quantifiers on focus out-edges (up to 2; l = 2 by construction).
	quantified := 0
	for i := range p.Edges {
		if p.Edges[i].From == 0 && quantified < 2 {
			p.Edges[i].Q = core.Ratio(core.GE, cfg.RatioBP)
			quantified++
		}
	}
	if quantified == 0 {
		return nil // focus had only in-edges; retry
	}

	// Negated edges: fresh leaf branches hanging off distinct nodes.
	for k := 0; k < cfg.NegEdges; k++ {
		ui := r.Intn(len(labels))
		fs := bySrc[labels[ui]]
		if len(fs) == 0 {
			return nil
		}
		f := fs[r.Intn(len(fs))]
		wName := fmt.Sprintf("neg%d", k)
		p.AddNode(wName, f.Dst)
		p.AddEdge(nodeName(ui), wName, f.Edge, core.Negated())
	}

	if p.Validate() != nil {
		return nil
	}
	if pi, _ := p.Pi(); !pi.Connected() || len(pi.Nodes) != cfg.Nodes {
		return nil
	}
	return p
}

func nodeName(i int) string {
	if i == 0 {
		return "xo"
	}
	return fmt.Sprintf("u%d", i)
}

func hasEdge(p *core.Pattern, from, to int, label string) bool {
	for _, e := range p.Edges {
		if e.From == from && e.To == to && e.Label == label {
			return true
		}
	}
	return false
}
