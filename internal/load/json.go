package load

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/graph"
)

// JSONGraph is the JSON property-graph document:
//
//	{
//	  "nodes": [{"id": "alice", "label": "Person"}, ...],
//	  "edges": [{"from": "alice", "to": "bob", "label": "follow"}, ...]
//	}
//
// Node ids are unique non-empty strings; edges may only reference declared
// nodes (unlike CSV, the JSON format is schema-first).
type JSONGraph struct {
	Nodes []JSONNode `json:"nodes"`
	Edges []JSONEdge `json:"edges"`
}

// JSONNode declares a node.
type JSONNode struct {
	ID    string `json:"id"`
	Label string `json:"label"`
}

// JSONEdge declares an edge.
type JSONEdge struct {
	From  string `json:"from"`
	To    string `json:"to"`
	Label string `json:"label"`
}

// JSON reads a property-graph document.
func JSON(r io.Reader) (*Result, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var doc JSONGraph
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("load: json: %w", err)
	}
	return FromDocument(&doc)
}

// FromDocument builds a graph from an in-memory document.
func FromDocument(doc *JSONGraph) (*Result, error) {
	res := &Result{Graph: graph.New(len(doc.Nodes)), Index: make(map[string]graph.NodeID, len(doc.Nodes))}
	for i, n := range doc.Nodes {
		if n.ID == "" {
			return nil, fmt.Errorf("load: json: node %d has empty id", i)
		}
		if n.Label == "" {
			return nil, fmt.Errorf("load: json: node %q has empty label", n.ID)
		}
		if _, dup := res.Index[n.ID]; dup {
			return nil, fmt.Errorf("load: json: duplicate node id %q", n.ID)
		}
		v := res.Graph.AddNode(n.Label)
		res.Index[n.ID] = v
		res.IDs = append(res.IDs, n.ID)
	}
	for i, e := range doc.Edges {
		from, ok := res.Index[e.From]
		if !ok {
			return nil, fmt.Errorf("load: json: edge %d references undeclared node %q", i, e.From)
		}
		to, ok := res.Index[e.To]
		if !ok {
			return nil, fmt.Errorf("load: json: edge %d references undeclared node %q", i, e.To)
		}
		if e.Label == "" {
			return nil, fmt.Errorf("load: json: edge %d has empty label", i)
		}
		res.Graph.AddEdge(from, to, e.Label)
	}
	res.Graph.Finalize()
	return res, nil
}

// ToDocument converts a graph to the JSON document model, using the
// external ids when provided (falling back to "n<id>").
func ToDocument(g *graph.Graph, ids []string) *JSONGraph {
	doc := &JSONGraph{}
	name := func(v graph.NodeID) string {
		if int(v) < len(ids) && ids[v] != "" {
			return ids[v]
		}
		return fmt.Sprintf("n%d", int(v))
	}
	for vi := 0; vi < g.NumNodes(); vi++ {
		v := graph.NodeID(vi)
		doc.Nodes = append(doc.Nodes, JSONNode{ID: name(v), Label: g.NodeLabelName(v)})
	}
	for vi := 0; vi < g.NumNodes(); vi++ {
		v := graph.NodeID(vi)
		for _, e := range g.Out(v) {
			doc.Edges = append(doc.Edges, JSONEdge{From: name(v), To: name(e.To), Label: g.LabelName(e.Label)})
		}
	}
	return doc
}

// WriteJSON writes the graph as an indented JSON document.
func WriteJSON(w io.Writer, g *graph.Graph, ids []string) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(ToDocument(g, ids)); err != nil {
		return fmt.Errorf("load: json: %w", err)
	}
	return nil
}
