// Package load reads and writes graphs in common interchange formats:
// CSV/TSV edge lists (the format of public datasets such as SNAP's Pokec
// dump the paper evaluates on) and a JSON property-graph document. Node
// ids in these formats are arbitrary strings; loaders intern them densely
// in first-appearance order and return the mapping, so external ids
// survive a round trip.
package load

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"

	"repro/internal/graph"
)

// CSVOptions controls the edge-list reader.
type CSVOptions struct {
	// Comma is the field separator; 0 means ',' (use '\t' for TSV).
	Comma rune
	// HasHeader skips the first record.
	HasHeader bool
	// FromCol and ToCol are the 0-based columns of the edge endpoints.
	FromCol, ToCol int
	// LabelCol is the 0-based column of the edge label. Values ≤ 0
	// disable it (column 0 is always an endpoint in supported layouts)
	// and every edge gets DefaultEdgeLabel.
	LabelCol int
	// DefaultEdgeLabel is the edge label when LabelCol ≤ 0 (default "edge").
	DefaultEdgeLabel string
	// NodeLabelCol, when > 0, is a column giving the *source* node's
	// label; nodes first seen as targets keep DefaultNodeLabel.
	NodeLabelCol int
	// DefaultNodeLabel is the label of nodes without one (default "node").
	DefaultNodeLabel string
	// Comment, when nonzero, makes lines starting with it skipped.
	Comment rune
}

// Result is a loaded graph with the external-id mapping.
type Result struct {
	Graph *graph.Graph
	// IDs[v] is the external id of node v.
	IDs []string
	// Index maps external ids back to node ids.
	Index map[string]graph.NodeID
}

// CSV reads an edge list. Malformed rows produce errors carrying the
// 1-based line number.
func CSV(r io.Reader, opts CSVOptions) (*Result, error) {
	if opts.Comma == 0 {
		opts.Comma = ','
	}
	if opts.DefaultEdgeLabel == "" {
		opts.DefaultEdgeLabel = "edge"
	}
	if opts.DefaultNodeLabel == "" {
		opts.DefaultNodeLabel = "node"
	}
	if opts.FromCol == 0 && opts.ToCol == 0 {
		// Zero value: the conventional "from,to[,label]" layout.
		opts.ToCol = 1
	}
	if opts.FromCol < 0 || opts.ToCol < 0 {
		return nil, fmt.Errorf("load: negative endpoint column")
	}
	if opts.FromCol == opts.ToCol {
		return nil, fmt.Errorf("load: FromCol and ToCol are both %d", opts.FromCol)
	}
	cr := csv.NewReader(r)
	cr.Comma = opts.Comma
	cr.Comment = opts.Comment
	cr.FieldsPerRecord = -1 // validated per row below
	cr.TrimLeadingSpace = true

	res := &Result{Graph: graph.New(0), Index: make(map[string]graph.NodeID)}
	need := opts.FromCol
	for _, c := range []int{opts.ToCol, opts.LabelCol, opts.NodeLabelCol} {
		if c > need {
			need = c
		}
	}

	intern := func(id, label string) graph.NodeID {
		if v, ok := res.Index[id]; ok {
			return v
		}
		v := res.Graph.AddNode(label)
		res.Index[id] = v
		res.IDs = append(res.IDs, id)
		return v
	}

	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("load: line %d: %w", line, err)
		}
		if opts.HasHeader && line == 1 {
			continue
		}
		if len(rec) == 1 && strings.TrimSpace(rec[0]) == "" {
			continue
		}
		if len(rec) <= need {
			return nil, fmt.Errorf("load: line %d: %d fields, need at least %d", line, len(rec), need+1)
		}
		fromID := strings.TrimSpace(rec[opts.FromCol])
		toID := strings.TrimSpace(rec[opts.ToCol])
		if fromID == "" || toID == "" {
			return nil, fmt.Errorf("load: line %d: empty endpoint id", line)
		}
		srcLabel := opts.DefaultNodeLabel
		if opts.NodeLabelCol > 0 {
			srcLabel = strings.TrimSpace(rec[opts.NodeLabelCol])
		}
		from := intern(fromID, srcLabel)
		to := intern(toID, opts.DefaultNodeLabel)
		label := opts.DefaultEdgeLabel
		if opts.LabelCol > 0 {
			label = strings.TrimSpace(rec[opts.LabelCol])
			if label == "" {
				return nil, fmt.Errorf("load: line %d: empty edge label", line)
			}
		}
		res.Graph.AddEdge(from, to, label)
	}
	res.Graph.Finalize()
	return res, nil
}

// WriteCSV writes the graph as a "from,to,label" edge list using the
// external ids when provided (ids[v] == "" or ids == nil falls back to
// the numeric id).
func WriteCSV(w io.Writer, g *graph.Graph, ids []string) error {
	cw := csv.NewWriter(w)
	name := func(v graph.NodeID) string {
		if int(v) < len(ids) && ids[v] != "" {
			return ids[v]
		}
		return fmt.Sprint(int(v))
	}
	for vi := 0; vi < g.NumNodes(); vi++ {
		v := graph.NodeID(vi)
		for _, e := range g.Out(v) {
			if err := cw.Write([]string{name(v), name(e.To), g.LabelName(e.Label)}); err != nil {
				return fmt.Errorf("load: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
