package load

import (
	"bytes"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestCSVBasic(t *testing.T) {
	in := "alice,bob,follow\nbob,carol,follow\nalice,carol,like\n"
	res, err := CSV(strings.NewReader(in), CSVOptions{LabelCol: 2})
	if err != nil {
		t.Fatal(err)
	}
	g := res.Graph
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("loaded %d/%d, want 3/3", g.NumNodes(), g.NumEdges())
	}
	if !reflect.DeepEqual(res.IDs, []string{"alice", "bob", "carol"}) {
		t.Errorf("IDs = %v", res.IDs)
	}
	a, b := res.Index["alice"], res.Index["bob"]
	if !g.HasEdge(a, b, g.LookupLabel("follow")) {
		t.Error("alice-follow->bob missing")
	}
}

func TestCSVDefaultsAndTSV(t *testing.T) {
	in := "1\t2\n2\t3\n"
	res, err := CSV(strings.NewReader(in), CSVOptions{Comma: '\t', FromCol: 0, ToCol: 1, LabelCol: -1})
	if err != nil {
		t.Fatal(err)
	}
	g := res.Graph
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	if g.LookupLabel("edge") == graph.NoLabel {
		t.Error("default edge label not applied")
	}
	if g.NodeLabelName(0) != "node" {
		t.Errorf("default node label = %q", g.NodeLabelName(0))
	}
}

func TestCSVHeaderAndComments(t *testing.T) {
	in := "from,to,rel\n# a comment\nx,y,knows\n"
	res, err := CSV(strings.NewReader(in), CSVOptions{HasHeader: true, LabelCol: 2, Comment: '#'})
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.NumEdges() != 1 || res.Graph.NumNodes() != 2 {
		t.Fatalf("got %d/%d", res.Graph.NumNodes(), res.Graph.NumEdges())
	}
}

func TestCSVNodeLabelColumn(t *testing.T) {
	in := "alice,bob,follow,Person\n"
	res, err := CSV(strings.NewReader(in), CSVOptions{LabelCol: 2, NodeLabelCol: 3})
	if err != nil {
		t.Fatal(err)
	}
	g := res.Graph
	if g.NodeLabelName(res.Index["alice"]) != "Person" {
		t.Errorf("alice label = %q", g.NodeLabelName(res.Index["alice"]))
	}
	// bob was first seen as a target: default label.
	if g.NodeLabelName(res.Index["bob"]) != "node" {
		t.Errorf("bob label = %q", g.NodeLabelName(res.Index["bob"]))
	}
}

func TestCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		opts CSVOptions
	}{
		{"shortRow", "a\n", CSVOptions{LabelCol: 2}},
		{"emptyFrom", ",b,x\n", CSVOptions{LabelCol: 2}},
		{"emptyLabel", "a,b,\n", CSVOptions{LabelCol: 2}},
		{"negativeEndpoint", "a,b\n", CSVOptions{FromCol: -1, LabelCol: -1}},
	}
	for _, c := range cases {
		if _, err := CSV(strings.NewReader(c.in), c.opts); err == nil {
			t.Errorf("%s: accepted", c.name)
		} else if c.name == "shortRow" && !strings.Contains(err.Error(), "line 1") {
			t.Errorf("%s: error lacks line number: %v", c.name, err)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	g := gen.Social(gen.DefaultSocial(50, 2))
	var buf bytes.Buffer
	if err := WriteCSV(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	res, err := CSV(bytes.NewReader(buf.Bytes()), CSVOptions{LabelCol: 2, DefaultNodeLabel: "node"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.NumEdges() != g.NumEdges() {
		t.Errorf("edges: %d != %d", res.Graph.NumEdges(), g.NumEdges())
	}
	// Node labels are not carried by a bare edge list; only ids and edges
	// survive. Isolated nodes are dropped by the format — assert only
	// that every edge survived.
	for vi := 0; vi < g.NumNodes(); vi++ {
		v := graph.NodeID(vi)
		for _, e := range g.Out(v) {
			nv, ok := res.Index[itoa(int(v))]
			if !ok {
				t.Fatalf("node %d missing", v)
			}
			nt, ok := res.Index[itoa(int(e.To))]
			if !ok {
				t.Fatalf("node %d missing", e.To)
			}
			if !res.Graph.HasEdge(nv, nt, res.Graph.LookupLabel(g.LabelName(e.Label))) {
				t.Fatalf("edge %d->%d lost", v, e.To)
			}
		}
	}
}

func itoa(i int) string { return strconv.Itoa(i) }

func TestJSONBasic(t *testing.T) {
	in := `{
	  "nodes": [
	    {"id": "alice", "label": "Person"},
	    {"id": "redmi", "label": "Product"}
	  ],
	  "edges": [
	    {"from": "alice", "to": "redmi", "label": "buy"}
	  ]
	}`
	res, err := JSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	g := res.Graph
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("got %d/%d", g.NumNodes(), g.NumEdges())
	}
	if g.NodeLabelName(res.Index["alice"]) != "Person" {
		t.Error("node label lost")
	}
}

func TestJSONErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"syntax", `{"nodes": [}`},
		{"unknownField", `{"nodes": [], "edges": [], "extra": 1}`},
		{"emptyID", `{"nodes": [{"id": "", "label": "X"}], "edges": []}`},
		{"emptyLabel", `{"nodes": [{"id": "a", "label": ""}], "edges": []}`},
		{"dupID", `{"nodes": [{"id": "a", "label": "X"}, {"id": "a", "label": "X"}], "edges": []}`},
		{"danglingFrom", `{"nodes": [{"id": "a", "label": "X"}], "edges": [{"from": "z", "to": "a", "label": "e"}]}`},
		{"danglingTo", `{"nodes": [{"id": "a", "label": "X"}], "edges": [{"from": "a", "to": "z", "label": "e"}]}`},
		{"emptyEdgeLabel", `{"nodes": [{"id": "a", "label": "X"}], "edges": [{"from": "a", "to": "a", "label": ""}]}`},
	}
	for _, c := range cases {
		if _, err := JSON(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := gen.Knowledge(gen.DefaultKnowledge(40, 3))
	var buf bytes.Buffer
	if err := WriteJSON(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	res, err := JSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	ng := res.Graph
	if ng.NumNodes() != g.NumNodes() || ng.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip %d/%d != %d/%d", ng.NumNodes(), ng.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	for vi := 0; vi < g.NumNodes(); vi++ {
		v := graph.NodeID(vi)
		if ng.NodeLabelName(v) != g.NodeLabelName(v) {
			t.Fatalf("node %d label %q != %q", v, ng.NodeLabelName(v), g.NodeLabelName(v))
		}
		for _, e := range g.Out(v) {
			if !ng.HasEdge(v, e.To, ng.LookupLabel(g.LabelName(e.Label))) {
				t.Fatalf("edge %d->%d lost", v, e.To)
			}
		}
	}
}
