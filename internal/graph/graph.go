// Package graph provides the labeled, directed graph substrate used by the
// quantified-matching system: compact adjacency storage indexed by edge
// label, label interning, node-label indexes, d-hop neighborhoods, induced
// subgraphs and text serialization.
//
// A Graph is built incrementally with AddNode/AddEdge and must be finalized
// with Finalize before queries. Finalize sorts adjacency lists (by label,
// then endpoint) and builds the label index; it is idempotent.
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node within a Graph. IDs are dense, starting at 0.
type NodeID int32

// LabelID identifies an interned label (node or edge) within a Graph.
type LabelID int32

// NoLabel is returned by lookups for labels that are not present.
const NoLabel LabelID = -1

// Edge is one half-edge in an adjacency list: the other endpoint and the
// edge label.
type Edge struct {
	To    NodeID
	Label LabelID
}

// Graph is a labeled directed multigraph. The zero value is an empty graph
// ready for use.
type Graph struct {
	interner  Interner
	nodeLabel []LabelID
	out       [][]Edge
	in        [][]Edge
	numEdges  int

	finalized bool
	byLabel   map[LabelID][]NodeID
	// outCount[v][label] = number of distinct out-neighbors of v via label,
	// i.e. |Me(v)| in the paper's notation. Built by Finalize.
	outCount []map[LabelID]int32
}

// New returns an empty graph with capacity hints for n nodes.
func New(n int) *Graph {
	return &Graph{
		nodeLabel: make([]LabelID, 0, n),
		out:       make([][]Edge, 0, n),
		in:        make([][]Edge, 0, n),
	}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodeLabel) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return g.numEdges }

// Size returns |G| = |V| + |E|, the size measure used by the paper.
func (g *Graph) Size() int { return g.NumNodes() + g.NumEdges() }

// Interner exposes the graph's label interner (read-only use by callers).
func (g *Graph) Interner() *Interner { return &g.interner }

// Label interns s and returns its id.
func (g *Graph) Label(s string) LabelID { return g.interner.Intern(s) }

// LookupLabel returns the id for s, or NoLabel if s was never interned.
func (g *Graph) LookupLabel(s string) LabelID { return g.interner.Lookup(s) }

// LabelName returns the string for an interned label id.
func (g *Graph) LabelName(id LabelID) string { return g.interner.Name(id) }

// AddNode appends a node with the given label and returns its id.
func (g *Graph) AddNode(label string) NodeID {
	return g.AddNodeLabel(g.Label(label))
}

// AddNodeLabel appends a node with an already-interned label.
func (g *Graph) AddNodeLabel(l LabelID) NodeID {
	id := NodeID(len(g.nodeLabel))
	g.nodeLabel = append(g.nodeLabel, l)
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	g.finalized = false
	return id
}

// AddEdge adds a directed edge from -> to with the given label string.
func (g *Graph) AddEdge(from, to NodeID, label string) {
	g.AddEdgeLabel(from, to, g.Label(label))
}

// AddEdgeLabel adds a directed edge with an already-interned label.
// Duplicate (from, to, label) triples are ignored at Finalize time.
func (g *Graph) AddEdgeLabel(from, to NodeID, l LabelID) {
	g.out[from] = append(g.out[from], Edge{To: to, Label: l})
	g.in[to] = append(g.in[to], Edge{To: from, Label: l})
	g.numEdges++
	g.finalized = false
}

// NodeLabel returns the label id of node v.
func (g *Graph) NodeLabel(v NodeID) LabelID { return g.nodeLabel[v] }

// NodeLabelName returns the label string of node v.
func (g *Graph) NodeLabelName(v NodeID) string { return g.interner.Name(g.nodeLabel[v]) }

// Finalize sorts adjacency, removes duplicate parallel edges with identical
// labels, and builds the node-label and out-degree-per-label indexes.
func (g *Graph) Finalize() {
	if g.finalized {
		return
	}
	dedup := func(adj [][]Edge) int {
		removed := 0
		for v := range adj {
			es := adj[v]
			sort.Slice(es, func(i, j int) bool {
				if es[i].Label != es[j].Label {
					return es[i].Label < es[j].Label
				}
				return es[i].To < es[j].To
			})
			w := 0
			for i, e := range es {
				if i > 0 && e == es[i-1] {
					removed++
					continue
				}
				es[w] = e
				w++
			}
			adj[v] = es[:w]
		}
		return removed
	}
	removedOut := dedup(g.out)
	dedup(g.in)
	g.numEdges -= removedOut

	g.byLabel = make(map[LabelID][]NodeID)
	for v, l := range g.nodeLabel {
		g.byLabel[l] = append(g.byLabel[l], NodeID(v))
	}
	g.outCount = make([]map[LabelID]int32, len(g.out))
	for v, es := range g.out {
		m := make(map[LabelID]int32, 4)
		for _, e := range es {
			m[e.Label]++
		}
		g.outCount[v] = m
	}
	g.finalized = true
}

func (g *Graph) mustFinal() {
	if !g.finalized {
		panic("graph: query before Finalize")
	}
}

// Out returns the sorted out-adjacency of v. The slice must not be modified.
func (g *Graph) Out(v NodeID) []Edge { return g.out[v] }

// In returns the sorted in-adjacency of v (Edge.To is the source node).
func (g *Graph) In(v NodeID) []Edge { return g.in[v] }

// OutDegree returns the total out-degree of v.
func (g *Graph) OutDegree(v NodeID) int { return len(g.out[v]) }

// InDegree returns the total in-degree of v.
func (g *Graph) InDegree(v NodeID) int { return len(g.in[v]) }

// OutByLabel returns the contiguous sub-slice of Out(v) whose edges carry
// label l. This is Me(v) from the paper for an edge labeled l.
func (g *Graph) OutByLabel(v NodeID, l LabelID) []Edge {
	g.mustFinal()
	es := g.out[v]
	lo := sort.Search(len(es), func(i int) bool { return es[i].Label >= l })
	hi := sort.Search(len(es), func(i int) bool { return es[i].Label > l })
	return es[lo:hi]
}

// InByLabel returns the in-edges of v carrying label l.
func (g *Graph) InByLabel(v NodeID, l LabelID) []Edge {
	g.mustFinal()
	es := g.in[v]
	lo := sort.Search(len(es), func(i int) bool { return es[i].Label >= l })
	hi := sort.Search(len(es), func(i int) bool { return es[i].Label > l })
	return es[lo:hi]
}

// CountOut returns |Me(v)| — the number of out-edges of v labeled l.
func (g *Graph) CountOut(v NodeID, l LabelID) int {
	g.mustFinal()
	return int(g.outCount[v][l])
}

// HasEdge reports whether the edge (from, to) with label l exists.
func (g *Graph) HasEdge(from, to NodeID, l LabelID) bool {
	es := g.OutByLabel(from, l)
	i := sort.Search(len(es), func(i int) bool { return es[i].To >= to })
	return i < len(es) && es[i].To == to
}

// NodesByLabel returns all nodes carrying label l. The slice must not be
// modified.
func (g *Graph) NodesByLabel(l LabelID) []NodeID {
	g.mustFinal()
	return g.byLabel[l]
}

// NodesByLabelName is NodesByLabel for a label string; it returns nil when
// the label does not occur.
func (g *Graph) NodesByLabelName(s string) []NodeID {
	l := g.LookupLabel(s)
	if l == NoLabel {
		return nil
	}
	return g.NodesByLabel(l)
}

// Labels returns the number of distinct interned labels.
func (g *Graph) Labels() int { return g.interner.Len() }

// Neighborhood returns the set of nodes within d undirected hops of v
// (including v itself), in ascending order. This is the node set of Nd(v).
func (g *Graph) Neighborhood(v NodeID, d int) []NodeID {
	g.mustFinal()
	seen := map[NodeID]bool{v: true}
	frontier := []NodeID{v}
	for hop := 0; hop < d; hop++ {
		var next []NodeID
		for _, u := range frontier {
			for _, e := range g.out[u] {
				if !seen[e.To] {
					seen[e.To] = true
					next = append(next, e.To)
				}
			}
			for _, e := range g.in[u] {
				if !seen[e.To] {
					seen[e.To] = true
					next = append(next, e.To)
				}
			}
		}
		frontier = next
	}
	out := make([]NodeID, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NeighborhoodSize returns |Nd(v)| measured as nodes + edges of the induced
// subgraph, the size measure used by DPar's knapsack weights.
func (g *Graph) NeighborhoodSize(v NodeID, d int) int {
	nodes := g.Neighborhood(v, d)
	in := make(map[NodeID]bool, len(nodes))
	for _, u := range nodes {
		in[u] = true
	}
	edges := 0
	for _, u := range nodes {
		for _, e := range g.out[u] {
			if in[e.To] {
				edges++
			}
		}
	}
	return len(nodes) + edges
}

// Induced returns the subgraph induced by nodes, along with the mapping from
// new (local) ids to the original ids. Labels share the same interner values
// by name. The input need not be sorted; duplicates are ignored.
func (g *Graph) Induced(nodes []NodeID) (*Graph, []NodeID) {
	g.mustFinal()
	return InducedOf(g, nodes)
}

// Stats summarizes a graph for logging and the experiment reports.
type Stats struct {
	Nodes, Edges int
	NodeLabels   int
	MaxOutDeg    int
	AvgDeg       float64
}

// ComputeStats returns summary statistics of the graph.
func (g *Graph) ComputeStats() Stats {
	s := Stats{Nodes: g.NumNodes(), Edges: g.NumEdges()}
	seen := map[LabelID]bool{}
	for _, l := range g.nodeLabel {
		seen[l] = true
	}
	s.NodeLabels = len(seen)
	for v := range g.out {
		if d := len(g.out[v]); d > s.MaxOutDeg {
			s.MaxOutDeg = d
		}
	}
	if s.Nodes > 0 {
		s.AvgDeg = float64(s.Edges) / float64(s.Nodes)
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("|V|=%d |E|=%d labels=%d maxOut=%d avgDeg=%.2f",
		s.Nodes, s.Edges, s.NodeLabels, s.MaxOutDeg, s.AvgDeg)
}
