package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/scan"
)

// The text format is line oriented:
//
//	graph <numNodes>
//	n <id> <label>
//	e <from> <to> <label>
//
// Node lines must precede edge lines that reference them; ids must be the
// dense 0..numNodes-1 range in order. Lines starting with '#' are comments.

// WriteTo serializes g in the text format. It returns the number of bytes
// written.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	count := func(c int, err error) error {
		n += int64(c)
		return err
	}
	if err := count(fmt.Fprintf(bw, "graph %d\n", g.NumNodes())); err != nil {
		return n, err
	}
	for v := 0; v < g.NumNodes(); v++ {
		if err := count(fmt.Fprintf(bw, "n %d %s\n", v, scan.Quote(g.NodeLabelName(NodeID(v))))); err != nil {
			return n, err
		}
	}
	for v := 0; v < g.NumNodes(); v++ {
		for _, e := range g.out[v] {
			if err := count(fmt.Fprintf(bw, "e %d %d %s\n", v, e.To, scan.Quote(g.interner.Name(e.Label)))); err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

// Read parses a graph in the text format and finalizes it.
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var g *Graph
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields, err := scan.Fields(text)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
		switch fields[0] {
		case "graph":
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: malformed header", line)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("graph: line %d: bad node count %q", line, fields[1])
			}
			g = New(n)
		case "n":
			if g == nil {
				return nil, fmt.Errorf("graph: line %d: node before header", line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: malformed node line", line)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil || id != g.NumNodes() {
				return nil, fmt.Errorf("graph: line %d: node ids must be dense and in order", line)
			}
			g.AddNode(fields[2])
		case "e":
			if g == nil {
				return nil, fmt.Errorf("graph: line %d: edge before header", line)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("graph: line %d: malformed edge line", line)
			}
			from, err1 := strconv.Atoi(fields[1])
			to, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil ||
				from < 0 || from >= g.NumNodes() || to < 0 || to >= g.NumNodes() {
				return nil, fmt.Errorf("graph: line %d: bad edge endpoints", line)
			}
			g.AddEdge(NodeID(from), NodeID(to), fields[3])
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("graph: empty input")
	}
	g.Finalize()
	return g, nil
}
