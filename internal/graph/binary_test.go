package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestBinaryRoundTrip(t *testing.T) {
	g := buildTriangle(t)
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	h, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumNodes() != g.NumNodes() || h.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: got %d/%d want %d/%d",
			h.NumNodes(), h.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	follow := h.LookupLabel("follow")
	if follow == NoLabel || !h.HasEdge(0, 1, follow) {
		t.Fatal("binary round trip lost edge 0->1 follow")
	}
}

// Property: binary round trip preserves the exact labeled edge relation
// (same label ids: the binary format serializes the interner).
func TestQuickBinaryRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 2+r.Intn(30), r.Intn(80), 1+r.Intn(5))
		var buf bytes.Buffer
		if err := g.WriteBinary(&buf); err != nil {
			return false
		}
		h, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if h.NumNodes() != g.NumNodes() || h.NumEdges() != g.NumEdges() {
			return false
		}
		for v := 0; v < g.NumNodes(); v++ {
			if g.NodeLabel(NodeID(v)) != h.NodeLabel(NodeID(v)) {
				return false
			}
			ge, he := g.Out(NodeID(v)), h.Out(NodeID(v))
			if len(ge) != len(he) {
				return false
			}
			for i := range ge {
				if ge[i] != he[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBinarySmallerThanText(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	g := randomGraph(r, 500, 2000, 5)
	var text, bin bytes.Buffer
	if _, err := g.WriteTo(&text); err != nil {
		t.Fatal(err)
	}
	if err := g.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= text.Len() {
		t.Fatalf("binary (%d bytes) not smaller than text (%d bytes)", bin.Len(), text.Len())
	}
}

func TestReadBinaryErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("QGP1"),                    // truncated after magic
		append([]byte("QGP1"), 0xff),      // bad varint
		append([]byte("QGP1"), 1, 2, 'a'), // truncated label
	}
	for i, in := range cases {
		if _, err := ReadBinary(bytes.NewReader(in)); err == nil {
			t.Errorf("case %d: ReadBinary succeeded on garbage", i)
		}
	}

	// Out-of-range edge.
	g := New(1)
	g.AddNode("x")
	g.Finalize()
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Append a fake edge count region by corrupting the tail: simplest is
	// to truncate mid-stream and check the error paths fire.
	if _, err := ReadBinary(bytes.NewReader(raw[:len(raw)-1])); err == nil {
		// A 1-node 0-edge graph's last byte is the edge count; dropping it
		// must fail.
		t.Error("truncated stream accepted")
	}
	if !strings.Contains("x", "x") {
		t.Fatal("sanity")
	}
}

func TestReadAuto(t *testing.T) {
	g := buildTriangle(t)
	var text, bin bytes.Buffer
	if _, err := g.WriteTo(&text); err != nil {
		t.Fatal(err)
	}
	if err := g.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	for name, buf := range map[string]*bytes.Buffer{"text": &text, "binary": &bin} {
		h, err := ReadAuto(buf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if h.NumNodes() != g.NumNodes() || h.NumEdges() != g.NumEdges() {
			t.Fatalf("%s: round trip mismatch", name)
		}
	}
}
