package graph

import (
	"bytes"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func buildTriangle(t *testing.T) *Graph {
	t.Helper()
	g := New(3)
	a := g.AddNode("person")
	b := g.AddNode("person")
	c := g.AddNode("product")
	g.AddEdge(a, b, "follow")
	g.AddEdge(b, c, "buy")
	g.AddEdge(a, c, "buy")
	g.Finalize()
	return g
}

func TestBasicCounts(t *testing.T) {
	g := buildTriangle(t)
	if g.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d, want 3", g.NumNodes())
	}
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
	if g.Size() != 6 {
		t.Fatalf("Size = %d, want 6", g.Size())
	}
}

func TestNodeLabels(t *testing.T) {
	g := buildTriangle(t)
	if got := g.NodeLabelName(0); got != "person" {
		t.Errorf("node 0 label = %q, want person", got)
	}
	if got := g.NodeLabelName(2); got != "product" {
		t.Errorf("node 2 label = %q, want product", got)
	}
	persons := g.NodesByLabelName("person")
	if len(persons) != 2 {
		t.Errorf("persons = %v, want 2 nodes", persons)
	}
	if got := g.NodesByLabelName("absent"); got != nil {
		t.Errorf("absent label returned %v", got)
	}
}

func TestOutByLabel(t *testing.T) {
	g := buildTriangle(t)
	buy := g.LookupLabel("buy")
	es := g.OutByLabel(0, buy)
	if len(es) != 1 || es[0].To != 2 {
		t.Fatalf("OutByLabel(0, buy) = %v, want [{2 buy}]", es)
	}
	if n := g.CountOut(0, buy); n != 1 {
		t.Fatalf("CountOut(0, buy) = %d, want 1", n)
	}
	follow := g.LookupLabel("follow")
	if n := g.CountOut(2, follow); n != 0 {
		t.Fatalf("CountOut(2, follow) = %d, want 0", n)
	}
}

func TestInByLabel(t *testing.T) {
	g := buildTriangle(t)
	buy := g.LookupLabel("buy")
	es := g.InByLabel(2, buy)
	if len(es) != 2 {
		t.Fatalf("InByLabel(2, buy) = %v, want 2 edges", es)
	}
}

func TestHasEdge(t *testing.T) {
	g := buildTriangle(t)
	follow := g.LookupLabel("follow")
	buy := g.LookupLabel("buy")
	if !g.HasEdge(0, 1, follow) {
		t.Error("expected edge 0->1 follow")
	}
	if g.HasEdge(1, 0, follow) {
		t.Error("unexpected reverse edge 1->0 follow")
	}
	if g.HasEdge(0, 1, buy) {
		t.Error("unexpected edge 0->1 buy")
	}
}

func TestDuplicateEdgesRemoved(t *testing.T) {
	g := New(2)
	a := g.AddNode("x")
	b := g.AddNode("y")
	g.AddEdge(a, b, "r")
	g.AddEdge(a, b, "r")
	g.AddEdge(a, b, "s")
	g.Finalize()
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2 after dedup", g.NumEdges())
	}
}

func TestFinalizeIdempotent(t *testing.T) {
	g := buildTriangle(t)
	before := g.NumEdges()
	g.Finalize()
	g.Finalize()
	if g.NumEdges() != before {
		t.Fatalf("edge count changed across Finalize: %d -> %d", before, g.NumEdges())
	}
}

func TestNeighborhood(t *testing.T) {
	// Path 0 -> 1 -> 2 -> 3; neighborhoods are undirected.
	g := New(4)
	for i := 0; i < 4; i++ {
		g.AddNode("n")
	}
	g.AddEdge(0, 1, "r")
	g.AddEdge(1, 2, "r")
	g.AddEdge(2, 3, "r")
	g.Finalize()

	cases := []struct {
		v    NodeID
		d    int
		want []NodeID
	}{
		{0, 0, []NodeID{0}},
		{0, 1, []NodeID{0, 1}},
		{0, 2, []NodeID{0, 1, 2}},
		{1, 1, []NodeID{0, 1, 2}},
		{3, 2, []NodeID{1, 2, 3}},
		{0, 10, []NodeID{0, 1, 2, 3}},
	}
	for _, c := range cases {
		got := g.Neighborhood(c.v, c.d)
		if len(got) != len(c.want) {
			t.Errorf("Neighborhood(%d,%d) = %v, want %v", c.v, c.d, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Neighborhood(%d,%d) = %v, want %v", c.v, c.d, got, c.want)
				break
			}
		}
	}
}

func TestNeighborhoodSize(t *testing.T) {
	g := buildTriangle(t)
	// N1(0) covers all 3 nodes and all 3 edges.
	if got := g.NeighborhoodSize(0, 1); got != 6 {
		t.Fatalf("NeighborhoodSize(0,1) = %d, want 6", got)
	}
	// N0(0) is just the node itself, no edges.
	if got := g.NeighborhoodSize(0, 0); got != 1 {
		t.Fatalf("NeighborhoodSize(0,0) = %d, want 1", got)
	}
}

func TestInduced(t *testing.T) {
	g := buildTriangle(t)
	sub, toGlobal := g.Induced([]NodeID{0, 2})
	if sub.NumNodes() != 2 {
		t.Fatalf("induced nodes = %d, want 2", sub.NumNodes())
	}
	if sub.NumEdges() != 1 {
		t.Fatalf("induced edges = %d, want 1 (the buy edge)", sub.NumEdges())
	}
	if toGlobal[0] != 0 || toGlobal[1] != 2 {
		t.Fatalf("toGlobal = %v, want [0 2]", toGlobal)
	}
	buy := sub.LookupLabel("buy")
	if buy == NoLabel || !sub.HasEdge(0, 1, buy) {
		t.Fatal("induced subgraph lost the buy edge")
	}
}

func TestInducedDuplicates(t *testing.T) {
	g := buildTriangle(t)
	sub, toGlobal := g.Induced([]NodeID{1, 1, 2, 2})
	if sub.NumNodes() != 2 || len(toGlobal) != 2 {
		t.Fatalf("induced with duplicates: nodes=%d map=%v", sub.NumNodes(), toGlobal)
	}
}

func TestRoundTripIO(t *testing.T) {
	g := buildTriangle(t)
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	h, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumNodes() != g.NumNodes() || h.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip mismatch: got %d/%d want %d/%d",
			h.NumNodes(), h.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	follow := h.LookupLabel("follow")
	if !h.HasEdge(0, 1, follow) {
		t.Fatal("round trip lost edge 0->1 follow")
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",
		"n 0 person",
		"graph x",
		"graph 2\nn 1 person",
		"graph 2\nn 0 a\nn 1 b\ne 0 5 r",
		"graph 1\nz 0",
	}
	for _, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("Read(%q) succeeded, want error", in)
		}
	}
}

func TestReadCommentsAndBlanks(t *testing.T) {
	in := "# a comment\ngraph 1\n\nn 0 person\n"
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 1 {
		t.Fatalf("NumNodes = %d, want 1", g.NumNodes())
	}
}

func TestStats(t *testing.T) {
	g := buildTriangle(t)
	s := g.ComputeStats()
	if s.Nodes != 3 || s.Edges != 3 || s.NodeLabels != 2 || s.MaxOutDeg != 2 {
		t.Fatalf("Stats = %+v", s)
	}
	if s.AvgDeg != 1.0 {
		t.Fatalf("AvgDeg = %f, want 1.0", s.AvgDeg)
	}
	if !strings.Contains(s.String(), "|V|=3") {
		t.Fatalf("Stats.String() = %q", s.String())
	}
}

// randomGraph builds a random labeled graph for property tests.
func randomGraph(r *rand.Rand, n, m, labels int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddNode(string(rune('a' + r.Intn(labels))))
	}
	for i := 0; i < m; i++ {
		g.AddEdge(NodeID(r.Intn(n)), NodeID(r.Intn(n)), string(rune('A'+r.Intn(labels))))
	}
	g.Finalize()
	return g
}

// Property: serialization round-trips preserve the exact edge relation.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 2+r.Intn(20), r.Intn(40), 1+r.Intn(4))
		var buf bytes.Buffer
		if _, err := g.WriteTo(&buf); err != nil {
			return false
		}
		h, err := Read(&buf)
		if err != nil {
			return false
		}
		if h.NumNodes() != g.NumNodes() || h.NumEdges() != g.NumEdges() {
			return false
		}
		for v := 0; v < g.NumNodes(); v++ {
			if g.NodeLabelName(NodeID(v)) != h.NodeLabelName(NodeID(v)) {
				return false
			}
			// Interning order differs between g and h, so adjacency sort
			// order can differ; compare as name-keyed sets.
			key := func(gr *Graph, e Edge) string {
				return gr.LabelName(e.Label) + "\x00" + string(rune(e.To))
			}
			var gk, hk []string
			for _, e := range g.Out(NodeID(v)) {
				gk = append(gk, key(g, e))
			}
			for _, e := range h.Out(NodeID(v)) {
				hk = append(hk, key(h, e))
			}
			if len(gk) != len(hk) {
				return false
			}
			sort.Strings(gk)
			sort.Strings(hk)
			for i := range gk {
				if gk[i] != hk[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: CountOut(v, l) equals len(OutByLabel(v, l)) for every v, l.
func TestQuickCountOutConsistent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 2+r.Intn(15), r.Intn(60), 1+r.Intn(3))
		for v := 0; v < g.NumNodes(); v++ {
			for l := LabelID(0); l < LabelID(g.Labels()); l++ {
				if g.CountOut(NodeID(v), l) != len(g.OutByLabel(NodeID(v), l)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: in- and out-adjacency describe the same edge multiset.
func TestQuickInOutDual(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 2+r.Intn(15), r.Intn(60), 1+r.Intn(3))
		type triple struct {
			from, to NodeID
			l        LabelID
		}
		var outs, ins []triple
		for v := 0; v < g.NumNodes(); v++ {
			for _, e := range g.Out(NodeID(v)) {
				outs = append(outs, triple{NodeID(v), e.To, e.Label})
			}
			for _, e := range g.In(NodeID(v)) {
				ins = append(ins, triple{e.To, NodeID(v), e.Label})
			}
		}
		less := func(s []triple) func(i, j int) bool {
			return func(i, j int) bool {
				if s[i].from != s[j].from {
					return s[i].from < s[j].from
				}
				if s[i].to != s[j].to {
					return s[i].to < s[j].to
				}
				return s[i].l < s[j].l
			}
		}
		sort.Slice(outs, less(outs))
		sort.Slice(ins, less(ins))
		if len(outs) != len(ins) {
			return false
		}
		for i := range outs {
			if outs[i] != ins[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestInternerReuse(t *testing.T) {
	var in Interner
	a := in.Intern("x")
	b := in.Intern("x")
	if a != b {
		t.Fatal("interner returned different ids for same string")
	}
	if in.Lookup("y") != NoLabel {
		t.Fatal("Lookup of unknown label should be NoLabel")
	}
	if in.Name(a) != "x" {
		t.Fatal("Name mismatch")
	}
	if in.Len() != 1 {
		t.Fatalf("Len = %d, want 1", in.Len())
	}
}
